// Golden-file tests for the serialized record schemas: a canonical
// RunRecord and CampaignReport are committed under tests/golden/, and the
// writers must reproduce them byte for byte — any schema drift becomes a
// reviewed diff instead of a silent break — while the support reader must
// recover every value losslessly.
//
// Regenerate after an intentional schema change with:
//   PDC_UPDATE_GOLDEN=1 ./build/tests/golden_record_test
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "campaign/executor.hpp"
#include "scenario/runner.hpp"
#include "support/env.hpp"
#include "support/json.hpp"

namespace pdc {
namespace {

std::string golden_path(const char* name) {
  return std::string(PDC_TEST_DATA_DIR) + "/golden/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void check_against_golden(const std::string& produced, const char* name) {
  const std::string path = golden_path(name);
  if (env_flag("PDC_UPDATE_GOLDEN")) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << produced;
    GTEST_SKIP() << "golden updated: " << path;
  }
  const std::string expected = read_file(path);
  ASSERT_FALSE(expected.empty()) << "missing golden file " << path
                                 << " (run with PDC_UPDATE_GOLDEN=1 to create it)";
  EXPECT_EQ(produced, expected) << "serialized " << name
                                << " drifted from the committed golden; if the schema "
                                   "change is intentional, regenerate with "
                                   "PDC_UPDATE_GOLDEN=1 and review the diff";
}

/// A fully populated, hand-fixed RunRecord: no simulation, so the bytes are
/// the same on every machine and toolchain.
scenario::RunRecord canonical_record() {
  scenario::RunRecord rec;
  rec.spec.name = "golden";
  rec.spec.platform = scenario::PlatformSpec::lan();
  rec.spec.run.peers = 4;
  rec.spec.run.level = ir::OptLevel::O2;
  rec.spec.run.mode = scenario::Mode::Both;
  rec.spec.run.seed = 42;
  rec.spec.run.grid_n = 258;
  rec.spec.run.iters = 100;
  rec.spec.run.churn.peer_crash_rate = 0.01;
  rec.spec.run.churn.seed = 7;
  rec.spec.run.churn.events = {
      {churn::ChurnEvent::Kind::TrackerCrash, 2.5, 0, 1.0},
      {churn::ChurnEvent::Kind::LinkDegrade, 12.25, 3, 0.5},
  };
  rec.platform_kind = "star";
  rec.platform_label = "lan";
  rec.platform_hosts = 9;

  scenario::PhaseRecord ref;
  ref.solve_seconds = 12.125;
  ref.total_seconds = 15.5;
  ref.iterations = 100;
  ref.platform_hosts = 9;
  ref.computation.ok = true;
  ref.computation.peers = 4;
  ref.computation.groups = 1;
  ref.computation.t_submit = 12.0;
  ref.computation.t_collected = 12.5;
  ref.computation.t_allocated = 13.0;
  ref.computation.t_finished = 27.5;
  ref.net.flows_started = 640;
  ref.net.flows_completed = 640;
  ref.net.bytes_completed = 1.25e9;
  ref.net.reshares = 1280;
  ref.net.reshares_partial = 512;
  ref.net.flows_rescanned = 4096;
  ref.net.flows_starved = 0;
  ref.net.link_rescales = 2;
  ref.net.classes_active = 12;
  ref.net.class_merges = 628;
  ref.net.class_splits = 4;
  ref.routes.routes_computed = 36;
  ref.routes.cache_hits = 4060;
  ref.routes.cache_evictions = 4;
  ref.routes.cache_entries = 32;
  ref.engine.events_dispatched = 262144;
  ref.engine.closures_inline = 2048;
  ref.engine.closures_heap = 0;
  ref.engine.resumes = 131072;
  ref.engine.slot_arms = 8192;
  ref.engine.stale_slot_events = 4096;
  ref.engine.peak_queue_depth = 96;
  scenario::ChurnPhaseRecord churn_rec;
  churn_rec.stats.events_applied = 3;
  churn_rec.stats.events_skipped = 1;
  churn_rec.stats.peer_crashes = 1;
  churn_rec.stats.peer_joins = 1;
  churn_rec.stats.tracker_crashes = 1;
  churn_rec.stats.link_degrades = 1;
  churn_rec.stats.link_restores = 1;
  churn_rec.attempts = 2;
  churn_rec.rejoins = 3;
  ref.churn = churn_rec;
  rec.reference = ref;

  scenario::PhaseRecord pred = ref;
  pred.iterations = 0;
  pred.solve_seconds = 12.5;
  pred.churn->attempts = 2;
  rec.predicted = pred;
  rec.prediction_error = 0.03125;  // exact in binary: stable text form
  return rec;
}

TEST(GoldenRecord, RunRecordSerializationIsByteStable) {
  check_against_golden(canonical_record().to_json(), "run_record.json");
}

TEST(GoldenRecord, RunRecordReadsBackLosslessly) {
  const scenario::RunRecord rec = canonical_record();
  const JsonValue doc = parse_json(rec.to_json());
  EXPECT_EQ(doc.at("scenario").as_string(), "golden");
  EXPECT_EQ(doc.at("spec").as_string(), scenario::render_scenario(rec.spec));
  EXPECT_EQ(doc.at("platform").at("kind").as_string(), "star");
  EXPECT_EQ(doc.at("platform").at("hosts").as_double(), 9.0);
  EXPECT_EQ(doc.at("run").at("peers").as_double(), 4.0);
  EXPECT_EQ(doc.at("run").at("opt").as_string(), "O2");
  EXPECT_EQ(doc.at("run").at("mode").as_string(), "both");
  EXPECT_EQ(doc.at("run").at("seed").as_double(), 42.0);
  const JsonValue& ref = doc.at("reference");
  EXPECT_EQ(ref.at("solve_seconds").as_double(), 12.125);
  EXPECT_EQ(ref.at("iterations").as_double(), 100.0);
  EXPECT_EQ(ref.at("computation").at("collection_seconds").as_double(), 0.5);
  EXPECT_EQ(ref.at("flownet").at("bytes_completed").as_double(), 1.25e9);
  EXPECT_EQ(ref.at("flownet").at("link_rescales").as_double(), 2.0);
  EXPECT_EQ(ref.at("flownet").at("classes_active").as_double(), 12.0);
  EXPECT_EQ(ref.at("flownet").at("class_merges").as_double(), 628.0);
  EXPECT_EQ(ref.at("flownet").at("class_splits").as_double(), 4.0);
  EXPECT_EQ(ref.at("routes").at("routes_computed").as_double(), 36.0);
  EXPECT_EQ(ref.at("routes").at("cache_hits").as_double(), 4060.0);
  EXPECT_EQ(ref.at("routes").at("cache_evictions").as_double(), 4.0);
  EXPECT_EQ(ref.at("routes").at("cache_entries").as_double(), 32.0);
  EXPECT_EQ(doc.at("run").at("boot").as_string(), "eager");
  EXPECT_EQ(doc.at("run").at("trackers").as_double(), 1.0);
  EXPECT_EQ(doc.at("run").at("ranks").as_double(), 4.0);
  EXPECT_EQ(ref.at("churn").at("attempts").as_double(), 2.0);
  EXPECT_EQ(ref.at("churn").at("reallocations").as_double(), 1.0);
  EXPECT_EQ(ref.at("churn").at("rejoins").as_double(), 3.0);
  EXPECT_FALSE(doc.at("predicted").has("iterations"));
  EXPECT_EQ(doc.at("prediction_error").as_double(), 0.03125);
  // The embedded canonical spec text itself parses back to the same spec.
  const scenario::ScenarioSpec spec =
      scenario::parse_scenario(doc.at("spec").as_string());
  EXPECT_EQ(scenario::render_scenario(spec), doc.at("spec").as_string());
  EXPECT_EQ(spec.run.churn, rec.spec.run.churn);
}

/// A hand-fixed CampaignReport with one aggregated point per metric shape.
campaign::CampaignReport canonical_report() {
  campaign::CampaignReport rep;
  rep.name = "golden-camp";
  rep.jobs = 4;
  rep.total = 6;
  rep.executed = 4;
  rep.skipped = 2;
  rep.errors = 1;
  rep.wall_seconds = 3.5;
  campaign::PointReport point;
  point.key = "lan-p4-O2-sync-hier-s42-cr0.01";
  point.platform_label = "lan";
  point.platform_kind = "star";
  point.peers = 4;
  point.opt = "O2";
  point.scheme = "sync";
  point.alloc = "hierarchical";
  point.seed = 42;
  point.repetitions = 2;
  point.errors = 1;
  Summary s;
  s.n = 2;
  s.mean = 12.25;
  s.stddev = 0.25;
  s.min = 12.0;
  s.max = 12.5;
  s.p50 = 12.25;
  s.p95 = 12.5;
  s.ci95_half = 0.75;
  point.metrics["reference_solve_seconds"] = s;
  Summary attempts;
  attempts.n = 2;
  attempts.mean = 1.5;
  attempts.stddev = 0.5;
  attempts.min = 1.0;
  attempts.max = 2.0;
  attempts.p50 = 1.5;
  attempts.p95 = 2.0;
  attempts.ci95_half = 1.5;
  point.metrics["reference_churn_attempts"] = attempts;
  rep.points.push_back(point);
  return rep;
}

TEST(GoldenRecord, CampaignReportSerializationIsByteStable) {
  check_against_golden(canonical_report().to_json(), "campaign_report.json");
}

TEST(GoldenRecord, CampaignReportCsvIsByteStable) {
  check_against_golden(canonical_report().to_csv(), "campaign_report.csv");
}

TEST(GoldenRecord, CampaignReportReadsBackLosslessly) {
  const JsonValue doc = parse_json(canonical_report().to_json());
  EXPECT_EQ(doc.at("campaign").as_string(), "golden-camp");
  EXPECT_EQ(doc.at("total_runs").as_double(), 6.0);
  EXPECT_EQ(doc.at("errors").as_double(), 1.0);
  const JsonValue& point = doc.at("points").as_array().at(0);
  EXPECT_EQ(point.at("point").as_string(), "lan-p4-O2-sync-hier-s42-cr0.01");
  EXPECT_EQ(point.at("repetitions").as_double(), 2.0);
  const JsonValue& metric = point.at("metrics").at("reference_solve_seconds");
  EXPECT_EQ(metric.at("n").as_double(), 2.0);
  EXPECT_EQ(metric.at("mean").as_double(), 12.25);
  EXPECT_EQ(metric.at("ci95_half").as_double(), 0.75);
  EXPECT_TRUE(point.at("metrics").has("reference_churn_attempts"));
}

}  // namespace
}  // namespace pdc
