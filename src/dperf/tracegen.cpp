#include "dperf/tracegen.hpp"

namespace pdc::dperf {

namespace {

/// Hooks providing workload parameters and rank identity; communication is
/// a no-op (data is irrelevant to timing in fixed-iteration kernels).
class ParamHooks : public vm::CommHooks {
 public:
  ParamHooks(const Workload& w, int rank, int nprocs)
      : workload_(&w), rank_(rank), nprocs_(nprocs) {}

  int rank() override { return rank_; }
  int nprocs() override { return nprocs_; }
  long long param(int i) override {
    const auto idx = static_cast<std::size_t>(i);
    return idx < workload_->int_params.size() ? workload_->int_params[idx] : 0;
  }
  double param_f(int i) override {
    const auto idx = static_cast<std::size_t>(i);
    return idx < workload_->float_params.size() ? workload_->float_params[idx] : 0;
  }

 private:
  const Workload* workload_;
  int rank_, nprocs_;
};

/// Records communication calls and computation segments between them.
class RecorderHooks : public ParamHooks {
 public:
  RecorderHooks(const Workload& w, int rank, int nprocs, double host_hz, Trace& out)
      : ParamHooks(w, rank, nprocs), host_hz_(host_hz), out_(&out) {}

  void send(int peer, int tag, vm::ArrayObj&, long long, long long n) override {
    flush_compute();
    TraceEvent e;
    e.kind = TraceEvent::Kind::Send;
    e.peer = peer;
    e.tag = tag;
    e.bytes = static_cast<double>(n) * 8;  // doubles on the wire
    out_->events.push_back(e);
  }
  void recv(int peer, int tag, vm::ArrayObj&, long long, long long) override {
    flush_compute();
    TraceEvent e;
    e.kind = TraceEvent::Kind::Recv;
    e.peer = peer;
    e.tag = tag;
    out_->events.push_back(e);
  }
  double allreduce_max(double v) override {
    flush_compute();
    TraceEvent e;
    e.kind = TraceEvent::Kind::Allreduce;
    out_->events.push_back(e);
    return v;  // single-process view; values do not steer fixed-iteration kernels
  }
  void iter_mark(long long id) override {
    flush_compute();
    TraceEvent e;
    e.kind = TraceEvent::Kind::IterMark;
    e.iter_id = id;
    out_->events.push_back(e);
  }

  void flush_compute() {
    const double cycles = vm_->cycles();
    if (cycles > last_cycles_) {
      TraceEvent e;
      e.kind = TraceEvent::Kind::Compute;
      e.ns = static_cast<std::uint64_t>((cycles - last_cycles_) / host_hz_ * 1e9 + 0.5);
      if (e.ns > 0) out_->events.push_back(e);
      last_cycles_ = cycles;
    }
  }

 private:
  double host_hz_;
  Trace* out_;
  double last_cycles_ = 0;
};

}  // namespace

double BlockTimings::once_ns() const {
  double total = 0;
  for (const auto& e : entries)
    if (e.info.comm_loop_depth == 0) total += e.mean_ns * static_cast<double>(e.executions);
  return total;
}

double BlockTimings::per_iteration_ns() const {
  double total = 0;
  for (const auto& e : entries)
    if (e.info.comm_loop_depth > 0) total += e.mean_ns;
  return total;
}

BlockTimings benchmark_blocks(const InstrumentedProgram& inst, ir::OptLevel level,
                              const Workload& workload, double host_hz, int rank,
                              int nprocs) {
  const ir::IrProgram prog = ir::compile(inst.program, level);
  vm::Vm m{prog};
  ParamHooks hooks{workload, rank, nprocs};
  m.set_hooks(&hooks);
  m.run_main();

  BlockTimings out;
  out.host_hz = host_hz;
  for (const BlockInfo& info : inst.blocks) {
    BlockTimings::Entry e;
    e.info = info;
    const auto it = m.papi().blocks.find(info.id);
    if (it != m.papi().blocks.end()) {
      e.executions = it->second.executions;
      if (e.executions > 0)
        e.mean_ns = it->second.cycles / static_cast<double>(e.executions) / host_hz * 1e9;
    }
    out.entries.push_back(e);
  }
  return out;
}

Trace generate_trace(const InstrumentedProgram& inst, ir::OptLevel level,
                     const Workload& workload, int rank, int nprocs, double host_hz) {
  const ir::IrProgram prog = ir::compile(inst.program, level);
  Trace trace;
  trace.rank = rank;
  trace.nprocs = nprocs;
  trace.host_hz = host_hz;
  vm::Vm m{prog};
  RecorderHooks hooks{workload, rank, nprocs, host_hz, trace};
  m.set_hooks(&hooks);
  m.run_main();
  hooks.flush_compute();
  return trace;
}

}  // namespace pdc::dperf
