// Network platform description: hosts, routers, full-duplex links and
// routes. This plays the role of SimGrid's platform files in the paper's
// dPerf pipeline ("the platform description file being ready ... with
// Simgrid we calculate the necessary time for communicating").
//
// Routes are computed on demand. Structured topologies (star, daisy,
// federation, scale-free, small-world) enable *hierarchical* resolution:
// every host hangs off exactly one router, so a host-pair route is the
// host's access hop + a router-core path + the peer's access hop, and only
// router-pair paths ever need a graph search. Unstructured platforms fall
// back to hop-count BFS over the full node graph. Either way computed
// routes land in a bounded LRU cache — a precomputed table over 10^6 hosts
// cannot exist — and builders may still install explicit routes that
// override everything.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/ipv4.hpp"
#include "support/time.hpp"

namespace pdc::net {

using NodeIdx = int;
using LinkIdx = int;

/// A full-duplex link: `bandwidth_Bps` is available independently in each
/// direction (the paper: "all connections are full-duplex").
struct Link {
  std::string name;
  double bandwidth_Bps = 0;
  Time latency = 0;
};

struct NodeInfo {
  std::string name;
  bool is_host = false;
  double speed_hz = 0;  // CPU cycles per second; 0 for routers
  Ipv4 ip;              // hosts only
};

/// One traversal step of a route: a link plus the direction of traversal
/// (0 = from the edge's first endpoint to the second). Flows contend only
/// with flows crossing the same link in the same direction.
struct Hop {
  LinkIdx link = -1;
  int dir = 0;
  friend bool operator==(const Hop&, const Hop&) = default;
};

/// Flat per-direction link index: link id × direction packed densely so the
/// flow engine can keep per-direction records in a plain vector instead of a
/// map keyed on (link, dir).
constexpr std::size_t linkdir_index(const Hop& h) {
  return (static_cast<std::size_t>(static_cast<std::uint32_t>(h.link)) << 1) |
         static_cast<std::size_t>(h.dir & 1);
}

struct Route {
  std::vector<Hop> hops;
  Time latency = 0;  // sum of link latencies along the path
};

/// Route-resolution observability: how many routes were actually computed
/// (graph search or hierarchical assembly) versus served from the bounded
/// cache, and how many cache entries were evicted to stay within capacity.
struct RouteStats {
  std::uint64_t routes_computed = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_entries = 0;  // current resident entries
};

class Platform {
 public:
  NodeIdx add_host(std::string name, double speed_hz, Ipv4 ip);
  NodeIdx add_router(std::string name);
  LinkIdx add_link(std::string name, double bandwidth_Bps, Time latency);

  /// Adds an undirected edge between nodes `a` and `b` carried by `link`.
  void connect(NodeIdx a, NodeIdx b, LinkIdx link);

  /// Installs an explicit route from `src` to `dst` (and its reverse, with
  /// directions flipped, unless `symmetric` is false).
  void set_route(NodeIdx src, NodeIdx dst, std::vector<Hop> hops, bool symmetric = true);

  /// Returns the route between two *distinct* nodes: explicit if installed,
  /// else hierarchical assembly (when enabled), else the BFS shortest path
  /// (deterministic tie-breaking by edge insertion order). Throws
  /// std::runtime_error if no path exists. The returned reference stays
  /// valid until later route() calls evict the entry from the bounded
  /// cache; callers that retain hops must copy them.
  const Route& route(NodeIdx src, NodeIdx dst) const;

  /// Switches route() to hierarchical resolution. Requires every host to
  /// have exactly one edge, to a router; returns false (and stays on BFS)
  /// otherwise. When `trunk` names a fabric link, every host-pair route
  /// additionally crosses it between the access hops with direction
  /// src < dst ? 0 : 1 — this reproduces the star builder's shared
  /// backbone without materialising O(hosts^2) explicit routes.
  bool enable_hierarchical_routing(LinkIdx trunk = -1);
  bool hierarchical_routing() const { return hier_; }
  LinkIdx trunk_link() const { return trunk_; }

  /// Caps the number of cached computed routes (minimum 2, so expressions
  /// holding two route() results stay valid). Default: 65536.
  void set_route_cache_capacity(std::size_t capacity);
  RouteStats route_stats() const;

  const NodeInfo& node(NodeIdx n) const { return nodes_[static_cast<std::size_t>(n)]; }
  const Link& link(LinkIdx l) const { return links_[static_cast<std::size_t>(l)]; }
  int node_count() const { return static_cast<int>(nodes_.size()); }
  int link_count() const { return static_cast<int>(links_.size()); }
  /// Number of dense per-direction link slots (see linkdir_index).
  std::size_t linkdir_count() const { return 2 * links_.size(); }

  /// Hosts in insertion order (stable rank -> host mapping for experiments).
  int host_count() const { return static_cast<int>(hosts_.size()); }
  NodeIdx host(int i) const { return hosts_[static_cast<std::size_t>(i)]; }

  std::optional<NodeIdx> find_by_name(const std::string& name) const;
  std::optional<NodeIdx> find_by_ip(Ipv4 ip) const;

  struct Edge {
    NodeIdx a, b;
    LinkIdx link;
  };
  int edge_count() const { return static_cast<int>(edges_.size()); }
  const Edge& edge(int i) const { return edges_[static_cast<std::size_t>(i)]; }

  /// One installed explicit route (as passed to set_route; symmetric
  /// installation produces two entries, one per direction).
  struct ExplicitRoute {
    NodeIdx src, dst;
    const Route* route;
  };
  /// All explicit routes, sorted by (src, dst) for deterministic output.
  std::vector<ExplicitRoute> explicit_route_list() const;

 private:
  Route compute_bfs_route(NodeIdx src, NodeIdx dst) const;
  Route compute_core_route(NodeIdx src, NodeIdx dst) const;
  Route compute_hier_route(NodeIdx src, NodeIdx dst) const;
  const Route& cache_insert(std::uint64_t key, Route r) const;
  static std::uint64_t pair_key(NodeIdx a, NodeIdx b) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
           static_cast<std::uint32_t>(b);
  }

  std::vector<NodeInfo> nodes_;
  std::vector<Link> links_;
  std::vector<Edge> edges_;
  std::vector<std::vector<int>> adjacency_;  // node -> edge indices
  std::vector<NodeIdx> hosts_;
  std::unordered_map<std::uint64_t, Route> explicit_routes_;

  // Hierarchical metadata: per host, the single uplink edge decomposed into
  // (attachment router, carrying link, host->router traversal direction).
  struct Access {
    NodeIdx router = -1;
    LinkIdx link = -1;
    int up_dir = 0;
  };
  bool hier_ = false;
  LinkIdx trunk_ = -1;
  std::vector<Access> access_;  // indexed by node, hosts only

  // Bounded LRU over computed routes (host pairs and router-core paths
  // share one cache). List front = most recently used; the map points into
  // the list so returned references survive until their entry is evicted.
  struct CacheEntry {
    std::uint64_t key;
    Route route;
  };
  mutable std::list<CacheEntry> cache_lru_;
  mutable std::unordered_map<std::uint64_t, std::list<CacheEntry>::iterator> route_cache_;
  std::size_t route_cache_capacity_ = 65536;
  mutable RouteStats stats_;
};

}  // namespace pdc::net
