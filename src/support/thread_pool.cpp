#include "support/thread_pool.hpp"

#include <algorithm>

namespace pdc {

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace pdc
