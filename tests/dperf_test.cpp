// dPerf pipeline tests: block decomposition, instrumentation round trip,
// trace format, scale-up extrapolation and block benchmarking.
#include <gtest/gtest.h>

#include "dperf/dperf.hpp"
#include "minic/parser.hpp"
#include "minic/sema.hpp"
#include "minic/unparse.hpp"
#include "obstacle/minic_kernel.hpp"
#include "obstacle/problem.hpp"

namespace pdc::dperf {
namespace {

const char* kCommProgram = R"(
int main() {
  int n = p2p_param(0);
  int iters = p2p_param(1);
  double a[n];
  for (int i = 0; i < n; i = i + 1) { a[i] = 1.0 * i; }
  for (int it = 0; it < iters; it = it + 1) {
    p2p_send(1, 5, a, 0, n);
    double s = 0.0;
    for (int i = 0; i < n; i = i + 1) { s = s + a[i]; }
    p2p_recv(1, 6, a, 0, n);
  }
  return 0;
}
)";

TEST(Instrument, DetectsCommInStatements) {
  minic::Program p = minic::parse(kCommProgram);
  minic::check(p);
  const auto& body = p.functions[0].body;
  // decl n, decl iters, decl a, init loop (no comm), comm loop.
  EXPECT_FALSE(contains_comm(*body[3]));
  EXPECT_TRUE(contains_comm(*body[4]));
}

TEST(Instrument, WrapsCommFreeRunsAndMarksCommLoops) {
  minic::Program p = minic::parse(kCommProgram);
  minic::check(p);
  const InstrumentedProgram inst = instrument(p);
  ASSERT_GE(inst.blocks.size(), 2u);
  EXPECT_EQ(inst.iter_loops, 1);  // one outer comm loop marked
  // At least one block outside comm loops (the init section) and one inside
  // (the summation between send and recv).
  bool outside = false, inside = false;
  for (const auto& b : inst.blocks) {
    if (b.comm_loop_depth == 0) outside = true;
    if (b.comm_loop_depth > 0) inside = true;
  }
  EXPECT_TRUE(outside);
  EXPECT_TRUE(inside);
  // The instrumented program unparses and re-checks.
  const std::string src = minic::unparse(inst.program);
  EXPECT_NE(src.find("dperf_block_begin("), std::string::npos);
  EXPECT_NE(src.find("dperf_iter_mark("), std::string::npos);
  minic::Program round = minic::parse(src);
  EXPECT_NO_THROW(minic::check(round));
}

TEST(Instrument, CommFreeProgramIsOneBlockPerRun) {
  minic::Program p = minic::parse(
      "int main() { int s = 0; for (int i = 0; i < 5; i = i + 1) { s = s + i; } return s; }");
  minic::check(p);
  const InstrumentedProgram inst = instrument(p);
  // The whole body (before return) is comm-free: a single block, no loops
  // marked. The return statement is part of the block.
  EXPECT_EQ(inst.iter_loops, 0);
  ASSERT_EQ(inst.blocks.size(), 1u);
  EXPECT_EQ(inst.blocks[0].comm_loop_depth, 0);
}

TEST(TraceFormat, SaveLoadRoundTrip) {
  Trace t;
  t.rank = 2;
  t.nprocs = 8;
  t.host_hz = 3e9;
  TraceEvent c;
  c.kind = TraceEvent::Kind::Compute;
  c.ns = 123456789;
  t.events.push_back(c);
  TraceEvent s;
  s.kind = TraceEvent::Kind::Send;
  s.peer = 3;
  s.bytes = 8192;
  s.tag = 1;
  t.events.push_back(s);
  TraceEvent r;
  r.kind = TraceEvent::Kind::Recv;
  r.peer = 1;
  r.tag = 2;
  t.events.push_back(r);
  TraceEvent a;
  a.kind = TraceEvent::Kind::Allreduce;
  t.events.push_back(a);
  TraceEvent m;
  m.kind = TraceEvent::Kind::IterMark;
  m.iter_id = 0;
  t.events.push_back(m);

  const Trace back = load_trace(save_trace(t));
  EXPECT_EQ(back.rank, 2);
  EXPECT_EQ(back.nprocs, 8);
  EXPECT_DOUBLE_EQ(back.host_hz, 3e9);
  ASSERT_EQ(back.events.size(), t.events.size());
  for (std::size_t i = 0; i < t.events.size(); ++i) EXPECT_EQ(back.events[i], t.events[i]);
}

TEST(TraceFormat, RejectsMalformedInput) {
  EXPECT_THROW(load_trace("not a trace"), std::runtime_error);
  EXPECT_THROW(load_trace("dperf-trace v1\nproc x\nend\n"), std::runtime_error);
  EXPECT_THROW(load_trace("dperf-trace v1\nproc 0 of 2 hz 3e9\nfrobnicate\nend\n"),
               std::runtime_error);
  EXPECT_THROW(load_trace("dperf-trace v1\nproc 0 of 2 hz 3e9\ncompute 5\n"),
               std::runtime_error);  // missing end
}

Trace synthetic_trace(int iters, std::uint64_t ns_per_iter) {
  Trace t;
  for (int i = 0; i < iters; ++i) {
    TraceEvent m;
    m.kind = TraceEvent::Kind::IterMark;
    t.events.push_back(m);
    TraceEvent c;
    c.kind = TraceEvent::Kind::Compute;
    c.ns = ns_per_iter;
    t.events.push_back(c);
    TraceEvent s;
    s.kind = TraceEvent::Kind::Send;
    s.peer = 1;
    s.bytes = 64;
    t.events.push_back(s);
  }
  TraceEvent tail;
  tail.kind = TraceEvent::Kind::Compute;
  tail.ns = 7;
  t.events.push_back(tail);
  return t;
}

TEST(ScaleUp, ReplicatesSteadyChunk) {
  const Trace sampled = synthetic_trace(15, 100);  // 3 chunks of 5
  const Trace full = extrapolate(sampled, 15, 40, 5);
  EXPECT_EQ(full.count(TraceEvent::Kind::IterMark), 40u);
  EXPECT_EQ(full.count(TraceEvent::Kind::Send), 40u);
  EXPECT_EQ(full.total_compute_ns(), 40u * 100 + 7);
}

TEST(ScaleUp, IdentityWhenTargetEqualsSample) {
  const Trace sampled = synthetic_trace(15, 100);
  const Trace same = extrapolate(sampled, 15, 15, 5);
  EXPECT_EQ(same.events.size(), sampled.events.size());
}

TEST(ScaleUp, RejectsBadParameters) {
  const Trace sampled = synthetic_trace(10, 100);
  EXPECT_THROW(extrapolate(sampled, 10, 20, 5), std::runtime_error);   // sample < 3*chunk
  EXPECT_THROW(extrapolate(sampled, 10, 13, 2), std::runtime_error);   // not divisible
  EXPECT_THROW(extrapolate(sampled, 12, 20, 4), std::runtime_error);   // marker mismatch
}

TEST(Benchmark, KernelBlocksHaveMeaningfulTimings) {
  obstacle::ObstacleProblem p;
  p.n = 34;
  DperfOptions opt;
  opt.level = ir::OptLevel::O0;
  const Dperf pipeline{obstacle::minic_kernel_source(), opt};
  const Workload w = obstacle::kernel_workload(p, /*iters=*/6, /*rcheck=*/3);
  const BlockTimings timings = pipeline.benchmark(w);
  EXPECT_GT(timings.once_ns(), 0);
  EXPECT_GT(timings.per_iteration_ns(), 0);
  // The per-iteration sweep dominates the one-off init per execution.
  bool found_loop_block = false;
  for (const auto& e : timings.entries) {
    if (e.info.comm_loop_depth > 0 && e.executions >= 6) found_loop_block = true;
  }
  EXPECT_TRUE(found_loop_block);
}

TEST(Benchmark, OptimizationLevelsShrinkBlockTimes) {
  obstacle::ObstacleProblem p;
  p.n = 34;
  const Workload w = obstacle::kernel_workload(p, 6, 3);
  double per_iter_o0 = 0, per_iter_o3 = 0;
  {
    DperfOptions opt;
    opt.level = ir::OptLevel::O0;
    per_iter_o0 = Dperf{obstacle::minic_kernel_source(), opt}.benchmark(w).per_iteration_ns();
  }
  {
    DperfOptions opt;
    opt.level = ir::OptLevel::O3;
    per_iter_o3 = Dperf{obstacle::minic_kernel_source(), opt}.benchmark(w).per_iteration_ns();
  }
  EXPECT_GT(per_iter_o0, per_iter_o3 * 1.8) << "O0 should be ~3x slower than O3";
}

TEST(TraceGen, KernelTraceHasExpectedShape) {
  obstacle::ObstacleProblem p;
  p.n = 34;
  DperfOptions opt;
  opt.level = ir::OptLevel::O1;
  const Dperf pipeline{obstacle::minic_kernel_source(), opt};
  const Workload w = obstacle::kernel_workload(p, /*iters=*/12, /*rcheck=*/3);
  // Rank 0 of 3 talks only to rank 1: one send + one recv per iteration.
  const Trace t = generate_trace(pipeline.instrumented(), opt.level, w, 0, 3, 3e9);
  EXPECT_EQ(t.count(TraceEvent::Kind::IterMark), 12u);
  EXPECT_EQ(t.count(TraceEvent::Kind::Send), 12u);
  EXPECT_EQ(t.count(TraceEvent::Kind::Recv), 12u);
  EXPECT_EQ(t.count(TraceEvent::Kind::Allreduce), 4u);  // every 3rd iteration
  EXPECT_GT(t.total_compute_ns(), 0u);
  // A middle rank exchanges with both sides.
  const Trace mid = generate_trace(pipeline.instrumented(), opt.level, w, 1, 3, 3e9);
  EXPECT_EQ(mid.count(TraceEvent::Kind::Send), 24u);
  EXPECT_EQ(mid.count(TraceEvent::Kind::Recv), 24u);
  // Ghost rows are n doubles.
  for (const auto& e : mid.events)
    if (e.kind == TraceEvent::Kind::Send) EXPECT_DOUBLE_EQ(e.bytes, 34 * 8.0);
}

TEST(TraceGen, ScaledUpTraceMatchesFullRunClosely) {
  obstacle::ObstacleProblem p;
  p.n = 34;
  DperfOptions opt;
  opt.level = ir::OptLevel::O2;
  opt.chunk = 5;
  opt.sample_iters = 15;
  const Dperf pipeline{obstacle::minic_kernel_source(), opt};
  const Workload full = obstacle::kernel_workload(p, /*iters=*/60, /*rcheck=*/5);

  const Trace direct = generate_trace(pipeline.instrumented(), opt.level, full, 0, 2, 3e9);
  const Trace scaled = pipeline.trace_for_rank(full, 0, 2);
  // Identical communication structure...
  EXPECT_EQ(scaled.count(TraceEvent::Kind::Send), direct.count(TraceEvent::Kind::Send));
  EXPECT_EQ(scaled.count(TraceEvent::Kind::Recv), direct.count(TraceEvent::Kind::Recv));
  EXPECT_EQ(scaled.count(TraceEvent::Kind::Allreduce),
            direct.count(TraceEvent::Kind::Allreduce));
  EXPECT_EQ(scaled.count(TraceEvent::Kind::IterMark),
            direct.count(TraceEvent::Kind::IterMark));
  // ...and compute time within a few percent (the contact set evolves, so
  // per-iteration cycle counts drift slightly: that is the modelling error
  // dPerf's block benchmarking accepts).
  const double d = static_cast<double>(direct.total_compute_ns());
  const double s = static_cast<double>(scaled.total_compute_ns());
  EXPECT_NEAR(s / d, 1.0, 0.05);
}

TEST(Facade, InstrumentedSourceIsTheArtifact) {
  DperfOptions opt;
  const Dperf pipeline{kCommProgram, opt};
  // The stored program was parsed back from the unparsed text.
  EXPECT_FALSE(pipeline.instrumented_source().empty());
  EXPECT_NE(pipeline.instrumented_source().find("dperf_block_begin(0)"), std::string::npos);
  EXPECT_GE(pipeline.instrumented().blocks.size(), 2u);
}

}  // namespace
}  // namespace pdc::dperf
