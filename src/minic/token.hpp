// Token stream for MiniC, the C subset dPerf analyzes in this reproduction
// (standing in for the C/C++/Fortran front-ends ROSE gives the paper).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace pdc::minic {

enum class Tok {
  // literals / identifiers
  IntLit, FloatLit, Ident,
  // keywords
  KwInt, KwDouble, KwVoid, KwIf, KwElse, KwWhile, KwFor, KwReturn,
  // punctuation
  LParen, RParen, LBrace, RBrace, LBracket, RBracket, Comma, Semi,
  // operators
  Assign, Plus, Minus, Star, Slash, Percent,
  Lt, Le, Gt, Ge, EqEq, Ne, AndAnd, OrOr, Not,
  End,
};

struct Token {
  Tok kind = Tok::End;
  std::string text;
  long long int_val = 0;
  double float_val = 0;
  int line = 1;
  int col = 1;
};

/// Compile-time diagnostics carry a source position.
class CompileError : public std::runtime_error {
 public:
  CompileError(int line, int col, const std::string& what)
      : std::runtime_error("line " + std::to_string(line) + ":" + std::to_string(col) +
                           ": " + what),
        line_(line),
        col_(col) {}
  int line() const { return line_; }
  int col() const { return col_; }

 private:
  int line_, col_;
};

/// Tokenizes MiniC source ('//' and '/* */' comments allowed).
/// Throws CompileError on malformed input.
std::vector<Token> lex(const std::string& source);

/// Human-readable token-kind name for diagnostics.
std::string tok_name(Tok kind);

}  // namespace pdc::minic
