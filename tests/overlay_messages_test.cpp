// Focused tests for overlay message plumbing: wire sizing, RPC-reply
// routing, tracker-list side queries and statistics accounting.
#include <gtest/gtest.h>

#include "net/builders.hpp"
#include "overlay/overlay.hpp"

namespace pdc::overlay {
namespace {

TEST(Messages, WireSizeGrowsWithCarriedReferences) {
  OverlayConfig cfg;
  const double base = ctrl_wire_bytes(cfg, CtrlMsg{TrackerHeartbeat{0}});
  EXPECT_DOUBLE_EQ(base, cfg.ctrl_bytes);

  GetTrackersReply reply;
  for (int i = 0; i < 10; ++i) reply.trackers.push_back(TrackerRef{i, Ipv4{10, 0, 0, 1}});
  EXPECT_DOUBLE_EQ(ctrl_wire_bytes(cfg, CtrlMsg{reply}),
                   cfg.ctrl_bytes + 10 * cfg.ref_bytes);

  PeerListReply peers;
  for (int i = 0; i < 4; ++i) peers.peers.push_back(PeerRef{i, Ipv4{}, {}});
  EXPECT_DOUBLE_EQ(ctrl_wire_bytes(cfg, CtrlMsg{peers}),
                   cfg.ctrl_bytes + 4 * cfg.ref_bytes);
}

TEST(Messages, RpcReplyClassification) {
  EXPECT_TRUE(is_rpc_reply(CtrlMsg{GetTrackersReply{}}));
  EXPECT_TRUE(is_rpc_reply(CtrlMsg{TrackerJoinAck{}}));
  EXPECT_TRUE(is_rpc_reply(CtrlMsg{PeerJoinAck{}}));
  EXPECT_TRUE(is_rpc_reply(CtrlMsg{PeerListReply{}}));
  EXPECT_TRUE(is_rpc_reply(CtrlMsg{TrackerListReply{}}));
  EXPECT_TRUE(is_rpc_reply(CtrlMsg{ReserveAck{}}));
  EXPECT_FALSE(is_rpc_reply(CtrlMsg{TrackerHeartbeat{}}));
  EXPECT_FALSE(is_rpc_reply(CtrlMsg{StateUpdate{}}));
  EXPECT_FALSE(is_rpc_reply(CtrlMsg{ReserveReq{}}));
}

struct Fixture {
  explicit Fixture(int hosts)
      : plat(net::build_star(net::bordeplage_cluster_spec(hosts))),
        flownet(eng, plat),
        overlay(eng, plat, flownet) {}
  sim::Engine eng;
  net::Platform plat;
  net::FlowNet flownet;
  Overlay overlay;
};

TEST(Messages, DuplicateHostRegistrationRejected) {
  Fixture f{6};
  f.overlay.create_server(f.plat.host(0));
  f.overlay.create_tracker(f.plat.host(1), true);
  EXPECT_THROW(f.overlay.create_peer(f.plat.host(1), PeerResources{}), std::logic_error);
  EXPECT_THROW(f.overlay.create_server(f.plat.host(0)), std::logic_error);
  EXPECT_THROW(f.overlay.create_tracker(f.plat.host(0), true), std::logic_error);
}

TEST(Messages, ControlTrafficIsCounted) {
  Fixture f{8};
  f.overlay.create_server(f.plat.host(0));
  f.overlay.create_tracker(f.plat.host(1), true);
  f.overlay.finish_bootstrap();
  f.overlay.create_peer(f.plat.host(3), PeerResources{3e9, 1e9, 1e9});
  f.eng.run_until(30);
  // Join + periodic state updates + acks + stats: well above zero.
  EXPECT_GT(f.overlay.ctrl_messages_sent(), 20u);
}

TEST(Messages, MessagesToUnknownHostsAreDropped) {
  Fixture f{6};
  f.overlay.create_server(f.plat.host(0));
  // Sending to a host with no actor must not crash or wedge the engine.
  f.overlay.send_ctrl(f.plat.host(0), f.plat.host(5), CtrlMsg{TrackerHeartbeat{0}});
  f.eng.run_until(5);
  EXPECT_EQ(f.overlay.ctrl_messages_sent(), 1u);
}

TEST(Messages, CrashedActorStopsConsumingMessages) {
  Fixture f{8};
  f.overlay.create_server(f.plat.host(0));
  TrackerActor& t = f.overlay.create_tracker(f.plat.host(1), true);
  f.overlay.finish_bootstrap();
  f.eng.run_until(2);
  t.crash();
  // Deliveries to the crashed tracker are dropped silently; peers keep
  // retrying and eventually give up joining through it.
  PeerActor& p = f.overlay.create_peer(f.plat.host(4), PeerResources{3e9, 1e9, 1e9});
  f.eng.run_until(40);
  EXPECT_FALSE(p.joined());  // only tracker is dead; nothing to join
  EXPECT_TRUE(p.alive());    // the peer itself keeps running
}

}  // namespace
}  // namespace pdc::overlay
