#include "obs/publish.hpp"

#include <cstdint>

#include "net/flow.hpp"
#include "net/platform.hpp"
#include "obs/metrics.hpp"
#include "scenario/runner.hpp"
#include "serve/cache.hpp"
#include "sim/engine.hpp"

namespace pdc::obs {

namespace {

std::uint64_t u(std::uint64_t v) { return v; }  // size_t lands here on LP64
std::uint64_t u(int v) { return static_cast<std::uint64_t>(v); }

}  // namespace

void publish_flownet(Registry& reg, const net::FlowNetStats& s) {
  reg.counter("flownet", "flows_started", "flows opened").set(s.flows_started);
  reg.counter("flownet", "flows_completed", "flows drained").set(s.flows_completed);
  reg.counter("flownet", "bytes_completed", "payload bytes delivered")
      .set(s.bytes_completed);
  reg.counter("flownet", "reshares", "bandwidth re-solves").set(s.reshares);
  reg.counter("flownet", "reshares_partial", "re-solves touching a strict subset")
      .set(s.reshares_partial);
  reg.counter("flownet", "flows_rescanned", "flow rate recomputations")
      .set(s.flows_rescanned);
  reg.counter("flownet", "flows_starved", "flows stuck at rate 0")
      .set(s.flows_starved);
  reg.counter("flownet", "link_rescales", "capacity changes applied")
      .set(s.link_rescales);
  // Class-solver compression observability — appended after the historical
  // fields so pre-existing records/goldens change only additively.
  reg.gauge("flownet", "classes_active", "peak concurrent flow classes")
      .set(s.classes_active);
  reg.counter("flownet", "class_merges", "flows joining an existing class")
      .set(s.class_merges);
  reg.counter("flownet", "class_splits", "flows reclassified mid-transfer")
      .set(s.class_splits);
}

void publish_routes(Registry& reg, const net::RouteStats& s) {
  reg.counter("routes", "routes_computed", "shortest paths solved")
      .set(s.routes_computed);
  reg.counter("routes", "cache_hits", "route cache hits").set(s.cache_hits);
  reg.counter("routes", "cache_evictions", "route cache evictions")
      .set(s.cache_evictions);
  reg.gauge("routes", "cache_entries", "resident cached routes").set(s.cache_entries);
}

void publish_engine(Registry& reg, const sim::EngineStats& s) {
  reg.counter("engine", "events_dispatched", "events dispatched")
      .set(s.events_dispatched);
  reg.counter("engine", "closures_inline", "closures within the inline buffer")
      .set(s.closures_inline);
  reg.counter("engine", "closures_heap", "closures spilled to the slab pool")
      .set(s.closures_heap);
  reg.counter("engine", "resumes", "raw coroutine resumes").set(s.resumes);
  reg.counter("engine", "slot_arms", "timer-slot arms").set(s.slot_arms);
  reg.counter("engine", "stale_slot_events", "superseded slot events shed")
      .set(s.stale_slot_events);
  reg.gauge("engine", "peak_queue_depth", "max pending events")
      .set(s.peak_queue_depth);
}

void publish_churn(Registry& reg, const scenario::ChurnPhaseRecord& c) {
  reg.counter("churn", "events_applied", "churn events applied")
      .set(u(c.stats.events_applied));
  reg.counter("churn", "events_skipped", "churn events without a viable target")
      .set(u(c.stats.events_skipped));
  reg.counter("churn", "peer_crashes", "peers crashed").set(u(c.stats.peer_crashes));
  reg.counter("churn", "peer_joins", "replacement peers joined")
      .set(u(c.stats.peer_joins));
  reg.counter("churn", "tracker_crashes", "trackers crashed")
      .set(u(c.stats.tracker_crashes));
  reg.counter("churn", "link_degrades", "links degraded")
      .set(u(c.stats.link_degrades));
  reg.counter("churn", "link_restores", "links restored")
      .set(u(c.stats.link_restores));
  reg.counter("churn", "attempts", "submissions used").set(u(c.attempts));
  reg.counter("churn", "reallocations", "re-submissions after aborts")
      .set(u(c.reallocations()));
  reg.counter("churn", "rejoins", "peer zone failovers").set(u(c.rejoins));
}

void publish_memos(Registry& reg, const scenario::MemoStats& s) {
  reg.gauge("memos", "cost_profiles", "memoized cost profiles")
      .set(u(s.cost_profiles));
  reg.gauge("memos", "cost_profile_bytes", "cost profile footprint")
      .set(u(s.cost_profile_bytes));
  reg.gauge("memos", "trace_sets", "memoized dPerf trace sets").set(u(s.trace_sets));
  reg.gauge("memos", "trace_bytes", "dPerf trace footprint").set(u(s.trace_bytes));
}

void publish_cache(Registry& reg, const serve::CacheStats& s) {
  reg.counter("cache", "hits", "memo cache hits").set(s.hits);
  reg.counter("cache", "misses", "memo cache misses").set(s.misses);
  reg.counter("cache", "evictions", "memo cache evictions").set(s.evictions);
  reg.counter("cache", "insertions", "memo cache insertions").set(s.insertions);
  reg.gauge("cache", "entries", "resident cached answers").set(u(s.entries));
  reg.gauge("cache", "bytes", "cached answer bytes").set(u(s.bytes));
  reg.gauge("cache", "budget_bytes", "cache byte budget").set(u(s.budget_bytes));
}

}  // namespace pdc::obs
