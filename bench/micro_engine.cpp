// Event-kernel throughput microbench, seeding the perf trajectory for the
// allocation-free engine rewrite: how many scheduled events per wall-clock
// second can sim::Engine dispatch under the capture profiles the real
// subsystems produce?
//
// Workloads:
//  * closure_light  — self-rechaining events with a pointer-sized capture
//    (FlowNet's completion posts, injector timeline events);
//  * closure_heavy  — the same chains carrying a 48-byte capture block (an
//    overlay CtrlMsg / ChurnEvent-sized payload), the case where a plain
//    std::function heap-allocates per event;
//  * sleep_storm    — K coroutines each awaiting M engine sleeps (the
//    coroutine-resume fast path);
//  * timed_recv     — mailbox ping-pong where every receive is a recv_for
//    satisfied before its timeout (the overlay heartbeat/RPC pattern: the
//    armed timeout must not linger in the heap, let alone allocate);
//  * slot_churn     — persistent timer slots re-arming from their own
//    callback with a superseded shadow arm per fire (FlowNet's completion
//    timer under reshare churn);
//  * cancellable    — schedule_cancellable batches cancelled before their
//    fire time (RPC guard timers).
//
// Emits BENCH_engine.json (pass a path as argv[1] to redirect). Pass
// --baseline=FILE with a previously emitted JSON to embed per-workload
// before/after speedups. PDC_QUICK shrinks the event budget for smoke/ASan
// runs.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/mailbox.hpp"
#include "sim/process.hpp"
#include "support/env.hpp"
#include "support/json.hpp"

namespace {

using namespace pdc;
using sim::Engine;

struct Result {
  std::string name;
  std::uint64_t events = 0;
  double wall_seconds = 0;
  double events_per_sec = 0;
};

struct Timer {
  std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  }
};

Result finish(std::string name, std::uint64_t events, const Timer& timer) {
  Result r;
  r.name = std::move(name);
  r.events = events;
  r.wall_seconds = timer.seconds();
  r.events_per_sec =
      r.wall_seconds > 0 ? static_cast<double>(events) / r.wall_seconds : 0;
  return r;
}

// --- closure chains ----------------------------------------------------------

struct LightChain {
  Engine* eng;
  std::uint64_t remaining;
  void step() {
    if (remaining == 0) return;
    --remaining;
    eng->schedule_after(0.001, [this] { step(); });
  }
};

Result bench_closure_light(std::uint64_t events) {
  Engine eng;
  constexpr int kChains = 16;
  std::vector<LightChain> chains(kChains);
  Timer timer;
  for (auto& c : chains) {
    c.eng = &eng;
    c.remaining = events / kChains;
    c.step();
  }
  eng.run();
  return finish("closure_light", eng.dispatched_events(), timer);
}

/// Capture block sized like the real oversized captures in src/: an overlay
/// CtrlMsg move-capture or a churn ChurnEvent by value (~40-56 bytes) — past
/// libstdc++'s 16-byte std::function SBO, inside sim::EventFn's inline
/// buffer.
struct Blob {
  double payload[6] = {1, 2, 3, 4, 5, 6};
};

struct HeavyChain {
  Engine* eng;
  std::uint64_t remaining;
  double sink = 0;
  void step(const Blob& blob) {
    sink += blob.payload[0];
    if (remaining == 0) return;
    --remaining;
    Blob next = blob;
    next.payload[0] += 1;
    eng->schedule_after(0.001, [this, next] { step(next); });
  }
};

Result bench_closure_heavy(std::uint64_t events) {
  Engine eng;
  constexpr int kChains = 16;
  std::vector<HeavyChain> chains(kChains);
  Timer timer;
  for (auto& c : chains) {
    c.eng = &eng;
    c.remaining = events / kChains;
    c.step(Blob{});
  }
  eng.run();
  return finish("closure_heavy", eng.dispatched_events(), timer);
}

// --- coroutine sleep storm ---------------------------------------------------

sim::Process sleeper(Engine& eng, std::uint64_t naps) {
  for (std::uint64_t i = 0; i < naps; ++i) co_await eng.sleep(0.001);
}

Result bench_sleep_storm(std::uint64_t events) {
  Engine eng;
  constexpr int kProcs = 64;
  Timer timer;
  for (int i = 0; i < kProcs; ++i) eng.spawn(sleeper(eng, events / kProcs));
  eng.run();
  return finish("sleep_storm", eng.dispatched_events(), timer);
}

// --- timed-receive storm -----------------------------------------------------

sim::Process timed_ponger(Engine& eng, sim::Mailbox<int>& in, sim::Mailbox<int>& out,
                          std::uint64_t rounds, bool starts) {
  if (starts) out.push(0);
  for (std::uint64_t i = 0; i < rounds; ++i) {
    // Generous timeout: every receive is satisfied by a push long before the
    // timer fires, so the armed timeout state is pure overhead to shed.
    auto v = co_await in.recv_for(1000.0);
    if (!v) co_return;  // timeout: broken bench
    out.push(*v + 1);
  }
}

Result bench_timed_recv(std::uint64_t events) {
  Engine eng;
  sim::Mailbox<int> a{eng}, b{eng};
  const std::uint64_t rounds = events / 2;
  Timer timer;
  eng.spawn(timed_ponger(eng, a, b, rounds, true));
  eng.spawn(timed_ponger(eng, b, a, rounds, false));
  eng.run();
  return finish("timed_recv", eng.dispatched_events(), timer);
}

// --- timer-slot churn --------------------------------------------------------

struct SlotChurn {
  Engine* eng;
  std::uint64_t remaining = 0;
  int slot = -1;
  void fire() {
    if (remaining == 0) return;
    --remaining;
    eng->arm_timer_slot(slot, 0.002);  // superseded shadow arm
    eng->arm_timer_slot(slot, 0.001);  // the one that fires
  }
};

Result bench_slot_churn(std::uint64_t events) {
  Engine eng;
  constexpr int kSlots = 8;
  std::vector<SlotChurn> churners(kSlots);
  Timer timer;
  for (auto& c : churners) {
    c.eng = &eng;
    c.remaining = events / (2 * kSlots);
    c.slot = eng.create_timer_slot([&c] { c.fire(); });
    c.fire();
  }
  eng.run();
  for (auto& c : churners) eng.destroy_timer_slot(c.slot);
  return finish("slot_churn", eng.dispatched_events(), timer);
}

// --- cancellable guard timers ------------------------------------------------

struct CancellableStorm {
  Engine* eng;
  std::uint64_t remaining = 0;
  std::uint64_t armed = 0;
  void step() {
    if (remaining == 0) return;
    // A batch of guard timers cancelled before their fire time — the RPC
    // timeout pattern: arm, get the reply, cancel.
    constexpr std::uint64_t kBatch = 8;
    const std::uint64_t n = remaining < kBatch ? remaining : kBatch;
    remaining -= n;
    armed += n;
    for (std::uint64_t i = 0; i < n; ++i) {
      sim::TimerHandle h = eng->schedule_cancellable(100.0, [] {});
      h.cancel();
    }
    eng->schedule_after(0.001, [this] { step(); });
  }
};

Result bench_cancellable(std::uint64_t events) {
  Engine eng;
  CancellableStorm storm{&eng, events};
  Timer timer;
  storm.step();
  eng.run();
  // Count the armed guards as the work metric: the cancelled events are what
  // this workload exists to price.
  return finish("cancellable", storm.armed + eng.dispatched_events(), timer);
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_engine.json";
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--baseline=", 11) == 0)
      baseline_path = argv[i] + 11;
    else
      out_path = argv[i];
  }

  const bool quick = env_flag("PDC_QUICK");
  const std::uint64_t events = quick ? 100'000 : 4'000'000;

  std::vector<Result> results;
  results.push_back(bench_closure_light(events));
  results.push_back(bench_closure_heavy(events));
  results.push_back(bench_sleep_storm(events));
  results.push_back(bench_timed_recv(events));
  results.push_back(bench_slot_churn(events));
  results.push_back(bench_cancellable(events));

  // Optional before/after comparison against a previously emitted file.
  JsonValue baseline;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    baseline = parse_json(buf.str());
  }
  auto baseline_rate = [&baseline](const std::string& name) -> double {
    if (!baseline.has("workloads")) return 0;
    for (const JsonValue& w : baseline.at("workloads").as_array())
      if (w.at("name").as_string() == name) return w.at("events_per_sec").as_double();
    return 0;
  };

  JsonWriter w;
  w.begin_object();
  w.kv("bench", "engine_events_per_sec");
  w.kv("quick", quick);
  w.kv("events_per_workload", events);
  w.key("workloads").begin_array();
  for (const Result& r : results) {
    const double before = baseline_rate(r.name);
    w.begin_object();
    w.kv("name", r.name);
    w.kv("events", r.events);
    w.kv("wall_seconds", r.wall_seconds);
    w.kv("events_per_sec", r.events_per_sec);
    if (before > 0) {
      w.kv("baseline_events_per_sec", before);
      w.kv("speedup", r.events_per_sec / before);
    }
    w.end_object();
    std::printf("%-14s %10llu events  %8.3f s  %12.0f ev/s",
                r.name.c_str(), static_cast<unsigned long long>(r.events),
                r.wall_seconds, r.events_per_sec);
    if (before > 0) std::printf("  %6.2fx vs baseline", r.events_per_sec / before);
    std::printf("\n");
    std::fflush(stdout);
  }
  w.end_array();
  w.end_object();

  std::FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fputs(w.str().c_str(), f);
  std::fputs("\n", f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
