// Table I (paper §IV-B.4): "comparing equivalent predictions and the
// corresponding computing power in Grid5000" -- for the paper's five
// comparisons, the predicted P2P desktop-grid time is matched against the
// cluster reference and classified the way the paper words it
// ("slightly lower than" = the P2P configuration performs slightly worse,
// "same as" = equivalent computing power).
#include <cmath>
#include <cstdio>
#include <map>

#include "experiments/harness.hpp"
#include "scenario/runner.hpp"
#include "support/table.hpp"

namespace {

std::string classify(double p2p_seconds, double cluster_seconds) {
  const double ratio = p2p_seconds / cluster_seconds;
  if (ratio > 2.0) return "much lower than";
  if (ratio > 1.05) return "slightly lower than";
  if (ratio >= 0.95) return "same as";
  if (ratio >= 0.5) return "slightly higher than";
  return "much higher than";
}

}  // namespace

int main() {
  using namespace pdc;
  scenario::RunSpec base = scenario::RunSpec::from_env();
  base.level = ir::OptLevel::O0;
  std::printf("Table I -- equivalent computing power, optimization level 0\n"
              "(classification by predicted-time ratio; the paper's wording:\n"
              " 'performance slightly lower than' = P2P config slightly slower)\n\n");

  auto run_for = [&](int peers) {
    scenario::RunSpec run = base;
    run.peers = peers;
    return run;
  };

  // Reference cluster times at the peer counts the paper compares against.
  std::map<int, double> cluster;
  for (int peers : {2, 4, 8})
    cluster[peers] = scenario::Runner{{"table1", scenario::PlatformSpec::grid5000(),
                                       run_for(peers)}}
                         .run_reference()
                         .solve_seconds;

  // Predicted desktop-grid times for the paper's configurations.
  std::map<std::pair<const char*, int>, double> p2p;
  for (int peers : {2, 4, 8, 32}) {
    const scenario::Runner cluster_runner{
        {"table1", scenario::PlatformSpec::grid5000(), run_for(peers)}};
    const auto traces = cluster_runner.traces();
    if (peers == 4)
      p2p[{"xDSL", peers}] = scenario::Runner{{"table1", scenario::PlatformSpec::xdsl(),
                                               run_for(peers)}}
                                 .run_predicted(traces)
                                 .solve_seconds;
    p2p[{"LAN", peers}] = scenario::Runner{{"table1", scenario::PlatformSpec::lan(),
                                            run_for(peers)}}
                              .run_predicted(traces)
                              .solve_seconds;
    std::printf("  ... %d peers done\n", peers);
  }

  struct Row {
    int p2p_peers;
    const char* topo;
    int cluster_peers;
    const char* paper_says;
  };
  const Row rows[] = {
      {4, "xDSL", 2, "slightly lower than"},
      {2, "LAN", 2, "slightly lower than"},
      {4, "LAN", 4, "slightly lower than"},
      {8, "LAN", 4, "same as"},
      {32, "LAN", 8, "slightly lower than"},
  };

  TextTable table({"Processes", "topology", "measured", "(paper)", "than", "Grid5000"});
  for (const Row& r : rows) {
    const double pt = p2p.at({r.topo, r.p2p_peers});
    const double ct = cluster.at(r.cluster_peers);
    table.add_row({std::to_string(r.p2p_peers), r.topo, classify(pt, ct),
                   std::string("(") + r.paper_says + ")",
                   TextTable::num(pt, 1) + "s vs " + TextTable::num(ct, 1) + "s",
                   std::to_string(r.cluster_peers)});
  }
  std::printf("\n%s\n", table.render().c_str());

  // Our own equivalence search: for each cluster size, the smallest LAN
  // configuration that matches or beats it.
  std::printf("Measured equivalence (smallest LAN config with time <= cluster):\n");
  TextTable eq({"Grid5000 peers", "cluster [s]", "equivalent LAN peers", "LAN [s]"});
  for (int cpeers : {2, 4, 8}) {
    int best = -1;
    double best_t = 0;
    for (int peers : {2, 4, 8, 32}) {
      const double t = p2p.at({"LAN", peers});
      if (t <= cluster[cpeers] * 1.05) {
        best = peers;
        best_t = t;
        break;
      }
    }
    eq.add_row({std::to_string(cpeers), TextTable::num(cluster[cpeers], 1),
                best > 0 ? std::to_string(best) : "none",
                best > 0 ? TextTable::num(best_t, 1) : "-"});
  }
  std::printf("%s\n", eq.render().c_str());
  return 0;
}
