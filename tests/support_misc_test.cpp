#include <gtest/gtest.h>

#include <set>

#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/time.hpp"

namespace pdc {
namespace {

TEST(TimeUnits, Conversions) {
  EXPECT_EQ(to_ns(1.0), 1000000000u);
  EXPECT_EQ(to_ns(1.5 * units::us), 1500u);
  EXPECT_EQ(to_ns(0.0), 0u);
  EXPECT_EQ(to_ns(-1.0), 0u);  // clamped
  EXPECT_DOUBLE_EQ(from_ns(2500), 2.5e-6);
  EXPECT_DOUBLE_EQ(from_ns(to_ns(0.123456789)), 0.123456789);
}

TEST(TimeUnits, BandwidthConstants) {
  EXPECT_DOUBLE_EQ(units::Gbps, 125.0e6);   // 1 Gbit/s = 125 MB/s
  EXPECT_DOUBLE_EQ(units::Mbps, 125.0e3);
  EXPECT_DOUBLE_EQ(8.0 * units::KiB, 8192.0);
}

TEST(Rng, DeterministicFromSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng{1};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(5, 10);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 10);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all values hit
}

TEST(Rng, UniformDoubleStaysInRange) {
  Rng rng{2};
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(5.0, 10.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 10.0);
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng{3};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::vector<int> resorted = v;
  std::sort(resorted.begin(), resorted.end());
  EXPECT_EQ(resorted, sorted);
}

TEST(Rng, SplitStreamsDiverge) {
  Rng a{9};
  Rng child = a.split();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"Peers", "Time [s]"});
  t.add_row({"2", TextTable::num(42.123, 2)});
  t.add_row({"32", TextTable::num(7.5, 2)});
  const std::string out = t.render();
  EXPECT_NE(out.find("| Peers | Time [s] |"), std::string::npos);
  EXPECT_NE(out.find("| 2     | 42.12    |"), std::string::npos);
  EXPECT_NE(out.find("| 32    | 7.50     |"), std::string::npos);
}

TEST(TextTable, PadsMissingCells) {
  TextTable t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_NE(t.render().find("| 1 |   |   |"), std::string::npos);
}

}  // namespace
}  // namespace pdc
