// Reshare-throughput microbench for the flow engine, seeding the perf
// trajectory: with N long-lived flows holding the network, how many
// start/complete reshares per wall-clock second can each engine sustain?
//
// Three topologies bracket the design space:
//  * pairs    — disjoint host pairs on private links: many independent
//    sharing components, the incremental engine's O(affected) best case;
//  * star     — random all-to-all over 64 hosts through one backbone: a
//    single giant component whose flows have ~O(flows) distinct contention
//    profiles, so class compression is structurally impossible and the
//    bench isolates the per-class constant factor;
//  * backbone — disjoint host pairs routed through one shared trunk: a
//    single giant component that collapses into O(1) flow classes, the
//    class solver's payoff case (and the shape of the paper's platforms).
//
// Emits BENCH_flownet.json (pass a path as argv[1] to redirect). Reference
// mode is skipped above --ref-cap flows (default 1000): the point of the
// exercise is that the full recompute is unusable at that scale. Pass
// --baseline=FILE (a previously emitted BENCH_flownet.json) to embed
// before/after speedups at matched (topology, flows, mode).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "net/builders.hpp"
#include "net/flow.hpp"
#include "support/env.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"

namespace {

using namespace pdc;
using net::FlowNet;
using net::Platform;

struct Result {
  std::string topology;
  int flows = 0;
  const char* mode = "";
  std::uint64_t churn_reshares = 0;
  double wall_seconds = 0;
  double reshares_per_sec = 0;
  std::uint64_t reshares_partial = 0;
  std::uint64_t flows_rescanned = 0;
  std::uint64_t classes_active = 0;
  std::uint64_t class_merges = 0;
  std::uint64_t class_splits = 0;
};

Platform build_pairs(int pairs) {
  Platform p;
  for (int i = 0; i < 2 * pairs; ++i)
    p.add_host("h" + std::to_string(i), 1e9,
               Ipv4{10, static_cast<std::uint8_t>(i / 62500),
                    static_cast<std::uint8_t>(i / 250 % 250), static_cast<std::uint8_t>(i % 250 + 1)});
  for (int i = 0; i < pairs; ++i) {
    const auto l = p.add_link("l" + std::to_string(i), 1e6, 0);
    p.connect(p.host(2 * i), p.host(2 * i + 1), l);
  }
  return p;
}

/// Loads the network with `flows` never-completing base flows, then replays
/// `churn` short flows (each one start + one completion reshare) and times
/// that churn window.
Result run_case(const std::string& topology, const Platform& plat, int flows, int churn,
                FlowNet::Mode mode) {
  sim::Engine eng;
  FlowNet netw{eng, plat, mode};
  Rng rng{42};
  const int hosts = plat.host_count();
  auto pick_pair = [&](int& s, int& d) {
    if (topology == "pairs" || topology == "backbone") {
      const int pair = static_cast<int>(rng.uniform_int(0, hosts / 2 - 1));
      s = 2 * pair;
      d = 2 * pair + 1;
    } else {
      s = static_cast<int>(rng.uniform_int(0, hosts - 1));
      d = static_cast<int>(rng.uniform_int(0, hosts - 1));
      if (d == s) d = (d + 1) % hosts;
    }
  };
  for (int i = 0; i < flows; ++i) {
    int s, d;
    if (topology == "backbone") {
      // One base flow per disjoint pair: every NIC keeps a single member, so
      // the whole population shares one route signature (one class).
      const int pair = i % (hosts / 2);
      s = 2 * pair;
      d = 2 * pair + 1;
    } else {
      pick_pair(s, d);
    }
    netw.start_flow(plat.host(s), plat.host(d), 1e15, [] {});  // outlives the bench
  }
  const Time kGap = 0.05;  // leaves room for each churn flow to drain
  for (int i = 0; i < churn; ++i) {
    int s, d;
    pick_pair(s, d);  // backbone churn lands on a base pair: split + re-merge
    eng.schedule_at(1.0 + kGap * i, [&netw, &plat, s, d] {
      netw.start_flow(plat.host(s), plat.host(d), 16.0, [] {});
    });
  }
  eng.run_until(0.5);  // settle: every base flow reaches its transfer phase
  const net::FlowNetStats before = netw.stats();
  const auto t0 = std::chrono::steady_clock::now();
  eng.run_until(1.0 + kGap * (churn + 1));
  const auto t1 = std::chrono::steady_clock::now();
  const net::FlowNetStats& after = netw.stats();

  Result r;
  r.topology = topology;
  r.flows = flows;
  r.mode = mode == FlowNet::Mode::Incremental ? "incremental" : "reference";
  r.churn_reshares = after.reshares - before.reshares;
  r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  r.reshares_per_sec =
      r.wall_seconds > 0 ? static_cast<double>(r.churn_reshares) / r.wall_seconds : 0;
  r.reshares_partial = after.reshares_partial - before.reshares_partial;
  r.flows_rescanned = after.flows_rescanned - before.flows_rescanned;
  r.classes_active = after.classes_active;  // peak gauge, not a delta
  r.class_merges = after.class_merges - before.class_merges;
  r.class_splits = after.class_splits - before.class_splits;
  std::printf(
      "%-8s  %5d flows  %-11s  %6llu reshares  %8.3f ms  %12.0f reshares/s  %5llu classes\n",
      topology.c_str(), flows, r.mode, static_cast<unsigned long long>(r.churn_reshares),
      r.wall_seconds * 1e3, r.reshares_per_sec,
      static_cast<unsigned long long>(r.classes_active));
  std::fflush(stdout);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_flownet.json";
  std::string baseline_path;
  int ref_cap = pdc::env_int("PDC_FLOWNET_REF_CAP", 1000);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--ref-cap=", 10) == 0)
      ref_cap = std::atoi(argv[i] + 10);
    else if (std::strncmp(argv[i], "--baseline=", 11) == 0)
      baseline_path = argv[i] + 11;
    else
      out_path = argv[i];
  }

  const int kFlowCounts[] = {10, 100, 1000, 10000};
  std::vector<Result> results;
  for (const char* topology : {"pairs", "star", "backbone"}) {
    for (const int flows : kFlowCounts) {
      const std::string topo{topology};
      const Platform plat =
          topo == "pairs" ? build_pairs(std::max(2, flows / 8))
          : topo == "star"
              ? net::build_star(net::lan_spec(64))
              : net::build_star(net::lan_spec(std::max(4, 2 * flows)));
      const int churn = flows >= 10000 ? 50 : 200;
      results.push_back(run_case(topo, plat, flows, churn, FlowNet::Mode::Incremental));
      if (flows <= ref_cap)
        results.push_back(run_case(topo, plat, flows, churn, FlowNet::Mode::Reference));
    }
  }

  // Optional before/after comparison against a previously emitted file.
  pdc::JsonValue baseline;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    baseline = pdc::parse_json(buf.str());
  }
  auto baseline_rate = [&baseline](const Result& r) -> double {
    if (!baseline.has("results")) return 0;
    for (const pdc::JsonValue& b : baseline.at("results").as_array())
      if (b.at("topology").as_string() == r.topology &&
          b.at("flows").as_double() == r.flows && b.at("mode").as_string() == r.mode)
        return b.at("reshares_per_sec").as_double();
    return 0;
  };

  // Speedups at matched (topology, flows), emitted through the shared
  // support JSON writer like every other BENCH_*.json / RunRecord file.
  pdc::JsonWriter w;
  w.begin_object();
  w.kv("bench", "flownet_reshare_throughput");
  w.key("results").begin_array();
  for (const Result& r : results) {
    const double before = baseline_rate(r);
    w.begin_object();
    w.kv("topology", r.topology);
    w.kv("flows", r.flows);
    w.kv("mode", r.mode);
    w.kv("churn_reshares", r.churn_reshares);
    w.kv("wall_seconds", r.wall_seconds);
    w.kv("reshares_per_sec", r.reshares_per_sec);
    w.kv("reshares_partial", r.reshares_partial);
    w.kv("flows_rescanned", r.flows_rescanned);
    w.kv("classes_active", r.classes_active);
    w.kv("class_merges", r.class_merges);
    w.kv("class_splits", r.class_splits);
    if (before > 0) {
      w.kv("baseline_reshares_per_sec", before);
      w.kv("speedup_vs_baseline", r.reshares_per_sec / before);
    }
    w.end_object();
  }
  w.end_array();
  w.key("speedup_incremental_over_reference").begin_object();
  for (const Result& inc : results) {
    if (std::strcmp(inc.mode, "incremental") != 0) continue;
    for (const Result& ref : results) {
      if (std::strcmp(ref.mode, "reference") != 0 || ref.topology != inc.topology ||
          ref.flows != inc.flows || ref.reshares_per_sec <= 0)
        continue;
      w.kv(inc.topology + "_" + std::to_string(inc.flows),
           inc.reshares_per_sec / ref.reshares_per_sec);
    }
  }
  w.end_object();
  w.end_object();

  std::FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fputs(w.str().c_str(), f);
  std::fputs("\n", f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
