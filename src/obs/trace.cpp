#include "obs/trace.hpp"

#include <fstream>
#include <stdexcept>

#include "support/json.hpp"

namespace pdc::obs {

namespace detail {
thread_local TraceRecorder* tls_recorder = nullptr;
}

std::uint32_t TraceRecorder::intern(std::string_view s) {
  const auto it = string_ids_.find(std::string(s));
  if (it != string_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(strings_.size());
  strings_.emplace_back(s);
  string_ids_.emplace(strings_.back(), id);
  return id;
}

void TraceRecorder::begin_phase(std::string_view name) {
  phases_.emplace_back(name);
  track_ids_.clear();
  next_tid_ = 0;
}

TrackId TraceRecorder::track(std::string_view name) {
  if (phases_.empty()) begin_phase("run");
  const auto it = track_ids_.find(std::string(name));
  if (it != track_ids_.end()) return it->second;
  const auto id = static_cast<TrackId>(tracks_.size());
  tracks_.push_back(Track{static_cast<std::uint32_t>(phases_.size() - 1), next_tid_++,
                          intern(name)});
  track_ids_.emplace(std::string(name), id);
  return id;
}

std::uint32_t TraceRecorder::render_args(std::initializer_list<TraceArg> args) {
  if (args.size() == 0) return 0;
  std::string out = "{";
  bool first = true;
  for (const TraceArg& a : args) {
    if (!first) out += ",";
    first = false;
    out += json_escape(a.key);
    out += ":";
    out += a.str != nullptr ? json_escape(a.str) : format_shortest(a.num);
  }
  out += "}";
  args_.push_back(std::move(out));
  return static_cast<std::uint32_t>(args_.size());
}

void TraceRecorder::push(char ph, TrackId t, std::uint32_t name, std::uint32_t cat,
                         double ts, std::uint64_t id, std::uint32_t args) {
  events_.push_back(Event{ph, t, name, cat, ts, id, args});
}

void TraceRecorder::span_begin(TrackId t, std::string_view name, double ts,
                               std::initializer_list<TraceArg> args) {
  push('B', t, intern(name), kNone, ts, 0, render_args(args));
}

void TraceRecorder::span_end(TrackId t, double ts) {
  push('E', t, kNone, kNone, ts, 0, 0);
}

void TraceRecorder::async_begin(TrackId t, std::string_view cat,
                                std::string_view name, std::uint64_t id, double ts,
                                std::initializer_list<TraceArg> args) {
  push('b', t, intern(name), intern(cat), ts, id, render_args(args));
}

void TraceRecorder::async_end(TrackId t, std::string_view cat,
                              std::string_view name, std::uint64_t id, double ts) {
  push('e', t, intern(name), intern(cat), ts, id, 0);
}

void TraceRecorder::instant(TrackId t, std::string_view name, double ts,
                            std::initializer_list<TraceArg> args) {
  push('i', t, intern(name), kNone, ts, 0, render_args(args));
}

void TraceRecorder::counter(TrackId t, std::string_view name, double ts,
                            std::initializer_list<TraceArg> args) {
  push('C', t, intern(name), kNone, ts, 0, render_args(args));
}

std::string TraceRecorder::to_json() const {
  // Hand-rolled assembly (instead of JsonWriter) because half the fields are
  // pre-rendered fragments; the output is still canonical JSON and
  // deterministic (insertion order, format_shortest timestamps).
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& obj) {
    if (!first) out += ",\n";
    first = false;
    out += obj;
  };
  // Metadata: one process per phase, one named thread per track.
  for (std::size_t pid = 0; pid < phases_.size(); ++pid)
    emit("{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
         ",\"name\":\"process_name\",\"args\":{\"name\":" + json_escape(phases_[pid]) +
         "}}");
  for (const Track& t : tracks_)
    emit("{\"ph\":\"M\",\"pid\":" + std::to_string(t.pid) +
         ",\"tid\":" + std::to_string(t.tid) +
         ",\"name\":\"thread_name\",\"args\":{\"name\":" +
         json_escape(strings_[t.name]) + "}}");
  for (const Event& e : events_) {
    const Track& t = tracks_[e.track];
    std::string obj = "{\"ph\":\"";
    obj += e.ph;
    obj += "\",\"pid\":" + std::to_string(t.pid) + ",\"tid\":" + std::to_string(t.tid);
    obj += ",\"ts\":" + format_shortest(e.ts * 1e6);
    if (e.name != kNone) obj += ",\"name\":" + json_escape(strings_[e.name]);
    if (e.cat != kNone) {
      obj += ",\"cat\":" + json_escape(strings_[e.cat]);
      obj += ",\"id\":" + std::to_string(e.id);
    }
    if (e.ph == 'i') obj += ",\"s\":\"t\"";  // thread-scoped instant
    if (e.args != 0) obj += ",\"args\":" + args_[e.args - 1];
    obj += "}";
    emit(obj);
  }
  out += "]}\n";
  return out;
}

void TraceRecorder::write(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open trace file '" + path + "'");
  const std::string doc = to_json();
  out.write(doc.data(), static_cast<std::streamsize>(doc.size()));
  if (!out) throw std::runtime_error("cannot write trace file '" + path + "'");
}

}  // namespace pdc::obs
