#include "dperf/analytic.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <map>
#include <set>
#include <tuple>
#include <utility>

#include "alloc/groups.hpp"
#include "net/flow.hpp"
#include "p2psap/p2psap.hpp"

namespace pdc::dperf {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Arrival/resume pair of one modelled message: when the payload becomes
/// available at the receiver, and when the sender's clock resumes (after
/// the transport ack for reliable channels, immediately for async ones).
struct SendTiming {
  double arrival = 0;
  double resume = 0;
};

/// Cursor over a summary's expanded op stream (pre ops, then each iteration
/// block body `repeats` times). `send_k` is the send index within the
/// current iteration body — the key of the phase-rate cache.
struct Cursor {
  int block = -1;  // -1 = pre
  std::size_t op = 0;
  std::uint64_t rep = 0;
  std::size_t send_k = 0;
  bool finished = false;
};

struct RankState {
  net::NodeIdx host = -1;
  double scale = 1.0;  // trace host_hz / target host_hz
  double clock = 0;
  double start = 0;
  bool at_allreduce = false;
  Cursor cur;
};

class Planner {
 public:
  Planner(p2pdc::Environment& env, net::NodeIdx submitter, p2pdc::TaskSpec spec,
          const std::vector<TraceSummary>& summaries,
          const std::vector<net::NodeIdx>& workers)
      : env_(env),
        platform_(env.platform()),
        flownet_(env.flownet()),
        submitter_(submitter),
        spec_(std::move(spec)),
        summaries_(summaries),
        workers_(workers) {}

  AnalyticReport run();

 private:
  // --- rate oracle ---------------------------------------------------------
  std::vector<double> batch(
      const std::vector<std::pair<net::NodeIdx, net::NodeIdx>>& endpoints) {
    ++queries_;
    return flownet_.hypothetical_rates(endpoints);
  }
  double unloaded(net::NodeIdx a, net::NodeIdx b) {
    if (a == b) return kInf;
    const auto key = std::make_pair(a, b);
    auto it = unloaded_.find(key);
    if (it != unloaded_.end()) return it->second;
    const double r = batch({{a, b}})[0];
    unloaded_.emplace(key, r);
    return r;
  }

  // --- channel cost model --------------------------------------------------
  /// Per-(pair, scheme) channel constants. Cached: adapt() builds a
  /// ChannelConfig with a heap-allocated profile string and route() walks
  /// the routing cache, and the evaluator asks for the same pair once per
  /// modelled message — thousands of times on the hot path.
  struct LinkCost {
    double latency = 0;
    double header_bytes = 0;
    double ack_bytes = 0;
  };
  const LinkCost& link_cost(net::NodeIdx a, net::NodeIdx b, p2psap::Scheme scheme) {
    const auto key = std::make_tuple(a, b, static_cast<int>(scheme));
    auto it = cost_cache_.find(key);
    if (it != cost_cache_.end()) return it->second;
    const p2psap::ChannelConfig cfg = p2psap::adapt(
        scheme, p2psap::classify(platform_.node(a).ip, platform_.node(b).ip));
    LinkCost lc;
    lc.latency = platform_.route(a, b).latency;
    lc.header_bytes = cfg.header_bytes;
    lc.ack_bytes = cfg.ack_bytes;
    return cost_cache_.emplace(key, lc).first->second;
  }
  /// Reliable send: payload flow, then transport ack back (P2PSAP
  /// Channel::send). A zero-byte ack still pays the reverse route latency,
  /// exactly like FlowNet's latency phase.
  SendTiming sync_send(double t, net::NodeIdx a, net::NodeIdx b, double payload,
                       p2psap::Scheme scheme, double rate_fwd = 0) {
    if (a == b) return {t, t};
    const LinkCost& fwd_cost = link_cost(a, b, scheme);
    const double fwd = rate_fwd > 0 ? rate_fwd : unloaded(a, b);
    if (!(fwd > 0)) {
      starved_ = true;
      return {kInf, kInf};
    }
    const double arrival = t + fwd_cost.latency + (payload + fwd_cost.header_bytes) / fwd;
    const double back = fwd_cost.ack_bytes > 0 ? unloaded(b, a) : kInf;
    const double resume = arrival + link_cost(b, a, scheme).latency +
                          (back > 0 ? fwd_cost.ack_bytes / back : kInf);
    return {arrival, resume};
  }
  /// Fire-and-forget send: the sender resumes immediately.
  SendTiming async_send(double t, net::NodeIdx a, net::NodeIdx b, double payload,
                        double rate_fwd = 0) {
    if (a == b) return {t, t};
    const LinkCost& cfg = link_cost(a, b, p2psap::Scheme::Asynchronous);
    const double fwd = rate_fwd > 0 ? rate_fwd : unloaded(a, b);
    if (!(fwd > 0)) {
      starved_ = true;
      return {kInf, t};
    }
    return {t + cfg.latency + (payload + cfg.header_bytes) / fwd, t};
  }
  double rtt(net::NodeIdx a, net::NodeIdx b, double payload) {
    return sync_send(0, a, b, payload, p2psap::Scheme::Synchronous).resume;
  }

  // --- plan stages ---------------------------------------------------------
  bool place();  // groups + rank hosts; false on failure
  double collection_model();
  void allocation_model();
  void precompute_phase_rates();
  bool evaluate();  // false on deadlock
  double gather_model();
  std::vector<double> allreduce_exits(const std::vector<double>& entry);

  const TraceEvent* current(int r);
  void run_until_blocked(int r);

  p2pdc::Environment& env_;
  const net::Platform& platform_;
  const net::FlowNet& flownet_;
  net::NodeIdx submitter_;
  p2pdc::TaskSpec spec_;
  const std::vector<TraceSummary>& summaries_;
  const std::vector<net::NodeIdx>& workers_;

  std::vector<alloc::Group> groups_;
  std::vector<RankState> ranks_;
  std::vector<int> coord_rank_;  // per group
  std::vector<int> group_of_;    // per rank
  std::vector<int> base_rank_;   // per group: rank of member index 0

  // Allocation residue the gather model needs.
  std::vector<double> coord_after_forward_;  // per group
  std::vector<double> submitter_resume_;     // per group (hier) or unused (flat)
  double t_allocated_ = 0;

  // Phase-k contended rates for iteration-body data sends.
  std::vector<std::vector<double>> phase_rate_;  // [rank][send_k]

  // In-flight messages between ranks, keyed (src, dst, tag).
  std::map<std::tuple<int, int, int>, std::deque<double>> sync_q_;
  std::map<std::tuple<int, int, int>, std::multiset<double>> async_q_;

  std::map<std::pair<net::NodeIdx, net::NodeIdx>, double> unloaded_;
  std::map<std::tuple<net::NodeIdx, net::NodeIdx, int>, LinkCost> cost_cache_;
  std::uint64_t queries_ = 0;
  std::uint64_t ops_ = 0;
  bool starved_ = false;
  std::string failure_;
};

bool Planner::place() {
  const int n = static_cast<int>(summaries_.size());
  if (static_cast<int>(workers_.size()) < n) {
    failure_ = "not enough peers: wanted " + std::to_string(n) + ", have " +
               std::to_string(workers_.size());
    return false;
  }
  // The peers allocation would reserve: the worker population (its first
  // `n` hosts when the computation is smaller than the overlay). Grouping
  // IP-sorts, so the flattened rank order is the one replay produces for
  // the same peer set.
  std::vector<overlay::PeerRef> peers;
  peers.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const net::NodeIdx h = workers_[static_cast<std::size_t>(i)];
    peers.push_back(overlay::PeerRef{h, platform_.node(h).ip,
                                     p2pdc::worker_resources(platform_, h)});
  }
  groups_ = alloc::form_groups(std::move(peers), spec_.cmax);
  ranks_.clear();
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    base_rank_.push_back(static_cast<int>(ranks_.size()));
    for (std::size_t m = 0; m < groups_[g].members.size(); ++m) {
      if (m == groups_[g].coordinator)
        coord_rank_.push_back(static_cast<int>(ranks_.size()));
      RankState rs;
      rs.host = groups_[g].members[m].node;
      const double hz = platform_.node(rs.host).speed_hz;
      rs.scale = summaries_[ranks_.size()].host_hz / (hz > 0 ? hz : 3e9);
      ranks_.push_back(rs);
      group_of_.push_back(static_cast<int>(g));
    }
  }
  return true;
}

double Planner::collection_model() {
  // Crude: one tracker RPC round trip (closest core tracker) plus the
  // slowest parallel reserve handshake. Only total_seconds sees this — the
  // solve-time gate is allocation + evaluation.
  const double ctrl = env_.over().config().ctrl_bytes;
  double t = 0;
  double best = kInf;
  for (const overlay::TrackerRef& tr : env_.over().install_tracker_list())
    best = std::min(best, rtt(submitter_, tr.node, ctrl));
  if (best < kInf) t += best;
  double reserve = 0;
  for (const RankState& r : ranks_) reserve = std::max(reserve, rtt(submitter_, r.host, ctrl));
  return t + reserve;
}

void Planner::allocation_model() {
  const auto sync = p2psap::Scheme::Synchronous;
  const std::size_t G = groups_.size();
  coord_after_forward_.assign(G, 0);
  submitter_resume_.assign(G, 0);
  if (spec_.allocation == p2pdc::AllocationMode::Flat) {
    // One submitter coroutine connects to each rank in succession: reverse
    // (64 B) then the subtask, each awaited in full.
    double t = 0;
    for (RankState& r : ranks_) {
      t = sync_send(t, submitter_, r.host, 64, sync).resume;
      const SendTiming st = sync_send(t, submitter_, r.host, spec_.subtask_bytes, sync);
      r.start = r.clock = st.arrival;
      t = st.resume;
    }
  } else {
    // Hierarchical: G parallel submitter senders (assign then bundle on one
    // channel each — the G assign flows are concurrent, so they share the
    // submitter's uplink), coordinators fan out reverse + subtask within
    // the group.
    std::vector<std::pair<net::NodeIdx, net::NodeIdx>> sub_routes;
    for (std::size_t g = 0; g < G; ++g)
      sub_routes.emplace_back(submitter_, ranks_[static_cast<std::size_t>(coord_rank_[g])].host);
    const std::vector<double> sub_rate = batch(sub_routes);
    for (std::size_t g = 0; g < G; ++g) {
      const alloc::Group& grp = groups_[g];
      const auto m_count = static_cast<double>(grp.members.size());
      const net::NodeIdx coord = grp.coordinator_ref().node;
      const SendTiming assign =
          sync_send(0, submitter_, coord, 64 + 16.0 * m_count, sync, sub_rate[g]);
      const SendTiming bundle = sync_send(assign.resume, submitter_, coord,
                                          spec_.subtask_bytes * m_count, sync, sub_rate[g]);
      submitter_resume_[g] = bundle.resume;
      // Coordinator: reverse fan-out after the assign, then the forwarded
      // subtasks after the bundle lands. Member flows within one group are
      // concurrent — one max-min query covers both fan-outs.
      std::vector<std::pair<net::NodeIdx, net::NodeIdx>> member_routes;
      for (const overlay::PeerRef& member : grp.members)
        member_routes.emplace_back(coord, member.node);
      const std::vector<double> mem_rate = batch(member_routes);
      double t_rev = assign.arrival;
      for (std::size_t m = 0; m < grp.members.size(); ++m)
        t_rev = std::max(t_rev, sync_send(assign.arrival, coord, grp.members[m].node, 64,
                                          sync, mem_rate[m])
                                    .resume);
      const double t_b = std::max(t_rev, bundle.arrival);
      double t_fwd = t_b;
      for (std::size_t m = 0; m < grp.members.size(); ++m) {
        const SendTiming st =
            sync_send(t_b, coord, grp.members[m].node, spec_.subtask_bytes, sync, mem_rate[m]);
        RankState& rank = ranks_[static_cast<std::size_t>(base_rank_[g]) + m];
        rank.start = rank.clock = st.arrival;
        t_fwd = std::max(t_fwd, st.resume);
      }
      coord_after_forward_[g] = t_fwd;
    }
  }
  t_allocated_ = 0;
  for (const RankState& r : ranks_) t_allocated_ = std::max(t_allocated_, r.start);
}

void Planner::precompute_phase_rates() {
  // The k-th data send of each rank's steady iteration body forms one
  // (approximately) simultaneous flow set; one max-min query per k prices
  // the contention the replay's flow engine would resolve per message.
  const std::size_t n = ranks_.size();
  std::vector<std::vector<int>> send_dst(n);
  for (std::size_t r = 0; r < n; ++r) {
    const TraceSummary& s = summaries_[r];
    const IterBlock* steady = nullptr;
    for (const IterBlock& b : s.blocks)
      if (steady == nullptr || b.repeats > steady->repeats) steady = &b;
    if (steady == nullptr) continue;
    for (const TraceEvent& e : steady->ops)
      if (e.kind == TraceEvent::Kind::Send) send_dst[r].push_back(e.peer);
  }
  std::size_t max_k = 0;
  for (const auto& v : send_dst) max_k = std::max(max_k, v.size());
  phase_rate_.assign(n, {});
  for (std::size_t k = 0; k < max_k; ++k) {
    std::vector<std::pair<net::NodeIdx, net::NodeIdx>> endpoints;
    std::vector<std::size_t> who;
    for (std::size_t r = 0; r < n; ++r) {
      if (k >= send_dst[r].size()) continue;
      const int dst = send_dst[r][k];
      if (dst < 0 || dst >= static_cast<int>(n)) continue;
      endpoints.emplace_back(ranks_[r].host, ranks_[static_cast<std::size_t>(dst)].host);
      who.push_back(r);
    }
    const std::vector<double> rates = batch(endpoints);
    for (std::size_t i = 0; i < who.size(); ++i) {
      std::vector<double>& pr = phase_rate_[who[i]];
      if (pr.size() <= k) pr.resize(k + 1, 0);
      pr[k] = rates[i];
    }
  }
}

const TraceEvent* Planner::current(int r) {
  Cursor& c = ranks_[static_cast<std::size_t>(r)].cur;
  const TraceSummary& s = summaries_[static_cast<std::size_t>(r)];
  while (true) {
    const std::vector<TraceEvent>& ops =
        c.block < 0 ? s.pre : s.blocks[static_cast<std::size_t>(c.block)].ops;
    if (c.op < ops.size()) return &ops[c.op];
    if (c.block >= 0 &&
        c.rep + 1 < s.blocks[static_cast<std::size_t>(c.block)].repeats) {
      ++c.rep;
      c.op = 0;
      c.send_k = 0;
      continue;
    }
    if (c.block + 1 < static_cast<int>(s.blocks.size())) {
      ++c.block;
      c.rep = 0;
      c.op = 0;
      c.send_k = 0;
      continue;
    }
    c.finished = true;
    return nullptr;
  }
}

void Planner::run_until_blocked(int r) {
  RankState& rs = ranks_[static_cast<std::size_t>(r)];
  const bool sync_scheme = spec_.scheme == p2psap::Scheme::Synchronous;
  while (const TraceEvent* e = current(r)) {
    Cursor& c = rs.cur;
    switch (e->kind) {
      case TraceEvent::Kind::Compute:
        rs.clock += static_cast<double>(e->ns) * 1e-9 * rs.scale;
        break;
      case TraceEvent::Kind::Send: {
        const int dst = e->peer;
        if (dst < 0 || dst >= static_cast<int>(ranks_.size())) break;  // dropped
        double rate = 0;
        if (c.block >= 0 && c.send_k < phase_rate_[static_cast<std::size_t>(r)].size())
          rate = phase_rate_[static_cast<std::size_t>(r)][c.send_k];
        const net::NodeIdx dst_host = ranks_[static_cast<std::size_t>(dst)].host;
        if (sync_scheme) {
          const SendTiming st =
              sync_send(rs.clock, rs.host, dst_host, e->bytes, spec_.scheme, rate);
          sync_q_[{r, dst, e->tag}].push_back(st.arrival);
          rs.clock = st.resume;
        } else {
          const SendTiming st = async_send(rs.clock, rs.host, dst_host, e->bytes, rate);
          async_q_[{r, dst, e->tag}].insert(st.arrival);
        }
        if (c.block >= 0) ++c.send_k;
        break;
      }
      case TraceEvent::Kind::Recv: {
        const int src = e->peer;
        if (sync_scheme) {
          auto it = sync_q_.find({src, r, e->tag});
          if (it == sync_q_.end() || it->second.empty()) return;  // blocked
          rs.clock = std::max(rs.clock, it->second.front());
          it->second.pop_front();
        } else {
          auto it = async_q_.find({src, r, e->tag});
          if (it == async_q_.end() || it->second.empty()) return;  // blocked
          std::multiset<double>& arr = it->second;
          auto past_end = arr.upper_bound(rs.clock);
          if (past_end != arr.begin()) {
            // Latest-value semantics: everything already delivered collapses
            // into the freshest value; the receiver does not wait.
            arr.erase(arr.begin(), past_end);
          } else {
            // Wait for the next delivery.
            rs.clock = *arr.begin();
            arr.erase(arr.begin());
          }
        }
        break;
      }
      case TraceEvent::Kind::Allreduce:
        rs.at_allreduce = true;
        return;
      case TraceEvent::Kind::IterMark:
        break;  // summaries carry no markers, but stay tolerant
    }
    ++ops_;
    ++c.op;
  }
}

std::vector<double> Planner::allreduce_exits(const std::vector<double>& entry) {
  // Exact mirror of Computation::allreduce_max's hierarchical tree, with
  // unloaded rates for the 16-byte control messages.
  const auto sync = p2psap::Scheme::Synchronous;
  const double kReduceBytes = 16;
  const std::size_t n = ranks_.size();
  const std::size_t G = groups_.size();
  const int root = coord_rank_[0];
  std::vector<double> exit(n, 0), arr_up(n, 0), res_up(n, 0);

  // Leaves send up to their coordinator.
  for (std::size_t r = 0; r < n; ++r) {
    const int g = group_of_[r];
    const int c = coord_rank_[static_cast<std::size_t>(g)];
    if (static_cast<int>(r) == c) continue;
    const SendTiming st = sync_send(entry[r], ranks_[r].host,
                                    ranks_[static_cast<std::size_t>(c)].host, kReduceBytes, sync);
    arr_up[r] = st.arrival;
    res_up[r] = st.resume;
  }
  // Coordinators gather serially in member order.
  std::vector<double> after_gather(G, 0);
  for (std::size_t g = 0; g < G; ++g) {
    const int c = coord_rank_[g];
    double t = entry[static_cast<std::size_t>(c)];
    for (std::size_t m = 0; m < groups_[g].members.size(); ++m) {
      if (m == groups_[g].coordinator) continue;
      t = std::max(t, arr_up[static_cast<std::size_t>(base_rank_[g]) + m]);
    }
    after_gather[g] = t;
  }
  // Second level: non-root coordinators reduce at the root.
  std::vector<double> arr_mid(G, 0), res_mid(G, 0);
  for (std::size_t g = 1; g < G; ++g) {
    const SendTiming st =
        sync_send(after_gather[g], ranks_[static_cast<std::size_t>(coord_rank_[g])].host,
                  ranks_[static_cast<std::size_t>(root)].host, kReduceBytes, sync);
    arr_mid[g] = st.arrival;
    res_mid[g] = st.resume;
  }
  double t_root = after_gather[0];
  for (std::size_t g = 1; g < G; ++g) t_root = std::max(t_root, arr_mid[g]);
  // Root broadcasts to the other coordinators (parallel latch).
  std::vector<double> coord_clock(G, 0);
  double t_bc = t_root;
  for (std::size_t g = 1; g < G; ++g) {
    const SendTiming st =
        sync_send(t_root, ranks_[static_cast<std::size_t>(root)].host,
                  ranks_[static_cast<std::size_t>(coord_rank_[g])].host, kReduceBytes, sync);
    coord_clock[g] = std::max(res_mid[g], st.arrival);
    t_bc = std::max(t_bc, st.resume);
  }
  coord_clock[0] = t_bc;
  // Every coordinator broadcasts down to its members (parallel latch).
  for (std::size_t g = 0; g < G; ++g) {
    const int c = coord_rank_[g];
    double t = coord_clock[g];
    for (std::size_t m = 0; m < groups_[g].members.size(); ++m) {
      if (m == groups_[g].coordinator) continue;
      const std::size_t r = static_cast<std::size_t>(base_rank_[g]) + m;
      const SendTiming st = sync_send(coord_clock[g], ranks_[static_cast<std::size_t>(c)].host,
                                      ranks_[r].host, kReduceBytes, sync);
      exit[r] = std::max(res_up[r], st.arrival);
      t = std::max(t, st.resume);
    }
    exit[static_cast<std::size_t>(c)] = t;
  }
  return exit;
}

bool Planner::evaluate() {
  const std::size_t n = ranks_.size();
  while (true) {
    bool all_finished = true;
    for (const RankState& r : ranks_) all_finished &= r.cur.finished;
    if (all_finished) return true;

    const std::uint64_t before = ops_;
    for (std::size_t r = 0; r < n; ++r)
      if (!ranks_[r].cur.finished && !ranks_[r].at_allreduce)
        run_until_blocked(static_cast<int>(r));

    std::size_t waiting = 0;
    for (const RankState& r : ranks_) waiting += r.at_allreduce ? 1 : 0;
    if (waiting == n) {
      std::vector<double> entry(n);
      for (std::size_t r = 0; r < n; ++r) entry[r] = ranks_[r].clock;
      const std::vector<double> exits = allreduce_exits(entry);
      for (std::size_t r = 0; r < n; ++r) {
        ranks_[r].clock = exits[r];
        ranks_[r].at_allreduce = false;
        ++ranks_[r].cur.op;  // step past the allreduce
        ++ops_;
      }
      continue;
    }
    if (ops_ == before) {
      failure_ = "analytic evaluation deadlocked (mismatched trace events)";
      return false;
    }
  }
}

double Planner::gather_model() {
  const auto sync = p2psap::Scheme::Synchronous;
  double t_finished = 0;
  if (spec_.allocation == p2pdc::AllocationMode::Flat) {
    std::vector<std::pair<net::NodeIdx, net::NodeIdx>> routes;
    for (const RankState& r : ranks_) routes.emplace_back(r.host, submitter_);
    const std::vector<double> rates = batch(routes);
    for (std::size_t r = 0; r < ranks_.size(); ++r)
      t_finished = std::max(t_finished, sync_send(ranks_[r].clock, ranks_[r].host, submitter_,
                                                  spec_.result_bytes, sync, rates[r])
                                            .arrival);
    return t_finished;
  }
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    const alloc::Group& grp = groups_[g];
    const net::NodeIdx coord = grp.coordinator_ref().node;
    std::vector<std::pair<net::NodeIdx, net::NodeIdx>> routes;
    for (const overlay::PeerRef& member : grp.members) routes.emplace_back(member.node, coord);
    const std::vector<double> rates = batch(routes);
    // Coordinator recvs serially in member order from its post-forward clock.
    double t = coord_after_forward_[g];
    for (std::size_t m = 0; m < grp.members.size(); ++m) {
      const std::size_t r = static_cast<std::size_t>(base_rank_[g]) + m;
      t = std::max(t, sync_send(ranks_[r].clock, ranks_[r].host, coord, spec_.result_bytes,
                                sync, rates[m])
                          .arrival);
    }
    const double per_ref = 16;
    const auto m_count = static_cast<double>(grp.members.size());
    const SendTiming bundle = sync_send(
        t, coord, submitter_, spec_.result_bytes * m_count + per_ref * m_count, sync);
    t_finished = std::max(t_finished, std::max(submitter_resume_[g], bundle.arrival));
  }
  return t_finished;
}

AnalyticReport Planner::run() {
  AnalyticReport rep;
  const std::size_t n = summaries_.size();
  if (n == 0) {
    rep.failure = "no trace summaries";
    return rep;
  }
  for (const TraceSummary& s : summaries_) {
    if (s.collectives != summaries_[0].collectives) {
      rep.failure = "trace summaries disagree on collective count (rank " +
                    std::to_string(s.rank) + " has " + std::to_string(s.collectives) +
                    ", rank " + std::to_string(summaries_[0].rank) + " has " +
                    std::to_string(summaries_[0].collectives) + ")";
      return rep;
    }
  }
  if (!place()) {
    rep.failure = failure_;
    return rep;
  }
  rep.peers = static_cast<int>(n);
  rep.groups = static_cast<int>(groups_.size());

  const double collection = collection_model();
  allocation_model();
  precompute_phase_rates();
  const bool ok = evaluate();
  const double t_finished = ok ? gather_model() : 0;

  rep.ops_evaluated = ops_;
  rep.rate_queries = queries_;
  if (!ok) {
    rep.failure = failure_;
    return rep;
  }
  if (starved_) {
    rep.failure = "a modelled route has zero capacity (starved flow)";
    return rep;
  }
  double first_start = kInf, last_end = 0;
  for (const RankState& r : ranks_) {
    first_start = std::min(first_start, r.start);
    last_end = std::max(last_end, r.clock);
  }
  rep.solve_seconds = last_end > first_start ? last_end - first_start : 0;
  rep.collection_seconds = collection;
  rep.allocation_seconds = t_allocated_;
  rep.total_seconds = collection + t_finished;
  rep.ok = true;
  return rep;
}

}  // namespace

AnalyticReport plan_on(p2pdc::Environment& env, net::NodeIdx submitter_host,
                       p2pdc::TaskSpec spec, const std::vector<TraceSummary>& summaries,
                       const std::vector<net::NodeIdx>& worker_hosts) {
  Planner planner(env, submitter_host, std::move(spec), summaries, worker_hosts);
  return planner.run();
}

}  // namespace pdc::dperf
