// Shared test helper: recursive field-by-field JSON comparison with
// path-labelled failures, used by every determinism gate that compares
// RunRecords/CampaignReports across -j levels. Doubles compare exactly: the
// writer emits shortest round-tripping decimals, so equal doubles serialize
// identically and unequal ones never compare ==.
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <variant>

#include "support/json.hpp"

namespace pdc {

inline void expect_json_equal(const JsonValue& a, const JsonValue& b,
                              const std::string& path) {
  ASSERT_EQ(a.v.index(), b.v.index()) << "type mismatch at " << path;
  if (a.is_object()) {
    const JsonObject& ao = a.as_object();
    const JsonObject& bo = b.as_object();
    ASSERT_EQ(ao.size(), bo.size()) << "key count mismatch at " << path;
    for (const auto& [key, value] : ao) {
      ASSERT_TRUE(bo.count(key)) << "missing key " << path << "." << key;
      expect_json_equal(value, bo.at(key), path + "." + key);
    }
  } else if (a.is_array()) {
    const JsonArray& aa = a.as_array();
    const JsonArray& ba = b.as_array();
    ASSERT_EQ(aa.size(), ba.size()) << "array length mismatch at " << path;
    for (std::size_t i = 0; i < aa.size(); ++i)
      expect_json_equal(aa[i], ba[i], path + "[" + std::to_string(i) + "]");
  } else if (std::holds_alternative<double>(a.v)) {
    EXPECT_EQ(a.as_double(), b.as_double()) << "value mismatch at " << path;
  } else if (std::holds_alternative<std::string>(a.v)) {
    EXPECT_EQ(a.as_string(), b.as_string()) << "value mismatch at " << path;
  } else if (std::holds_alternative<bool>(a.v)) {
    EXPECT_EQ(a.as_bool(), b.as_bool()) << "value mismatch at " << path;
  }
}

}  // namespace pdc
