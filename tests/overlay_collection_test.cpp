// Tests for peers collection (paper §III-B): local zone first, then the
// local tracker list, then expansion through the farthest trackers.
#include <gtest/gtest.h>

#include <set>

#include "net/builders.hpp"
#include "overlay/overlay.hpp"

namespace pdc::overlay {
namespace {

struct CollectFixture {
  CollectFixture(int hosts, OverlayConfig cfg = {})
      : plat(net::build_star(net::bordeplage_cluster_spec(hosts))),
        flownet(eng, plat),
        overlay(eng, plat, flownet, cfg) {}

  sim::Engine eng;
  net::Platform plat;
  net::FlowNet flownet;
  Overlay overlay;

  /// Runs collection on `submitter` after `warmup` sim-seconds.
  std::vector<PeerRef> collect(PeerActor& submitter, int wanted, Requirements req = {},
                               Time warmup = 15.0, std::uint64_t ticket = 1) {
    std::vector<PeerRef> out;
    bool done = false;
    eng.schedule_at(warmup, [&, wanted, req, ticket] {
      eng.spawn([](PeerActor& s, int w, Requirements r, std::uint64_t tk,
                   std::vector<PeerRef>& o, bool& d) -> sim::Process {
        o = co_await s.collect_peers(w, r, tk);
        d = true;
      }(submitter, wanted, req, ticket, out, done));
    });
    eng.run_until(warmup + 120.0);
    EXPECT_TRUE(done) << "collection did not finish";
    return out;
  }
};

TEST(Collection, OwnZoneSufficesForSmallRequests) {
  CollectFixture f{12};
  f.overlay.create_server(f.plat.host(0));
  f.overlay.create_tracker(f.plat.host(1), true);
  f.overlay.finish_bootstrap();
  PeerActor& sub = f.overlay.create_peer(f.plat.host(2), PeerResources{3e9, 1e9, 1e9});
  for (int i = 3; i < 8; ++i)
    f.overlay.create_peer(f.plat.host(i), PeerResources{3e9, 1e9, 1e9});
  const auto peers = f.collect(sub, 3);
  EXPECT_EQ(peers.size(), 3u);
  // The submitter itself is never collected.
  for (const PeerRef& p : peers) EXPECT_NE(p.node, sub.host());
  // Reserved peers are flagged busy.
  for (const PeerRef& p : peers) EXPECT_TRUE(f.overlay.peer_at(p.node)->busy());
}

TEST(Collection, SpansMultipleZones) {
  CollectFixture f{20};
  f.overlay.create_server(f.plat.host(0));
  f.overlay.create_tracker(f.plat.host(1), true);
  f.overlay.create_tracker(f.plat.host(10), true);
  f.overlay.finish_bootstrap();
  PeerActor& sub = f.overlay.create_peer(f.plat.host(2), PeerResources{3e9, 1e9, 1e9});
  // 4 peers near tracker 1, 4 near tracker 10.
  for (int i : {3, 4, 5, 6}) f.overlay.create_peer(f.plat.host(i), PeerResources{3e9, 1e9, 1e9});
  for (int i : {11, 12, 13, 14})
    f.overlay.create_peer(f.plat.host(i), PeerResources{3e9, 1e9, 1e9});
  const auto peers = f.collect(sub, 7);
  EXPECT_EQ(peers.size(), 7u);
  std::set<NodeIdx> uniq;
  for (const PeerRef& p : peers) uniq.insert(p.node);
  EXPECT_EQ(uniq.size(), 7u);
}

TEST(Collection, ExpandsThroughFarthestTrackersOnNarrowLists) {
  // Neighbour sets of size 2 (one per side): the submitter's local list
  // cannot see distant zones, forcing the expanding-ring requests.
  OverlayConfig cfg;
  cfg.neighbor_set_size = 2;
  CollectFixture f{40, cfg};
  f.overlay.create_server(f.plat.host(0));
  for (int i : {1, 9, 17, 25, 33}) f.overlay.create_tracker(f.plat.host(i), true);
  f.overlay.finish_bootstrap();
  PeerActor& sub = f.overlay.create_peer(f.plat.host(2), PeerResources{3e9, 1e9, 1e9});
  // Two free peers per zone.
  for (int base : {3, 10, 18, 26, 34}) {
    f.overlay.create_peer(f.plat.host(base), PeerResources{3e9, 1e9, 1e9});
    f.overlay.create_peer(f.plat.host(base + 1), PeerResources{3e9, 1e9, 1e9});
  }
  const auto peers = f.collect(sub, 9);
  EXPECT_EQ(peers.size(), 9u);
}

TEST(Collection, RespectsResourceRequirements) {
  CollectFixture f{12};
  f.overlay.create_server(f.plat.host(0));
  f.overlay.create_tracker(f.plat.host(1), true);
  f.overlay.finish_bootstrap();
  PeerActor& sub = f.overlay.create_peer(f.plat.host(2), PeerResources{3e9, 1e9, 1e9});
  f.overlay.create_peer(f.plat.host(3), PeerResources{1e9, 1e9, 1e9});  // too slow
  f.overlay.create_peer(f.plat.host(4), PeerResources{3e9, 1e9, 1e9});
  f.overlay.create_peer(f.plat.host(5), PeerResources{2e9, 1e9, 1e9});  // too slow
  f.overlay.create_peer(f.plat.host(6), PeerResources{3.2e9, 1e9, 1e9});
  Requirements req;
  req.min_cpu_hz = 2.5e9;
  const auto peers = f.collect(sub, 4, req);
  EXPECT_EQ(peers.size(), 2u);  // only the two fast ones qualify
  for (const PeerRef& p : peers) EXPECT_GE(p.res.cpu_hz, 2.5e9);
}

TEST(Collection, BusyPeersAreNotDoubleReserved) {
  CollectFixture f{12};
  f.overlay.create_server(f.plat.host(0));
  f.overlay.create_tracker(f.plat.host(1), true);
  f.overlay.finish_bootstrap();
  PeerActor& sub1 = f.overlay.create_peer(f.plat.host(2), PeerResources{3e9, 1e9, 1e9});
  PeerActor& sub2 = f.overlay.create_peer(f.plat.host(3), PeerResources{3e9, 1e9, 1e9});
  for (int i = 4; i < 10; ++i)
    f.overlay.create_peer(f.plat.host(i), PeerResources{3e9, 1e9, 1e9});
  // Two submitters compete for 4 peers each out of 6 candidates (sub1 and
  // sub2 are mutual candidates too: 7 visible to each). No peer may be
  // reserved twice.
  std::vector<PeerRef> r1, r2;
  bool d1 = false, d2 = false;
  f.eng.schedule_at(15.0, [&] {
    f.eng.spawn([](PeerActor& s, std::vector<PeerRef>& o, bool& d) -> sim::Process {
      o = co_await s.collect_peers(4, Requirements{}, 101);
      d = true;
    }(sub1, r1, d1));
    f.eng.spawn([](PeerActor& s, std::vector<PeerRef>& o, bool& d) -> sim::Process {
      o = co_await s.collect_peers(4, Requirements{}, 202);
      d = true;
    }(sub2, r2, d2));
  });
  f.eng.run_until(200.0);
  ASSERT_TRUE(d1 && d2);
  std::set<NodeIdx> taken;
  for (const PeerRef& p : r1) EXPECT_TRUE(taken.insert(p.node).second);
  for (const PeerRef& p : r2) EXPECT_TRUE(taken.insert(p.node).second) << "double reservation";
}

TEST(Collection, ShortfallReturnsWhatExists) {
  CollectFixture f{8};
  f.overlay.create_server(f.plat.host(0));
  f.overlay.create_tracker(f.plat.host(1), true);
  f.overlay.finish_bootstrap();
  PeerActor& sub = f.overlay.create_peer(f.plat.host(2), PeerResources{3e9, 1e9, 1e9});
  f.overlay.create_peer(f.plat.host(3), PeerResources{3e9, 1e9, 1e9});
  f.overlay.create_peer(f.plat.host(4), PeerResources{3e9, 1e9, 1e9});
  const auto peers = f.collect(sub, 10);
  EXPECT_EQ(peers.size(), 2u);
}

TEST(Collection, ReleaseMakesPeersCollectableAgain) {
  CollectFixture f{10};
  f.overlay.create_server(f.plat.host(0));
  f.overlay.create_tracker(f.plat.host(1), true);
  f.overlay.finish_bootstrap();
  PeerActor& sub = f.overlay.create_peer(f.plat.host(2), PeerResources{3e9, 1e9, 1e9});
  for (int i = 3; i < 7; ++i)
    f.overlay.create_peer(f.plat.host(i), PeerResources{3e9, 1e9, 1e9});
  const auto first = f.collect(sub, 4);
  EXPECT_EQ(first.size(), 4u);
  // Release everyone, let busy-notices propagate, collect again.
  for (const PeerRef& p : first) f.overlay.peer_at(p.node)->release();
  bool done = false;
  std::vector<PeerRef> second;
  f.eng.schedule_at(f.eng.now() + 10.0, [&] {
    f.eng.spawn([](PeerActor& s, std::vector<PeerRef>& o, bool& d) -> sim::Process {
      o = co_await s.collect_peers(4, Requirements{}, 2);
      d = true;
    }(sub, second, done));
  });
  f.eng.run_until(f.eng.now() + 120.0);
  ASSERT_TRUE(done);
  EXPECT_EQ(second.size(), 4u);
}

}  // namespace
}  // namespace pdc::overlay
