#include "support/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace pdc {

// --- writer ----------------------------------------------------------------

void JsonWriter::separate() {
  if (key_pending_) {
    key_pending_ = false;
    return;  // value follows its key on the same line
  }
  if (stack_.empty()) return;
  if (stack_.back().has_items) out_ += ',';
  out_ += '\n';
  indent();
  stack_.back().has_items = true;
}

void JsonWriter::indent() {
  out_.append(2 * stack_.size(), ' ');
}

JsonWriter& JsonWriter::begin_object() {
  separate();
  out_ += '{';
  stack_.push_back({'{'});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool had_items = stack_.back().has_items;
  stack_.pop_back();
  if (had_items) {
    out_ += '\n';
    indent();
  }
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separate();
  out_ += '[';
  stack_.push_back({'['});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool had_items = stack_.back().has_items;
  stack_.pop_back();
  if (had_items) {
    out_ += '\n';
    indent();
  }
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  separate();
  out_ += json_escape(k);
  out_ += ": ";
  key_pending_ = true;
  return *this;
}

std::string format_shortest(double v) {
  char buf[40];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();  // JSON has no inf/nan
  separate();
  out_ += format_shortest(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  separate();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  separate();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separate();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  separate();
  out_ += json_escape(s);
  return *this;
}

JsonWriter& JsonWriter::null() {
  separate();
  out_ += "null";
  return *this;
}

std::string json_escape(std::string_view s) {
  std::string out = "\"";
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
  return out;
}

// --- reader ----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue document() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) { throw JsonError(pos_, what); }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return JsonValue{string()};
      case 't':
        if (!consume_word("true")) fail("bad literal");
        return JsonValue{true};
      case 'f':
        if (!consume_word("false")) fail("bad literal");
        return JsonValue{false};
      case 'n':
        if (!consume_word("null")) fail("bad literal");
        return JsonValue{nullptr};
      default: return JsonValue{number()};
    }
  }

  JsonValue object() {
    expect('{');
    JsonObject out;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue{std::move(out)};
    }
    while (true) {
      skip_ws();
      std::string k = string();
      skip_ws();
      expect(':');
      out[std::move(k)] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue{std::move(out)};
    }
  }

  JsonValue array() {
    expect('[');
    JsonArray out;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue{std::move(out)};
    }
    while (true) {
      out.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue{std::move(out)};
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Emit UTF-8 (surrogate pairs are not resolved; the writer never
          // emits them either -- escapes above 0x1f stay literal).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  double number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-'))
      ++pos_;
    const std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(num.c_str(), &end);
    if (end == num.c_str() || *end != '\0') {
      pos_ = start;
      fail("bad number '" + num + "'");
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) { return Parser(text).document(); }

}  // namespace pdc
