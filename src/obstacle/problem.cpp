#include "obstacle/problem.hpp"

#include <algorithm>
#include <cmath>

namespace pdc::obstacle {

Grid initial_guess(const ObstacleProblem& p) {
  Grid g;
  g.n = p.n;
  g.values.assign(static_cast<std::size_t>(p.n) * static_cast<std::size_t>(p.n), 0.0);
  for (int i = 1; i < p.n - 1; ++i)
    for (int j = 1; j < p.n - 1; ++j) g.at(i, j) = std::max(p.psi_at(i, j), 0.0);
  return g;
}

double projected_sweep(const ObstacleProblem& p, const std::vector<double>& u,
                       std::vector<double>& out, int n_cols, int first_row, int last_row,
                       int global_row_of_first, const std::vector<double>& psi_cache) {
  const double h2f = p.h() * p.h() * p.force;
  double res = 0;
  for (int i = first_row; i <= last_row; ++i) {
    const int base = i * n_cols;
    for (int j = 1; j < n_cols - 1; ++j) {
      const int idx = base + j;
      double v = u[static_cast<std::size_t>(idx)] +
                 p.omega * 0.25 *
                     (u[static_cast<std::size_t>(idx - 1)] + u[static_cast<std::size_t>(idx + 1)] +
                      u[static_cast<std::size_t>(idx - n_cols)] +
                      u[static_cast<std::size_t>(idx + n_cols)] -
                      4.0 * u[static_cast<std::size_t>(idx)] + h2f);
      const double lower = psi_cache[static_cast<std::size_t>(idx)];
      if (v < lower) v = lower;
      out[static_cast<std::size_t>(idx)] = v;
      const double d = std::fabs(v - u[static_cast<std::size_t>(idx)]);
      if (d > res) res = d;
    }
  }
  (void)global_row_of_first;
  return res;
}

SequentialResult solve_sequential(const ObstacleProblem& p, int max_iters, double tol) {
  SequentialResult r;
  Grid u = initial_guess(p);
  Grid next = u;
  std::vector<double> psi_cache(u.values.size());
  for (int i = 0; i < p.n; ++i)
    for (int j = 0; j < p.n; ++j)
      psi_cache[static_cast<std::size_t>(i * p.n + j)] = p.psi_at(i, j);

  for (int it = 0; it < max_iters; ++it) {
    const double res =
        projected_sweep(p, u.values, next.values, p.n, 1, p.n - 2, 1, psi_cache);
    std::swap(u.values, next.values);
    r.iterations = it + 1;
    r.residual = res;
    if (res < tol) break;
  }
  r.solution = std::move(u);
  return r;
}

double obstacle_violation(const ObstacleProblem& p, const Grid& u) {
  double worst = 0;
  for (int i = 1; i < p.n - 1; ++i)
    for (int j = 1; j < p.n - 1; ++j)
      worst = std::max(worst, p.psi_at(i, j) - u.at(i, j));
  return worst;
}

double pde_residual_off_contact(const ObstacleProblem& p, const Grid& u, double margin) {
  const double h2 = p.h() * p.h();
  double worst = 0;
  for (int i = 1; i < p.n - 1; ++i) {
    for (int j = 1; j < p.n - 1; ++j) {
      if (u.at(i, j) <= p.psi_at(i, j) + margin) continue;  // contact set
      const double lap =
          (u.at(i - 1, j) + u.at(i + 1, j) + u.at(i, j - 1) + u.at(i, j + 1) -
           4.0 * u.at(i, j)) /
          h2;
      worst = std::max(worst, std::fabs(-lap - p.force));
    }
  }
  return worst;
}

}  // namespace pdc::obstacle
