#include "net/flow.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/builders.hpp"
#include "sim/process.hpp"
#include "support/time.hpp"

namespace pdc::net {
namespace {

using namespace pdc::units;

/// Two hosts joined by one 1 MB/s link with 10 ms latency.
Platform two_hosts(double bw = 1e6, Time lat = 10 * ms) {
  Platform p;
  const auto a = p.add_host("a", 1e9, Ipv4{10, 0, 0, 1});
  const auto b = p.add_host("b", 1e9, Ipv4{10, 0, 0, 2});
  const auto l = p.add_link("l", bw, lat);
  p.connect(a, b, l);
  return p;
}

TEST(FlowNet, SingleFlowTimeIsLatencyPlusBytesOverBandwidth) {
  sim::Engine eng;
  Platform p = two_hosts();
  FlowNet netw{eng, p};
  Time done = -1;
  netw.start_flow(p.host(0), p.host(1), 1e6, [&] { done = eng.now(); });
  eng.run();
  EXPECT_NEAR(done, 0.010 + 1.0, 1e-9);  // 10 ms latency + 1 MB / 1 MB/s
}

TEST(FlowNet, ZeroByteFlowPaysOnlyLatency) {
  sim::Engine eng;
  Platform p = two_hosts();
  FlowNet netw{eng, p};
  Time done = -1;
  netw.start_flow(p.host(0), p.host(1), 0, [&] { done = eng.now(); });
  eng.run();
  EXPECT_NEAR(done, 0.010, 1e-9);
}

TEST(FlowNet, LoopbackCompletesImmediately) {
  sim::Engine eng;
  Platform p = two_hosts();
  FlowNet netw{eng, p};
  Time done = -1;
  netw.start_flow(p.host(0), p.host(0), 1e9, [&] { done = eng.now(); });
  eng.run();
  EXPECT_EQ(done, 0.0);
}

TEST(FlowNet, TwoFlowsShareBottleneckFairly) {
  sim::Engine eng;
  Platform p = two_hosts(1e6, 0);
  FlowNet netw{eng, p};
  std::vector<Time> done(2, -1);
  netw.start_flow(p.host(0), p.host(1), 1e6, [&] { done[0] = eng.now(); });
  netw.start_flow(p.host(0), p.host(1), 1e6, [&] { done[1] = eng.now(); });
  eng.run();
  // Each gets 0.5 MB/s while both are active: both finish at t=2.
  EXPECT_NEAR(done[0], 2.0, 1e-9);
  EXPECT_NEAR(done[1], 2.0, 1e-9);
}

TEST(FlowNet, ShorterFlowFinishesAndReleasesBandwidth) {
  sim::Engine eng;
  Platform p = two_hosts(1e6, 0);
  FlowNet netw{eng, p};
  std::vector<Time> done(2, -1);
  netw.start_flow(p.host(0), p.host(1), 0.5e6, [&] { done[0] = eng.now(); });
  netw.start_flow(p.host(0), p.host(1), 1.0e6, [&] { done[1] = eng.now(); });
  eng.run();
  // Phase 1: both at 0.5 MB/s; flow0 done at t=1. Phase 2: flow1 has
  // 0.5 MB left at full 1 MB/s -> done at t=1.5.
  EXPECT_NEAR(done[0], 1.0, 1e-9);
  EXPECT_NEAR(done[1], 1.5, 1e-9);
}

TEST(FlowNet, OppositeDirectionsDoNotContend) {
  sim::Engine eng;
  Platform p = two_hosts(1e6, 0);
  FlowNet netw{eng, p};
  std::vector<Time> done(2, -1);
  netw.start_flow(p.host(0), p.host(1), 1e6, [&] { done[0] = eng.now(); });
  netw.start_flow(p.host(1), p.host(0), 1e6, [&] { done[1] = eng.now(); });
  eng.run();
  // Full duplex: both directions run at the full 1 MB/s.
  EXPECT_NEAR(done[0], 1.0, 1e-9);
  EXPECT_NEAR(done[1], 1.0, 1e-9);
}

TEST(FlowNet, LateFlowSlowsEarlyFlow) {
  sim::Engine eng;
  Platform p = two_hosts(1e6, 0);
  FlowNet netw{eng, p};
  Time done0 = -1, done1 = -1;
  netw.start_flow(p.host(0), p.host(1), 1e6, [&] { done0 = eng.now(); });
  eng.schedule_at(0.5, [&] {
    netw.start_flow(p.host(0), p.host(1), 1e6, [&] { done1 = eng.now(); });
  });
  eng.run();
  // Flow0: 0.5 MB alone, then shares: remaining 0.5 MB at 0.5 MB/s -> 1.5.
  EXPECT_NEAR(done0, 1.5, 1e-9);
  // Flow1: 0.5 MB at 0.5 MB/s (until 1.5), then 0.5 MB at 1 MB/s -> 2.0.
  EXPECT_NEAR(done1, 2.0, 1e-9);
}

TEST(FlowNet, MaxMinUnevenBottlenecks) {
  // Classic three-flow example: links L1 (1 MB/s) and L2 (2 MB/s) in series
  // for flow A; flows B and C use only L1 / L2 respectively.
  //   host0 --L1-- r --L2-- host1;  B: host0->r? use hosts at each point.
  Platform p;
  const auto h0 = p.add_host("h0", 1e9, Ipv4{10, 0, 0, 1});
  const auto h1 = p.add_host("h1", 1e9, Ipv4{10, 0, 0, 2});
  const auto hm = p.add_host("hm", 1e9, Ipv4{10, 0, 0, 3});  // host at the middle
  const auto l1 = p.add_link("l1", 1e6, 0);
  const auto l2 = p.add_link("l2", 2e6, 0);
  p.connect(h0, hm, l1);
  p.connect(hm, h1, l2);
  sim::Engine eng;
  FlowNet netw{eng, p};
  // A: h0->h1 (l1+l2), B: h0->hm (l1), C: hm->h1 (l2). All 10 MB.
  std::vector<Time> done(3, -1);
  netw.start_flow(h0, h1, 10e6, [&] { done[0] = eng.now(); });
  netw.start_flow(h0, hm, 10e6, [&] { done[1] = eng.now(); });
  netw.start_flow(hm, h1, 10e6, [&] { done[2] = eng.now(); });
  // Max-min: A and B constrained by l1 -> 0.5 each; C gets l2 leftovers:
  // 2 - 0.5 = 1.5 MB/s.
  eng.run_until(1.0);
  // Check instantaneous rates indirectly through completion order below.
  eng.run();
  // C finishes first: 10/1.5 = 6.67 s. Then A is still limited by l1
  // (shared with B): stays 0.5 until both hit l1 limit changes... A and B
  // both at 0.5 MB/s; after C leaves, l2 no longer binds A (cap 2).
  // A and B finish at 20 s.
  EXPECT_NEAR(done[2], 10e6 / 1.5e6, 1e-6);
  EXPECT_NEAR(done[0], 20.0, 1e-6);
  EXPECT_NEAR(done[1], 20.0, 1e-6);
}

TEST(FlowNet, TransferAwaitableResumesProcess) {
  sim::Engine eng;
  Platform p = two_hosts(1e6, 10 * ms);
  FlowNet netw{eng, p};
  Time resumed = -1;
  eng.spawn([](sim::Engine& e, FlowNet& n, Platform& plat, Time& out) -> sim::Process {
    co_await n.transfer(plat.host(0), plat.host(1), 1e6);
    out = e.now();
  }(eng, netw, p, resumed));
  eng.run();
  EXPECT_NEAR(resumed, 1.010, 1e-9);
}

TEST(FlowNet, ClusterCrossTrafficSharesBackbone) {
  // 4 hosts on the Stage-1 cluster; all send to host 0 simultaneously.
  // Each NIC is 1 Gbps and the backbone 10 Gbps, but the *receiver's* NIC
  // (1 Gbps, down direction) is the bottleneck shared by 3 flows.
  sim::Engine eng;
  Platform p = build_star(bordeplage_cluster_spec(4));
  FlowNet netw{eng, p};
  std::vector<Time> done(3, -1);
  const double bytes = 125e6;  // 1 Gbit
  for (int i = 1; i <= 3; ++i)
    netw.start_flow(p.host(i), p.host(0), bytes, [&done, i, &eng] { done[static_cast<std::size_t>(i - 1)] = eng.now(); });
  eng.run();
  for (Time t : done) EXPECT_NEAR(t, 3.0 + 300e-6, 1e-3);  // 3 x 1 s serialized + latency
}

TEST(FlowNet, StatsAccumulate) {
  sim::Engine eng;
  Platform p = two_hosts(1e6, 0);
  FlowNet netw{eng, p};
  netw.start_flow(p.host(0), p.host(1), 1e6, [] {});
  netw.start_flow(p.host(0), p.host(0), 5, [] {});
  eng.run();
  EXPECT_EQ(netw.stats().flows_started, 2u);
  EXPECT_EQ(netw.stats().flows_completed, 2u);
  EXPECT_DOUBLE_EQ(netw.stats().bytes_completed, 1e6 + 5);
  EXPECT_EQ(netw.active_flows(), 0u);
}

TEST(FlowNet, ManyConcurrentFlowsDrainCompletely) {
  sim::Engine eng;
  Platform p = build_star(bordeplage_cluster_spec(16));
  FlowNet netw{eng, p};
  int completed = 0;
  for (int i = 0; i < 16; ++i)
    for (int j = 0; j < 16; ++j)
      if (i != j) netw.start_flow(p.host(i), p.host(j), 1e5 * (1 + (i + j) % 7), [&] { ++completed; });
  eng.run();
  EXPECT_EQ(completed, 16 * 15);
  EXPECT_EQ(netw.active_flows(), 0u);
}

}  // namespace
}  // namespace pdc::net
