// IPv4 addresses and the IP-based proximity metric of P2PDC (paper §III-A.2).
//
// The proximity between two nodes is the length of the longest common prefix
// of their IPv4 addresses: local information only, no network probing.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>

namespace pdc {

/// An IPv4 address stored in host byte order.
class Ipv4 {
 public:
  constexpr Ipv4() = default;
  constexpr explicit Ipv4(std::uint32_t bits) : bits_(bits) {}
  constexpr Ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : bits_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  /// Parses dotted-quad notation ("145.82.1.129"). Returns nullopt on
  /// malformed input (wrong component count, out-of-range octet, junk).
  static std::optional<Ipv4> parse(const std::string& text);

  constexpr std::uint32_t bits() const { return bits_; }
  std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4, Ipv4) = default;

 private:
  std::uint32_t bits_ = 0;
};

/// Longest common prefix length in bits, in [0, 32]. This is the P2PDC
/// proximity metric: larger means closer. The paper's example: 145.82.1.1 vs
/// 145.82.1.129 -> 24; 145.82.1.1 vs 145.83.56.74 -> 15.
int common_prefix_len(Ipv4 a, Ipv4 b);

/// Proximity comparison helper: true when `x` is strictly closer to `ref`
/// than `y` is. Ties broken by smaller absolute IP distance, then by address,
/// so orderings are total and deterministic.
bool closer_to(Ipv4 ref, Ipv4 x, Ipv4 y);

}  // namespace pdc
