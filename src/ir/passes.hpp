// Optimization passes. Each works on the non-SSA IR (registers are frame
// locals with possibly many definitions); see individual notes for the
// soundness conditions that replace SSA-based reasoning.
#pragma once

#include "ir/ir.hpp"

namespace pdc::ir {

/// Local constant propagation + folding + exact algebraic simplification
/// (x+0, x*1, x-0, x/1; integer x*0; int multiply-by-two strength
/// reduction). Float identities that can change NaN/Inf behaviour are NOT
/// applied. Returns true if anything changed.
bool fold_constants(IrFunction& fn);

/// Local copy propagation: rewrites uses of `dst` after `mov dst, src` to
/// `src` while neither is redefined.
bool propagate_copies(IrFunction& fn);

/// Global dead-code elimination: removes pure instructions whose result is
/// dead (backward liveness over the CFG) and stores to scalar slots that
/// are never loaded anywhere in the function.
bool eliminate_dead_code(IrFunction& fn);

/// Local common-subexpression elimination by available-expression hashing;
/// LoadVar/LoadIdx participate with conservative invalidation (stores to
/// the same slot/array and calls kill them).
bool eliminate_common_subexpressions(IrFunction& fn);

/// Promotes scalar variable slots to dedicated registers (MiniC has no
/// address-of, so every scalar is promotable). This is the -O1 "mem2reg"
/// equivalent and the largest single win over -O0.
bool promote_variables(IrFunction& fn);

/// Loop-invariant code motion: hoists pure instructions whose operands have
/// no definition inside the loop and whose destination has exactly one
/// in-loop definition into a freshly created preheader. All hoisted ops are
/// speculatable (is_pure excludes trapping DivI/ModI).
bool hoist_loop_invariants(IrFunction& fn);

}  // namespace pdc::ir
