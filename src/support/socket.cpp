#include "support/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <system_error>

namespace pdc {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), what);
}

int checked(int rc, const std::string& what) {
  if (rc < 0) throw_errno(what);
  return rc;
}

}  // namespace

Socket::~Socket() { close(); }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::write_all(const void* data, std::size_t size) const {
  const char* p = static_cast<const char*>(data);
  std::size_t left = size;
  while (left > 0) {
    const ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("socket write");
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

bool Socket::read_exact(void* out, std::size_t size) const {
  char* p = static_cast<char*>(out);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd_, p + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("socket read");
    }
    if (n == 0) {
      if (got == 0) return false;
      throw std::runtime_error("socket closed mid-message (" + std::to_string(got) +
                               "/" + std::to_string(size) + " bytes)");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<std::string> Socket::read_line(std::size_t max_len) const {
  // Byte-at-a-time is fine here: the protocol reads exactly one short
  // header line per request, then switches to bulk read_exact for the body
  // (a buffered reader would swallow body bytes).
  std::string line;
  char c;
  while (true) {
    if (!read_exact(&c, 1)) {
      if (line.empty()) return std::nullopt;
      throw std::runtime_error("socket closed mid-line");
    }
    if (c == '\n') return line;
    line += c;
    if (line.size() > max_len) throw std::runtime_error("protocol line too long");
  }
}

void Socket::set_io_timeout(double seconds) const {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - std::floor(seconds)) * 1e6);
  checked(::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)),
          "setsockopt(SO_RCVTIMEO)");
  checked(::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)),
          "setsockopt(SO_SNDTIMEO)");
}

Socket listen_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw std::invalid_argument("unix socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  Socket s{checked(::socket(AF_UNIX, SOCK_STREAM, 0), "socket(AF_UNIX)")};
  ::unlink(path.c_str());  // stale socket file from a previous daemon
  checked(::bind(s.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
          "bind '" + path + "'");
  checked(::listen(s.fd(), 64), "listen");
  return s;
}

Socket listen_tcp(int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));

  Socket s{checked(::socket(AF_INET, SOCK_STREAM, 0), "socket(AF_INET)")};
  const int one = 1;
  checked(::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)),
          "setsockopt(SO_REUSEADDR)");
  checked(::bind(s.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
          "bind 127.0.0.1:" + std::to_string(port));
  checked(::listen(s.fd(), 64), "listen");
  return s;
}

int bound_tcp_port(const Socket& listener) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  checked(::getsockname(listener.fd(), reinterpret_cast<sockaddr*>(&addr), &len),
          "getsockname");
  return ntohs(addr.sin_port);
}

Socket connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw std::invalid_argument("unix socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  Socket s{checked(::socket(AF_UNIX, SOCK_STREAM, 0), "socket(AF_UNIX)")};
  checked(::connect(s.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
          "connect '" + path + "'");
  return s;
}

Socket connect_tcp(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw std::invalid_argument("bad IPv4 address '" + host + "'");

  Socket s{checked(::socket(AF_INET, SOCK_STREAM, 0), "socket(AF_INET)")};
  checked(::connect(s.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
          "connect " + host + ":" + std::to_string(port));
  return s;
}

std::optional<Socket> accept_ready(const Socket& a, const Socket& b,
                                   double timeout_seconds) {
  pollfd fds[2];
  const Socket* sockets[2];
  nfds_t n = 0;
  for (const Socket* s : {&a, &b}) {
    if (!s->valid()) continue;
    fds[n].fd = s->fd();
    fds[n].events = POLLIN;
    fds[n].revents = 0;
    sockets[n] = s;
    ++n;
  }
  if (n == 0) throw std::logic_error("accept_ready: no valid listener");

  const int timeout_ms = static_cast<int>(timeout_seconds * 1000.0);
  const int rc = ::poll(fds, n, timeout_ms);
  if (rc < 0) {
    if (errno == EINTR) return std::nullopt;  // let the caller re-check stop flags
    throw_errno("poll");
  }
  if (rc == 0) return std::nullopt;
  for (nfds_t i = 0; i < n; ++i) {
    if ((fds[i].revents & POLLIN) == 0) continue;
    const int fd = ::accept(sockets[i]->fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
          errno == EWOULDBLOCK)
        return std::nullopt;
      throw_errno("accept");
    }
    return Socket{fd};
  }
  return std::nullopt;
}

}  // namespace pdc
