#include "minic/parser.hpp"

namespace pdc::minic {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  Program parse_program() {
    Program prog;
    while (peek().kind != Tok::End) prog.functions.push_back(parse_function());
    return prog;
  }

 private:
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = std::min(pos_ + ahead, toks_.size() - 1);
    return toks_[i];
  }
  const Token& advance() { return toks_[pos_++]; }
  bool match(Tok kind) {
    if (peek().kind != kind) return false;
    ++pos_;
    return true;
  }
  const Token& expect(Tok kind, const std::string& context) {
    if (peek().kind != kind)
      throw CompileError(peek().line, peek().col,
                         "expected " + tok_name(kind) + " " + context + ", found " +
                             tok_name(peek().kind));
    return advance();
  }
  [[noreturn]] void fail(const std::string& msg) const {
    throw CompileError(peek().line, peek().col, msg);
  }

  bool at_type() const {
    return peek().kind == Tok::KwInt || peek().kind == Tok::KwDouble ||
           peek().kind == Tok::KwVoid;
  }

  Type parse_type() {
    if (match(Tok::KwInt)) return Type::Int;
    if (match(Tok::KwDouble)) return Type::Double;
    if (match(Tok::KwVoid)) return Type::Void;
    fail("expected a type");
  }

  Function parse_function() {
    Function f;
    f.line = peek().line;
    f.ret = parse_type();
    f.name = expect(Tok::Ident, "as function name").text;
    expect(Tok::LParen, "after function name");
    if (!match(Tok::RParen)) {
      do {
        Param p;
        p.type = parse_type();
        if (p.type == Type::Void) fail("parameters cannot be void");
        p.name = expect(Tok::Ident, "as parameter name").text;
        if (match(Tok::LBracket)) {
          expect(Tok::RBracket, "in array parameter");
          p.type = p.type == Type::Int ? Type::IntArray : Type::DoubleArray;
        }
        f.params.push_back(std::move(p));
      } while (match(Tok::Comma));
      expect(Tok::RParen, "after parameters");
    }
    expect(Tok::LBrace, "to open function body");
    while (!match(Tok::RBrace)) f.body.push_back(parse_stmt());
    return f;
  }

  StmtPtr parse_stmt() {
    const int line = peek().line;
    if (at_type()) return parse_decl();
    switch (peek().kind) {
      case Tok::KwIf: return parse_if();
      case Tok::KwWhile: return parse_while();
      case Tok::KwFor: return parse_for();
      case Tok::KwReturn: {
        advance();
        auto s = Stmt::make(Stmt::Kind::Return, line);
        if (peek().kind != Tok::Semi) s->value = parse_expr();
        expect(Tok::Semi, "after return");
        return s;
      }
      case Tok::LBrace: {
        advance();
        auto s = Stmt::make(Stmt::Kind::Block, line);
        while (!match(Tok::RBrace)) s->body.push_back(parse_stmt());
        return s;
      }
      default: return parse_assign_or_expr(/*need_semi=*/true);
    }
  }

  StmtPtr parse_decl() {
    const int line = peek().line;
    const Type base = parse_type();
    if (base == Type::Void) fail("cannot declare a void variable");
    auto s = Stmt::make(Stmt::Kind::Decl, line);
    s->name = expect(Tok::Ident, "as variable name").text;
    s->decl_type = base;
    if (match(Tok::LBracket)) {
      s->array_size = parse_expr();
      expect(Tok::RBracket, "after array size");
      s->decl_type = base == Type::Int ? Type::IntArray : Type::DoubleArray;
      if (peek().kind == Tok::Assign) fail("array declarations cannot have initializers");
    } else if (match(Tok::Assign)) {
      s->init = parse_expr();
    }
    expect(Tok::Semi, "after declaration");
    return s;
  }

  /// Parses a statement as a loop/if body; a braced block is spliced so the
  /// AST is canonical (no redundant Block nesting — keeps unparse/parse a
  /// fixpoint).
  void parse_body_into(std::vector<StmtPtr>& dst) {
    StmtPtr st = parse_stmt();
    if (st->kind == Stmt::Kind::Block) {
      for (auto& b : st->body) dst.push_back(std::move(b));
    } else {
      dst.push_back(std::move(st));
    }
  }

  StmtPtr parse_if() {
    const int line = peek().line;
    advance();
    expect(Tok::LParen, "after 'if'");
    auto s = Stmt::make(Stmt::Kind::If, line);
    s->cond = parse_expr();
    expect(Tok::RParen, "after condition");
    parse_body_into(s->body);
    if (match(Tok::KwElse)) parse_body_into(s->else_body);
    return s;
  }

  StmtPtr parse_while() {
    const int line = peek().line;
    advance();
    expect(Tok::LParen, "after 'while'");
    auto s = Stmt::make(Stmt::Kind::While, line);
    s->cond = parse_expr();
    expect(Tok::RParen, "after condition");
    parse_body_into(s->body);
    return s;
  }

  StmtPtr parse_for() {
    const int line = peek().line;
    advance();
    expect(Tok::LParen, "after 'for'");
    auto s = Stmt::make(Stmt::Kind::For, line);
    if (at_type())
      s->for_init = parse_decl();  // consumes ';'
    else if (peek().kind != Tok::Semi)
      s->for_init = parse_assign_or_expr(/*need_semi=*/true);
    else
      advance();  // empty init
    if (peek().kind != Tok::Semi) s->cond = parse_expr();
    expect(Tok::Semi, "after for condition");
    if (peek().kind != Tok::RParen) s->for_step = parse_assign_or_expr(/*need_semi=*/false);
    expect(Tok::RParen, "after for clauses");
    parse_body_into(s->body);
    return s;
  }

  /// Parses `lvalue = expr` or a bare expression statement.
  StmtPtr parse_assign_or_expr(bool need_semi) {
    const int line = peek().line;
    ExprPtr first = parse_expr();
    StmtPtr s;
    if (match(Tok::Assign)) {
      if (first->kind != Expr::Kind::Var && first->kind != Expr::Kind::Index)
        throw CompileError(line, 1, "left side of '=' must be a variable or array element");
      s = Stmt::make(Stmt::Kind::Assign, line);
      s->lvalue = std::move(first);
      s->value = parse_expr();
    } else {
      s = Stmt::make(Stmt::Kind::ExprStmt, line);
      s->value = std::move(first);
    }
    if (need_semi) expect(Tok::Semi, "after statement");
    return s;
  }

  // --- expressions: precedence climbing ---
  ExprPtr parse_expr() { return parse_or(); }

  ExprPtr parse_or() {
    ExprPtr e = parse_and();
    while (peek().kind == Tok::OrOr) {
      const int line = advance().line;
      e = Expr::make_binary(BinOp::Or, std::move(e), parse_and(), line);
    }
    return e;
  }

  ExprPtr parse_and() {
    ExprPtr e = parse_equality();
    while (peek().kind == Tok::AndAnd) {
      const int line = advance().line;
      e = Expr::make_binary(BinOp::And, std::move(e), parse_equality(), line);
    }
    return e;
  }

  ExprPtr parse_equality() {
    ExprPtr e = parse_relational();
    while (peek().kind == Tok::EqEq || peek().kind == Tok::Ne) {
      const BinOp op = peek().kind == Tok::EqEq ? BinOp::Eq : BinOp::Ne;
      const int line = advance().line;
      e = Expr::make_binary(op, std::move(e), parse_relational(), line);
    }
    return e;
  }

  ExprPtr parse_relational() {
    ExprPtr e = parse_additive();
    while (true) {
      BinOp op;
      switch (peek().kind) {
        case Tok::Lt: op = BinOp::Lt; break;
        case Tok::Le: op = BinOp::Le; break;
        case Tok::Gt: op = BinOp::Gt; break;
        case Tok::Ge: op = BinOp::Ge; break;
        default: return e;
      }
      const int line = advance().line;
      e = Expr::make_binary(op, std::move(e), parse_additive(), line);
    }
  }

  ExprPtr parse_additive() {
    ExprPtr e = parse_multiplicative();
    while (peek().kind == Tok::Plus || peek().kind == Tok::Minus) {
      const BinOp op = peek().kind == Tok::Plus ? BinOp::Add : BinOp::Sub;
      const int line = advance().line;
      e = Expr::make_binary(op, std::move(e), parse_multiplicative(), line);
    }
    return e;
  }

  ExprPtr parse_multiplicative() {
    ExprPtr e = parse_unary();
    while (peek().kind == Tok::Star || peek().kind == Tok::Slash ||
           peek().kind == Tok::Percent) {
      const BinOp op = peek().kind == Tok::Star    ? BinOp::Mul
                       : peek().kind == Tok::Slash ? BinOp::Div
                                                   : BinOp::Mod;
      const int line = advance().line;
      e = Expr::make_binary(op, std::move(e), parse_unary(), line);
    }
    return e;
  }

  ExprPtr parse_unary() {
    if (peek().kind == Tok::Minus) {
      const int line = advance().line;
      return Expr::make_unary(UnOp::Neg, parse_unary(), line);
    }
    if (peek().kind == Tok::Not) {
      const int line = advance().line;
      return Expr::make_unary(UnOp::Not, parse_unary(), line);
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    const Token& t = peek();
    switch (t.kind) {
      case Tok::IntLit: {
        advance();
        return Expr::make_int(t.int_val, t.line);
      }
      case Tok::FloatLit: {
        advance();
        return Expr::make_float(t.float_val, t.line);
      }
      case Tok::LParen: {
        advance();
        ExprPtr e = parse_expr();
        expect(Tok::RParen, "to close parenthesis");
        return e;
      }
      case Tok::Ident: {
        advance();
        if (peek().kind == Tok::LParen) {
          advance();
          std::vector<ExprPtr> args;
          if (peek().kind != Tok::RParen) {
            do {
              args.push_back(parse_expr());
            } while (match(Tok::Comma));
          }
          expect(Tok::RParen, "after call arguments");
          return Expr::make_call(t.text, std::move(args), t.line);
        }
        if (peek().kind == Tok::LBracket) {
          advance();
          ExprPtr idx = parse_expr();
          expect(Tok::RBracket, "after array index");
          return Expr::make_index(t.text, std::move(idx), t.line);
        }
        return Expr::make_var(t.text, t.line);
      }
      default: fail("expected an expression, found " + tok_name(t.kind));
    }
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

Program parse(const std::string& source) {
  Parser p{lex(source)};
  return p.parse_program();
}

}  // namespace pdc::minic
