// Campaign spec: grid expansion, the .cmp text format, render round-trip,
// and error reporting with original-file line numbers.
#include "campaign/spec.hpp"

#include <gtest/gtest.h>

#include <set>

namespace pdc::campaign {
namespace {

using scenario::ScenarioError;

TEST(CampaignExpand, FullGridInDeterministicOrder) {
  CampaignSpec spec;
  spec.name = "grid";
  spec.platforms = {scenario::PlatformSpec::grid5000(), scenario::PlatformSpec::lan()};
  spec.peers = {2, 4};
  spec.levels = {ir::OptLevel::O0, ir::OptLevel::O3};
  spec.repetitions = 2;
  EXPECT_EQ(spec.total_runs(), 16u);

  const auto runs = expand(spec);
  ASSERT_EQ(runs.size(), 16u);
  std::set<std::string> keys;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].index, i);
    keys.insert(runs[i].key);
    EXPECT_EQ(runs[i].spec.name, "grid/" + runs[i].key);
  }
  EXPECT_EQ(keys.size(), 16u) << "run keys must be unique";
  // Repetitions are innermost; platform is outermost.
  EXPECT_EQ(runs[0].repetition, 0);
  EXPECT_EQ(runs[1].repetition, 1);
  EXPECT_EQ(runs[0].point_key, runs[1].point_key);
  EXPECT_EQ(runs[0].spec.platform.label, "grid5000");
  EXPECT_EQ(runs[8].spec.platform.label, "lan");
  // Overridden axis values land in the scenario spec.
  EXPECT_EQ(runs[0].spec.run.peers, 2);
  EXPECT_EQ(runs[0].spec.run.level, ir::OptLevel::O0);
  EXPECT_EQ(runs[2].spec.run.level, ir::OptLevel::O3);
  EXPECT_EQ(runs[4].spec.run.peers, 4);
}

TEST(CampaignExpand, EmptyAxesCollapseToBase) {
  CampaignSpec spec;
  spec.base.run.peers = 7;
  spec.base.run.seed = 99;
  const auto runs = expand(spec);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].spec.run.peers, 7);
  EXPECT_EQ(runs[0].spec.run.seed, 99u);
  EXPECT_EQ(runs[0].key, "grid5000-p7-O0-sync-hier-s99-r0");
}

TEST(CampaignExpand, SameKindVariantsWithoutLabelsGetUniqueKeys) {
  // Two parameterized star variants with no explicit label= must not
  // collide into one grid point (same record file, merged aggregation).
  const CampaignSpec spec = parse_campaign(R"(
campaign dup
variant star hosts=4
variant star hosts=16
)");
  const auto runs = expand(spec);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_NE(runs[0].key, runs[1].key);
  EXPECT_NE(runs[0].point_key, runs[1].point_key);
  // Suffixing stays collision-free even when a literal label looks like a
  // suffixed duplicate of another.
  CampaignSpec tricky;
  tricky.platforms = {scenario::PlatformSpec::lan(), scenario::PlatformSpec::lan(),
                      scenario::PlatformSpec::lan()};
  tricky.platforms[2].label = "lanv1";
  const auto truns = expand(tricky);
  std::set<std::string> tkeys;
  for (const auto& r : truns) tkeys.insert(r.point_key);
  EXPECT_EQ(tkeys.size(), truns.size()) << "platform keys must stay unique";
  // Distinctly labelled variants keep their plain labels.
  CampaignSpec labelled;
  labelled.platforms = {scenario::PlatformSpec::grid5000(), scenario::PlatformSpec::lan()};
  const auto lruns = expand(labelled);
  EXPECT_EQ(lruns[0].point_key.rfind("grid5000-", 0), 0u) << lruns[0].point_key;
  EXPECT_EQ(lruns[1].point_key.rfind("lan-", 0), 0u) << lruns[1].point_key;
}

TEST(CampaignExpand, DuplicateAxisValuesCollapse) {
  // `sweep seed 42,42` must not create two runs with the same key (same
  // record file, racing temp writes, double-counted aggregation).
  CampaignSpec spec;
  spec.peers = {2, 4, 2};
  spec.seeds = {42, 42};
  spec.levels = {ir::OptLevel::O0, ir::OptLevel::O0};
  const auto runs = expand(spec);
  ASSERT_EQ(runs.size(), 2u);  // peers {2,4} x seed {42} x opt {O0}
  EXPECT_EQ(runs[0].spec.run.peers, 2);
  EXPECT_EQ(runs[1].spec.run.peers, 4);
  EXPECT_GE(spec.total_runs(), runs.size()) << "total_runs is an upper bound";
}

TEST(CampaignExpand, RejectsNonPositiveRepetitions) {
  CampaignSpec spec;
  spec.repetitions = 0;
  EXPECT_THROW(expand(spec), std::invalid_argument);
}

TEST(CampaignParse, SweepsAndBaseKeys) {
  const CampaignSpec spec = parse_campaign(R"(# sweep grid
campaign my-campaign
platform lan
grid 130
iters 40
mode both
sweep peers 2,4 8
sweep opt 0,3
sweep scheme sync,async
sweep alloc hierarchical,flat
sweep seed 41,42,43
repetitions 3
)");
  EXPECT_EQ(spec.name, "my-campaign");
  EXPECT_EQ(spec.base.platform.label, "lan");
  EXPECT_EQ(spec.base.run.grid_n, 130);
  EXPECT_EQ(spec.base.run.iters, 40);
  EXPECT_EQ(spec.base.run.mode, scenario::Mode::Both);
  EXPECT_EQ(spec.peers, (std::vector<int>{2, 4, 8}));
  EXPECT_EQ(spec.levels, (std::vector<ir::OptLevel>{ir::OptLevel::O0, ir::OptLevel::O3}));
  EXPECT_EQ(spec.schemes.size(), 2u);
  EXPECT_EQ(spec.allocations.size(), 2u);
  EXPECT_EQ(spec.seeds, (std::vector<std::uint64_t>{41, 42, 43}));
  EXPECT_EQ(spec.repetitions, 3);
  EXPECT_EQ(spec.total_runs(), 3u * 2u * 2u * 2u * 3u * 3u);
}

TEST(CampaignParse, PlatformPresetsAndVariants) {
  const CampaignSpec spec = parse_campaign(R"(
campaign plats
sweep platform grid5000 lan,xdsl
variant star hosts=8 speed=2GHz
variant federation clusters=2 hosts=3
)");
  ASSERT_EQ(spec.platforms.size(), 5u);
  EXPECT_EQ(spec.platforms[0].label, "grid5000");
  EXPECT_EQ(spec.platforms[1].label, "lan");
  EXPECT_EQ(spec.platforms[2].label, "xdsl");
  EXPECT_STREQ(spec.platforms[3].kind(), "star");
  const auto& star = std::get<net::StarSpec>(spec.platforms[3].spec);
  EXPECT_EQ(star.hosts, 8);
  EXPECT_DOUBLE_EQ(star.host_speed_hz, 2e9);
  EXPECT_STREQ(spec.platforms[4].kind(), "federation");
}

TEST(CampaignParse, InlinePlatformBlockPassesThrough) {
  const CampaignSpec spec = parse_campaign(R"(
campaign inline-base
platform inline
  host a speed 3GHz ip 10.0.0.1
  host b speed 3GHz ip 10.0.0.2
end
sweep peers 2,4
)");
  EXPECT_STREQ(spec.base.platform.kind(), "file");
  EXPECT_EQ(spec.peers, (std::vector<int>{2, 4}));
}

TEST(CampaignParse, ErrorsReportOriginalLineNumbers) {
  // The bad scenario keyword sits on line 4 of the .cmp file; campaign
  // lines before it must not shift the reported number.
  const std::string text = "campaign c\nsweep peers 2,4\nplatform lan\nbogus 1\n";
  try {
    parse_campaign(text);
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_EQ(e.line(), 4) << e.what();
  }
}

TEST(CampaignParse, RejectsBadCampaignLines) {
  EXPECT_THROW(parse_campaign("sweep peers\n"), ScenarioError);
  EXPECT_THROW(parse_campaign("sweep bogus 1,2\n"), ScenarioError);
  EXPECT_THROW(parse_campaign("sweep opt 9\n"), ScenarioError);
  EXPECT_THROW(parse_campaign("sweep scheme sometimes\n"), ScenarioError);
  EXPECT_THROW(parse_campaign("sweep platform star\n"), ScenarioError);  // not a preset
  EXPECT_THROW(parse_campaign("repetitions 0\n"), ScenarioError);
  EXPECT_THROW(parse_campaign("variant inline\n"), ScenarioError);
  EXPECT_THROW(parse_campaign("campaign\n"), ScenarioError);
}

TEST(CampaignRender, RoundTripsToFixpoint) {
  CampaignSpec spec;
  spec.name = "rt";
  spec.base.run.grid_n = 130;
  spec.base.run.iters = 40;
  spec.platforms = {scenario::PlatformSpec::lan(), scenario::PlatformSpec::xdsl()};
  spec.peers = {2, 8};
  spec.levels = {ir::OptLevel::O2, ir::OptLevel::Os};
  spec.schemes = {p2psap::Scheme::Asynchronous};
  spec.allocations = {p2pdc::AllocationMode::Flat};
  spec.seeds = {7, 8};
  spec.repetitions = 4;

  const std::string text = render_campaign(spec);
  const CampaignSpec reparsed = parse_campaign(text);
  EXPECT_EQ(render_campaign(reparsed), text);
  EXPECT_EQ(reparsed.name, spec.name);
  EXPECT_EQ(reparsed.peers, spec.peers);
  EXPECT_EQ(reparsed.levels, spec.levels);
  EXPECT_EQ(reparsed.seeds, spec.seeds);
  EXPECT_EQ(reparsed.repetitions, spec.repetitions);
  ASSERT_EQ(reparsed.platforms.size(), 2u);
  EXPECT_EQ(reparsed.platforms[0].label, "lan");
  // Expansion of the reparsed campaign matches the original cell-for-cell.
  const auto a = expand(spec);
  const auto b = expand(reparsed);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(scenario::render_scenario(a[i].spec), scenario::render_scenario(b[i].spec));
  }
}

}  // namespace
}  // namespace pdc::campaign
