// Streaming statistics (Welford) and small summaries used by benchmarking,
// block timing and the experiment harness.
#pragma once

#include <cstddef>
#include <vector>

namespace pdc {

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double total() const { return sum_; }

  /// Merges another accumulator into this one (parallel-combine rule).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Returns the p-quantile (0 <= p <= 1) with linear interpolation.
/// Sorts a copy; intended for small sample sets.
double quantile(std::vector<double> samples, double p);

}  // namespace pdc
