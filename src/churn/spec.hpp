// Churn & fault-injection descriptions: *what* volatility a run is subjected
// to, as plain sweepable data. A ChurnSpec combines an explicit event list
// (crash this peer at t=40) with a generative model (exponential peer
// lifetimes and downtimes, Poisson link degradations) that expands — purely
// and deterministically from the seed — into the same kind of timeline.
//
// The expansion is independent of the platform and of execution order, so
// the reference execution and the dPerf prediction of one scenario replay
// the *identical* event stream, and a campaign at -j8 records exactly what
// it records at -j1.
//
// Text form (lines inside a scenario/campaign spec; see examples/README.md):
//
//   churn rate <crashes/s/peer>       churn downtime <s>
//   churn link_rate <events/s>        churn link_scale <x>   churn link_time <s>
//   churn horizon <s>                 churn seed <n>         churn attempts <n>
//   churn event crash-peer at=<s> [peer=<i>]
//   churn event join at=<s>
//   churn event crash-tracker at=<s> [tracker=<i>]
//   churn event degrade at=<s> [link=<i>] [scale=<x>]
//   churn event restore at=<s> [link=<i>]
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/time.hpp"

namespace pdc::churn {

/// One scheduled fault event. Times are simulated seconds relative to the
/// moment the injector arms (deployment finished, warmup not yet begun).
struct ChurnEvent {
  enum class Kind { PeerCrash, PeerJoin, TrackerCrash, LinkDegrade, LinkRestore };

  Kind kind = Kind::PeerCrash;
  Time at = 0;
  /// Worker index (PeerCrash), crashable-tracker index (TrackerCrash; 0 is
  /// the deployment's primary tracker, then the churn failover trackers) or
  /// link index (LinkDegrade/LinkRestore); -1 picks seeded at injection.
  int target = -1;
  double scale = 1.0;  // LinkDegrade capacity factor (1.0 for other kinds)

  friend bool operator==(const ChurnEvent&, const ChurnEvent&) = default;
};

const char* churn_event_kind_name(ChurnEvent::Kind k);

/// Aggregate counters the injector reports into the RunRecord.
struct ChurnStats {
  int events_applied = 0;
  int events_skipped = 0;  // no alive target / no spare host / last tracker
  int peer_crashes = 0;
  int peer_joins = 0;
  int tracker_crashes = 0;
  int link_degrades = 0;
  int link_restores = 0;
};

/// The sweepable churn description attached to a RunSpec.
struct ChurnSpec {
  std::vector<ChurnEvent> events;  // explicit timeline, in listing order

  // Generative model, active when a rate is > 0. Peer churn: each worker
  // draws an exponential lifetime; if it falls inside the horizon the peer
  // crashes then, and a replacement joins after an exponential downtime.
  double peer_crash_rate = 0;  // crashes per second per worker
  double mean_downtime = 30;   // mean crash -> replacement-join delay

  // Link churn: a Poisson process of degradations across the platform; each
  // degraded link is restored after an exponential hold time.
  double link_degrade_rate = 0;  // degradations per second, platform-wide
  double link_degrade_scale = 0.5;
  double mean_degrade_time = 60;

  Time horizon = 300;      // model events are sampled in [0, horizon)
  std::uint64_t seed = 0;  // 0: derive the stream from the run seed
  int max_attempts = 3;    // submissions before the run records an error

  /// True when this spec injects anything at all.
  bool enabled() const {
    return !events.empty() || peer_crash_rate > 0 || link_degrade_rate > 0;
  }

  friend bool operator==(const ChurnSpec&, const ChurnSpec&) = default;
};

/// Expands spec into the concrete, time-sorted event stream for a run with
/// `peers` workers. Pure function of (spec, peers, run_seed): the reference
/// and prediction phases, and every -j level, see the same timeline.
std::vector<ChurnEvent> expand_events(const ChurnSpec& spec, int peers,
                                      std::uint64_t run_seed);

/// The seed the injector's own tie-break draws use (target=-1 picks).
std::uint64_t injection_seed(const ChurnSpec& spec, std::uint64_t run_seed);

// --- text format ------------------------------------------------------------
// The scenario/campaign parsers own file/line handling; these helpers take
// one tokenized `churn ...` line and throw std::invalid_argument on errors
// (wrapped into ScenarioError by the caller).

/// Applies one `churn <key> ...` line (tokens[0] == "churn") to `spec`.
void parse_churn_tokens(const std::vector<std::string>& tokens, ChurnSpec& spec);

/// Renders `spec` as `churn ...` lines (newline-terminated); empty for a
/// default-constructed spec so churn-free scenarios keep their exact
/// pre-churn text form. parse(render(s)) == s.
std::string render_churn_lines(const ChurnSpec& spec);

}  // namespace pdc::churn
