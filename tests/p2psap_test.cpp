#include "p2psap/p2psap.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/builders.hpp"
#include "sim/process.hpp"
#include "support/time.hpp"

namespace pdc::p2psap {
namespace {

using namespace pdc::units;

TEST(Adapt, SynchronousSchemesAreReliableAndOrdered) {
  for (auto lc : {LinkClass::IntraZone, LinkClass::Lan, LinkClass::Wan}) {
    const ChannelConfig cfg = adapt(Scheme::Synchronous, lc);
    EXPECT_TRUE(cfg.reliable);
    EXPECT_FALSE(cfg.latest_value);
    EXPECT_GT(cfg.ack_bytes, 0);
  }
}

TEST(Adapt, AsynchronousSchemesDropAcksAndKeepLatestOnly) {
  for (auto lc : {LinkClass::IntraZone, LinkClass::Lan, LinkClass::Wan}) {
    const ChannelConfig cfg = adapt(Scheme::Asynchronous, lc);
    EXPECT_FALSE(cfg.reliable);
    EXPECT_TRUE(cfg.latest_value);
    EXPECT_EQ(cfg.ack_bytes, 0);
  }
}

TEST(Adapt, WanProfilesCarryMoreOverheadThanIntraZone) {
  EXPECT_GT(adapt(Scheme::Synchronous, LinkClass::Wan).header_bytes,
            adapt(Scheme::Synchronous, LinkClass::IntraZone).header_bytes);
  EXPECT_GT(adapt(Scheme::Asynchronous, LinkClass::Wan).header_bytes,
            adapt(Scheme::Asynchronous, LinkClass::IntraZone).header_bytes);
}

TEST(Adapt, ProfilesAreNamedDistinctly) {
  EXPECT_NE(adapt(Scheme::Synchronous, LinkClass::Lan).profile,
            adapt(Scheme::Asynchronous, LinkClass::Lan).profile);
  EXPECT_NE(adapt(Scheme::Synchronous, LinkClass::Lan).profile,
            adapt(Scheme::Synchronous, LinkClass::Wan).profile);
}

TEST(Classify, UsesIpPrefixBuckets) {
  EXPECT_EQ(classify(Ipv4{10, 0, 0, 1}, Ipv4{10, 0, 0, 1}), LinkClass::Loopback);
  EXPECT_EQ(classify(Ipv4{10, 0, 0, 1}, Ipv4{10, 0, 0, 99}), LinkClass::IntraZone);
  EXPECT_EQ(classify(Ipv4{10, 0, 1, 1}, Ipv4{10, 0, 200, 1}), LinkClass::Lan);
  EXPECT_EQ(classify(Ipv4{10, 0, 0, 1}, Ipv4{82, 1, 0, 1}), LinkClass::Wan);
}

struct FabricFixture {
  sim::Engine eng;
  net::Platform plat = net::build_star(net::bordeplage_cluster_spec(4));
  net::FlowNet flownet{eng, plat};
  Fabric fabric{eng, flownet, plat};
};

TEST(Channel, SyncSendWaitsForDeliveryPlusAck) {
  FabricFixture f;
  auto& ch = f.fabric.channel(f.plat.host(0), f.plat.host(1), Scheme::Synchronous);
  Time send_done = -1, recv_done = -1;
  f.eng.spawn([](FabricFixture& fx, Channel& c, Time& out) -> sim::Process {
    co_await c.send(fx.plat.host(0), /*tag=*/7, 8 * KiB);
    out = fx.eng.now();
  }(f, ch, send_done));
  f.eng.spawn([](FabricFixture& fx, Channel& c, Time& out) -> sim::Process {
    const Message m = co_await c.recv(fx.plat.host(1), 7);
    EXPECT_EQ(m.payload_bytes, 8 * KiB);
    EXPECT_EQ(m.src_host, fx.plat.host(0));
    out = fx.eng.now();
  }(f, ch, recv_done));
  f.eng.run();
  // Payload: 3 hops x 100us latency + (8K+64)/125MB/s on the 1Gbps NIC.
  const double payload_t = 300 * us + (8 * KiB + 64) / (1 * Gbps);
  const double ack_t = 300 * us + 64 / (1 * Gbps);
  EXPECT_NEAR(recv_done, payload_t, 1e-9);
  EXPECT_NEAR(send_done, payload_t + ack_t, 1e-9);
}

TEST(Channel, AsyncSendReturnsImmediately) {
  FabricFixture f;
  auto& ch = f.fabric.channel(f.plat.host(0), f.plat.host(1), Scheme::Asynchronous);
  Time send_done = -1, recv_done = -1;
  f.eng.spawn([](FabricFixture& fx, Channel& c, Time& s, Time& r) -> sim::Process {
    co_await c.send(fx.plat.host(0), 1, 8 * KiB);
    s = fx.eng.now();
    const Message m = co_await c.recv(fx.plat.host(1), 1);
    (void)m;
    r = fx.eng.now();
  }(f, ch, send_done, recv_done));
  f.eng.run();
  EXPECT_EQ(send_done, 0.0);  // fire and forget
  EXPECT_GT(recv_done, 0.0);  // delivery still takes network time
}

TEST(Channel, SyncDeliveryPreservesFifoOrder) {
  FabricFixture f;
  auto& ch = f.fabric.channel(f.plat.host(0), f.plat.host(1), Scheme::Synchronous);
  std::vector<int> got;
  f.eng.spawn([](FabricFixture& fx, Channel& c) -> sim::Process {
    for (int i = 0; i < 5; ++i)
      co_await c.send(fx.plat.host(0), 3, 1024, std::make_shared<std::vector<double>>(1, i));
  }(f, ch));
  f.eng.spawn([](FabricFixture& fx, Channel& c, std::vector<int>& out) -> sim::Process {
    for (int i = 0; i < 5; ++i) {
      const Message m = co_await c.recv(fx.plat.host(1), 3);
      out.push_back(static_cast<int>((*m.values)[0]));
    }
  }(f, ch, got));
  f.eng.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Channel, AsyncLatestValueOverwritesStaleData) {
  FabricFixture f;
  auto& ch = f.fabric.channel(f.plat.host(0), f.plat.host(1), Scheme::Asynchronous);
  std::optional<Message> got;
  f.eng.spawn([](FabricFixture& fx, Channel& c, std::optional<Message>& out) -> sim::Process {
    for (int i = 0; i < 4; ++i)
      co_await c.send(fx.plat.host(0), 3, 1024,
                      std::make_shared<std::vector<double>>(1, i));
    // Allow all deliveries to land, then read: only the newest remains.
    co_await fx.eng.sleep(1.0);
    out = c.try_recv(fx.plat.host(1), 3);
    EXPECT_FALSE(c.try_recv(fx.plat.host(1), 3).has_value());
  }(f, ch, got));
  f.eng.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ((*got->values)[0], 3.0);
  EXPECT_EQ(ch.stats().stale_dropped, 3u);
}

TEST(Channel, TagsAreIndependentStreams) {
  FabricFixture f;
  auto& ch = f.fabric.channel(f.plat.host(0), f.plat.host(1), Scheme::Synchronous);
  std::vector<int> got;
  f.eng.spawn([](FabricFixture& fx, Channel& c) -> sim::Process {
    co_await c.send(fx.plat.host(0), 10, 64, std::make_shared<std::vector<double>>(1, 10.0));
    co_await c.send(fx.plat.host(0), 20, 64, std::make_shared<std::vector<double>>(1, 20.0));
  }(f, ch));
  f.eng.spawn([](FabricFixture& fx, Channel& c, std::vector<int>& out) -> sim::Process {
    // Read tag 20 first even though it was sent second.
    const Message m20 = co_await c.recv(fx.plat.host(1), 20);
    out.push_back(static_cast<int>((*m20.values)[0]));
    const Message m10 = co_await c.recv(fx.plat.host(1), 10);
    out.push_back(static_cast<int>((*m10.values)[0]));
  }(f, ch, got));
  f.eng.run();
  EXPECT_EQ(got, (std::vector<int>{20, 10}));
}

TEST(Channel, BothDirectionsWorkOnOneChannel) {
  FabricFixture f;
  auto& ch = f.fabric.channel(f.plat.host(0), f.plat.host(1), Scheme::Synchronous);
  int exchanged = 0;
  f.eng.spawn([](FabricFixture& fx, Channel& c, int& n) -> sim::Process {
    co_await c.send(fx.plat.host(0), 1, 128);
    const Message m = co_await c.recv(fx.plat.host(0), 2);
    (void)m;
    ++n;
  }(f, ch, exchanged));
  f.eng.spawn([](FabricFixture& fx, Channel& c, int& n) -> sim::Process {
    const Message m = co_await c.recv(fx.plat.host(1), 1);
    (void)m;
    co_await c.send(fx.plat.host(1), 2, 128);
    ++n;
  }(f, ch, exchanged));
  f.eng.run();
  EXPECT_EQ(exchanged, 2);
}

TEST(Channel, RecvForTimesOut) {
  FabricFixture f;
  auto& ch = f.fabric.channel(f.plat.host(0), f.plat.host(1), Scheme::Synchronous);
  bool timed_out = false;
  f.eng.spawn([](FabricFixture& fx, Channel& c, bool& out) -> sim::Process {
    auto m = co_await c.recv_for(fx.plat.host(1), 9, 0.25);
    out = !m.has_value();
    EXPECT_DOUBLE_EQ(fx.eng.now(), 0.25);
  }(f, ch, timed_out));
  f.eng.run();
  EXPECT_TRUE(timed_out);
}

TEST(Fabric, ChannelCachedPerPairAndScheme) {
  FabricFixture f;
  Channel& c1 = f.fabric.channel(f.plat.host(0), f.plat.host(1), Scheme::Synchronous);
  Channel& c2 = f.fabric.channel(f.plat.host(1), f.plat.host(0), Scheme::Synchronous);
  Channel& c3 = f.fabric.channel(f.plat.host(0), f.plat.host(1), Scheme::Asynchronous);
  EXPECT_EQ(&c1, &c2);
  EXPECT_NE(&c1, &c3);
}

TEST(Fabric, AdaptationUsesIpDerivedLinkClass) {
  // Cluster hosts share a /24 -> IntraZone profile.
  FabricFixture f;
  Channel& c = f.fabric.channel(f.plat.host(0), f.plat.host(3), Scheme::Synchronous);
  EXPECT_EQ(c.config().profile, "SYNC/TCP-intrazone");
}

TEST(Channel, StatsCountMessagesAndBytes) {
  FabricFixture f;
  auto& ch = f.fabric.channel(f.plat.host(0), f.plat.host(1), Scheme::Synchronous);
  f.eng.spawn([](FabricFixture& fx, Channel& c) -> sim::Process {
    co_await c.send(fx.plat.host(0), 1, 1000);
    co_await c.send(fx.plat.host(0), 1, 2000);
  }(f, ch));
  f.eng.spawn([](FabricFixture& fx, Channel& c) -> sim::Process {
    (void)co_await c.recv(fx.plat.host(1), 1);
    (void)co_await c.recv(fx.plat.host(1), 1);
  }(f, ch));
  f.eng.run();
  EXPECT_EQ(ch.stats().messages_sent, 2u);
  EXPECT_DOUBLE_EQ(ch.stats().payload_bytes_sent, 3000.0);
  EXPECT_EQ(ch.stats().acks_sent, 2u);
}

}  // namespace
}  // namespace pdc::p2psap
