// Fig. 11 (paper §IV-B.4): reference time compared to dPerf predictions for
// the Grid5000 cluster, the Daisy xDSL desktop grid (Stage-2A) and the LAN
// (Stage-2B), all at optimization level 0.
//
// Expected shape: the xDSL curve sits far above the others (communication
// dominates; adding peers does not pay), the LAN curve tracks the cluster
// within a modest factor.
#include <cstdio>

#include "experiments/harness.hpp"
#include "support/table.hpp"

int main() {
  using namespace pdc;
  const auto setup = experiments::PaperSetup::from_env();
  const ir::OptLevel lvl = ir::OptLevel::O0;
  std::printf("Fig. 11 -- reference vs dPerf predictions [s], optimization level 0\n\n");

  TextTable table({"Peers", "reference", "dPerf Grid5000", "dPerf xDSL", "dPerf LAN"});
  for (int peers : experiments::paper_peer_counts()) {
    const double ref =
        experiments::reference_seconds(experiments::Topology::Grid5000, peers, lvl, setup);
    // One set of traces per peer count, replayed on each platform
    // description -- exactly the paper's methodology.
    const auto traces = experiments::traces_for(peers, lvl, setup);
    const double g5k = experiments::predicted_seconds(experiments::Topology::Grid5000,
                                                      peers, lvl, setup, traces);
    const double xdsl = experiments::predicted_seconds(experiments::Topology::Xdsl, peers,
                                                       lvl, setup, traces);
    const double lan = experiments::predicted_seconds(experiments::Topology::Lan, peers,
                                                      lvl, setup, traces);
    table.add_row({std::to_string(peers), TextTable::num(ref, 2), TextTable::num(g5k, 2),
                   TextTable::num(xdsl, 2), TextTable::num(lan, 2)});
    std::printf("  ... %d peers done\n", peers);
  }
  std::printf("\n%s\n", table.render().c_str());
  return 0;
}
