// dperf_tool: the dPerf pipeline as a command-line tool, mirroring how the
// paper's dPerf is used: feed it a (MiniC) source file with P2PSAP calls, a
// platform description and a process count; get the instrumented source,
// the per-block benchmark report, per-process trace files and the predicted
// execution time.
//
// Usage:
//   dperf_tool <source.mc> --procs N [--opt 0|1|2|3|s] [--platform file.plat]
//              [--params i0,i1,...] [--fparams f0,f1,...]
//              [--emit-instrumented out.mc] [--emit-traces prefix]
//
// With no --platform, predictions run on the builtin Bordeplage cluster
// model. The iteration parameter (index 1) is sampled and scaled up unless
// the program has no marked communication loop.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dperf/dperf.hpp"
#include "minic/token.hpp"
#include "net/builders.hpp"
#include "net/platfile.hpp"
#include "obstacle/distributed.hpp"
#include "support/table.hpp"

namespace {

using namespace pdc;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

int usage() {
  std::fprintf(stderr,
               "usage: dperf_tool <source.mc> --procs N [--opt 0|1|2|3|s]\n"
               "                  [--platform file.plat] [--params i0,i1,...]\n"
               "                  [--fparams f0,f1,...] [--emit-instrumented out.mc]\n"
               "                  [--emit-traces prefix]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string source_path = argv[1];
  int procs = 2;
  std::string opt_level = "0";
  std::string platform_path;
  std::string emit_instrumented;
  std::string emit_traces;
  dperf::Workload workload;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + arg);
      return argv[++i];
    };
    try {
      if (arg == "--procs") procs = std::stoi(next());
      else if (arg == "--opt") opt_level = next();
      else if (arg == "--platform") platform_path = next();
      else if (arg == "--emit-instrumented") emit_instrumented = next();
      else if (arg == "--emit-traces") emit_traces = next();
      else if (arg == "--params") {
        for (const auto& v : split_commas(next())) workload.int_params.push_back(std::stoll(v));
      } else if (arg == "--fparams") {
        for (const auto& v : split_commas(next())) workload.float_params.push_back(std::stod(v));
      } else {
        return usage();
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "argument error: %s\n", e.what());
      return 2;
    }
  }

  try {
    const std::string source = read_file(source_path);
    dperf::DperfOptions options;
    options.level = ir::parse_opt_level(opt_level);
    const dperf::Dperf pipeline{source, options};

    std::printf("== static analysis ==\n");
    std::printf("blocks: %zu, marked communication loops: %d\n",
                pipeline.instrumented().blocks.size(), pipeline.instrumented().iter_loops);
    if (!emit_instrumented.empty()) {
      std::ofstream out(emit_instrumented);
      out << pipeline.instrumented_source();
      std::printf("instrumented source written to %s\n", emit_instrumented.c_str());
    }

    std::printf("\n== block benchmarking (%s, 3 GHz reference) ==\n",
                ir::opt_level_name(options.level));
    const dperf::BlockTimings timings = pipeline.benchmark(workload);
    TextTable table({"block", "function", "line", "in comm loop", "executions", "mean ns"});
    for (const auto& e : timings.entries)
      table.add_row({std::to_string(e.info.id), e.info.function,
                     std::to_string(e.info.first_line),
                     e.info.comm_loop_depth > 0 ? "yes" : "no",
                     std::to_string(e.executions), TextTable::num(e.mean_ns, 1)});
    std::printf("%s", table.render().c_str());

    std::printf("\n== traces for %d processes ==\n", procs);
    auto traces = pipeline.traces(workload, procs);
    for (const auto& t : traces) {
      std::printf("rank %d: %zu events, compute %.4f s, %zu sends, %zu recvs\n", t.rank,
                  t.events.size(), t.total_compute_ns() / 1e9,
                  t.count(dperf::TraceEvent::Kind::Send),
                  t.count(dperf::TraceEvent::Kind::Recv));
      if (!emit_traces.empty()) {
        const std::string path = emit_traces + "." + std::to_string(t.rank) + ".trace";
        std::ofstream out(path);
        out << dperf::save_trace(t);
      }
    }
    if (!emit_traces.empty())
      std::printf("trace files written to %s.<rank>.trace\n", emit_traces.c_str());

    std::printf("\n== trace-based simulation ==\n");
    net::Platform platform =
        platform_path.empty()
            ? net::build_star(net::bordeplage_cluster_spec(procs + 3))
            : net::parse_platform(read_file(platform_path));
    if (platform.host_count() < procs + 3)
      throw std::runtime_error("platform needs at least " + std::to_string(procs + 3) +
                               " hosts (server, tracker, submitter + procs)");
    sim::Engine engine;
    p2pdc::Environment env{engine, platform};
    env.boot_server(platform.host(0));
    env.boot_tracker(platform.host(1), true);
    for (int i = 2; i < procs + 3; ++i)
      env.boot_peer(platform.host(i), overlay::PeerResources{3e9, 2e9, 80e9});
    env.finish_bootstrap();
    p2pdc::TaskSpec spec;
    spec.name = source_path;
    const dperf::Prediction pred =
        dperf::replay_on(env, platform.host(2), spec, std::move(traces));
    if (!pred.computation.ok) throw std::runtime_error(pred.computation.failure);
    std::printf("predicted execution time : %.4f s\n", pred.solve_seconds);
    std::printf("incl. P2PDC overheads    : %.4f s (collection %.4f, allocation %.4f)\n",
                pred.total_seconds, pred.computation.collection_time(),
                pred.computation.allocation_time());
    return 0;
  } catch (const minic::CompileError& e) {
    std::fprintf(stderr, "%s: %s\n", source_path.c_str(), e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
