// Synchronization primitives for simulation processes: Latch (count-down)
// and Gate (one-shot broadcast event). Both are single-threaded simulation
// objects; "waiting" means coroutine suspension, never OS blocking.
#pragma once

#include <coroutine>
#include <vector>

#include "sim/engine.hpp"

namespace pdc::sim {

/// Count-down latch: processes co_await wait(); when the count reaches zero
/// every waiter (present and future) resumes.
class Latch {
 public:
  Latch(Engine& engine, int count) : engine_(&engine), count_(count) {}
  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  void count_down(int n = 1) {
    count_ -= n;
    if (count_ <= 0) release_all();
  }

  /// Re-arms the latch. Must only be called while no process is waiting.
  void reset(int count) {
    count_ = count;
  }

  /// Opens the latch immediately whatever the remaining count (used to abort
  /// a computation whose missing count-downs will never arrive, e.g. after a
  /// peer crash). No-op when already open.
  void force_open() {
    if (count_ > 0) {
      count_ = 0;
      release_all();
    }
  }

  int pending() const { return count_; }
  bool open() const { return count_ <= 0; }

  struct Awaiter {
    Latch* latch;
    bool await_ready() const noexcept { return latch->open(); }
    void await_suspend(std::coroutine_handle<> h) { latch->waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };
  Awaiter wait() { return Awaiter{this}; }

 private:
  void release_all() {
    auto waiters = std::move(waiters_);
    waiters_.clear();
    // Raw-handle resumes: releasing N waiters schedules N allocation-free
    // 16-byte events, in wait order.
    for (auto h : waiters) engine_->post_resume(h);
  }

  Engine* engine_;
  int count_;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// One-shot gate: wait() suspends until open() is called once.
class Gate {
 public:
  explicit Gate(Engine& engine) : latch_(engine, 1) {}
  void open() {
    if (!latch_.open()) latch_.count_down();
  }
  bool is_open() const { return latch_.open(); }
  Latch::Awaiter wait() { return latch_.wait(); }

 private:
  Latch latch_;
};

}  // namespace pdc::sim
