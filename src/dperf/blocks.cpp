#include "dperf/blocks.hpp"

#include "minic/builtins.hpp"

namespace pdc::dperf {

namespace {

using minic::Expr;
using minic::Stmt;
using minic::StmtPtr;

bool expr_has_comm(const Expr& e) {
  if (e.kind == Expr::Kind::Call && minic::is_comm_builtin(e.name)) return true;
  for (const auto& k : e.kids)
    if (expr_has_comm(*k)) return true;
  return false;
}

bool stmt_has_comm(const Stmt& s) {
  for (const Expr* e : {s.array_size.get(), s.init.get(), s.lvalue.get(), s.value.get(),
                        s.cond.get()})
    if (e != nullptr && expr_has_comm(*e)) return true;
  for (const Stmt* sub : {s.for_init.get(), s.for_step.get()})
    if (sub != nullptr && stmt_has_comm(*sub)) return true;
  for (const auto& b : s.body)
    if (stmt_has_comm(*b)) return true;
  for (const auto& b : s.else_body)
    if (stmt_has_comm(*b)) return true;
  return false;
}

class Instrumenter {
 public:
  explicit Instrumenter(InstrumentedProgram& out) : out_(&out) {}

  void function(minic::Function& f) {
    current_function_ = f.name;
    walk(f.body, /*comm_loop_depth=*/0);
  }

 private:
  minic::ExprPtr call_stmt_expr(const std::string& name, int id) {
    std::vector<minic::ExprPtr> args;
    args.push_back(Expr::make_int(id));
    return Expr::make_call(name, std::move(args));
  }
  StmtPtr marker(const std::string& name, int id, int line) {
    auto s = Stmt::make(Stmt::Kind::ExprStmt, line);
    s->value = call_stmt_expr(name, id);
    return s;
  }

  /// Rewrites a statement list: wraps comm-free runs into instrumented
  /// blocks; recurses into comm-carrying compound statements.
  void walk(std::vector<StmtPtr>& body, int comm_loop_depth) {
    std::vector<StmtPtr> result;
    std::vector<StmtPtr> pending;  // current comm-free run
    auto flush = [&] {
      if (pending.empty()) return;
      const int id = next_id_++;
      BlockInfo info;
      info.id = id;
      info.function = current_function_;
      info.first_line = pending.front()->line;
      info.comm_loop_depth = comm_loop_depth;
      out_->blocks.push_back(info);
      result.push_back(marker("dperf_block_begin", id, info.first_line));
      for (auto& s : pending) result.push_back(std::move(s));
      result.push_back(marker("dperf_block_end", id, info.first_line));
      pending.clear();
    };

    for (auto& sp : body) {
      if (!stmt_has_comm(*sp)) {
        pending.push_back(std::move(sp));
        continue;
      }
      flush();
      Stmt& s = *sp;
      switch (s.kind) {
        case Stmt::Kind::For:
        case Stmt::Kind::While: {
          const bool outermost = comm_loop_depth == 0;
          walk(s.body, comm_loop_depth + 1);
          if (outermost) {
            const int loop_id = out_->iter_loops++;
            s.body.insert(s.body.begin(),
                          marker("dperf_iter_mark", loop_id, s.line));
          }
          break;
        }
        case Stmt::Kind::If:
        case Stmt::Kind::Block:
          walk(s.body, comm_loop_depth);
          walk(s.else_body, comm_loop_depth);
          break;
        default:
          break;  // a bare comm statement: left as-is
      }
      result.push_back(std::move(sp));
    }
    flush();
    body = std::move(result);
  }

  InstrumentedProgram* out_;
  std::string current_function_;
  int next_id_ = 0;
};

}  // namespace

bool contains_comm(const minic::Stmt& stmt) { return stmt_has_comm(stmt); }

InstrumentedProgram instrument(const minic::Program& program) {
  InstrumentedProgram out;
  out.program = program.clone();
  Instrumenter ins{out};
  for (auto& f : out.program.functions) ins.function(f);
  return out;
}

}  // namespace pdc::dperf
