#include "net/platform.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace pdc::net {

NodeIdx Platform::add_host(std::string name, double speed_hz, Ipv4 ip) {
  const auto idx = static_cast<NodeIdx>(nodes_.size());
  nodes_.push_back(NodeInfo{std::move(name), /*is_host=*/true, speed_hz, ip});
  adjacency_.emplace_back();
  hosts_.push_back(idx);
  return idx;
}

NodeIdx Platform::add_router(std::string name) {
  const auto idx = static_cast<NodeIdx>(nodes_.size());
  nodes_.push_back(NodeInfo{std::move(name), /*is_host=*/false, 0.0, Ipv4{}});
  adjacency_.emplace_back();
  return idx;
}

LinkIdx Platform::add_link(std::string name, double bandwidth_Bps, Time latency) {
  const auto idx = static_cast<LinkIdx>(links_.size());
  links_.push_back(Link{std::move(name), bandwidth_Bps, latency});
  return idx;
}

void Platform::connect(NodeIdx a, NodeIdx b, LinkIdx link) {
  const int edge = static_cast<int>(edges_.size());
  edges_.push_back(Edge{a, b, link});
  adjacency_[static_cast<std::size_t>(a)].push_back(edge);
  adjacency_[static_cast<std::size_t>(b)].push_back(edge);
}

void Platform::set_route(NodeIdx src, NodeIdx dst, std::vector<Hop> hops, bool symmetric) {
  Route fwd;
  fwd.hops = hops;
  for (const Hop& h : hops) fwd.latency += links_[static_cast<std::size_t>(h.link)].latency;
  explicit_routes_[pair_key(src, dst)] = std::move(fwd);
  if (symmetric) {
    Route rev;
    for (auto it = hops.rbegin(); it != hops.rend(); ++it) {
      rev.hops.push_back(Hop{it->link, 1 - it->dir});
      rev.latency += links_[static_cast<std::size_t>(it->link)].latency;
    }
    explicit_routes_[pair_key(dst, src)] = std::move(rev);
  }
}

bool Platform::enable_hierarchical_routing(LinkIdx trunk) {
  if (trunk >= link_count()) return false;
  std::vector<Access> access(nodes_.size());
  for (NodeIdx h : hosts_) {
    const auto& adj = adjacency_[static_cast<std::size_t>(h)];
    if (adj.size() != 1) return false;
    const Edge& e = edges_[static_cast<std::size_t>(adj[0])];
    const NodeIdx peer = e.a == h ? e.b : e.a;
    if (nodes_[static_cast<std::size_t>(peer)].is_host) return false;
    access[static_cast<std::size_t>(h)] = Access{peer, e.link, e.a == h ? 0 : 1};
  }
  access_ = std::move(access);
  hier_ = true;
  trunk_ = trunk < 0 ? -1 : trunk;
  route_cache_.clear();
  cache_lru_.clear();
  return true;
}

void Platform::set_route_cache_capacity(std::size_t capacity) {
  route_cache_capacity_ = std::max<std::size_t>(capacity, 2);
  while (route_cache_.size() > route_cache_capacity_) {
    route_cache_.erase(cache_lru_.back().key);
    cache_lru_.pop_back();
    ++stats_.cache_evictions;
  }
}

RouteStats Platform::route_stats() const {
  RouteStats s = stats_;
  s.cache_entries = route_cache_.size();
  return s;
}

const Route& Platform::route(NodeIdx src, NodeIdx dst) const {
  const std::uint64_t key = pair_key(src, dst);
  if (auto it = explicit_routes_.find(key); it != explicit_routes_.end()) return it->second;
  if (auto it = route_cache_.find(key); it != route_cache_.end()) {
    ++stats_.cache_hits;
    cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
    return it->second->route;
  }
  const bool hier = hier_ && static_cast<std::size_t>(src) < access_.size() &&
                    static_cast<std::size_t>(dst) < access_.size();
  Route r = hier ? compute_hier_route(src, dst) : compute_bfs_route(src, dst);
  ++stats_.routes_computed;
  return cache_insert(key, std::move(r));
}

const Route& Platform::cache_insert(std::uint64_t key, Route r) const {
  while (route_cache_.size() >= route_cache_capacity_ && !cache_lru_.empty()) {
    route_cache_.erase(cache_lru_.back().key);
    cache_lru_.pop_back();
    ++stats_.cache_evictions;
  }
  cache_lru_.push_front(CacheEntry{key, std::move(r)});
  route_cache_.emplace(key, cache_lru_.begin());
  return cache_lru_.front().route;
}

// Hierarchical assembly: access hop up, router-core path (cached under the
// router pair, so 10^5 hosts behind a handful of routers share a few core
// entries), access hop down. On a trunked star the core collapses to the
// single fabric hop with direction src < dst ? 0 : 1, exactly what the old
// O(hosts^2) explicit-route loop installed.
Route Platform::compute_hier_route(NodeIdx src, NodeIdx dst) const {
  if (src == dst) return Route{};
  const NodeInfo& sn = nodes_[static_cast<std::size_t>(src)];
  const NodeInfo& dn = nodes_[static_cast<std::size_t>(dst)];
  const NodeIdx rs = sn.is_host ? access_[static_cast<std::size_t>(src)].router : src;
  const NodeIdx rd = dn.is_host ? access_[static_cast<std::size_t>(dst)].router : dst;
  Route r;
  if (sn.is_host) {
    const Access& a = access_[static_cast<std::size_t>(src)];
    r.hops.push_back(Hop{a.link, a.up_dir});
  }
  if (rs != rd) {
    const Route core = compute_core_route(rs, rd);
    r.hops.insert(r.hops.end(), core.hops.begin(), core.hops.end());
  } else if (trunk_ >= 0 && sn.is_host && dn.is_host) {
    r.hops.push_back(Hop{trunk_, src < dst ? 0 : 1});
  }
  if (dn.is_host) {
    const Access& a = access_[static_cast<std::size_t>(dst)];
    r.hops.push_back(Hop{a.link, 1 - a.up_dir});
  }
  // Latency summed in reverse hop order: the exact accumulation order of
  // the full-graph BFS this assembly replaces, so latencies stay
  // bit-identical and existing golden records hold.
  for (auto it = r.hops.rbegin(); it != r.hops.rend(); ++it)
    r.latency += links_[static_cast<std::size_t>(it->link)].latency;
  return r;
}

// Router-only BFS, cached under the router pair. Hosts are degree-1 leaves,
// so skipping their edges leaves the BFS discovery order of routers — and
// therefore the deterministic tie-breaking — identical to a full-graph BFS.
Route Platform::compute_core_route(NodeIdx src, NodeIdx dst) const {
  const std::uint64_t key = pair_key(src, dst);
  if (auto it = route_cache_.find(key); it != route_cache_.end()) {
    ++stats_.cache_hits;
    cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
    return it->second->route;  // copied into the caller's assembly below
  }
  if (src == dst) return Route{};
  std::vector<int> via_edge(nodes_.size(), -1);
  std::vector<NodeIdx> parent(nodes_.size(), -1);
  std::deque<NodeIdx> frontier{src};
  parent[static_cast<std::size_t>(src)] = src;
  while (!frontier.empty()) {
    const NodeIdx n = frontier.front();
    frontier.pop_front();
    if (n == dst) break;
    for (int e : adjacency_[static_cast<std::size_t>(n)]) {
      const Edge& edge = edges_[static_cast<std::size_t>(e)];
      const NodeIdx next = edge.a == n ? edge.b : edge.a;
      if (nodes_[static_cast<std::size_t>(next)].is_host) continue;
      if (parent[static_cast<std::size_t>(next)] != -1) continue;
      parent[static_cast<std::size_t>(next)] = n;
      via_edge[static_cast<std::size_t>(next)] = e;
      frontier.push_back(next);
    }
  }
  if (parent[static_cast<std::size_t>(dst)] == -1)
    throw std::runtime_error("Platform::route: no path from " +
                             nodes_[static_cast<std::size_t>(src)].name + " to " +
                             nodes_[static_cast<std::size_t>(dst)].name);
  Route r;
  for (NodeIdx n = dst; n != src; n = parent[static_cast<std::size_t>(n)]) {
    const Edge& edge = edges_[static_cast<std::size_t>(via_edge[static_cast<std::size_t>(n)])];
    const int dir = edge.b == n ? 0 : 1;
    r.hops.push_back(Hop{edge.link, dir});
    r.latency += links_[static_cast<std::size_t>(edge.link)].latency;
  }
  std::reverse(r.hops.begin(), r.hops.end());
  ++stats_.routes_computed;
  return cache_insert(key, std::move(r));
}

Route Platform::compute_bfs_route(NodeIdx src, NodeIdx dst) const {
  if (src == dst) return Route{};
  std::vector<int> via_edge(nodes_.size(), -1);
  std::vector<NodeIdx> parent(nodes_.size(), -1);
  std::deque<NodeIdx> frontier{src};
  parent[static_cast<std::size_t>(src)] = src;
  while (!frontier.empty()) {
    const NodeIdx n = frontier.front();
    frontier.pop_front();
    if (n == dst) break;
    for (int e : adjacency_[static_cast<std::size_t>(n)]) {
      const Edge& edge = edges_[static_cast<std::size_t>(e)];
      const NodeIdx next = edge.a == n ? edge.b : edge.a;
      if (parent[static_cast<std::size_t>(next)] != -1) continue;
      parent[static_cast<std::size_t>(next)] = n;
      via_edge[static_cast<std::size_t>(next)] = e;
      frontier.push_back(next);
    }
  }
  if (parent[static_cast<std::size_t>(dst)] == -1)
    throw std::runtime_error("Platform::route: no path from " +
                             nodes_[static_cast<std::size_t>(src)].name + " to " +
                             nodes_[static_cast<std::size_t>(dst)].name);
  Route r;
  for (NodeIdx n = dst; n != src; n = parent[static_cast<std::size_t>(n)]) {
    const Edge& edge = edges_[static_cast<std::size_t>(via_edge[static_cast<std::size_t>(n)])];
    // The hop is traversed *into* n: direction 0 when moving a->b.
    const int dir = edge.b == n ? 0 : 1;
    r.hops.push_back(Hop{edge.link, dir});
    r.latency += links_[static_cast<std::size_t>(edge.link)].latency;
  }
  std::reverse(r.hops.begin(), r.hops.end());
  return r;
}

std::vector<Platform::ExplicitRoute> Platform::explicit_route_list() const {
  std::vector<ExplicitRoute> out;
  out.reserve(explicit_routes_.size());
  for (const auto& [key, route] : explicit_routes_)
    out.push_back(ExplicitRoute{static_cast<NodeIdx>(key >> 32),
                                static_cast<NodeIdx>(key & 0xffffffffu), &route});
  std::sort(out.begin(), out.end(), [](const ExplicitRoute& a, const ExplicitRoute& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  return out;
}

std::optional<NodeIdx> Platform::find_by_name(const std::string& name) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (nodes_[i].name == name) return static_cast<NodeIdx>(i);
  return std::nullopt;
}

std::optional<NodeIdx> Platform::find_by_ip(Ipv4 ip) const {
  for (NodeIdx h : hosts_)
    if (nodes_[static_cast<std::size_t>(h)].ip == ip) return h;
  return std::nullopt;
}

}  // namespace pdc::net
