// Simulated-time tracing: a per-run recorder of span/instant/counter events
// emitted as Chrome trace-event JSON (chrome://tracing, Perfetto).
// Timestamps are simulated seconds (rendered in microseconds, the trace
// format's unit); phases (reference / predicted) map to processes, actors /
// trackers / links / ranks map to named tracks (threads) within them.
//
// Zero-overhead-when-off is the contract that lets the hooks live inside
// the event kernel and FlowNet: every call site guards on obs::trace(),
// a thread_local pointer that is null unless the *current run on this
// thread* installed a recorder (scenario::Runner does, when the `trace`
// knob / PDC_TRACE_DIR / --trace-dir asks for one). Campaign workers each
// install their own recorder, so parallel runs trace independently and
// -j never changes what any single run records.
//
// The recorder is single-threaded by construction (one run = one thread)
// and deterministic: event order follows simulation order, and the JSON
// renderer is byte-stable, so a traced run re-executed anywhere yields an
// identical file.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace pdc::obs {

class TraceRecorder;

namespace detail {
extern thread_local TraceRecorder* tls_recorder;
}

/// The calling thread's active recorder; null (the common case) when the
/// current run is untraced. One TLS load + branch is the entire off cost.
inline TraceRecorder* trace() { return detail::tls_recorder; }

/// RAII installation of a recorder as the thread's active one.
class TraceScope {
 public:
  explicit TraceScope(TraceRecorder* r) : prev_(detail::tls_recorder) {
    detail::tls_recorder = r;
  }
  ~TraceScope() { detail::tls_recorder = prev_; }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceRecorder* prev_;
};

using TrackId = std::uint32_t;

/// One event argument: numeric by default, a string when `str` is set.
struct TraceArg {
  const char* key;
  double num = 0;
  const char* str = nullptr;

  TraceArg(const char* k, double v) : key(k), num(v) {}
  TraceArg(const char* k, int v) : key(k), num(v) {}
  TraceArg(const char* k, std::int64_t v) : key(k), num(static_cast<double>(v)) {}
  TraceArg(const char* k, std::uint64_t v) : key(k), num(static_cast<double>(v)) {}
  TraceArg(const char* k, const char* s) : key(k), str(s) {}
};

class TraceRecorder {
 public:
  TraceRecorder() = default;

  /// Starts a new phase (Chrome process); subsequent tracks belong to it.
  void begin_phase(std::string_view name);

  /// Interns a track (Chrome thread) by name within the current phase.
  TrackId track(std::string_view name);

  // Synchronous nested spans: every begin on a track must be closed by an
  // end at ts >= the begin (the validity test enforces it).
  void span_begin(TrackId t, std::string_view name, double ts,
                  std::initializer_list<TraceArg> args = {});
  void span_end(TrackId t, double ts);

  // Async spans for overlapping lifecycles (flows, reserve handshakes):
  // matched by (cat, id), free to interleave on one track.
  void async_begin(TrackId t, std::string_view cat, std::string_view name,
                   std::uint64_t id, double ts,
                   std::initializer_list<TraceArg> args = {});
  void async_end(TrackId t, std::string_view cat, std::string_view name,
                 std::uint64_t id, double ts);

  void instant(TrackId t, std::string_view name, double ts,
               std::initializer_list<TraceArg> args = {});

  /// Counter sample (rendered as a Chrome "C" event; one series per arg).
  void counter(TrackId t, std::string_view name, double ts,
               std::initializer_list<TraceArg> args);

  std::size_t event_count() const { return events_.size(); }

  /// The complete {"traceEvents": [...]} document.
  std::string to_json() const;

  /// Writes to_json() to `path`; throws std::runtime_error on I/O failure.
  void write(const std::string& path) const;

 private:
  struct Event {
    char ph;            // B E b e i C
    std::uint32_t track;
    std::uint32_t name;  // string index
    std::uint32_t cat;   // string index; kNone for sync events
    double ts;
    std::uint64_t id;    // async correlation id
    std::uint32_t args;  // args_ index + 1; 0 = none
  };
  struct Track {
    std::uint32_t pid;
    std::uint32_t tid;
    std::uint32_t name;
  };
  static constexpr std::uint32_t kNone = 0xffffffffu;

  std::uint32_t intern(std::string_view s);
  std::uint32_t render_args(std::initializer_list<TraceArg> args);
  void push(char ph, TrackId t, std::uint32_t name, std::uint32_t cat, double ts,
            std::uint64_t id, std::uint32_t args);

  std::vector<std::string> strings_;
  std::unordered_map<std::string, std::uint32_t> string_ids_;
  std::vector<std::string> phases_;        // index = pid
  std::vector<Track> tracks_;              // index = TrackId
  std::unordered_map<std::string, TrackId> track_ids_;  // of the current phase
  std::uint32_t next_tid_ = 0;             // within the current phase
  std::vector<std::string> args_;          // pre-rendered {"k":v,...} objects
  std::vector<Event> events_;
};

}  // namespace pdc::obs
