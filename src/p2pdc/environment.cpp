#include "p2pdc/environment.hpp"

#include <algorithm>
#include <cassert>

#include "obs/trace.hpp"
#include "support/log.hpp"

namespace pdc::p2pdc {

namespace {
// Internal tag space (user tags are >= 0).
constexpr int kTagGroupAssign = -10;
constexpr int kTagReverse = -11;
constexpr int kTagSubtask = -12;
constexpr int kTagResultUp = -13;
constexpr int kTagResultBundle = -14;
constexpr int kTagReduceUp = -20;
constexpr int kTagReduceMid = -21;
constexpr int kTagReduceMidDown = -22;
constexpr int kTagReduceDown = -23;

/// Packs one group's per-rank result vectors (dense, position k = rank
/// base_rank + k) as [rank, count, values...]* for the coordinator ->
/// submitter bundles. Ascending-rank wire order, like the map it replaced.
std::vector<double> pack_results(int base_rank,
                                 const std::vector<std::vector<double>>& results) {
  std::vector<double> out;
  for (std::size_t k = 0; k < results.size(); ++k) {
    out.push_back(static_cast<double>(base_rank + static_cast<int>(k)));
    out.push_back(static_cast<double>(results[k].size()));
    out.insert(out.end(), results[k].begin(), results[k].end());
  }
  return out;
}

void unpack_results(const std::vector<double>& packed,
                    std::vector<std::vector<double>>& into) {
  std::size_t i = 0;
  while (i + 1 < packed.size()) {
    const auto rank = static_cast<std::size_t>(packed[i]);
    const auto count = static_cast<std::size_t>(packed[i + 1]);
    i += 2;
    std::vector<double> values(packed.begin() + static_cast<std::ptrdiff_t>(i),
                               packed.begin() + static_cast<std::ptrdiff_t>(i + count));
    if (rank < into.size()) into[rank] = std::move(values);
    i += count;
  }
}
}  // namespace

/// Shared state of one running computation.
struct Computation {
  Computation(Environment& environment, TaskSpec task_spec, NodeIdx submitter_host,
              std::vector<alloc::Group> peer_groups, std::uint64_t ticket_id)
      : env(&environment),
        spec(std::move(task_spec)),
        submitter(submitter_host),
        ticket(ticket_id),
        groups(std::move(peer_groups)),
        subtask_latch(environment.engine(), 0),
        done_latch(environment.engine(), 0),
        halt(environment.engine()) {
    for (std::size_t g = 0; g < groups.size(); ++g) {
      for (std::size_t m = 0; m < groups[g].members.size(); ++m) {
        if (m == groups[g].coordinator)
          coord_rank.push_back(static_cast<int>(ranks.size()));
        ranks.push_back(groups[g].members[m]);
        group_of.push_back(static_cast<int>(g));
      }
    }
    // coord_rank was appended in group order: index g holds group g's rank.
    results.resize(ranks.size());
    rank_result_values.resize(ranks.size());
  }

  NodeIdx host_of(int rank) const { return ranks[static_cast<std::size_t>(rank)].node; }
  int nprocs() const { return static_cast<int>(ranks.size()); }

  p2psap::Channel& data_channel(int a_rank, int b_rank) {
    return env->fabric().channel(host_of(a_rank), host_of(b_rank), spec.scheme);
  }
  /// Control traffic (allocation, reductions, results) always uses the
  /// reliable synchronous profile, whatever the computation scheme: P2PSAP
  /// adapts per channel purpose.
  p2psap::Channel& ctrl_channel(NodeIdx a, NodeIdx b) {
    return env->fabric().channel(a, b, p2psap::Scheme::Synchronous);
  }

  /// Scopes a tag to this computation. Channels (and their mailboxes) are
  /// cached per host pair, so after a churn abort the parked receivers of a
  /// failed attempt still listen on the same channels as the re-allocated
  /// attempt that follows; ticket-scoped tags keep the attempts' message
  /// streams fully disjoint. The 2^12 span bounds every user (>= 0) and
  /// internal (> -4096) tag — enforced here, since a tag outside it would
  /// alias into another ticket's scope. (Tickets wrap at 1024; two attempts
  /// 1024 submissions apart on one deployment share a scope, far beyond the
  /// churn retry budget.)
  int scoped(int tag) const {
    assert(tag < (1 << 12) && tag > -(1 << 12) && "tag outside the scoped span");
    const int off = static_cast<int>(ticket % 1024) * (1 << 12);
    return tag >= 0 ? tag + off : tag - off;
  }

  /// Fail-stop abort (a rank's host crashed): submit() resumes with the
  /// failure, surviving ranks park forever at their next communication or
  /// compute call instead of burning simulated bandwidth.
  void fail(std::string why) {
    if (failed || finished) return;
    failed = true;
    failure_reason = std::move(why);
    done_latch.force_open();
  }

  bool involves(NodeIdx host) const {
    if (host == submitter) return true;
    for (const auto& r : ranks)
      if (r.node == host) return true;
    return false;
  }

  sim::Task<double> allreduce_max(int rank, double value);
  sim::Task<void> broadcast_value(int from_rank, int tag, double value, bool to_coordinators);

  Environment* env;
  TaskSpec spec;
  NodeIdx submitter;
  std::uint64_t ticket;
  bool failed = false;
  bool finished = false;
  std::string failure_reason;
  std::vector<alloc::Group> groups;
  std::vector<overlay::PeerRef> ranks;
  std::vector<int> group_of;
  std::vector<int> coord_rank;
  sim::Latch subtask_latch;
  sim::Latch done_latch;
  sim::Gate halt;  // never opened: parking spot for ranks of an aborted attempt
  Time t_allocated = 0;
  /// Both indexed by rank and sized nprocs at construction: the completion
  /// path touches every rank, so dense vectors beat rank-keyed node maps.
  std::vector<std::vector<double>> results;             // gathered at submitter
  std::vector<std::vector<double>> rank_result_values;  // set by PeerContext
};

// --- PeerContext --------------------------------------------------------------

int PeerContext::nprocs() const { return comp_->nprocs(); }
NodeIdx PeerContext::host() const { return comp_->host_of(rank_); }
double PeerContext::host_speed_hz() const {
  return comp_->env->platform().node(host()).speed_hz;
}
Time PeerContext::now() const { return comp_->env->engine().now(); }

// Every PeerContext operation is a cancellation point: once the computation
// failed (a rank's host crashed), the calling rank parks on the never-opened
// halt gate instead of proceeding, so an aborted attempt stops spending
// simulated time and bandwidth at its next step. Messages already restored
// into flight drain normally (deterministically) before the park.

sim::Task<void> PeerContext::send(int to_rank, int tag, double bytes,
                                  std::shared_ptr<const std::vector<double>> values) {
  assert(tag >= 0 && "user tags must be non-negative");
  if (comp_->failed) co_await comp_->halt.wait();
  co_await comp_->data_channel(rank_, to_rank)
      .send(comp_->host_of(rank_), comp_->scoped(tag), bytes, std::move(values));
}

sim::Task<p2psap::Message> PeerContext::recv(int from_rank, int tag) {
  if (comp_->failed) co_await comp_->halt.wait();
  auto m = co_await comp_->data_channel(from_rank, rank_)
               .recv(comp_->host_of(rank_), comp_->scoped(tag));
  co_return m;
}

sim::Task<std::optional<p2psap::Message>> PeerContext::recv_for(int from_rank, int tag,
                                                                Time timeout) {
  if (comp_->failed) co_await comp_->halt.wait();
  auto m = co_await comp_->data_channel(from_rank, rank_)
               .recv_for(comp_->host_of(rank_), comp_->scoped(tag), timeout);
  co_return m;
}

std::optional<p2psap::Message> PeerContext::try_recv(int from_rank, int tag) {
  if (comp_->failed) return std::nullopt;  // non-suspending: cannot park
  return comp_->data_channel(from_rank, rank_)
      .try_recv(comp_->host_of(rank_), comp_->scoped(tag));
}

sim::Task<void> PeerContext::compute(Time dt) {
  if (comp_->failed) co_await comp_->halt.wait();
  co_await comp_->env->engine().sleep(dt);
}

sim::Task<double> PeerContext::allreduce_max(double value) {
  if (comp_->failed) co_await comp_->halt.wait();
  double r = co_await comp_->allreduce_max(rank_, value);
  co_return r;
}

void PeerContext::set_result(std::vector<double> values) {
  comp_->rank_result_values[static_cast<std::size_t>(rank_)] = std::move(values);
}

// --- hierarchical reduction ----------------------------------------------------

sim::Task<void> Computation::broadcast_value(int from_rank, int tag, double value,
                                             bool to_coordinators) {
  const NodeIdx my_host = host_of(from_rank);
  std::vector<NodeIdx> targets;
  if (to_coordinators) {
    for (std::size_t og = 0; og < groups.size(); ++og) {
      const int other = coord_rank[og];
      if (other != from_rank) targets.push_back(host_of(other));
    }
  } else {
    const auto& group = groups[static_cast<std::size_t>(group_of[static_cast<std::size_t>(from_rank)])];
    for (std::size_t m = 0; m < group.members.size(); ++m)
      if (m != group.coordinator) targets.push_back(group.members[m].node);
  }
  if (targets.empty()) co_return;
  auto latch = std::make_shared<sim::Latch>(env->engine(), static_cast<int>(targets.size()));
  for (const NodeIdx to : targets) {
    env->engine().spawn([](Computation& c, NodeIdx from, NodeIdx dest, int t, double v,
                           std::shared_ptr<sim::Latch> l) -> sim::Process {
      co_await c.ctrl_channel(from, dest)
          .send(from, c.scoped(t), 16, std::make_shared<std::vector<double>>(1, v));
      l->count_down();
    }(*this, my_host, to, tag, value, latch));
  }
  co_await latch->wait();
}

sim::Task<double> Computation::allreduce_max(int rank, double value) {
  const int g = group_of[static_cast<std::size_t>(rank)];
  const int my_coord = coord_rank[static_cast<std::size_t>(g)];
  const int root = coord_rank[0];
  const NodeIdx my_host = host_of(rank);
  const double kReduceBytes = 16;

  if (rank != my_coord) {
    // Leaf: send to the group coordinator, wait for the broadcast.
    auto& ch = ctrl_channel(my_host, host_of(my_coord));
    co_await ch.send(my_host, scoped(kTagReduceUp), kReduceBytes,
                     std::make_shared<std::vector<double>>(1, value));
    const auto m = co_await ch.recv(my_host, scoped(kTagReduceDown));
    co_return (*m.values)[0];
  }

  // Coordinator: gather the group.
  double acc = value;
  const auto& group = groups[static_cast<std::size_t>(g)];
  for (std::size_t m = 0; m < group.members.size(); ++m) {
    if (m == group.coordinator) continue;
    const NodeIdx member = group.members[m].node;
    const auto msg =
        co_await ctrl_channel(my_host, member).recv(my_host, scoped(kTagReduceUp));
    acc = std::max(acc, (*msg.values)[0]);
  }
  double global = acc;
  if (rank != root) {
    // Second level: coordinators reduce at the root coordinator.
    auto& ch = ctrl_channel(my_host, host_of(root));
    co_await ch.send(my_host, scoped(kTagReduceMid), kReduceBytes,
                     std::make_shared<std::vector<double>>(1, acc));
    const auto m = co_await ch.recv(my_host, scoped(kTagReduceMidDown));
    global = (*m.values)[0];
  } else {
    for (std::size_t og = 0; og < groups.size(); ++og) {
      const int other = coord_rank[og];
      if (other == root) continue;
      const auto msg = co_await ctrl_channel(my_host, host_of(other))
                           .recv(my_host, scoped(kTagReduceMid));
      global = std::max(global, (*msg.values)[0]);
    }
    co_await broadcast_value(rank, kTagReduceMidDown, global, /*to_coordinators=*/true);
  }
  // Broadcast down to the group members (parallel writes: a real transport
  // pipelines these instead of waiting for each ack in turn).
  co_await broadcast_value(rank, kTagReduceDown, global, /*to_coordinators=*/false);
  co_return global;
}

overlay::PeerResources worker_resources(const net::Platform& platform, NodeIdx host) {
  const double hz = platform.node(host).speed_hz;
  return overlay::PeerResources{hz > 0 ? hz : 3e9, 2e9, 80e9};
}

// --- Environment ----------------------------------------------------------------

Environment::Environment(sim::Engine& engine, const net::Platform& platform,
                         overlay::OverlayConfig config)
    : engine_(&engine),
      platform_(&platform),
      flownet_(engine, platform),
      fabric_(engine, flownet_, platform),
      overlay_(engine, platform, flownet_, config) {}

sim::Process Environment::rank_body(std::shared_ptr<Computation> comp, int rank,
                                    PeerMain main) {
  const NodeIdx my_host = comp->host_of(rank);
  const bool flat = comp->spec.allocation == AllocationMode::Flat;
  const int g = comp->group_of[static_cast<std::size_t>(rank)];
  const NodeIdx feeder = flat ? comp->submitter
                              : comp->host_of(comp->coord_rank[static_cast<std::size_t>(g)]);
  auto& feed_ch = comp->ctrl_channel(feeder, my_host);
  (void)co_await feed_ch.recv(my_host, comp->scoped(kTagSubtask));
  comp->subtask_latch.count_down();
  if (comp->subtask_latch.open() && comp->t_allocated == 0)
    comp->t_allocated = engine_->now();

  PeerContext ctx{*comp, rank};
  co_await main(ctx);
  if (comp->failed) co_await comp->halt.wait();  // aborted: no result to ship

  // Ship the result up: to the coordinator (hierarchical) or straight to
  // the submitter (flat baseline).
  auto values = std::make_shared<std::vector<double>>(
      comp->rank_result_values[static_cast<std::size_t>(rank)]);
  co_await feed_ch.send(my_host, comp->scoped(kTagResultUp), comp->spec.result_bytes,
                        std::move(values));
}

sim::Process Environment::coordinator_body(std::shared_ptr<Computation> comp, int group) {
  const auto& g = comp->groups[static_cast<std::size_t>(group)];
  const NodeIdx me = g.coordinator_ref().node;
  auto& sub_ch = comp->ctrl_channel(comp->submitter, me);
  const double per_ref = 16;

  // 1. Group assignment from the submitter (peers list of the group).
  (void)co_await sub_ch.recv(me, comp->scoped(kTagGroupAssign));

  // 2. Connect to every member: the "reverse" message (paper §III-C),
  //    sent in parallel.
  {
    auto latch = std::make_shared<sim::Latch>(*engine_, static_cast<int>(g.members.size()));
    for (const auto& member : g.members) {
      engine_->spawn([](Computation& c, NodeIdx from, NodeIdx to,
                        std::shared_ptr<sim::Latch> l) -> sim::Process {
        co_await c.ctrl_channel(from, to).send(from, c.scoped(kTagReverse), 64);
        l->count_down();
      }(*comp, me, member.node, latch));
    }
    co_await latch->wait();
  }

  // 3. Subtask bundle from the submitter, then parallel forwarding.
  (void)co_await sub_ch.recv(me, comp->scoped(kTagSubtask));
  {
    auto latch = std::make_shared<sim::Latch>(*engine_, static_cast<int>(g.members.size()));
    for (const auto& member : g.members) {
      engine_->spawn([](Computation& c, NodeIdx from, NodeIdx to,
                        std::shared_ptr<sim::Latch> l) -> sim::Process {
        co_await c.ctrl_channel(from, to).send(from, c.scoped(kTagSubtask),
                                               c.spec.subtask_bytes);
        l->count_down();
      }(*comp, me, member.node, latch));
    }
    co_await latch->wait();
  }

  // 4. Gather member results, bundle, ship to the submitter.
  std::vector<std::vector<double>> group_results(g.members.size());
  int base_rank = 0;
  for (int og = 0; og < group; ++og)
    base_rank += static_cast<int>(comp->groups[static_cast<std::size_t>(og)].members.size());
  for (std::size_t m = 0; m < g.members.size(); ++m) {
    const NodeIdx member = g.members[m].node;
    const auto msg =
        co_await comp->ctrl_channel(me, member).recv(me, comp->scoped(kTagResultUp));
    // Identify the sender's group position (= rank - base_rank).
    std::size_t pos = 0;
    for (std::size_t k = 0; k < g.members.size(); ++k)
      if (g.members[k].node == msg.src_host) pos = k;
    group_results[pos] = msg.values ? *msg.values : std::vector<double>{};
  }
  const auto packed =
      std::make_shared<std::vector<double>>(pack_results(base_rank, group_results));
  co_await sub_ch.send(me, comp->scoped(kTagResultBundle),
                       comp->spec.result_bytes * static_cast<double>(g.members.size()) +
                           per_ref * static_cast<double>(g.members.size()),
                       packed);
}

sim::Task<ComputationResult> Environment::submit(NodeIdx submitter_host, TaskSpec spec,
                                                 PeerMain main) {
  ComputationResult res;
  res.t_submit = engine_->now();
  overlay::PeerActor* sub = overlay_.peer_at(submitter_host);
  if (sub == nullptr) {
    res.failure = "submitter host does not run a peer actor";
    co_return res;
  }

  // 1. Peers collection (paper §III-B).
  const std::uint64_t ticket = next_ticket_++;
  auto peers = co_await sub->collect_peers(spec.peers_needed, spec.requirements, ticket);
  res.t_collected = engine_->now();
  res.peers = static_cast<int>(peers.size());
  if (static_cast<int>(peers.size()) < spec.peers_needed) {
    for (const auto& p : peers)
      overlay_.send_ctrl(submitter_host, p.node, overlay::ReleaseReq{submitter_host});
    res.failure = "not enough peers: wanted " + std::to_string(spec.peers_needed) +
                  ", reserved " + std::to_string(peers.size());
    if (obs::TraceRecorder* tr = obs::trace(); tr != nullptr)
      tr->instant(tr->track("p2psap"), "abort", engine_->now(),
                  {{"phase", "collection"}, {"reserved", res.peers}});
    co_return res;
  }

  // 2. Proximity grouping with coordinators (paper §III-C).
  auto comp = std::make_shared<Computation>(*this, spec, submitter_host,
                                            alloc::form_groups(peers, spec.cmax), ticket);
  res.groups = static_cast<int>(comp->groups.size());
  comp->subtask_latch.reset(comp->nprocs());
  const bool flat = spec.allocation == AllocationMode::Flat;
  comp->done_latch.reset(flat ? comp->nprocs() : static_cast<int>(comp->groups.size()));

  // Visible to crash_host from here on; prune entries of finished runs.
  std::erase_if(active_, [](const std::weak_ptr<Computation>& w) { return w.expired(); });
  active_.push_back(comp);
  // A reserved peer may have crashed between its ReserveAck and now (the
  // collection RPCs above suspend): fail before allocating onto a dead host.
  // peer_alive covers both actor-backed and passive workers.
  for (const auto& p : comp->ranks) {
    if (!overlay_.peer_alive(p.node))
      comp->fail("peer on host " + platform_->node(p.node).name + " crashed before allocation");
  }

  // 3. Spawn compute ranks (they wait for their subtask first). An already-
  // failed computation spawns nothing: submit returns the failure right away.
  for (int r = 0; r < comp->nprocs() && !comp->failed; ++r)
    engine_->spawn(rank_body(comp, r, main), spec.name + "/rank" + std::to_string(r));

  if (comp->failed) {
  } else if (!flat) {
    // Coordinator protocol per group + submitter-side distribution.
    for (int g = 0; g < static_cast<int>(comp->groups.size()); ++g)
      engine_->spawn(coordinator_body(comp, g), spec.name + "/coord" + std::to_string(g));
    for (int g = 0; g < static_cast<int>(comp->groups.size()); ++g) {
      engine_->spawn([](Environment& env, std::shared_ptr<Computation> c,
                        int group) -> sim::Process {
        const auto& grp = c->groups[static_cast<std::size_t>(group)];
        const NodeIdx coord = grp.coordinator_ref().node;
        auto& ch = c->ctrl_channel(c->submitter, coord);
        const double assign_bytes = 64 + 16.0 * static_cast<double>(grp.members.size());
        co_await ch.send(c->submitter, c->scoped(kTagGroupAssign), assign_bytes);
        co_await ch.send(c->submitter, c->scoped(kTagSubtask),
                         c->spec.subtask_bytes * static_cast<double>(grp.members.size()));
        // Await this group's result bundle.
        const auto msg = co_await ch.recv(c->submitter, c->scoped(kTagResultBundle));
        if (msg.values) unpack_results(*msg.values, c->results);
        c->done_latch.count_down();
        (void)env;
      }(*this, comp, g));
    }
  } else {
    // Flat baseline: the submitter connects to each peer *in succession*
    // (awaiting every transfer) and gathers all results itself.
    engine_->spawn([](std::shared_ptr<Computation> c) -> sim::Process {
      for (int r = 0; r < c->nprocs(); ++r) {
        auto& ch = c->ctrl_channel(c->submitter, c->host_of(r));
        co_await ch.send(c->submitter, c->scoped(kTagReverse), 64);
        co_await ch.send(c->submitter, c->scoped(kTagSubtask), c->spec.subtask_bytes);
      }
    }(comp));
    for (int r = 0; r < comp->nprocs(); ++r) {
      engine_->spawn([](std::shared_ptr<Computation> c, int rank) -> sim::Process {
        auto& ch = c->ctrl_channel(c->submitter, c->host_of(rank));
        const auto msg = co_await ch.recv(c->submitter, c->scoped(kTagResultUp));
        if (msg.values) c->results[static_cast<std::size_t>(rank)] = *msg.values;
        c->done_latch.count_down();
      }(comp, r));
    }
  }

  // 4. Wait for completion (or a churn abort), then free the peers.
  co_await comp->done_latch.wait();
  comp->finished = true;
  if (comp->failed) {
    // Release the surviving reserved peers so a re-submission can collect
    // them again; messages to crashed hosts are dropped by the overlay.
    for (const auto& p : comp->ranks) {
      if (overlay_.peer_alive(p.node))
        overlay_.send_ctrl(submitter_host, p.node, overlay::ReleaseReq{submitter_host});
    }
    res.failure = comp->failure_reason;
    if (obs::TraceRecorder* tr = obs::trace(); tr != nullptr)
      tr->instant(tr->track("p2psap"), "abort", engine_->now(),
                  {{"phase", "computation"}, {"reason", comp->failure_reason.c_str()}});
    co_return res;
  }
  res.t_allocated = comp->t_allocated;
  res.t_finished = engine_->now();
  res.results = std::move(comp->results);
  res.ok = true;
  // Retroactive P2PSAP phase spans: the boundary timestamps were recorded as
  // the protocol ran; emitting them here keeps the hot path untouched.
  if (obs::TraceRecorder* tr = obs::trace(); tr != nullptr) {
    const obs::TrackId t = tr->track("p2psap");
    tr->span_begin(t, "collection", res.t_submit, {{"peers", res.peers}});
    tr->span_end(t, res.t_collected);
    tr->span_begin(t, "allocation", res.t_collected, {{"groups", res.groups}});
    tr->span_end(t, res.t_allocated);
    tr->span_begin(t, "computation", res.t_allocated, {{"ranks", comp->nprocs()}});
    tr->span_end(t, res.t_finished);
  }
  for (const auto& p : comp->ranks)
    overlay_.send_ctrl(submitter_host, p.node, overlay::ReleaseReq{submitter_host});
  co_return res;
}

void Environment::crash_host(NodeIdx host) {
  if (overlay::PeerActor* p = overlay_.peer_at(host)) {
    p->crash();
  } else if (overlay::TrackerActor* t = overlay_.tracker_at(host)) {
    t->crash();
  } else if (overlay_.server() != nullptr && overlay_.server_host() == host) {
    overlay_.server()->crash();
  } else if (overlay_.is_passive_peer(host)) {
    overlay_.crash_passive_peer(host);
  }
  for (const auto& weak : active_) {
    const auto comp = weak.lock();
    if (!comp || comp->finished || comp->failed) continue;
    if (comp->involves(host))
      comp->fail("peer on host " + platform_->node(host).name + " crashed mid-computation");
  }
}

ComputationResult Environment::run_computation(NodeIdx submitter_host, TaskSpec spec,
                                               PeerMain main, Time warmup, Time time_cap) {
  engine_->run_until(engine_->now() + warmup);
  auto out = std::make_shared<ComputationResult>();
  auto done = std::make_shared<bool>(false);
  engine_->spawn([](Environment& env, NodeIdx sub, TaskSpec sp, PeerMain m,
                    std::shared_ptr<ComputationResult> o,
                    std::shared_ptr<bool> flag) -> sim::Process {
    *o = co_await env.submit(sub, std::move(sp), std::move(m));
    *flag = true;
  }(*this, submitter_host, std::move(spec), std::move(main), out, done));
  const Time deadline = engine_->now() + time_cap;
  while (!*done && engine_->now() < deadline && !engine_->queue_empty())
    engine_->run_until(engine_->now() + 5.0);
  if (!*done) {
    out->ok = false;
    out->failure = "computation did not finish within the time cap";
  }
  return *out;
}

}  // namespace pdc::p2pdc
