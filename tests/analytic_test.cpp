// Differential tests for the analytic planner (ROADMAP item 3): the
// no-replay critical-path plan must track the discrete-event trace replay
// the way the incremental FlowNet is tested against Mode::Reference — same
// inputs, independent implementations, bounded disagreement.
#include "dperf/analytic.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dperf/summary.hpp"
#include "scenario/runner.hpp"
#include "support/json.hpp"

namespace pdc::scenario {
namespace {

RunSpec smoke_run(int peers) {
  RunSpec run;
  run.peers = peers;
  run.grid_n = 66;
  run.iters = 24;
  run.rcheck = 4;
  run.bench_n = 34;
  run.bench_iters = 6;
  run.bench_rcheck = 3;
  return run;
}

RunRecord both_analytic(PlatformSpec platform, ir::OptLevel level,
                        const char* name) {
  ScenarioSpec spec;
  spec.name = name;
  spec.platform = std::move(platform);
  spec.run = smoke_run(4);
  spec.run.level = level;
  spec.run.mode = Mode::BothAnalytic;
  return Runner{spec}.run();
}

// The ISSUE gate: analytic solve time within 10% relative error of replay on
// the three paper platforms (fig. 9/10/11 scenarios at smoke sizing).
TEST(Analytic, TracksReplayOnGrid5000) {
  const RunRecord rec = both_analytic(PlatformSpec::grid5000(), ir::OptLevel::O3,
                                      "analytic-grid5000");
  ASSERT_TRUE(rec.predicted.has_value());
  ASSERT_TRUE(rec.analytic.has_value());
  ASSERT_TRUE(rec.analytic_error.has_value());
  EXPECT_LT(*rec.analytic_error, 0.10)
      << "predicted " << rec.predicted->solve_seconds << " vs analytic "
      << rec.analytic->solve_seconds;
}

TEST(Analytic, TracksReplayOnLan) {
  const RunRecord rec =
      both_analytic(PlatformSpec::lan(), ir::OptLevel::O0, "analytic-lan");
  ASSERT_TRUE(rec.analytic_error.has_value());
  EXPECT_LT(*rec.analytic_error, 0.10)
      << "predicted " << rec.predicted->solve_seconds << " vs analytic "
      << rec.analytic->solve_seconds;
}

TEST(Analytic, TracksReplayOnXdsl) {
  const RunRecord rec =
      both_analytic(PlatformSpec::xdsl(), ir::OptLevel::O0, "analytic-xdsl");
  ASSERT_TRUE(rec.analytic_error.has_value());
  EXPECT_LT(*rec.analytic_error, 0.10)
      << "predicted " << rec.predicted->solve_seconds << " vs analytic "
      << rec.analytic->solve_seconds;
}

// Every protocol variant must plan without deadlocking and stay within the
// bound: the async scheme exercises the latest-value receive model, flat
// allocation the sequential submitter fan-out.
TEST(Analytic, TracksReplayAsyncScheme) {
  ScenarioSpec spec;
  spec.name = "analytic-async";
  spec.platform = PlatformSpec::lan();
  spec.run = smoke_run(4);
  spec.run.scheme = p2psap::Scheme::Asynchronous;
  spec.run.mode = Mode::BothAnalytic;
  const RunRecord rec = Runner{spec}.run();
  ASSERT_TRUE(rec.analytic_error.has_value());
  EXPECT_LT(*rec.analytic_error, 0.10);
}

TEST(Analytic, TracksReplayFlatAllocation) {
  ScenarioSpec spec;
  spec.name = "analytic-flat";
  spec.platform = PlatformSpec::lan();
  spec.run = smoke_run(4);
  spec.run.allocation = p2pdc::AllocationMode::Flat;
  spec.run.mode = Mode::BothAnalytic;
  const RunRecord rec = Runner{spec}.run();
  ASSERT_TRUE(rec.analytic_error.has_value());
  EXPECT_LT(*rec.analytic_error, 0.10);
}

// Mode::Analytic alone runs no replay at all: the record has an analytic
// phase, no predicted/reference phases, and no error metric.
TEST(Analytic, AnalyticOnlyModeSkipsReplay) {
  ScenarioSpec spec;
  spec.name = "analytic-only";
  spec.platform = PlatformSpec::grid5000();
  spec.run = smoke_run(4);
  spec.run.mode = Mode::Analytic;
  const RunRecord rec = Runner{spec}.run();
  EXPECT_FALSE(rec.reference.has_value());
  EXPECT_FALSE(rec.predicted.has_value());
  ASSERT_TRUE(rec.analytic.has_value());
  EXPECT_FALSE(rec.analytic_error.has_value());
  EXPECT_GT(rec.analytic->solve_seconds, 0);
  EXPECT_GT(rec.analytic->total_seconds, rec.analytic->solve_seconds);
  // Planner milestones read through the usual ComputationResult accessors.
  EXPECT_GT(rec.analytic->computation.collection_time(), 0);
  EXPECT_GT(rec.analytic->computation.allocation_time(), 0);
}

TEST(Analytic, RecordJsonRoundTrips) {
  const RunRecord rec = both_analytic(PlatformSpec::grid5000(), ir::OptLevel::O3,
                                      "analytic-json");
  const JsonValue doc = parse_json(rec.to_json());
  EXPECT_EQ(doc.at("run").at("mode").as_string(), "both-analytic");
  ASSERT_TRUE(doc.has("analytic"));
  EXPECT_NEAR(doc.at("analytic").at("solve_seconds").as_double(),
              rec.analytic->solve_seconds, 1e-12);
  EXPECT_NEAR(doc.at("analytic_error").as_double(), *rec.analytic_error, 1e-12);
  EXPECT_FALSE(doc.has("reference"));
}

// Specs that do not use the new modes must render byte-identically to what
// they rendered before the enum grew: canonical text is the campaign resume
// key and the serve memo key, so any drift would orphan existing records.
TEST(Analytic, PreAnalyticSpecRenderUnchanged) {
  ScenarioSpec spec;
  spec.name = "stability";
  spec.platform = PlatformSpec::lan();
  spec.run = smoke_run(4);
  spec.run.mode = Mode::Both;
  const std::string text = render_scenario(spec);
  EXPECT_NE(text.find("mode both\n"), std::string::npos);
  EXPECT_EQ(text.find("analytic"), std::string::npos);
  // Round-trip through the parser preserves the mode.
  const ScenarioSpec back = parse_scenario(text, RunSpec{});
  EXPECT_EQ(back.run.mode, Mode::Both);
  EXPECT_EQ(render_scenario(back), text);
}

TEST(Analytic, NewModesParseAndRender) {
  for (const Mode m : {Mode::Analytic, Mode::BothAnalytic}) {
    ScenarioSpec spec;
    spec.name = "modes";
    spec.platform = PlatformSpec::lan();
    spec.run.mode = m;
    const std::string text = render_scenario(spec);
    const ScenarioSpec back = parse_scenario(text, RunSpec{});
    EXPECT_EQ(back.run.mode, m) << mode_name(m);
  }
}

// plan_on fails soft (ok = false, message) instead of throwing.
TEST(Analytic, PlannerFailsSoftOnMismatchedSummaries) {
  auto d = deploy(PlatformSpec::lan(), smoke_run(4));
  dperf::Trace a;
  a.rank = 0;
  a.nprocs = 2;
  a.events.push_back({dperf::TraceEvent::Kind::Allreduce});
  dperf::Trace b = a;
  b.rank = 1;
  b.events.clear();  // rank 1 never reaches the collective
  const std::vector<dperf::TraceSummary> summaries = {dperf::summarize_trace(a),
                                                      dperf::summarize_trace(b)};
  p2pdc::TaskSpec spec;
  spec.peers_needed = 2;
  const dperf::AnalyticReport rep =
      dperf::plan_on(*d->env, d->submitter, spec, summaries, d->workers);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.failure.find("collective"), std::string::npos) << rep.failure;
}

TEST(Analytic, PlannerFailsSoftOnTooFewWorkers) {
  auto d = deploy(PlatformSpec::lan(), smoke_run(2));
  std::vector<dperf::TraceSummary> summaries(4);
  for (int r = 0; r < 4; ++r) {
    summaries[static_cast<std::size_t>(r)].rank = r;
    summaries[static_cast<std::size_t>(r)].nprocs = 4;
  }
  p2pdc::TaskSpec spec;
  spec.peers_needed = 4;
  const dperf::AnalyticReport rep =
      dperf::plan_on(*d->env, d->submitter, spec, summaries, d->workers);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.failure.find("peers"), std::string::npos) << rep.failure;
}

// The summary layer on its own: RLE compression of extrapolated traces and
// the aggregate counters.
TEST(TraceSummary, CompressesRepeatedIterations) {
  dperf::Trace t;
  t.rank = 0;
  t.nprocs = 2;
  t.host_hz = 2e9;
  using K = dperf::TraceEvent::Kind;
  t.events.push_back({K::Compute, 500});
  for (int i = 0; i < 10; ++i) {
    dperf::TraceEvent mark{K::IterMark};
    mark.iter_id = i;
    t.events.push_back(mark);
    dperf::TraceEvent send{K::Send};
    send.peer = 1;
    send.bytes = 64;
    send.tag = 7;
    t.events.push_back(send);
    t.events.push_back({K::Compute, 1000});
  }
  const dperf::TraceSummary s = dperf::summarize_trace(t);
  EXPECT_EQ(s.iterations, 10u);
  ASSERT_EQ(s.blocks.size(), 1u);  // identical bodies collapse to one block
  EXPECT_EQ(s.blocks[0].repeats, 10u);
  EXPECT_EQ(s.pre.size(), 1u);
  EXPECT_EQ(s.op_count(), 1u + 10u * 2u);
  EXPECT_EQ(s.total_compute_ns, 500u + 10u * 1000u);
  EXPECT_EQ(s.span_ns, 1000u);
  ASSERT_EQ(s.send_to.size(), 2u);
  EXPECT_DOUBLE_EQ(s.send_to[1].bytes, 640.0);
  EXPECT_EQ(s.send_to[1].count, 10u);
}

TEST(TraceSummary, MarkerFreeTraceIsPreOnly) {
  dperf::Trace t;
  t.events.push_back({dperf::TraceEvent::Kind::Compute, 42});
  const dperf::TraceSummary s = dperf::summarize_trace(t);
  EXPECT_EQ(s.iterations, 0u);
  EXPECT_TRUE(s.blocks.empty());
  EXPECT_EQ(s.pre.size(), 1u);
  EXPECT_EQ(s.op_count(), 1u);
}

}  // namespace
}  // namespace pdc::scenario
