#include "support/log.hpp"

#include <cstdio>

namespace pdc {
namespace {
// Warnings (e.g. starved flows) surface by default; Info/Debug stay opt-in
// so tests and benches remain quiet.
LogLevel g_level = LogLevel::Warn;
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log_line(LogLevel level, const std::string& msg) {
  if (level > g_level) return;
  const char* tag = level == LogLevel::Error  ? "ERROR"
                    : level == LogLevel::Warn ? "WARN"
                    : level == LogLevel::Info ? "INFO"
                                              : "DEBUG";
  std::fprintf(stderr, "[%s] %s\n", tag, msg.c_str());
}

}  // namespace pdc
