#include "ir/ir.hpp"

#include <sstream>

namespace pdc::ir {

const char* op_name(Op op) {
  switch (op) {
    case Op::ConstI: return "consti";
    case Op::ConstF: return "constf";
    case Op::Mov: return "mov";
    case Op::AddI: return "addi";
    case Op::SubI: return "subi";
    case Op::MulI: return "muli";
    case Op::DivI: return "divi";
    case Op::ModI: return "modi";
    case Op::NegI: return "negi";
    case Op::AddF: return "addf";
    case Op::SubF: return "subf";
    case Op::MulF: return "mulf";
    case Op::DivF: return "divf";
    case Op::NegF: return "negf";
    case Op::LtI: return "lti";
    case Op::LeI: return "lei";
    case Op::GtI: return "gti";
    case Op::GeI: return "gei";
    case Op::EqI: return "eqi";
    case Op::NeI: return "nei";
    case Op::LtF: return "ltf";
    case Op::LeF: return "lef";
    case Op::GtF: return "gtf";
    case Op::GeF: return "gef";
    case Op::EqF: return "eqf";
    case Op::NeF: return "nef";
    case Op::NotI: return "noti";
    case Op::BoolI: return "booli";
    case Op::I2F: return "i2f";
    case Op::LoadVar: return "loadvar";
    case Op::StoreVar: return "storevar";
    case Op::AllocArr: return "allocarr";
    case Op::LoadIdx: return "loadidx";
    case Op::StoreIdx: return "storeidx";
    case Op::ArrLen: return "arrlen";
    case Op::Jump: return "jump";
    case Op::CJump: return "cjump";
    case Op::Ret: return "ret";
    case Op::Call: return "call";
    case Op::BlockBegin: return "blockbegin";
    case Op::BlockEnd: return "blockend";
    case Op::IterMark: return "itermark";
  }
  return "?";
}

bool is_terminator(Op op) { return op == Op::Jump || op == Op::CJump || op == Op::Ret; }

bool is_pure(Op op) {
  switch (op) {
    case Op::ConstI:
    case Op::ConstF:
    case Op::Mov:
    case Op::AddI:
    case Op::SubI:
    case Op::MulI:
    case Op::NegI:
    case Op::AddF:
    case Op::SubF:
    case Op::MulF:
    case Op::DivF:
    case Op::NegF:
    case Op::LtI:
    case Op::LeI:
    case Op::GtI:
    case Op::GeI:
    case Op::EqI:
    case Op::NeI:
    case Op::LtF:
    case Op::LeF:
    case Op::GtF:
    case Op::GeF:
    case Op::EqF:
    case Op::NeF:
    case Op::NotI:
    case Op::BoolI:
    case Op::I2F:
    case Op::ArrLen:
      return true;
    // DivI/ModI can trap on zero: not freely removable/hoistable.
    default:
      return false;
  }
}

std::vector<int> IrFunction::successors(int b) const {
  const Instr& t = blocks[static_cast<std::size_t>(b)].terminator();
  switch (t.op) {
    case Op::Jump: return {t.t1};
    case Op::CJump: return {t.t1, t.t2};
    default: return {};
  }
}

std::size_t IrFunction::instr_count() const {
  std::size_t n = 0;
  for (const BasicBlock& b : blocks) n += b.instrs.size();
  return n;
}

std::string IrFunction::to_string() const {
  std::ostringstream out;
  out << "func " << name << " (params=" << num_params << ", regs=" << num_regs << ")\n";
  for (const BasicBlock& b : blocks) {
    out << " b" << b.id << ":\n";
    for (const Instr& in : b.instrs) {
      out << "   " << op_name(in.op);
      if (in.dst >= 0) out << " r" << in.dst;
      if (in.a >= 0) out << ", r" << in.a;
      if (in.b >= 0) out << ", r" << in.b;
      if (in.op == Op::ConstI) out << " #" << in.imm_i;
      if (in.op == Op::ConstF) out << " #" << in.imm_f;
      if (in.slot >= 0) out << " @" << in.slot;
      if (!in.sym.empty()) out << " '" << in.sym << "'";
      if (in.op == Op::Jump) out << " -> b" << in.t1;
      if (in.op == Op::CJump) out << " ? b" << in.t1 << " : b" << in.t2;
      out << "\n";
    }
  }
  return out.str();
}

IrFunction* IrProgram::find(const std::string& name) {
  for (auto& f : functions)
    if (f.name == name) return &f;
  return nullptr;
}

const IrFunction* IrProgram::find(const std::string& name) const {
  for (const auto& f : functions)
    if (f.name == name) return &f;
  return nullptr;
}

std::string IrProgram::to_string() const {
  std::string out;
  for (const auto& f : functions) out += f.to_string() + "\n";
  return out;
}

std::size_t IrProgram::instr_count() const {
  std::size_t n = 0;
  for (const auto& f : functions) n += f.instr_count();
  return n;
}

}  // namespace pdc::ir
