// Tests for the hybrid topology manager: tracker line maintenance, joins,
// crash repair (paper Figs. 2-4), peer zone membership and failure handling.
#include "overlay/overlay.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "net/builders.hpp"
#include "support/rng.hpp"

namespace pdc::overlay {
namespace {

struct Fixture {
  explicit Fixture(int hosts, OverlayConfig cfg = {})
      : plat(net::build_star([&] {
          auto s = net::bordeplage_cluster_spec(hosts);
          return s;
        }())),
        flownet(eng, plat),
        overlay(eng, plat, flownet, cfg) {}

  sim::Engine eng;
  net::Platform plat;
  net::FlowNet flownet;
  Overlay overlay;
};

/// Sorted-by-IP list of alive trackers.
std::vector<TrackerActor*> alive_trackers(Overlay& o) {
  std::vector<TrackerActor*> out;
  for (TrackerActor* t : o.trackers())
    if (t->alive()) out.push_back(t);
  std::sort(out.begin(), out.end(),
            [](const TrackerActor* a, const TrackerActor* b) { return a->ip() < b->ip(); });
  return out;
}

/// The line invariant: consecutive alive trackers are mutual direct
/// neighbours (each keeps a connection to the closest tracker on each side).
void expect_line_invariant(Overlay& o) {
  auto ts = alive_trackers(o);
  for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
    auto right = ts[i]->right_neighbor();
    auto left = ts[i + 1]->left_neighbor();
    ASSERT_TRUE(right.has_value()) << "tracker " << i << " lost its right neighbour";
    ASSERT_TRUE(left.has_value()) << "tracker " << i + 1 << " lost its left neighbour";
    EXPECT_EQ(right->node, ts[i + 1]->host()) << "line broken after tracker " << i;
    EXPECT_EQ(left->node, ts[i]->host()) << "line broken before tracker " << i + 1;
  }
}

TEST(Topology, BootstrapCoreTrackersFormLine) {
  Fixture f{8};
  f.overlay.create_server(f.plat.host(0));
  for (int i = 1; i <= 5; ++i) f.overlay.create_tracker(f.plat.host(i), /*core=*/true);
  f.overlay.finish_bootstrap();
  f.eng.run_until(5.0);
  expect_line_invariant(f.overlay);
  EXPECT_EQ(f.overlay.server()->known_trackers().size(), 5u);
  for (TrackerActor* t : f.overlay.trackers()) EXPECT_TRUE(t->joined());
}

TEST(Topology, NeighborSetsAreBalancedHalves) {
  OverlayConfig cfg;
  cfg.neighbor_set_size = 4;
  Fixture f{12, cfg};
  f.overlay.create_server(f.plat.host(0));
  for (int i = 1; i <= 9; ++i) f.overlay.create_tracker(f.plat.host(i), true);
  f.overlay.finish_bootstrap();
  f.eng.run_until(2.0);
  // A middle tracker keeps at most |N|/2 lower and |N|/2 higher trackers,
  // and they are the *closest* ones.
  auto ts = alive_trackers(f.overlay);
  TrackerActor* mid = ts[4];
  int below = 0, above = 0;
  for (const TrackerRef& n : mid->neighbor_set()) (n.ip < mid->ip() ? below : above)++;
  EXPECT_LE(below, 2);
  EXPECT_LE(above, 2);
  EXPECT_EQ(mid->neighbor_set().size(), 4u);
  EXPECT_EQ(mid->left_neighbor()->node, ts[3]->host());
  EXPECT_EQ(mid->right_neighbor()->node, ts[5]->host());
}

TEST(Topology, VolunteerTrackerJoinsAtCorrectLinePosition) {
  // Paper Fig. 3: a new tracker T8 joins and is inserted between its
  // IP-order neighbours; nearby trackers adjust their sets.
  Fixture f{12};
  f.overlay.create_server(f.plat.host(0));
  // Cores on hosts 1,3,5,7,9 (leaving IP gaps).
  for (int i = 1; i <= 9; i += 2) f.overlay.create_tracker(f.plat.host(i), true);
  f.overlay.finish_bootstrap();
  f.eng.run_until(2.0);
  // Volunteer on host 6 joins through the protocol.
  TrackerActor& t8 = f.overlay.create_tracker(f.plat.host(6), /*core=*/false);
  f.eng.run_until(10.0);
  EXPECT_TRUE(t8.joined());
  expect_line_invariant(f.overlay);
  // Its direct neighbours are the IP-adjacent cores on hosts 5 and 7.
  ASSERT_TRUE(t8.left_neighbor().has_value());
  ASSERT_TRUE(t8.right_neighbor().has_value());
  EXPECT_EQ(t8.left_neighbor()->node, f.plat.host(5));
  EXPECT_EQ(t8.right_neighbor()->node, f.plat.host(7));
  // And the server learned about it.
  const auto& reg = f.overlay.server()->known_trackers();
  EXPECT_TRUE(std::any_of(reg.begin(), reg.end(),
                          [&](const TrackerRef& t) { return t.node == t8.host(); }));
}

TEST(Topology, TrackerCrashIsRepairedByDirectNeighbors) {
  // Paper Fig. 4: T4 crashes; T3 and T5 detect it, rebuild the line and
  // inform their sides plus the server.
  Fixture f{10};
  f.overlay.create_server(f.plat.host(0));
  for (int i = 1; i <= 5; ++i) f.overlay.create_tracker(f.plat.host(i), true);
  f.overlay.finish_bootstrap();
  f.eng.run_until(3.0);
  TrackerActor* victim = f.overlay.tracker_at(f.plat.host(3));
  ASSERT_NE(victim, nullptr);
  victim->crash();
  f.eng.run_until(30.0);  // > fail_timeout + heartbeat rounds
  expect_line_invariant(f.overlay);
  // Nobody keeps the dead tracker in their neighbour set.
  for (TrackerActor* t : alive_trackers(f.overlay))
    for (const TrackerRef& n : t->neighbor_set()) EXPECT_NE(n.node, victim->host());
  // Server registry updated.
  for (const TrackerRef& t : f.overlay.server()->known_trackers())
    EXPECT_NE(t.node, victim->host());
}

TEST(Topology, PeerJoinsZoneOfClosestTracker) {
  Fixture f{16};
  f.overlay.create_server(f.plat.host(0));
  for (int i : {2, 8, 14}) f.overlay.create_tracker(f.plat.host(i), true);
  f.overlay.finish_bootstrap();
  PeerActor& peer = f.overlay.create_peer(f.plat.host(9), PeerResources{3e9, 2e9, 80e9});
  f.eng.run_until(10.0);
  ASSERT_TRUE(peer.joined());
  // Expected: the tracker whose IP is closest by the prefix metric.
  const Ipv4 peer_ip = f.plat.node(f.plat.host(9)).ip;
  NodeIdx expected = -1;
  Ipv4 best;
  for (int i : {2, 8, 14}) {
    const Ipv4 tip = f.plat.node(f.plat.host(i)).ip;
    if (expected < 0 || closer_to(peer_ip, tip, best)) {
      expected = f.plat.host(i);
      best = tip;
    }
  }
  EXPECT_EQ(peer.tracker().node, expected);
  TrackerActor* t = f.overlay.tracker_at(expected);
  EXPECT_TRUE(t->zone().count(peer.host()));
  // The peer published its resources.
  EXPECT_DOUBLE_EQ(t->zone().at(peer.host()).peer.res.cpu_hz, 3e9);
}

TEST(Topology, PeerStateUpdatesKeepZoneEntryFresh) {
  Fixture f{8};
  f.overlay.create_server(f.plat.host(0));
  f.overlay.create_tracker(f.plat.host(1), true);
  f.overlay.finish_bootstrap();
  PeerActor& peer = f.overlay.create_peer(f.plat.host(4), PeerResources{2e9, 1e9, 10e9});
  f.eng.run_until(60.0);
  ASSERT_TRUE(peer.joined());
  TrackerActor* t = f.overlay.tracker_at(f.plat.host(1));
  ASSERT_TRUE(t->zone().count(peer.host()));
  // Fresh: last update within one update period + slack.
  EXPECT_GT(t->zone().at(peer.host()).last_update, 60.0 - 2 * f.overlay.config().update_period - 1.0);
}

TEST(Topology, CrashedPeerExpiresFromZoneAfterTimeoutT) {
  Fixture f{8};
  f.overlay.create_server(f.plat.host(0));
  f.overlay.create_tracker(f.plat.host(1), true);
  f.overlay.finish_bootstrap();
  PeerActor& peer = f.overlay.create_peer(f.plat.host(4), PeerResources{2e9, 1e9, 10e9});
  f.eng.run_until(10.0);
  TrackerActor* t = f.overlay.tracker_at(f.plat.host(1));
  ASSERT_TRUE(t->zone().count(peer.host()));
  peer.crash();
  f.eng.run_until(30.0);  // > T
  EXPECT_FALSE(t->zone().count(peer.host()));
}

TEST(Topology, PeersRejoinNeighborZoneWhenTrackerDies) {
  Fixture f{12};
  f.overlay.create_server(f.plat.host(0));
  f.overlay.create_tracker(f.plat.host(2), true);
  f.overlay.create_tracker(f.plat.host(8), true);
  f.overlay.finish_bootstrap();
  PeerActor& peer = f.overlay.create_peer(f.plat.host(3), PeerResources{2e9, 1e9, 10e9});
  f.eng.run_until(10.0);
  ASSERT_EQ(peer.tracker().node, f.plat.host(2));
  f.overlay.tracker_at(f.plat.host(2))->crash();
  f.eng.run_until(60.0);
  // Paper §III-A.7: no answer after time T -> the peer joins a neighbour
  // zone through its local tracker list.
  EXPECT_EQ(peer.tracker().node, f.plat.host(8));
  EXPECT_GE(peer.rejoin_count(), 1);
  EXPECT_TRUE(f.overlay.tracker_at(f.plat.host(8))->zone().count(peer.host()));
}

TEST(Topology, SystemSurvivesServerCrash) {
  // Paper §III-A.7: "when the server disconnects, the system continues
  // working ... new peers can join through their tracker list".
  Fixture f{12};
  ServerActor& server = f.overlay.create_server(f.plat.host(0));
  for (int i : {2, 6}) f.overlay.create_tracker(f.plat.host(i), true);
  f.overlay.finish_bootstrap();
  f.eng.run_until(5.0);
  server.crash();
  PeerActor& peer = f.overlay.create_peer(f.plat.host(7), PeerResources{1e9, 1e9, 1e9});
  f.eng.run_until(30.0);
  EXPECT_TRUE(peer.joined());
  expect_line_invariant(f.overlay);
}

TEST(Topology, ZoneStatisticsReachServer) {
  Fixture f{8};
  f.overlay.create_server(f.plat.host(0));
  f.overlay.create_tracker(f.plat.host(1), true);
  f.overlay.finish_bootstrap();
  f.overlay.create_peer(f.plat.host(3), PeerResources{3e9, 1e9, 1e9});
  f.overlay.create_peer(f.plat.host(4), PeerResources{2e9, 1e9, 1e9});
  f.eng.run_until(25.0);  // > stats_period
  const auto& stats = f.overlay.server()->zone_stats();
  ASSERT_TRUE(stats.count(f.plat.host(1)));
  EXPECT_EQ(stats.at(f.plat.host(1)).peers, 2);
  EXPECT_DOUBLE_EQ(stats.at(f.plat.host(1)).donated_cpu_hz, 5e9);
}

// Property test: the line survives random volunteer joins and crashes.
TEST(Topology, LineInvariantHoldsUnderChurn) {
  Rng rng{2024};
  for (int round = 0; round < 3; ++round) {
    Fixture f{24};
    f.overlay.create_server(f.plat.host(0));
    for (int i = 1; i <= 21; i += 4) f.overlay.create_tracker(f.plat.host(i), true);
    f.overlay.finish_bootstrap();
    f.eng.run_until(2.0);
    // Volunteers join at random times.
    std::vector<int> volunteers{3, 7, 11, 15, 19};
    rng.shuffle(volunteers);
    Time t = 2.0;
    for (int v : volunteers) {
      t += rng.uniform(0.5, 2.0);
      const Time when = t;
      f.eng.schedule_at(when, [&f, v] { f.overlay.create_tracker(f.plat.host(v), false); });
    }
    f.eng.run_until(t + 15.0);
    expect_line_invariant(f.overlay);
    // Crash two random non-adjacent trackers.
    auto ts = alive_trackers(f.overlay);
    const auto i1 = static_cast<std::size_t>(rng.uniform_int(1, static_cast<int>(ts.size()) - 2));
    ts[i1]->crash();
    ts[(i1 + 3) % ts.size()]->crash();
    f.eng.run_until(t + 60.0);
    expect_line_invariant(f.overlay);
  }
}

}  // namespace
}  // namespace pdc::overlay
