// Shared experiment harness for reproducing the paper's evaluation (§IV).
//
// Stage-1: reference execution of the obstacle problem on the Bordeplage
// cluster model, 2..32 peers, optimization levels {0,1,2,3,s} (Fig. 9), and
// dPerf prediction on the identical platform (Fig. 10).
// Stage-2: the same traces replayed on the Daisy-xDSL (Stage-2A) and LAN
// (Stage-2B) platforms (Fig. 11), from which the equivalent-computing-power
// table (Table I) is derived.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dperf/dperf.hpp"
#include "ir/pipeline.hpp"
#include "net/builders.hpp"
#include "obstacle/distributed.hpp"
#include "p2pdc/environment.hpp"

namespace pdc::experiments {

/// Problem sizing calibrated so the simulated times land in the paper's
/// ranges (O0 on 2 peers ~= 42 s at 3 GHz with the measured ~84 ns/point
/// block cost). PDC_QUICK=1 in the environment shrinks everything for smoke
/// runs.
struct PaperSetup {
  int grid_n = 1538;   // 1536x1536 interior
  int iters = 428;     // fixed iteration budget (also the trace target)
  int rcheck = 4;      // residual reduction period == scale-up chunk
  int bench_n = 66;    // block-benchmark instance
  int bench_iters = 9;
  int bench_rcheck = 3;
  double omega = 0.9;

  obstacle::ObstacleProblem problem() const;
  obstacle::ObstacleProblem bench_problem() const;

  /// Reads PDC_QUICK from the environment.
  static PaperSetup from_env();
};

enum class Topology { Grid5000, Lan, Xdsl };
const char* topology_name(Topology t);

/// A deployed simulation: engine + platform + booted P2PDC overlay.
struct Deployment {
  sim::Engine engine;
  net::Platform platform;
  std::unique_ptr<p2pdc::Environment> env;
  net::NodeIdx submitter = -1;
  std::vector<net::NodeIdx> workers;

  Deployment() = default;
  Deployment(const Deployment&) = delete;
};

/// Builds the platform for `topo`, boots server + tracker(s) + submitter +
/// `workers` worker peers (for Xdsl, workers are spread across the 1024
/// xDSL nodes of the Daisy topology, seed-deterministic).
std::unique_ptr<Deployment> deploy(Topology topo, int workers);

/// dPerf block-benchmark cost profile for a level (memoized per process).
const obstacle::CostProfile& cost_profile(ir::OptLevel level, const PaperSetup& setup);

/// Runs the reference execution (Phantom values: full event schedule, no
/// numerics) and returns the solve span in seconds.
double reference_seconds(Topology topo, int peers, ir::OptLevel level,
                         const PaperSetup& setup);

/// Generates per-rank dPerf traces (sampled + scaled up) for a peer count.
std::vector<dperf::Trace> traces_for(int peers, ir::OptLevel level, const PaperSetup& setup);

/// Replays traces on a topology; returns the predicted solve seconds.
double predicted_seconds(Topology topo, int peers, ir::OptLevel level,
                         const PaperSetup& setup, std::vector<dperf::Trace> traces);

/// The peer counts of the paper: 2^n for n in 1..5.
const std::vector<int>& paper_peer_counts();

}  // namespace pdc::experiments
