#include "support/table.hpp"

#include <algorithm>
#include <cstdio>

namespace pdc {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    out += "| ";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      out += cell;
      out.append(width[c] - cell.size(), ' ');
      out += c + 1 < headers_.size() ? " | " : " |";
    }
    out += '\n';
  };

  std::string out;
  emit_row(headers_, out);
  out += "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out.append(width[c] + 2, '-');
    out += '|';
  }
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

}  // namespace pdc
