#include "support/log.hpp"

#include <cstdio>

namespace pdc {
namespace {
LogLevel g_level = LogLevel::Error;
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log_line(LogLevel level, const std::string& msg) {
  if (level > g_level) return;
  const char* tag = level == LogLevel::Error ? "ERROR" : level == LogLevel::Info ? "INFO" : "DEBUG";
  std::fprintf(stderr, "[%s] %s\n", tag, msg.c_str());
}

}  // namespace pdc
