// Semantic analysis: name resolution, type checking and annotation.
//
// Rules:
//  * variables must be declared before use; shadowing in nested blocks is
//    allowed; redeclaration in the same scope is an error;
//  * int->double promotes implicitly in arithmetic, assignment to double,
//    call arguments and return values; double->int never converts implicitly;
//  * conditions and logical operands are int; comparisons yield int;
//  * % is int-only; array indices are int; arrays cannot be assigned whole;
//  * calls must match a builtin or program function signature (arrays pass
//    by reference and must match element type exactly).
//
// check() annotates Expr::type in place and returns normally, or throws
// CompileError on the first violation.
#pragma once

#include "minic/ast.hpp"

namespace pdc::minic {

void check(Program& program);

}  // namespace pdc::minic
