#include "experiments/harness.hpp"

#include "support/env.hpp"

namespace pdc::experiments {

obstacle::ObstacleProblem PaperSetup::problem() const {
  obstacle::ObstacleProblem p;
  p.n = grid_n;
  p.omega = omega;
  return p;
}

obstacle::ObstacleProblem PaperSetup::bench_problem() const {
  obstacle::ObstacleProblem p;
  p.n = bench_n;
  p.omega = omega;
  return p;
}

scenario::RunSpec PaperSetup::run_spec(int peers, ir::OptLevel level) const {
  scenario::RunSpec run;
  run.peers = peers;
  run.level = level;
  run.grid_n = grid_n;
  run.iters = iters;
  run.rcheck = rcheck;
  run.bench_n = bench_n;
  run.bench_iters = bench_iters;
  run.bench_rcheck = bench_rcheck;
  run.omega = omega;
  return run;
}

PaperSetup PaperSetup::from_env() {
  PaperSetup s;
  if (env_flag("PDC_QUICK")) {
    s.grid_n = 258;
    s.iters = 100;
  }
  return s;
}

const char* topology_name(Topology t) {
  switch (t) {
    case Topology::Grid5000: return "Grid5000";
    case Topology::Lan: return "LAN";
    case Topology::Xdsl: return "xDSL";
  }
  return "?";
}

scenario::PlatformSpec topology_platform(Topology t) {
  switch (t) {
    case Topology::Grid5000: return scenario::PlatformSpec::grid5000();
    case Topology::Lan: return scenario::PlatformSpec::lan();
    case Topology::Xdsl: return scenario::PlatformSpec::xdsl();
  }
  return scenario::PlatformSpec::grid5000();
}

const std::vector<int>& paper_peer_counts() {
  static const std::vector<int> kCounts{2, 4, 8, 16, 32};
  return kCounts;
}

std::unique_ptr<Deployment> deploy(Topology topo, int workers) {
  scenario::RunSpec run;
  run.peers = workers;
  return scenario::deploy(topology_platform(topo), run);
}

const obstacle::CostProfile& cost_profile(ir::OptLevel level, const PaperSetup& setup) {
  return scenario::cost_profile(level, setup.run_spec(/*peers=*/2, level));
}

double reference_seconds(Topology topo, int peers, ir::OptLevel level,
                         const PaperSetup& setup) {
  scenario::ScenarioSpec spec{topology_name(topo), topology_platform(topo),
                              setup.run_spec(peers, level)};
  return scenario::Runner{std::move(spec)}.run_reference().solve_seconds;
}

std::vector<dperf::Trace> traces_for(int peers, ir::OptLevel level, const PaperSetup& setup) {
  scenario::ScenarioSpec spec{"traces", scenario::PlatformSpec::grid5000(),
                              setup.run_spec(peers, level)};
  return scenario::Runner{std::move(spec)}.traces();
}

double predicted_seconds(Topology topo, int peers, ir::OptLevel level,
                         const PaperSetup& setup, std::vector<dperf::Trace> traces) {
  scenario::ScenarioSpec spec{topology_name(topo), topology_platform(topo),
                              setup.run_spec(peers, level)};
  return scenario::Runner{std::move(spec)}.run_predicted(std::move(traces)).solve_seconds;
}

}  // namespace pdc::experiments
