#include "support/ipv4.hpp"

#include <bit>
#include <cstdlib>

namespace pdc {

std::optional<Ipv4> Ipv4::parse(const std::string& text) {
  std::uint32_t bits = 0;
  int octets = 0;
  std::size_t i = 0;
  while (i < text.size()) {
    if (octets == 4) return std::nullopt;
    if (!std::isdigit(static_cast<unsigned char>(text[i]))) return std::nullopt;
    std::uint32_t value = 0;
    std::size_t digits = 0;
    while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) {
      value = value * 10 + static_cast<std::uint32_t>(text[i] - '0');
      ++digits;
      ++i;
      if (digits > 3 || value > 255) return std::nullopt;
    }
    bits = (bits << 8) | value;
    ++octets;
    if (i < text.size()) {
      if (text[i] != '.') return std::nullopt;
      ++i;
      if (i == text.size()) return std::nullopt;  // trailing dot
    }
  }
  if (octets != 4) return std::nullopt;
  return Ipv4{bits};
}

std::string Ipv4::to_string() const {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    out += std::to_string((bits_ >> shift) & 0xFF);
    if (shift > 0) out += '.';
  }
  return out;
}

int common_prefix_len(Ipv4 a, Ipv4 b) {
  const std::uint32_t diff = a.bits() ^ b.bits();
  return diff == 0 ? 32 : std::countl_zero(diff);
}

bool closer_to(Ipv4 ref, Ipv4 x, Ipv4 y) {
  const int px = common_prefix_len(ref, x);
  const int py = common_prefix_len(ref, y);
  if (px != py) return px > py;
  const auto dist = [&](Ipv4 v) {
    return v.bits() > ref.bits() ? v.bits() - ref.bits() : ref.bits() - v.bits();
  };
  if (dist(x) != dist(y)) return dist(x) < dist(y);
  return x.bits() < y.bits();
}

}  // namespace pdc
