// Serving-layer observability: per-request counters, memo-cache state, the
// hot dPerf memo footprint, queue depth and latency percentiles — rendered
// as the JSON document the STATS endpoint returns, the Prometheus text
// exposition the METRICS endpoint returns, and the files the daemon writes
// on shutdown. Both renderings come from one obs::Registry publish path.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "obs/metrics.hpp"
#include "scenario/runner.hpp"
#include "serve/cache.hpp"

namespace pdc::serve {

/// A point-in-time snapshot of the server's counters.
struct ServeStats {
  std::uint64_t requests = 0;        // everything, including pings
  std::uint64_t scenario_requests = 0;
  std::uint64_t campaign_requests = 0;
  std::uint64_t spool_jobs = 0;      // files picked up from the spool
  std::uint64_t stats_requests = 0;
  std::uint64_t metrics_requests = 0;
  std::uint64_t pings = 0;
  std::uint64_t errors = 0;          // malformed requests + failed runs
  CacheStats cache;                  // the RunRecord memo cache
  scenario::MemoStats memos;         // hot dPerf cost-profile / trace memos
  int in_flight = 0;                 // requests being processed right now
  int queue_peak = 0;                // max in_flight observed
  double uptime_seconds = 0;
  /// Request latency (seconds), split by whether the answer came from the
  /// memo cache — the cold/warm split that makes the cache's value visible.
  obs::Histogram latency_hit;
  obs::Histogram latency_miss;

  std::string to_json() const;

  /// The same snapshot as Prometheus text exposition (pdc_ name prefix):
  /// counters as `_total` series, the latency split as cumulative-bucket
  /// histograms, cache / memo footprints as gauges.
  std::string to_prometheus() const;
};

/// Thread-safe accumulator behind ServeStats. Latencies go straight into
/// fixed-bucket histograms, so a long-lived daemon holds O(buckets) latency
/// state however much traffic it serves.
class StatsCollector {
 public:
  void count_request();
  void count_scenario();
  void count_campaign();
  void count_spool_job();
  void count_stats();
  void count_metrics();
  void count_ping();
  void count_error();

  /// Tracks in-flight depth; returns the new depth (for queue_peak).
  void enter_request();
  void leave_request();

  void record_latency(bool cache_hit, double seconds);

  /// Snapshot, merging in the cache's and the process memos' current state.
  ServeStats snapshot(const MemoCache& cache, double uptime_seconds) const;

 private:
  mutable std::mutex mutex_;
  ServeStats totals_;  // counters + latency histograms; cache/memos on snapshot
};

}  // namespace pdc::serve
