#include "scenario/runner.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "net/platfile.hpp"
#include "obstacle/minic_kernel.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"

namespace pdc::scenario {

namespace {

obstacle::ObstacleProblem problem_of(const RunSpec& run) {
  obstacle::ObstacleProblem p;
  p.n = run.grid_n;
  p.omega = run.omega;
  return p;
}

obstacle::ObstacleProblem bench_problem_of(const RunSpec& run) {
  obstacle::ObstacleProblem p;
  p.n = run.bench_n;
  p.omega = run.omega;
  return p;
}

obstacle::DistributedConfig config_of(const RunSpec& run) {
  obstacle::DistributedConfig cfg;
  cfg.problem = problem_of(run);
  cfg.iters = run.iters;
  cfg.rcheck = run.rcheck;
  cfg.mode = obstacle::ValueMode::Phantom;
  cfg.scheme = run.scheme;
  cfg.allocation = run.allocation;
  cfg.cmax = run.cmax;
  return cfg;
}

/// Worker CPU/memory/disk as published to the trackers: the host's modelled
/// frequency (falling back to the paper's 3 GHz Xeon) with the paper-era
/// memory/disk sizing.
overlay::PeerResources resources_for(const net::Platform& platform, net::NodeIdx host) {
  const double hz = platform.node(host).speed_hz;
  return overlay::PeerResources{hz > 0 ? hz : 3e9, 2e9, 80e9};
}

/// Daisy deployment (paper Stage-2A): server and one tracker per petal at
/// petal boundaries, submitter next to the server, workers spread across
/// the whole desktop grid, seed-deterministic.
void deploy_daisy(Deployment& d, const net::DaisySpec& spec, const RunSpec& run) {
  const int hosts = d.platform.host_count();
  d.env->boot_server(d.platform.host(0));
  const int per_petal = hosts / spec.central_routers;
  std::vector<int> used{0};
  for (int p = 0; p < spec.central_routers; ++p) {
    const int idx = p * per_petal + 1;
    d.env->boot_tracker(d.platform.host(idx), /*core=*/true);
    used.push_back(idx);
  }
  const int submitter_idx = 2;
  used.push_back(submitter_idx);
  d.submitter = d.platform.host(submitter_idx);
  d.env->boot_peer(d.submitter, resources_for(d.platform, d.submitter));
  const int stride = hosts / run.peers;
  int placed = 0;
  for (int k = 0; placed < run.peers && k < hosts; ++k) {
    int idx = (3 + k * stride) % hosts;
    while (std::find(used.begin(), used.end(), idx) != used.end()) idx = (idx + 1) % hosts;
    used.push_back(idx);
    const net::NodeIdx h = d.platform.host(idx);
    d.env->boot_peer(h, resources_for(d.platform, h));
    d.workers.push_back(h);
    ++placed;
  }
}

/// Federation deployment: administrator roles on the first three hosts
/// (site-major order), workers round-robined across sites so a multi-site
/// run actually crosses the WAN.
void deploy_federation(Deployment& d, const net::FederationSpec& spec, const RunSpec& run) {
  const int per_site = spec.hosts_per_cluster;
  if (d.platform.host_count() < run.peers + 3)
    throw std::runtime_error("federation platform has " +
                             std::to_string(d.platform.host_count()) + " hosts, run needs " +
                             std::to_string(run.peers + 3));
  d.env->boot_server(d.platform.host(0));
  d.env->boot_tracker(d.platform.host(1), /*core=*/true);
  d.submitter = d.platform.host(2);
  d.env->boot_peer(d.submitter, resources_for(d.platform, d.submitter));
  // Per-site cursors start past the three admin hosts, which occupy global
  // indices 0..2 and may spill across sites when sites are small.
  std::vector<int> cursor(static_cast<std::size_t>(spec.clusters), 0);
  for (int s = 0; s < spec.clusters; ++s)
    cursor[static_cast<std::size_t>(s)] = std::clamp(3 - s * per_site, 0, per_site);
  for (int placed = 0, site = 0; placed < run.peers;) {
    const auto s = static_cast<std::size_t>(site);
    if (cursor[s] < per_site) {
      const int idx = site * per_site + cursor[s]++;
      const net::NodeIdx h = d.platform.host(idx);
      d.env->boot_peer(h, resources_for(d.platform, h));
      d.workers.push_back(h);
      ++placed;
    } else if (std::all_of(cursor.begin(), cursor.end(),
                           [&](int c) { return c >= per_site; })) {
      throw std::runtime_error("federation platform too small for the run");
    }
    site = (site + 1) % spec.clusters;
  }
}

/// Default deployment: hosts in order — server, tracker, submitter, workers.
void deploy_sequential(Deployment& d, const RunSpec& run) {
  const int needed = run.peers + 3;
  if (d.platform.host_count() < needed)
    throw std::runtime_error("platform has " + std::to_string(d.platform.host_count()) +
                             " hosts, run needs " + std::to_string(needed));
  d.env->boot_server(d.platform.host(0));
  d.env->boot_tracker(d.platform.host(1), /*core=*/true);
  d.submitter = d.platform.host(2);
  d.env->boot_peer(d.submitter, resources_for(d.platform, d.submitter));
  for (int i = 3; i < needed; ++i) {
    const net::NodeIdx h = d.platform.host(i);
    d.env->boot_peer(h, resources_for(d.platform, h));
    d.workers.push_back(h);
  }
}

/// Federation sizing shared by build_platform and deploy: auto-size sites
/// so `peers` workers plus the three admin hosts fit.
net::FederationSpec sized_federation(const net::FederationSpec& spec, const RunSpec& run) {
  net::FederationSpec sized = spec;
  if (sized.hosts_per_cluster <= 0)
    sized.hosts_per_cluster = (run.peers + 3 + sized.clusters - 1) / sized.clusters;
  return sized;
}

void phase_json(JsonWriter& w, const PhaseRecord& ph, bool with_iterations) {
  w.begin_object();
  w.kv("solve_seconds", ph.solve_seconds);
  w.kv("total_seconds", ph.total_seconds);
  if (with_iterations) w.kv("iterations", ph.iterations);
  w.key("computation").begin_object();
  w.kv("peers", ph.computation.peers);
  w.kv("groups", ph.computation.groups);
  w.kv("collection_seconds", ph.computation.collection_time());
  w.kv("allocation_seconds", ph.computation.allocation_time());
  w.kv("total_seconds", ph.computation.total_time());
  w.end_object();
  w.key("flownet").begin_object();
  w.kv("flows_started", ph.net.flows_started);
  w.kv("flows_completed", ph.net.flows_completed);
  w.kv("bytes_completed", ph.net.bytes_completed);
  w.kv("reshares", ph.net.reshares);
  w.kv("reshares_partial", ph.net.reshares_partial);
  w.kv("flows_rescanned", ph.net.flows_rescanned);
  w.kv("flows_starved", ph.net.flows_starved);
  w.end_object();
  w.end_object();
}

}  // namespace

net::Platform build_platform(const PlatformSpec& spec, const RunSpec& run) {
  const int needed = run.peers + 3;
  if (const auto* s = std::get_if<net::StarSpec>(&spec.spec)) {
    net::StarSpec sized = *s;
    if (sized.hosts <= 0) sized.hosts = needed;
    return net::build_star(sized);
  }
  if (const auto* s = std::get_if<net::DaisySpec>(&spec.spec)) {
    Rng rng{run.seed};
    return net::build_daisy(*s, rng);
  }
  if (const auto* s = std::get_if<net::FederationSpec>(&spec.spec))
    return net::build_federation(sized_federation(*s, run));
  if (const auto* s = std::get_if<net::WanSpec>(&spec.spec)) {
    net::WanSpec sized = *s;
    if (sized.hosts <= 0) sized.hosts = needed;
    Rng rng{run.seed};
    return net::build_wan(sized, rng);
  }
  const auto& f = std::get<PlatformFileSpec>(spec.spec);
  std::string text = f.text;
  if (!f.path.empty()) {
    std::ifstream in(f.path);
    if (!in) throw std::runtime_error("cannot open platform file '" + f.path + "'");
    std::stringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }
  return net::parse_platform(text);
}

std::unique_ptr<Deployment> deploy(const PlatformSpec& spec, const RunSpec& run) {
  auto d = std::make_unique<Deployment>();
  d->platform = build_platform(spec, run);
  d->env = std::make_unique<p2pdc::Environment>(d->engine, d->platform);
  if (const auto* daisy = std::get_if<net::DaisySpec>(&spec.spec)) {
    deploy_daisy(*d, *daisy, run);
  } else if (const auto* fed = std::get_if<net::FederationSpec>(&spec.spec)) {
    deploy_federation(*d, sized_federation(*fed, run), run);
  } else {
    deploy_sequential(*d, run);
  }
  d->env->finish_bootstrap();
  return d;
}

const obstacle::CostProfile& cost_profile(ir::OptLevel level, const RunSpec& run) {
  // Process-wide memo shared by every concurrent campaign run; the mutex
  // covers lookup and derivation (map references stay valid across inserts,
  // so returning by reference is safe after unlocking). Derivation is
  // deterministic, so serializing first-touch cannot change any result;
  // campaign::Executor pre-warms the profiles its grid needs before fanning
  // out so workers only ever hit the cached path.
  static std::mutex mutex;
  static std::map<std::tuple<int, int, int, int>, obstacle::CostProfile> cache;
  const auto key =
      std::make_tuple(static_cast<int>(level), run.bench_n, run.bench_iters, run.bench_rcheck);
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache
             .emplace(key, obstacle::derive_cost_profile(level, bench_problem_of(run),
                                                         run.bench_iters, run.bench_rcheck))
             .first;
  }
  return it->second;
}

std::unique_ptr<Deployment> Runner::deploy() const {
  return scenario::deploy(spec_.platform, spec_.run);
}

std::vector<dperf::Trace> Runner::traces() const {
  // Traces depend only on these run fields — never on the platform — so a
  // campaign replaying one workload across a platform axis reuses one trace
  // set instead of re-running the dPerf pipeline per grid cell. Memoized
  // like cost_profile above: mutex-guarded, deterministic derivation;
  // campaign::Executor pre-warms the keys its grid needs (mirroring this
  // tuple) so pooled workers never serialize on a derivation.
  const RunSpec& run = spec_.run;
  static std::mutex mutex;
  static std::map<std::tuple<int, int, int, int, int, double>, std::vector<dperf::Trace>>
      cache;
  const auto key = std::make_tuple(static_cast<int>(run.level), run.rcheck, run.grid_n,
                                   run.iters, run.peers, run.omega);
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(key);
  if (it == cache.end()) {
    dperf::DperfOptions opt;
    opt.level = run.level;
    opt.chunk = run.rcheck;
    opt.sample_iters = 3 * run.rcheck;
    const dperf::Dperf pipeline{obstacle::minic_kernel_source(), opt};
    it = cache
             .emplace(key, pipeline.traces(obstacle::kernel_workload(problem_of(run),
                                                                     run.iters, run.rcheck),
                                           run.peers))
             .first;
  }
  return it->second;
}

PhaseRecord Runner::run_reference() const {
  auto d = deploy();
  obstacle::DistributedConfig cfg = config_of(spec_.run);
  cfg.cost = cost_profile(spec_.run.level, spec_.run);
  const obstacle::SolveReport rep =
      obstacle::run_distributed(*d->env, d->submitter, cfg, spec_.run.peers);
  if (!rep.ok)
    throw std::runtime_error("reference run failed (" + spec_.name + "): " + rep.failure);
  PhaseRecord ph;
  ph.solve_seconds = rep.solve_seconds;
  ph.total_seconds = rep.computation.total_time();
  ph.iterations = rep.iterations;
  ph.platform_hosts = d->platform.host_count();
  ph.computation = rep.computation;
  ph.net = d->env->flownet().stats();
  return ph;
}

PhaseRecord Runner::run_predicted(std::vector<dperf::Trace> traces) const {
  auto d = deploy();
  obstacle::DistributedConfig cfg = config_of(spec_.run);
  const dperf::Prediction pred =
      dperf::replay_on(*d->env, d->submitter,
                       obstacle::make_task_spec(cfg, spec_.run.peers), std::move(traces));
  if (!pred.computation.ok)
    throw std::runtime_error("prediction replay failed (" + spec_.name +
                             "): " + pred.computation.failure);
  PhaseRecord ph;
  ph.solve_seconds = pred.solve_seconds;
  ph.total_seconds = pred.total_seconds;
  ph.platform_hosts = d->platform.host_count();
  ph.computation = pred.computation;
  ph.net = d->env->flownet().stats();
  return ph;
}

RunRecord Runner::run() const {
  RunRecord rec;
  rec.spec = spec_;
  rec.platform_kind = spec_.platform.kind();
  rec.platform_label = spec_.platform.label;
  const Mode mode = spec_.run.mode;
  if (mode == Mode::Reference || mode == Mode::Both) rec.reference = run_reference();
  if (mode == Mode::Predict || mode == Mode::Both) rec.predicted = run_predicted(traces());
  rec.platform_hosts = rec.reference ? rec.reference->platform_hosts
                                     : rec.predicted->platform_hosts;
  if (rec.reference && rec.predicted && rec.reference->solve_seconds > 0)
    rec.prediction_error =
        std::abs(rec.predicted->solve_seconds - rec.reference->solve_seconds) /
        rec.reference->solve_seconds;
  return rec;
}

RunRecord Runner::try_run() const noexcept {
  try {
    return run();
  } catch (const std::exception& e) {
    RunRecord rec;
    rec.spec = spec_;
    rec.platform_kind = spec_.platform.kind();
    rec.platform_label = spec_.platform.label;
    rec.error = e.what();
    return rec;
  } catch (...) {
    RunRecord rec;
    rec.spec = spec_;
    rec.platform_kind = spec_.platform.kind();
    rec.platform_label = spec_.platform.label;
    rec.error = "unknown error";
    return rec;
  }
}

std::string RunRecord::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.kv("scenario", spec.name);
  // The complete canonical spec text: the record's identity. Campaign
  // resume compares it against the expected spec, so editing *any* base
  // parameter — including a variant's platform key=values or inline
  // platform text — invalidates old records. (Platform files are
  // identified by path; edits to the file's contents are not detected.)
  w.kv("spec", render_scenario(spec));
  w.key("platform").begin_object();
  w.kv("kind", platform_kind);
  w.kv("label", platform_label);
  w.kv("hosts", platform_hosts);
  w.end_object();
  w.key("run").begin_object();
  w.kv("peers", spec.run.peers);
  w.kv("opt", ir::opt_level_name(spec.run.level));
  w.kv("mode", mode_name(spec.run.mode));
  w.kv("alloc", spec.run.allocation == p2pdc::AllocationMode::Hierarchical ? "hierarchical"
                                                                           : "flat");
  w.kv("scheme", spec.run.scheme == p2psap::Scheme::Synchronous ? "sync" : "async");
  w.kv("seed", spec.run.seed);
  w.kv("grid", spec.run.grid_n);
  w.kv("iters", spec.run.iters);
  w.kv("rcheck", spec.run.rcheck);
  w.kv("bench_n", spec.run.bench_n);
  w.kv("bench_iters", spec.run.bench_iters);
  w.kv("bench_rcheck", spec.run.bench_rcheck);
  w.kv("omega", spec.run.omega);
  w.kv("cmax", spec.run.cmax);
  w.end_object();
  if (reference) {
    w.key("reference");
    phase_json(w, *reference, /*with_iterations=*/true);
  }
  if (predicted) {
    w.key("predicted");
    phase_json(w, *predicted, /*with_iterations=*/false);
  }
  if (prediction_error) w.kv("prediction_error", *prediction_error);
  if (!error.empty()) w.kv("error", error);
  w.end_object();
  return w.str() + "\n";
}

}  // namespace pdc::scenario
