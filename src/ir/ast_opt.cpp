#include "ir/ast_opt.hpp"

#include "minic/builtins.hpp"

namespace pdc::ir {

namespace {

using minic::BinOp;
using minic::Expr;
using minic::Program;
using minic::Stmt;
using minic::StmtPtr;

bool expr_calls_anything(const Expr& e) {
  if (e.kind == Expr::Kind::Call) {
    // Pure math builtins are fine inside unrolled bodies.
    auto b = minic::find_builtin(e.name);
    if (!b || b->is_comm || e.name.rfind("dperf_", 0) == 0 || e.name.rfind("p2p_", 0) == 0)
      return true;
  }
  for (const auto& k : e.kids)
    if (expr_calls_anything(*k)) return true;
  return false;
}

bool expr_mentions(const Expr& e, const std::string& name) {
  if ((e.kind == Expr::Kind::Var || e.kind == Expr::Kind::Index) && e.name == name)
    return true;
  for (const auto& k : e.kids)
    if (expr_mentions(*k, name)) return true;
  return false;
}

/// Checks that a statement subtree is safe to duplicate: straight-line
/// assignments/exprs over arrays and scalars, `if`s allowed, no loops, no
/// declarations (would redeclare), no returns, no impure calls, and no
/// assignment to the induction variable.
bool body_unrollable(const std::vector<StmtPtr>& body, const std::string& ivar) {
  for (const auto& sp : body) {
    const Stmt& s = *sp;
    switch (s.kind) {
      case Stmt::Kind::Assign:
        if (s.lvalue->kind == Expr::Kind::Var && s.lvalue->name == ivar) return false;
        if (expr_calls_anything(*s.value) || expr_calls_anything(*s.lvalue)) return false;
        break;
      case Stmt::Kind::ExprStmt:
        if (expr_calls_anything(*s.value)) return false;
        break;
      case Stmt::Kind::If:
        if (expr_calls_anything(*s.cond)) return false;
        if (!body_unrollable(s.body, ivar) || !body_unrollable(s.else_body, ivar))
          return false;
        break;
      case Stmt::Kind::Block:
        if (!body_unrollable(s.body, ivar)) return false;
        break;
      default:
        return false;  // Decl, loops, Return
    }
  }
  return true;
}

/// Matches `i = i + 1` (or `i = 1 + i`).
bool is_increment_of(const Stmt& s, std::string& ivar_out) {
  if (s.kind != Stmt::Kind::Assign || s.lvalue->kind != Expr::Kind::Var) return false;
  const Expr& v = *s.value;
  if (v.kind != Expr::Kind::Binary || v.bin != BinOp::Add) return false;
  const Expr& l = *v.kids[0];
  const Expr& r = *v.kids[1];
  const std::string& name = s.lvalue->name;
  const bool l_is_var = l.kind == Expr::Kind::Var && l.name == name;
  const bool r_is_var = r.kind == Expr::Kind::Var && r.name == name;
  const bool l_is_one = l.kind == Expr::Kind::IntLit && l.int_lit == 1;
  const bool r_is_one = r.kind == Expr::Kind::IntLit && r.int_lit == 1;
  if ((l_is_var && r_is_one) || (r_is_var && l_is_one)) {
    ivar_out = name;
    return true;
  }
  return false;
}

int unroll_in(std::vector<StmtPtr>& body, int factor);

int try_unroll(StmtPtr& sp, int factor) {
  Stmt& s = *sp;
  // Recurse first: unroll innermost loops.
  int count = 0;
  if (s.kind == Stmt::Kind::If || s.kind == Stmt::Kind::Block ||
      s.kind == Stmt::Kind::While || s.kind == Stmt::Kind::For) {
    count += unroll_in(s.body, factor);
    count += unroll_in(s.else_body, factor);
  }
  if (s.kind != Stmt::Kind::For || !s.cond || !s.for_step || count > 0) return count;

  std::string ivar;
  if (!is_increment_of(*s.for_step, ivar)) return count;
  // Condition must be `i < E` or `i <= E` with E not mentioning i.
  const Expr& c = *s.cond;
  if (c.kind != Expr::Kind::Binary || (c.bin != BinOp::Lt && c.bin != BinOp::Le))
    return count;
  if (c.kids[0]->kind != Expr::Kind::Var || c.kids[0]->name != ivar) return count;
  if (expr_mentions(*c.kids[1], ivar)) return count;
  if (!body_unrollable(s.body, ivar)) return count;

  // Build the unrolled main loop:
  //   for (init; i + (factor-1) < E; i = i + 1) { body; i=i+1; body; ... }
  auto main_loop = Stmt::make(Stmt::Kind::For, s.line);
  if (s.for_init) main_loop->for_init = s.for_init->clone();
  main_loop->for_step = s.for_step->clone();
  main_loop->cond = Expr::make_binary(
      c.bin,
      Expr::make_binary(BinOp::Add, Expr::make_var(ivar), Expr::make_int(factor - 1)),
      c.kids[1]->clone(), s.line);
  for (int k = 0; k < factor; ++k) {
    for (const auto& b : s.body) main_loop->body.push_back(b->clone());
    if (k + 1 < factor) main_loop->body.push_back(s.for_step->clone());
  }

  // Remainder loop continues from the current i (no init).
  auto rest = Stmt::make(Stmt::Kind::For, s.line);
  rest->cond = s.cond->clone();
  rest->for_step = s.for_step->clone();
  for (const auto& b : s.body) rest->body.push_back(b->clone());

  // Replace the original statement with a block of both loops. If the
  // original init declared the induction variable, keep the declaration
  // visible to the remainder loop by hoisting it into the block.
  auto wrapper = Stmt::make(Stmt::Kind::Block, s.line);
  if (s.for_init && s.for_init->kind == Stmt::Kind::Decl) {
    wrapper->body.push_back(s.for_init->clone());
    main_loop->for_init = nullptr;
  }
  wrapper->body.push_back(std::move(main_loop));
  wrapper->body.push_back(std::move(rest));
  sp = std::move(wrapper);
  return count + 1;
}

int unroll_in(std::vector<StmtPtr>& body, int factor) {
  int count = 0;
  for (auto& sp : body) count += try_unroll(sp, factor);
  return count;
}

}  // namespace

int unroll_loops(Program& program, int factor) {
  if (factor < 2) return 0;
  int count = 0;
  for (auto& f : program.functions) count += unroll_in(f.body, factor);
  return count;
}

}  // namespace pdc::ir
