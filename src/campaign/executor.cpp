#include "campaign/executor.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <system_error>
#include <tuple>

#include "support/csv.hpp"
#include "support/log.hpp"
#include "support/thread_pool.hpp"

namespace pdc::campaign {

namespace fs = std::filesystem;

namespace {

/// Temp-write + rename so a killed campaign never leaves a truncated file
/// that a later resume would trust.
void write_file_atomic(const fs::path& path, const std::string& content) {
  const fs::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot write '" + tmp.string() + "'");
    out << content;
    if (!out) throw std::runtime_error("short write to '" + tmp.string() + "'");
  }
  fs::rename(tmp, path);
}

void metric_json(JsonWriter& w, const Summary& s) {
  w.begin_object();
  w.kv("n", static_cast<std::int64_t>(s.n));
  w.kv("mean", s.mean);
  w.kv("stddev", s.stddev);
  w.kv("min", s.min);
  w.kv("max", s.max);
  w.kv("p50", s.p50);
  w.kv("p95", s.p95);
  w.kv("ci95_half", s.ci95_half);
  w.end_object();
}

}  // namespace

std::map<std::string, double> record_metrics(const JsonValue& record) {
  std::map<std::string, double> m;
  auto phase = [&m, &record](const char* key, const char* prefix) {
    if (!record.has(key)) return;
    const JsonValue& ph = record.at(key);
    m[std::string(prefix) + "_solve_seconds"] = ph.at("solve_seconds").as_double();
    m[std::string(prefix) + "_total_seconds"] = ph.at("total_seconds").as_double();
    // Event-kernel observability: how much simulator work the phase cost
    // and whether any closure fell off the allocation-free inline path
    // (aggregated next to the FlowNet-derived metrics; absent in records
    // written before the engine block existed).
    // Class-solver compression per phase: how many flow classes the max-min
    // solver actually held live at peak (absent in records written before
    // the class solver existed).
    if (ph.has("flownet") && ph.at("flownet").has("classes_active"))
      m[std::string(prefix) + "_flownet_classes"] =
          ph.at("flownet").at("classes_active").as_double();
    if (ph.has("engine")) {
      const JsonValue& e = ph.at("engine");
      m[std::string(prefix) + "_engine_events"] = e.at("events_dispatched").as_double();
      m[std::string(prefix) + "_engine_heap_closures"] =
          e.at("closures_heap").as_double();
    }
    // Churn observability (present only for churn-enabled runs): lets a
    // volatility sweep tabulate re-allocations and failovers per grid point
    // next to the prediction error.
    if (!ph.has("churn")) return;
    const JsonValue& c = ph.at("churn");
    m[std::string(prefix) + "_churn_events"] = c.at("events_applied").as_double();
    m[std::string(prefix) + "_churn_attempts"] = c.at("attempts").as_double();
    m[std::string(prefix) + "_churn_rejoins"] = c.at("rejoins").as_double();
  };
  phase("reference", "reference");
  phase("predicted", "predicted");
  phase("analytic", "analytic");
  if (record.has("prediction_error"))
    m["prediction_error"] = record.at("prediction_error").as_double();
  if (record.has("analytic_error"))
    m["analytic_error"] = record.at("analytic_error").as_double();
  return m;
}

namespace {

/// Parses one persisted record and fills `out` when it is a complete,
/// matching record for `run`. With `accept_errors` (the merge path), failed
/// records load too — their error message lands in out.error so aggregation
/// counts them exactly like a live failed run; without it (the resume path),
/// failed records are rejected so they re-execute. Returns false on any
/// mismatch or parse failure.
bool load_record_text(const std::string& text, const CampaignRun& run, Outcome& out,
                      bool accept_errors) {
  try {
    const JsonValue doc = parse_json(text);
    if (!doc.has("scenario") || doc.at("scenario").as_string() != run.spec.name)
      return false;
    if (!accept_errors && doc.has("error")) return false;
    // The run name encodes axis values but not the base scenario, so an
    // edited .cmp (different grid/iters/mode, changed variant parameters,
    // edited inline platform text, ...) must not silently resume stale
    // records: the record's canonical spec text must match this run's
    // exactly. Older records without the field are re-executed.
    if (!doc.has("spec") ||
        doc.at("spec").as_string() != scenario::render_scenario(run.spec))
      return false;
    // Extract before committing any state: a record whose metrics do not
    // parse (older format) is re-executed, not half-loaded.
    auto metrics = doc.has("error") ? std::map<std::string, double>{}
                                    : record_metrics(doc);
    out.skipped = true;
    out.error = doc.has("error") ? doc.at("error").as_string() : "";
    out.record_json = text;
    out.metrics = std::move(metrics);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::stringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

/// A worker killed mid-write leaves runs/<key>.json.tmp behind; the rename
/// protocol already keeps such torn files out of resume's sight, and this
/// sweep keeps them from accumulating. Only *.tmp leftovers are touched —
/// never completed records.
void clean_stale_temps(const fs::path& runs_dir) {
  if (!fs::is_directory(runs_dir)) return;
  for (const fs::directory_entry& entry : fs::directory_iterator(runs_dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      std::error_code ec;
      fs::remove(entry.path(), ec);  // best effort; a live writer wins the race
    }
  }
}

}  // namespace

Executor::Executor(CampaignSpec spec, ExecutorOptions opts)
    : spec_(std::move(spec)),
      opts_(std::move(opts)),
      runs_(shard_runs(expand(spec_), opts_.shard_index, opts_.shard_count)) {}

std::string Executor::record_path(const CampaignRun& run) const {
  return (fs::path(opts_.out_dir) / "runs" / (run.key + ".json")).string();
}

bool Executor::try_resume(const CampaignRun& run, Outcome& out) const {
  if (opts_.out_dir.empty() || !opts_.resume) return false;
  std::string text;
  if (!read_file(record_path(run), text)) return false;
  // Only a complete, matching, successful record counts as done; failed
  // or foreign records are re-executed.
  return load_record_text(text, run, out, /*accept_errors=*/false);
}

void Executor::execute_one(const CampaignRun& run, Outcome& out) const {
  const auto t0 = std::chrono::steady_clock::now();
  // Warnings this run emits (starved flows, ...) carry its key even when
  // eight workers interleave on stderr.
  LogRunTag tag(run.key);
  scenario::ScenarioSpec spec = run.spec;
  if (!opts_.trace_dir.empty() && spec.run.trace_path.empty())
    spec.run.trace_path =
        (fs::path(opts_.trace_dir) / (run.key + ".trace.json")).string();
  const scenario::Runner runner{std::move(spec)};
  scenario::RunRecord rec = runner.try_run();
  out.error = rec.error;
  out.record_json = rec.to_json();
  // Nothing may escape a pooled worker (an uncaught exception would
  // std::terminate the whole campaign): record persistence or metric
  // extraction failures become this run's structured error, same as a
  // failed simulation.
  try {
    if (!opts_.out_dir.empty()) write_file_atomic(record_path(run), out.record_json);
    if (rec.ok()) out.metrics = record_metrics(parse_json(out.record_json));
  } catch (const std::exception& e) {
    out.error = e.what();
    out.metrics.clear();
  }
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

CampaignReport Executor::execute() {
  const auto t0 = std::chrono::steady_clock::now();
  if (!opts_.out_dir.empty()) {
    fs::create_directories(fs::path(opts_.out_dir) / "runs");
    // A previous session interrupted mid-run may have left torn temp files;
    // they are never trusted (only renamed records are), so drop them now.
    clean_stale_temps(fs::path(opts_.out_dir) / "runs");
  }
  if (!opts_.trace_dir.empty()) fs::create_directories(opts_.trace_dir);

  outcomes_.clear();
  outcomes_.resize(runs_.size());
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    outcomes_[i].run = runs_[i];
    if (!try_resume(runs_[i], outcomes_[i])) pending.push_back(i);
  }

  // Derive everything the grid needs from the process-wide memos (dPerf
  // cost profiles for reference runs, trace sets for predictions) before
  // fanning out, so workers only hit the mutex-guarded cached paths
  // instead of serializing on first touch. The warmed-key tuples mirror
  // the memo keys in scenario/runner.cpp.
  std::set<std::tuple<int, int, int, int>> warmed_costs;
  std::set<std::tuple<int, int, int, int, int, double>> warmed_traces;
  for (std::size_t idx : pending) {
    const scenario::RunSpec& r = runs_[idx].spec.run;
    if (r.mode != scenario::Mode::Predict &&
        warmed_costs
            .emplace(static_cast<int>(r.level), r.bench_n, r.bench_iters, r.bench_rcheck)
            .second)
      scenario::cost_profile(r.level, r);
    if (r.mode != scenario::Mode::Reference &&
        warmed_traces
            .emplace(static_cast<int>(r.level), r.rcheck, r.grid_n, r.iters, r.peers,
                     r.omega)
            .second)
      scenario::Runner{runs_[idx].spec}.traces();
  }

  std::mutex progress_mutex;
  std::size_t finished = 0;
  if (opts_.progress)
    std::fprintf(stderr, "campaign %s: %zu runs (%zu resumed), jobs=%d\n",
                 spec_.name.c_str(), runs_.size(), runs_.size() - pending.size(),
                 opts_.jobs);
  auto work = [&](std::size_t idx) {
    try {
      execute_one(runs_[idx], outcomes_[idx]);
    } catch (const std::exception& e) {  // belt and braces: see execute_one
      outcomes_[idx].error = e.what();
    } catch (...) {
      outcomes_[idx].error = "unknown error";
    }
    if (!opts_.progress) return;
    const Outcome& out = outcomes_[idx];
    std::lock_guard<std::mutex> lock(progress_mutex);
    ++finished;
    std::fprintf(stderr, "[%zu/%zu] %s: %s (%.2fs)\n", finished, pending.size(),
                 runs_[idx].key.c_str(),
                 out.ok() ? "ok" : ("ERROR " + out.error).c_str(), out.wall_seconds);
  };

  if (opts_.jobs <= 1) {
    // Inline sequential execution: no pool, no thread — bit-for-bit the
    // same behaviour as driving the Runner directly in a loop.
    for (std::size_t idx : pending) work(idx);
  } else {
    ThreadPool pool(opts_.jobs);
    for (std::size_t idx : pending) pool.submit([&work, idx] { work(idx); });
    pool.wait_idle();
  }

  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  CampaignReport report = aggregate_outcomes(spec_.name, outcomes_, opts_.jobs, wall);
  report.executed = pending.size();
  if (!opts_.out_dir.empty()) {
    // Concurrent shard processes sharing one out_dir each write their own
    // (partial) report file; only an unsharded session owns report.json.
    const std::string suffix =
        opts_.shard_count > 1 ? "-shard" + std::to_string(opts_.shard_index) + "of" +
                                    std::to_string(opts_.shard_count)
                              : "";
    write_file_atomic(fs::path(opts_.out_dir) / ("report" + suffix + ".json"),
                      report.to_json());
    write_file_atomic(fs::path(opts_.out_dir) / ("report" + suffix + ".csv"),
                      report.to_csv());
  }
  return report;
}

CampaignReport Executor::merge(const std::vector<std::string>& input_dirs) {
  if (opts_.shard_count != 1)
    throw std::logic_error("merge must run over the full matrix (shard 0/1)");
  const auto t0 = std::chrono::steady_clock::now();
  if (!opts_.out_dir.empty()) fs::create_directories(fs::path(opts_.out_dir) / "runs");

  // Accept each input as either a campaign output directory (records in
  // <dir>/runs/) or a bare record directory.
  auto candidate_paths = [&input_dirs](const CampaignRun& run) {
    std::vector<fs::path> paths;
    for (const std::string& dir : input_dirs) {
      paths.push_back(fs::path(dir) / "runs" / (run.key + ".json"));
      paths.push_back(fs::path(dir) / (run.key + ".json"));
    }
    return paths;
  };

  outcomes_.clear();
  outcomes_.resize(runs_.size());
  std::size_t loaded = 0;
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    Outcome& out = outcomes_[i];
    out.run = runs_[i];
    bool found = false;
    for (const fs::path& path : candidate_paths(runs_[i])) {
      std::string text;
      if (!read_file(path, text)) continue;
      if (load_record_text(text, runs_[i], out, /*accept_errors=*/true)) {
        found = true;
        break;
      }
      // A file with the right name but wrong spec text is a stale record
      // from an edited campaign — surface it instead of aggregating it.
      out.skipped = true;
      out.error = "stale or foreign record: " + path.string();
      found = true;
      break;
    }
    if (!found) {
      out.skipped = true;
      out.error = "missing record: runs/" + runs_[i].key + ".json";
    } else if (!out.record_json.empty() && !opts_.out_dir.empty()) {
      // Assemble one complete, resumable run directory alongside the report.
      write_file_atomic(fs::path(opts_.out_dir) / "runs" / (runs_[i].key + ".json"),
                        out.record_json);
    }
    if (found && out.ok()) ++loaded;
  }
  (void)loaded;

  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  CampaignReport report = aggregate_outcomes(spec_.name, outcomes_, opts_.jobs, wall);
  report.executed = 0;
  if (!opts_.out_dir.empty()) {
    // The canonical form: a pure function of the records, so merging shard
    // directories and merging a single -j1 directory produce identical
    // bytes (diffed in tests and the serve-smoke CI job).
    write_file_atomic(fs::path(opts_.out_dir) / "report.json",
                      report.to_json(/*canonical=*/true));
    write_file_atomic(fs::path(opts_.out_dir) / "report.csv", report.to_csv());
  }
  return report;
}

CampaignReport aggregate_outcomes(const std::string& campaign_name,
                                  const std::vector<Outcome>& outcomes, int jobs,
                                  double wall_seconds) {
  CampaignReport report;
  report.name = campaign_name;
  report.jobs = jobs;
  report.total = outcomes.size();
  report.wall_seconds = wall_seconds;

  // Grid points in first-appearance (expansion) order; repetitions are the
  // innermost expansion axis, so samples group naturally.
  std::map<std::string, std::size_t> point_index;
  std::vector<std::map<std::string, std::vector<double>>> samples;
  for (const Outcome& out : outcomes) {
    if (out.skipped) ++report.skipped;
    auto it = point_index.find(out.run.point_key);
    if (it == point_index.end()) {
      it = point_index.emplace(out.run.point_key, report.points.size()).first;
      const scenario::ScenarioSpec& s = out.run.spec;
      PointReport p;
      p.key = out.run.point_key;
      p.platform_label = s.platform.label;
      p.platform_kind = s.platform.kind();
      p.peers = s.run.peers;
      p.opt = ir::opt_level_name(s.run.level);
      p.scheme = s.run.scheme == p2psap::Scheme::Synchronous ? "sync" : "async";
      p.alloc = s.run.allocation == p2pdc::AllocationMode::Hierarchical ? "hierarchical"
                                                                        : "flat";
      p.seed = s.run.seed;
      report.points.push_back(std::move(p));
      samples.emplace_back();
    }
    PointReport& point = report.points[it->second];
    if (!out.ok()) {
      ++point.errors;
      ++report.errors;
      continue;
    }
    ++point.repetitions;
    for (const auto& [name, value] : out.metrics) samples[it->second][name].push_back(value);
  }
  for (std::size_t i = 0; i < report.points.size(); ++i)
    for (const auto& [name, values] : samples[i])
      report.points[i].metrics[name] = summarize(values);
  return report;
}

std::string CampaignReport::to_json(bool canonical) const {
  JsonWriter w;
  w.begin_object();
  w.kv("campaign", name);
  if (!canonical) {
    w.kv("jobs", jobs);
  }
  w.kv("total_runs", static_cast<std::int64_t>(total));
  if (!canonical) {
    w.kv("executed", static_cast<std::int64_t>(executed));
    w.kv("skipped", static_cast<std::int64_t>(skipped));
  }
  w.kv("errors", static_cast<std::int64_t>(errors));
  if (!canonical) {
    w.kv("wall_seconds", wall_seconds);
  }
  w.key("points").begin_array();
  for (const PointReport& p : points) {
    w.begin_object();
    w.kv("point", p.key);
    w.key("platform").begin_object();
    w.kv("label", p.platform_label);
    w.kv("kind", p.platform_kind);
    w.end_object();
    w.kv("peers", p.peers);
    w.kv("opt", p.opt);
    w.kv("scheme", p.scheme);
    w.kv("alloc", p.alloc);
    w.kv("seed", p.seed);
    w.kv("repetitions", p.repetitions);
    w.kv("errors", p.errors);
    w.key("metrics").begin_object();
    for (const auto& [metric, summary] : p.metrics) {
      w.key(metric);
      metric_json(w, summary);
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str() + "\n";
}

std::string CampaignReport::to_csv() const {
  CsvWriter csv({"campaign", "point", "platform", "kind", "peers", "opt", "scheme",
                 "alloc", "seed", "repetitions", "errors", "metric", "n", "mean",
                 "stddev", "min", "max", "p50", "p95", "ci95_half"});
  for (const PointReport& p : points) {
    auto row = [&](const std::string& metric, const Summary& s) {
      csv.row({name, p.key, p.platform_label, p.platform_kind, std::to_string(p.peers),
               p.opt, p.scheme, p.alloc, std::to_string(p.seed),
               std::to_string(p.repetitions), std::to_string(p.errors), metric,
               std::to_string(s.n), format_shortest(s.mean), format_shortest(s.stddev),
               format_shortest(s.min), format_shortest(s.max), format_shortest(s.p50),
               format_shortest(s.p95), format_shortest(s.ci95_half)});
    };
    // A point whose every repetition failed has no metrics; emit one
    // placeholder row so its errors stay visible in the CSV.
    if (p.metrics.empty()) row("-", Summary{});
    for (const auto& [metric, s] : p.metrics) row(metric, s);
  }
  return csv.str();
}

}  // namespace pdc::campaign
