// Scenario spec text format: parse, render, round-trip, and error reporting.
#include "scenario/spec.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace pdc::scenario {
namespace {

TEST(ScenarioSpec, ParsesEveryRunKey) {
  const ScenarioSpec s = parse_scenario(R"(# full spec
scenario my-exp
platform lan
peers 8
opt s
mode predict
alloc flat
scheme async
seed 1234
grid 130
iters 50
rcheck 5
bench 34 6 2
omega 0.8
cmax 4
)");
  EXPECT_EQ(s.name, "my-exp");
  EXPECT_STREQ(s.platform.kind(), "star");
  EXPECT_EQ(s.platform.label, "lan");
  EXPECT_EQ(s.run.peers, 8);
  EXPECT_EQ(s.run.level, ir::OptLevel::Os);
  EXPECT_EQ(s.run.mode, Mode::Predict);
  EXPECT_EQ(s.run.allocation, p2pdc::AllocationMode::Flat);
  EXPECT_EQ(s.run.scheme, p2psap::Scheme::Asynchronous);
  EXPECT_EQ(s.run.seed, 1234u);
  EXPECT_EQ(s.run.grid_n, 130);
  EXPECT_EQ(s.run.iters, 50);
  EXPECT_EQ(s.run.rcheck, 5);
  EXPECT_EQ(s.run.bench_n, 34);
  EXPECT_EQ(s.run.bench_iters, 6);
  EXPECT_EQ(s.run.bench_rcheck, 2);
  EXPECT_DOUBLE_EQ(s.run.omega, 0.8);
  EXPECT_EQ(s.run.cmax, 4);
}

TEST(ScenarioSpec, UnsetKeysKeepBaseDefaults) {
  RunSpec base;
  base.grid_n = 999;
  base.peers = 7;
  const ScenarioSpec s = parse_scenario("scenario x\nopt 2\n", base);
  EXPECT_EQ(s.run.grid_n, 999);
  EXPECT_EQ(s.run.peers, 7);
  EXPECT_EQ(s.run.level, ir::OptLevel::O2);
}

TEST(ScenarioSpec, PlatformParamsWithUnits) {
  const ScenarioSpec s = parse_scenario(
      "platform star hosts=12 speed=2.5GHz nic_bw=200Mbps nic_lat=50us bb_bw=2Gbps "
      "bb_lat=1ms prefix=lab ip=192.168.1.1\n");
  const auto& star = std::get<net::StarSpec>(s.platform.spec);
  EXPECT_EQ(star.hosts, 12);
  EXPECT_DOUBLE_EQ(star.host_speed_hz, 2.5e9);
  EXPECT_DOUBLE_EQ(star.nic_bw_Bps, 200e6 / 8);
  EXPECT_DOUBLE_EQ(star.nic_latency, 50e-6);
  EXPECT_DOUBLE_EQ(star.backbone_bw_Bps, 2e9 / 8);
  EXPECT_DOUBLE_EQ(star.backbone_latency, 1e-3);
  EXPECT_EQ(star.name_prefix, "lab");
  EXPECT_EQ(star.base_ip.to_string(), "192.168.1.1");
}

TEST(ScenarioSpec, FederationSpeedList) {
  const ScenarioSpec s =
      parse_scenario("platform federation clusters=4 hosts=2 speeds=3GHz,2GHz,1GHz\n");
  const auto& fed = std::get<net::FederationSpec>(s.platform.spec);
  EXPECT_EQ(fed.clusters, 4);
  EXPECT_EQ(fed.hosts_per_cluster, 2);
  ASSERT_EQ(fed.site_speeds_hz.size(), 3u);
  EXPECT_DOUBLE_EQ(fed.site_speeds_hz[1], 2e9);
}

TEST(ScenarioSpec, RoundTripEveryPlatformKind) {
  const char* texts[] = {
      "scenario a\nplatform grid5000\n",
      "scenario b\nplatform lan\npeers 16\n",
      "scenario c\nplatform xdsl\nopt 3\n",
      "scenario d\nplatform star hosts=5 speed=1GHz prefix=p ip=10.9.0.1\n",
      "scenario e\nplatform daisy petals=2 petal_routers=3 dslams=1 dslam_nodes=2 extra=0\n",
      "scenario f\nplatform federation clusters=2 hosts=3 speeds=2GHz,1GHz wan_lat=7ms\n",
      "scenario g\nplatform wan hosts=9 routers=3 extra_links=1 speed_min=1GHz\n",
      "scenario h\nplatform file some/dir/net.plat\nmode reference\n",
  };
  for (const char* text : texts) {
    const ScenarioSpec once = parse_scenario(text);
    const std::string rendered = render_scenario(once);
    const ScenarioSpec twice = parse_scenario(rendered);
    // Canonical text is a fixed point: render(parse(render(s))) == render(s).
    EXPECT_EQ(render_scenario(twice), rendered) << "for input: " << text;
    EXPECT_EQ(once.platform.label, twice.platform.label);
    EXPECT_STREQ(once.platform.kind(), twice.platform.kind());
  }
}

TEST(ScenarioSpec, RoundTripPreservesExactDoubles) {
  ScenarioSpec s;
  auto star = net::StarSpec{};
  star.host_speed_hz = 2.9999999999e9;
  star.nic_bw_Bps = 1e9 / 8;        // 1 Gbps
  star.nic_latency = 100 * 1e-6;    // not exactly representable in binary
  s.platform = PlatformSpec{"x", star};
  const ScenarioSpec back = parse_scenario(render_scenario(s));
  const auto& b = std::get<net::StarSpec>(back.platform.spec);
  EXPECT_EQ(b.host_speed_hz, star.host_speed_hz);
  EXPECT_EQ(b.nic_bw_Bps, star.nic_bw_Bps);
  EXPECT_EQ(b.nic_latency, star.nic_latency);
}

TEST(ScenarioSpec, InlinePlatformRoundTrip) {
  const std::string text =
      "scenario inline-test\n"
      "platform inline\n"
      "host a speed 3GHz ip 10.0.0.1\n"
      "host b speed 3GHz ip 10.0.0.2\n"
      "link l bw 1Gbps lat 1ms\n"
      "edge a b l\n"
      "end\n"
      "peers 2\n";
  const ScenarioSpec s = parse_scenario(text);
  const auto& file = std::get<PlatformFileSpec>(s.platform.spec);
  EXPECT_TRUE(file.path.empty());
  EXPECT_NE(file.text.find("edge a b l"), std::string::npos);
  const ScenarioSpec back = parse_scenario(render_scenario(s));
  EXPECT_EQ(std::get<PlatformFileSpec>(back.platform.spec).text, file.text);
}

TEST(ScenarioSpec, ErrorsCarryLineNumbers) {
  try {
    parse_scenario("scenario ok\nbogus keyword\n");
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_EQ(e.line(), 2);
  }
  EXPECT_THROW(parse_scenario("platform star hosts=abc\n"), ScenarioError);
  EXPECT_THROW(parse_scenario("platform star bogus_key=1\n"), ScenarioError);
  EXPECT_THROW(parse_scenario("platform nosuch\n"), ScenarioError);
  EXPECT_THROW(parse_scenario("platform inline\nhost x speed 1GHz ip 10.0.0.1\n"),
               ScenarioError);  // missing 'end'
  EXPECT_THROW(parse_scenario("mode sideways\n"), ScenarioError);
  EXPECT_THROW(parse_scenario("seed 42abc\n"), ScenarioError);  // no trailing garbage
}

TEST(ScenarioSpec, RunSpecFromEnvHonoursQuickFlag) {
  ::setenv("PDC_QUICK", "1", 1);
  const RunSpec quick = RunSpec::from_env();
  ::unsetenv("PDC_QUICK");
  const RunSpec full = RunSpec::from_env();
  EXPECT_LT(quick.grid_n, full.grid_n);
  EXPECT_LT(quick.iters, full.iters);
  EXPECT_EQ(full.grid_n, 1538);
}

}  // namespace
}  // namespace pdc::scenario
