// The decentralized P2PDC topology manager (paper §III-A):
//
//  * Server: contact point for nodes joining the overlay for the first
//    time; stores tracker registry and zone statistics. The overlay keeps
//    working while the server is down.
//  * Trackers: form a line ordered by IP address; each tracker maintains a
//    set N of closest trackers, half with lower and half with higher IPs,
//    and direct connections (heartbeats) to its immediate neighbours.
//    Joins are routed greedily to the closest tracker; crashes are detected
//    by direct neighbours and repaired by exchanging neighbour-set halves.
//  * Peers: join the zone of the closest tracker, publish their resources,
//    refresh them periodically, and fail over to a neighbour zone when
//    their tracker stops acknowledging updates after time T.
//
// Peers collection (paper §III-B) is implemented by PeerActor::collect_peers:
// the submitter asks its own tracker, then every tracker in its local list,
// then repeatedly expands the known-tracker horizon through the farthest
// trackers on both sides until enough peers are reserved.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/flow.hpp"
#include "overlay/types.hpp"
#include "sim/engine.hpp"
#include "sim/mailbox.hpp"
#include "sim/task.hpp"
#include "support/flat_map.hpp"

namespace pdc::overlay {

class Overlay;

/// Common actor plumbing: two mailboxes (main protocol + RPC replies) and
/// liveness control.
class ActorBase {
 public:
  ActorBase(Overlay& overlay, NodeIdx host, Ipv4 ip);
  virtual ~ActorBase() = default;

  NodeIdx host() const { return host_; }
  Ipv4 ip() const { return ip_; }
  bool alive() const { return alive_; }

  /// Graceful stop: the main loop exits at its next wake-up.
  void stop() { alive_ = false; }
  /// Crash: additionally, all queued and future messages are dropped.
  void crash() {
    alive_ = false;
    crashed_ = true;
  }
  bool crashed() const { return crashed_; }

 protected:
  friend class Overlay;
  Overlay* overlay_;
  NodeIdx host_;
  Ipv4 ip_;
  bool alive_ = true;
  bool crashed_ = false;
  sim::Mailbox<CtrlMsg> main_box_;
  sim::Mailbox<CtrlMsg> rpc_box_;
};

class ServerActor : public ActorBase {
 public:
  ServerActor(Overlay& overlay, NodeIdx host, Ipv4 ip) : ActorBase(overlay, host, ip) {}

  sim::Process run();

  /// Bootstrap registration of an administrator-managed core tracker.
  void register_core_tracker(TrackerRef t) { trackers_.push_back(t); }

  const std::vector<TrackerRef>& known_trackers() const { return trackers_; }
  const support::FlatMap<NodeIdx, ZoneStats>& zone_stats() const { return stats_; }

 private:
  void handle(CtrlMsg msg);
  std::vector<TrackerRef> trackers_;
  support::FlatMap<NodeIdx, ZoneStats> stats_;
};

/// One entry of a tracker's zone.
struct ZonePeer {
  PeerRef peer;
  bool busy = false;
  Time last_update = 0;
  /// Installed by lazy (passive) registration: advertised without periodic
  /// state updates and exempt from staleness expiry until its host crashes.
  bool persistent = false;
};

class TrackerActor : public ActorBase {
 public:
  TrackerActor(Overlay& overlay, NodeIdx host, Ipv4 ip, bool bootstrap_core)
      : ActorBase(overlay, host, ip), bootstrap_core_(bootstrap_core) {}

  sim::Process run();

  // --- inspection (tests, stats) ---
  const std::vector<TrackerRef>& neighbor_set() const { return neighbors_; }
  const support::FlatMap<NodeIdx, ZonePeer>& zone() const { return zone_; }
  std::optional<TrackerRef> left_neighbor() const;   // closest lower-IP neighbour
  std::optional<TrackerRef> right_neighbor() const;  // closest higher-IP neighbour
  bool joined() const { return joined_; }

  /// Bootstrap: install an initial neighbour set without running the join
  /// protocol (administrator-configured core trackers, paper §III-A.3).
  void bootstrap_neighbors(std::vector<TrackerRef> neighbors);

 private:
  friend class Overlay;
  void handle(CtrlMsg msg);
  sim::Task<void> join_overlay();
  void insert_neighbor(TrackerRef t);
  void remove_neighbor(NodeIdx node);
  void trim_neighbors();
  /// Closest tracker to `target` among the neighbour set and self.
  TrackerRef closest_known(Ipv4 target) const;
  std::vector<TrackerRef> neighbors_for(Ipv4 joiner) const;
  void detect_dead_neighbors();
  void expire_stale_peers();
  void send_heartbeats();
  void report_stats();
  /// Direct zone install for a passive peer (Overlay::register_passive_peer):
  /// no join round trip, no state-update process, never expires.
  void install_persistent_peer(PeerRef peer);
  /// Passive peer crashed: demote its entry so normal expiry reclaims it.
  void make_peer_transient(NodeIdx node);
  /// Upsert that keeps `transient_` (the count of entries subject to
  /// staleness expiry) in sync; every message-driven insert goes through it.
  ZonePeer& upsert_transient(NodeIdx node);

  bool bootstrap_core_;
  bool joined_ = false;
  std::vector<TrackerRef> neighbors_;  // sorted by IP
  support::FlatMap<NodeIdx, Time> neighbor_last_seen_;
  support::FlatMap<NodeIdx, ZonePeer> zone_;
  /// Entries with persistent == false. The heartbeat-rate expiry scan is
  /// skipped while zero, so a million passive peers cost nothing per tick.
  std::size_t transient_ = 0;
  Time next_heartbeat_ = 0;
  Time next_stats_ = 0;
};

class PeerActor : public ActorBase {
 public:
  PeerActor(Overlay& overlay, NodeIdx host, Ipv4 ip, PeerResources res)
      : ActorBase(overlay, host, ip), res_(res) {}

  sim::Process run();

  // --- inspection ---
  bool joined() const { return tracker_.node >= 0; }
  TrackerRef tracker() const { return tracker_; }
  const std::vector<TrackerRef>& tracker_list() const { return tracker_list_; }
  bool busy() const { return busy_; }
  const PeerResources& resources() const { return res_; }
  int rejoin_count() const { return rejoins_; }

  /// Releases a reservation made by a submitter (local action + notice).
  void release();

  /// Peers collection for a task (paper §III-B), run on the submitter.
  /// Returns the reserved peers (may be fewer than requested if the overlay
  /// is exhausted). `ticket` identifies the reservation.
  sim::Task<std::vector<PeerRef>> collect_peers(int wanted, Requirements req,
                                                std::uint64_t ticket);

 private:
  friend class Overlay;
  void handle(CtrlMsg msg);
  sim::Task<void> join_overlay();
  sim::Task<std::optional<CtrlMsg>> rpc(NodeIdx to, CtrlMsg msg);

  PeerResources res_;
  TrackerRef tracker_{-1, Ipv4{}};
  std::vector<TrackerRef> tracker_list_;
  bool busy_ = false;
  NodeIdx reserved_by_ = -1;
  Time last_ack_ = 0;
  int rejoins_ = 0;
};

/// The overlay context: actor registry plus the control-plane transport
/// (small network flows carrying CtrlMsg values).
class Overlay {
 public:
  Overlay(sim::Engine& engine, const net::Platform& platform, net::FlowNet& flownet,
          OverlayConfig config = {});
  Overlay(const Overlay&) = delete;
  Overlay& operator=(const Overlay&) = delete;

  ServerActor& create_server(NodeIdx host);
  /// `bootstrap_core` trackers skip the join protocol; they are wired
  /// directly into each other's neighbour sets by finish_bootstrap().
  TrackerActor& create_tracker(NodeIdx host, bool bootstrap_core = false);
  PeerActor& create_peer(NodeIdx host, PeerResources res);

  /// Lazy worker instantiation for massive platforms: registers `host` as a
  /// donor without spawning an actor. The peer is installed directly into
  /// the zone of the closest existing tracker (persistent entry) and costs
  /// O(1) memory and zero idle events; reservation and release against it
  /// are synthesized by the overlay with the same wire costs a live
  /// PeerActor would incur. Requires at least one tracker; returns false
  /// when none exists. Passive peers do not send state updates and do not
  /// fail over when their tracker crashes.
  bool register_passive_peer(NodeIdx host, PeerResources res);

  /// Wires all bootstrap-core trackers into a consistent initial line and
  /// registers them with the server. Call once after creating the cores.
  void finish_bootstrap();

  /// Sends a control message as a network flow, then delivers it.
  void send_ctrl(NodeIdx from, NodeIdx to, CtrlMsg msg);

  sim::Engine& engine() { return *engine_; }
  const net::Platform& platform() const { return *platform_; }
  const OverlayConfig& config() const { return config_; }
  ServerActor* server() { return server_; }
  NodeIdx server_host() const { return server_ ? server_->host() : -1; }

  TrackerActor* tracker_at(NodeIdx host);
  PeerActor* peer_at(NodeIdx host);
  const std::vector<TrackerActor*>& trackers() const { return tracker_ptrs_; }
  const std::vector<PeerActor*>& peers() const { return peer_ptrs_; }

  /// True when `host` can still serve a computation: a live PeerActor or a
  /// passive peer that has not crashed. The liveness check callers must use
  /// instead of peer_at() now that workers may have no actor at all.
  bool peer_alive(NodeIdx host) const;
  /// True when `host` is a passively registered peer (crashed or not).
  bool is_passive_peer(NodeIdx host) const;
  /// Crashes a passive peer: it stops answering reservations and its zone
  /// entry becomes transient, so the tracker expires it like a silent peer.
  /// Returns false when `host` is not a passive peer.
  bool crash_passive_peer(NodeIdx host);
  std::size_t passive_peer_count() const { return passive_.size(); }

  /// Initial tracker list installed on new nodes (paper: set at install
  /// time together with the server address).
  std::vector<TrackerRef> install_tracker_list() const { return core_trackers_; }

  /// Stops every actor so Engine::run() can drain.
  void shutdown();

  std::uint64_t ctrl_messages_sent() const { return ctrl_messages_; }

 private:
  friend class ActorBase;
  friend class ServerActor;
  friend class TrackerActor;
  friend class PeerActor;

  /// A lazily registered worker: all the state a reservation needs, no
  /// actor, no mailboxes, no coroutine. Kept in a node-sorted vector.
  struct PassivePeer {
    NodeIdx node = -1;
    NodeIdx tracker = -1;
    bool busy = false;
    bool dead = false;
    NodeIdx reserved_by = -1;
  };

  void deliver(NodeIdx to, CtrlMsg msg);
  /// Reservation protocol on behalf of a passive peer (mirrors
  /// PeerActor::handle for ReserveReq/ReleaseReq; everything else is
  /// dropped, as a stateless donor has no use for it).
  void deliver_passive(PassivePeer& pp, CtrlMsg& msg);
  ActorBase* actor_at(NodeIdx host);
  const ActorBase* actor_at(NodeIdx host) const;
  PassivePeer* passive_at(NodeIdx host);
  const PassivePeer* passive_at(NodeIdx host) const;
  void ensure_host_free(NodeIdx host) const;
  std::unique_ptr<ActorBase>& slot(NodeIdx host);

  sim::Engine* engine_;
  const net::Platform* platform_;
  net::FlowNet* net_;
  OverlayConfig config_;
  ServerActor* server_ = nullptr;
  /// Dense actor registry indexed by platform node: one pointer per node,
  /// null for nodes running nothing (routers, passive peers, spare hosts).
  std::vector<std::unique_ptr<ActorBase>> actors_;
  std::vector<TrackerActor*> tracker_ptrs_;
  std::vector<PeerActor*> peer_ptrs_;
  /// Node-sorted registry of passive peers (binary-search lookup).
  std::vector<PassivePeer> passive_;
  std::vector<TrackerRef> core_trackers_;
  std::uint64_t ctrl_messages_ = 0;
};

}  // namespace pdc::overlay
