#include "campaign/spec.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <set>
#include <sstream>
#include <stdexcept>

#include "support/json.hpp"

namespace pdc::campaign {

namespace {

using scenario::PlatformSpec;
using scenario::ScenarioError;

int parse_int(const std::string& text, int line, const char* what) {
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0')
    throw ScenarioError(line, std::string("bad ") + what + " '" + text + "'");
  return static_cast<int>(v);
}

std::uint64_t parse_u64(const std::string& text, int line, const char* what) {
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0')
    throw ScenarioError(line, std::string("bad ") + what + " '" + text + "'");
  return v;
}

/// Sweep values may be comma- and/or space-separated; flatten both.
std::vector<std::string> sweep_values(const std::vector<std::string>& tok,
                                      std::size_t first, int line) {
  std::vector<std::string> out;
  for (std::size_t i = first; i < tok.size(); ++i) {
    std::string item;
    std::istringstream in(tok[i]);
    while (std::getline(in, item, ','))
      if (!item.empty()) out.push_back(item);
  }
  if (out.empty()) throw ScenarioError(line, "sweep axis with no values");
  return out;
}

PlatformSpec preset_platform(const std::string& name, int line) {
  if (name == "grid5000") return PlatformSpec::grid5000();
  if (name == "lan") return PlatformSpec::lan();
  if (name == "xdsl") return PlatformSpec::xdsl();
  if (name == "federation") return PlatformSpec::federation();
  if (name == "wan") return PlatformSpec::wan();
  if (name == "scale_free") return PlatformSpec::scale_free();
  if (name == "small_world") return PlatformSpec::small_world();
  throw ScenarioError(line, "unknown platform preset '" + name +
                                "' (use a `variant` line for parameterized platforms)");
}

/// Keys name run-record files: keep [A-Za-z0-9._-], map the rest to '_'.
std::string sanitize_key(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
                    c == '_' || c == '-';
    out += ok ? c : '_';
  }
  return out;
}

const char* scheme_key(p2psap::Scheme s) {
  return s == p2psap::Scheme::Synchronous ? "sync" : "async";
}

const char* alloc_key(p2pdc::AllocationMode a) {
  return a == p2pdc::AllocationMode::Hierarchical ? "hier" : "flat";
}

}  // namespace

std::size_t CampaignSpec::total_runs() const {
  auto axis = [](std::size_t n) { return n == 0 ? std::size_t{1} : n; };
  return axis(platforms.size()) * axis(peers.size()) * axis(levels.size()) *
         axis(schemes.size()) * axis(allocations.size()) * axis(seeds.size()) *
         axis(churn_rates.size()) * axis(churn_seeds.size()) *
         static_cast<std::size_t>(repetitions < 1 ? 0 : repetitions);
}

std::vector<CampaignRun> expand(const CampaignSpec& spec) {
  if (spec.repetitions < 1)
    throw std::invalid_argument("campaign '" + spec.name + "': repetitions < 1");

  // Repeated values on one axis (e.g. `sweep seed 42,42`) would expand to
  // runs with the identical key — same record file, racing temp writes at
  // -j>1, double-counted aggregation. They carry no information
  // (`repetitions` is the way to repeat a point), so collapse them,
  // keeping first-occurrence order.
  auto dedup = [](auto values) {
    auto out = values;
    out.clear();
    for (const auto& v : values)
      if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
    return out;
  };

  // Empty axes collapse to the base scenario's value.
  const std::vector<PlatformSpec> platforms =
      spec.platforms.empty() ? std::vector<PlatformSpec>{spec.base.platform}
                             : spec.platforms;
  const std::vector<int> peers =
      spec.peers.empty() ? std::vector<int>{spec.base.run.peers} : dedup(spec.peers);
  const std::vector<ir::OptLevel> levels =
      spec.levels.empty() ? std::vector<ir::OptLevel>{spec.base.run.level}
                          : dedup(spec.levels);
  const std::vector<p2psap::Scheme> schemes =
      spec.schemes.empty() ? std::vector<p2psap::Scheme>{spec.base.run.scheme}
                           : dedup(spec.schemes);
  const std::vector<p2pdc::AllocationMode> allocations =
      spec.allocations.empty()
          ? std::vector<p2pdc::AllocationMode>{spec.base.run.allocation}
          : dedup(spec.allocations);
  const std::vector<std::uint64_t> seeds =
      spec.seeds.empty() ? std::vector<std::uint64_t>{spec.base.run.seed}
                         : dedup(spec.seeds);
  // Churn axes contribute key segments only when actually swept, so
  // churn-free campaigns keep their pre-churn run keys and resume records.
  const bool sweep_churn_rate = !spec.churn_rates.empty();
  const bool sweep_churn_seed = !spec.churn_seeds.empty();
  const std::vector<double> churn_rates =
      sweep_churn_rate ? dedup(spec.churn_rates)
                       : std::vector<double>{spec.base.run.churn.peer_crash_rate};
  const std::vector<std::uint64_t> churn_seeds =
      sweep_churn_seed ? dedup(spec.churn_seeds)
                       : std::vector<std::uint64_t>{spec.base.run.churn.seed};

  // Platform key components must be unique per axis value: two `variant
  // star ...` lines without explicit labels would otherwise collide into
  // one grid point (same record file, merged aggregation, wrong resume).
  // First-come keeps the plain label; later duplicates grow a "v<index>"
  // suffix until unique (covering labels that themselves look suffixed).
  std::vector<std::string> platform_keys;
  platform_keys.reserve(platforms.size());
  {
    std::set<std::string> used;
    for (std::size_t i = 0; i < platforms.size(); ++i) {
      std::string key = sanitize_key(platforms[i].label);
      while (!used.insert(key).second) key += "v" + std::to_string(i);
      platform_keys.push_back(std::move(key));
    }
  }

  std::vector<CampaignRun> runs;
  runs.reserve(spec.total_runs());
  for (std::size_t plat = 0; plat < platforms.size(); ++plat)
    for (int p : peers)
      for (ir::OptLevel level : levels)
        for (p2psap::Scheme scheme : schemes)
          for (p2pdc::AllocationMode alloc : allocations)
            for (std::uint64_t seed : seeds)
              for (double churn_rate : churn_rates)
                for (std::uint64_t churn_seed : churn_seeds)
                  for (int rep = 0; rep < spec.repetitions; ++rep) {
                    const PlatformSpec& platform = platforms[plat];
                    CampaignRun run;
                    run.index = runs.size();
                    run.repetition = rep;
                    run.point_key = platform_keys[plat] + "-p" + std::to_string(p) +
                                    "-" + ir::opt_level_name(level) + "-" +
                                    scheme_key(scheme) + "-" + alloc_key(alloc) +
                                    "-s" + std::to_string(seed);
                    if (sweep_churn_rate)
                      run.point_key += "-cr" + sanitize_key(format_shortest(churn_rate));
                    if (sweep_churn_seed)
                      run.point_key += "-cs" + std::to_string(churn_seed);
                    run.key = run.point_key + "-r" + std::to_string(rep);
                    run.spec = spec.base;
                    run.spec.name = spec.name + "/" + run.key;
                    run.spec.platform = platform;
                    run.spec.run.peers = p;
                    run.spec.run.level = level;
                    run.spec.run.scheme = scheme;
                    run.spec.run.allocation = alloc;
                    run.spec.run.seed = seed;
                    run.spec.run.churn.peer_crash_rate = churn_rate;
                    run.spec.run.churn.seed = churn_seed;
                    runs.push_back(std::move(run));
                  }
  return runs;
}

std::vector<CampaignRun> shard_runs(std::vector<CampaignRun> runs, int shard_index,
                                    int shard_count) {
  if (shard_count < 1)
    throw std::invalid_argument("shard count must be >= 1, got " +
                                std::to_string(shard_count));
  if (shard_index < 0 || shard_index >= shard_count)
    throw std::invalid_argument("shard index " + std::to_string(shard_index) +
                                " outside [0, " + std::to_string(shard_count) + ")");
  if (shard_count == 1) return runs;
  std::vector<CampaignRun> out;
  out.reserve(runs.size() / static_cast<std::size_t>(shard_count) + 1);
  for (CampaignRun& run : runs)
    if (run.index % static_cast<std::size_t>(shard_count) ==
        static_cast<std::size_t>(shard_index))
      out.push_back(std::move(run));
  return out;
}

CampaignSpec parse_campaign(const std::string& text, const scenario::RunSpec& base) {
  CampaignSpec spec;
  bool named = false;       // saw a `campaign <name>` line
  bool base_named = false;  // saw an explicit `scenario <name>` line

  // Campaign keywords are consumed here; every other line is forwarded to
  // the scenario parser verbatim. Consumed lines are replaced with blank
  // lines so ScenarioError line numbers match the original .cmp text.
  std::string scenario_text;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  bool in_inline = false;  // inside a `platform inline ... end` block
  while (std::getline(in, line)) {
    ++lineno;
    const auto tok = scenario::tokenize_spec_line(line);
    if (in_inline) {
      scenario_text += line;
      scenario_text += '\n';
      if (tok.size() == 1 && tok[0] == "end") in_inline = false;
      continue;
    }
    if (tok.size() >= 2 && tok[0] == "platform" && tok[1] == "inline") in_inline = true;

    const std::string kw = tok.empty() ? "" : tok[0];
    if (kw == "campaign") {
      if (tok.size() != 2) throw ScenarioError(lineno, "expected: campaign <name>");
      spec.name = tok[1];
      named = true;
    } else if (kw == "repetitions") {
      if (tok.size() != 2) throw ScenarioError(lineno, "expected: repetitions <n>");
      spec.repetitions = parse_int(tok[1], lineno, "repetitions");
      if (spec.repetitions < 1) throw ScenarioError(lineno, "repetitions < 1");
    } else if (kw == "sweep") {
      if (tok.size() < 3) throw ScenarioError(lineno, "expected: sweep <axis> <values>");
      const std::string& axis = tok[1];
      const auto values = sweep_values(tok, 2, lineno);
      if (axis == "peers") {
        for (const auto& v : values)
          spec.peers.push_back(parse_int(v, lineno, "peers"));
      } else if (axis == "opt") {
        for (const auto& v : values) {
          try {
            spec.levels.push_back(ir::parse_opt_level(v));
          } catch (const std::invalid_argument& e) {
            throw ScenarioError(lineno, e.what());
          }
        }
      } else if (axis == "scheme") {
        for (const auto& v : values) {
          if (v == "sync") spec.schemes.push_back(p2psap::Scheme::Synchronous);
          else if (v == "async") spec.schemes.push_back(p2psap::Scheme::Asynchronous);
          else throw ScenarioError(lineno, "unknown scheme '" + v + "'");
        }
      } else if (axis == "alloc") {
        for (const auto& v : values) {
          if (v == "hierarchical")
            spec.allocations.push_back(p2pdc::AllocationMode::Hierarchical);
          else if (v == "flat") spec.allocations.push_back(p2pdc::AllocationMode::Flat);
          else throw ScenarioError(lineno, "unknown allocation '" + v + "'");
        }
      } else if (axis == "seed") {
        for (const auto& v : values)
          spec.seeds.push_back(parse_u64(v, lineno, "seed"));
      } else if (axis == "churn_rate") {
        for (const auto& v : values) {
          char* end = nullptr;
          const double rate = std::strtod(v.c_str(), &end);
          // !(rate >= 0) also rejects NaN, which would otherwise key a
          // grid point "-crnan".
          if (end == v.c_str() || *end != '\0' || !(rate >= 0))
            throw ScenarioError(lineno, "bad churn_rate '" + v + "'");
          spec.churn_rates.push_back(rate);
        }
      } else if (axis == "churn_seed") {
        for (const auto& v : values)
          spec.churn_seeds.push_back(parse_u64(v, lineno, "churn_seed"));
      } else if (axis == "platform") {
        for (const auto& v : values)
          spec.platforms.push_back(preset_platform(v, lineno));
      } else {
        throw ScenarioError(lineno, "unknown sweep axis '" + axis + "'");
      }
    } else if (kw == "variant") {
      if (tok.size() < 2)
        throw ScenarioError(lineno, "expected: variant <platform-kind> [key=value ...]");
      if (tok[1] == "inline")
        throw ScenarioError(lineno, "inline platforms cannot be campaign variants");
      // A variant line is a `platform ...` line naming one axis value.
      std::vector<std::string> platform_tok = tok;
      platform_tok[0] = "platform";
      spec.platforms.push_back(scenario::parse_platform_tokens(platform_tok, lineno));
    } else {
      if (kw == "scenario") base_named = true;
      scenario_text += line;
      scenario_text += '\n';
      continue;
    }
    scenario_text += '\n';  // consumed: keep line numbers aligned
  }

  spec.base = scenario::parse_scenario(scenario_text, base);
  if (named && !base_named) spec.base.name = spec.name;
  return spec;
}

std::string render_campaign(const CampaignSpec& spec) {
  std::ostringstream out;
  out << "campaign " << spec.name << "\n";
  out << scenario::render_scenario(spec.base);
  for (const PlatformSpec& p : spec.platforms) {
    if (const auto* f = std::get_if<scenario::PlatformFileSpec>(&p.spec)) {
      if (f->path.empty())
        throw std::invalid_argument("inline platform variants have no text form");
      out << "variant file " << f->path << "\n";
    } else {
      // render_platform_line emits "platform <kind> ..."; a variant line is
      // the same description under the `variant` keyword.
      const std::string line = scenario::render_platform_line(p);
      out << "variant" << line.substr(std::string("platform").size()) << "\n";
    }
  }
  auto join = [&out](const char* axis, const std::vector<std::string>& values) {
    if (values.empty()) return;
    out << "sweep " << axis << " ";
    for (std::size_t i = 0; i < values.size(); ++i)
      out << (i > 0 ? "," : "") << values[i];
    out << "\n";
  };
  std::vector<std::string> v;
  for (int p : spec.peers) v.push_back(std::to_string(p));
  join("peers", v);
  v.clear();
  for (ir::OptLevel l : spec.levels) v.push_back(ir::opt_level_name(l));
  join("opt", v);
  v.clear();
  for (p2psap::Scheme s : spec.schemes) v.push_back(scheme_key(s));
  join("scheme", v);
  v.clear();
  for (p2pdc::AllocationMode a : spec.allocations)
    v.push_back(a == p2pdc::AllocationMode::Hierarchical ? "hierarchical" : "flat");
  join("alloc", v);
  v.clear();
  for (std::uint64_t s : spec.seeds) v.push_back(std::to_string(s));
  join("seed", v);
  v.clear();
  for (double r : spec.churn_rates) v.push_back(format_shortest(r));
  join("churn_rate", v);
  v.clear();
  for (std::uint64_t s : spec.churn_seeds) v.push_back(std::to_string(s));
  join("churn_seed", v);
  out << "repetitions " << spec.repetitions << "\n";
  return out.str();
}

}  // namespace pdc::campaign
