#include "net/flow.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace pdc::net {

namespace {
// Bytes below this are considered fully transferred (guards float drift).
constexpr double kByteEpsilon = 1e-6;
// Key for per-direction link usage.
constexpr std::uint64_t dirkey(Hop h) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(h.link)) << 1) |
         static_cast<std::uint32_t>(h.dir);
}
}  // namespace

FlowId FlowNet::start_flow(NodeIdx src, NodeIdx dst, double bytes,
                           std::function<void()> on_complete) {
  ++stats_.flows_started;
  const FlowId id = next_id_++;
  if (src == dst) {
    ++stats_.flows_completed;
    stats_.bytes_completed += bytes;
    engine_->post(std::move(on_complete));
    return id;
  }
  const Route& route = platform_->route(src, dst);
  Flow f;
  f.id = id;
  f.remaining = std::max(bytes, 0.0);
  f.total_bytes = f.remaining;
  f.hops = route.hops;
  f.on_complete = std::move(on_complete);
  f.phase = Phase::Latency;
  flows_.emplace(id, std::move(f));
  engine_->schedule_after(route.latency, [this, id] {
    auto it = flows_.find(id);
    if (it == flows_.end()) return;
    it->second.phase = Phase::Transfer;
    reshare();
  });
  return id;
}

sim::Task<void> FlowNet::transfer(NodeIdx src, NodeIdx dst, double bytes) {
  auto gate = std::make_shared<sim::Gate>(*engine_);
  start_flow(src, dst, bytes, [gate] { gate->open(); });
  co_await gate->wait();
}

double FlowNet::flow_rate(FlowId id) const {
  auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second.rate;
}

void FlowNet::advance_progress() {
  const Time dt = engine_->now() - last_update_;
  if (dt > 0) {
    for (auto& [id, f] : flows_)
      if (f.phase == Phase::Transfer && f.rate > 0)
        f.remaining = std::max(0.0, f.remaining - f.rate * dt);
  }
  last_update_ = engine_->now();
}

void FlowNet::recompute_rates() {
  // Progressive filling: repeatedly saturate the most constrained link.
  std::map<std::uint64_t, double> capacity;
  std::map<std::uint64_t, int> unfixed_count;
  std::vector<Flow*> unfixed;
  for (auto& [id, f] : flows_) {
    f.rate = 0;
    if (f.phase != Phase::Transfer) continue;
    unfixed.push_back(&f);
    for (const Hop& h : f.hops) {
      capacity.emplace(dirkey(h), platform_->link(h.link).bandwidth_Bps);
      ++unfixed_count[dirkey(h)];
    }
  }
  while (!unfixed.empty()) {
    double best_share = std::numeric_limits<double>::infinity();
    for (const auto& [key, cap] : capacity) {
      const int n = unfixed_count[key];
      if (n > 0) best_share = std::min(best_share, cap / n);
    }
    if (!std::isfinite(best_share)) break;  // no constrained flows remain
    // Fix every unfixed flow that crosses a bottleneck link.
    std::vector<Flow*> still_unfixed;
    for (Flow* f : unfixed) {
      bool at_bottleneck = false;
      for (const Hop& h : f->hops) {
        const auto key = dirkey(h);
        if (unfixed_count[key] > 0 &&
            capacity[key] / unfixed_count[key] <= best_share * (1 + 1e-12)) {
          at_bottleneck = true;
          break;
        }
      }
      if (at_bottleneck) {
        f->rate = best_share;
        for (const Hop& h : f->hops) {
          const auto key = dirkey(h);
          capacity[key] = std::max(0.0, capacity[key] - best_share);
          --unfixed_count[key];
        }
      } else {
        still_unfixed.push_back(f);
      }
    }
    if (still_unfixed.size() == unfixed.size()) break;  // numeric safety
    unfixed.swap(still_unfixed);
  }
}

void FlowNet::schedule_next_completion() {
  completion_timer_.cancel();
  Time earliest = kTimeInfinity;
  for (const auto& [id, f] : flows_) {
    if (f.phase != Phase::Transfer) continue;
    if (f.remaining <= kByteEpsilon) {
      earliest = 0;
      break;
    }
    if (f.rate > 0) earliest = std::min(earliest, f.remaining / f.rate);
  }
  if (earliest >= kTimeInfinity) return;
  completion_timer_ = engine_->schedule_cancellable(earliest, [this] { on_completion_event(); });
}

void FlowNet::on_completion_event() {
  advance_progress();
  // Complete every flow that has drained (ties complete together).
  std::vector<Flow> done;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->second.phase == Phase::Transfer && it->second.remaining <= kByteEpsilon) {
      done.push_back(std::move(it->second));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  for (Flow& f : done) {
    ++stats_.flows_completed;
    stats_.bytes_completed += f.total_bytes;
    engine_->post(std::move(f.on_complete));
  }
  recompute_rates();
  schedule_next_completion();
  ++stats_.reshares;
}

void FlowNet::reshare() {
  advance_progress();
  recompute_rates();
  schedule_next_completion();
  ++stats_.reshares;
}

}  // namespace pdc::net
