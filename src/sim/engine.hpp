// The discrete-event simulation engine.
//
// Single-threaded, deterministic: events fire in (time, insertion-sequence)
// order, so two runs with the same seed produce identical schedules. All
// higher layers (network flows, P2PSAP channels, overlay protocols, trace
// replay) are built on this kernel.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/process.hpp"
#include "support/time.hpp"

namespace pdc::sim {

/// Cancellation token for a scheduled callback. Cheap to copy; cancelling an
/// already-fired or empty handle is a no-op. The shared state owns the
/// callback itself, so cancel() frees the closure (and whatever it captures)
/// eagerly instead of parking it in the event heap until its fire time.
class TimerHandle {
 public:
  TimerHandle() = default;
  explicit TimerHandle(std::shared_ptr<std::function<void()>> fn) : fn_(std::move(fn)) {}
  void cancel() {
    if (fn_) *fn_ = nullptr;
  }
  /// True while the callback is still pending (not cancelled, not fired).
  bool active() const { return fn_ && *fn_; }

 private:
  std::shared_ptr<std::function<void()>> fn_;
};

class Engine {
 public:
  Engine() = default;
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Time now() const { return now_; }

  /// Schedules `fn` at the current simulated time (after already-queued
  /// events at this time).
  void post(std::function<void()> fn) { schedule_at(now_, std::move(fn)); }
  void schedule_at(Time t, std::function<void()> fn);
  void schedule_after(Time dt, std::function<void()> fn) {
    schedule_at(now_ + dt, std::move(fn));
  }
  /// Like schedule_after, but returns a handle whose cancel() suppresses the
  /// callback if it has not fired yet (and releases the closure eagerly).
  TimerHandle schedule_cancellable(Time dt, std::function<void()> fn);

  /// Persistent timer slot: the callback is registered once, then arm/cancel
  /// are allocation-free (events carry only the slot id and a generation).
  /// Re-arming implicitly cancels the previous pending arm. Built for hot
  /// one-timer-per-component users like FlowNet's completion timer.
  int create_timer_slot(std::function<void()> fn);
  void arm_timer_slot(int slot, Time dt);
  void cancel_timer_slot(int slot);
  /// Frees the slot's callback and recycles the id for a later
  /// create_timer_slot. Must not be called from inside that slot's own
  /// callback (the closure would be destroyed mid-execution).
  void destroy_timer_slot(int slot);
  bool timer_slot_armed(int slot) const {
    return timer_slots_[static_cast<std::size_t>(slot)].armed;
  }
  std::size_t timer_slot_count() const { return timer_slots_.size(); }

  /// Takes ownership of a process coroutine and schedules its first resume
  /// at the current time.
  void spawn(Process p, std::string name = {});

  /// Awaitable: suspends the calling coroutine for `dt` simulated seconds.
  struct SleepAwaiter {
    Engine* engine;
    Time dt;
    bool await_ready() const noexcept { return dt <= 0; }
    void await_suspend(std::coroutine_handle<> h) {
      engine->schedule_after(dt, [h] { h.resume(); });
    }
    void await_resume() const noexcept {}
  };
  SleepAwaiter sleep(Time dt) { return SleepAwaiter{this, dt}; }

  /// Runs until the event queue drains. Rethrows the first uncaught
  /// exception escaping a process.
  void run();
  /// Runs until the queue drains or the next event lies beyond `t_end`
  /// (the clock then advances to exactly `t_end`).
  void run_until(Time t_end);
  /// Dispatches a single event. Returns false when the queue is empty.
  bool step();

  std::size_t live_processes() const { return live_processes_; }
  std::uint64_t dispatched_events() const { return dispatched_; }
  bool queue_empty() const { return heap_.empty(); }

 private:
  friend struct Process::promise_type::FinalAwaiter;

  struct Event {
    Time t;
    std::uint64_t seq;
    std::function<void()> fn;  // empty for timer-slot events
    std::int32_t slot = -1;    // >= 0: dispatch via timer_slots_[slot]
    std::uint64_t gen = 0;     // must match the slot's generation to fire
    bool operator>(const Event& other) const {
      return t != other.t ? t > other.t : seq > other.seq;
    }
  };

  struct TimerSlot {
    std::function<void()> fn;
    std::uint64_t gen = 0;  // bumped on arm/cancel; stale events are skipped
    bool armed = false;
  };

  void on_process_done(Process::Handle h);
  void reap_zombies();
  void dispatch(Event ev);

  std::vector<Event> heap_;  // min-heap via std::push_heap with greater
  // deque: a slot callback may register new slots mid-dispatch; references
  // into a deque survive push_back, vector references would not.
  std::deque<TimerSlot> timer_slots_;
  std::vector<int> free_timer_slots_;  // destroyed ids awaiting reuse
  Time now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::size_t live_processes_ = 0;
  std::vector<Process::Handle> registered_;  // all spawned, for final cleanup
  std::vector<Process::Handle> zombies_;     // finished, to destroy
  std::exception_ptr pending_error_;
};

}  // namespace pdc::sim
