#include "p2psap/p2psap.hpp"

#include <algorithm>

namespace pdc::p2psap {

ChannelConfig adapt(Scheme scheme, LinkClass link_class) {
  ChannelConfig cfg;
  if (scheme == Scheme::Synchronous) {
    cfg.reliable = true;
    cfg.latest_value = false;
    switch (link_class) {
      case LinkClass::Loopback:
        cfg.header_bytes = 0;
        cfg.ack_bytes = 0;
        cfg.profile = "SYNC/loopback";
        break;
      case LinkClass::IntraZone:
        // Short RTT: lean framing, immediate acks (TCP with Nagle off).
        cfg.header_bytes = 64;
        cfg.ack_bytes = 64;
        cfg.profile = "SYNC/TCP-intrazone";
        break;
      case LinkClass::Lan:
        cfg.header_bytes = 64;
        cfg.ack_bytes = 64;
        cfg.profile = "SYNC/TCP-lan";
        break;
      case LinkClass::Wan:
        // Congestion-controlled WAN profile: bigger frames, windowed acks
        // modelled as a heavier ack exchange.
        cfg.header_bytes = 96;
        cfg.ack_bytes = 96;
        cfg.profile = "SYNC/TCP-wan";
        break;
    }
  } else {
    // Asynchronous iterative schemes: drop ordering, acknowledgement and
    // queueing; only the most recent value matters.
    cfg.reliable = false;
    cfg.latest_value = true;
    cfg.ack_bytes = 0;
    switch (link_class) {
      case LinkClass::Loopback:
        cfg.header_bytes = 0;
        cfg.profile = "ASYNC/loopback";
        break;
      case LinkClass::IntraZone:
        cfg.header_bytes = 32;
        cfg.profile = "ASYNC/UDP-intrazone";
        break;
      case LinkClass::Lan:
        cfg.header_bytes = 32;
        cfg.profile = "ASYNC/UDP-lan";
        break;
      case LinkClass::Wan:
        // DCCP-like: unreliable but congestion aware -> slightly larger
        // framing than raw datagrams.
        cfg.header_bytes = 48;
        cfg.profile = "ASYNC/DCCP-wan";
        break;
    }
  }
  return cfg;
}

LinkClass classify(Ipv4 a, Ipv4 b) {
  const int prefix = common_prefix_len(a, b);
  if (prefix == 32) return LinkClass::Loopback;
  if (prefix >= 24) return LinkClass::IntraZone;
  if (prefix >= 16) return LinkClass::Lan;
  return LinkClass::Wan;
}

Channel::Channel(Fabric& fabric, net::NodeIdx host_a, net::NodeIdx host_b,
                 ChannelConfig config)
    : fabric_(&fabric), a_(host_a), b_(host_b), config_(std::move(config)) {}

Channel::Box& Channel::box_for(net::NodeIdx dst, int tag) {
  const auto key = std::make_pair(dst, tag);
  auto it = boxes_.find(key);
  if (it == boxes_.end()) {
    auto policy = config_.latest_value ? sim::MailboxPolicy::LatestValue
                                       : sim::MailboxPolicy::Unbounded;
    it = boxes_.emplace(key, std::make_unique<Box>(fabric_->engine(), policy)).first;
  }
  return *it->second;
}

sim::Task<void> Channel::send(net::NodeIdx from_host, int tag, double bytes,
                              std::shared_ptr<const std::vector<double>> values) {
  const net::NodeIdx dst = peer_of(from_host);
  ++stats_.messages_sent;
  stats_.payload_bytes_sent += bytes;

  Message msg;
  msg.src_host = from_host;
  msg.tag = tag;
  msg.payload_bytes = bytes;
  msg.values = std::move(values);
  msg.sent_at = fabric_->engine().now();

  const double wire_bytes = bytes + config_.header_bytes;
  if (config_.reliable) {
    // Payload flow, deliver, then transport ack back to the sender.
    co_await fabric_->flownet().transfer(from_host, dst, wire_bytes);
    const std::uint64_t before = box_for(dst, tag).overwritten();
    box_for(dst, tag).push(std::move(msg));
    stats_.stale_dropped += box_for(dst, tag).overwritten() - before;
    ++stats_.acks_sent;
    co_await fabric_->flownet().transfer(dst, from_host, config_.ack_bytes);
  } else {
    // Fire-and-forget: the flow delivers in the background; the sender
    // resumes immediately (injection is not modelled as blocking). The
    // moved Message capture rides the flow's completion EventFn inline —
    // async schemes deliver with zero allocations per message.
    static_assert(sizeof(Message) + sizeof(void*) + sizeof(net::NodeIdx) + sizeof(int) <=
                  sim::EventFn::kInlineSize);
    auto* self = this;
    fabric_->flownet().start_flow(from_host, dst, wire_bytes,
                                  [self, dst, tag, m = std::move(msg)]() mutable {
                                    Box& box = self->box_for(dst, tag);
                                    const std::uint64_t before = box.overwritten();
                                    box.push(std::move(m));
                                    self->stats_.stale_dropped += box.overwritten() - before;
                                  });
  }
  co_return;
}

sim::Task<Message> Channel::recv(net::NodeIdx at_host, int tag) {
  Message m = co_await box_for(at_host, tag).recv();
  co_return m;
}

sim::Task<std::optional<Message>> Channel::recv_for(net::NodeIdx at_host, int tag,
                                                    Time timeout) {
  auto m = co_await box_for(at_host, tag).recv_for(timeout);
  co_return m;
}

std::optional<Message> Channel::try_recv(net::NodeIdx at_host, int tag) {
  return box_for(at_host, tag).try_recv();
}

Channel& Fabric::channel(net::NodeIdx a, net::NodeIdx b, Scheme scheme) {
  const Key key{std::min(a, b), std::max(a, b), scheme};
  auto it = channels_.find(key);
  if (it == channels_.end()) {
    const LinkClass lc = classify(platform_->node(a).ip, platform_->node(b).ip);
    it = channels_
             .emplace(key, std::make_unique<Channel>(*this, key.lo, key.hi,
                                                     adapt(scheme, lc)))
             .first;
  }
  return *it->second;
}

}  // namespace pdc::p2psap
