// Flow-level network model with max-min fair bandwidth sharing.
//
// Each transfer is a fluid flow along its route. Concurrent flows crossing
// the same link in the same direction share that link's capacity with
// max-min fairness (progressive filling), the same model family as
// SimGrid's default used by the paper for trace-based simulation. A flow
// first waits out the route's accumulated latency, then streams its bytes
// at the allocated rate; allocations are recomputed whenever a flow enters
// or leaves the transfer phase.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "net/platform.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace pdc::net {

using FlowId = std::uint64_t;

/// Aggregate counters for tests and benches.
struct FlowNetStats {
  std::uint64_t flows_started = 0;
  std::uint64_t flows_completed = 0;
  double bytes_completed = 0;
  std::uint64_t reshares = 0;
};

class FlowNet {
 public:
  FlowNet(sim::Engine& engine, const Platform& platform)
      : engine_(&engine), platform_(&platform) {}
  FlowNet(const FlowNet&) = delete;
  FlowNet& operator=(const FlowNet&) = delete;

  /// Starts a flow of `bytes` from `src` to `dst`; `on_complete` fires (as a
  /// posted event) when the last byte arrives. A src==dst transfer completes
  /// immediately (loopback: no modelled cost). Zero-byte flows still pay the
  /// route latency.
  FlowId start_flow(NodeIdx src, NodeIdx dst, double bytes, std::function<void()> on_complete);

  /// Awaitable wrapper around start_flow.
  sim::Task<void> transfer(NodeIdx src, NodeIdx dst, double bytes);

  std::size_t active_flows() const { return flows_.size(); }
  const FlowNetStats& stats() const { return stats_; }

  /// Current max-min rate of an active flow (0 while in the latency phase);
  /// exposed for tests of the sharing model.
  double flow_rate(FlowId id) const;

 private:
  enum class Phase { Latency, Transfer };

  struct Flow {
    FlowId id = 0;
    double remaining = 0;
    double total_bytes = 0;
    double rate = 0;
    Phase phase = Phase::Latency;
    std::vector<Hop> hops;
    std::function<void()> on_complete;
  };

  /// Advances remaining byte counts to `now`, recomputes max-min rates and
  /// reschedules the next-completion event.
  void reshare();
  void advance_progress();
  void recompute_rates();
  void schedule_next_completion();
  void on_completion_event();

  sim::Engine* engine_;
  const Platform* platform_;
  std::map<FlowId, Flow> flows_;  // ordered: deterministic iteration
  FlowId next_id_ = 1;
  Time last_update_ = 0;
  sim::TimerHandle completion_timer_;
  FlowNetStats stats_;
};

}  // namespace pdc::net
