#include "alloc/groups.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <utility>

namespace pdc::alloc {

namespace {

/// Recursively splits [lo, hi) at the widest IP gap (ties: most central)
/// until every chunk fits in cmax. Splitting at the widest gap keeps
/// network-adjacent peers together — the "groups based on proximity" rule.
void split_chunk(const std::vector<overlay::PeerRef>& peers, std::size_t lo, std::size_t hi,
                 int cmax, std::vector<std::pair<std::size_t, std::size_t>>& out) {
  if (hi - lo <= static_cast<std::size_t>(cmax)) {
    out.emplace_back(lo, hi);
    return;
  }
  const double center = (static_cast<double>(lo) + static_cast<double>(hi)) / 2.0;
  std::size_t best = lo + 1;
  std::uint64_t best_gap = 0;
  double best_centrality = -1;
  for (std::size_t i = lo + 1; i < hi; ++i) {
    const std::uint64_t gap = static_cast<std::uint64_t>(peers[i].ip.bits()) -
                              static_cast<std::uint64_t>(peers[i - 1].ip.bits());
    const double centrality = -std::abs(static_cast<double>(i) - center);
    if (gap > best_gap || (gap == best_gap && centrality > best_centrality)) {
      best = i;
      best_gap = gap;
      best_centrality = centrality;
    }
  }
  split_chunk(peers, lo, best, cmax, out);
  split_chunk(peers, best, hi, cmax, out);
}

}  // namespace

std::vector<Group> form_groups(std::vector<overlay::PeerRef> peers, int cmax) {
  assert(cmax > 0);
  std::vector<Group> groups;
  if (peers.empty()) return groups;
  std::sort(peers.begin(), peers.end(),
            [](const overlay::PeerRef& a, const overlay::PeerRef& b) { return a.ip < b.ip; });
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  split_chunk(peers, 0, peers.size(), cmax, chunks);
  for (const auto& [lo, hi] : chunks) {
    Group group;
    group.members.assign(peers.begin() + static_cast<std::ptrdiff_t>(lo),
                         peers.begin() + static_cast<std::ptrdiff_t>(hi));
    for (std::size_t i = 1; i < group.members.size(); ++i) {
      const auto& cur = group.members[i];
      const auto& best = group.members[group.coordinator];
      if (cur.res.cpu_hz > best.res.cpu_hz ||
          (cur.res.cpu_hz == best.res.cpu_hz && cur.ip < best.ip))
        group.coordinator = i;
    }
    groups.push_back(std::move(group));
  }
  return groups;
}

}  // namespace pdc::alloc
