#include "minic/unparse.hpp"

#include <cstdio>

namespace pdc::minic {

namespace {

int precedence(const Expr& e) {
  if (e.kind != Expr::Kind::Binary) return 100;
  switch (e.bin) {
    case BinOp::Or: return 1;
    case BinOp::And: return 2;
    case BinOp::Eq:
    case BinOp::Ne: return 3;
    case BinOp::Lt:
    case BinOp::Le:
    case BinOp::Gt:
    case BinOp::Ge: return 4;
    case BinOp::Add:
    case BinOp::Sub: return 5;
    default: return 6;
  }
}

const char* bin_text(BinOp op) {
  switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
    case BinOp::Mod: return "%";
    case BinOp::Lt: return "<";
    case BinOp::Le: return "<=";
    case BinOp::Gt: return ">";
    case BinOp::Ge: return ">=";
    case BinOp::Eq: return "==";
    case BinOp::Ne: return "!=";
    case BinOp::And: return "&&";
    case BinOp::Or: return "||";
  }
  return "?";
}

std::string scalar_type(Type t) {
  return t == Type::Int || t == Type::IntArray ? "int"
         : t == Type::Void                     ? "void"
                                               : "double";
}

void emit_expr(const Expr& e, std::string& out, int parent_prec) {
  const int prec = precedence(e);
  switch (e.kind) {
    case Expr::Kind::IntLit:
      out += std::to_string(e.int_lit);
      break;
    case Expr::Kind::FloatLit: {
      char buf[48];
      std::snprintf(buf, sizeof buf, "%.17g", e.float_lit);
      out += buf;
      // Keep it lexically a float so the round trip preserves the type.
      std::string s{buf};
      if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
          s.find('E') == std::string::npos && s.find("inf") == std::string::npos &&
          s.find("nan") == std::string::npos)
        out += ".0";
      break;
    }
    case Expr::Kind::Var:
      out += e.name;
      break;
    case Expr::Kind::Index:
      out += e.name;
      out += '[';
      emit_expr(*e.kids[0], out, 0);
      out += ']';
      break;
    case Expr::Kind::Unary:
      out += e.un == UnOp::Neg ? '-' : '!';
      emit_expr(*e.kids[0], out, 99);  // force parens around binary operands
      break;
    case Expr::Kind::Call: {
      out += e.name;
      out += '(';
      for (std::size_t i = 0; i < e.kids.size(); ++i) {
        if (i) out += ", ";
        emit_expr(*e.kids[i], out, 0);
      }
      out += ')';
      break;
    }
    case Expr::Kind::Binary: {
      const bool need_parens = prec < parent_prec;
      if (need_parens) out += '(';
      emit_expr(*e.kids[0], out, prec);
      out += ' ';
      out += bin_text(e.bin);
      out += ' ';
      emit_expr(*e.kids[1], out, prec + 1);  // left associative
      if (need_parens) out += ')';
      break;
    }
  }
}

void emit_indent(std::string& out, int depth) { out.append(static_cast<std::size_t>(depth) * 2, ' '); }

void emit_stmt(const Stmt& s, std::string& out, int depth);

void emit_body(const std::vector<StmtPtr>& body, std::string& out, int depth) {
  out += "{\n";
  for (const StmtPtr& s : body) emit_stmt(*s, out, depth + 1);
  emit_indent(out, depth);
  out += "}";
}

/// Emits an assignment without trailing ';' (for `for` steps).
void emit_assign_core(const Stmt& s, std::string& out) {
  if (s.kind == Stmt::Kind::Assign) {
    emit_expr(*s.lvalue, out, 0);
    out += " = ";
    emit_expr(*s.value, out, 0);
  } else {  // ExprStmt
    emit_expr(*s.value, out, 0);
  }
}

void emit_stmt(const Stmt& s, std::string& out, int depth) {
  emit_indent(out, depth);
  switch (s.kind) {
    case Stmt::Kind::Decl:
      out += scalar_type(s.decl_type);
      out += ' ';
      out += s.name;
      if (s.array_size) {
        out += '[';
        emit_expr(*s.array_size, out, 0);
        out += ']';
      }
      if (s.init) {
        out += " = ";
        emit_expr(*s.init, out, 0);
      }
      out += ";\n";
      break;
    case Stmt::Kind::Assign:
      emit_assign_core(s, out);
      out += ";\n";
      break;
    case Stmt::Kind::ExprStmt:
      emit_expr(*s.value, out, 0);
      out += ";\n";
      break;
    case Stmt::Kind::Return:
      out += "return";
      if (s.value) {
        out += ' ';
        emit_expr(*s.value, out, 0);
      }
      out += ";\n";
      break;
    case Stmt::Kind::If:
      out += "if (";
      emit_expr(*s.cond, out, 0);
      out += ") ";
      emit_body(s.body, out, depth);
      if (!s.else_body.empty()) {
        out += " else ";
        emit_body(s.else_body, out, depth);
      }
      out += "\n";
      break;
    case Stmt::Kind::While:
      out += "while (";
      emit_expr(*s.cond, out, 0);
      out += ") ";
      emit_body(s.body, out, depth);
      out += "\n";
      break;
    case Stmt::Kind::For: {
      out += "for (";
      if (s.for_init) {
        std::string init;
        emit_stmt(*s.for_init, init, 0);
        // Strip the trailing newline; keep the ';'.
        while (!init.empty() && (init.back() == '\n' || init.back() == ' ')) init.pop_back();
        out += init;
        out += ' ';
      } else {
        out += "; ";
      }
      if (s.cond) emit_expr(*s.cond, out, 0);
      out += "; ";
      if (s.for_step) emit_assign_core(*s.for_step, out);
      out += ") ";
      emit_body(s.body, out, depth);
      out += "\n";
      break;
    }
    case Stmt::Kind::Block:
      emit_body(s.body, out, depth);
      out += "\n";
      break;
  }
}

}  // namespace

std::string unparse_expr(const Expr& e) {
  std::string out;
  emit_expr(e, out, 0);
  return out;
}

std::string unparse(const Program& program) {
  std::string out;
  for (const Function& f : program.functions) {
    out += scalar_type(f.ret);
    out += ' ';
    out += f.name;
    out += '(';
    for (std::size_t i = 0; i < f.params.size(); ++i) {
      if (i) out += ", ";
      out += scalar_type(f.params[i].type);
      out += ' ';
      out += f.params[i].name;
      if (is_array(f.params[i].type)) out += "[]";
    }
    out += ") {\n";
    for (const StmtPtr& s : f.body) emit_stmt(*s, out, 1);
    out += "}\n\n";
  }
  return out;
}

}  // namespace pdc::minic
