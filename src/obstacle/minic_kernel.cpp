#include "obstacle/minic_kernel.hpp"

namespace pdc::obstacle {

const std::string& minic_kernel_source() {
  static const std::string kSource = R"(
int main() {
  int n = p2p_param(0);
  int iters = p2p_param(1);
  int rcheck = p2p_param(2);
  double omega = p2p_param_f(0);
  double force = p2p_param_f(1);
  double c0 = p2p_param_f(2);
  double c1 = p2p_param_f(3);
  int me = p2p_rank();
  int np = p2p_nprocs();

  int interior = n - 2;
  int base = interior / np;
  int extra = interior % np;
  int myrows = base;
  if (me < extra) { myrows = base + 1; }
  int g0 = me * base + extra;
  if (me < extra) { g0 = me * (base + 1); }
  g0 = g0 + 1;

  double h = 1.0 / (n - 1);
  double h2f = h * h * force;
  double u[(myrows + 2) * n];
  double unew[(myrows + 2) * n];
  double lower[(myrows + 2) * n];

  for (int i = 0; i < myrows + 2; i = i + 1) {
    for (int j = 0; j < n; j = j + 1) {
      int gi = g0 - 1 + i;
      double x = gi * h;
      double y = j * h;
      double dx = x - 0.5;
      double dy = y - 0.5;
      double p = c0 - c1 * (dx * dx + dy * dy);
      lower[i * n + j] = p;
      double s = p;
      if (s < 0.0) { s = 0.0; }
      if (gi == 0 || gi == n - 1 || j == 0 || j == n - 1) { s = 0.0; }
      u[i * n + j] = s;
      unew[i * n + j] = s;
    }
  }

  for (int it = 0; it < iters; it = it + 1) {
    if (me > 0) {
      p2p_send(me - 1, 1, u, n, n);
      p2p_recv(me - 1, 2, u, 0, n);
    }
    if (me < np - 1) {
      p2p_send(me + 1, 2, u, myrows * n, n);
      p2p_recv(me + 1, 1, u, (myrows + 1) * n, n);
    }
    double res = 0.0;
    for (int i = 1; i <= myrows; i = i + 1) {
      for (int j = 1; j < n - 1; j = j + 1) {
        int idx = i * n + j;
        double v = u[idx] + omega * 0.25 * (u[idx - 1] + u[idx + 1] + u[idx - n] + u[idx + n] - 4.0 * u[idx] + h2f);
        if (v < lower[idx]) { v = lower[idx]; }
        unew[idx] = v;
        double d = v - u[idx];
        if (d < 0.0) { d = 0.0 - d; }
        if (d > res) { res = d; }
      }
    }
    for (int i = 1; i <= myrows; i = i + 1) {
      for (int j = 1; j < n - 1; j = j + 1) {
        int idx = i * n + j;
        u[idx] = unew[idx];
      }
    }
    if (it % rcheck == rcheck - 1) {
      double g = p2p_allreduce_max(res);
      if (g < 0.0 - 1.0) { return 1; }
    }
  }
  return 0;
}
)";
  return kSource;
}

dperf::Workload kernel_workload(const ObstacleProblem& p, int iters, int rcheck) {
  dperf::Workload w;
  w.int_params = {p.n, iters, rcheck};
  w.float_params = {p.omega, p.force, p.c0, p.c1};
  return w;
}

}  // namespace pdc::obstacle
