#include "ir/lower.hpp"

#include <map>
#include <vector>

#include "minic/builtins.hpp"
#include "minic/token.hpp"

namespace pdc::ir {

namespace {

using minic::BinOp;
using minic::CompileError;
using minic::Expr;
using minic::Function;
using minic::Program;
using minic::Stmt;
using minic::Type;
using minic::UnOp;

IrType ir_type(Type t) { return t == Type::Double ? IrType::F64 : IrType::I64; }

class Lowerer {
 public:
  Lowerer(const Program& prog, const Function& f) : prog_(prog), src_(f) {}

  IrFunction run() {
    fn_.name = src_.name;
    fn_.returns_value = src_.ret != Type::Void;
    fn_.ret_type = ir_type(src_.ret);
    fn_.num_params = static_cast<int>(src_.params.size());
    new_block();  // entry

    push_scope();
    for (std::size_t i = 0; i < src_.params.size(); ++i) {
      const auto& p = src_.params[i];
      if (minic::is_array(p.type)) {
        const int slot = static_cast<int>(fn_.arr_slots.size());
        fn_.arr_slots.push_back(ArrSlot{p.name, ir_type(element_type(p.type)), true,
                                        static_cast<int>(i)});
        bind(p.name, Binding{true, slot, ir_type(element_type(p.type))});
      } else {
        // Incoming scalar arguments arrive in registers 0..num_params-1.
        const int slot = static_cast<int>(fn_.var_slots.size());
        fn_.var_slots.push_back(VarSlot{p.name, ir_type(p.type), true, static_cast<int>(i)});
        bind(p.name, Binding{false, slot, ir_type(p.type)});
        // Reserve the incoming register id.
        while (fn_.num_regs <= static_cast<int>(i)) fn_.new_reg();
        Instr st;
        st.op = Op::StoreVar;
        st.slot = slot;
        st.a = static_cast<int>(i);
        st.type = ir_type(p.type);
        emit(std::move(st));
      }
    }
    push_scope();
    for (const auto& s : src_.body) lower_stmt(*s);
    pop_scope();
    pop_scope();
    // Guarantee a terminator on the last open block.
    if (!block_terminated()) {
      Instr ret;
      ret.op = Op::Ret;
      if (fn_.returns_value) {
        // Falling off a value-returning function yields 0 (defined here,
        // unlike C, to keep the VM total).
        Instr zero;
        zero.op = fn_.ret_type == IrType::F64 ? Op::ConstF : Op::ConstI;
        zero.dst = fn_.new_reg();
        zero.type = fn_.ret_type;
        const int z = zero.dst;
        emit(std::move(zero));
        ret.a = z;
      }
      emit(std::move(ret));
    }
    return std::move(fn_);
  }

 private:
  struct Binding {
    bool is_array = false;
    int slot = -1;
    IrType type = IrType::I64;
  };

  // --- blocks ---
  int new_block() {
    const int id = static_cast<int>(fn_.blocks.size());
    fn_.blocks.push_back(BasicBlock{id, {}});
    cur_ = id;
    return id;
  }
  BasicBlock& cur() { return fn_.blocks[static_cast<std::size_t>(cur_)]; }
  bool block_terminated() {
    return !cur().instrs.empty() && is_terminator(cur().instrs.back().op);
  }
  void emit(Instr in) {
    if (!block_terminated()) cur().instrs.push_back(std::move(in));
  }
  void switch_to(int block) { cur_ = block; }
  void jump_to(int target) {
    Instr j;
    j.op = Op::Jump;
    j.t1 = target;
    emit(std::move(j));
  }

  // --- scopes ---
  void push_scope() { scopes_.emplace_back(); }
  void pop_scope() { scopes_.pop_back(); }
  void bind(const std::string& name, Binding b) { scopes_.back()[name] = b; }
  const Binding& lookup(const std::string& name, int line) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto v = it->find(name);
      if (v != it->end()) return v->second;
    }
    throw CompileError(line, 1, "internal: unbound variable '" + name + "'");
  }

  // --- helpers ---
  int emit_const_i(long long v) {
    Instr c;
    c.op = Op::ConstI;
    c.imm_i = v;
    c.dst = fn_.new_reg();
    c.type = IrType::I64;
    const int dst = c.dst;
    emit(std::move(c));
    return dst;
  }
  int emit_unop(Op op, int a, IrType type) {
    Instr in;
    in.op = op;
    in.a = a;
    in.dst = fn_.new_reg();
    in.type = type;
    const int dst = in.dst;
    emit(std::move(in));
    return dst;
  }
  int emit_binop(Op op, int a, int b, IrType type) {
    Instr in;
    in.op = op;
    in.a = a;
    in.b = b;
    in.dst = fn_.new_reg();
    in.type = type;
    const int dst = in.dst;
    emit(std::move(in));
    return dst;
  }
  /// Converts an int-typed register to double when needed.
  int promote(int reg, Type from, Type to) {
    if (from == Type::Int && to == Type::Double) return emit_unop(Op::I2F, reg, IrType::F64);
    return reg;
  }

  // --- expressions ---
  int lower_expr(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::IntLit: return emit_const_i(e.int_lit);
      case Expr::Kind::FloatLit: {
        Instr c;
        c.op = Op::ConstF;
        c.imm_f = e.float_lit;
        c.dst = fn_.new_reg();
        c.type = IrType::F64;
        const int dst = c.dst;
        emit(std::move(c));
        return dst;
      }
      case Expr::Kind::Var: {
        const Binding& b = lookup(e.name, e.line);
        if (b.is_array)
          throw CompileError(e.line, 1, "internal: array used as scalar");
        Instr ld;
        ld.op = Op::LoadVar;
        ld.slot = b.slot;
        ld.dst = fn_.new_reg();
        ld.type = b.type;
        const int dst = ld.dst;
        emit(std::move(ld));
        return dst;
      }
      case Expr::Kind::Index: {
        const Binding& b = lookup(e.name, e.line);
        const int idx = lower_expr(*e.kids[0]);
        Instr ld;
        ld.op = Op::LoadIdx;
        ld.slot = b.slot;
        ld.a = idx;
        ld.dst = fn_.new_reg();
        ld.type = b.type;
        const int dst = ld.dst;
        emit(std::move(ld));
        return dst;
      }
      case Expr::Kind::Unary: {
        const int a = lower_expr(*e.kids[0]);
        if (e.un == UnOp::Not) return emit_unop(Op::NotI, a, IrType::I64);
        return e.kids[0]->type == Type::Double ? emit_unop(Op::NegF, a, IrType::F64)
                                               : emit_unop(Op::NegI, a, IrType::I64);
      }
      case Expr::Kind::Binary: return lower_binary(e);
      case Expr::Kind::Call: return lower_call(e);
    }
    throw CompileError(e.line, 1, "internal: unhandled expression");
  }

  int lower_binary(const Expr& e) {
    if (e.bin == BinOp::And || e.bin == BinOp::Or) return lower_logical(e);
    const Type lt = e.kids[0]->type;
    const Type rt = e.kids[1]->type;
    const bool fp = lt == Type::Double || rt == Type::Double;
    int a = lower_expr(*e.kids[0]);
    int b = lower_expr(*e.kids[1]);
    if (fp) {
      a = promote(a, lt, Type::Double);
      b = promote(b, rt, Type::Double);
    }
    auto pick = [&](Op int_op, Op flt_op) { return fp ? flt_op : int_op; };
    switch (e.bin) {
      case BinOp::Add: return emit_binop(pick(Op::AddI, Op::AddF), a, b, fp ? IrType::F64 : IrType::I64);
      case BinOp::Sub: return emit_binop(pick(Op::SubI, Op::SubF), a, b, fp ? IrType::F64 : IrType::I64);
      case BinOp::Mul: return emit_binop(pick(Op::MulI, Op::MulF), a, b, fp ? IrType::F64 : IrType::I64);
      case BinOp::Div: return emit_binop(pick(Op::DivI, Op::DivF), a, b, fp ? IrType::F64 : IrType::I64);
      case BinOp::Mod: return emit_binop(Op::ModI, a, b, IrType::I64);
      case BinOp::Lt: return emit_binop(pick(Op::LtI, Op::LtF), a, b, IrType::I64);
      case BinOp::Le: return emit_binop(pick(Op::LeI, Op::LeF), a, b, IrType::I64);
      case BinOp::Gt: return emit_binop(pick(Op::GtI, Op::GtF), a, b, IrType::I64);
      case BinOp::Ge: return emit_binop(pick(Op::GeI, Op::GeF), a, b, IrType::I64);
      case BinOp::Eq: return emit_binop(pick(Op::EqI, Op::EqF), a, b, IrType::I64);
      case BinOp::Ne: return emit_binop(pick(Op::NeI, Op::NeF), a, b, IrType::I64);
      default: throw CompileError(e.line, 1, "internal: unhandled binary op");
    }
  }

  /// Short-circuit && / || with a join register (no phi needed: registers
  /// are frame-scoped).
  int lower_logical(const Expr& e) {
    const int result = fn_.new_reg();
    const int a = lower_expr(*e.kids[0]);
    const int abool = emit_unop(Op::BoolI, a, IrType::I64);
    Instr mov1;
    mov1.op = Op::Mov;
    mov1.dst = result;
    mov1.a = abool;
    mov1.type = IrType::I64;
    emit(std::move(mov1));

    Instr cj;
    cj.op = Op::CJump;
    cj.a = abool;
    const int cj_block = cur_;
    emit(std::move(cj));

    const int eval_rhs = new_block();
    const int b = lower_expr(*e.kids[1]);
    const int bbool = emit_unop(Op::BoolI, b, IrType::I64);
    Instr mov2;
    mov2.op = Op::Mov;
    mov2.dst = result;
    mov2.a = bbool;
    mov2.type = IrType::I64;
    emit(std::move(mov2));
    const int rhs_end = cur_;

    const int join = new_block();
    auto& cjb = fn_.blocks[static_cast<std::size_t>(cj_block)];
    if (!cjb.instrs.empty() && cjb.instrs.back().op == Op::CJump) {
      auto& cjr = cjb.instrs.back();
      if (e.bin == BinOp::And) {
        cjr.t1 = eval_rhs;  // true: need rhs
        cjr.t2 = join;      // false: short-circuit
      } else {
        cjr.t1 = join;      // true: short-circuit
        cjr.t2 = eval_rhs;  // false: need rhs
      }
    }
    patch_jump(rhs_end, join);
    switch_to(join);
    return result;
  }

  int lower_call(const Expr& e) {
    // Resolve the callee signature for argument conversions.
    std::vector<Type> params;
    Type ret = Type::Void;
    if (auto b = minic::find_builtin(e.name)) {
      params = b->params;
      ret = b->ret;
    } else if (const Function* f = prog_.find(e.name)) {
      for (const auto& p : f->params) params.push_back(p.type);
      ret = f->ret;
    } else {
      throw CompileError(e.line, 1, "internal: unknown callee '" + e.name + "'");
    }

    // Instrumentation markers become dedicated opcodes (ids must be
    // literals, which is what the instrumenter generates).
    if (e.name == "dperf_block_begin" || e.name == "dperf_block_end" ||
        e.name == "dperf_iter_mark") {
      if (e.kids[0]->kind != Expr::Kind::IntLit)
        throw CompileError(e.line, 1, e.name + " id must be an integer literal");
      Instr m;
      m.op = e.name == "dperf_block_begin" ? Op::BlockBegin
             : e.name == "dperf_block_end" ? Op::BlockEnd
                                           : Op::IterMark;
      m.imm_i = e.kids[0]->int_lit;
      emit(std::move(m));
      return -1;
    }

    Instr call;
    call.op = Op::Call;
    call.sym = e.name;
    for (std::size_t i = 0; i < e.kids.size(); ++i) {
      if (minic::is_array(params[i])) {
        const Binding& b = lookup(e.kids[i]->name, e.line);
        call.args.push_back(encode_array_arg(b.slot));
      } else {
        int reg = lower_expr(*e.kids[i]);
        reg = promote(reg, e.kids[i]->type, params[i]);
        call.args.push_back(reg);
      }
    }
    if (ret != Type::Void) {
      call.dst = fn_.new_reg();
      call.type = ir_type(ret);
    }
    const int dst = call.dst;
    emit(std::move(call));
    return dst;
  }

  // --- statements ---
  void lower_stmt(const Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::Decl: lower_decl(s); break;
      case Stmt::Kind::Assign: lower_assign(s); break;
      case Stmt::Kind::ExprStmt: lower_expr(*s.value); break;
      case Stmt::Kind::Return: {
        Instr ret;
        ret.op = Op::Ret;
        if (s.value) {
          int reg = lower_expr(*s.value);
          reg = promote(reg, s.value->type, src_.ret);
          ret.a = reg;
        }
        emit(std::move(ret));
        break;
      }
      case Stmt::Kind::Block: {
        push_scope();
        for (const auto& b : s.body) lower_stmt(*b);
        pop_scope();
        break;
      }
      case Stmt::Kind::If: lower_if(s); break;
      case Stmt::Kind::While: lower_while(s); break;
      case Stmt::Kind::For: lower_for(s); break;
    }
  }

  void lower_decl(const Stmt& s) {
    if (minic::is_array(s.decl_type)) {
      const int size = lower_expr(*s.array_size);
      const int slot = static_cast<int>(fn_.arr_slots.size());
      const IrType elem = ir_type(element_type(s.decl_type));
      fn_.arr_slots.push_back(ArrSlot{s.name, elem, false, -1});
      bind(s.name, Binding{true, slot, elem});
      Instr al;
      al.op = Op::AllocArr;
      al.slot = slot;
      al.a = size;
      al.type = elem;
      emit(std::move(al));
      return;
    }
    const int slot = static_cast<int>(fn_.var_slots.size());
    fn_.var_slots.push_back(VarSlot{s.name, ir_type(s.decl_type), false, -1});
    bind(s.name, Binding{false, slot, ir_type(s.decl_type)});
    int reg;
    if (s.init) {
      reg = lower_expr(*s.init);
      reg = promote(reg, s.init->type, s.decl_type);
    } else {
      // Zero-initialize (defined behaviour in MiniC).
      if (s.decl_type == Type::Double) {
        Instr c;
        c.op = Op::ConstF;
        c.dst = fn_.new_reg();
        c.type = IrType::F64;
        reg = c.dst;
        emit(std::move(c));
      } else {
        reg = emit_const_i(0);
      }
    }
    Instr st;
    st.op = Op::StoreVar;
    st.slot = slot;
    st.a = reg;
    st.type = ir_type(s.decl_type);
    emit(std::move(st));
  }

  void lower_assign(const Stmt& s) {
    if (s.lvalue->kind == Expr::Kind::Var) {
      const Binding& b = lookup(s.lvalue->name, s.line);
      int reg = lower_expr(*s.value);
      reg = promote(reg, s.value->type,
                    b.type == IrType::F64 ? Type::Double : Type::Int);
      Instr st;
      st.op = Op::StoreVar;
      st.slot = b.slot;
      st.a = reg;
      st.type = b.type;
      emit(std::move(st));
    } else {
      const Binding& b = lookup(s.lvalue->name, s.line);
      const int idx = lower_expr(*s.lvalue->kids[0]);
      int reg = lower_expr(*s.value);
      reg = promote(reg, s.value->type, b.type == IrType::F64 ? Type::Double : Type::Int);
      Instr st;
      st.op = Op::StoreIdx;
      st.slot = b.slot;
      st.a = idx;
      st.b = reg;
      st.type = b.type;
      emit(std::move(st));
    }
  }

  void lower_if(const Stmt& s) {
    const int cond = lower_expr(*s.cond);
    Instr cj;
    cj.op = Op::CJump;
    cj.a = cond;
    const int cj_block = cur_;
    emit(std::move(cj));

    const int then_block = new_block();
    push_scope();
    for (const auto& b : s.body) lower_stmt(*b);
    pop_scope();
    const int then_end = cur_;

    int else_block = -1, else_end = -1;
    if (!s.else_body.empty()) {
      else_block = new_block();
      push_scope();
      for (const auto& b : s.else_body) lower_stmt(*b);
      pop_scope();
      else_end = cur_;
    }
    const int join = new_block();

    auto& cjb = fn_.blocks[static_cast<std::size_t>(cj_block)];
    if (!cjb.instrs.empty() && cjb.instrs.back().op == Op::CJump) {
      auto& cjr = cjb.instrs.back();
      cjr.t1 = then_block;
      cjr.t2 = else_block >= 0 ? else_block : join;
    }
    patch_jump(then_end, join);
    if (else_end >= 0) patch_jump(else_end, join);
    switch_to(join);
  }

  /// Appends a jump to `target` at the end of `block` unless it already
  /// terminates (e.g. by a return).
  void patch_jump(int block, int target) {
    BasicBlock& b = fn_.blocks[static_cast<std::size_t>(block)];
    if (!b.instrs.empty() && is_terminator(b.instrs.back().op)) return;
    Instr j;
    j.op = Op::Jump;
    j.t1 = target;
    b.instrs.push_back(std::move(j));
  }

  void lower_while(const Stmt& s) {
    const int before = cur_;
    const int head = new_block();
    patch_jump(before, head);
    switch_to(head);
    const int cond = lower_expr(*s.cond);
    Instr cj;
    cj.op = Op::CJump;
    cj.a = cond;
    const int cj_block = cur_;
    emit(std::move(cj));

    const int body = new_block();
    push_scope();
    for (const auto& b : s.body) lower_stmt(*b);
    pop_scope();
    patch_jump(cur_, head);

    const int exit = new_block();
    auto& cjb = fn_.blocks[static_cast<std::size_t>(cj_block)];
    if (!cjb.instrs.empty() && cjb.instrs.back().op == Op::CJump) {
      cjb.instrs.back().t1 = body;
      cjb.instrs.back().t2 = exit;
    }
    switch_to(exit);
  }

  void lower_for(const Stmt& s) {
    push_scope();
    if (s.for_init) lower_stmt(*s.for_init);
    const int before = cur_;
    const int head = new_block();
    patch_jump(before, head);
    switch_to(head);
    int cj_block = -1;
    if (s.cond) {
      const int cond = lower_expr(*s.cond);
      Instr cj;
      cj.op = Op::CJump;
      cj.a = cond;
      cj_block = cur_;
      emit(std::move(cj));
    }
    const int body = new_block();
    push_scope();
    for (const auto& b : s.body) lower_stmt(*b);
    pop_scope();
    if (s.for_step) lower_stmt(*s.for_step);
    patch_jump(cur_, head);
    const int exit = new_block();
    if (cj_block >= 0) {
      auto& cjb = fn_.blocks[static_cast<std::size_t>(cj_block)];
      if (!cjb.instrs.empty() && cjb.instrs.back().op == Op::CJump) {
        cjb.instrs.back().t1 = body;
        cjb.instrs.back().t2 = exit;
      }
    } else {
      patch_jump(head, body);
    }
    pop_scope();
    switch_to(exit);
  }

  const Program& prog_;
  const Function& src_;
  IrFunction fn_;
  int cur_ = 0;
  std::vector<std::map<std::string, Binding>> scopes_;
};

}  // namespace

IrProgram lower(const Program& program) {
  IrProgram out;
  for (const Function& f : program.functions) {
    Lowerer l{program, f};
    out.functions.push_back(l.run());
  }
  return out;
}

}  // namespace pdc::ir
