#include "overlay/overlay.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "obs/trace.hpp"
#include "support/log.hpp"

namespace pdc::overlay {

namespace {

/// Sorted insert keyed by IP; no duplicates (by node).
void sorted_insert(std::vector<TrackerRef>& v, TrackerRef t) {
  for (const TrackerRef& x : v)
    if (x.node == t.node) return;
  v.push_back(t);
  std::sort(v.begin(), v.end(),
            [](const TrackerRef& a, const TrackerRef& b) { return a.ip < b.ip; });
}

}  // namespace

double ctrl_wire_bytes(const OverlayConfig& cfg, const CtrlMsg& m) {
  std::size_t refs = 0;
  if (const auto* r = std::get_if<GetTrackersReply>(&m)) refs = r->trackers.size();
  if (const auto* r = std::get_if<TrackerJoinAck>(&m)) refs = r->neighbors.size();
  if (const auto* r = std::get_if<PeerJoinAck>(&m)) refs = r->tracker_list.size();
  if (const auto* r = std::get_if<PeerListReply>(&m)) refs = r->peers.size();
  if (const auto* r = std::get_if<TrackerListReply>(&m)) refs = r->trackers.size();
  if (const auto* r = std::get_if<NeighborDead>(&m)) refs = r->candidates.size();
  return cfg.ctrl_bytes + cfg.ref_bytes * static_cast<double>(refs);
}

// --- ActorBase --------------------------------------------------------------

ActorBase::ActorBase(Overlay& overlay, NodeIdx host, Ipv4 ip)
    : overlay_(&overlay),
      host_(host),
      ip_(ip),
      main_box_(overlay.engine()),
      rpc_box_(overlay.engine()) {}

// --- Overlay ----------------------------------------------------------------

Overlay::Overlay(sim::Engine& engine, const net::Platform& platform, net::FlowNet& flownet,
                 OverlayConfig config)
    : engine_(&engine), platform_(&platform), net_(&flownet), config_(config) {
  actors_.resize(static_cast<std::size_t>(platform.node_count()));
}

ActorBase* Overlay::actor_at(NodeIdx host) {
  if (host < 0 || static_cast<std::size_t>(host) >= actors_.size()) return nullptr;
  return actors_[static_cast<std::size_t>(host)].get();
}

const ActorBase* Overlay::actor_at(NodeIdx host) const {
  if (host < 0 || static_cast<std::size_t>(host) >= actors_.size()) return nullptr;
  return actors_[static_cast<std::size_t>(host)].get();
}

Overlay::PassivePeer* Overlay::passive_at(NodeIdx host) {
  auto it = std::lower_bound(passive_.begin(), passive_.end(), host,
                             [](const PassivePeer& p, NodeIdx h) { return p.node < h; });
  return it != passive_.end() && it->node == host ? &*it : nullptr;
}

const Overlay::PassivePeer* Overlay::passive_at(NodeIdx host) const {
  return const_cast<Overlay*>(this)->passive_at(host);
}

void Overlay::ensure_host_free(NodeIdx host) const {
  if (host < 0 || static_cast<std::size_t>(host) >= actors_.size())
    throw std::logic_error("overlay: host " + std::to_string(host) +
                           " is not a platform node");
  if (actor_at(host) != nullptr || passive_at(host) != nullptr)
    throw std::logic_error("overlay: host " + std::to_string(host) +
                           " already runs an actor; one actor per host");
}

std::unique_ptr<ActorBase>& Overlay::slot(NodeIdx host) {
  return actors_[static_cast<std::size_t>(host)];
}

ServerActor& Overlay::create_server(NodeIdx host) {
  ensure_host_free(host);
  auto actor = std::make_unique<ServerActor>(*this, host, platform_->node(host).ip);
  ServerActor& ref = *actor;
  server_ = &ref;
  slot(host) = std::move(actor);
  engine_->spawn(ref.run(), "server");
  return ref;
}

TrackerActor& Overlay::create_tracker(NodeIdx host, bool bootstrap_core) {
  ensure_host_free(host);
  auto actor = std::make_unique<TrackerActor>(*this, host, platform_->node(host).ip,
                                              bootstrap_core);
  TrackerActor& ref = *actor;
  slot(host) = std::move(actor);
  tracker_ptrs_.push_back(&ref);
  engine_->spawn(ref.run(), "tracker@" + platform_->node(host).name);
  return ref;
}

PeerActor& Overlay::create_peer(NodeIdx host, PeerResources res) {
  ensure_host_free(host);
  auto actor = std::make_unique<PeerActor>(*this, host, platform_->node(host).ip, res);
  PeerActor& ref = *actor;
  slot(host) = std::move(actor);
  peer_ptrs_.push_back(&ref);
  engine_->spawn(ref.run(), "peer@" + platform_->node(host).name);
  return ref;
}

bool Overlay::register_passive_peer(NodeIdx host, PeerResources res) {
  ensure_host_free(host);
  const Ipv4 ip = platform_->node(host).ip;
  TrackerActor* best = nullptr;
  for (TrackerActor* t : tracker_ptrs_) {
    if (!t->alive()) continue;
    if (best == nullptr || closer_to(ip, t->ip(), best->ip())) best = t;
  }
  if (best == nullptr) return false;
  best->install_persistent_peer(PeerRef{host, ip, res});
  PassivePeer pp;
  pp.node = host;
  pp.tracker = best->host();
  auto it = std::lower_bound(passive_.begin(), passive_.end(), host,
                             [](const PassivePeer& p, NodeIdx h) { return p.node < h; });
  passive_.insert(it, pp);
  return true;
}

bool Overlay::peer_alive(NodeIdx host) const {
  if (const ActorBase* a = actor_at(host))
    return a->alive() && dynamic_cast<const PeerActor*>(a) != nullptr;
  const PassivePeer* pp = passive_at(host);
  return pp != nullptr && !pp->dead;
}

bool Overlay::is_passive_peer(NodeIdx host) const { return passive_at(host) != nullptr; }

bool Overlay::crash_passive_peer(NodeIdx host) {
  PassivePeer* pp = passive_at(host);
  if (pp == nullptr || pp->dead) return pp != nullptr;
  pp->dead = true;
  pp->busy = false;
  pp->reserved_by = -1;
  if (TrackerActor* t = tracker_at(pp->tracker)) t->make_peer_transient(host);
  return true;
}

void Overlay::finish_bootstrap() {
  std::vector<TrackerActor*> cores;
  for (TrackerActor* t : tracker_ptrs_)
    if (t->bootstrap_core_) cores.push_back(t);
  std::sort(cores.begin(), cores.end(),
            [](const TrackerActor* a, const TrackerActor* b) { return a->ip() < b->ip(); });
  core_trackers_.clear();
  for (TrackerActor* t : cores) core_trackers_.push_back(TrackerRef{t->host(), t->ip()});
  const int half = config_.neighbor_set_size / 2;
  for (std::size_t i = 0; i < cores.size(); ++i) {
    std::vector<TrackerRef> n;
    for (int d = 1; d <= half; ++d) {
      if (static_cast<int>(i) - d >= 0) sorted_insert(n, core_trackers_[i - static_cast<std::size_t>(d)]);
      if (i + static_cast<std::size_t>(d) < cores.size()) sorted_insert(n, core_trackers_[i + static_cast<std::size_t>(d)]);
    }
    cores[i]->bootstrap_neighbors(std::move(n));
    if (server_) server_->register_core_tracker(core_trackers_[i]);
  }
}

void Overlay::send_ctrl(NodeIdx from, NodeIdx to, CtrlMsg msg) {
  ++ctrl_messages_;
  const double bytes = ctrl_wire_bytes(config_, msg);
  // The moved-from CtrlMsg capture is the largest closure the hot control
  // plane schedules; it must keep fitting the event kernel's inline buffer
  // (EventFn::kInlineSize was sized for exactly this) or every control
  // message would silently fall back to the slab. A variant alternative
  // growing past the budget should carry its payload behind a pointer.
  static_assert(sizeof(CtrlMsg) + sizeof(void*) + sizeof(NodeIdx) <=
                sim::EventFn::kInlineSize);
  if (from == to) {
    engine_->post([this, to, m = std::move(msg)]() mutable { deliver(to, std::move(m)); });
    return;
  }
  net_->start_flow(from, to, bytes,
                   [this, to, m = std::move(msg)]() mutable { deliver(to, std::move(m)); });
}

void Overlay::deliver(NodeIdx to, CtrlMsg msg) {
  ActorBase* actor = actor_at(to);
  if (actor == nullptr) {
    if (PassivePeer* pp = passive_at(to); pp != nullptr && !pp->dead)
      deliver_passive(*pp, msg);
    return;  // nothing at this node: message lost
  }
  if (!actor->alive_) return;  // crashed or stopped: message lost
  (is_rpc_reply(msg) ? actor->rpc_box_ : actor->main_box_).push(std::move(msg));
}

void Overlay::deliver_passive(PassivePeer& pp, CtrlMsg& msg) {
  if (auto* res = std::get_if<ReserveReq>(&msg)) {
    const bool ok = !pp.busy;
    if (ok) {
      pp.busy = true;
      pp.reserved_by = res->submitter;
      if (pp.tracker >= 0) send_ctrl(pp.node, pp.tracker, PeerBusyNotice{pp.node, true});
    }
    send_ctrl(pp.node, res->submitter, ReserveAck{pp.node, ok, res->ticket});
  } else if (auto* rel = std::get_if<ReleaseReq>(&msg)) {
    if (pp.busy && rel->submitter == pp.reserved_by) {
      pp.busy = false;
      pp.reserved_by = -1;
      if (pp.tracker >= 0) send_ctrl(pp.node, pp.tracker, PeerBusyNotice{pp.node, false});
    }
  }
  // Anything else (acks, lists, state traffic) has no passive-side state to
  // act on: dropped, like a message to an empty node.
}

TrackerActor* Overlay::tracker_at(NodeIdx host) {
  return dynamic_cast<TrackerActor*>(actor_at(host));
}

PeerActor* Overlay::peer_at(NodeIdx host) {
  return dynamic_cast<PeerActor*>(actor_at(host));
}

void Overlay::shutdown() {
  for (auto& actor : actors_)
    if (actor) actor->stop();
}

// --- ServerActor -------------------------------------------------------------

sim::Process ServerActor::run() {
  while (alive_) {
    auto msg = co_await main_box_.recv_for(overlay_->config().heartbeat_period);
    if (!alive_) break;
    if (msg) handle(std::move(*msg));
  }
}

void ServerActor::handle(CtrlMsg msg) {
  if (auto* req = std::get_if<GetTrackersReq>(&msg)) {
    // Reply with trackers sorted by proximity to the requester, if the
    // requester's IP is known; otherwise registry order.
    std::vector<TrackerRef> list = trackers_;
    const Ipv4 req_ip = overlay_->platform().node(req->from).ip;
    std::sort(list.begin(), list.end(), [&](const TrackerRef& a, const TrackerRef& b) {
      return closer_to(req_ip, a.ip, b.ip);
    });
    overlay_->send_ctrl(host_, req->from, GetTrackersReply{std::move(list)});
  } else if (auto* reg = std::get_if<TrackerRegister>(&msg)) {
    sorted_insert(trackers_, reg->tracker);
  } else if (auto* dead = std::get_if<TrackerDeadNotice>(&msg)) {
    std::erase_if(trackers_, [&](const TrackerRef& t) { return t.node == dead->dead; });
    stats_.erase(dead->dead);
  } else if (auto* st = std::get_if<ZoneStats>(&msg)) {
    stats_[st->tracker] = *st;
  }
}

// --- TrackerActor ------------------------------------------------------------

void TrackerActor::bootstrap_neighbors(std::vector<TrackerRef> neighbors) {
  neighbors_ = std::move(neighbors);
  joined_ = true;
}

std::optional<TrackerRef> TrackerActor::left_neighbor() const {
  std::optional<TrackerRef> best;
  for (const TrackerRef& t : neighbors_)
    if (t.ip < ip_ && (!best || t.ip > best->ip)) best = t;
  return best;
}

std::optional<TrackerRef> TrackerActor::right_neighbor() const {
  std::optional<TrackerRef> best;
  for (const TrackerRef& t : neighbors_)
    if (t.ip > ip_ && (!best || t.ip < best->ip)) best = t;
  return best;
}

void TrackerActor::insert_neighbor(TrackerRef t) {
  if (t.node == host_) return;
  sorted_insert(neighbors_, t);
  trim_neighbors();
}

void TrackerActor::remove_neighbor(NodeIdx node) {
  std::erase_if(neighbors_, [&](const TrackerRef& t) { return t.node == node; });
  neighbor_last_seen_.erase(node);
}

void TrackerActor::trim_neighbors() {
  // Keep the |N|/2 closest trackers on each side (paper §III-A.1).
  const int half = overlay_->config().neighbor_set_size / 2;
  std::vector<TrackerRef> below, above;
  for (const TrackerRef& t : neighbors_) (t.ip < ip_ ? below : above).push_back(t);
  // `below` sorted ascending: closest are at the back. `above`: at the front.
  if (static_cast<int>(below.size()) > half)
    below.erase(below.begin(), below.end() - half);
  if (static_cast<int>(above.size()) > half)
    above.resize(static_cast<std::size_t>(half));
  neighbors_.clear();
  for (const TrackerRef& t : below) neighbors_.push_back(t);
  for (const TrackerRef& t : above) neighbors_.push_back(t);
}

TrackerRef TrackerActor::closest_known(Ipv4 target) const {
  TrackerRef best{host_, ip_};
  for (const TrackerRef& t : neighbors_) {
    if (t.ip == target) continue;  // never route back to the subject itself
    if (closer_to(target, t.ip, best.ip)) best = t;
  }
  return best;
}

std::vector<TrackerRef> TrackerActor::neighbors_for(Ipv4 joiner) const {
  // Build the joiner's initial neighbour set from our set plus ourselves:
  // up to |N|/2 closest on each side of the joiner.
  const int half = overlay_->config().neighbor_set_size / 2;
  std::vector<TrackerRef> below, above;
  auto consider = [&](TrackerRef t) {
    if (t.ip == joiner) return;
    (t.ip < joiner ? below : above).push_back(t);
  };
  for (const TrackerRef& t : neighbors_) consider(t);
  consider(TrackerRef{host_, ip_});
  std::sort(below.begin(), below.end(),
            [](const TrackerRef& a, const TrackerRef& b) { return a.ip < b.ip; });
  std::sort(above.begin(), above.end(),
            [](const TrackerRef& a, const TrackerRef& b) { return a.ip < b.ip; });
  std::vector<TrackerRef> out;
  for (std::size_t i = below.size() > static_cast<std::size_t>(half)
                           ? below.size() - static_cast<std::size_t>(half)
                           : 0;
       i < below.size(); ++i)
    out.push_back(below[i]);
  for (std::size_t i = 0; i < above.size() && i < static_cast<std::size_t>(half); ++i)
    out.push_back(above[i]);
  return out;
}

sim::Process TrackerActor::run() {
  if (bootstrap_core_) {
    joined_ = true;
  } else {
    co_await join_overlay();
  }
  const OverlayConfig& cfg = overlay_->config();
  next_heartbeat_ = overlay_->engine().now() + cfg.heartbeat_period;
  next_stats_ = overlay_->engine().now() + cfg.stats_period;
  while (alive_) {
    const Time now0 = overlay_->engine().now();
    const Time wake = std::min(next_heartbeat_, next_stats_);
    auto msg = co_await main_box_.recv_for(std::max(0.0, wake - now0));
    if (!alive_) break;
    if (msg) handle(std::move(*msg));
    const Time now = overlay_->engine().now();
    if (now >= next_heartbeat_) {
      send_heartbeats();
      detect_dead_neighbors();
      expire_stale_peers();
      next_heartbeat_ = now + cfg.heartbeat_period;
    }
    if (now >= next_stats_) {
      report_stats();
      next_stats_ = now + cfg.stats_period;
    }
  }
}

sim::Task<void> TrackerActor::join_overlay() {
  const OverlayConfig& cfg = overlay_->config();
  std::vector<TrackerRef> candidates = overlay_->install_tracker_list();
  std::sort(candidates.begin(), candidates.end(), [&](const TrackerRef& a, const TrackerRef& b) {
    return closer_to(ip_, a.ip, b.ip);
  });
  for (int attempt = 0; attempt < 3 && !joined_; ++attempt) {
    for (const TrackerRef& t : candidates) {
      if (t.node == host_) continue;
      overlay_->send_ctrl(host_, t.node, TrackerJoinReq{TrackerRef{host_, ip_}});
      auto reply = co_await rpc_box_.recv_for(cfg.rpc_timeout);
      if (!reply) continue;  // no answer: try next closest (paper §III-A.4)
      if (auto* ack = std::get_if<TrackerJoinAck>(&*reply)) {
        for (const TrackerRef& n : ack->neighbors) insert_neighbor(n);
        insert_neighbor(ack->accepter);
        joined_ = true;
        if (overlay_->server_host() >= 0)
          overlay_->send_ctrl(host_, overlay_->server_host(),
                              TrackerRegister{TrackerRef{host_, ip_}});
        co_return;
      }
    }
    // All known trackers unresponsive: ask the server for a fresh list.
    if (overlay_->server_host() >= 0) {
      overlay_->send_ctrl(host_, overlay_->server_host(), GetTrackersReq{host_});
      auto reply = co_await rpc_box_.recv_for(cfg.rpc_timeout);
      if (reply) {
        if (auto* list = std::get_if<GetTrackersReply>(&*reply)) {
          candidates = list->trackers;
          std::sort(candidates.begin(), candidates.end(),
                    [&](const TrackerRef& a, const TrackerRef& b) {
                      return closer_to(ip_, a.ip, b.ip);
                    });
        }
      }
    }
  }
  // Completely alone (e.g. very first volunteer while the cores are down):
  // become a joined singleton; future joiners will find us via the server.
  joined_ = true;
  if (overlay_->server_host() >= 0)
    overlay_->send_ctrl(host_, overlay_->server_host(),
                        TrackerRegister{TrackerRef{host_, ip_}});
}

void TrackerActor::handle(CtrlMsg msg) {
  const OverlayConfig& cfg = overlay_->config();
  if (auto* join = std::get_if<TrackerJoinReq>(&msg)) {
    const TrackerRef closest = closest_known(join->joiner.ip);
    if (closest.node != host_) {
      overlay_->send_ctrl(host_, closest.node, *join);  // greedy forwarding
      return;
    }
    // We are the closest tracker: accept (paper §III-A.4).
    std::vector<TrackerRef> for_joiner = neighbors_for(join->joiner.ip);
    for (const TrackerRef& n : neighbors_)
      overlay_->send_ctrl(host_, n.node, NeighborAdd{join->joiner});
    insert_neighbor(join->joiner);
    overlay_->send_ctrl(host_, join->joiner.node,
                        TrackerJoinAck{TrackerRef{host_, ip_}, std::move(for_joiner)});
  } else if (auto* add = std::get_if<NeighborAdd>(&msg)) {
    insert_neighbor(add->tracker);
  } else if (auto* dead = std::get_if<NeighborDead>(&msg)) {
    remove_neighbor(dead->dead);
    for (const TrackerRef& c : dead->candidates) insert_neighbor(c);
  } else if (auto* hb = std::get_if<TrackerHeartbeat>(&msg)) {
    neighbor_last_seen_[hb->from] = overlay_->engine().now();
  } else if (auto* pj = std::get_if<PeerJoinReq>(&msg)) {
    const TrackerRef closest = closest_known(pj->ip);
    if (closest.node != host_) {
      overlay_->send_ctrl(host_, closest.node, *pj);
      return;
    }
    ZonePeer& entry = upsert_transient(pj->peer);
    entry.peer = PeerRef{pj->peer, pj->ip, pj->res};
    entry.busy = false;
    entry.last_update = overlay_->engine().now();
    std::vector<TrackerRef> list = neighbors_;
    sorted_insert(list, TrackerRef{host_, ip_});
    overlay_->send_ctrl(host_, pj->peer, PeerJoinAck{TrackerRef{host_, ip_}, std::move(list)});
  } else if (auto* su = std::get_if<StateUpdate>(&msg)) {
    ZonePeer& entry = upsert_transient(su->peer);
    entry.peer.node = su->peer;
    entry.peer.res = su->res;
    entry.peer.ip = overlay_->platform().node(su->peer).ip;
    entry.last_update = overlay_->engine().now();
    overlay_->send_ctrl(host_, su->peer, StateAck{host_});
  } else if (auto* bn = std::get_if<PeerBusyNotice>(&msg)) {
    auto it = zone_.find(bn->peer);
    if (it != zone_.end()) it->second.busy = bn->busy;
  } else if (auto* pr = std::get_if<PeerRequest>(&msg)) {
    // Filter connected peers in the zone that satisfy the request
    // (paper §III-B).
    std::vector<PeerRef> result;
    for (const auto& [node, zp] : zone_) {
      if (static_cast<int>(result.size()) >= pr->max_peers) break;
      if (node == pr->submitter || zp.busy) continue;
      if (zp.peer.res.cpu_hz < pr->req.min_cpu_hz) continue;
      result.push_back(zp.peer);
    }
    overlay_->send_ctrl(host_, pr->submitter, PeerListReply{host_, std::move(result)});
  } else if (auto* tlr = std::get_if<TrackerListReq>(&msg)) {
    std::vector<TrackerRef> result;
    for (const TrackerRef& t : neighbors_)
      if (tlr->side_greater ? t.ip > ip_ : t.ip < ip_) result.push_back(t);
    overlay_->send_ctrl(host_, tlr->from, TrackerListReply{std::move(result)});
  }
  (void)cfg;
}

void TrackerActor::send_heartbeats() {
  for (const auto& n : {left_neighbor(), right_neighbor()})
    if (n) overlay_->send_ctrl(host_, n->node, TrackerHeartbeat{host_});
}

void TrackerActor::detect_dead_neighbors() {
  const Time now = overlay_->engine().now();
  const Time timeout = overlay_->config().fail_timeout;
  for (const auto& n : {left_neighbor(), right_neighbor()}) {
    if (!n) continue;
    auto [it, fresh] = neighbor_last_seen_.try_emplace(n->node, now);  // grace period
    if (fresh) continue;
    if (now - it->second <= timeout) continue;
    // Direct neighbour crashed (paper §III-A.5): drop it, tell the server,
    // and send our opposite-side trackers to everyone on the dead node's
    // side so they can rebuild their sets.
    const NodeIdx dead = n->node;
    const bool dead_was_right = n->ip > ip_;
    remove_neighbor(dead);
    if (overlay_->server_host() >= 0)
      overlay_->send_ctrl(host_, overlay_->server_host(), TrackerDeadNotice{dead, host_});
    std::vector<TrackerRef> replacements;
    for (const TrackerRef& t : neighbors_)
      if (dead_was_right ? t.ip > ip_ : t.ip < ip_) replacements.push_back(t);
    replacements.push_back(TrackerRef{host_, ip_});
    for (const TrackerRef& t : neighbors_)
      overlay_->send_ctrl(host_, t.node, NeighborDead{dead, replacements});
    // Establish the new direct connection across the gap.
    if (auto bridge = dead_was_right ? right_neighbor() : left_neighbor()) {
      neighbor_last_seen_[bridge->node] = now;
      overlay_->send_ctrl(host_, bridge->node, TrackerHeartbeat{host_});
      overlay_->send_ctrl(host_, bridge->node, NeighborAdd{TrackerRef{host_, ip_}});
    }
  }
}

void TrackerActor::expire_stale_peers() {
  // Passive (persistent) entries send no updates and never go stale; the
  // scan is skipped entirely while nothing transient is in the zone, which
  // keeps the heartbeat O(1) on a million-peer platform.
  if (transient_ == 0) return;
  const Time now = overlay_->engine().now();
  const Time timeout = overlay_->config().fail_timeout;
  // Paper §III-A.7: no state update for time T -> peer considered gone.
  transient_ -= zone_.erase_if([&](const auto& kv) {
    return !kv.second.persistent && now - kv.second.last_update > timeout;
  });
}

ZonePeer& TrackerActor::upsert_transient(NodeIdx node) {
  auto [it, fresh] = zone_.try_emplace(node);
  if (fresh) ++transient_;
  return it->second;
}

void TrackerActor::install_persistent_peer(PeerRef peer) {
  auto [it, fresh] = zone_.try_emplace(peer.node);
  if (!fresh && !it->second.persistent) --transient_;
  it->second.peer = peer;
  it->second.busy = false;
  it->second.last_update = overlay_->engine().now();
  it->second.persistent = true;
}

void TrackerActor::make_peer_transient(NodeIdx node) {
  auto it = zone_.find(node);
  if (it == zone_.end() || !it->second.persistent) return;
  it->second.persistent = false;
  ++transient_;
}

void TrackerActor::report_stats() {
  if (overlay_->server_host() < 0) return;
  ZoneStats st;
  st.tracker = host_;
  st.peers = static_cast<int>(zone_.size());
  for (const auto& [node, zp] : zone_) {
    if (zp.busy) ++st.busy;
    st.donated_cpu_hz += zp.peer.res.cpu_hz;
  }
  overlay_->send_ctrl(host_, overlay_->server_host(), st);
}

// --- PeerActor ---------------------------------------------------------------

sim::Process PeerActor::run() {
  co_await join_overlay();
  const OverlayConfig& cfg = overlay_->config();
  Time next_update = overlay_->engine().now() + cfg.update_period;
  while (alive_) {
    const Time now0 = overlay_->engine().now();
    auto msg = co_await main_box_.recv_for(std::max(0.0, next_update - now0));
    if (!alive_) break;
    if (msg) handle(std::move(*msg));
    const Time now = overlay_->engine().now();
    if (now >= next_update) {
      if (joined()) overlay_->send_ctrl(host_, tracker_.node, StateUpdate{host_, res_});
      next_update = now + cfg.update_period;
      if (joined() && now - last_ack_ > cfg.fail_timeout) {
        // Paper §III-A.7: no answers from the tracker after time T ->
        // tracker considered disconnected; join a neighbour zone.
        std::erase_if(tracker_list_,
                      [&](const TrackerRef& t) { return t.node == tracker_.node; });
        tracker_ = TrackerRef{-1, Ipv4{}};
        ++rejoins_;
        if (obs::TraceRecorder* tr = obs::trace(); tr != nullptr)
          tr->instant(tr->track("peer/" + std::to_string(host_)), "rejoin",
                      overlay_->engine().now(), {{"host", host_}});
        co_await join_overlay();
      }
    }
  }
}

sim::Task<std::optional<CtrlMsg>> PeerActor::rpc(NodeIdx to, CtrlMsg msg) {
  overlay_->send_ctrl(host_, to, std::move(msg));
  auto reply = co_await rpc_box_.recv_for(overlay_->config().rpc_timeout);
  co_return reply;
}

sim::Task<void> PeerActor::join_overlay() {
  const OverlayConfig& cfg = overlay_->config();
  if (tracker_list_.empty()) tracker_list_ = overlay_->install_tracker_list();
  for (int attempt = 0; attempt < 4; ++attempt) {
    std::vector<TrackerRef> candidates = tracker_list_;
    std::sort(candidates.begin(), candidates.end(),
              [&](const TrackerRef& a, const TrackerRef& b) {
                return closer_to(ip_, a.ip, b.ip);
              });
    for (const TrackerRef& t : candidates) {
      auto reply = co_await rpc(t.node, PeerJoinReq{host_, ip_, res_});
      if (!reply) continue;
      if (auto* ack = std::get_if<PeerJoinAck>(&*reply)) {
        tracker_ = ack->tracker;
        for (const TrackerRef& n : ack->tracker_list) sorted_insert(tracker_list_, n);
        last_ack_ = overlay_->engine().now();
        co_return;
      }
    }
    // All trackers in local memory unresponsive: fall back to the server.
    if (overlay_->server_host() >= 0) {
      auto reply = co_await rpc(overlay_->server_host(), GetTrackersReq{host_});
      if (reply) {
        if (auto* list = std::get_if<GetTrackersReply>(&*reply))
          for (const TrackerRef& t : list->trackers) sorted_insert(tracker_list_, t);
      }
    }
    co_await overlay_->engine().sleep(cfg.rpc_timeout);
  }
}

void PeerActor::handle(CtrlMsg msg) {
  if (auto* ack = std::get_if<StateAck>(&msg)) {
    (void)ack;
    last_ack_ = overlay_->engine().now();
  } else if (auto* res = std::get_if<ReserveReq>(&msg)) {
    const bool ok = !busy_;
    if (ok) {
      busy_ = true;
      reserved_by_ = res->submitter;
      if (joined()) overlay_->send_ctrl(host_, tracker_.node, PeerBusyNotice{host_, true});
    }
    overlay_->send_ctrl(host_, res->submitter, ReserveAck{host_, ok, res->ticket});
  } else if (auto* rel = std::get_if<ReleaseReq>(&msg)) {
    if (busy_ && rel->submitter == reserved_by_) release();
  }
}

void PeerActor::release() {
  busy_ = false;
  reserved_by_ = -1;
  if (joined()) overlay_->send_ctrl(host_, tracker_.node, PeerBusyNotice{host_, false});
}

sim::Task<std::vector<PeerRef>> PeerActor::collect_peers(int wanted, Requirements req,
                                                         std::uint64_t ticket) {
  std::vector<PeerRef> candidates;
  std::vector<NodeIdx> asked;
  std::vector<TrackerRef> known = tracker_list_;
  if (joined()) sorted_insert(known, tracker_);

  // Candidate dedup must stay O(1) per reply entry: at scale one tracker
  // reply can carry thousands of peers, and the old linear rescan made
  // collection quadratic in the reply volume.
  std::unordered_set<NodeIdx> seen{host_};
  auto was_asked = [&](NodeIdx n) {
    return std::find(asked.begin(), asked.end(), n) != asked.end();
  };

  // Asks one tracker for peers; appends fresh candidates.
  auto ask = [&](TrackerRef t) -> sim::Task<void> {
    asked.push_back(t.node);
    auto reply = co_await rpc(t.node, PeerRequest{host_, req, wanted * 2});
    if (!reply) co_return;
    if (auto* r = std::get_if<PeerListReply>(&*reply))
      for (const PeerRef& p : r->peers)
        if (seen.insert(p.node).second) candidates.push_back(p);
  };

  // 1. Own tracker first, then every tracker in the local list by proximity.
  if (joined()) co_await ask(tracker_);
  std::vector<TrackerRef> ordered = known;
  std::sort(ordered.begin(), ordered.end(), [&](const TrackerRef& a, const TrackerRef& b) {
    return closer_to(ip_, a.ip, b.ip);
  });
  for (const TrackerRef& t : ordered) {
    if (static_cast<int>(candidates.size()) >= wanted) break;
    if (!was_asked(t.node)) co_await ask(t);
  }

  // 2. Expand outward through the farthest trackers on both sides until
  //    enough candidates are collected or the line is exhausted.
  while (static_cast<int>(candidates.size()) < wanted) {
    std::vector<TrackerRef> fresh;
    for (bool side_greater : {false, true}) {
      TrackerRef farthest{-1, Ipv4{}};
      for (const TrackerRef& t : known) {
        if (side_greater ? t.ip <= ip_ : t.ip >= ip_) continue;
        if (farthest.node < 0 || (side_greater ? t.ip > farthest.ip : t.ip < farthest.ip))
          farthest = t;
      }
      if (farthest.node < 0) continue;
      auto reply = co_await rpc(farthest.node, TrackerListReq{host_, ip_, side_greater});
      if (!reply) continue;
      if (auto* r = std::get_if<TrackerListReply>(&*reply)) {
        for (const TrackerRef& t : r->trackers) {
          const bool is_known = std::any_of(known.begin(), known.end(), [&](const TrackerRef& k) {
            return k.node == t.node;
          });
          if (!is_known) {
            sorted_insert(known, t);
            fresh.push_back(t);
          }
        }
      }
    }
    if (fresh.empty()) break;  // line exhausted
    for (const TrackerRef& t : fresh) {
      if (static_cast<int>(candidates.size()) >= wanted) break;
      if (!was_asked(t.node)) co_await ask(t);
    }
  }

  // 3. Reserve: peers answer busy/free; keep the first `wanted` confirmed.
  std::vector<PeerRef> reserved;
  for (const PeerRef& p : candidates) {
    if (static_cast<int>(reserved.size()) >= wanted) break;
    obs::TraceRecorder* tr = obs::trace();
    if (tr != nullptr)
      tr->async_begin(tr->track("peer/" + std::to_string(host_)), "reserve", "reserve",
                      static_cast<std::uint64_t>(p.node), overlay_->engine().now(),
                      {{"target", p.node}});
    auto reply = co_await rpc(p.node, ReserveReq{host_, ticket});
    bool ok = false;
    if (reply)
      if (auto* ack = std::get_if<ReserveAck>(&*reply))
        if (ack->ok && ack->ticket == ticket) {
          reserved.push_back(p);
          ok = true;
        }
    // The recorder (if any) is per-run and outlives this coroutine; re-read
    // it anyway so a scope torn down mid-await cannot leave a dangling use.
    if ((tr = obs::trace()) != nullptr) {
      const obs::TrackId t = tr->track("peer/" + std::to_string(host_));
      tr->async_end(t, "reserve", "reserve", static_cast<std::uint64_t>(p.node),
                    overlay_->engine().now());
      if (!ok)
        tr->instant(t, "reserve-miss", overlay_->engine().now(), {{"target", p.node}});
    }
  }
  co_return reserved;
}

}  // namespace pdc::overlay
