#include "obs/metrics.hpp"

#include <algorithm>

#include "support/json.hpp"

namespace pdc::obs {

namespace {

std::vector<double> default_latency_bounds() {
  std::vector<double> bounds;
  for (double b = 1e-6; b < 150.0; b *= 2) bounds.push_back(b);
  return bounds;
}

}  // namespace

Histogram::Histogram() : Histogram(default_latency_bounds()) {}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += v;
  if (count_ == 1) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double rank = p * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const auto before = static_cast<double>(seen);
    seen += counts_[i];
    if (static_cast<double>(seen) < rank) continue;
    // Interpolate inside bucket i between its lower and upper edge; the
    // overflow bucket and the extremes clamp to the observed min/max.
    const double lo = i == 0 ? min_ : bounds_[i - 1];
    const double hi = i < bounds_.size() ? bounds_[i] : max_;
    const double frac =
        counts_[i] ? (rank - before) / static_cast<double>(counts_[i]) : 0.0;
    const double v = lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    return std::clamp(v, min_, max_);
  }
  return max_;
}

Metric& Registry::intern(MetricKind kind, std::string_view group,
                         std::string_view name, std::string_view help,
                         std::vector<Label> labels) {
  for (const auto& m : metrics_) {
    if (m->kind == kind && m->group == group && m->name == name &&
        m->labels.size() == labels.size() &&
        std::equal(m->labels.begin(), m->labels.end(), labels.begin(),
                   [](const Label& a, const Label& b) {
                     return a.key == b.key && a.value == b.value;
                   }))
      return *m;
  }
  auto m = std::make_unique<Metric>();
  m->kind = kind;
  m->group = group;
  m->name = name;
  m->prom_name = std::string(group) + "_" + std::string(name);
  m->help = help;
  m->labels = std::move(labels);
  metrics_.push_back(std::move(m));
  return *metrics_.back();
}

Counter Registry::counter(std::string_view group, std::string_view name,
                          std::string_view help, std::vector<Label> labels) {
  return Counter{&intern(MetricKind::Counter, group, name, help, std::move(labels))};
}

Gauge Registry::gauge(std::string_view group, std::string_view name,
                      std::string_view help, std::vector<Label> labels) {
  return Gauge{&intern(MetricKind::Gauge, group, name, help, std::move(labels))};
}

Histogram& Registry::histogram(std::string_view group, std::string_view name,
                               std::string_view help, std::vector<Label> labels,
                               std::vector<double> bounds) {
  Metric& m = intern(MetricKind::Histogram, group, name, help, std::move(labels));
  if (!m.hist)
    m.hist = bounds.empty() ? std::make_unique<Histogram>()
                            : std::make_unique<Histogram>(std::move(bounds));
  return *m.hist;
}

void Registry::rename_prom(std::string_view prom_name) {
  if (!metrics_.empty()) metrics_.back()->prom_name = prom_name;
}

void Registry::json_fields(JsonWriter& w, std::string_view group) const {
  for (const auto& m : metrics_) {
    if (m->group != group || m->kind == MetricKind::Histogram) continue;
    if (m->floating)
      w.kv(m->name, m->f);
    else
      w.kv(m->name, m->u);
  }
}

namespace {

std::string prom_number(double v) { return format_shortest(v); }

std::string prom_labels(const std::vector<Label>& labels,
                        const char* extra_key = nullptr,
                        const std::string& extra_value = {}) {
  if (labels.empty() && extra_key == nullptr) return {};
  std::string out = "{";
  bool first = true;
  for (const Label& l : labels) {
    if (!first) out += ",";
    first = false;
    out += l.key + "=\"" + l.value + "\"";
  }
  if (extra_key != nullptr) {
    if (!first) out += ",";
    out += std::string(extra_key) + "=\"" + extra_value + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

std::string Registry::render_prometheus(std::string_view prefix) const {
  std::string out;
  std::vector<const std::string*> typed;  // HELP/TYPE once per family name
  for (const auto& m : metrics_) {
    std::string name = std::string(prefix) + m->prom_name;
    if (m->kind == MetricKind::Counter) {
      const bool suffixed =
          name.size() >= 6 && name.compare(name.size() - 6, 6, "_total") == 0;
      if (!suffixed) name += "_total";
    }
    const bool seen = std::any_of(typed.begin(), typed.end(),
                                  [&](const std::string* n) { return *n == m->prom_name; });
    if (!seen) {
      typed.push_back(&m->prom_name);
      if (!m->help.empty()) out += "# HELP " + name + " " + m->help + "\n";
      out += "# TYPE " + name + " ";
      switch (m->kind) {
        case MetricKind::Counter: out += "counter\n"; break;
        case MetricKind::Gauge: out += "gauge\n"; break;
        case MetricKind::Histogram: out += "histogram\n"; break;
      }
    }
    if (m->kind == MetricKind::Histogram) {
      const Histogram& h = *m->hist;
      std::uint64_t cum = 0;
      for (std::size_t i = 0; i < h.bounds().size(); ++i) {
        cum += h.bucket_counts()[i];
        out += name + "_bucket" +
               prom_labels(m->labels, "le", prom_number(h.bounds()[i])) + " " +
               std::to_string(cum) + "\n";
      }
      out += name + "_bucket" + prom_labels(m->labels, "le", "+Inf") + " " +
             std::to_string(h.count()) + "\n";
      out += name + "_sum" + prom_labels(m->labels) + " " + prom_number(h.sum()) + "\n";
      out += name + "_count" + prom_labels(m->labels) + " " +
             std::to_string(h.count()) + "\n";
    } else {
      out += name + prom_labels(m->labels) + " " +
             (m->floating ? prom_number(m->f) : std::to_string(m->u)) + "\n";
    }
  }
  return out;
}

}  // namespace pdc::obs
