// Compact per-iteration trace summaries: the input to the analytic planner
// (ROADMAP item 3). A dPerf trace is collapsed once into its pre-loop events
// plus run-length-encoded iteration bodies — extrapolated traces, whose
// steady chunks are literal copies, compress to a handful of blocks — and a
// set of aggregates (compute work, span, per-peer send volume, collective
// count) that campaigns and tools can inspect without replaying anything.
#pragma once

#include <cstdint>
#include <vector>

#include "dperf/trace.hpp"

namespace pdc::dperf {

/// One run of identical iteration bodies. `ops` holds the events of a single
/// iteration with the IterMark stripped (marker ids differ per iteration and
/// carry no cost, so dropping them is what makes bodies comparable).
struct IterBlock {
  std::vector<TraceEvent> ops;
  std::uint64_t repeats = 1;
};

/// Outbound volume toward one peer rank.
struct PeerVolume {
  double bytes = 0;
  std::uint64_t count = 0;
};

struct TraceSummary {
  int rank = 0;
  int nprocs = 1;
  double host_hz = 3e9;

  /// Events before the first iteration marker (setup, first sends).
  std::vector<TraceEvent> pre;
  /// RLE-compressed iteration bodies. Iteration i spans [marker_i,
  /// marker_{i+1}); the final block additionally holds everything after the
  /// last marker (the closing iteration plus post-loop events).
  std::vector<IterBlock> blocks;

  // Aggregates over the whole trace.
  std::uint64_t iterations = 0;        // number of iteration markers
  std::uint64_t total_compute_ns = 0;  // pre + all iterations
  std::uint64_t span_ns = 0;           // max single-iteration compute
  std::uint64_t collectives = 0;       // allreduce count
  std::vector<PeerVolume> send_to;     // indexed by peer rank, size nprocs

  /// Expanded operation count (pre + sum over blocks of ops * repeats).
  std::uint64_t op_count() const;
};

/// One pass over the trace; never fails (a marker-free trace summarizes to
/// pre-only with zero iterations).
TraceSummary summarize_trace(const Trace& trace);

}  // namespace pdc::dperf
