// pdc_serve: the resident prediction daemon — prediction-as-a-service over
// the scenario/campaign machinery. Boots once, keeps the dPerf cost-profile
// and trace memos hot, memoizes complete answers in a byte-budgeted LRU
// cache (PDC_SERVE_CACHE_BYTES), and serves `.scn` / `.cmp` requests over a
// Unix socket, loopback TCP and/or a watched spool directory until told to
// stop. See examples/README.md "Serving & sharding" and serve/protocol.hpp
// for the wire format; examples/pdc_client.cpp is the matching client.
//
//   $ ./example_pdc_serve --unix /tmp/pdc.sock &
//   $ ./example_pdc_client --unix /tmp/pdc.sock run examples/scenarios/smoke.scn
//   $ ./example_pdc_client --unix /tmp/pdc.sock stats
//   $ kill -TERM %1        # graceful: drains in-flight runs, writes stats
//
// Options:
//   --unix <path>     listen on a Unix-domain socket at <path>
//   --tcp <port>      listen on 127.0.0.1:<port> (0 = ephemeral; the chosen
//                     port is printed on the "serving tcp" line)
//   --spool <dir>     watch <dir> for dropped .scn/.cmp files; answers land
//                     in <dir>/out/<name>.json
//   -j <n>            concurrent request workers (default 1)
//   --stats <path>    write the final ServeStats JSON here on shutdown
//   --cache-bytes <n> memo-cache byte budget (overrides PDC_SERVE_CACHE_BYTES)
//   --metrics-every <sec>  cadence of the <spool>/out/metrics.prom Prometheus
//                     snapshot (default 60; 0 disables; needs --spool)
//   -v                log protocol activity to stderr
//
// SIGINT/SIGTERM trigger the same graceful drain as a SHUTDOWN request.
// The startup lines (`serving ...`, `pdc_serve ready`) and the final
// `pdc_serve stopped: ...` summary are stable for scripting.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "scenario/spec.hpp"
#include "serve/server.hpp"
#include "support/log.hpp"

namespace {
volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }
}  // namespace

int main(int argc, char** argv) {
  using namespace pdc;
  serve::ServerOptions opts;
  opts.base = scenario::RunSpec::from_env();
  opts.stop_flag = &g_stop;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--unix") == 0 && i + 1 < argc) opts.unix_path = argv[++i];
    else if (std::strcmp(argv[i], "--tcp") == 0 && i + 1 < argc)
      opts.tcp_port = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--spool") == 0 && i + 1 < argc)
      opts.spool_dir = argv[++i];
    else if (std::strcmp(argv[i], "-j") == 0 && i + 1 < argc)
      opts.jobs = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--stats") == 0 && i + 1 < argc)
      opts.stats_path = argv[++i];
    else if (std::strcmp(argv[i], "--cache-bytes") == 0 && i + 1 < argc)
      opts.cache_bytes = static_cast<std::size_t>(std::atoll(argv[++i]));
    else if (std::strcmp(argv[i], "--metrics-every") == 0 && i + 1 < argc)
      opts.metrics_interval_seconds = std::atof(argv[++i]);
    else if (std::strcmp(argv[i], "-v") == 0)
      set_log_level(LogLevel::Info);
    else {
      std::fprintf(stderr,
                   "usage: pdc_serve [--unix path] [--tcp port] [--spool dir] [-j n] "
                   "[--stats path] [--cache-bytes n] [--metrics-every sec] [-v]\n");
      return 2;
    }
  }
  if (opts.jobs < 1) {
    std::fprintf(stderr, "-j wants a positive worker count\n");
    return 2;
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  // Keep copies for the status lines: the options move into the server.
  const std::string unix_path = opts.unix_path;
  const std::string spool_dir = opts.spool_dir;
  const std::string stats_path = opts.stats_path;
  const bool tcp = opts.tcp_port >= 0;
  const int jobs = opts.jobs;

  try {
    serve::Server server{std::move(opts)};
    if (!unix_path.empty()) std::printf("serving unix %s\n", unix_path.c_str());
    if (tcp) std::printf("serving tcp 127.0.0.1:%d\n", server.port());
    if (!spool_dir.empty()) std::printf("serving spool %s\n", spool_dir.c_str());
    std::printf("pdc_serve ready (jobs=%d)\n", jobs);
    std::fflush(stdout);
    server.run();
    const serve::ServeStats s = server.stats();
    std::printf(
        "pdc_serve stopped: requests=%llu scenarios=%llu campaigns=%llu "
        "spool=%llu cache_hits=%llu cache_misses=%llu errors=%llu\n",
        static_cast<unsigned long long>(s.requests),
        static_cast<unsigned long long>(s.scenario_requests),
        static_cast<unsigned long long>(s.campaign_requests),
        static_cast<unsigned long long>(s.spool_jobs),
        static_cast<unsigned long long>(s.cache.hits),
        static_cast<unsigned long long>(s.cache.misses),
        static_cast<unsigned long long>(s.errors));
    if (!stats_path.empty()) std::printf("wrote %s\n", stats_path.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pdc_serve failed: %s\n", e.what());
    return 1;
  }
}
