#include "dperf/dperf.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "minic/parser.hpp"
#include "minic/sema.hpp"
#include "minic/unparse.hpp"
#include "obs/trace.hpp"

namespace pdc::dperf {

Dperf::Dperf(const std::string& source, DperfOptions options) : options_(options) {
  minic::Program ast = minic::parse(source);
  minic::check(ast);
  InstrumentedProgram inst = instrument(ast);
  // Unparse the transformed AST to source text and parse it back: the
  // instrumented *source code* is the pipeline artifact, as in the paper.
  instrumented_source_ = minic::unparse(inst.program);
  inst_.program = minic::parse(instrumented_source_);
  minic::check(inst_.program);
  inst_.blocks = std::move(inst.blocks);
  inst_.iter_loops = inst.iter_loops;
}

BlockTimings Dperf::benchmark(const Workload& workload, int rank, int nprocs) const {
  return benchmark_blocks(inst_, options_.level, workload, options_.ref_host_hz, rank,
                          nprocs);
}

Trace Dperf::trace_for_rank(const Workload& full, int rank, int nprocs) const {
  const auto idx = static_cast<std::size_t>(options_.iters_param_index);
  // Programs without marked communication loops (or without an iteration
  // parameter) have nothing to sample and scale: trace the full run.
  if (inst_.iter_loops == 0 || idx >= full.int_params.size())
    return generate_trace(inst_, options_.level, full, rank, nprocs, options_.ref_host_hz);
  const int target = static_cast<int>(full.int_params[idx]);
  int sample = std::min(options_.sample_iters, target);
  // Keep the extrapolation preconditions: sample >= 3*chunk and
  // (target - sample) divisible by chunk.
  if (target <= 3 * options_.chunk || sample < 3 * options_.chunk) {
    Workload w = full;
    return generate_trace(inst_, options_.level, w, rank, nprocs, options_.ref_host_hz);
  }
  sample = 3 * options_.chunk + (target - 3 * options_.chunk) % options_.chunk;
  Workload sampled_workload = full;
  sampled_workload.int_params[idx] = sample;
  Trace sampled =
      generate_trace(inst_, options_.level, sampled_workload, rank, nprocs,
                     options_.ref_host_hz);
  return extrapolate(sampled, sample, target, options_.chunk);
}

std::vector<Trace> Dperf::traces(const Workload& full, int nprocs) const {
  std::vector<Trace> out;
  out.reserve(static_cast<std::size_t>(nprocs));
  for (int r = 0; r < nprocs; ++r) out.push_back(trace_for_rank(full, r, nprocs));
  return out;
}

Prediction replay_on(p2pdc::Environment& env, net::NodeIdx submitter_host,
                     p2pdc::TaskSpec spec, std::vector<Trace> traces, Time warmup) {
  const int nprocs = static_cast<int>(traces.size());
  spec.peers_needed = nprocs;
  auto shared = std::make_shared<std::vector<Trace>>(std::move(traces));

  auto main = [shared, &env](p2pdc::PeerContext& ctx) -> sim::Task<void> {
    const Trace& trace = (*shared)[static_cast<std::size_t>(ctx.rank())];
    const double host_hz = env.platform().node(ctx.host()).speed_hz;
    const double scale = trace.host_hz / host_hz;  // reference-cycles -> local seconds
    const Time started = ctx.now();
    for (const TraceEvent& e : trace.events) {
      switch (e.kind) {
        case TraceEvent::Kind::Compute:
          co_await ctx.compute(static_cast<double>(e.ns) * 1e-9 * scale);
          break;
        case TraceEvent::Kind::Send:
          co_await ctx.send(e.peer, e.tag, e.bytes);
          break;
        case TraceEvent::Kind::Recv:
          (void)co_await ctx.recv(e.peer, e.tag);
          break;
        case TraceEvent::Kind::Allreduce:
          (void)co_await ctx.allreduce_max(0.0);
          break;
        case TraceEvent::Kind::IterMark:
          break;  // markers carry no replay cost
      }
    }
    // Retroactive per-rank replay span: B at the recorded start, E at the
    // moment the trace ran dry.
    if (obs::TraceRecorder* tr = obs::trace(); tr != nullptr) {
      const obs::TrackId t = tr->track("rank/" + std::to_string(ctx.rank()));
      tr->span_begin(t, "replay", started,
                     {{"rank", ctx.rank()},
                      {"events", static_cast<std::uint64_t>(trace.events.size())}});
      tr->span_end(t, ctx.now());
    }
    ctx.set_result({started, ctx.now()});
  };

  Prediction pred;
  pred.computation = env.run_computation(submitter_host, std::move(spec), main, warmup);
  if (pred.computation.ok) {
    double first_start = 1e300, last_end = 0;
    for (const std::vector<double>& values : pred.computation.results) {
      if (values.size() >= 2) {
        first_start = std::min(first_start, values[0]);
        last_end = std::max(last_end, values[1]);
      }
    }
    pred.solve_seconds = last_end > first_start ? last_end - first_start : 0;
    pred.total_seconds = pred.computation.total_time();
  }
  return pred;
}

}  // namespace pdc::dperf
