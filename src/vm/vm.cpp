#include "vm/vm.hpp"

#include <cmath>

#include "ir/lower.hpp"

namespace pdc::vm {

using ir::Instr;
using ir::IrFunction;
using ir::IrType;
using ir::Op;

CostModel CostModel::default_model() {
  // Cycle costs in the spirit of the paper's 3 GHz Xeon EM64T (Netburst/
  // early Core era): cheap int ALU, 3-5 cycle FP add/mul, ~20 cycle
  // divisions, L1-hit memory ops, and a measurable PAPI read cost for the
  // instrumentation markers.
  CostModel m;
  auto set = [&m](Op op, double c) { m.set_op_cost(op, c); };
  set(Op::ConstI, 1);
  set(Op::ConstF, 1);
  set(Op::Mov, 1);
  set(Op::AddI, 1);
  set(Op::SubI, 1);
  set(Op::MulI, 3);
  set(Op::DivI, 22);
  set(Op::ModI, 22);
  set(Op::NegI, 1);
  set(Op::AddF, 3);
  set(Op::SubF, 3);
  set(Op::MulF, 5);
  set(Op::DivF, 22);
  set(Op::NegF, 2);
  set(Op::LtI, 1);
  set(Op::LeI, 1);
  set(Op::GtI, 1);
  set(Op::GeI, 1);
  set(Op::EqI, 1);
  set(Op::NeI, 1);
  set(Op::LtF, 2);
  set(Op::LeF, 2);
  set(Op::GtF, 2);
  set(Op::GeF, 2);
  set(Op::EqF, 2);
  set(Op::NeF, 2);
  set(Op::NotI, 1);
  set(Op::BoolI, 1);
  set(Op::I2F, 4);
  set(Op::LoadVar, 3);
  set(Op::StoreVar, 3);
  set(Op::AllocArr, 0);  // cost charged via alloc_base/alloc_per_elem
  set(Op::LoadIdx, 4);
  set(Op::StoreIdx, 4);
  set(Op::ArrLen, 1);
  set(Op::Jump, 1);
  set(Op::CJump, 2);
  set(Op::Ret, 2);
  set(Op::Call, 0);  // charged via call_overhead and builtin costs
  set(Op::BlockBegin, 40);
  set(Op::BlockEnd, 40);
  set(Op::IterMark, 2);
  m.builtin_cost_ = {
      {"sqrt", 30}, {"fabs", 2},       {"fmax", 3},    {"fmin", 3},  {"floor", 3},
      {"p2p_rank", 4}, {"p2p_nprocs", 4}, {"p2p_param", 4}, {"p2p_param_f", 4},
      {"p2p_send", 400}, {"p2p_recv", 400}, {"p2p_allreduce_max", 400},
  };
  return m;
}

double CostModel::builtin_cost(const std::string& name) const {
  auto it = builtin_cost_.find(name);
  return it == builtin_cost_.end() ? 0.0 : it->second;
}

Vm::Vm(const ir::IrProgram& program, CostModel model)
    : prog_(&program), model_(std::move(model)), hooks_(&default_hooks_) {
  default_hooks_.vm_ = this;
}

void Vm::set_hooks(CommHooks* hooks) {
  hooks_ = hooks != nullptr ? hooks : &default_hooks_;
  hooks_->vm_ = this;
}

Value Vm::call(const std::string& name, const std::vector<Value>& args) {
  const IrFunction* fn = prog_->find(name);
  if (fn == nullptr) throw TrapError("call to unknown function '" + name + "'");
  return exec(*fn, args, std::vector<std::shared_ptr<ArrayObj>>(
                             static_cast<std::size_t>(fn->num_params), nullptr),
              0);
}

long long Vm::run_main() { return call("main").i; }

Value Vm::exec(const IrFunction& fn, std::vector<Value> scalar_args,
               std::vector<std::shared_ptr<ArrayObj>> array_args, int depth) {
  if (depth > 200) throw TrapError("call depth limit exceeded in '" + fn.name + "'");

  std::vector<Value> regs(static_cast<std::size_t>(fn.num_regs));
  std::vector<Value> vars(fn.var_slots.size());
  std::vector<std::shared_ptr<ArrayObj>> arrays(fn.arr_slots.size());

  // Scalar args land in registers 0..num_params-1 (lowering convention);
  // array slots with a param index bind to the caller's objects.
  for (std::size_t i = 0; i < scalar_args.size() && i < regs.size(); ++i)
    regs[i] = scalar_args[i];
  for (std::size_t s = 0; s < fn.arr_slots.size(); ++s) {
    const auto& slot = fn.arr_slots[s];
    if (slot.is_param) {
      auto& bound = array_args[static_cast<std::size_t>(slot.param_index)];
      if (!bound)
        throw TrapError("array parameter '" + slot.name + "' of '" + fn.name +
                        "' not bound");
      arrays[s] = bound;
    }
  }

  auto trap = [&](const std::string& msg) -> TrapError {
    return TrapError("in '" + fn.name + "': " + msg);
  };
  auto array_at = [&](int slot) -> ArrayObj& {
    auto& p = arrays[static_cast<std::size_t>(slot)];
    if (!p) throw trap("use of unallocated array '" +
                       fn.arr_slots[static_cast<std::size_t>(slot)].name + "'");
    return *p;
  };

  int bi = 0;
  std::size_t pc = 0;
  while (true) {
    const Instr& in = fn.blocks[static_cast<std::size_t>(bi)].instrs[pc];
    cycles_ += model_.op_cost(in.op);
    ++papi_.instructions;
    if (cycles_ > cycle_limit_) throw trap("cycle limit exceeded");

    switch (in.op) {
      case Op::ConstI: regs[static_cast<std::size_t>(in.dst)].i = in.imm_i; break;
      case Op::ConstF: regs[static_cast<std::size_t>(in.dst)].f = in.imm_f; break;
      case Op::Mov: regs[static_cast<std::size_t>(in.dst)] = regs[static_cast<std::size_t>(in.a)]; break;

#define RI(x) regs[static_cast<std::size_t>(x)].i
#define RF(x) regs[static_cast<std::size_t>(x)].f
      case Op::AddI: RI(in.dst) = RI(in.a) + RI(in.b); break;
      case Op::SubI: RI(in.dst) = RI(in.a) - RI(in.b); break;
      case Op::MulI: RI(in.dst) = RI(in.a) * RI(in.b); break;
      case Op::DivI:
        if (RI(in.b) == 0) throw trap("integer division by zero");
        RI(in.dst) = RI(in.a) / RI(in.b);
        break;
      case Op::ModI:
        if (RI(in.b) == 0) throw trap("integer modulo by zero");
        RI(in.dst) = RI(in.a) % RI(in.b);
        break;
      case Op::NegI: RI(in.dst) = -RI(in.a); break;
      case Op::AddF: RF(in.dst) = RF(in.a) + RF(in.b); break;
      case Op::SubF: RF(in.dst) = RF(in.a) - RF(in.b); break;
      case Op::MulF: RF(in.dst) = RF(in.a) * RF(in.b); break;
      case Op::DivF: RF(in.dst) = RF(in.a) / RF(in.b); break;
      case Op::NegF: RF(in.dst) = -RF(in.a); break;
      case Op::LtI: RI(in.dst) = RI(in.a) < RI(in.b); break;
      case Op::LeI: RI(in.dst) = RI(in.a) <= RI(in.b); break;
      case Op::GtI: RI(in.dst) = RI(in.a) > RI(in.b); break;
      case Op::GeI: RI(in.dst) = RI(in.a) >= RI(in.b); break;
      case Op::EqI: RI(in.dst) = RI(in.a) == RI(in.b); break;
      case Op::NeI: RI(in.dst) = RI(in.a) != RI(in.b); break;
      case Op::LtF: RI(in.dst) = RF(in.a) < RF(in.b); break;
      case Op::LeF: RI(in.dst) = RF(in.a) <= RF(in.b); break;
      case Op::GtF: RI(in.dst) = RF(in.a) > RF(in.b); break;
      case Op::GeF: RI(in.dst) = RF(in.a) >= RF(in.b); break;
      case Op::EqF: RI(in.dst) = RF(in.a) == RF(in.b); break;
      case Op::NeF: RI(in.dst) = RF(in.a) != RF(in.b); break;
      case Op::NotI: RI(in.dst) = RI(in.a) == 0 ? 1 : 0; break;
      case Op::BoolI: RI(in.dst) = RI(in.a) != 0 ? 1 : 0; break;
      case Op::I2F: RF(in.dst) = static_cast<double>(RI(in.a)); break;

      case Op::LoadVar: regs[static_cast<std::size_t>(in.dst)] = vars[static_cast<std::size_t>(in.slot)]; break;
      case Op::StoreVar: vars[static_cast<std::size_t>(in.slot)] = regs[static_cast<std::size_t>(in.a)]; break;

      case Op::AllocArr: {
        const long long size = RI(in.a);
        if (size < 0) throw trap("negative array size");
        auto obj = std::make_shared<ArrayObj>();
        obj->elem = in.type;
        obj->data.assign(static_cast<std::size_t>(size), Value{});
        arrays[static_cast<std::size_t>(in.slot)] = std::move(obj);
        cycles_ += model_.alloc_base + model_.alloc_per_elem * static_cast<double>(size);
        break;
      }
      case Op::LoadIdx: {
        ArrayObj& arr = array_at(in.slot);
        const long long idx = RI(in.a);
        if (idx < 0 || idx >= static_cast<long long>(arr.data.size()))
          throw trap("index " + std::to_string(idx) + " out of bounds for '" +
                     fn.arr_slots[static_cast<std::size_t>(in.slot)].name + "' (size " +
                     std::to_string(arr.data.size()) + ")");
        regs[static_cast<std::size_t>(in.dst)] = arr.data[static_cast<std::size_t>(idx)];
        break;
      }
      case Op::StoreIdx: {
        ArrayObj& arr = array_at(in.slot);
        const long long idx = RI(in.a);
        if (idx < 0 || idx >= static_cast<long long>(arr.data.size()))
          throw trap("index " + std::to_string(idx) + " out of bounds for '" +
                     fn.arr_slots[static_cast<std::size_t>(in.slot)].name + "' (size " +
                     std::to_string(arr.data.size()) + ")");
        arr.data[static_cast<std::size_t>(idx)] = regs[static_cast<std::size_t>(in.b)];
        break;
      }
      case Op::ArrLen:
        RI(in.dst) = static_cast<long long>(array_at(in.slot).data.size());
        break;

      case Op::Jump:
        bi = in.t1;
        pc = 0;
        continue;
      case Op::CJump:
        bi = RI(in.a) != 0 ? in.t1 : in.t2;
        pc = 0;
        continue;
      case Op::Ret: {
        if (!block_stack_.empty() && depth == 0) block_stack_.clear();
        Value out;
        if (in.a >= 0) out = regs[static_cast<std::size_t>(in.a)];
        return out;
      }

      case Op::BlockBegin:
        block_stack_.emplace_back(static_cast<int>(in.imm_i), cycles_);
        break;
      case Op::BlockEnd: {
        if (block_stack_.empty() || block_stack_.back().first != in.imm_i)
          throw trap("mismatched dperf_block_end(" + std::to_string(in.imm_i) + ")");
        auto [id, start] = block_stack_.back();
        block_stack_.pop_back();
        auto& stat = papi_.blocks[id];
        ++stat.executions;
        stat.cycles += cycles_ - start;
        break;
      }
      case Op::IterMark:
        ++papi_.iter_marks;
        hooks_->iter_mark(in.imm_i);
        break;

      case Op::Call: {
        cycles_ += model_.call_overhead +
                   model_.per_arg_cost * static_cast<double>(in.args.size());
        const std::string& callee = in.sym;
        auto scalar = [&](std::size_t i) { return regs[static_cast<std::size_t>(in.args[i])]; };
        // Builtins first.
        if (callee == "sqrt") {
          RF(in.dst) = std::sqrt(scalar(0).f);
          cycles_ += model_.builtin_cost(callee);
        } else if (callee == "fabs") {
          RF(in.dst) = std::fabs(scalar(0).f);
          cycles_ += model_.builtin_cost(callee);
        } else if (callee == "fmax") {
          RF(in.dst) = std::fmax(scalar(0).f, scalar(1).f);
          cycles_ += model_.builtin_cost(callee);
        } else if (callee == "fmin") {
          RF(in.dst) = std::fmin(scalar(0).f, scalar(1).f);
          cycles_ += model_.builtin_cost(callee);
        } else if (callee == "floor") {
          RF(in.dst) = std::floor(scalar(0).f);
          cycles_ += model_.builtin_cost(callee);
        } else if (callee == "p2p_rank") {
          RI(in.dst) = hooks_->rank();
          cycles_ += model_.builtin_cost(callee);
        } else if (callee == "p2p_nprocs") {
          RI(in.dst) = hooks_->nprocs();
          cycles_ += model_.builtin_cost(callee);
        } else if (callee == "p2p_param") {
          RI(in.dst) = hooks_->param(static_cast<int>(scalar(0).i));
          cycles_ += model_.builtin_cost(callee);
        } else if (callee == "p2p_param_f") {
          RF(in.dst) = hooks_->param_f(static_cast<int>(scalar(0).i));
          cycles_ += model_.builtin_cost(callee);
        } else if (callee == "p2p_send" || callee == "p2p_recv") {
          ArrayObj& arr = array_at(ir::decode_array_arg(in.args[2]));
          const long long off = scalar(3).i;
          const long long n = scalar(4).i;
          if (off < 0 || n < 0 || off + n > static_cast<long long>(arr.data.size()))
            throw trap("communication range [" + std::to_string(off) + ", " +
                       std::to_string(off + n) + ") out of bounds");
          cycles_ += model_.builtin_cost(callee);
          if (callee == "p2p_send")
            hooks_->send(static_cast<int>(scalar(0).i), static_cast<int>(scalar(1).i), arr,
                         off, n);
          else
            hooks_->recv(static_cast<int>(scalar(0).i), static_cast<int>(scalar(1).i), arr,
                         off, n);
        } else if (callee == "p2p_allreduce_max") {
          cycles_ += model_.builtin_cost(callee);
          RF(in.dst) = hooks_->allreduce_max(scalar(0).f);
        } else if (const IrFunction* target = prog_->find(callee)) {
          std::vector<Value> call_args;
          std::vector<std::shared_ptr<ArrayObj>> call_arrays(in.args.size());
          for (std::size_t i = 0; i < in.args.size(); ++i) {
            if (ir::is_array_arg(in.args[i])) {
              call_args.push_back(Value{});
              call_arrays[i] = arrays[static_cast<std::size_t>(ir::decode_array_arg(in.args[i]))];
            } else {
              call_args.push_back(regs[static_cast<std::size_t>(in.args[i])]);
            }
          }
          const Value out = exec(*target, std::move(call_args), std::move(call_arrays),
                                 depth + 1);
          if (in.dst >= 0) regs[static_cast<std::size_t>(in.dst)] = out;
        } else {
          throw trap("call to unknown function '" + callee + "'");
        }
        break;
      }
#undef RI
#undef RF
    }
    ++pc;
  }
}

}  // namespace pdc::vm
