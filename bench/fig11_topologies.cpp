// Fig. 11 (paper §IV-B.4): reference time compared to dPerf predictions for
// the Grid5000 cluster, the Daisy xDSL desktop grid (Stage-2A) and the LAN
// (Stage-2B), all at optimization level 0.
//
// Expected shape: the xDSL curve sits far above the others (communication
// dominates; adding peers does not pay), the LAN curve tracks the cluster
// within a modest factor.
#include <cstdio>

#include "experiments/harness.hpp"
#include "scenario/runner.hpp"
#include "support/table.hpp"

int main() {
  using namespace pdc;
  scenario::RunSpec base = scenario::RunSpec::from_env();
  base.level = ir::OptLevel::O0;
  std::printf("Fig. 11 -- reference vs dPerf predictions [s], optimization level 0\n\n");

  const scenario::PlatformSpec platforms[] = {scenario::PlatformSpec::grid5000(),
                                              scenario::PlatformSpec::xdsl(),
                                              scenario::PlatformSpec::lan()};

  TextTable table({"Peers", "reference", "dPerf Grid5000", "dPerf xDSL", "dPerf LAN"});
  for (int peers : experiments::paper_peer_counts()) {
    scenario::RunSpec run = base;
    run.peers = peers;
    const scenario::Runner cluster{{"fig11", platforms[0], run}};
    const double ref = cluster.run_reference().solve_seconds;
    // One set of traces per peer count, replayed on each platform
    // description -- exactly the paper's methodology.
    const auto traces = cluster.traces();
    std::vector<std::string> row{std::to_string(peers), TextTable::num(ref, 2)};
    for (const auto& platform : platforms) {
      const scenario::Runner runner{{"fig11", platform, run}};
      row.push_back(TextTable::num(runner.run_predicted(traces).solve_seconds, 2));
    }
    // Paper column order: Grid5000, xDSL, LAN.
    table.add_row({row[0], row[1], row[2], row[3], row[4]});
    std::printf("  ... %d peers done\n", peers);
  }
  std::printf("\n%s\n", table.render().c_str());
  return 0;
}
