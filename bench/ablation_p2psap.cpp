// Ablation A2: P2PSAP self-adaptation -- synchronous (reliable, acked) vs
// asynchronous (latest-value, unacknowledged) channel modes for the
// obstacle solver's halo exchanges, on LAN and xDSL link classes.
#include <cstdio>

#include "experiments/harness.hpp"
#include "support/table.hpp"

int main() {
  using namespace pdc;
  experiments::PaperSetup setup = experiments::PaperSetup::from_env();
  // A shorter run suffices to expose the per-iteration channel overhead.
  setup.grid_n = 514;
  setup.iters = 200;
  std::printf("Ablation A2 -- P2PSAP scheme adaptation, obstacle %dx%d, %d iterations,\n"
              "4 peers (solve seconds; async iterations overlap communication)\n\n",
              setup.grid_n, setup.grid_n, setup.iters);

  TextTable table({"Topology", "sync scheme [s]", "async scheme [s]", "async speedup"});
  for (auto topo : {experiments::Topology::Grid5000, experiments::Topology::Lan,
                    experiments::Topology::Xdsl}) {
    double t[2];
    int i = 0;
    for (auto scheme : {p2psap::Scheme::Synchronous, p2psap::Scheme::Asynchronous}) {
      auto d = experiments::deploy(topo, 4);
      obstacle::DistributedConfig cfg;
      cfg.problem = setup.problem();
      cfg.iters = setup.iters;
      cfg.rcheck = setup.rcheck;
      cfg.mode = obstacle::ValueMode::Phantom;
      cfg.cost = experiments::cost_profile(ir::OptLevel::O0, setup);
      cfg.scheme = scheme;
      const auto rep = obstacle::run_distributed(*d->env, d->submitter, cfg, 4);
      if (!rep.ok) {
        std::printf("run failed: %s\n", rep.failure.c_str());
        return 1;
      }
      t[i++] = rep.solve_seconds;
    }
    table.add_row({experiments::topology_name(topo), TextTable::num(t[0], 2),
                   TextTable::num(t[1], 2), TextTable::num(t[0] / t[1], 2) + "x"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("note: async iterations use stale halo data and need more iterations to\n"
              "converge; this table isolates the per-iteration transport cost.\n");
  return 0;
}
