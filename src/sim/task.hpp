// Task<T>: an awaitable coroutine used for nested asynchronous calls inside
// simulation processes (e.g. `co_await channel.send(msg)`).
//
// Semantics: lazily started; `co_await task` starts the child and resumes the
// parent via symmetric transfer when the child finishes. Exceptions propagate
// to the awaiter. A Task must be awaited exactly once before destruction or
// never started at all.
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace pdc::sim {

template <class T>
class [[nodiscard]] Task;

namespace detail {

struct TaskFinalAwaiter {
  bool await_ready() const noexcept { return false; }
  template <class Promise>
  std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
    auto cont = h.promise().continuation;
    return cont ? cont : std::noop_coroutine();
  }
  void await_resume() const noexcept {}
};

struct TaskPromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr error;

  std::suspend_always initial_suspend() noexcept { return {}; }
  TaskFinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { error = std::current_exception(); }
};

}  // namespace detail

template <class T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::TaskPromiseBase {
    std::optional<T> value;
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    template <class U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  Task(Task&& other) noexcept : h_(std::exchange(other.h_, nullptr)) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&&) = delete;
  ~Task() {
    if (h_) h_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
    h_.promise().continuation = parent;
    return h_;  // symmetric transfer: start the child now
  }
  T await_resume() {
    auto& p = h_.promise();
    if (p.error) std::rethrow_exception(p.error);
    assert(p.value.has_value());
    return std::move(*p.value);
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  std::coroutine_handle<promise_type> h_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::TaskPromiseBase {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() noexcept {}
  };

  Task(Task&& other) noexcept : h_(std::exchange(other.h_, nullptr)) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&&) = delete;
  ~Task() {
    if (h_) h_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
    h_.promise().continuation = parent;
    return h_;
  }
  void await_resume() {
    if (auto& e = h_.promise().error) std::rethrow_exception(e);
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  std::coroutine_handle<promise_type> h_;
};

}  // namespace pdc::sim
