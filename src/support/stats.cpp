#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

namespace pdc {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double n = n1 + n2;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  mean_ = (n1 * mean_ + n2 * other.mean_) / n;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Summary summarize(const std::vector<double>& samples) {
  Summary s;
  if (samples.empty()) return s;
  RunningStats acc;
  for (double x : samples) acc.add(x);
  s.n = acc.count();
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  s.p50 = quantile(samples, 0.5);
  s.p95 = quantile(samples, 0.95);
  if (s.n >= 2)
    s.ci95_half = student_t_95(s.n - 1) * s.stddev / std::sqrt(static_cast<double>(s.n));
  return s;
}

double student_t_95(std::size_t df) {
  // Two-sided alpha = 0.05 critical values, df = 1..30.
  static const double kTable[30] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (df == 0) return 0.0;
  if (df <= 30) return kTable[df - 1];
  return 1.960;
}

double quantile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  if (p <= 0) return samples.front();
  if (p >= 1) return samples.back();
  const double pos = p * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples.size()) return samples.back();
  return samples[lo] * (1.0 - frac) + samples[lo + 1] * frac;
}

}  // namespace pdc
