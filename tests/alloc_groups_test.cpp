#include "alloc/groups.hpp"

#include <gtest/gtest.h>

#include <set>

#include "support/rng.hpp"

namespace pdc::alloc {
namespace {

overlay::PeerRef peer(int node, Ipv4 ip, double cpu = 3e9) {
  return overlay::PeerRef{node, ip, overlay::PeerResources{cpu, 1e9, 1e9}};
}

TEST(Groups, EmptyInputYieldsNoGroups) {
  EXPECT_TRUE(form_groups({}).empty());
}

TEST(Groups, SingleGroupUnderCmax) {
  std::vector<overlay::PeerRef> peers;
  for (int i = 0; i < 10; ++i) peers.push_back(peer(i, Ipv4{10, 0, 0, static_cast<std::uint8_t>(i + 1)}));
  const auto groups = form_groups(peers);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].members.size(), 10u);
}

TEST(Groups, SplitsAtCmaxBoundary) {
  std::vector<overlay::PeerRef> peers;
  for (int i = 0; i < 33; ++i)
    peers.push_back(peer(i, Ipv4{10, 0, static_cast<std::uint8_t>(i / 8), static_cast<std::uint8_t>(i + 1)}));
  const auto groups = form_groups(peers);  // Cmax = 32 -> split at a /24 gap
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].members.size() + groups[1].members.size(), 33u);
  for (const auto& g : groups) EXPECT_LE(g.members.size(), 32u);
  // The split happens at a subnet boundary (multiple of 8 here), not at an
  // arbitrary midpoint.
  EXPECT_EQ(groups[0].members.size() % 8, 0u);
}

TEST(Groups, NeverExceedsCmax) {
  Rng rng{5};
  for (int n : {1, 31, 32, 33, 64, 65, 100, 129}) {
    std::vector<overlay::PeerRef> peers;
    for (int i = 0; i < n; ++i)
      peers.push_back(peer(i, Ipv4{static_cast<std::uint32_t>(rng.next_u64())}));
    const auto groups = form_groups(peers);
    std::size_t total = 0;
    for (const auto& g : groups) {
      EXPECT_LE(g.members.size(), static_cast<std::size_t>(kCmax));
      EXPECT_FALSE(g.members.empty());
      total += g.members.size();
    }
    EXPECT_EQ(total, static_cast<std::size_t>(n));
  }
}

TEST(Groups, GroupingIsByIpProximity) {
  // Two IP clusters must not be interleaved across groups.
  std::vector<overlay::PeerRef> peers;
  for (int i = 0; i < 40; ++i) peers.push_back(peer(i, Ipv4{10, 0, 0, static_cast<std::uint8_t>(i + 1)}));
  for (int i = 0; i < 40; ++i) peers.push_back(peer(100 + i, Ipv4{82, 5, 0, static_cast<std::uint8_t>(i + 1)}));
  const auto groups = form_groups(peers);
  for (const auto& g : groups) {
    std::set<std::uint32_t> nets;
    for (const auto& m : g.members) nets.insert(m.ip.bits() >> 24);
    // 80 peers -> 3 groups of <=32; each group fits inside one /8.
    EXPECT_EQ(nets.size(), 1u);
  }
}

TEST(Groups, CoordinatorIsFastestMember) {
  std::vector<overlay::PeerRef> peers;
  peers.push_back(peer(0, Ipv4{10, 0, 0, 1}, 2e9));
  peers.push_back(peer(1, Ipv4{10, 0, 0, 2}, 3.4e9));
  peers.push_back(peer(2, Ipv4{10, 0, 0, 3}, 3e9));
  const auto groups = form_groups(peers);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].coordinator_ref().node, 1);
}

TEST(Groups, CoordinatorTieBreaksByLowestIp) {
  std::vector<overlay::PeerRef> peers;
  peers.push_back(peer(7, Ipv4{10, 0, 0, 9}, 3e9));
  peers.push_back(peer(3, Ipv4{10, 0, 0, 2}, 3e9));
  peers.push_back(peer(5, Ipv4{10, 0, 0, 5}, 3e9));
  const auto groups = form_groups(peers);
  EXPECT_EQ(groups[0].coordinator_ref().node, 3);
}

TEST(Groups, MembersSortedByIpWithinGroup) {
  Rng rng{11};
  std::vector<overlay::PeerRef> peers;
  for (int i = 0; i < 50; ++i)
    peers.push_back(peer(i, Ipv4{static_cast<std::uint32_t>(rng.next_u64())}));
  const auto groups = form_groups(peers, 8);
  Ipv4 prev{0u};
  for (const auto& g : groups)
    for (const auto& m : g.members) {
      EXPECT_GE(m.ip.bits(), prev.bits());
      prev = m.ip;
    }
}

}  // namespace
}  // namespace pdc::alloc
