// The pdc_serve wire protocol: one request per connection, line-framed.
//
// The client sends a single header line, optionally followed by an exact
// byte-counted body (so spec text never needs escaping):
//
//   RUN scn <nbytes>\n<nbytes of scenario text>   run / memo-hit a scenario
//   RUN cmp <nbytes>\n<nbytes of campaign text>   run a campaign (cells share
//                                                 the scenario memo cache)
//   STATS\n                                       ServeStats JSON snapshot
//   METRICS\n                                     Prometheus text exposition
//   PING\n                                        liveness probe
//   SHUTDOWN\n                                    graceful drain + exit
//
// The server answers with one header line and a byte-counted body:
//
//   OK <nbytes> <tag>\n<nbytes of body>           tag = hit | miss | stats |
//                                                 metrics | pong | bye
//   ERR <nbytes>\n<nbytes of message>
//
// For RUN requests the body is the RunRecord / CampaignReport JSON and the
// tag says whether the answer came from the hot memo cache (`hit`: every
// simulated cell was served from memory) or required simulation (`miss`).
// Responses are complete before the server closes the connection; clients
// read header + body and are done — no trailing sentinel, no keep-alive.
#pragma once

#include <cstddef>
#include <string>

#include "support/socket.hpp"

namespace pdc::serve {

/// Hard cap on request/response bodies (16 MiB): a corrupt length prefix
/// must not make either side allocate unbounded memory.
inline constexpr std::size_t kMaxBody = 16u << 20;

enum class RequestKind { RunScenario, RunCampaign, Stats, Metrics, Ping, Shutdown };

struct Request {
  RequestKind kind = RequestKind::Ping;
  std::string body;  // spec text for Run*, empty otherwise
};

struct Response {
  bool ok = false;
  std::string tag;   // hit | miss | stats | metrics | pong | bye (ok) — empty for ERR
  std::string body;  // payload (ok) or error message
};

/// Reads one request from `s`. Returns false on clean EOF before any byte
/// (client connected and went away). Throws std::runtime_error on malformed
/// framing — the server turns that into an ERR response where possible.
bool read_request(const Socket& s, Request& out);

/// Writes one request (client side).
void write_request(const Socket& s, const Request& req);

/// Reads one response (client side). Throws on malformed framing or EOF.
Response read_response(const Socket& s);

/// Writes one response (server side).
void write_response(const Socket& s, const Response& resp);

}  // namespace pdc::serve
