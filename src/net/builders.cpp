#include "net/builders.hpp"

#include <algorithm>
#include <cassert>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "support/time.hpp"

namespace pdc::net {

using namespace pdc::units;

Platform build_star(const StarSpec& spec) {
  Platform p;
  const NodeIdx sw = p.add_router(spec.name_prefix + "-switch");
  const LinkIdx backbone = p.add_link("backbone", spec.backbone_bw_Bps, spec.backbone_latency);
  for (int i = 0; i < spec.hosts; ++i) {
    const Ipv4 ip{spec.base_ip.bits() + static_cast<std::uint32_t>(i)};
    const NodeIdx h =
        p.add_host(spec.name_prefix + "-" + std::to_string(i), spec.host_speed_hz, ip);
    const LinkIdx nic =
        p.add_link("nic-" + std::to_string(i), spec.nic_bw_Bps, spec.nic_latency);
    p.connect(h, sw, nic);
  }
  // Hierarchical routing with the backbone as trunk forces every host pair
  // through NIC_a up, backbone, NIC_b down — the same hops the old
  // O(hosts^2) explicit-route loop installed, resolved algebraically so a
  // million-host star needs no route table. The trunk hop's direction
  // groups by flow orientation (src < dst), keeping the two directions of
  // the full-duplex fabric independent capacities.
  const bool hier = p.enable_hierarchical_routing(backbone);
  (void)hier;
  assert(hier);
  return p;
}

StarSpec bordeplage_cluster_spec(int hosts) {
  StarSpec s;
  s.hosts = hosts;
  s.host_speed_hz = 3e9;
  s.nic_bw_Bps = 1.0 * Gbps;
  s.nic_latency = 100 * us;
  s.backbone_bw_Bps = 10.0 * Gbps;
  s.backbone_latency = 100 * us;
  s.base_ip = Ipv4{172, 16, 0, 1};
  s.name_prefix = "bordeplage";
  return s;
}

StarSpec lan_spec(int hosts) {
  StarSpec s;
  s.hosts = hosts;
  s.host_speed_hz = 3e9;  // identical machines, different interconnect
  s.nic_bw_Bps = 100.0 * Mbps;
  // Commodity campus switches and 2011-era NIC stacks: noticeably higher
  // per-hop latency than the cluster-grade gear of Stage-1.
  s.nic_latency = 300 * us;
  s.backbone_bw_Bps = 1.0 * Gbps;
  s.backbone_latency = 300 * us;
  s.base_ip = Ipv4{192, 168, 0, 1};
  s.name_prefix = "lan";
  return s;
}

int daisy_host_count(const DaisySpec& spec) {
  return spec.central_routers * spec.routers_per_petal * spec.dslams_per_router *
             spec.nodes_per_dslam +
         spec.extra_nodes_on_one_dslam;
}

Platform build_daisy(const DaisySpec& spec, Rng& rng) {
  Platform p;
  // Central ring (l1 @ 100 Gbps).
  std::vector<NodeIdx> center;
  for (int c = 0; c < spec.central_routers; ++c)
    center.push_back(p.add_router("core-" + std::to_string(c)));
  for (int c = 0; c < spec.central_routers; ++c) {
    const int next = (c + 1) % spec.central_routers;
    const LinkIdx l1 = p.add_link("l1-" + std::to_string(c), spec.ring_bw_Bps,
                                  spec.router_latency);
    p.connect(center[static_cast<std::size_t>(c)], center[static_cast<std::size_t>(next)], l1);
  }
  int host_counter = 0;
  for (int petal = 0; petal < spec.central_routers; ++petal) {
    // Petal loop: core -> r0 -> r1 -> ... -> r9 -> core (l2 @ 10 Gbps).
    std::vector<NodeIdx> petal_routers;
    for (int r = 0; r < spec.routers_per_petal; ++r)
      petal_routers.push_back(
          p.add_router("petal-" + std::to_string(petal) + "-r" + std::to_string(r)));
    NodeIdx prev = center[static_cast<std::size_t>(petal)];
    for (int r = 0; r < spec.routers_per_petal; ++r) {
      const LinkIdx l2 = p.add_link(
          "l2-" + std::to_string(petal) + "-" + std::to_string(r), spec.petal_bw_Bps,
          spec.router_latency);
      p.connect(prev, petal_routers[static_cast<std::size_t>(r)], l2);
      prev = petal_routers[static_cast<std::size_t>(r)];
    }
    const LinkIdx l2back = p.add_link("l2-" + std::to_string(petal) + "-back",
                                      spec.petal_bw_Bps, spec.router_latency);
    p.connect(prev, center[static_cast<std::size_t>(petal)], l2back);

    for (int r = 0; r < spec.routers_per_petal; ++r) {
      for (int d = 0; d < spec.dslams_per_router; ++d) {
        const std::string dslam_name = "dslam-" + std::to_string(petal) + "-" +
                                       std::to_string(r) + "-" + std::to_string(d);
        const NodeIdx dslam = p.add_router(dslam_name);
        const LinkIdx up = p.add_link(dslam_name + "-up", spec.dslam_up_bw_Bps,
                                      spec.router_latency);
        p.connect(dslam, petal_routers[static_cast<std::size_t>(r)], up);
        // The very first DSLAM carries the 24 extra nodes (paper Fig. 8).
        int nodes_here = spec.nodes_per_dslam;
        if (petal == 0 && r == 0 && d == 0) nodes_here += spec.extra_nodes_on_one_dslam;
        for (int n = 0; n < nodes_here; ++n) {
          // IPs encode the topology so the IP-prefix proximity metric
          // correlates with network distance: petal in the second octet,
          // router/dslam in the third.
          const Ipv4 ip{static_cast<std::uint8_t>(82),
                        static_cast<std::uint8_t>(petal + 1),
                        static_cast<std::uint8_t>(r * spec.dslams_per_router + d),
                        static_cast<std::uint8_t>(n + 1)};
          const NodeIdx host = p.add_host("xdsl-" + std::to_string(host_counter++),
                                          spec.host_speed_hz, ip);
          const double bw = rng.uniform(spec.last_mile_min_Bps, spec.last_mile_max_Bps);
          const LinkIdx l3 =
              p.add_link("l3-" + std::to_string(host_counter), bw, spec.last_mile_latency);
          p.connect(host, dslam, l3);
        }
      }
    }
  }
  const bool hier = p.enable_hierarchical_routing();
  (void)hier;
  assert(hier);
  return p;
}

int federation_host_count(const FederationSpec& spec) {
  return spec.clusters * spec.hosts_per_cluster;
}

Platform build_federation(const FederationSpec& spec) {
  Platform p;
  const NodeIdx core = p.add_router("fed-core");
  int host_counter = 0;
  for (int site = 0; site < spec.clusters; ++site) {
    const NodeIdx sw = p.add_router("site-" + std::to_string(site) + "-switch");
    const LinkIdx uplink = p.add_link("site-" + std::to_string(site) + "-uplink",
                                      spec.wan_bw_Bps, spec.wan_latency);
    p.connect(sw, core, uplink);
    const double speed = spec.site_speeds_hz.empty()
                             ? 3e9
                             : spec.site_speeds_hz[static_cast<std::size_t>(site) %
                                                   spec.site_speeds_hz.size()];
    for (int i = 0; i < spec.hosts_per_cluster; ++i) {
      const Ipv4 ip{10, static_cast<std::uint8_t>(100 + site % 100),
                    static_cast<std::uint8_t>(i / 250),
                    static_cast<std::uint8_t>(i % 250 + 1)};
      const NodeIdx h = p.add_host("site-" + std::to_string(site) + "-node-" +
                                       std::to_string(i),
                                   speed, ip);
      const LinkIdx nic = p.add_link("fed-nic-" + std::to_string(host_counter++),
                                     spec.nic_bw_Bps, spec.nic_latency);
      p.connect(h, sw, nic);
    }
  }
  const bool hier = p.enable_hierarchical_routing();
  (void)hier;
  assert(hier);
  return p;
}

Platform build_wan(const WanSpec& spec, Rng& rng) {
  Platform p;
  std::vector<NodeIdx> routers;
  for (int r = 0; r < spec.routers; ++r)
    routers.push_back(p.add_router("wan-r" + std::to_string(r)));
  // Random spanning tree: router r >= 1 attaches to a random earlier router,
  // so the core is always connected.
  for (int r = 1; r < spec.routers; ++r) {
    const int parent = static_cast<int>(rng.uniform_int(0, r - 1));
    const Time lat = rng.uniform(spec.core_lat_min, spec.core_lat_max);
    const LinkIdx l = p.add_link("wan-core-" + std::to_string(r), spec.core_bw_Bps, lat);
    p.connect(routers[static_cast<std::size_t>(r)],
              routers[static_cast<std::size_t>(parent)], l);
  }
  for (int e = 0; e < spec.extra_links && spec.routers > 2; ++e) {
    const int a = static_cast<int>(rng.uniform_int(0, spec.routers - 1));
    int b = static_cast<int>(rng.uniform_int(0, spec.routers - 1));
    if (b == a) b = (b + 1) % spec.routers;
    const Time lat = rng.uniform(spec.core_lat_min, spec.core_lat_max);
    const LinkIdx l =
        p.add_link("wan-shortcut-" + std::to_string(e), spec.core_bw_Bps, lat);
    p.connect(routers[static_cast<std::size_t>(a)], routers[static_cast<std::size_t>(b)], l);
  }
  for (int i = 0; i < spec.hosts; ++i) {
    const int at = static_cast<int>(rng.uniform_int(0, spec.routers - 1));
    const double speed = rng.uniform(spec.speed_min_hz, spec.speed_max_hz);
    const double bw = rng.uniform(spec.access_bw_min_Bps, spec.access_bw_max_Bps);
    const Ipv4 ip{10, static_cast<std::uint8_t>(200 + i / 62500),
                  static_cast<std::uint8_t>(i / 250 % 250),
                  static_cast<std::uint8_t>(i % 250 + 1)};
    const NodeIdx h = p.add_host("wan-node-" + std::to_string(i), speed, ip);
    const LinkIdx l =
        p.add_link("wan-access-" + std::to_string(i), bw, spec.access_latency);
    p.connect(h, routers[static_cast<std::size_t>(at)], l);
  }
  const bool hier = p.enable_hierarchical_routing();
  (void)hier;
  assert(hier);
  return p;
}

namespace {

/// Emits `hosts` end hosts router-major: per-router attachment counts are
/// drawn first (in rng order, so the draw sequence is seed-pure), then
/// hosts come out grouped by router with contiguous IPs. IP-prefix
/// proximity therefore correlates with network locality, and the
/// rank-neighbor halo traffic of grid computations stays router-local.
void attach_hosts_router_major(Platform& p, const std::vector<NodeIdx>& routers,
                               const std::vector<int>& count, int hosts,
                               const std::string& prefix, double speed_hz, double access_bw_Bps,
                               Time access_latency, Ipv4 base_ip) {
  (void)hosts;
  int host_counter = 0;
  for (std::size_t r = 0; r < routers.size(); ++r) {
    for (int c = 0; c < count[r]; ++c) {
      const Ipv4 ip{base_ip.bits() + static_cast<std::uint32_t>(host_counter)};
      const NodeIdx h =
          p.add_host(prefix + "-" + std::to_string(host_counter), speed_hz, ip);
      const LinkIdx nic = p.add_link(prefix + "-nic-" + std::to_string(host_counter),
                                     access_bw_Bps, access_latency);
      p.connect(h, routers[r], nic);
      ++host_counter;
    }
  }
}

}  // namespace

Platform build_scale_free(const ScaleFreeSpec& spec, Rng& rng) {
  Platform p;
  const int nr = std::max(1, spec.routers);
  const int m = std::clamp(spec.m, 1, std::max(1, nr - 1));
  std::vector<NodeIdx> routers;
  routers.reserve(static_cast<std::size_t>(nr));
  for (int r = 0; r < nr; ++r) routers.push_back(p.add_router("sf-r" + std::to_string(r)));
  // Endpoint multiset: each core edge contributes both endpoints, so a
  // uniform draw from it is a degree-proportional draw over routers.
  std::vector<int> endpoints;
  int core_counter = 0;
  auto core_link = [&](int a, int b) {
    const LinkIdx l = p.add_link("sf-core-" + std::to_string(core_counter++),
                                 spec.core_bw_Bps, spec.core_latency);
    p.connect(routers[static_cast<std::size_t>(a)], routers[static_cast<std::size_t>(b)], l);
    endpoints.push_back(a);
    endpoints.push_back(b);
  };
  const int seed = std::min(nr, m + 1);
  for (int a = 0; a < seed; ++a)
    for (int b = a + 1; b < seed; ++b) core_link(a, b);
  for (int r = seed; r < nr; ++r) {
    // m distinct preferential targets among routers < r (all endpoints are
    // < r, and r >= m + 1, so m distinct targets always exist).
    std::vector<int> targets;
    while (static_cast<int>(targets.size()) < m) {
      const int t = endpoints[rng.uniform_int(0, endpoints.size() - 1)];
      if (std::find(targets.begin(), targets.end(), t) == targets.end()) targets.push_back(t);
    }
    for (int t : targets) core_link(r, t);
  }
  std::vector<int> count(static_cast<std::size_t>(nr), 0);
  for (int i = 0; i < spec.hosts; ++i) {
    const int at = endpoints.empty() ? 0
                                     : endpoints[rng.uniform_int(0, endpoints.size() - 1)];
    ++count[static_cast<std::size_t>(at)];
  }
  attach_hosts_router_major(p, routers, count, spec.hosts, "sf", spec.host_speed_hz,
                            spec.access_bw_Bps, spec.access_latency, spec.base_ip);
  const bool hier = p.enable_hierarchical_routing();
  (void)hier;
  assert(hier);
  return p;
}

Platform build_small_world(const SmallWorldSpec& spec, Rng& rng) {
  Platform p;
  const int nr = std::max(3, spec.routers);
  int k = std::clamp(spec.k, 2, nr - 1);
  k -= k % 2;
  std::vector<NodeIdx> routers;
  routers.reserve(static_cast<std::size_t>(nr));
  for (int r = 0; r < nr; ++r) routers.push_back(p.add_router("sw-r" + std::to_string(r)));
  // Ring lattice of degree k. The base ring (j = 1) is never rewired so the
  // core stays connected for every draw; chords (j >= 2) rewire to a
  // uniformly random router with probability beta.
  std::set<std::pair<int, int>> have;
  auto norm = [](int a, int b) { return a < b ? std::pair{a, b} : std::pair{b, a}; };
  int core_counter = 0;
  auto core_link = [&](int a, int b) {
    have.insert(norm(a, b));
    const LinkIdx l = p.add_link("sw-core-" + std::to_string(core_counter++),
                                 spec.core_bw_Bps, spec.core_latency);
    p.connect(routers[static_cast<std::size_t>(a)], routers[static_cast<std::size_t>(b)], l);
  };
  for (int j = 1; j <= k / 2; ++j) {
    for (int i = 0; i < nr; ++i) {
      int b = (i + j) % nr;
      if (have.count(norm(i, b))) continue;  // lattice wrap at j = nr/2
      if (j >= 2 && rng.bernoulli(spec.beta)) {
        // Rewire the far endpoint; bounded retries keep determinism even on
        // dense lattices where i may already touch almost every router.
        for (int attempt = 0; attempt < 2 * nr; ++attempt) {
          const int cand = static_cast<int>(rng.uniform_int(0, nr - 1));
          if (cand == i || have.count(norm(i, cand))) continue;
          b = cand;
          break;
        }
        if (have.count(norm(i, b))) continue;
      }
      core_link(i, b);
    }
  }
  std::vector<int> count(static_cast<std::size_t>(nr), 0);
  for (int i = 0; i < spec.hosts; ++i)
    ++count[rng.uniform_int(0, static_cast<std::size_t>(nr) - 1)];
  attach_hosts_router_major(p, routers, count, spec.hosts, "sw", spec.host_speed_hz,
                            spec.access_bw_Bps, spec.access_latency, spec.base_ip);
  const bool hier = p.enable_hierarchical_routing();
  (void)hier;
  assert(hier);
  return p;
}

}  // namespace pdc::net
