// scenario::Runner: deployment across every platform kind, the paper §IV
// invariant (mode=both on Bordeplage: prediction ~= reference), and the
// RunRecord JSON contract.
#include "scenario/runner.hpp"

#include <gtest/gtest.h>

#include <set>

#include "net/platfile.hpp"
#include "support/json.hpp"

namespace pdc::scenario {
namespace {

/// Small-but-real sizing: a few seconds of simulated work, < 1 s of wall
/// clock, identical pipeline to the paper runs.
RunSpec smoke_run(int peers) {
  RunSpec run;
  run.peers = peers;
  run.grid_n = 66;
  run.iters = 24;
  run.rcheck = 4;
  run.bench_n = 34;
  run.bench_iters = 6;
  run.bench_rcheck = 3;
  return run;
}

TEST(ScenarioRunner, DeploysEveryPlatformKind) {
  const RunSpec run = smoke_run(4);
  const PlatformSpec kinds[] = {PlatformSpec::grid5000(), PlatformSpec::lan(),
                                PlatformSpec::xdsl(), PlatformSpec::federation(),
                                PlatformSpec::wan()};
  for (const auto& platform : kinds) {
    auto d = deploy(platform, run);
    ASSERT_NE(d->env, nullptr) << platform.label;
    EXPECT_GE(d->platform.host_count(), run.peers + 3) << platform.label;
    EXPECT_EQ(static_cast<int>(d->workers.size()), run.peers) << platform.label;
    EXPECT_GE(d->submitter, 0) << platform.label;
  }
}

TEST(ScenarioRunner, StarPlatformAutoSizesToRun) {
  const net::Platform p = build_platform(PlatformSpec::grid5000(), smoke_run(6));
  EXPECT_EQ(p.host_count(), 6 + 3);
}

TEST(ScenarioRunner, FederationSpreadsWorkersAcrossSites) {
  PlatformSpec fed = PlatformSpec::federation();
  auto& spec = std::get<net::FederationSpec>(fed.spec);
  spec.clusters = 3;
  spec.hosts_per_cluster = 4;
  auto d = deploy(fed, smoke_run(6));
  // Host indices are site-major (site = idx / hosts_per_cluster): the
  // round-robin placement must touch every site.
  std::set<int> sites;
  for (net::NodeIdx w : d->workers) {
    for (int i = 0; i < d->platform.host_count(); ++i)
      if (d->platform.host(i) == w) sites.insert(i / 4);
  }
  EXPECT_EQ(sites.size(), 3u);
}

// Regression: the admin hosts (global indices 0..2) spill across sites when
// sites are small; worker placement must not re-boot them.
TEST(ScenarioRunner, FederationSmallSitesDontDoubleBootAdmins) {
  PlatformSpec fed = PlatformSpec::federation();
  auto& spec = std::get<net::FederationSpec>(fed.spec);
  spec.clusters = 3;
  spec.hosts_per_cluster = 2;  // admins occupy all of site 0 plus one site-1 host
  auto d = deploy(fed, smoke_run(2));
  EXPECT_EQ(d->workers.size(), 2u);
  std::set<net::NodeIdx> distinct(d->workers.begin(), d->workers.end());
  distinct.insert(d->submitter);
  EXPECT_EQ(distinct.size(), 3u);

  spec.hosts_per_cluster = 0;  // auto-size: ceil((2+3)/3) = 2 per site
  auto d2 = deploy(fed, smoke_run(2));
  EXPECT_EQ(d2->workers.size(), 2u);
}

TEST(ScenarioRunner, WanIsSeedDeterministic) {
  const RunSpec run = smoke_run(4);
  const net::Platform a = build_platform(PlatformSpec::wan(), run);
  const net::Platform b = build_platform(PlatformSpec::wan(), run);
  EXPECT_EQ(net::render_platform(a), net::render_platform(b));
  RunSpec other = run;
  other.seed = 7;
  const net::Platform c = build_platform(PlatformSpec::wan(), other);
  EXPECT_NE(net::render_platform(a), net::render_platform(c));
}

TEST(ScenarioRunner, InlinePlatformDeploys) {
  std::string plat;
  for (int i = 0; i < 5; ++i) {
    plat += "host h" + std::to_string(i) + " speed 3GHz ip 10.0.0." +
            std::to_string(i + 1) + "\n";
    plat += "link l" + std::to_string(i) + " bw 1Gbps lat 100us\n";
  }
  plat += "router sw\n";
  for (int i = 0; i < 5; ++i)
    plat += "edge h" + std::to_string(i) + " sw l" + std::to_string(i) + "\n";
  auto d = deploy(PlatformSpec::from_text(plat), smoke_run(2));
  EXPECT_EQ(d->platform.host_count(), 5);
  EXPECT_EQ(d->workers.size(), 2u);
}

TEST(ScenarioRunner, MissingPlatformFileThrows) {
  EXPECT_THROW(deploy(PlatformSpec::from_file("/nonexistent/x.plat"), smoke_run(2)),
               std::runtime_error);
}

TEST(ScenarioRunner, TooSmallPlatformThrows) {
  PlatformSpec star = PlatformSpec::grid5000();
  std::get<net::StarSpec>(star.spec).hosts = 4;  // needs peers+3 = 5
  EXPECT_THROW(deploy(star, smoke_run(2)), std::runtime_error);
}

// Paper §IV invariant (Fig. 10): on the identical platform, the dPerf
// prediction must land on the reference execution. mode=both runs both
// phases and reports the relative error in one record.
TEST(ScenarioRunner, BordeplagePredictionMatchesReference) {
  RunSpec run = smoke_run(4);
  run.level = ir::OptLevel::O2;
  run.mode = Mode::Both;
  const Runner runner{{"smoke-both", PlatformSpec::grid5000(), run}};
  const RunRecord rec = runner.run();
  ASSERT_TRUE(rec.reference.has_value());
  ASSERT_TRUE(rec.predicted.has_value());
  EXPECT_GT(rec.reference->solve_seconds, 0);
  EXPECT_GT(rec.predicted->solve_seconds, 0);
  EXPECT_EQ(rec.reference->computation.peers, 4);
  ASSERT_TRUE(rec.prediction_error.has_value());
  EXPECT_LT(*rec.prediction_error, 0.05)
      << "reference " << rec.reference->solve_seconds << " vs predicted "
      << rec.predicted->solve_seconds;
}

TEST(ScenarioRunner, ModeSelectsPhases) {
  RunSpec run = smoke_run(2);
  run.mode = Mode::Reference;
  const RunRecord ref_only = Runner{{"r", PlatformSpec::grid5000(), run}}.run();
  EXPECT_TRUE(ref_only.reference.has_value());
  EXPECT_FALSE(ref_only.predicted.has_value());
  EXPECT_FALSE(ref_only.prediction_error.has_value());
  run.mode = Mode::Predict;
  const RunRecord pred_only = Runner{{"p", PlatformSpec::grid5000(), run}}.run();
  EXPECT_FALSE(pred_only.reference.has_value());
  EXPECT_TRUE(pred_only.predicted.has_value());
}

TEST(ScenarioRunner, RunRecordJsonParsesBack) {
  RunSpec run = smoke_run(2);
  run.mode = Mode::Both;
  const RunRecord rec = Runner{{"json-smoke", PlatformSpec::lan(), run}}.run();
  const std::string json = rec.to_json();
  const JsonValue doc = parse_json(json);  // throws on malformed output
  EXPECT_EQ(doc.at("scenario").as_string(), "json-smoke");
  EXPECT_EQ(doc.at("platform").at("kind").as_string(), "star");
  EXPECT_EQ(doc.at("platform").at("label").as_string(), "lan");
  EXPECT_DOUBLE_EQ(doc.at("run").at("peers").as_double(), 2.0);
  EXPECT_DOUBLE_EQ(doc.at("reference").at("solve_seconds").as_double(),
                   rec.reference->solve_seconds);
  EXPECT_DOUBLE_EQ(doc.at("predicted").at("solve_seconds").as_double(),
                   rec.predicted->solve_seconds);
  EXPECT_TRUE(doc.has("prediction_error"));
  EXPECT_GT(doc.at("reference").at("flownet").at("flows_completed").as_double(), 0);
}

TEST(ScenarioRunner, FlatAllocationRunsThroughRunner) {
  RunSpec run = smoke_run(4);
  run.allocation = p2pdc::AllocationMode::Flat;
  run.mode = Mode::Reference;
  const RunRecord rec = Runner{{"flat", PlatformSpec::grid5000(), run}}.run();
  ASSERT_TRUE(rec.reference.has_value());
  // Flat allocation: no coordinator groups, every peer served directly.
  EXPECT_GT(rec.reference->solve_seconds, 0);
}

}  // namespace
}  // namespace pdc::scenario
