#include "net/flow.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>

#include "obs/trace.hpp"
#include "support/log.hpp"

namespace pdc::net {

namespace {
// Bytes below this are considered fully transferred (guards float drift).
constexpr double kByteEpsilon = 1e-6;

// Completion-tie window: flows whose projected completion lands within this
// slack of the firing time complete together. A few ulps of relative slack
// absorbs float drift between lazily-settled projections (arm time vs heap
// key); it must stay >= 2 ulp so a rearm after a short pop always lands
// strictly later, yet small enough that early-completed flows have far less
// than kByteEpsilon bytes left at any realistic rate.
constexpr Time completion_cutoff(Time now) { return now * (1.0 + 4e-16) + 1e-12; }
}  // namespace

FlowNet::FlowNet(sim::Engine& engine, const Platform& platform, Mode mode)
    : engine_(&engine), platform_(&platform), mode_(mode) {
  sync_linkdirs();
  timer_slot_ = engine_->create_timer_slot([this] { on_completion_event(); });
}

FlowNet::~FlowNet() {
  // Free the slot (and its captured `this`) so a queued completion event can
  // never call into a dead FlowNet and the engine can recycle the id.
  engine_->destroy_timer_slot(timer_slot_);
}

void FlowNet::sync_linkdirs() {
  // The platform may gain links after construction; grow the dense mirrors.
  const std::size_t want = platform_->linkdir_count();
  link_scales_.resize(want / 2, 1.0);
  while (linkdirs_.size() < want) {
    const auto link = static_cast<LinkIdx>(linkdirs_.size() / 2);
    LinkDir ld;
    ld.capacity = platform_->link(link).bandwidth_Bps *
                  link_scales_[static_cast<std::size_t>(link)];
    linkdirs_.push_back(std::move(ld));
  }
  if (cap_.size() < want) {
    cap_.resize(want, 0.0);
    nun_.resize(want, 0);
  }
}

void FlowNet::set_link_scale(LinkIdx link, double scale) {
  if (!(scale > 0))
    throw std::invalid_argument("FlowNet::set_link_scale: scale must be > 0");
  sync_linkdirs();
  link_scales_[static_cast<std::size_t>(link)] = scale;
  const double capacity = platform_->link(link).bandwidth_Bps * scale;
  for (int dir = 0; dir < 2; ++dir) {
    const std::size_t li = linkdir_index(Hop{link, dir});
    linkdirs_[li].capacity = capacity;
    mark_dirty(li);
  }
  ++stats_.link_rescales;
  ++stats_.reshares;
  if (obs::TraceRecorder* tr = obs::trace(); tr != nullptr)
    tr->instant(tr->track("flownet"), "rescale", engine_->now(),
                {{"link", link}, {"scale", scale}});
  if (mode_ == Mode::Reference)
    reference_reshare();
  else
    resolve_dirty();
}

double FlowNet::link_scale(LinkIdx link) const {
  const auto i = static_cast<std::size_t>(link);
  return i < link_scales_.size() ? link_scales_[i] : 1.0;
}

FlowNet::Slot FlowNet::alloc_slot() {
  if (!free_slots_.empty()) {
    const Slot s = free_slots_.back();
    free_slots_.pop_back();
    return s;
  }
  flows_.emplace_back();
  return static_cast<Slot>(flows_.size() - 1);
}

void FlowNet::release_slot(Slot slot) {
  Flow& f = flows_[slot];
  id_to_slot_.erase(f.id);
  f.id = 0;
  f.hops.clear();
  f.link_pos.clear();
  f.on_complete.reset();
  free_slots_.push_back(slot);
  --live_flows_;
}

FlowId FlowNet::start_flow(NodeIdx src, NodeIdx dst, double bytes,
                           sim::EventFn on_complete) {
  ++stats_.flows_started;
  const FlowId id = next_id_++;
  if (obs::TraceRecorder* tr = obs::trace(); tr != nullptr) {
    const obs::TrackId t = tr->track("flownet");
    tr->async_begin(t, "flow", "flow", id, engine_->now(),
                    {{"src", src}, {"dst", dst}, {"bytes", bytes}});
    if (src == dst) tr->async_end(t, "flow", "flow", id, engine_->now());
  }
  if (src == dst) {
    ++stats_.flows_completed;
    stats_.bytes_completed += bytes;
    engine_->post(std::move(on_complete));
    return id;
  }
  const Route& route = platform_->route(src, dst);
  sync_linkdirs();
  const Slot slot = alloc_slot();
  Flow& f = flows_[slot];
  f.id = id;
  f.remaining = std::max(bytes, 0.0);
  f.total_bytes = f.remaining;
  f.rate = 0;
  f.phase = Phase::Latency;
  f.starve_warned = false;
  f.last_touched = engine_->now();
  f.hops = route.hops;
  f.link_pos.assign(f.hops.size(), 0);
  f.on_complete = std::move(on_complete);
  id_to_slot_.emplace(id, slot);
  ++live_flows_;
  engine_->schedule_after(route.latency, [this, id] {
    auto it = id_to_slot_.find(id);
    if (it == id_to_slot_.end()) return;
    begin_transfer(it->second);
  });
  return id;
}

sim::Task<void> FlowNet::transfer(NodeIdx src, NodeIdx dst, double bytes) {
  // The gate lives on this coroutine's frame: the frame stays suspended on
  // gate.wait() until the completion callback opens it, so the capture is a
  // plain pointer and the whole await is allocation-free (the old
  // shared_ptr<Gate> cost two allocations per transfer — twice per reliable
  // P2PSAP message).
  sim::Gate gate{*engine_};
  start_flow(src, dst, bytes, [g = &gate] { g->open(); });
  co_await gate.wait();
}

std::vector<double> FlowNet::hypothetical_rates(
    const std::vector<std::pair<NodeIdx, NodeIdx>>& endpoints) const {
  // Progressive filling over a local capacity map, mirroring
  // reference_recompute_rates but against the platform's (churn-rescaled)
  // nominal capacities instead of live flow state.
  struct Entry {
    std::vector<Hop> hops;  // copied: the platform's route cache may evict
    std::size_t index;
  };
  std::vector<double> rates(endpoints.size(),
                            std::numeric_limits<double>::infinity());
  std::map<std::size_t, double> capacity;
  std::map<std::size_t, int> unfixed_count;
  std::vector<Entry> unfixed;
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    const auto [src, dst] = endpoints[i];
    if (src == dst) continue;
    const Route& route = platform_->route(src, dst);
    Entry e{route.hops, i};
    for (const Hop& h : e.hops) {
      const std::size_t key = linkdir_index(h);
      capacity.emplace(key, platform_->link(h.link).bandwidth_Bps * link_scale(h.link));
      ++unfixed_count[key];
    }
    unfixed.push_back(std::move(e));
  }
  while (!unfixed.empty()) {
    double best_share = std::numeric_limits<double>::infinity();
    for (const auto& [key, cap] : capacity) {
      const int n = unfixed_count[key];
      if (n > 0) best_share = std::min(best_share, cap / n);
    }
    if (!std::isfinite(best_share)) break;
    std::vector<Entry> still_unfixed;
    for (Entry& e : unfixed) {
      bool at_bottleneck = false;
      for (const Hop& h : e.hops) {
        const auto key = linkdir_index(h);
        if (unfixed_count[key] > 0 &&
            capacity[key] / unfixed_count[key] <= best_share * (1 + 1e-12)) {
          at_bottleneck = true;
          break;
        }
      }
      if (at_bottleneck) {
        rates[e.index] = best_share;
        for (const Hop& h : e.hops) {
          const auto key = linkdir_index(h);
          capacity[key] = std::max(0.0, capacity[key] - best_share);
          --unfixed_count[key];
        }
      } else {
        still_unfixed.push_back(std::move(e));
      }
    }
    if (still_unfixed.size() == unfixed.size()) break;  // numeric safety
    unfixed.swap(still_unfixed);
  }
  return rates;
}

double FlowNet::flow_rate(FlowId id) const {
  auto it = id_to_slot_.find(id);
  return it == id_to_slot_.end() ? 0.0 : flows_[it->second].rate;
}

void FlowNet::mark_dirty(std::size_t linkdir) {
  LinkDir& ld = linkdirs_[linkdir];
  if (!ld.dirty) {
    ld.dirty = true;
    dirty_linkdirs_.push_back(linkdir);
  }
}

void FlowNet::begin_transfer(Slot slot) {
  Flow& f = flows_[slot];
  f.phase = Phase::Transfer;
  f.last_touched = engine_->now();
  ++transfer_flows_;
  for (std::uint32_t i = 0; i < f.hops.size(); ++i) {
    const std::size_t li = linkdir_index(f.hops[i]);
    LinkDir& ld = linkdirs_[li];
    f.link_pos[i] = static_cast<std::uint32_t>(ld.members.size());
    ld.members.push_back(LinkMember{slot, i});
    mark_dirty(li);
  }
  ++stats_.reshares;
  if (mode_ == Mode::Reference)
    reference_reshare();
  else
    resolve_dirty();
}

void FlowNet::remove_membership(Slot slot) {
  Flow& f = flows_[slot];
  --transfer_flows_;
  for (std::uint32_t i = 0; i < f.hops.size(); ++i) {
    const std::size_t li = linkdir_index(f.hops[i]);
    LinkDir& ld = linkdirs_[li];
    const std::uint32_t pos = f.link_pos[i];
    const LinkMember moved = ld.members.back();
    ld.members[pos] = moved;
    ld.members.pop_back();
    if (moved.slot != slot || moved.hop != i)
      flows_[moved.slot].link_pos[moved.hop] = pos;
    mark_dirty(li);
  }
}

void FlowNet::settle(Flow& f, Time now) {
  if (f.phase == Phase::Transfer && f.rate > 0 && now > f.last_touched)
    f.remaining = std::max(0.0, f.remaining - f.rate * (now - f.last_touched));
  f.last_touched = now;
}

Time FlowNet::projected_completion(const Flow& f, Time now) const {
  if (f.remaining <= kByteEpsilon) return now;  // drains at the next event
  if (f.rate <= 0) return kTimeInfinity;        // starved: never completes
  return now + f.remaining / f.rate;
}

void FlowNet::warn_starved(Flow& f) {
  f.starve_warned = true;
  ++stats_.flows_starved;
  PDC_LOG_WARN("FlowNet: flow " + std::to_string(f.id) + " starved (rate 0, " +
               std::to_string(f.remaining) + " B left): it will never complete");
}

// ---------------------------------------------------------------------------
// Incremental engine.

void FlowNet::resolve_dirty() {
  const Time now = engine_->now();
  ++epoch_;
  comp_links_.clear();
  affected_.clear();
  bfs_stack_.clear();

  // Affected component: everything reachable from dirty linkdirs over the
  // bipartite linkdir <-> flow graph. Flows outside it keep their rates,
  // which is exact because max-min allocations decompose by component.
  for (const std::size_t li : dirty_linkdirs_) {
    LinkDir& ld = linkdirs_[li];
    ld.dirty = false;
    if (ld.visit_epoch != epoch_) {
      ld.visit_epoch = epoch_;
      comp_links_.push_back(li);
      bfs_stack_.push_back(li);
    }
  }
  dirty_linkdirs_.clear();
  while (!bfs_stack_.empty()) {
    const std::size_t li = bfs_stack_.back();
    bfs_stack_.pop_back();
    for (const LinkMember& m : linkdirs_[li].members) {
      Flow& f = flows_[m.slot];
      if (f.visit_epoch == epoch_) continue;
      f.visit_epoch = epoch_;
      affected_.push_back(m.slot);
      for (const Hop& h : f.hops) {
        const std::size_t hi = linkdir_index(h);
        LinkDir& ld = linkdirs_[hi];
        if (ld.visit_epoch != epoch_) {
          ld.visit_epoch = epoch_;
          comp_links_.push_back(hi);
          bfs_stack_.push_back(hi);
        }
      }
    }
  }

  stats_.flows_rescanned += affected_.size();
  if (affected_.size() < transfer_flows_) ++stats_.reshares_partial;
  if (obs::TraceRecorder* tr = obs::trace(); tr != nullptr)
    tr->instant(tr->track("flownet"), "reshare", now,
                {{"rescanned", static_cast<std::uint64_t>(affected_.size())}});

  // Settle progress under the outgoing rates, then re-solve the component by
  // progressive filling (identical fixing rule to the reference oracle).
  for (const Slot s : affected_) {
    Flow& f = flows_[s];
    settle(f, now);
    f.rate = 0;
  }
  for (const std::size_t li : comp_links_) {
    cap_[li] = linkdirs_[li].capacity;
    nun_[li] = static_cast<int>(linkdirs_[li].members.size());
  }
  std::size_t unfixed = affected_.size();
  while (unfixed > 0) {
    double best = std::numeric_limits<double>::infinity();
    for (const std::size_t li : comp_links_)
      if (nun_[li] > 0) best = std::min(best, cap_[li] / nun_[li]);
    if (!std::isfinite(best)) break;  // no constrained flows remain
    bool fixed_any = false;
    for (const std::size_t li : comp_links_) {
      if (nun_[li] <= 0 || cap_[li] / nun_[li] > best * (1 + 1e-12)) continue;
      for (const LinkMember& m : linkdirs_[li].members) {
        Flow& f = flows_[m.slot];
        if (f.fixed_epoch == epoch_) continue;
        f.fixed_epoch = epoch_;
        f.rate = best;
        --unfixed;
        fixed_any = true;
        for (const Hop& h : f.hops) {
          const std::size_t hi = linkdir_index(h);
          cap_[hi] = std::max(0.0, cap_[hi] - best);
          --nun_[hi];
        }
      }
    }
    if (!fixed_any) break;  // numeric safety
  }

  // Re-key only the affected flows; untouched components keep their absolute
  // projected completion times.
  for (const Slot s : affected_) {
    Flow& f = flows_[s];
    if (f.rate <= 0 && f.remaining > kByteEpsilon && !f.starve_warned) warn_starved(f);
    completion_heap_.set(s, projected_completion(f, now));
  }
  rearm_completion_timer();
}

void FlowNet::rearm_completion_timer() {
  const Time next = completion_heap_.empty() ? kTimeInfinity : completion_heap_.top_key();
  if (next >= kTimeInfinity) {
    if (armed_at_ < kTimeInfinity) {
      engine_->cancel_timer_slot(timer_slot_);
      armed_at_ = kTimeInfinity;
    }
    return;
  }
  if (armed_at_ == next && engine_->timer_slot_armed(timer_slot_)) return;
  armed_at_ = next;
  engine_->arm_timer_slot(timer_slot_, std::max(0.0, next - engine_->now()));
}

void FlowNet::on_completion_event() {
  if (mode_ == Mode::Reference) {
    reference_completion_event();
    return;
  }
  const Time now = engine_->now();
  armed_at_ = kTimeInfinity;  // the arm we are inside just fired
  const Time cutoff = completion_cutoff(now);
  done_scratch_.clear();
  while (!completion_heap_.empty() && completion_heap_.top_key() <= cutoff) {
    const Slot s = completion_heap_.top();
    completion_heap_.pop();
    settle(flows_[s], now);
    done_scratch_.push_back(s);
  }
  // Ascending id = start order, matching the reference oracle's map order.
  std::sort(done_scratch_.begin(), done_scratch_.end(),
            [this](Slot a, Slot b) { return flows_[a].id < flows_[b].id; });
  for (const Slot s : done_scratch_) remove_membership(s);
  for (const Slot s : done_scratch_) {
    Flow& f = flows_[s];
    ++stats_.flows_completed;
    stats_.bytes_completed += f.total_bytes;
    if (obs::TraceRecorder* tr = obs::trace(); tr != nullptr)
      tr->async_end(tr->track("flownet"), "flow", "flow", f.id, now);
    engine_->post(std::move(f.on_complete));
    release_slot(s);
  }
  ++stats_.reshares;
  resolve_dirty();
}

// ---------------------------------------------------------------------------
// Reference oracle: the original full recompute, now over the slot-map.

void FlowNet::reference_reshare() {
  reference_advance_progress();
  reference_recompute_rates();
  reference_schedule_next_completion();
}

void FlowNet::reference_advance_progress() {
  const Time dt = engine_->now() - last_update_;
  if (dt > 0) {
    for (Flow& f : flows_)
      if (f.id && f.phase == Phase::Transfer && f.rate > 0)
        f.remaining = std::max(0.0, f.remaining - f.rate * dt);
  }
  last_update_ = engine_->now();
}

void FlowNet::reference_recompute_rates() {
  // Progressive filling: repeatedly saturate the most constrained link.
  std::map<std::size_t, double> capacity;
  std::map<std::size_t, int> unfixed_count;
  std::vector<Flow*> unfixed;
  for (Flow& f : flows_) {
    if (!f.id) continue;
    f.rate = 0;
    if (f.phase != Phase::Transfer) continue;
    unfixed.push_back(&f);
    for (const Hop& h : f.hops) {
      // Dense records carry the (possibly churn-rescaled) capacity; they are
      // synced for every hop a live flow crosses.
      capacity.emplace(linkdir_index(h), linkdirs_[linkdir_index(h)].capacity);
      ++unfixed_count[linkdir_index(h)];
    }
  }
  while (!unfixed.empty()) {
    double best_share = std::numeric_limits<double>::infinity();
    for (const auto& [key, cap] : capacity) {
      const int n = unfixed_count[key];
      if (n > 0) best_share = std::min(best_share, cap / n);
    }
    if (!std::isfinite(best_share)) break;  // no constrained flows remain
    // Fix every unfixed flow that crosses a bottleneck link.
    std::vector<Flow*> still_unfixed;
    for (Flow* f : unfixed) {
      bool at_bottleneck = false;
      for (const Hop& h : f->hops) {
        const auto key = linkdir_index(h);
        if (unfixed_count[key] > 0 &&
            capacity[key] / unfixed_count[key] <= best_share * (1 + 1e-12)) {
          at_bottleneck = true;
          break;
        }
      }
      if (at_bottleneck) {
        f->rate = best_share;
        for (const Hop& h : f->hops) {
          const auto key = linkdir_index(h);
          capacity[key] = std::max(0.0, capacity[key] - best_share);
          --unfixed_count[key];
        }
      } else {
        still_unfixed.push_back(f);
      }
    }
    if (still_unfixed.size() == unfixed.size()) break;  // numeric safety
    unfixed.swap(still_unfixed);
  }
  // The reference path bypasses the dirty queue entirely; drop any marks so
  // they cannot pile up.
  for (const std::size_t li : dirty_linkdirs_) linkdirs_[li].dirty = false;
  dirty_linkdirs_.clear();
}

void FlowNet::reference_schedule_next_completion() {
  engine_->cancel_timer_slot(timer_slot_);
  Time earliest = kTimeInfinity;
  for (Flow& f : flows_) {
    if (!f.id || f.phase != Phase::Transfer) continue;
    if (f.remaining <= kByteEpsilon) {
      earliest = 0;
      break;
    }
    if (f.rate > 0)
      earliest = std::min(earliest, f.remaining / f.rate);
    else if (!f.starve_warned)
      warn_starved(f);
  }
  if (earliest >= kTimeInfinity) return;
  engine_->arm_timer_slot(timer_slot_, earliest);
}

void FlowNet::reference_completion_event() {
  reference_advance_progress();
  // Complete every flow that has drained (ties complete together), in id
  // (= start) order for deterministic callback sequencing.
  done_scratch_.clear();
  for (Slot s = 0; s < flows_.size(); ++s) {
    Flow& f = flows_[s];
    if (f.id && f.phase == Phase::Transfer && f.remaining <= kByteEpsilon)
      done_scratch_.push_back(s);
  }
  std::sort(done_scratch_.begin(), done_scratch_.end(),
            [this](Slot a, Slot b) { return flows_[a].id < flows_[b].id; });
  for (const Slot s : done_scratch_) remove_membership(s);
  for (const Slot s : done_scratch_) {
    Flow& f = flows_[s];
    ++stats_.flows_completed;
    stats_.bytes_completed += f.total_bytes;
    if (obs::TraceRecorder* tr = obs::trace(); tr != nullptr)
      tr->async_end(tr->track("flownet"), "flow", "flow", f.id, engine_->now());
    engine_->post(std::move(f.on_complete));
    release_slot(s);
  }
  ++stats_.reshares;
  reference_reshare();
}

}  // namespace pdc::net
