#include "sim/engine.hpp"

#include <algorithm>

namespace pdc::sim {

void Engine::schedule_at(Time t, std::function<void()> fn) {
  if (t < now_) t = now_;  // never schedule into the past
  heap_.push_back(Event{t, seq_++, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(),
                 [](const Event& a, const Event& b) { return a > b; });
}

TimerHandle Engine::schedule_cancellable(Time dt, std::function<void()> fn) {
  // The shared state *is* the closure: cancel() nulls it out, dropping any
  // captures immediately even though the (now empty) event stays queued.
  auto shared = std::make_shared<std::function<void()>>(std::move(fn));
  schedule_after(dt, [shared] {
    if (!*shared) return;  // cancelled
    auto f = std::move(*shared);
    *shared = nullptr;  // mark fired so active() turns false
    f();
  });
  return TimerHandle{shared};
}

int Engine::create_timer_slot(std::function<void()> fn) {
  if (!free_timer_slots_.empty()) {
    const int slot = free_timer_slots_.back();
    free_timer_slots_.pop_back();
    auto& s = timer_slots_[static_cast<std::size_t>(slot)];
    s.fn = std::move(fn);
    ++s.gen;  // keeps growing so events from the previous owner stay stale
    s.armed = false;
    return slot;
  }
  timer_slots_.push_back(TimerSlot{std::move(fn), 0, false});
  return static_cast<int>(timer_slots_.size()) - 1;
}

void Engine::arm_timer_slot(int slot, Time dt) {
  auto& s = timer_slots_[static_cast<std::size_t>(slot)];
  ++s.gen;  // invalidates any previously pending arm
  s.armed = true;
  Time t = now_ + dt;
  if (t < now_) t = now_;
  heap_.push_back(Event{t, seq_++, {}, slot, s.gen});
  std::push_heap(heap_.begin(), heap_.end(),
                 [](const Event& a, const Event& b) { return a > b; });
}

void Engine::cancel_timer_slot(int slot) {
  auto& s = timer_slots_[static_cast<std::size_t>(slot)];
  ++s.gen;
  s.armed = false;
}

void Engine::destroy_timer_slot(int slot) {
  auto& s = timer_slots_[static_cast<std::size_t>(slot)];
  ++s.gen;
  s.armed = false;
  s.fn = nullptr;  // release the closure (and anything it captures) now
  free_timer_slots_.push_back(slot);
}

void Engine::spawn(Process p, std::string name) {
  Process::Handle h = p.release();
  h.promise().engine = this;
  h.promise().name = std::move(name);
  registered_.push_back(h);
  ++live_processes_;
  post([h] { h.resume(); });
}

void Process::promise_type::FinalAwaiter::await_suspend(Process::Handle h) noexcept {
  h.promise().engine->on_process_done(h);
}

void Engine::on_process_done(Process::Handle h) {
  --live_processes_;
  if (h.promise().error && !pending_error_) pending_error_ = h.promise().error;
  zombies_.push_back(h);
}

void Engine::reap_zombies() {
  for (auto h : zombies_) {
    std::erase(registered_, h);
    h.destroy();
  }
  zombies_.clear();
}

void Engine::dispatch(Event ev) {
  now_ = ev.t;
  ++dispatched_;
  if (ev.slot >= 0) {
    auto& s = timer_slots_[static_cast<std::size_t>(ev.slot)];
    if (s.armed && s.gen == ev.gen) {
      s.armed = false;
      s.fn();
    }
  } else {
    ev.fn();
  }
  reap_zombies();
  if (pending_error_) {
    auto e = pending_error_;
    pending_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

bool Engine::step() {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(),
                [](const Event& a, const Event& b) { return a > b; });
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  dispatch(std::move(ev));
  return true;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::run_until(Time t_end) {
  while (!heap_.empty() && heap_.front().t <= t_end) step();
  if (now_ < t_end) now_ = t_end;
}

Engine::~Engine() {
  // Destroy still-suspended processes; their frames' local destructors run.
  reap_zombies();
  for (auto h : registered_) h.destroy();
}

}  // namespace pdc::sim
