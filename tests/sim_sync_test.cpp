#include "sim/sync.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pdc::sim {
namespace {

TEST(Latch, OpensWhenCountReachesZero) {
  Engine eng;
  Latch latch{eng, 3};
  std::vector<Time> resumed;
  for (int i = 0; i < 2; ++i) {
    eng.spawn([](Engine& e, Latch& l, std::vector<Time>& out) -> Process {
      co_await l.wait();
      out.push_back(e.now());
    }(eng, latch, resumed));
  }
  eng.schedule_at(1.0, [&] { latch.count_down(); });
  eng.schedule_at(2.0, [&] { latch.count_down(); });
  eng.schedule_at(3.0, [&] { latch.count_down(); });
  eng.run();
  ASSERT_EQ(resumed.size(), 2u);
  EXPECT_DOUBLE_EQ(resumed[0], 3.0);
  EXPECT_DOUBLE_EQ(resumed[1], 3.0);
  EXPECT_TRUE(latch.open());
}

TEST(Latch, WaitAfterOpenDoesNotSuspend) {
  Engine eng;
  Latch latch{eng, 0};
  Time when = -1;
  eng.spawn([](Engine& e, Latch& l, Time& w) -> Process {
    co_await l.wait();
    w = e.now();
  }(eng, latch, when));
  eng.run();
  EXPECT_EQ(when, 0.0);
}

TEST(Latch, CountDownByMoreThanOne) {
  Engine eng;
  Latch latch{eng, 5};
  bool resumed = false;
  eng.spawn([](Latch& l, bool& r) -> Process {
    co_await l.wait();
    r = true;
  }(latch, resumed));
  eng.schedule_at(1.0, [&] { latch.count_down(5); });
  eng.run();
  EXPECT_TRUE(resumed);
}

TEST(Gate, OpenReleasesAllWaitersOnce) {
  Engine eng;
  Gate gate{eng};
  int released = 0;
  for (int i = 0; i < 4; ++i) {
    eng.spawn([](Gate& g, int& n) -> Process {
      co_await g.wait();
      ++n;
    }(gate, released));
  }
  eng.schedule_at(1.0, [&] { gate.open(); });
  eng.schedule_at(2.0, [&] { gate.open(); });  // idempotent
  eng.run();
  EXPECT_EQ(released, 4);
  EXPECT_TRUE(gate.is_open());
}

TEST(Gate, UsableAsCompletionSignalAcrossProcesses) {
  Engine eng;
  Gate done{eng};
  std::vector<int> order;
  eng.spawn([](Engine& e, Gate& g, std::vector<int>& ord) -> Process {
    co_await e.sleep(5.0);
    ord.push_back(1);
    g.open();
  }(eng, done, order));
  eng.spawn([](Gate& g, std::vector<int>& ord) -> Process {
    co_await g.wait();
    ord.push_back(2);
  }(done, order));
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace pdc::sim
