#include <cctype>
#include <map>

#include "minic/token.hpp"

namespace pdc::minic {

namespace {
const std::map<std::string, Tok> kKeywords{
    {"int", Tok::KwInt},     {"double", Tok::KwDouble}, {"void", Tok::KwVoid},
    {"if", Tok::KwIf},       {"else", Tok::KwElse},     {"while", Tok::KwWhile},
    {"for", Tok::KwFor},     {"return", Tok::KwReturn},
};
}  // namespace

std::vector<Token> lex(const std::string& src) {
  std::vector<Token> out;
  int line = 1, col = 1;
  std::size_t i = 0;
  auto peek = [&](std::size_t ahead = 0) -> char {
    return i + ahead < src.size() ? src[i + ahead] : '\0';
  };
  auto advance = [&] {
    if (src[i] == '\n') {
      ++line;
      col = 1;
    } else {
      ++col;
    }
    ++i;
  };
  auto push = [&](Tok kind, std::string text, int tline, int tcol) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = tline;
    t.col = tcol;
    out.push_back(std::move(t));
  };

  while (i < src.size()) {
    const char c = peek();
    const int tline = line, tcol = col;
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      while (i < src.size() && peek() != '\n') advance();
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      advance();
      advance();
      while (i < src.size() && !(peek() == '*' && peek(1) == '/')) advance();
      if (i >= src.size()) throw CompileError(tline, tcol, "unterminated comment");
      advance();
      advance();
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      std::string num;
      bool is_float = false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        num += peek();
        advance();
      }
      if (peek() == '.') {
        is_float = true;
        num += peek();
        advance();
        while (std::isdigit(static_cast<unsigned char>(peek()))) {
          num += peek();
          advance();
        }
      }
      if (peek() == 'e' || peek() == 'E') {
        is_float = true;
        num += peek();
        advance();
        if (peek() == '+' || peek() == '-') {
          num += peek();
          advance();
        }
        if (!std::isdigit(static_cast<unsigned char>(peek())))
          throw CompileError(line, col, "malformed exponent");
        while (std::isdigit(static_cast<unsigned char>(peek()))) {
          num += peek();
          advance();
        }
      }
      Token t;
      t.text = num;
      t.line = tline;
      t.col = tcol;
      if (is_float) {
        t.kind = Tok::FloatLit;
        t.float_val = std::stod(num);
      } else {
        t.kind = Tok::IntLit;
        t.int_val = std::stoll(num);
      }
      out.push_back(std::move(t));
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string ident;
      while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') {
        ident += peek();
        advance();
      }
      auto kw = kKeywords.find(ident);
      push(kw != kKeywords.end() ? kw->second : Tok::Ident, ident, tline, tcol);
      continue;
    }
    // Operators and punctuation.
    auto two = [&](char second, Tok pair, Tok single) {
      if (peek(1) == second) {
        advance();
        advance();
        push(pair, std::string{c, second}, tline, tcol);
      } else {
        advance();
        push(single, std::string{c}, tline, tcol);
      }
    };
    switch (c) {
      case '(': advance(); push(Tok::LParen, "(", tline, tcol); break;
      case ')': advance(); push(Tok::RParen, ")", tline, tcol); break;
      case '{': advance(); push(Tok::LBrace, "{", tline, tcol); break;
      case '}': advance(); push(Tok::RBrace, "}", tline, tcol); break;
      case '[': advance(); push(Tok::LBracket, "[", tline, tcol); break;
      case ']': advance(); push(Tok::RBracket, "]", tline, tcol); break;
      case ',': advance(); push(Tok::Comma, ",", tline, tcol); break;
      case ';': advance(); push(Tok::Semi, ";", tline, tcol); break;
      case '+': advance(); push(Tok::Plus, "+", tline, tcol); break;
      case '-': advance(); push(Tok::Minus, "-", tline, tcol); break;
      case '*': advance(); push(Tok::Star, "*", tline, tcol); break;
      case '/': advance(); push(Tok::Slash, "/", tline, tcol); break;
      case '%': advance(); push(Tok::Percent, "%", tline, tcol); break;
      case '=': two('=', Tok::EqEq, Tok::Assign); break;
      case '<': two('=', Tok::Le, Tok::Lt); break;
      case '>': two('=', Tok::Ge, Tok::Gt); break;
      case '!': two('=', Tok::Ne, Tok::Not); break;
      case '&':
        if (peek(1) != '&') throw CompileError(tline, tcol, "expected '&&'");
        advance();
        advance();
        push(Tok::AndAnd, "&&", tline, tcol);
        break;
      case '|':
        if (peek(1) != '|') throw CompileError(tline, tcol, "expected '||'");
        advance();
        advance();
        push(Tok::OrOr, "||", tline, tcol);
        break;
      default:
        throw CompileError(tline, tcol, std::string("unexpected character '") + c + "'");
    }
  }
  Token end;
  end.kind = Tok::End;
  end.line = line;
  end.col = col;
  out.push_back(end);
  return out;
}

std::string tok_name(Tok kind) {
  switch (kind) {
    case Tok::IntLit: return "integer literal";
    case Tok::FloatLit: return "float literal";
    case Tok::Ident: return "identifier";
    case Tok::KwInt: return "'int'";
    case Tok::KwDouble: return "'double'";
    case Tok::KwVoid: return "'void'";
    case Tok::KwIf: return "'if'";
    case Tok::KwElse: return "'else'";
    case Tok::KwWhile: return "'while'";
    case Tok::KwFor: return "'for'";
    case Tok::KwReturn: return "'return'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::LBrace: return "'{'";
    case Tok::RBrace: return "'}'";
    case Tok::LBracket: return "'['";
    case Tok::RBracket: return "']'";
    case Tok::Comma: return "','";
    case Tok::Semi: return "';'";
    case Tok::Assign: return "'='";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Star: return "'*'";
    case Tok::Slash: return "'/'";
    case Tok::Percent: return "'%'";
    case Tok::Lt: return "'<'";
    case Tok::Le: return "'<='";
    case Tok::Gt: return "'>'";
    case Tok::Ge: return "'>='";
    case Tok::EqEq: return "'=='";
    case Tok::Ne: return "'!='";
    case Tok::AndAnd: return "'&&'";
    case Tok::OrOr: return "'||'";
    case Tok::Not: return "'!'";
    case Tok::End: return "end of input";
  }
  return "?";
}

}  // namespace pdc::minic
