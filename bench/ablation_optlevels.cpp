// Ablation A5: what each optimization-pipeline stage buys on the obstacle
// kernel -- static code size, executed instructions, executed cycles and the
// per-point sweep cost that drives the Fig. 9 level spread.
#include <cstdio>

#include "dperf/dperf.hpp"
#include "obstacle/minic_kernel.hpp"
#include "obstacle/problem.hpp"
#include "support/table.hpp"
#include "vm/vm.hpp"

int main() {
  using namespace pdc;
  obstacle::ObstacleProblem bench;
  bench.n = 66;
  const dperf::Workload workload = obstacle::kernel_workload(bench, 9, 3);

  std::printf("Ablation A5 -- optimization pipeline on the obstacle kernel (%dx%d, 9 iters)\n\n",
              bench.n, bench.n);
  TextTable table({"Level", "static instrs", "executed instrs", "cycles", "iter ns/pt",
                   "vs O0"});
  double o0_ns = 0;
  for (ir::OptLevel lvl : ir::all_opt_levels()) {
    dperf::DperfOptions opt;
    opt.level = lvl;
    const dperf::Dperf pipeline{obstacle::minic_kernel_source(), opt};
    const ir::IrProgram prog = ir::compile(pipeline.instrumented().program, lvl);

    vm::Vm m{prog};
    struct Hooks : vm::CommHooks {
      const dperf::Workload* w;
      long long param(int i) override { return w->int_params[static_cast<std::size_t>(i)]; }
      double param_f(int i) override { return w->float_params[static_cast<std::size_t>(i)]; }
    } hooks;
    hooks.w = &workload;
    m.set_hooks(&hooks);
    m.run_main();

    const dperf::BlockTimings t = pipeline.benchmark(workload);
    const double ns_pt = t.per_iteration_ns() / ((bench.n - 2.0) * (bench.n - 2.0));
    if (lvl == ir::OptLevel::O0) o0_ns = ns_pt;
    char speedup[32];
    std::snprintf(speedup, sizeof speedup, "%.2fx", o0_ns / ns_pt);
    table.add_row({ir::opt_level_name(lvl), std::to_string(prog.instr_count()),
                   std::to_string(m.papi().instructions),
                   TextTable::num(m.cycles(), 0), TextTable::num(ns_pt, 2), speedup});
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
