// obs::TraceRecorder and the Runner trace plumbing: the emitted document is
// valid Chrome trace-event JSON (sync spans nest, per-track timestamps are
// monotone), a tiny deterministic scenario reproduces its committed golden
// byte for byte (also under concurrency — campaign -j must not change what
// any single run records), and tracing leaves the RunRecord untouched.
//
// Regenerate the golden after an intentional format change with:
//   PDC_UPDATE_GOLDEN=1 ./build/tests/obs_trace_test
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "support/env.hpp"
#include "support/json.hpp"

namespace pdc {
namespace {

/// A tiny deterministic churny scenario: every instrumented subsystem fires
/// (flows, reserve handshakes, P2PSAP phases, dPerf replay, churn events)
/// within a fraction of a second of wall clock.
scenario::ScenarioSpec tiny_spec() {
  scenario::ScenarioSpec spec;
  spec.name = "obs-tiny";
  spec.platform = scenario::PlatformSpec::lan();
  spec.run.peers = 3;
  spec.run.grid_n = 34;
  spec.run.iters = 12;
  spec.run.rcheck = 4;
  spec.run.bench_n = 34;
  spec.run.bench_iters = 6;
  spec.run.bench_rcheck = 3;
  spec.run.churn.events = {
      {churn::ChurnEvent::Kind::LinkDegrade, 0.5, 0, 0.5},
      {churn::ChurnEvent::Kind::LinkRestore, 1.0, 0, 1.0},
  };
  return spec;
}

std::string run_traced(const std::string& path) {
  scenario::ScenarioSpec spec = tiny_spec();
  spec.run.trace_path = path;
  const scenario::RunRecord rec = scenario::Runner{std::move(spec)}.try_run();
  EXPECT_TRUE(rec.ok()) << rec.error;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "trace file not written: " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

struct ParsedEvent {
  char ph = 0;
  int pid = -1, tid = -1;
  double ts = 0;
  std::string name, cat, id;
};

std::vector<ParsedEvent> parse_events(const std::string& text) {
  const JsonValue doc = parse_json(text);
  std::vector<ParsedEvent> out;
  for (const JsonValue& e : doc.at("traceEvents").as_array()) {
    ParsedEvent ev;
    ev.ph = e.at("ph").as_string()[0];
    if (ev.ph == 'M') continue;  // metadata carries no timestamp
    ev.pid = static_cast<int>(e.at("pid").as_double());
    ev.tid = static_cast<int>(e.at("tid").as_double());
    ev.ts = e.at("ts").as_double();
    if (e.has("name")) ev.name = e.at("name").as_string();
    if (e.has("cat")) ev.cat = e.at("cat").as_string();
    if (e.has("id")) ev.id = format_shortest(e.at("id").as_double());
    out.push_back(std::move(ev));
  }
  return out;
}

TEST(ObsTrace, RecorderEmitsWellFormedDocument) {
  obs::TraceRecorder tr;
  tr.begin_phase("reference");
  const obs::TrackId run = tr.track("run");
  const obs::TrackId flows = tr.track("flownet");
  tr.span_begin(run, "reference", 0.0, {{"peers", 3}});
  tr.async_begin(flows, "flow", "flow", 7, 0.25, {{"bytes", 1024.0}});
  tr.instant(flows, "rescale", 0.5, {{"link", 2}, {"scale", 0.5}});
  tr.counter(flows, "queue", 0.75, {{"pending", 12}});
  tr.async_end(flows, "flow", "flow", 7, 1.0);
  tr.span_end(run, 2.0);
  tr.begin_phase("predicted");
  const obs::TrackId run2 = tr.track("run");
  tr.span_begin(run2, "predicted", 2.0);
  tr.span_end(run2, 3.0);

  const std::string text = tr.to_json();
  const JsonValue doc = parse_json(text);
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");

  // Metadata names both phases (processes) and every track (thread).
  int process_names = 0, thread_names = 0;
  for (const JsonValue& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() != "M") continue;
    if (e.at("name").as_string() == "process_name") ++process_names;
    if (e.at("name").as_string() == "thread_name") ++thread_names;
  }
  EXPECT_EQ(process_names, 2);
  EXPECT_EQ(thread_names, 3);  // run+flownet in phase 0, run in phase 1

  const std::vector<ParsedEvent> events = parse_events(text);
  ASSERT_EQ(events.size(), 8u);
  // Timestamps are simulated seconds rendered as microseconds.
  EXPECT_EQ(events[0].ts, 0.0);
  EXPECT_EQ(events[1].ts, 250000.0);
  EXPECT_EQ(events.back().ts, 3000000.0);
  // The two phases use distinct pids; tracks restart per phase.
  EXPECT_EQ(events[0].pid, 0);
  EXPECT_EQ(events.back().pid, 1);
}

void check_validity(const std::string& text) {
  const std::vector<ParsedEvent> events = parse_events(text);
  ASSERT_FALSE(events.empty());
  std::map<std::pair<int, int>, int> sync_depth;
  std::map<std::pair<int, int>, double> last_ts;
  std::map<std::pair<std::string, std::string>, int> async_open;  // (cat,id)
  for (const ParsedEvent& e : events) {
    const auto track = std::make_pair(e.pid, e.tid);
    // Timestamps never run backwards within one track.
    const auto it = last_ts.find(track);
    if (it != last_ts.end()) {
      EXPECT_GE(e.ts, it->second) << e.name;
    }
    last_ts[track] = e.ts;
    switch (e.ph) {
      case 'B': ++sync_depth[track]; break;
      case 'E':
        --sync_depth[track];
        EXPECT_GE(sync_depth[track], 0) << "E without B on track " << e.tid;
        break;
      case 'b': ++async_open[std::make_pair(e.cat, e.id)]; break;
      case 'e': {
        const int open = --async_open[std::make_pair(e.cat, e.id)];
        EXPECT_GE(open, 0) << "async e without b: " << e.cat << "/" << e.id;
        break;
      }
      case 'i':
      case 'C': break;
      default: FAIL() << "unexpected ph '" << e.ph << "'";
    }
  }
  // Every sync span closed. (Async flow spans may stay open: flows starved
  // at teardown never complete.)
  for (const auto& [track, depth] : sync_depth)
    EXPECT_EQ(depth, 0) << "unclosed span on track " << track.second;
}

TEST(ObsTrace, TracedRunIsValidAndCoversSubsystems) {
  const std::string path = "obs_trace_test_run.trace.json";
  const std::string text = run_traced(path);
  std::remove(path.c_str());
  check_validity(text);

  const std::vector<ParsedEvent> events = parse_events(text);
  auto has = [&](char ph, const std::string& name) {
    for (const ParsedEvent& e : events)
      if (e.ph == ph && e.name == name) return true;
    return false;
  };
  EXPECT_TRUE(has('B', "reference"));
  EXPECT_TRUE(has('B', "predicted"));
  EXPECT_TRUE(has('B', "collection"));
  EXPECT_TRUE(has('B', "allocation"));
  EXPECT_TRUE(has('B', "computation"));
  EXPECT_TRUE(has('B', "replay"));
  EXPECT_TRUE(has('b', "flow"));
  EXPECT_TRUE(has('b', "reserve"));
  EXPECT_TRUE(has('i', "degrade-link"));
  EXPECT_TRUE(has('i', "restore-link"));
  EXPECT_TRUE(has('i', "rescale"));
  EXPECT_TRUE(has('C', "queue"));
}

TEST(ObsTrace, GoldenTraceIsByteStable) {
  const std::string path = "obs_trace_test_golden.trace.json";
  const std::string produced = run_traced(path);
  std::remove(path.c_str());

  const std::string golden =
      std::string(PDC_TEST_DATA_DIR) + "/golden/tiny.trace.json";
  if (env_flag("PDC_UPDATE_GOLDEN")) {
    std::ofstream out(golden, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << golden;
    out << produced;
    GTEST_SKIP() << "golden updated: " << golden;
  }
  std::ifstream in(golden, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << golden
                         << " (run with PDC_UPDATE_GOLDEN=1 to create it)";
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(produced, buf.str())
      << "trace drifted from the committed golden; if the format change is "
         "intentional, regenerate with PDC_UPDATE_GOLDEN=1 and review the diff";
}

// The thread_local recorder install is what campaign -j relies on: two runs
// tracing concurrently on different threads each produce exactly the bytes a
// solo run produces.
TEST(ObsTrace, ConcurrentTracedRunsDontInterfere) {
  const std::string solo = run_traced("obs_trace_test_solo.trace.json");
  std::remove("obs_trace_test_solo.trace.json");

  std::vector<std::string> texts(2);
  std::vector<std::thread> threads;
  for (int i = 0; i < 2; ++i)
    threads.emplace_back([i, &texts] {
      const std::string path =
          "obs_trace_test_t" + std::to_string(i) + ".trace.json";
      texts[static_cast<std::size_t>(i)] = run_traced(path);
      std::remove(path.c_str());
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(texts[0], solo);
  EXPECT_EQ(texts[1], solo);
}

TEST(ObsTrace, TracingDoesNotChangeTheRunRecord) {
  const scenario::RunRecord plain = scenario::Runner{tiny_spec()}.try_run();
  ASSERT_TRUE(plain.ok()) << plain.error;

  scenario::ScenarioSpec traced_spec = tiny_spec();
  traced_spec.run.trace_path = "obs_trace_test_rec.trace.json";
  const scenario::RunRecord traced =
      scenario::Runner{std::move(traced_spec)}.try_run();
  std::remove("obs_trace_test_rec.trace.json");
  ASSERT_TRUE(traced.ok()) << traced.error;

  // Byte-identical records: the trace knob is not part of the run's identity
  // (the embedded spec text matches too, keeping memo keys and campaign
  // resume unaffected), and instrumentation perturbs no simulation state.
  EXPECT_EQ(traced.to_json(), plain.to_json());
}

TEST(ObsTrace, NoRecorderMeansNoFile) {
  const scenario::RunRecord rec = scenario::Runner{tiny_spec()}.try_run();
  ASSERT_TRUE(rec.ok()) << rec.error;
  std::ifstream in("obs-tiny.trace.json");
  EXPECT_FALSE(in.good());
}

}  // namespace
}  // namespace pdc
