// Synchronous vs asynchronous iterative schemes (the distinction P2PSAP
// adapts its transport to, paper §I/§III): the same obstacle problem solved
// with both schemes on the LAN platform, with real values and early
// stopping, comparing iterations-to-convergence and simulated time.
//
//   $ ./async_vs_sync
#include <cstdio>

#include "net/builders.hpp"
#include "obstacle/distributed.hpp"
#include "p2pdc/environment.hpp"
#include "support/table.hpp"

int main() {
  using namespace pdc;
  TextTable table({"Scheme", "iterations", "residual", "solve [s]", "max |diff| vs seq"});

  obstacle::ObstacleProblem problem;
  problem.n = 66;
  const obstacle::SequentialResult seq = obstacle::solve_sequential(problem, 30000, 1e-7);

  for (auto scheme : {p2psap::Scheme::Synchronous, p2psap::Scheme::Asynchronous}) {
    sim::Engine engine;
    const net::Platform plat = net::build_star(net::lan_spec(8));
    p2pdc::Environment env{engine, plat};
    env.boot_server(plat.host(0));
    env.boot_tracker(plat.host(1), true);
    for (int i = 2; i < 8; ++i)
      env.boot_peer(plat.host(i), overlay::PeerResources{3e9, 2e9, 80e9});
    env.finish_bootstrap();

    obstacle::DistributedConfig cfg;
    cfg.problem = problem;
    cfg.iters = 30000;
    cfg.rcheck = 25;
    cfg.mode = obstacle::ValueMode::Real;
    cfg.early_stop = true;
    cfg.tol = 1e-7;
    cfg.scheme = scheme;
    obstacle::ObstacleProblem bench = problem;
    bench.n = 34;
    cfg.cost = obstacle::derive_cost_profile(ir::OptLevel::O2, bench);

    const auto rep = obstacle::run_distributed(env, plat.host(2), cfg, 4);
    if (!rep.ok) {
      std::printf("%s run failed: %s\n",
                  scheme == p2psap::Scheme::Synchronous ? "sync" : "async",
                  rep.failure.c_str());
      return 1;
    }
    double worst = 0;
    for (int i = 1; i < problem.n - 1; ++i)
      for (int j = 1; j < problem.n - 1; ++j)
        worst = std::max(worst, std::abs(rep.solution.at(i, j) - seq.solution.at(i, j)));
    table.add_row({scheme == p2psap::Scheme::Synchronous ? "synchronous" : "asynchronous",
                   std::to_string(rep.iterations), TextTable::num(rep.residual, 9),
                   TextTable::num(rep.solve_seconds, 3), TextTable::num(worst, 9)});
  }

  std::printf("Obstacle problem %dx%d on 4 LAN peers, early stop at 1e-7\n"
              "(sequential solver: %d iterations)\n\n%s\n",
              problem.n, problem.n, seq.iterations, table.render().c_str());
  std::printf("the asynchronous scheme tolerates stale halos: no per-iteration\n"
              "synchronization waits, at the price of extra iterations.\n");
  return 0;
}
