// Table I (paper §IV-B.4): "comparing equivalent predictions and the
// corresponding computing power in Grid5000" -- for the paper's five
// comparisons, the predicted P2P desktop-grid time is matched against the
// cluster reference and classified the way the paper words it
// ("slightly lower than" = the P2P configuration performs slightly worse,
// "same as" = equivalent computing power). Three campaigns replace the
// hand-rolled loops: cluster references, LAN predictions, one xDSL point.
#include <cmath>
#include <cstdio>
#include <map>

#include "campaign/executor.hpp"
#include "experiments/harness.hpp"
#include "support/env.hpp"
#include "support/table.hpp"

namespace {

std::string classify(double p2p_seconds, double cluster_seconds) {
  const double ratio = p2p_seconds / cluster_seconds;
  if (ratio > 2.0) return "much lower than";
  if (ratio > 1.05) return "slightly lower than";
  if (ratio >= 0.95) return "same as";
  if (ratio >= 0.5) return "slightly higher than";
  return "much higher than";
}

}  // namespace

int main() {
  using namespace pdc;
  scenario::RunSpec base = scenario::RunSpec::from_env();
  base.level = ir::OptLevel::O0;
  std::printf("Table I -- equivalent computing power, optimization level 0\n"
              "(classification by predicted-time ratio; the paper's wording:\n"
              " 'performance slightly lower than' = P2P config slightly slower)\n\n");

  campaign::ExecutorOptions opts;
  opts.jobs = env_int("PDC_CAMPAIGN_JOBS", 1);
  opts.progress = true;

  auto make = [&base](const char* name, scenario::PlatformSpec platform,
                      scenario::Mode mode, std::vector<int> peers) {
    campaign::CampaignSpec c;
    c.name = name;
    c.base.name = name;
    c.base.platform = std::move(platform);
    c.base.run = base;
    c.base.run.mode = mode;
    c.peers = std::move(peers);
    return c;
  };

  // Reference cluster times at the peer counts the paper compares against,
  // and predicted desktop-grid times for the paper's configurations.
  campaign::Executor cluster_executor{
      make("table1-ref", scenario::PlatformSpec::grid5000(), scenario::Mode::Reference,
           {2, 4, 8}),
      opts};
  campaign::Executor lan_executor{make("table1-lan", scenario::PlatformSpec::lan(),
                                       scenario::Mode::Predict, {2, 4, 8, 32}),
                                  opts};
  campaign::Executor xdsl_executor{make("table1-xdsl", scenario::PlatformSpec::xdsl(),
                                        scenario::Mode::Predict, {4}),
                                   opts};

  std::map<int, double> cluster;
  std::map<std::pair<const char*, int>, double> p2p;
  auto collect = [](campaign::Executor& ex, const char* metric, auto&& sink) {
    ex.execute();
    for (const campaign::Outcome& out : ex.outcomes()) {
      if (!out.ok()) {
        std::fprintf(stderr, "run %s failed: %s\n", out.run.key.c_str(),
                     out.error.c_str());
        std::exit(1);
      }
      sink(out.run.spec.run.peers, out.metrics.at(metric));
    }
  };
  collect(cluster_executor, "reference_solve_seconds",
          [&](int peers, double t) { cluster[peers] = t; });
  collect(lan_executor, "predicted_solve_seconds",
          [&](int peers, double t) { p2p[{"LAN", peers}] = t; });
  collect(xdsl_executor, "predicted_solve_seconds",
          [&](int peers, double t) { p2p[{"xDSL", peers}] = t; });

  struct Row {
    int p2p_peers;
    const char* topo;
    int cluster_peers;
    const char* paper_says;
  };
  const Row rows[] = {
      {4, "xDSL", 2, "slightly lower than"},
      {2, "LAN", 2, "slightly lower than"},
      {4, "LAN", 4, "slightly lower than"},
      {8, "LAN", 4, "same as"},
      {32, "LAN", 8, "slightly lower than"},
  };

  TextTable table({"Processes", "topology", "measured", "(paper)", "than", "Grid5000"});
  for (const Row& r : rows) {
    const double pt = p2p.at({r.topo, r.p2p_peers});
    const double ct = cluster.at(r.cluster_peers);
    table.add_row({std::to_string(r.p2p_peers), r.topo, classify(pt, ct),
                   std::string("(") + r.paper_says + ")",
                   TextTable::num(pt, 1) + "s vs " + TextTable::num(ct, 1) + "s",
                   std::to_string(r.cluster_peers)});
  }
  std::printf("\n%s\n", table.render().c_str());

  // Our own equivalence search: for each cluster size, the smallest LAN
  // configuration that matches or beats it.
  std::printf("Measured equivalence (smallest LAN config with time <= cluster):\n");
  TextTable eq({"Grid5000 peers", "cluster [s]", "equivalent LAN peers", "LAN [s]"});
  for (int cpeers : {2, 4, 8}) {
    int best = -1;
    double best_t = 0;
    for (int peers : {2, 4, 8, 32}) {
      const double t = p2p.at({"LAN", peers});
      if (t <= cluster[cpeers] * 1.05) {
        best = peers;
        best_t = t;
        break;
      }
    }
    eq.add_row({std::to_string(cpeers), TextTable::num(cluster[cpeers], 1),
                best > 0 ? std::to_string(best) : "none",
                best > 0 ? TextTable::num(best_t, 1) : "-"});
  }
  std::printf("%s\n", eq.render().c_str());
  return 0;
}
