// pdc_campaign: expand and execute a parameter-sweep campaign from a
// declarative .cmp file — the batch sibling of pdc_scenario. See
// examples/campaigns/ for ready-made files and examples/README.md for the
// format, resume semantics and CSV columns.
//
//   $ ./example_pdc_campaign examples/campaigns/smoke.cmp
//   $ ./example_pdc_campaign -j 4 -o out examples/campaigns/fig9.cmp
//   $ printf 'sweep peers 2,4\n' | PDC_QUICK=1 ./example_pdc_campaign -
//
// Distributed execution — split the matrix across worker processes, then
// reassemble (see examples/README.md "Serving & sharding"):
//
//   $ ./example_pdc_campaign --shard 0/2 -o s0 sweep.cmp &
//   $ ./example_pdc_campaign --shard 1/2 -o s1 sweep.cmp &
//   $ wait
//   $ ./example_pdc_campaign --merge -o merged sweep.cmp s0 s1
//
// Options:
//   -j <n>       run up to n grid cells concurrently (default 1)
//   -o <dir>     output directory (default CAMPAIGN_<name>); holds
//                runs/<key>.json per run plus report.json / report.csv
//   --shard i/n  execute only the i-th of n deterministic shards of the run
//                matrix (0-based). Shards may share one -o directory — the
//                atomic record protocol makes runs/ a lock-free work queue —
//                and write report-shard<i>of<n>.json instead of report.json
//   --merge      merge mode: positional arguments after the campaign file
//                are input directories holding runs/<key>.json records;
//                loads every record of the matrix, copies them into -o, and
//                writes the canonical report.json/report.csv (byte-identical
//                for any complete partition of the matrix — two shards or
//                one -j1 run)
//   --render     print the canonical campaign text and exit (no run)
//   --list       print the expanded run matrix and exit (no run)
//   --no-resume  re-execute runs even when their record already exists
//   --check      re-parse the emitted report JSON + CSV and fail loudly on
//                a mismatch (used by the CI campaign-smoke job)
//   --trace-dir <dir>  write a Chrome-trace JSON per executed run as
//                <dir>/<key>.trace.json (defaults to PDC_TRACE_DIR when set;
//                does not affect run keys, records or the report)
//
// Completed runs found in <dir>/runs are skipped on restart, so an
// interrupted campaign continues where it stopped. The final summary line
// (`campaign done: ...` / `campaign merged: ...`) is stable for scripting.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/executor.hpp"
#include "support/env.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace pdc;
  const char* spec_path = nullptr;
  const char* out_dir = nullptr;
  int jobs = 1;
  bool render_only = false;
  bool list_only = false;
  bool resume = true;
  bool check = false;
  bool merge = false;
  int shard_index = 0, shard_count = 1;
  // Per-run tracing; the flag overrides the PDC_TRACE_DIR default.
  std::string trace_dir = env_str("PDC_TRACE_DIR");
  std::vector<std::string> merge_dirs;  // positional args after the spec file
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-j") == 0 && i + 1 < argc) jobs = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) out_dir = argv[++i];
    else if (std::strcmp(argv[i], "--trace-dir") == 0 && i + 1 < argc)
      trace_dir = argv[++i];
    else if (std::strcmp(argv[i], "--render") == 0) render_only = true;
    else if (std::strcmp(argv[i], "--list") == 0) list_only = true;
    else if (std::strcmp(argv[i], "--no-resume") == 0) resume = false;
    else if (std::strcmp(argv[i], "--check") == 0) check = true;
    else if (std::strcmp(argv[i], "--merge") == 0) merge = true;
    else if (std::strcmp(argv[i], "--shard") == 0 && i + 1 < argc) {
      if (std::sscanf(argv[++i], "%d/%d", &shard_index, &shard_count) != 2) {
        std::fprintf(stderr, "--shard wants i/n, e.g. --shard 0/4\n");
        return 2;
      }
    } else if (argv[i][0] == '-' && std::strcmp(argv[i], "-") != 0) {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      return 2;
    } else if (spec_path == nullptr) {
      spec_path = argv[i];
    } else {
      merge_dirs.push_back(argv[i]);
    }
  }
  if (spec_path == nullptr) {
    std::fprintf(stderr,
                 "usage: pdc_campaign [-j n] [-o dir] [--shard i/n] [--render] [--list] "
                 "[--no-resume] [--check] [--trace-dir dir] <campaign-file|->\n"
                 "       pdc_campaign --merge [-o dir] <campaign-file|-> <run-dir>...\n");
    return 2;
  }
  if (jobs < 1) {
    std::fprintf(stderr, "-j wants a positive job count\n");
    return 2;
  }
  if (shard_count < 1 || shard_index < 0 || shard_index >= shard_count) {
    std::fprintf(stderr, "--shard %d/%d is out of range\n", shard_index, shard_count);
    return 2;
  }
  if (!merge && !merge_dirs.empty()) {
    std::fprintf(stderr, "input run directories only make sense with --merge\n");
    return 2;
  }
  if (merge && (merge_dirs.empty() || shard_count != 1)) {
    std::fprintf(stderr, "--merge wants input run directories (and no --shard)\n");
    return 2;
  }

  std::string text;
  if (std::strcmp(spec_path, "-") == 0) {
    std::stringstream buf;
    buf << std::cin.rdbuf();
    text = buf.str();
  } else {
    std::ifstream in(spec_path);
    if (!in) {
      std::fprintf(stderr, "cannot open campaign file '%s'\n", spec_path);
      return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }

  campaign::CampaignSpec spec;
  try {
    spec = campaign::parse_campaign(text, scenario::RunSpec::from_env());
  } catch (const scenario::ScenarioError& e) {
    std::fprintf(stderr, "%s: %s\n", spec_path, e.what());
    return 1;
  }

  if (render_only) {
    std::fputs(campaign::render_campaign(spec).c_str(), stdout);
    return 0;
  }

  campaign::ExecutorOptions opts;
  opts.jobs = jobs;
  opts.resume = resume;
  opts.progress = !merge;
  opts.out_dir = out_dir != nullptr ? out_dir : "CAMPAIGN_" + spec.name;
  opts.shard_index = shard_index;
  opts.shard_count = shard_count;
  opts.trace_dir = trace_dir;
  campaign::Executor executor{std::move(spec), opts};

  if (list_only) {
    for (const campaign::CampaignRun& run : executor.runs())
      std::printf("%4zu  %s\n", run.index, run.key.c_str());
    if (shard_count > 1)
      std::printf("%zu runs in shard %d/%d\n", executor.runs().size(), shard_index,
                  shard_count);
    else
      std::printf("%zu runs\n", executor.runs().size());
    return 0;
  }

  campaign::CampaignReport report;
  try {
    report = merge ? executor.merge(merge_dirs) : executor.execute();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign failed: %s\n", e.what());
    return 1;
  }

  TextTable table({"Point", "reps", "err", "metric", "mean", "stddev", "min", "max"});
  for (const campaign::PointReport& p : report.points) {
    // One headline metric per point keeps the console readable; the full
    // metric set is in report.json / report.csv.
    const char* headline = p.metrics.count("reference_solve_seconds")
                               ? "reference_solve_seconds"
                               : "predicted_solve_seconds";
    auto it = p.metrics.find(headline);
    if (it == p.metrics.end()) {
      table.add_row({p.key, std::to_string(p.repetitions), std::to_string(p.errors), "-",
                     "-", "-", "-", "-"});
      continue;
    }
    const Summary& s = it->second;
    table.add_row({p.key, std::to_string(p.repetitions), std::to_string(p.errors),
                   headline, TextTable::num(s.mean, 3), TextTable::num(s.stddev, 3),
                   TextTable::num(s.min, 3), TextTable::num(s.max, 3)});
  }
  std::printf("%s", table.render().c_str());

  if (check) {
    try {
      const JsonValue doc = parse_json(report.to_json());
      if (!doc.has("campaign") || !doc.has("points"))
        throw JsonError(0, "report missing required keys");
      if (static_cast<std::size_t>(doc.at("total_runs").as_double()) != report.total)
        throw JsonError(0, "total_runs mismatch");
      const std::string csv = report.to_csv();
      if (csv.find("campaign,point,platform") != 0)
        throw std::runtime_error("csv header mismatch");
      std::printf("report check: ok\n");
    } catch (const std::exception& e) {
      std::fprintf(stderr, "report check FAILED: %s\n", e.what());
      return 1;
    }
  }

  if (merge) {
    std::printf("wrote %s/report.json and report.csv (canonical)\n",
                opts.out_dir.c_str());
    std::printf("campaign merged: total=%zu loaded=%zu errors=%zu\n", report.total,
                report.total - report.errors, report.errors);
  } else if (shard_count > 1) {
    std::printf("wrote %s/report-shard%dof%d.json and .csv\n", opts.out_dir.c_str(),
                shard_index, shard_count);
    std::printf(
        "campaign shard %d/%d done: runs=%zu executed=%zu skipped=%zu errors=%zu "
        "wall=%.2fs\n",
        shard_index, shard_count, report.total, report.executed, report.skipped,
        report.errors, report.wall_seconds);
  } else {
    std::printf("wrote %s/report.json and report.csv\n", opts.out_dir.c_str());
    std::printf(
        "campaign done: total=%zu executed=%zu skipped=%zu errors=%zu wall=%.2fs\n",
        report.total, report.executed, report.skipped, report.errors,
        report.wall_seconds);
  }
  return report.errors == 0 ? 0 : 3;
}
