// Analytic-planner microbench: the point of mode=analytic is that a grid
// point costs a handful of max-min rate queries instead of a full
// discrete-event replay. This harness times the same workload both ways —
// trace replay (dperf::replay_on on a fresh deployment, exactly what a
// mode=predict campaign grid point runs) vs. the analytic plan
// (summarize_trace + dperf::plan_on on a fresh deployment) — over several
// repetitions and emits the per-grid-point speedup. Traces come from the
// shared memo outside the timed window: both sides measure prediction cost
// only, not the dPerf pipeline they share.
//
// Emits BENCH_analytic.json (pass a path as argv[1] to redirect).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "dperf/analytic.hpp"
#include "dperf/dperf.hpp"
#include "dperf/summary.hpp"
#include "obstacle/distributed.hpp"
#include "scenario/runner.hpp"
#include "support/json.hpp"

namespace {

using namespace pdc;

scenario::ScenarioSpec bench_spec(scenario::PlatformSpec platform, const char* name) {
  scenario::ScenarioSpec spec;
  spec.name = name;
  spec.platform = std::move(platform);
  // Fixed default-class sizing (independent of PDC_QUICK) so emitted
  // numbers are comparable across environments: a campaign grid point at
  // the paper's iteration counts, where the per-iteration cost ratio
  // dominates the fixed deploy/setup overhead on both sides.
  spec.run.peers = 4;
  spec.run.grid_n = 1538;
  spec.run.iters = 428;
  spec.run.rcheck = 4;
  spec.run.bench_n = 34;
  spec.run.bench_iters = 6;
  spec.run.bench_rcheck = 3;
  return spec;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct Result {
  std::string platform;
  double replay_seconds = 0;    // per grid point
  double analytic_seconds = 0;  // per grid point
  double speedup = 0;
  double replay_solve = 0;
  double analytic_solve = 0;
  double rel_error = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_analytic.json";
  const int reps = 7;

  std::vector<Result> results;
  const scenario::PlatformSpec platforms[] = {
      scenario::PlatformSpec::grid5000(), scenario::PlatformSpec::lan(),
      scenario::PlatformSpec::xdsl()};
  for (const scenario::PlatformSpec& platform : platforms) {
    const scenario::ScenarioSpec spec = bench_spec(platform, "micro-analytic");
    const scenario::Runner runner{spec};
    // Warm the process-wide memos (cost profile + traces) outside the
    // timed window; a campaign amortizes them the same way.
    const std::vector<dperf::Trace> traces = runner.traces();

    Result r;
    r.platform = platform.label;
    // Best-of-reps on both sides: scheduler noise only ever inflates a
    // measurement, so the minimum is the stable per-grid-point cost.
    r.replay_seconds = 1e300;
    for (int i = 0; i < reps; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      const scenario::PhaseRecord ph = runner.run_predicted(traces);
      r.replay_seconds = std::min(r.replay_seconds, seconds_since(t0));
      r.replay_solve = ph.solve_seconds;
    }
    r.analytic_seconds = 1e300;
    for (int i = 0; i < reps; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      const scenario::PhaseRecord ph = runner.run_analytic(traces);
      r.analytic_seconds = std::min(r.analytic_seconds, seconds_since(t0));
      r.analytic_solve = ph.solve_seconds;
    }
    r.speedup = r.analytic_seconds > 0 ? r.replay_seconds / r.analytic_seconds : 0;
    r.rel_error = r.replay_solve > 0
                      ? std::abs(r.analytic_solve - r.replay_solve) / r.replay_solve
                      : 0;
    std::printf("%-10s replay %8.4f s  analytic %8.4f s  speedup %7.1fx  err %.2f%%\n",
                r.platform.c_str(), r.replay_seconds, r.analytic_seconds, r.speedup,
                100.0 * r.rel_error);
    std::fflush(stdout);
    results.push_back(r);
  }

  pdc::JsonWriter w;
  w.begin_object();
  w.kv("bench", "analytic_vs_replay_per_grid_point");
  w.kv("reps", reps);
  w.key("results").begin_array();
  for (const Result& r : results) {
    w.begin_object();
    w.kv("platform", r.platform);
    w.kv("replay_seconds", r.replay_seconds);
    w.kv("analytic_seconds", r.analytic_seconds);
    w.kv("speedup", r.speedup);
    w.kv("replay_solve_seconds", r.replay_solve);
    w.kv("analytic_solve_seconds", r.analytic_solve);
    w.kv("rel_error", r.rel_error);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  std::FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fputs(w.str().c_str(), f);
  std::fputs("\n", f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path);

  // The acceptance gate: an analytic grid point must be at least 10x
  // cheaper than a replayed one on every platform.
  for (const Result& r : results) {
    if (r.speedup < 10.0) {
      std::fprintf(stderr, "speedup gate failed on %s: %.1fx < 10x\n",
                   r.platform.c_str(), r.speedup);
      return 1;
    }
  }
  return 0;
}
