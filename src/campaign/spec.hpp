// Declarative parameter-sweep campaigns: one base scenario crossed with
// sweep axes (platform variants x peers x opt levels x P2PSAP schemes x
// allocation modes x seeds) and repeated `repetitions` times per grid
// point. A campaign is plain data — built in code (the figure benches),
// parsed from a small text format (the pdc_campaign CLI) and rendered
// back — and expands to a deterministic run matrix that campaign::Executor
// runs across a thread pool.
//
// Text format (.cmp), a superset of the scenario format: every scenario
// keyword (platform, peers, opt, mode, alloc, scheme, seed, grid, iters,
// rcheck, bench, omega, cmax, including `platform inline ... end` blocks)
// sets the *base* scenario, plus:
//
//   campaign <name>                 # campaign (and default record) name
//   sweep peers 2,4,8               # axis: worker counts
//   sweep opt 0,2,s                 # axis: optimization levels
//   sweep scheme sync,async         # axis: P2PSAP schemes
//   sweep alloc hierarchical,flat   # axis: allocation modes
//   sweep seed 41,42,43             # axis: workload seeds
//   sweep churn_rate 0,0.002,0.01   # axis: peer crash rates (/s/worker);
//                                   #   overrides the base `churn rate`
//   sweep churn_seed 1,2,3          # axis: churn event-stream seeds
//   sweep platform grid5000 lan     # axis: platform presets (grid5000 |
//                                   #   lan | xdsl | federation | wan)
//   variant star hosts=8 speed=2GHz # axis: one parameterized platform
//   variant file my_network.plat    #   variant per `variant` line (same
//                                   #   syntax as a `platform ...` line)
//   repetitions <n>                 # repeated runs per grid point
//
// Sweep values are comma- or space-separated. Unswept axes keep the base
// scenario's value (an axis of size one). See examples/campaigns/.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "scenario/spec.hpp"

namespace pdc::campaign {

/// Base scenario x sweep axes x repetitions. Empty axis = keep the base
/// value. `platforms` lists complete variants (presets and/or fully
/// parameterized specs from `variant` lines).
struct CampaignSpec {
  std::string name = "campaign";
  scenario::ScenarioSpec base;

  std::vector<scenario::PlatformSpec> platforms;
  std::vector<int> peers;
  std::vector<ir::OptLevel> levels;
  std::vector<p2psap::Scheme> schemes;
  std::vector<p2pdc::AllocationMode> allocations;
  std::vector<std::uint64_t> seeds;
  /// Churn axes: values override the base scenario's `churn rate` / `churn
  /// seed`, so prediction error can be tabulated as a function of
  /// volatility. Swept axes add "-cr<rate>" / "-cs<seed>" key segments;
  /// unswept campaigns keep their pre-churn keys (stable resume).
  std::vector<double> churn_rates;
  std::vector<std::uint64_t> churn_seeds;
  int repetitions = 1;

  /// The grid size: product of axis sizes (empty axes count 1), including
  /// repetitions. An upper bound on expand().size(): duplicate values on a
  /// sweep axis collapse during expansion.
  std::size_t total_runs() const;
};

/// One cell of the expanded run matrix. `point_key` identifies the grid
/// point (all axis values, no repetition); `key` additionally carries the
/// repetition index and names the run record file. Both are filesystem-safe.
struct CampaignRun {
  std::size_t index = 0;  // position in expansion order
  std::string key;        // "<point_key>-r<repetition>"
  std::string point_key;  // e.g. "grid5000-p8-o3-sync-hier-s42"
  int repetition = 0;
  scenario::ScenarioSpec spec;  // complete scenario for this cell
};

/// Expands the sweep grid in deterministic order (platform-major, then
/// peers, opt, scheme, alloc, seed; repetitions innermost). Run scenario
/// names are "<campaign>/<key>". Throws std::invalid_argument on an empty
/// grid (repetitions < 1).
std::vector<CampaignRun> expand(const CampaignSpec& spec);

/// Deterministic shard selection over an expanded matrix: keeps the runs
/// whose expansion index i satisfies i % shard_count == shard_index,
/// preserving order (and each run's original `index`). Round-robin striping
/// balances repetitions — the innermost axis — across shards, so equal-cost
/// repeated points spread instead of clumping on one worker. The shards of
/// any n partition the matrix disjointly and exhaustively; campaign::merge
/// reassembles their run directories into the unsharded report. Throws
/// std::invalid_argument on shard_count < 1 or shard_index outside [0, n).
std::vector<CampaignRun> shard_runs(std::vector<CampaignRun> runs, int shard_index,
                                    int shard_count);

/// Parses the campaign text format. Unset base keys keep the defaults of
/// `base` (pass RunSpec::from_env() to honour PDC_QUICK). Throws
/// scenario::ScenarioError with the 1-based line in the original text.
CampaignSpec parse_campaign(const std::string& text,
                            const scenario::RunSpec& base = scenario::RunSpec{});

/// Renders a campaign back to the text format; parse(render(c)) reproduces
/// the same spec.
std::string render_campaign(const CampaignSpec& spec);

}  // namespace pdc::campaign
