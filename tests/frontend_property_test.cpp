// Front-end property tests on randomly generated programs: the unparser is
// a fixpoint, re-parsed programs still type-check, and dPerf's
// instrumentation round trip (instrument -> unparse -> parse -> compile)
// preserves program semantics at every optimization level.
#include <gtest/gtest.h>

#include "dperf/blocks.hpp"
#include "ir/pipeline.hpp"
#include "minic/parser.hpp"
#include "minic/sema.hpp"
#include "minic/unparse.hpp"
#include "support/rng.hpp"
#include "vm/vm.hpp"

namespace pdc {
namespace {

/// Small random straight-line/loop/if generator (a lighter variant of the
/// one in compiler_property_test.cpp, kept independent so the suites can
/// evolve separately).
std::string random_program(Rng& rng) {
  std::string body;
  auto line = [&](const std::string& s) { body += "  " + s + "\n"; };
  line("int a = " + std::to_string(rng.uniform_int(-9, 9)) + ";");
  line("int b = " + std::to_string(rng.uniform_int(1, 9)) + ";");
  line("double x = " + std::to_string(rng.uniform_int(-3, 3)) + ".125;");
  const int stmts = static_cast<int>(rng.uniform_int(3, 7));
  for (int i = 0; i < stmts; ++i) {
    switch (rng.uniform_int(0, 3)) {
      case 0:
        line("a = (a * " + std::to_string(rng.uniform_int(-3, 3)) + " + b) % 100;");
        break;
      case 1:
        line("x = fabs(x * 0.5 - " + std::to_string(rng.uniform_int(0, 5)) + ".25);");
        break;
      case 2: {
        const std::string iv = "k" + std::to_string(i);
        line("for (int " + iv + " = 0; " + iv + " < " +
             std::to_string(rng.uniform_int(0, 6)) + "; " + iv + " = " + iv + " + 1) { b = (b + " +
             iv + ") % 50 + 1; }");
        break;
      }
      default:
        line("if (a < b && b != 0) { a = a + 1; } else { a = a - 1; }");
        break;
    }
  }
  line("int fx = 0;");
  line("while (x >= 1.0 && fx < 100) { x = x - 1.0; fx = fx + 1; }");
  line("return (a % 31 + 31) % 31 + b % 17 + fx;");
  return "int main() {\n" + body + "}\n";
}

class FrontendProperty : public ::testing::TestWithParam<int> {};

TEST_P(FrontendProperty, UnparseIsAFixpointAndPreservesMeaning) {
  Rng rng{static_cast<std::uint64_t>(GetParam()) * 104729 + 7};
  const std::string src = random_program(rng);
  SCOPED_TRACE(src);

  minic::Program p1 = minic::parse(src);
  minic::check(p1);
  const std::string s1 = minic::unparse(p1);
  minic::Program p2 = minic::parse(s1);
  EXPECT_NO_THROW(minic::check(p2));
  EXPECT_EQ(minic::unparse(p2), s1) << "unparse must be a fixpoint";

  // Original source and round-tripped source compute the same value.
  const ir::IrProgram a = ir::compile_source(src, ir::OptLevel::O1);
  const ir::IrProgram b = ir::compile_source(s1, ir::OptLevel::O1);
  vm::Vm ma{a}, mb{b};
  EXPECT_EQ(ma.run_main(), mb.run_main());
}

TEST_P(FrontendProperty, InstrumentationIsSemanticallyTransparent) {
  Rng rng{static_cast<std::uint64_t>(GetParam()) * 31337 + 23};
  const std::string src = random_program(rng);
  SCOPED_TRACE(src);

  long long reference = 0;
  {
    const ir::IrProgram prog = ir::compile_source(src, ir::OptLevel::O0);
    vm::Vm m{prog};
    reference = m.run_main();
  }
  // dPerf instrumentation + unparse + reparse + any optimization level:
  // the program must still compute the same result (markers are pure
  // bookkeeping).
  minic::Program ast = minic::parse(src);
  minic::check(ast);
  const dperf::InstrumentedProgram inst = dperf::instrument(ast);
  const std::string inst_src = minic::unparse(inst.program);
  for (ir::OptLevel lvl : {ir::OptLevel::O0, ir::OptLevel::O2, ir::OptLevel::O3}) {
    const ir::IrProgram prog = ir::compile_source(inst_src, lvl);
    vm::Vm m{prog};
    EXPECT_EQ(m.run_main(), reference) << ir::opt_level_name(lvl);
    // Every entered block was exited.
    for (const auto& [id, stat] : m.papi().blocks) EXPECT_GT(stat.executions, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, FrontendProperty, ::testing::Range(0, 40));

}  // namespace
}  // namespace pdc
