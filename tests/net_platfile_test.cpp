#include "net/platfile.hpp"

#include <gtest/gtest.h>

#include "net/builders.hpp"
#include "support/time.hpp"

namespace pdc::net {
namespace {

using namespace pdc::units;

const char* kSample = R"(
# two hosts behind a router
host a speed 3GHz ip 10.0.0.1
host b speed 2.4GHz ip 10.0.0.2
router r
link up bw 100Mbps lat 50us
link down bw 1Gbps lat 100us
edge a r up
edge r b down
route a b up down
)";

TEST(PlatFile, ParsesHostsRoutersLinks) {
  const Platform p = parse_platform(kSample);
  EXPECT_EQ(p.host_count(), 2);
  EXPECT_EQ(p.node_count(), 3);
  EXPECT_EQ(p.link_count(), 2);
  const auto a = p.find_by_name("a");
  ASSERT_TRUE(a.has_value());
  EXPECT_DOUBLE_EQ(p.node(*a).speed_hz, 3e9);
  EXPECT_EQ(p.node(*a).ip.to_string(), "10.0.0.1");
  const auto up = p.route(*a, *p.find_by_name("b"));
  ASSERT_EQ(up.hops.size(), 2u);
  EXPECT_DOUBLE_EQ(p.link(up.hops[0].link).bandwidth_Bps, 100 * Mbps);
  EXPECT_NEAR(up.latency, 150 * us, 1e-12);
}

TEST(PlatFile, ExplicitRouteDirectionsInferred) {
  const Platform p = parse_platform(kSample);
  const auto a = *p.find_by_name("a");
  const auto b = *p.find_by_name("b");
  const Route& fwd = p.route(a, b);
  EXPECT_EQ(fwd.hops[0].dir, 0);  // a->r traverses edge (a,r) forward
  const Route& rev = p.route(b, a);
  EXPECT_EQ(rev.hops[1].dir, 1);
}

TEST(PlatFile, ErrorsCarryLineNumbers) {
  try {
    parse_platform("router r\nhost broken speed 3GHz\n");
    FAIL() << "expected PlatFileError";
  } catch (const PlatFileError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

TEST(PlatFile, RejectsUnknownKeyword) {
  EXPECT_THROW(parse_platform("frobnicate x\n"), PlatFileError);
}

TEST(PlatFile, RejectsDuplicateNames) {
  EXPECT_THROW(parse_platform("router r\nrouter r\n"), PlatFileError);
  EXPECT_THROW(parse_platform("link l bw 1Mbps lat 1us\nlink l bw 1Mbps lat 1us\n"),
               PlatFileError);
}

TEST(PlatFile, RejectsUnknownNodeInEdge) {
  EXPECT_THROW(parse_platform("router r\nlink l bw 1Mbps lat 1us\nedge r ghost l\n"),
               PlatFileError);
}

TEST(PlatFile, RejectsBadUnits) {
  EXPECT_THROW(parse_platform("link l bw 1furlong lat 1us\n"), PlatFileError);
  EXPECT_THROW(parse_platform("host h speed fast ip 1.2.3.4\n"), PlatFileError);
  EXPECT_THROW(parse_platform("host h speed 3GHz ip 999.2.3.4\n"), PlatFileError);
}

TEST(PlatFile, RejectsRouteThatIsNotAPath) {
  const char* text = R"(
host a speed 1GHz ip 10.0.0.1
host b speed 1GHz ip 10.0.0.2
router r
link l1 bw 1Mbps lat 1us
link l2 bw 1Mbps lat 1us
edge a r l1
edge r b l2
route a b l2 l1
)";
  EXPECT_THROW(parse_platform(text), PlatFileError);
}

TEST(PlatFile, RenderParseRoundTrip) {
  const Platform original = build_star(bordeplage_cluster_spec(4));
  const std::string text = render_platform(original);
  const Platform reparsed = parse_platform(text);
  EXPECT_EQ(reparsed.node_count(), original.node_count());
  EXPECT_EQ(reparsed.link_count(), original.link_count());
  EXPECT_EQ(reparsed.edge_count(), original.edge_count());
  EXPECT_EQ(reparsed.host_count(), original.host_count());
  for (int l = 0; l < original.link_count(); ++l) {
    EXPECT_NEAR(reparsed.link(l).bandwidth_Bps, original.link(l).bandwidth_Bps, 1.0);
    EXPECT_NEAR(reparsed.link(l).latency, original.link(l).latency, 1e-9);
  }
  for (int h = 0; h < original.host_count(); ++h)
    EXPECT_EQ(reparsed.node(reparsed.host(h)).ip, original.node(original.host(h)).ip);
}

// Regression: render_platform used to drop routing metadata, so a
// re-parsed star platform silently fell back to BFS paths that skip the
// shared backbone. The star now routes hierarchically through its trunk
// (no explicit route table), and that must survive the round trip via the
// "hier trunk" directive.
TEST(PlatFile, RenderParseRoundTripPreservesRoutes) {
  const Platform original = build_star(bordeplage_cluster_spec(4));
  ASSERT_TRUE(original.hierarchical_routing());
  const std::string text = render_platform(original);
  EXPECT_NE(text.find("hier trunk backbone"), std::string::npos);
  const Platform reparsed = parse_platform(text);
  for (int a = 0; a < original.host_count(); ++a) {
    for (int b = 0; b < original.host_count(); ++b) {
      if (a == b) continue;
      const Route& want = original.route(original.host(a), original.host(b));
      const Route& got = reparsed.route(reparsed.host(a), reparsed.host(b));
      ASSERT_EQ(got.hops.size(), want.hops.size()) << a << "->" << b;
      for (std::size_t i = 0; i < want.hops.size(); ++i) {
        EXPECT_EQ(reparsed.link(got.hops[i].link).name, original.link(want.hops[i].link).name)
            << a << "->" << b << " hop " << i;
        EXPECT_EQ(got.hops[i].dir, want.hops[i].dir) << a << "->" << b << " hop " << i;
      }
      EXPECT_NEAR(got.latency, want.latency, 1e-12);
    }
  }
  // Idempotent: rendering the reparsed platform gives the same text.
  EXPECT_EQ(render_platform(reparsed), text);
}

TEST(PlatFile, HierRejectsNonHierarchicalPlatform) {
  // Host with two uplinks: hierarchical resolution cannot apply.
  const char* text = R"(
host a speed 1GHz ip 10.0.0.1
router r1
router r2
link l1 bw 1Mbps lat 1us
link l2 bw 1Mbps lat 1us
edge a r1 l1
edge a r2 l2
hier
)";
  EXPECT_THROW(parse_platform(text), PlatFileError);
}

TEST(PlatFile, HierRejectsUnknownTrunkAndBadShape) {
  EXPECT_THROW(parse_platform("router r\nhier trunk nosuchlink\n"), PlatFileError);
  EXPECT_THROW(parse_platform("router r\nhier trunk\n"), PlatFileError);
  EXPECT_THROW(parse_platform("router r\nhier bogus x\n"), PlatFileError);
}

// Fabric links (no edge) carry their direction in the route line.
TEST(PlatFile, FabricLinkRouteRoundTrip) {
  const char* text = R"(
host a speed 1GHz ip 10.0.0.1
host b speed 1GHz ip 10.0.0.2
router r
link l1 bw 1Mbps lat 1us
link l2 bw 1Mbps lat 1us
link fabric bw 10Mbps lat 5us
edge a r l1
edge r b l2
route a b l1 fabric:fwd l2
)";
  const Platform p = parse_platform(text);
  const auto a = *p.find_by_name("a");
  const auto b = *p.find_by_name("b");
  ASSERT_EQ(p.route(a, b).hops.size(), 3u);
  EXPECT_EQ(p.route(a, b).hops[1].dir, 0);
  EXPECT_EQ(p.route(b, a).hops[1].dir, 1);  // symmetric install flips the fabric hop
  const Platform back = parse_platform(render_platform(p));
  EXPECT_EQ(render_platform(back), render_platform(p));
  EXPECT_EQ(back.route(*back.find_by_name("b"), *back.find_by_name("a")).hops[1].dir, 1);
}

TEST(PlatFile, UnitValueParsers) {
  EXPECT_DOUBLE_EQ(parse_speed_value("2.5GHz"), 2.5e9);
  EXPECT_DOUBLE_EQ(parse_bandwidth_value("1Gbps"), 1e9 / 8);
  EXPECT_DOUBLE_EQ(parse_latency_value("100us"), 100e-6);
  EXPECT_THROW(parse_speed_value("fast"), std::invalid_argument);
  EXPECT_THROW(parse_bandwidth_value("1Gb"), std::invalid_argument);
}

TEST(PlatFile, CommentsAndBlankLinesIgnored)
{
  const Platform p = parse_platform("# nothing\n\n   \nrouter r # trailing\n");
  EXPECT_EQ(p.node_count(), 1);
}

}  // namespace
}  // namespace pdc::net
