#include "scenario/spec.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <sstream>
#include <vector>

#include "net/platfile.hpp"
#include "support/env.hpp"
#include "support/json.hpp"

namespace pdc::scenario {

std::vector<std::string> tokenize_spec_line(const std::string& line) {
  std::vector<std::string> out;
  std::string tok;
  for (char c : line) {
    if (c == '#') break;
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!tok.empty()) out.push_back(std::move(tok)), tok.clear();
    } else {
      tok += c;
    }
  }
  if (!tok.empty()) out.push_back(std::move(tok));
  return out;
}

namespace {

// format_shortest (support/json): shortest round-tripping decimal.
std::string fmt_speed(double hz) { return format_shortest(hz) + "Hz"; }
std::string fmt_bw(double Bps) { return format_shortest(Bps * 8) + "bps"; }
std::string fmt_lat(double s) { return format_shortest(s) + "s"; }

int parse_int(const std::string& text, int line, const char* what) {
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0')
    throw ScenarioError(line, std::string("bad ") + what + " '" + text + "'");
  return static_cast<int>(v);
}

double parse_double(const std::string& text, int line, const char* what) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0')
    throw ScenarioError(line, std::string("bad ") + what + " '" + text + "'");
  return v;
}

/// key=value parameter map for one `platform <kind> ...` line.
using Params = std::map<std::string, std::string>;

Params parse_params(const std::vector<std::string>& tok, std::size_t first, int line) {
  Params out;
  for (std::size_t i = first; i < tok.size(); ++i) {
    const auto eq = tok[i].find('=');
    if (eq == std::string::npos || eq == 0)
      throw ScenarioError(line, "expected key=value, got '" + tok[i] + "'");
    out[tok[i].substr(0, eq)] = tok[i].substr(eq + 1);
  }
  return out;
}

/// Applies every recognized key; throws on unknown keys so typos surface.
void apply_params(const Params& params, int line,
                  const std::map<std::string, std::function<void(const std::string&)>>& keys) {
  for (const auto& [key, value] : params) {
    auto it = keys.find(key);
    if (it == keys.end()) throw ScenarioError(line, "unknown platform key '" + key + "'");
    try {
      it->second(value);
    } catch (const std::invalid_argument& e) {
      throw ScenarioError(line, std::string(e.what()) + " (key '" + key + "')");
    }
  }
}

std::vector<double> parse_speed_list(const std::string& text) {
  std::vector<double> out;
  std::string item;
  std::istringstream in(text);
  while (std::getline(in, item, ','))
    if (!item.empty()) out.push_back(net::parse_speed_value(item));
  if (out.empty()) throw std::invalid_argument("empty speed list '" + text + "'");
  return out;
}

}  // namespace

PlatformSpec parse_platform_tokens(const std::vector<std::string>& tok, int line) {
  const std::string& kind = tok[1];
  // Presets first: the paper's named platforms.
  if (kind == "grid5000" && tok.size() == 2) return PlatformSpec::grid5000();
  if (kind == "lan" && tok.size() == 2) return PlatformSpec::lan();
  if (kind == "xdsl" && tok.size() == 2) return PlatformSpec::xdsl();

  PlatformSpec out;
  out.label = kind;
  if (kind == "star") {
    net::StarSpec s;
    s.hosts = 0;  // auto-size to the run's peer count unless given
    const Params p = parse_params(tok, 2, line);
    apply_params(p, line,
                 {{"label", [&](const std::string& v) { out.label = v; }},
                  {"hosts", [&](const std::string& v) { s.hosts = parse_int(v, line, "hosts"); }},
                  {"speed", [&](const std::string& v) { s.host_speed_hz = net::parse_speed_value(v); }},
                  {"nic_bw", [&](const std::string& v) { s.nic_bw_Bps = net::parse_bandwidth_value(v); }},
                  {"nic_lat", [&](const std::string& v) { s.nic_latency = net::parse_latency_value(v); }},
                  {"bb_bw", [&](const std::string& v) { s.backbone_bw_Bps = net::parse_bandwidth_value(v); }},
                  {"bb_lat", [&](const std::string& v) { s.backbone_latency = net::parse_latency_value(v); }},
                  {"prefix", [&](const std::string& v) { s.name_prefix = v; }},
                  {"ip", [&](const std::string& v) {
                     auto ip = Ipv4::parse(v);
                     if (!ip) throw std::invalid_argument("bad ip '" + v + "'");
                     s.base_ip = *ip;
                   }}});
    out.spec = s;
  } else if (kind == "daisy") {
    net::DaisySpec s;
    const Params p = parse_params(tok, 2, line);
    apply_params(p, line,
                 {{"label", [&](const std::string& v) { out.label = v; }},
                  {"petals", [&](const std::string& v) { s.central_routers = parse_int(v, line, "petals"); }},
                  {"petal_routers", [&](const std::string& v) { s.routers_per_petal = parse_int(v, line, "petal_routers"); }},
                  {"dslams", [&](const std::string& v) { s.dslams_per_router = parse_int(v, line, "dslams"); }},
                  {"dslam_nodes", [&](const std::string& v) { s.nodes_per_dslam = parse_int(v, line, "dslam_nodes"); }},
                  {"extra", [&](const std::string& v) { s.extra_nodes_on_one_dslam = parse_int(v, line, "extra"); }},
                  {"speed", [&](const std::string& v) { s.host_speed_hz = net::parse_speed_value(v); }},
                  {"ring_bw", [&](const std::string& v) { s.ring_bw_Bps = net::parse_bandwidth_value(v); }},
                  {"petal_bw", [&](const std::string& v) { s.petal_bw_Bps = net::parse_bandwidth_value(v); }},
                  {"up_bw", [&](const std::string& v) { s.dslam_up_bw_Bps = net::parse_bandwidth_value(v); }},
                  {"lastmile_min", [&](const std::string& v) { s.last_mile_min_Bps = net::parse_bandwidth_value(v); }},
                  {"lastmile_max", [&](const std::string& v) { s.last_mile_max_Bps = net::parse_bandwidth_value(v); }},
                  {"router_lat", [&](const std::string& v) { s.router_latency = net::parse_latency_value(v); }},
                  {"lastmile_lat", [&](const std::string& v) { s.last_mile_latency = net::parse_latency_value(v); }}});
    out.spec = s;
  } else if (kind == "federation") {
    net::FederationSpec s;
    const Params p = parse_params(tok, 2, line);
    apply_params(p, line,
                 {{"label", [&](const std::string& v) { out.label = v; }},
                  {"clusters", [&](const std::string& v) { s.clusters = parse_int(v, line, "clusters"); }},
                  {"hosts", [&](const std::string& v) { s.hosts_per_cluster = parse_int(v, line, "hosts"); }},
                  {"speeds", [&](const std::string& v) { s.site_speeds_hz = parse_speed_list(v); }},
                  {"nic_bw", [&](const std::string& v) { s.nic_bw_Bps = net::parse_bandwidth_value(v); }},
                  {"nic_lat", [&](const std::string& v) { s.nic_latency = net::parse_latency_value(v); }},
                  {"wan_bw", [&](const std::string& v) { s.wan_bw_Bps = net::parse_bandwidth_value(v); }},
                  {"wan_lat", [&](const std::string& v) { s.wan_latency = net::parse_latency_value(v); }}});
    out.spec = s;
  } else if (kind == "wan") {
    net::WanSpec s;
    const Params p = parse_params(tok, 2, line);
    apply_params(p, line,
                 {{"label", [&](const std::string& v) { out.label = v; }},
                  {"hosts", [&](const std::string& v) { s.hosts = parse_int(v, line, "hosts"); }},
                  {"routers", [&](const std::string& v) { s.routers = parse_int(v, line, "routers"); }},
                  {"extra_links", [&](const std::string& v) { s.extra_links = parse_int(v, line, "extra_links"); }},
                  {"speed_min", [&](const std::string& v) { s.speed_min_hz = net::parse_speed_value(v); }},
                  {"speed_max", [&](const std::string& v) { s.speed_max_hz = net::parse_speed_value(v); }},
                  {"access_min", [&](const std::string& v) { s.access_bw_min_Bps = net::parse_bandwidth_value(v); }},
                  {"access_max", [&](const std::string& v) { s.access_bw_max_Bps = net::parse_bandwidth_value(v); }},
                  {"access_lat", [&](const std::string& v) { s.access_latency = net::parse_latency_value(v); }},
                  {"core_bw", [&](const std::string& v) { s.core_bw_Bps = net::parse_bandwidth_value(v); }},
                  {"core_lat_min", [&](const std::string& v) { s.core_lat_min = net::parse_latency_value(v); }},
                  {"core_lat_max", [&](const std::string& v) { s.core_lat_max = net::parse_latency_value(v); }}});
    out.spec = s;
  } else if (kind == "scale_free") {
    net::ScaleFreeSpec s;
    s.hosts = 0;  // auto-size to the run's peer count unless given
    const Params p = parse_params(tok, 2, line);
    apply_params(p, line,
                 {{"label", [&](const std::string& v) { out.label = v; }},
                  {"hosts", [&](const std::string& v) { s.hosts = parse_int(v, line, "hosts"); }},
                  {"routers", [&](const std::string& v) { s.routers = parse_int(v, line, "routers"); }},
                  {"m", [&](const std::string& v) { s.m = parse_int(v, line, "m"); }},
                  {"speed", [&](const std::string& v) { s.host_speed_hz = net::parse_speed_value(v); }},
                  {"access_bw", [&](const std::string& v) { s.access_bw_Bps = net::parse_bandwidth_value(v); }},
                  {"access_lat", [&](const std::string& v) { s.access_latency = net::parse_latency_value(v); }},
                  {"core_bw", [&](const std::string& v) { s.core_bw_Bps = net::parse_bandwidth_value(v); }},
                  {"core_lat", [&](const std::string& v) { s.core_latency = net::parse_latency_value(v); }},
                  {"ip", [&](const std::string& v) {
                     auto ip = Ipv4::parse(v);
                     if (!ip) throw std::invalid_argument("bad ip '" + v + "'");
                     s.base_ip = *ip;
                   }}});
    out.spec = s;
  } else if (kind == "small_world") {
    net::SmallWorldSpec s;
    s.hosts = 0;  // auto-size to the run's peer count unless given
    const Params p = parse_params(tok, 2, line);
    apply_params(p, line,
                 {{"label", [&](const std::string& v) { out.label = v; }},
                  {"hosts", [&](const std::string& v) { s.hosts = parse_int(v, line, "hosts"); }},
                  {"routers", [&](const std::string& v) { s.routers = parse_int(v, line, "routers"); }},
                  {"k", [&](const std::string& v) { s.k = parse_int(v, line, "k"); }},
                  {"beta", [&](const std::string& v) { s.beta = parse_double(v, line, "beta"); }},
                  {"speed", [&](const std::string& v) { s.host_speed_hz = net::parse_speed_value(v); }},
                  {"access_bw", [&](const std::string& v) { s.access_bw_Bps = net::parse_bandwidth_value(v); }},
                  {"access_lat", [&](const std::string& v) { s.access_latency = net::parse_latency_value(v); }},
                  {"core_bw", [&](const std::string& v) { s.core_bw_Bps = net::parse_bandwidth_value(v); }},
                  {"core_lat", [&](const std::string& v) { s.core_latency = net::parse_latency_value(v); }},
                  {"ip", [&](const std::string& v) {
                     auto ip = Ipv4::parse(v);
                     if (!ip) throw std::invalid_argument("bad ip '" + v + "'");
                     s.base_ip = *ip;
                   }}});
    out.spec = s;
  } else if (kind == "file") {
    if (tok.size() != 3) throw ScenarioError(line, "expected: platform file <path>");
    return PlatformSpec::from_file(tok[2]);
  } else {
    throw ScenarioError(line, "unknown platform kind '" + kind + "'");
  }
  return out;
}

std::string render_platform_line(const PlatformSpec& p) {
  if (std::holds_alternative<PlatformFileSpec>(p.spec))
    throw std::invalid_argument("platform-file specs have no one-line form");
  std::ostringstream out;
  out << "platform " << p.kind() << " label=" << p.label;
  if (const auto* s = std::get_if<net::StarSpec>(&p.spec)) {
    out << " hosts=" << s->hosts << " speed=" << fmt_speed(s->host_speed_hz)
        << " nic_bw=" << fmt_bw(s->nic_bw_Bps) << " nic_lat=" << fmt_lat(s->nic_latency)
        << " bb_bw=" << fmt_bw(s->backbone_bw_Bps)
        << " bb_lat=" << fmt_lat(s->backbone_latency) << " prefix=" << s->name_prefix
        << " ip=" << s->base_ip.to_string();
  } else if (const auto* s = std::get_if<net::DaisySpec>(&p.spec)) {
    out << " petals=" << s->central_routers << " petal_routers=" << s->routers_per_petal
        << " dslams=" << s->dslams_per_router << " dslam_nodes=" << s->nodes_per_dslam
        << " extra=" << s->extra_nodes_on_one_dslam
        << " speed=" << fmt_speed(s->host_speed_hz) << " ring_bw=" << fmt_bw(s->ring_bw_Bps)
        << " petal_bw=" << fmt_bw(s->petal_bw_Bps) << " up_bw=" << fmt_bw(s->dslam_up_bw_Bps)
        << " lastmile_min=" << fmt_bw(s->last_mile_min_Bps)
        << " lastmile_max=" << fmt_bw(s->last_mile_max_Bps)
        << " router_lat=" << fmt_lat(s->router_latency)
        << " lastmile_lat=" << fmt_lat(s->last_mile_latency);
  } else if (const auto* s = std::get_if<net::FederationSpec>(&p.spec)) {
    out << " clusters=" << s->clusters << " hosts=" << s->hosts_per_cluster << " speeds=";
    for (std::size_t i = 0; i < s->site_speeds_hz.size(); ++i)
      out << (i > 0 ? "," : "") << fmt_speed(s->site_speeds_hz[i]);
    out << " nic_bw=" << fmt_bw(s->nic_bw_Bps) << " nic_lat=" << fmt_lat(s->nic_latency)
        << " wan_bw=" << fmt_bw(s->wan_bw_Bps) << " wan_lat=" << fmt_lat(s->wan_latency);
  } else if (const auto* s = std::get_if<net::WanSpec>(&p.spec)) {
    out << " hosts=" << s->hosts << " routers=" << s->routers
        << " extra_links=" << s->extra_links << " speed_min=" << fmt_speed(s->speed_min_hz)
        << " speed_max=" << fmt_speed(s->speed_max_hz)
        << " access_min=" << fmt_bw(s->access_bw_min_Bps)
        << " access_max=" << fmt_bw(s->access_bw_max_Bps)
        << " access_lat=" << fmt_lat(s->access_latency)
        << " core_bw=" << fmt_bw(s->core_bw_Bps)
        << " core_lat_min=" << fmt_lat(s->core_lat_min)
        << " core_lat_max=" << fmt_lat(s->core_lat_max);
  } else if (const auto* s = std::get_if<net::ScaleFreeSpec>(&p.spec)) {
    out << " hosts=" << s->hosts << " routers=" << s->routers << " m=" << s->m
        << " speed=" << fmt_speed(s->host_speed_hz)
        << " access_bw=" << fmt_bw(s->access_bw_Bps)
        << " access_lat=" << fmt_lat(s->access_latency)
        << " core_bw=" << fmt_bw(s->core_bw_Bps)
        << " core_lat=" << fmt_lat(s->core_latency)
        << " ip=" << s->base_ip.to_string();
  } else if (const auto* s = std::get_if<net::SmallWorldSpec>(&p.spec)) {
    out << " hosts=" << s->hosts << " routers=" << s->routers << " k=" << s->k
        << " beta=" << format_shortest(s->beta)
        << " speed=" << fmt_speed(s->host_speed_hz)
        << " access_bw=" << fmt_bw(s->access_bw_Bps)
        << " access_lat=" << fmt_lat(s->access_latency)
        << " core_bw=" << fmt_bw(s->core_bw_Bps)
        << " core_lat=" << fmt_lat(s->core_latency)
        << " ip=" << s->base_ip.to_string();
  }
  return out.str();
}

const char* PlatformSpec::kind() const {
  struct Visitor {
    const char* operator()(const net::StarSpec&) const { return "star"; }
    const char* operator()(const net::DaisySpec&) const { return "daisy"; }
    const char* operator()(const PlatformFileSpec&) const { return "file"; }
    const char* operator()(const net::FederationSpec&) const { return "federation"; }
    const char* operator()(const net::WanSpec&) const { return "wan"; }
    const char* operator()(const net::ScaleFreeSpec&) const { return "scale_free"; }
    const char* operator()(const net::SmallWorldSpec&) const { return "small_world"; }
  };
  return std::visit(Visitor{}, spec);
}

PlatformSpec PlatformSpec::grid5000() {
  net::StarSpec s = net::bordeplage_cluster_spec(0);  // hosts auto-sized at deploy
  return PlatformSpec{"grid5000", s};
}

PlatformSpec PlatformSpec::lan() {
  net::StarSpec s = net::lan_spec(0);
  return PlatformSpec{"lan", s};
}

PlatformSpec PlatformSpec::xdsl() { return PlatformSpec{"xdsl", net::DaisySpec{}}; }

PlatformSpec PlatformSpec::federation() {
  return PlatformSpec{"federation", net::FederationSpec{}};
}

PlatformSpec PlatformSpec::wan() { return PlatformSpec{"wan", net::WanSpec{}}; }

PlatformSpec PlatformSpec::scale_free() {
  net::ScaleFreeSpec s;
  s.hosts = 0;  // auto-size to the run's peer count at deploy
  return PlatformSpec{"scale_free", s};
}

PlatformSpec PlatformSpec::small_world() {
  net::SmallWorldSpec s;
  s.hosts = 0;
  return PlatformSpec{"small_world", s};
}

PlatformSpec PlatformSpec::from_file(std::string path) {
  return PlatformSpec{"file:" + path, PlatformFileSpec{std::move(path), ""}};
}

PlatformSpec PlatformSpec::from_text(std::string platfile_text) {
  return PlatformSpec{"inline", PlatformFileSpec{"", std::move(platfile_text)}};
}

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::Reference: return "reference";
    case Mode::Predict: return "predict";
    case Mode::Both: return "both";
    case Mode::Analytic: return "analytic";
    case Mode::BothAnalytic: return "both-analytic";
  }
  return "?";
}

RunSpec RunSpec::from_env() {
  RunSpec s;
  if (env_flag("PDC_QUICK")) {
    s.grid_n = 258;
    s.iters = 100;
  }
  return s;
}

ScenarioSpec parse_scenario(const std::string& text, const RunSpec& base) {
  ScenarioSpec spec;
  spec.run = base;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto tok = tokenize_spec_line(line);
    if (tok.empty()) continue;
    const std::string& kw = tok[0];
    auto need = [&](std::size_t n, const char* usage) {
      if (tok.size() != n) throw ScenarioError(lineno, std::string("expected: ") + usage);
    };
    if (kw == "scenario") {
      need(2, "scenario <name>");
      spec.name = tok[1];
    } else if (kw == "platform") {
      if (tok.size() < 2) throw ScenarioError(lineno, "expected: platform <kind> ...");
      if (tok[1] == "inline") {
        // Raw platfile lines until a lone `end`.
        std::string body;
        const int start = lineno;
        bool closed = false;
        while (std::getline(in, line)) {
          ++lineno;
          const auto inner = tokenize_spec_line(line);
          if (inner.size() == 1 && inner[0] == "end") {
            closed = true;
            break;
          }
          body += line;
          body += '\n';
        }
        if (!closed) throw ScenarioError(start, "'platform inline' without closing 'end'");
        spec.platform = PlatformSpec::from_text(std::move(body));
      } else {
        spec.platform = parse_platform_tokens(tok, lineno);
      }
    } else if (kw == "peers") {
      need(2, "peers <n>");
      spec.run.peers = parse_int(tok[1], lineno, "peers");
    } else if (kw == "opt") {
      need(2, "opt <0|1|2|3|s>");
      try {
        spec.run.level = ir::parse_opt_level(tok[1]);
      } catch (const std::invalid_argument& e) {
        throw ScenarioError(lineno, e.what());
      }
    } else if (kw == "mode") {
      need(2, "mode <reference|predict|both|analytic|both-analytic>");
      if (tok[1] == "reference") spec.run.mode = Mode::Reference;
      else if (tok[1] == "predict") spec.run.mode = Mode::Predict;
      else if (tok[1] == "both") spec.run.mode = Mode::Both;
      else if (tok[1] == "analytic") spec.run.mode = Mode::Analytic;
      else if (tok[1] == "both-analytic") spec.run.mode = Mode::BothAnalytic;
      else throw ScenarioError(lineno, "unknown mode '" + tok[1] + "'");
    } else if (kw == "alloc") {
      need(2, "alloc <hierarchical|flat>");
      if (tok[1] == "hierarchical") spec.run.allocation = p2pdc::AllocationMode::Hierarchical;
      else if (tok[1] == "flat") spec.run.allocation = p2pdc::AllocationMode::Flat;
      else throw ScenarioError(lineno, "unknown allocation '" + tok[1] + "'");
    } else if (kw == "scheme") {
      need(2, "scheme <sync|async>");
      if (tok[1] == "sync") spec.run.scheme = p2psap::Scheme::Synchronous;
      else if (tok[1] == "async") spec.run.scheme = p2psap::Scheme::Asynchronous;
      else throw ScenarioError(lineno, "unknown scheme '" + tok[1] + "'");
    } else if (kw == "seed") {
      need(2, "seed <n>");
      char* end = nullptr;
      spec.run.seed = std::strtoull(tok[1].c_str(), &end, 10);
      if (end == tok[1].c_str() || *end != '\0')
        throw ScenarioError(lineno, "bad seed '" + tok[1] + "'");
    } else if (kw == "grid") {
      need(2, "grid <n>");
      spec.run.grid_n = parse_int(tok[1], lineno, "grid");
    } else if (kw == "iters") {
      need(2, "iters <n>");
      spec.run.iters = parse_int(tok[1], lineno, "iters");
    } else if (kw == "rcheck") {
      need(2, "rcheck <n>");
      spec.run.rcheck = parse_int(tok[1], lineno, "rcheck");
    } else if (kw == "bench") {
      need(4, "bench <n> <iters> <rcheck>");
      spec.run.bench_n = parse_int(tok[1], lineno, "bench n");
      spec.run.bench_iters = parse_int(tok[2], lineno, "bench iters");
      spec.run.bench_rcheck = parse_int(tok[3], lineno, "bench rcheck");
    } else if (kw == "omega") {
      need(2, "omega <x>");
      spec.run.omega = parse_double(tok[1], lineno, "omega");
    } else if (kw == "cmax") {
      need(2, "cmax <n>");
      spec.run.cmax = parse_int(tok[1], lineno, "cmax");
    } else if (kw == "boot") {
      need(2, "boot <eager|lazy>");
      if (tok[1] == "eager") spec.run.lazy_boot = false;
      else if (tok[1] == "lazy") spec.run.lazy_boot = true;
      else throw ScenarioError(lineno, "unknown boot mode '" + tok[1] + "'");
    } else if (kw == "trackers") {
      need(2, "trackers <n>");
      spec.run.trackers = parse_int(tok[1], lineno, "trackers");
      if (spec.run.trackers < 1) throw ScenarioError(lineno, "trackers must be >= 1");
    } else if (kw == "ranks") {
      need(2, "ranks <n>");
      spec.run.ranks = parse_int(tok[1], lineno, "ranks");
      if (spec.run.ranks < 0) throw ScenarioError(lineno, "ranks must be >= 0");
    } else if (kw == "trace") {
      need(2, "trace <path>");
      spec.run.trace_path = tok[1];
    } else if (kw == "churn") {
      try {
        churn::parse_churn_tokens(tok, spec.run.churn);
      } catch (const std::invalid_argument& e) {
        throw ScenarioError(lineno, e.what());
      }
    } else {
      throw ScenarioError(lineno, "unknown keyword '" + kw + "'");
    }
  }
  return spec;
}

std::string render_scenario(const ScenarioSpec& spec) {
  std::ostringstream out;
  out << "scenario " << spec.name << "\n";
  if (const auto* f = std::get_if<PlatformFileSpec>(&spec.platform.spec)) {
    if (!f->path.empty()) {
      out << "platform file " << f->path << "\n";
    } else {
      out << "platform inline\n" << f->text;
      if (!f->text.empty() && f->text.back() != '\n') out << "\n";
      out << "end\n";
    }
  } else {
    out << render_platform_line(spec.platform) << "\n";
  }
  const RunSpec& r = spec.run;
  out << "peers " << r.peers << "\n";
  out << "opt " << ir::opt_level_name(r.level) << "\n";
  out << "mode " << mode_name(r.mode) << "\n";
  out << "alloc "
      << (r.allocation == p2pdc::AllocationMode::Hierarchical ? "hierarchical" : "flat")
      << "\n";
  out << "scheme " << (r.scheme == p2psap::Scheme::Synchronous ? "sync" : "async") << "\n";
  out << "seed " << r.seed << "\n";
  out << "grid " << r.grid_n << "\n";
  out << "iters " << r.iters << "\n";
  out << "rcheck " << r.rcheck << "\n";
  out << "bench " << r.bench_n << " " << r.bench_iters << " " << r.bench_rcheck << "\n";
  out << "omega " << format_shortest(r.omega) << "\n";
  out << "cmax " << r.cmax << "\n";
  // Scale knobs render only when non-default, so pre-existing scenarios keep
  // their exact text form (same contract as the churn lines below).
  if (r.lazy_boot) out << "boot lazy\n";
  if (r.trackers != 1) out << "trackers " << r.trackers << "\n";
  if (r.ranks != 0) out << "ranks " << r.ranks << "\n";
  // Empty for a default ChurnSpec: churn-free scenarios keep the exact text
  // form they had before churn existed (stable campaign resume identities).
  out << churn::render_churn_lines(r.churn);
  return out.str();
}

}  // namespace pdc::scenario
