#include "churn/injector.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "support/log.hpp"

namespace pdc::churn {

namespace {

/// All churn instants land on one shared "churn" track of the per-run trace.
void trace_churn(sim::Engine& eng, const char* name,
                 std::initializer_list<obs::TraceArg> args) {
  if (obs::TraceRecorder* tr = obs::trace(); tr != nullptr)
    tr->instant(tr->track("churn"), name, eng.now(), args);
}

}  // namespace

Injector::Injector(p2pdc::Environment& env, std::vector<net::NodeIdx> workers,
                   std::vector<net::NodeIdx> crashable_trackers,
                   std::vector<net::NodeIdx> spare_hosts,
                   std::vector<ChurnEvent> timeline, std::uint64_t seed)
    : env_(&env),
      workers_(std::move(workers)),
      crashable_trackers_(std::move(crashable_trackers)),
      spare_hosts_(std::move(spare_hosts)),
      timeline_(std::move(timeline)),
      rng_(seed) {}

void Injector::arm() {
  // Each timeline entry is one scheduled closure; the by-value ChurnEvent
  // capture must stay within the event kernel's inline budget so arming a
  // dense timeline allocates nothing per event.
  static_assert(sizeof(ChurnEvent) + sizeof(void*) <= sim::EventFn::kInlineSize);
  sim::Engine& engine = env_->engine();
  for (const ChurnEvent& ev : timeline_)
    engine.schedule_after(ev.at, [this, ev] { apply(ev); });
}

void Injector::apply(const ChurnEvent& ev) {
  switch (ev.kind) {
    case ChurnEvent::Kind::PeerCrash: crash_peer(ev); break;
    case ChurnEvent::Kind::PeerJoin: join_peer(); break;
    case ChurnEvent::Kind::TrackerCrash: crash_tracker(ev); break;
    case ChurnEvent::Kind::LinkDegrade: degrade_link(ev); break;
    case ChurnEvent::Kind::LinkRestore: restore_link(ev); break;
  }
}

void Injector::crash_peer(const ChurnEvent& ev) {
  net::NodeIdx host = -1;
  if (ev.target >= 0) {
    if (ev.target < static_cast<int>(workers_.size()))
      host = workers_[static_cast<std::size_t>(ev.target)];
    // peer_alive covers full PeerActors and lazily-booted passive peers.
    if (host >= 0 && !env_->over().peer_alive(host)) host = -1;  // already gone
  } else {
    std::vector<net::NodeIdx> alive;
    for (const net::NodeIdx w : workers_)
      if (env_->over().peer_alive(w)) alive.push_back(w);
    if (!alive.empty())
      host = alive[static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(alive.size()) - 1))];
  }
  if (host < 0) {
    ++stats_.events_skipped;
    trace_churn(env_->engine(), "skipped", {{"kind", "crash-peer"}});
    return;
  }
  PDC_LOG_INFO("churn: crash-peer " + env_->platform().node(host).name + " at t=" +
               std::to_string(env_->engine().now()));
  env_->crash_host(host);
  trace_churn(env_->engine(), "crash-peer", {{"host", host}});
  ++stats_.peer_crashes;
  ++stats_.events_applied;
}

void Injector::join_peer() {
  if (next_spare_ >= spare_hosts_.size()) {
    ++stats_.events_skipped;  // no replacement capacity left on this platform
    trace_churn(env_->engine(), "skipped", {{"kind", "join"}});
    return;
  }
  const net::NodeIdx host = spare_hosts_[next_spare_++];
  PDC_LOG_INFO("churn: join " + env_->platform().node(host).name + " at t=" +
               std::to_string(env_->engine().now()));
  // The shared deployment policy, so replacements satisfy the same
  // requirement matching as the original workers.
  env_->boot_peer(host, p2pdc::worker_resources(env_->platform(), host));
  trace_churn(env_->engine(), "join", {{"host", host}});
  ++stats_.peer_joins;
  ++stats_.events_applied;
}

void Injector::crash_tracker(const ChurnEvent& ev) {
  // Keep the overlay submittable: only ever crash down to one alive tracker.
  int alive_total = 0;
  for (const overlay::TrackerActor* t : env_->over().trackers())
    if (t->alive()) ++alive_total;
  net::NodeIdx host = -1;
  if (alive_total > 1) {
    std::vector<net::NodeIdx> alive;
    for (const net::NodeIdx h : crashable_trackers_) {
      const overlay::TrackerActor* t = env_->over().tracker_at(h);
      if (t != nullptr && t->alive()) alive.push_back(h);
    }
    if (ev.target >= 0) {
      if (ev.target < static_cast<int>(crashable_trackers_.size())) {
        const net::NodeIdx h = crashable_trackers_[static_cast<std::size_t>(ev.target)];
        if (std::find(alive.begin(), alive.end(), h) != alive.end()) host = h;
      }
    } else if (!alive.empty()) {
      host = alive[static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(alive.size()) - 1))];
    }
  }
  if (host < 0) {
    ++stats_.events_skipped;
    trace_churn(env_->engine(), "skipped", {{"kind", "crash-tracker"}});
    return;
  }
  PDC_LOG_INFO("churn: crash-tracker " + env_->platform().node(host).name + " at t=" +
               std::to_string(env_->engine().now()));
  env_->crash_host(host);
  trace_churn(env_->engine(), "crash-tracker", {{"host", host}});
  ++stats_.tracker_crashes;
  ++stats_.events_applied;
}

void Injector::degrade_link(const ChurnEvent& ev) {
  const int links = env_->platform().link_count();
  if (links == 0) {
    ++stats_.events_skipped;
    trace_churn(env_->engine(), "skipped", {{"kind", "degrade-link"}});
    return;
  }
  net::LinkIdx link;
  if (ev.target >= 0) {
    if (ev.target >= links) {
      ++stats_.events_skipped;
      trace_churn(env_->engine(), "skipped", {{"kind", "degrade-link"}});
      return;
    }
    link = ev.target;
  } else {
    link = static_cast<net::LinkIdx>(rng_.uniform_int(0, links - 1));
  }
  env_->flownet().set_link_scale(link, ev.scale);
  trace_churn(env_->engine(), "degrade-link", {{"link", link}, {"scale", ev.scale}});
  degraded_.push_back(link);
  ++stats_.link_degrades;
  ++stats_.events_applied;
}

void Injector::restore_link(const ChurnEvent& ev) {
  net::LinkIdx link;
  if (ev.target >= 0) {
    if (ev.target >= env_->platform().link_count()) {
      ++stats_.events_skipped;
      trace_churn(env_->engine(), "skipped", {{"kind", "restore-link"}});
      return;
    }
    link = ev.target;
    const auto it = std::find(degraded_.begin(), degraded_.end(), link);
    if (it != degraded_.end()) degraded_.erase(it);
  } else {
    // Model-generated restores heal the longest-degraded link first.
    if (degraded_.empty()) {
      ++stats_.events_skipped;
      trace_churn(env_->engine(), "skipped", {{"kind", "restore-link"}});
      return;
    }
    link = degraded_.front();
    degraded_.pop_front();
  }
  env_->flownet().set_link_scale(link, 1.0);
  trace_churn(env_->engine(), "restore-link", {{"link", link}});
  ++stats_.link_restores;
  ++stats_.events_applied;
}

}  // namespace pdc::churn
