// Concurrency at the environment level: two submitters run two independent
// computations at the same time; peer reservation guarantees disjoint rank
// sets and channel tags never cross computations.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "net/builders.hpp"
#include "p2pdc/environment.hpp"

namespace pdc::p2pdc {
namespace {

TEST(Concurrency, TwoComputationsRunSimultaneously) {
  sim::Engine eng;
  const net::Platform plat = net::build_star(net::bordeplage_cluster_spec(16));
  Environment env{eng, plat};
  env.boot_server(plat.host(0));
  env.boot_tracker(plat.host(1), true);
  for (int i = 2; i < 16; ++i)
    env.boot_peer(plat.host(i), overlay::PeerResources{3e9, 1e9, 1e9});
  env.finish_bootstrap();

  auto make_main = [](double marker) {
    return [marker](PeerContext& ctx) -> sim::Task<void> {
      // Ring exchange inside each computation, then report the marker so we
      // can prove no cross-computation delivery happened.
      const int right = (ctx.rank() + 1) % ctx.nprocs();
      const int left = (ctx.rank() + ctx.nprocs() - 1) % ctx.nprocs();
      co_await ctx.send(right, 5, 512, std::make_shared<std::vector<double>>(1, marker));
      const auto m = co_await ctx.recv(left, 5);
      co_await ctx.compute(0.2);
      ctx.set_result({(*m.values)[0]});
    };
  };

  TaskSpec spec;
  spec.peers_needed = 5;
  auto r1 = std::make_shared<ComputationResult>();
  auto r2 = std::make_shared<ComputationResult>();
  auto done = std::make_shared<int>(0);
  eng.schedule_at(15.0, [&, r1, r2, done] {
    eng.spawn([](Environment& e, net::NodeIdx sub, TaskSpec sp, PeerMain m,
                 std::shared_ptr<ComputationResult> out,
                 std::shared_ptr<int> d) -> sim::Process {
      *out = co_await e.submit(sub, std::move(sp), std::move(m));
      ++*d;
    }(env, plat.host(2), spec, make_main(111.0), r1, done));
    eng.spawn([](Environment& e, net::NodeIdx sub, TaskSpec sp, PeerMain m,
                 std::shared_ptr<ComputationResult> out,
                 std::shared_ptr<int> d) -> sim::Process {
      *out = co_await e.submit(sub, std::move(sp), std::move(m));
      ++*d;
    }(env, plat.host(3), spec, make_main(222.0), r2, done));
  });
  Time cap = 400;
  while (*done < 2 && eng.now() < cap) eng.run_until(eng.now() + 5.0);

  ASSERT_TRUE(r1->ok) << r1->failure;
  ASSERT_TRUE(r2->ok) << r2->failure;
  ASSERT_EQ(r1->results.size(), 5u);
  ASSERT_EQ(r2->results.size(), 5u);
  // Every rank saw only its own computation's marker.
  for (const auto& values : r1->results) EXPECT_DOUBLE_EQ(values[0], 111.0);
  for (const auto& values : r2->results) EXPECT_DOUBLE_EQ(values[0], 222.0);
  // The two computations overlapped in simulated time (both needed >= 0.2 s
  // of compute and finished within the same window).
  EXPECT_GT(r1->t_finished, r2->t_submit);
  EXPECT_GT(r2->t_finished, r1->t_submit);
}

TEST(Concurrency, ReservationsKeepRankSetsDisjoint) {
  sim::Engine eng;
  const net::Platform plat = net::build_star(net::bordeplage_cluster_spec(14));
  Environment env{eng, plat};
  env.boot_server(plat.host(0));
  env.boot_tracker(plat.host(1), true);
  for (int i = 2; i < 14; ++i)
    env.boot_peer(plat.host(i), overlay::PeerResources{3e9, 1e9, 1e9});
  env.finish_bootstrap();

  TaskSpec spec;
  spec.peers_needed = 5;
  auto hosts1 = std::make_shared<std::set<net::NodeIdx>>();
  auto hosts2 = std::make_shared<std::set<net::NodeIdx>>();
  auto done = std::make_shared<int>(0);
  auto record = [](std::shared_ptr<std::set<net::NodeIdx>> sink) {
    return [sink](PeerContext& ctx) -> sim::Task<void> {
      sink->insert(ctx.host());
      co_await ctx.compute(0.5);  // long enough that both overlap
    };
  };
  eng.schedule_at(15.0, [&, done] {
    for (auto [sub, sink] : {std::make_pair(plat.host(2), hosts1),
                             std::make_pair(plat.host(3), hosts2)}) {
      eng.spawn([](Environment& e, net::NodeIdx s, TaskSpec sp, PeerMain m,
                   std::shared_ptr<int> d) -> sim::Process {
        const auto r = co_await e.submit(s, std::move(sp), std::move(m));
        EXPECT_TRUE(r.ok) << r.failure;
        ++*d;
      }(env, sub, spec, record(sink), done));
    }
  });
  while (*done < 2 && eng.now() < 400) eng.run_until(eng.now() + 5.0);
  ASSERT_EQ(*done, 2);
  ASSERT_EQ(hosts1->size(), 5u);
  ASSERT_EQ(hosts2->size(), 5u);
  for (net::NodeIdx h : *hosts1) EXPECT_FALSE(hosts2->count(h)) << "host reserved twice";
}

}  // namespace
}  // namespace pdc::p2pdc
