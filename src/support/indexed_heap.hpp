// Indexed binary min-heap: a priority queue over dense integer handles with
// O(log n) insert/update/erase by handle (no search). Used by the flow
// engine to keep projected completion times, where a reshare re-keys only
// the flows whose rate actually changed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pdc {

template <typename Key, typename Handle = std::uint32_t>
class IndexedMinHeap {
 public:
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  bool contains(Handle h) const {
    return static_cast<std::size_t>(h) < pos_.size() && pos_[h] != kNone;
  }
  Key key_of(Handle h) const { return entries_[pos_[h]].key; }

  Handle top() const { return entries_.front().handle; }
  Key top_key() const { return entries_.front().key; }

  /// Inserts `h` with `key`, or re-keys it if already present.
  void set(Handle h, Key key) {
    if (static_cast<std::size_t>(h) >= pos_.size()) pos_.resize(h + 1, kNone);
    std::uint32_t i = pos_[h];
    if (i == kNone) {
      i = static_cast<std::uint32_t>(entries_.size());
      entries_.push_back(Entry{key, h});
      pos_[h] = i;
      sift_up(i);
    } else {
      const Key old = entries_[i].key;
      entries_[i].key = key;
      if (key < old)
        sift_up(i);
      else
        sift_down(i);
    }
  }

  /// Removes `h` if present; no-op otherwise.
  void erase(Handle h) {
    if (!contains(h)) return;
    const std::uint32_t i = pos_[h];
    pos_[h] = kNone;
    const std::uint32_t last = static_cast<std::uint32_t>(entries_.size()) - 1;
    if (i != last) {
      entries_[i] = entries_[last];
      pos_[entries_[i].handle] = i;
      entries_.pop_back();
      sift_down(i);
      sift_up(i);
    } else {
      entries_.pop_back();
    }
  }

  void pop() { erase(top()); }

  void clear() {
    for (const Entry& e : entries_) pos_[e.handle] = kNone;
    entries_.clear();
  }

 private:
  struct Entry {
    Key key;
    Handle handle;
  };
  static constexpr std::uint32_t kNone = 0xffffffffu;

  void sift_up(std::uint32_t i) {
    Entry e = entries_[i];
    while (i > 0) {
      const std::uint32_t parent = (i - 1) / 2;
      if (!(e.key < entries_[parent].key)) break;
      entries_[i] = entries_[parent];
      pos_[entries_[i].handle] = i;
      i = parent;
    }
    entries_[i] = e;
    pos_[e.handle] = i;
  }

  void sift_down(std::uint32_t i) {
    Entry e = entries_[i];
    const std::uint32_t n = static_cast<std::uint32_t>(entries_.size());
    for (;;) {
      std::uint32_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && entries_[child + 1].key < entries_[child].key) ++child;
      if (!(entries_[child].key < e.key)) break;
      entries_[i] = entries_[child];
      pos_[entries_[i].handle] = i;
      i = child;
    }
    entries_[i] = e;
    pos_[e.handle] = i;
  }

  std::vector<Entry> entries_;
  std::vector<std::uint32_t> pos_;  // handle -> index in entries_, kNone if absent
};

}  // namespace pdc
