// Typed mailboxes connecting simulation processes.
//
// push() never blocks. recv() suspends until a value arrives; recv_for()
// additionally wakes with nullopt after a timeout — that is how the overlay
// protocols implement the paper's "if no state update after a time T,
// consider the node disconnected" rules.
//
// A mailbox can operate in LatestValue mode (capacity one, new values
// overwrite unconsumed ones). P2PSAP uses it for asynchronous iterative
// schemes where only the most recent boundary data matters.
//
// Steady-state receives are allocation-free: delivery resumes the waiter
// through the engine's raw-handle fast path, and a recv_for timeout is a
// one-shot timer slot (16-byte inline capture) that push() destroys eagerly
// the moment the value wins the race — nothing is left parked in the event
// queue but a stale 16-byte slot event, and the amortized sweep sheds even
// that long before its nominal fire time.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <optional>

#include "sim/engine.hpp"
#include "support/time.hpp"

namespace pdc::sim {

enum class MailboxPolicy { Unbounded, LatestValue };

template <class T>
class Mailbox {
 public:
  explicit Mailbox(Engine& engine, MailboxPolicy policy = MailboxPolicy::Unbounded)
      : engine_(&engine), policy_(policy) {}
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Deposits a value: hands it directly to the oldest waiting receiver if
  /// any (resumed via a same-time event), otherwise queues it.
  void push(T value) {
    if (head_ != nullptr) {
      WaitState& w = *head_;
      unlink(&w);
      w.value.emplace(std::move(value));
      if (w.timer_slot >= 0) {
        // The value won the race: retire the armed timeout now, so its
        // closure is released immediately instead of lingering in the heap
        // until the (possibly far-off) fire time.
        engine_->destroy_timer_slot(w.timer_slot);
        w.timer_slot = -1;
      }
      engine_->post_resume(w.handle);
      return;
    }
    if (policy_ == MailboxPolicy::LatestValue && !queue_.empty()) {
      queue_.clear();
      ++overwritten_;
    }
    queue_.push_back(std::move(value));
  }

  std::size_t size() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }
  /// Number of values discarded by LatestValue overwrites (async-scheme
  /// "stale messages dropped" statistic).
  std::uint64_t overwritten() const { return overwritten_; }

  /// Non-suspending receive: takes a queued value if present.
  std::optional<T> try_recv() {
    if (queue_.empty()) return std::nullopt;
    std::optional<T> v{std::move(queue_.front())};
    queue_.pop_front();
    return v;
  }

 private:
  /// Intrusive wait-queue node: the state lives in the awaiter (on the
  /// receiving coroutine's frame), so queueing a waiter links two pointers
  /// instead of allocating a list node.
  struct WaitState {
    std::optional<T> value;
    std::coroutine_handle<> handle;
    WaitState* prev = nullptr;
    WaitState* next = nullptr;
    int timer_slot = -1;  // armed recv_for timeout; -1 when none/consumed
    bool registered = false;
  };

  void append(WaitState* s) {
    s->prev = tail_;
    s->next = nullptr;
    (tail_ != nullptr ? tail_->next : head_) = s;
    tail_ = s;
    s->registered = true;
  }

  void unlink(WaitState* s) {
    (s->prev != nullptr ? s->prev->next : head_) = s->next;
    (s->next != nullptr ? s->next->prev : tail_) = s->prev;
    s->prev = s->next = nullptr;
    s->registered = false;
  }

  struct AwaiterCore {
    Mailbox* mb;
    Time timeout;  // < 0 means wait forever
    WaitState state;

    bool await_ready() {
      if (!mb->queue_.empty()) {
        state.value.emplace(std::move(mb->queue_.front()));
        mb->queue_.pop_front();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      state.handle = h;
      mb->append(&state);
      if (timeout >= 0) {
        // One-shot slot: fires at most once, self-destroys after firing, and
        // push() destroys it eagerly if the value arrives first. The capture
        // (two pointers) sits in the slot's inline buffer — no allocation on
        // either outcome.
        Mailbox* m = mb;
        WaitState* s = &state;
        state.timer_slot = m->engine_->create_timer_slot(
            [m, s] {
              s->timer_slot = -1;  // fired: the engine retires the slot
              if (s->registered) m->unlink(s);
              s->handle.resume();  // state.value stays empty -> timeout
            },
            /*one_shot=*/true);
        m->engine_->arm_timer_slot(state.timer_slot, timeout);
      }
    }
  };

 public:
  /// Awaitable returned by recv(): resumes with the received value.
  struct RecvOp : AwaiterCore {
    T await_resume() {
      assert(this->state.value.has_value());
      return std::move(*this->state.value);
    }
  };

  /// Awaitable returned by recv_for(): resumes with nullopt on timeout.
  struct RecvForOp : AwaiterCore {
    std::optional<T> await_resume() { return std::move(this->state.value); }
  };

  RecvOp recv() { return RecvOp{{this, Time{-1}, {}}}; }
  RecvForOp recv_for(Time timeout) { return RecvForOp{{this, timeout, {}}}; }

 private:
  Engine* engine_;
  MailboxPolicy policy_;
  std::deque<T> queue_;
  WaitState* head_ = nullptr;  // intrusive FIFO of suspended receivers
  WaitState* tail_ = nullptr;
  std::uint64_t overwritten_ = 0;
};

}  // namespace pdc::sim
