#include "minic/sema.hpp"

#include <map>
#include <vector>

#include "minic/builtins.hpp"
#include "minic/token.hpp"

namespace pdc::minic {

namespace {

class Checker {
 public:
  explicit Checker(Program& prog) : prog_(prog) {}

  void run() {
    for (const Function& f : prog_.functions) {
      if (find_builtin(f.name))
        throw CompileError(f.line, 1, "function '" + f.name + "' shadows a builtin");
      if (signatures_.count(f.name))
        throw CompileError(f.line, 1, "duplicate function '" + f.name + "'");
      signatures_[f.name] = &f;
    }
    for (Function& f : prog_.functions) check_function(f);
  }

 private:
  using Scope = std::map<std::string, Type>;

  [[noreturn]] void fail(int line, const std::string& msg) {
    throw CompileError(line, 1, msg);
  }

  Type lookup(const std::string& name, int line) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto v = it->find(name);
      if (v != it->end()) return v->second;
    }
    fail(line, "use of undeclared variable '" + name + "'");
  }

  void declare(const std::string& name, Type type, int line) {
    auto& scope = scopes_.back();
    if (scope.count(name)) fail(line, "redeclaration of '" + name + "' in the same scope");
    scope[name] = type;
  }

  void check_function(Function& f) {
    current_ = &f;
    scopes_.clear();
    scopes_.emplace_back();
    for (const Param& p : f.params) declare(p.name, p.type, f.line);
    scopes_.emplace_back();  // body scope
    for (StmtPtr& s : f.body) check_stmt(*s);
    scopes_.pop_back();
    scopes_.pop_back();
  }

  void check_stmt(Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::Decl: {
        if (s.array_size) {
          if (expr(*s.array_size) != Type::Int) fail(s.line, "array size must be int");
        }
        if (s.init) {
          const Type vt = expr(*s.init);
          if (!assignable(s.decl_type, vt))
            fail(s.line, "cannot initialize " + type_name(s.decl_type) + " '" + s.name +
                             "' from " + type_name(vt));
        }
        declare(s.name, s.decl_type, s.line);
        break;
      }
      case Stmt::Kind::Assign: {
        const Type lt = expr(*s.lvalue);
        if (is_array(lt)) fail(s.line, "arrays cannot be assigned as a whole");
        const Type vt = expr(*s.value);
        if (!assignable(lt, vt))
          fail(s.line, "cannot assign " + type_name(vt) + " to " + type_name(lt));
        break;
      }
      case Stmt::Kind::If:
      case Stmt::Kind::While: {
        if (expr(*s.cond) != Type::Int) fail(s.line, "condition must be int");
        scopes_.emplace_back();
        for (StmtPtr& b : s.body) check_stmt(*b);
        scopes_.pop_back();
        scopes_.emplace_back();
        for (StmtPtr& b : s.else_body) check_stmt(*b);
        scopes_.pop_back();
        break;
      }
      case Stmt::Kind::For: {
        scopes_.emplace_back();  // for-scope holds the induction declaration
        if (s.for_init) check_stmt(*s.for_init);
        if (s.cond && expr(*s.cond) != Type::Int) fail(s.line, "for condition must be int");
        if (s.for_step) check_stmt(*s.for_step);
        scopes_.emplace_back();
        for (StmtPtr& b : s.body) check_stmt(*b);
        scopes_.pop_back();
        scopes_.pop_back();
        break;
      }
      case Stmt::Kind::Return: {
        const Type want = current_->ret;
        if (s.value) {
          const Type got = expr(*s.value);
          if (want == Type::Void) fail(s.line, "void function returns a value");
          if (!assignable(want, got))
            fail(s.line, "returning " + type_name(got) + " from a " + type_name(want) +
                             " function");
        } else if (want != Type::Void) {
          fail(s.line, "non-void function must return a value");
        }
        break;
      }
      case Stmt::Kind::ExprStmt:
        expr(*s.value);
        break;
      case Stmt::Kind::Block: {
        scopes_.emplace_back();
        for (StmtPtr& b : s.body) check_stmt(*b);
        scopes_.pop_back();
        break;
      }
    }
  }

  static bool assignable(Type dst, Type src) {
    if (dst == src) return true;
    return dst == Type::Double && src == Type::Int;  // implicit promotion
  }

  Type expr(Expr& e) {
    switch (e.kind) {
      case Expr::Kind::IntLit: return e.type = Type::Int;
      case Expr::Kind::FloatLit: return e.type = Type::Double;
      case Expr::Kind::Var: return e.type = lookup(e.name, e.line);
      case Expr::Kind::Index: {
        const Type base = lookup(e.name, e.line);
        if (!is_array(base)) fail(e.line, "'" + e.name + "' is not an array");
        if (expr(*e.kids[0]) != Type::Int) fail(e.line, "array index must be int");
        return e.type = element_type(base);
      }
      case Expr::Kind::Unary: {
        const Type t = expr(*e.kids[0]);
        if (is_array(t)) fail(e.line, "invalid operand");
        if (e.un == UnOp::Not) {
          if (t != Type::Int) fail(e.line, "'!' needs an int operand");
          return e.type = Type::Int;
        }
        return e.type = t;
      }
      case Expr::Kind::Binary: {
        const Type lt = expr(*e.kids[0]);
        const Type rt = expr(*e.kids[1]);
        if (is_array(lt) || is_array(rt)) fail(e.line, "arrays are not valid operands");
        switch (e.bin) {
          case BinOp::And:
          case BinOp::Or:
            if (lt != Type::Int || rt != Type::Int)
              fail(e.line, "logical operators need int operands");
            return e.type = Type::Int;
          case BinOp::Mod:
            if (lt != Type::Int || rt != Type::Int) fail(e.line, "'%' needs int operands");
            return e.type = Type::Int;
          case BinOp::Lt:
          case BinOp::Le:
          case BinOp::Gt:
          case BinOp::Ge:
          case BinOp::Eq:
          case BinOp::Ne:
            return e.type = Type::Int;
          default:
            return e.type =
                       (lt == Type::Double || rt == Type::Double) ? Type::Double : Type::Int;
        }
      }
      case Expr::Kind::Call: {
        std::vector<Type> params;
        Type ret;
        if (auto b = find_builtin(e.name)) {
          params = b->params;
          ret = b->ret;
        } else if (auto it = signatures_.find(e.name); it != signatures_.end()) {
          for (const Param& p : it->second->params) params.push_back(p.type);
          ret = it->second->ret;
        } else {
          fail(e.line, "call to unknown function '" + e.name + "'");
        }
        if (e.kids.size() != params.size())
          fail(e.line, "'" + e.name + "' expects " + std::to_string(params.size()) +
                           " arguments, got " + std::to_string(e.kids.size()));
        for (std::size_t i = 0; i < params.size(); ++i) {
          const Type at = expr(*e.kids[i]);
          if (is_array(params[i])) {
            if (at != params[i])
              fail(e.line, "argument " + std::to_string(i + 1) + " of '" + e.name +
                               "' must be " + type_name(params[i]));
            if (e.kids[i]->kind != Expr::Kind::Var)
              fail(e.line, "array arguments must be plain array variables");
          } else if (!assignable(params[i], at)) {
            fail(e.line, "argument " + std::to_string(i + 1) + " of '" + e.name +
                             "' has type " + type_name(at) + ", expected " +
                             type_name(params[i]));
          }
        }
        return e.type = ret;
      }
    }
    fail(e.line, "internal: unhandled expression");
  }

  Program& prog_;
  const Function* current_ = nullptr;
  std::map<std::string, const Function*> signatures_;
  std::vector<Scope> scopes_;
};

}  // namespace

void check(Program& program) { Checker{program}.run(); }

}  // namespace pdc::minic
