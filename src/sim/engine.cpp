#include "sim/engine.hpp"

#include <algorithm>

namespace pdc::sim {

void Engine::schedule_at(Time t, std::function<void()> fn) {
  if (t < now_) t = now_;  // never schedule into the past
  heap_.push_back(Event{t, seq_++, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(),
                 [](const Event& a, const Event& b) { return a > b; });
}

TimerHandle Engine::schedule_cancellable(Time dt, std::function<void()> fn) {
  auto alive = std::make_shared<bool>(true);
  schedule_after(dt, [alive, fn = std::move(fn)] {
    if (*alive) fn();
  });
  return TimerHandle{alive};
}

void Engine::spawn(Process p, std::string name) {
  Process::Handle h = p.release();
  h.promise().engine = this;
  h.promise().name = std::move(name);
  registered_.push_back(h);
  ++live_processes_;
  post([h] { h.resume(); });
}

void Process::promise_type::FinalAwaiter::await_suspend(Process::Handle h) noexcept {
  h.promise().engine->on_process_done(h);
}

void Engine::on_process_done(Process::Handle h) {
  --live_processes_;
  if (h.promise().error && !pending_error_) pending_error_ = h.promise().error;
  zombies_.push_back(h);
}

void Engine::reap_zombies() {
  for (auto h : zombies_) {
    std::erase(registered_, h);
    h.destroy();
  }
  zombies_.clear();
}

void Engine::dispatch(Event ev) {
  now_ = ev.t;
  ++dispatched_;
  ev.fn();
  reap_zombies();
  if (pending_error_) {
    auto e = pending_error_;
    pending_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

bool Engine::step() {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(),
                [](const Event& a, const Event& b) { return a > b; });
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  dispatch(std::move(ev));
  return true;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::run_until(Time t_end) {
  while (!heap_.empty() && heap_.front().t <= t_end) step();
  if (now_ < t_end) now_ = t_end;
}

Engine::~Engine() {
  // Destroy still-suspended processes; their frames' local destructors run.
  reap_zombies();
  for (auto h : registered_) h.destroy();
}

}  // namespace pdc::sim
