// Ablation A3: IP-prefix proximity grouping (paper §III-C, "peers grouping
// is based on proximity, hence communication between coordinator and peers
// is faster") vs random grouping, evaluated on the Daisy xDSL platform by
// the network distance between each coordinator and its members.
#include <cstdio>

#include "alloc/groups.hpp"
#include "net/builders.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main() {
  using namespace pdc;
  net::DaisySpec spec;
  Rng rng{42};
  const net::Platform plat = net::build_daisy(spec, rng);

  std::printf("Ablation A3 -- proximity vs random grouping on the xDSL desktop grid\n"
              "(mean coordinator<->member route hops and latency; 128 volunteers)\n\n");

  // 128 volunteers spread over the 1024 nodes.
  std::vector<overlay::PeerRef> peers;
  for (int i = 0; i < 128; ++i) {
    const net::NodeIdx h = plat.host((i * 8 + 3) % plat.host_count());
    peers.push_back(overlay::PeerRef{h, plat.node(h).ip, overlay::PeerResources{3e9, 1e9, 1e9}});
  }

  auto evaluate = [&](const std::vector<alloc::Group>& groups) {
    RunningStats hops, latency;
    for (const auto& g : groups) {
      const net::NodeIdx coord = g.coordinator_ref().node;
      for (const auto& m : g.members) {
        if (m.node == coord) continue;
        const net::Route& r = plat.route(coord, m.node);
        hops.add(static_cast<double>(r.hops.size()));
        latency.add(r.latency * 1e3);
      }
    }
    return std::make_pair(hops, latency);
  };

  TextTable table({"Grouping", "groups", "mean hops", "max-obs hops", "mean latency [ms]"});

  const auto proximity_groups = alloc::form_groups(peers, alloc::kCmax);
  auto [ph, pl] = evaluate(proximity_groups);
  table.add_row({"IP-prefix proximity", std::to_string(proximity_groups.size()),
                 TextTable::num(ph.mean(), 2), TextTable::num(ph.max(), 0),
                 TextTable::num(pl.mean(), 3)});

  // Random grouping baseline: same sizes, shuffled membership.
  Rng shuffle_rng{7};
  auto shuffled = peers;
  shuffle_rng.shuffle(shuffled);
  std::vector<alloc::Group> random_groups;
  std::size_t at = 0;
  for (const auto& g : proximity_groups) {
    alloc::Group rg;
    rg.members.assign(shuffled.begin() + static_cast<std::ptrdiff_t>(at),
                      shuffled.begin() + static_cast<std::ptrdiff_t>(at + g.members.size()));
    at += g.members.size();
    random_groups.push_back(std::move(rg));
  }
  auto [rh, rl] = evaluate(random_groups);
  table.add_row({"random", std::to_string(random_groups.size()), TextTable::num(rh.mean(), 2),
                 TextTable::num(rh.max(), 0), TextTable::num(rl.mean(), 3)});

  std::printf("%s\n", table.render().c_str());
  std::printf("proximity grouping cuts coordinator-to-member distance by %.1f%%\n",
              100.0 * (1.0 - ph.mean() / rh.mean()));
  return 0;
}
