// The obstacle problem (paper §IV-A.1): find u >= psi on the unit square,
// u = 0 on the boundary, satisfying the complementarity conditions of
//   min(-Δu - f, u - psi) = 0,
// solved by the projected Richardson method of Spiteri & Chau [32], the
// numerical kernel of the paper's evaluation. The default obstacle is the
// paraboloid bump psi(x,y) = c0 - c1*((x-1/2)^2 + (y-1/2)^2) with c0=0.25,
// c1=2, and a downward force f = -8, which produces a genuine contact
// region in the middle of the domain.
#pragma once

#include <vector>

namespace pdc::obstacle {

struct ObstacleProblem {
  int n = 66;           // grid points per side, boundary included
  double omega = 0.9;   // projected-Richardson relaxation, stable in (0, 1]
  double force = -8.0;  // right-hand side f
  double c0 = 0.25;     // obstacle height
  double c1 = 2.0;      // obstacle curvature

  double h() const { return 1.0 / (n - 1); }
  double psi(double x, double y) const {
    const double dx = x - 0.5, dy = y - 0.5;
    return c0 - c1 * (dx * dx + dy * dy);
  }
  double psi_at(int row, int col) const { return psi(row * h(), col * h()); }
};

/// Row-major n x n grid.
struct Grid {
  int n = 0;
  std::vector<double> values;

  double& at(int row, int col) { return values[static_cast<std::size_t>(row * n + col)]; }
  double at(int row, int col) const { return values[static_cast<std::size_t>(row * n + col)]; }
};

/// The feasible initial guess used by both solvers: max(psi, 0) inside,
/// zero on the boundary.
Grid initial_guess(const ObstacleProblem& p);

struct SequentialResult {
  Grid solution;
  int iterations = 0;
  double residual = 0;  // max |u_{k+1} - u_k| at the last iteration
};

/// Runs projected Richardson until the update norm drops below `tol` or
/// `max_iters` sweeps elapse. Deterministic.
SequentialResult solve_sequential(const ObstacleProblem& p, int max_iters, double tol);

/// One projected sweep over the interior of `u` into `out`; returns the max
/// update magnitude. Exposed so the distributed solver shares the kernel.
double projected_sweep(const ObstacleProblem& p, const std::vector<double>& u,
                       std::vector<double>& out, int n_cols, int first_row, int last_row,
                       int global_row_of_first, const std::vector<double>& psi_cache);

/// Max violation of u >= psi over the interior (0 when feasible).
double obstacle_violation(const ObstacleProblem& p, const Grid& u);

/// Max |(-Δu - f)| over interior points that are strictly above the
/// obstacle (complementarity check: the PDE must hold off the contact set).
double pde_residual_off_contact(const ObstacleProblem& p, const Grid& u, double margin);

}  // namespace pdc::obstacle
