// Minimal POSIX socket wrapper for the serving layer: RAII file
// descriptors, Unix-domain and loopback-TCP listeners, blocking client
// connects, poll-based accept with a timeout, and the exact-read /
// exact-write helpers the line-framed serve protocol is built on
// (serve/protocol.hpp).
//
// Scope is deliberately narrow — local sockets between cooperating
// processes on one machine (the pdc_serve daemon and its clients), not a
// general networking layer. Everything throws std::system_error on OS
// failures so callers see errno text.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

namespace pdc {

/// RAII socket file descriptor. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Writes all of `data`, looping over partial writes. Throws on error.
  void write_all(const void* data, std::size_t size) const;
  void write_all(const std::string& data) const { write_all(data.data(), data.size()); }

  /// Reads exactly `size` bytes. Returns false on clean EOF before the first
  /// byte; throws on error or truncation mid-buffer.
  bool read_exact(void* out, std::size_t size) const;

  /// Reads up to and including '\n', returning the line without the
  /// terminator. Returns nullopt on clean EOF before any byte. Throws on
  /// error, EOF mid-line, or a line longer than `max_len`.
  std::optional<std::string> read_line(std::size_t max_len = 4096) const;

  /// Arms SO_RCVTIMEO/SO_SNDTIMEO so a dead peer cannot park a worker
  /// forever; subsequent reads/writes fail with std::system_error (EAGAIN).
  void set_io_timeout(double seconds) const;

 private:
  int fd_ = -1;
};

/// Binds and listens on a Unix-domain socket at `path` (an existing socket
/// file at that path is removed first, the daemon-restart convention).
Socket listen_unix(const std::string& path);

/// Binds and listens on 127.0.0.1:`port` (0 = ephemeral). Use
/// `bound_tcp_port` to learn the chosen port.
Socket listen_tcp(int port);

/// The local port a TCP listener is bound to.
int bound_tcp_port(const Socket& listener);

/// Blocking client connects.
Socket connect_unix(const std::string& path);
Socket connect_tcp(const std::string& host, int port);

/// Waits up to `timeout_seconds` for either listener (invalid sockets are
/// skipped) to have a pending connection; returns the accepted connection or
/// nullopt on timeout. Throws on poll/accept errors (EINTR is treated as a
/// timeout so signal-driven shutdown flags get re-checked by the caller).
std::optional<Socket> accept_ready(const Socket& a, const Socket& b,
                                   double timeout_seconds);

}  // namespace pdc
