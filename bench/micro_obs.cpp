// Observability-layer microbench: what does tracing cost, on and off?
//
// The obs contract is "zero-overhead-when-off" — every hook in the event
// kernel and FlowNet guards on one thread_local load. This bench prices
// that claim and the on-path, emitting BENCH_obs.json:
//
//  * dispatch_off    — the micro_engine closure_light workload with the
//    tracing hooks compiled in but no recorder installed. Pass
//    --baseline=BENCH_engine.json to embed the overhead percentage vs the
//    closure_light rate recorded there (the ≤2% acceptance gate);
//  * dispatch_traced — the same chains with a live recorder, pricing the
//    sampled queue-depth counter the engine emits every 64 time advances;
//  * recorder_spans  — tight span_begin/span_end pairs with two numeric
//    args: the raw per-event recorder cost, ns/event;
//  * recorder_async  — async begin/end pairs (the FlowNet flow lifecycle
//    shape: cat + correlation id);
//  * render_json     — to_json() over the recorder_spans document, bytes/s;
//  * histogram       — obs::Histogram::observe, the serve-latency hot path;
//  * prometheus      — render_prometheus over a serve-shaped registry,
//    renders/s (the METRICS verb answer cost).
//
// Emits BENCH_obs.json (argv[1] redirects). PDC_QUICK shrinks budgets for
// smoke/ASan runs.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "support/env.hpp"
#include "support/json.hpp"

namespace {

using namespace pdc;
using sim::Engine;

struct Result {
  std::string name;
  std::uint64_t events = 0;
  double wall_seconds = 0;
  double events_per_sec = 0;
};

struct Timer {
  std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  }
};

Result finish(std::string name, std::uint64_t events, const Timer& timer) {
  Result r;
  r.name = std::move(name);
  r.events = events;
  r.wall_seconds = timer.seconds();
  r.events_per_sec =
      r.wall_seconds > 0 ? static_cast<double>(events) / r.wall_seconds : 0;
  return r;
}

// The micro_engine closure_light workload, byte for byte: self-rechaining
// events with a pointer-sized capture. Identical code here means the
// --baseline comparison against BENCH_engine.json compares like with like.
struct LightChain {
  Engine* eng;
  std::uint64_t remaining;
  void step() {
    if (remaining == 0) return;
    --remaining;
    eng->schedule_after(0.001, [this] { step(); });
  }
};

Result bench_dispatch(const char* name, std::uint64_t events,
                      obs::TraceRecorder* recorder) {
  Engine eng;
  constexpr int kChains = 16;
  std::vector<LightChain> chains(kChains);
  obs::TraceScope scope{recorder};  // null recorder = tracing off
  Timer timer;
  for (auto& c : chains) {
    c.eng = &eng;
    c.remaining = events / kChains;
    c.step();
  }
  eng.run();
  return finish(name, eng.dispatched_events(), timer);
}

Result bench_recorder_spans(std::uint64_t events, obs::TraceRecorder& tr) {
  tr.begin_phase("bench");
  const obs::TrackId t = tr.track("spans");
  Timer timer;
  for (std::uint64_t i = 0; i < events / 2; ++i) {
    tr.span_begin(t, "work", static_cast<double>(i) * 1e-6,
                  {{"peers", 8}, {"bytes", 4096.0}});
    tr.span_end(t, static_cast<double>(i) * 1e-6 + 5e-7);
  }
  return finish("recorder_spans", tr.event_count(), timer);
}

Result bench_recorder_async(std::uint64_t events) {
  obs::TraceRecorder tr;
  tr.begin_phase("bench");
  const obs::TrackId t = tr.track("flows");
  Timer timer;
  for (std::uint64_t i = 0; i < events / 2; ++i) {
    tr.async_begin(t, "flow", "flow", i, static_cast<double>(i) * 1e-6,
                   {{"src", 1}, {"dst", 2}});
    tr.async_end(t, "flow", "flow", i, static_cast<double>(i) * 1e-6 + 5e-7);
  }
  return finish("recorder_async", tr.event_count(), timer);
}

Result bench_render_json(const obs::TraceRecorder& tr) {
  Timer timer;
  const std::string text = tr.to_json();
  Result r = finish("render_json", text.size(), timer);
  r.name = "render_json";  // events = bytes rendered
  return r;
}

Result bench_histogram(std::uint64_t events) {
  obs::Histogram h;
  Timer timer;
  for (std::uint64_t i = 0; i < events; ++i)
    h.observe(static_cast<double>(i % 1000) * 1e-5 + 1e-6);
  // Percentile queries ride along: they are what the stats snapshot pays.
  volatile double sink = h.percentile(0.99);
  (void)sink;
  return finish("histogram", h.count(), timer);
}

Result bench_prometheus(std::uint64_t renders) {
  std::uint64_t bytes = 0;
  Timer timer;
  for (std::uint64_t i = 0; i < renders; ++i) {
    // Build + render per iteration: the METRICS verb snapshots a fresh
    // registry per request, so the build cost is part of the answer.
    obs::Registry reg;
    reg.counter("serve", "requests", "requests accepted").set(i);
    reg.counter("serve", "errors", "failed requests").set(std::uint64_t{3});
    reg.counter("cache", "hits", "memo cache hits").set(i / 2);
    reg.counter("cache", "misses", "memo cache misses").set(i / 3);
    reg.gauge("cache", "bytes", "cached answer bytes").set(std::uint64_t{1} << 20);
    reg.gauge("load", "in_flight", "live requests").set(2);
    reg.rename_prom("serve_in_flight");
    obs::Histogram& h =
        reg.histogram("serve", "latency_hit_seconds", "hit latency");
    for (int j = 0; j < 64; ++j) h.observe(static_cast<double>(j) * 1e-4);
    bytes += reg.render_prometheus("pdc_").size();
  }
  Result r = finish("prometheus", renders, timer);
  r.name = "prometheus";
  (void)bytes;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_obs.json";
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--baseline=", 11) == 0)
      baseline_path = argv[i] + 11;
    else
      out_path = argv[i];
  }

  const bool quick = env_flag("PDC_QUICK");
  const std::uint64_t events = quick ? 100'000 : 4'000'000;
  const std::uint64_t renders = quick ? 500 : 20'000;

  std::vector<Result> results;
  results.push_back(bench_dispatch("dispatch_off", events, nullptr));
  obs::TraceRecorder dispatch_rec;
  results.push_back(bench_dispatch("dispatch_traced", events, &dispatch_rec));
  obs::TraceRecorder span_rec;
  results.push_back(bench_recorder_spans(events, span_rec));
  results.push_back(bench_recorder_async(events));
  results.push_back(bench_render_json(span_rec));
  results.push_back(bench_histogram(events));
  results.push_back(bench_prometheus(renders));

  // The acceptance gate: dispatch_off vs the closure_light rate in a
  // previously emitted BENCH_engine.json (same workload, pre-obs kernel).
  double baseline_light = 0;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    const JsonValue baseline = parse_json(buf.str());
    if (baseline.has("workloads"))
      for (const JsonValue& w : baseline.at("workloads").as_array())
        if (w.at("name").as_string() == "closure_light")
          baseline_light = w.at("events_per_sec").as_double();
  }

  JsonWriter w;
  w.begin_object();
  w.kv("bench", "obs_tracing_cost");
  w.kv("quick", quick);
  w.kv("events_per_workload", events);
  w.key("workloads").begin_array();
  for (const Result& r : results) {
    w.begin_object();
    w.kv("name", r.name);
    w.kv("events", r.events);
    w.kv("wall_seconds", r.wall_seconds);
    w.kv("events_per_sec", r.events_per_sec);
    if (r.name == "dispatch_off" && baseline_light > 0) {
      const double overhead = baseline_light / r.events_per_sec - 1.0;
      w.kv("baseline_events_per_sec", baseline_light);
      w.kv("off_overhead_pct", overhead * 100.0);
    }
    w.end_object();
    std::printf("%-16s %10llu events  %8.3f s  %12.0f ev/s",
                r.name.c_str(), static_cast<unsigned long long>(r.events),
                r.wall_seconds, r.events_per_sec);
    if (r.name == "dispatch_off" && baseline_light > 0)
      std::printf("  %+.2f%% vs engine baseline",
                  (baseline_light / r.events_per_sec - 1.0) * 100.0);
    std::printf("\n");
    std::fflush(stdout);
  }
  w.end_array();
  w.end_object();

  std::FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fputs(w.str().c_str(), f);
  std::fputs("\n", f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
