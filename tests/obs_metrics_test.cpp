// obs::Registry and obs::Histogram: registration-order JSON rendering (the
// property the RunRecord phase blocks lean on), Prometheus text exposition,
// and the percentile behaviour that replaced the serve layer's latency rings.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "support/json.hpp"

namespace pdc::obs {
namespace {

TEST(ObsHistogram, EmptyIsAllZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.percentile(0.5), 0.0);
  EXPECT_EQ(h.percentile(0.99), 0.0);
}

TEST(ObsHistogram, TracksCountSumMinMax) {
  Histogram h;
  h.observe(0.001);
  h.observe(0.004);
  h.observe(0.010);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.015);
  EXPECT_DOUBLE_EQ(h.mean(), 0.005);
  EXPECT_DOUBLE_EQ(h.min(), 0.001);
  EXPECT_DOUBLE_EQ(h.max(), 0.010);
}

TEST(ObsHistogram, PercentilesAreOrderedAndClamped) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i) * 1e-4);
  const double p50 = h.percentile(0.50);
  const double p95 = h.percentile(0.95);
  const double p99 = h.percentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Clamped to the observed range whatever the bucket interpolation does.
  EXPECT_GE(p50, h.min());
  EXPECT_LE(p99, h.max());
  // Log-spaced buckets are coarse; half the mass sits below ~0.05s, so p50
  // must land in the right decade.
  EXPECT_GT(p50, 0.01);
  EXPECT_LT(p50, 0.1);
}

TEST(ObsHistogram, SingleObservationPinsAllPercentiles) {
  Histogram h;
  h.observe(0.25);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.25);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 0.25);
}

TEST(ObsHistogram, CustomBoundsCountOverflow) {
  Histogram h({1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(5.0);  // overflow bucket
  ASSERT_EQ(h.bucket_counts().size(), 3u);
  EXPECT_EQ(h.bucket_counts()[0], 1u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
}

TEST(ObsRegistry, JsonFieldsFollowRegistrationOrder) {
  Registry reg;
  reg.counter("g", "zulu").set(std::uint64_t{1});
  reg.counter("g", "alpha").set(std::uint64_t{2});
  reg.gauge("g", "mike").set(3);
  reg.counter("other", "noise").set(std::uint64_t{9});
  JsonWriter w;
  w.begin_object();
  reg.json_fields(w, "g");
  w.end_object();
  const std::string s = w.str();
  // Registration order, not alphabetical — and only the requested group.
  const std::size_t z = s.find("\"zulu\"");
  const std::size_t a = s.find("\"alpha\"");
  const std::size_t m = s.find("\"mike\"");
  ASSERT_NE(z, std::string::npos);
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(m, std::string::npos);
  EXPECT_LT(z, a);
  EXPECT_LT(a, m);
  EXPECT_EQ(s.find("noise"), std::string::npos);
  const JsonValue doc = parse_json(s);
  EXPECT_EQ(doc.at("zulu").as_double(), 1.0);
  EXPECT_EQ(doc.at("alpha").as_double(), 2.0);
  EXPECT_EQ(doc.at("mike").as_double(), 3.0);
}

TEST(ObsRegistry, LookupOrCreateReturnsTheSameSeries) {
  Registry reg;
  reg.counter("g", "hits").inc();
  reg.counter("g", "hits").inc(2);
  EXPECT_EQ(reg.counter("g", "hits").value(), 3u);
  ASSERT_EQ(reg.metrics().size(), 1u);
}

TEST(ObsRegistry, FloatingCountersRenderShortest) {
  Registry reg;
  reg.counter("g", "bytes").set(1.25e9);
  JsonWriter w;
  w.begin_object();
  reg.json_fields(w, "g");
  w.end_object();
  // Doubles go through format_shortest, matching the historical kv(double)
  // rendering the golden RunRecords were written with.
  EXPECT_NE(w.str().find("\"bytes\": 1.25e+09"), std::string::npos) << w.str();
}

TEST(ObsRegistry, PrometheusExposition) {
  Registry reg;
  reg.counter("cache", "hits", "memo cache hits").set(std::uint64_t{41});
  reg.gauge("cache", "bytes", "resident bytes").set(std::uint64_t{1024});
  reg.gauge("load", "in_flight", "live requests").set(2);
  reg.rename_prom("serve_in_flight");
  Histogram& h = reg.histogram("serve", "latency_seconds", "request latency",
                               {}, {0.1, 1.0});
  h.observe(0.05);
  h.observe(0.5);
  h.observe(5.0);
  const std::string text = reg.render_prometheus("pdc_");

  // Counters gain _total; gauges do not; rename_prom overrides group_name.
  EXPECT_NE(text.find("# TYPE pdc_cache_hits_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("# HELP pdc_cache_hits_total memo cache hits\n"),
            std::string::npos);
  EXPECT_NE(text.find("pdc_cache_hits_total 41\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pdc_cache_bytes gauge\n"), std::string::npos);
  EXPECT_NE(text.find("pdc_cache_bytes 1024\n"), std::string::npos);
  EXPECT_NE(text.find("pdc_serve_in_flight 2\n"), std::string::npos);

  // Histograms render cumulative buckets with the +Inf terminator.
  EXPECT_NE(text.find("# TYPE pdc_serve_latency_seconds histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("pdc_serve_latency_seconds_bucket{le=\"0.1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("pdc_serve_latency_seconds_bucket{le=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("pdc_serve_latency_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("pdc_serve_latency_seconds_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("pdc_serve_latency_seconds_sum "), std::string::npos);

  // Exposition format basics: every non-comment line is "name[{labels}] value".
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0)
          << line;
      continue;
    }
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_GT(space, 0u) << line;
    // The value parses as a number.
    const std::string value = line.substr(space + 1);
    EXPECT_FALSE(value.empty()) << line;
    char* parsed_end = nullptr;
    std::strtod(value.c_str(), &parsed_end);
    EXPECT_EQ(*parsed_end, '\0') << line;
  }
}

TEST(ObsRegistry, CounterNamedTotalIsNotDoubleSuffixed) {
  Registry reg;
  reg.counter("x", "events_total").set(std::uint64_t{5});
  const std::string text = reg.render_prometheus("");
  EXPECT_NE(text.find("x_events_total 5\n"), std::string::npos);
  EXPECT_EQ(text.find("x_events_total_total"), std::string::npos);
}

TEST(ObsRegistry, LabelsRender) {
  Registry reg;
  reg.counter("rpc", "calls", "calls by verb", {{"verb", "RESERVE"}})
      .set(std::uint64_t{7});
  reg.counter("rpc", "calls", "calls by verb", {{"verb", "JOIN"}})
      .set(std::uint64_t{3});
  const std::string text = reg.render_prometheus("");
  EXPECT_NE(text.find("rpc_calls_total{verb=\"RESERVE\"} 7\n"), std::string::npos);
  EXPECT_NE(text.find("rpc_calls_total{verb=\"JOIN\"} 3\n"), std::string::npos);
  // One family, one HELP/TYPE pair.
  const std::size_t first = text.find("# TYPE rpc_calls_total counter");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# TYPE rpc_calls_total counter", first + 1),
            std::string::npos);
}

}  // namespace
}  // namespace pdc::obs
