#include "minic/ast.hpp"

namespace pdc::minic {

std::string type_name(Type t) {
  switch (t) {
    case Type::Void: return "void";
    case Type::Int: return "int";
    case Type::Double: return "double";
    case Type::IntArray: return "int[]";
    case Type::DoubleArray: return "double[]";
  }
  return "?";
}

ExprPtr Expr::make_int(long long v, int line) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::IntLit;
  e->int_lit = v;
  e->line = line;
  return e;
}

ExprPtr Expr::make_float(double v, int line) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::FloatLit;
  e->float_lit = v;
  e->line = line;
  return e;
}

ExprPtr Expr::make_var(std::string name, int line) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::Var;
  e->name = std::move(name);
  e->line = line;
  return e;
}

ExprPtr Expr::make_binary(BinOp op, ExprPtr lhs, ExprPtr rhs, int line) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::Binary;
  e->bin = op;
  e->kids.push_back(std::move(lhs));
  e->kids.push_back(std::move(rhs));
  e->line = line;
  return e;
}

ExprPtr Expr::make_unary(UnOp op, ExprPtr operand, int line) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::Unary;
  e->un = op;
  e->kids.push_back(std::move(operand));
  e->line = line;
  return e;
}

ExprPtr Expr::make_call(std::string name, std::vector<ExprPtr> args, int line) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::Call;
  e->name = std::move(name);
  e->kids = std::move(args);
  e->line = line;
  return e;
}

ExprPtr Expr::make_index(std::string base, ExprPtr index, int line) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::Index;
  e->name = std::move(base);
  e->kids.push_back(std::move(index));
  e->line = line;
  return e;
}

ExprPtr Expr::clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->int_lit = int_lit;
  e->float_lit = float_lit;
  e->name = name;
  e->bin = bin;
  e->un = un;
  e->type = type;
  e->line = line;
  for (const auto& k : kids) e->kids.push_back(k->clone());
  return e;
}

StmtPtr Stmt::make(Kind kind, int line) {
  auto s = std::make_unique<Stmt>();
  s->kind = kind;
  s->line = line;
  return s;
}

StmtPtr Stmt::clone() const {
  auto s = std::make_unique<Stmt>();
  s->kind = kind;
  s->line = line;
  s->decl_type = decl_type;
  s->name = name;
  if (array_size) s->array_size = array_size->clone();
  if (init) s->init = init->clone();
  if (lvalue) s->lvalue = lvalue->clone();
  if (value) s->value = value->clone();
  if (cond) s->cond = cond->clone();
  if (for_init) s->for_init = for_init->clone();
  if (for_step) s->for_step = for_step->clone();
  for (const auto& b : body) s->body.push_back(b->clone());
  for (const auto& b : else_body) s->else_body.push_back(b->clone());
  return s;
}

Function Function::clone() const {
  Function f;
  f.ret = ret;
  f.name = name;
  f.params = params;
  f.line = line;
  for (const auto& s : body) f.body.push_back(s->clone());
  return f;
}

Program Program::clone() const {
  Program p;
  for (const auto& f : functions) p.functions.push_back(f.clone());
  return p;
}

Function* Program::find(const std::string& name) {
  for (auto& f : functions)
    if (f.name == name) return &f;
  return nullptr;
}

const Function* Program::find(const std::string& name) const {
  for (const auto& f : functions)
    if (f.name == name) return &f;
  return nullptr;
}

}  // namespace pdc::minic
