// Bridges from the subsystem stats structs into an obs::Registry. The
// structs stay plain counters on the hot paths; a publish_* call snapshots
// one into registry series after the fact. Field registration order here IS
// the JSON field order of the RunRecord / ServeStats blocks rendered via
// Registry::json_fields — reorder only with the golden files.
#pragma once

namespace pdc::net {
struct FlowNetStats;
struct RouteStats;
}  // namespace pdc::net
namespace pdc::sim {
struct EngineStats;
}
namespace pdc::serve {
struct CacheStats;
}
namespace pdc::scenario {
struct MemoStats;
struct ChurnPhaseRecord;
}  // namespace pdc::scenario

namespace pdc::obs {

class Registry;

/// Group "flownet": flow/reshare counters of one simulated phase.
void publish_flownet(Registry& reg, const net::FlowNetStats& s);

/// Group "routes": the platform's route-cache counters.
void publish_routes(Registry& reg, const net::RouteStats& s);

/// Group "engine": event-kernel dispatch counters.
void publish_engine(Registry& reg, const sim::EngineStats& s);

/// Group "churn": injector counters plus the phase's recovery totals.
void publish_churn(Registry& reg, const scenario::ChurnPhaseRecord& c);

/// Group "memos": the process-wide dPerf memo footprint.
void publish_memos(Registry& reg, const scenario::MemoStats& s);

/// Group "cache": the serve layer's RunRecord memo cache.
void publish_cache(Registry& reg, const serve::CacheStats& s);

}  // namespace pdc::obs
