// P2PSAP: the self-adaptive communication protocol of P2PDC (paper §I, §III).
//
// P2PSAP "chooses dynamically the appropriate communication mode between any
// peers according to decisions taken at application level, like schemes of
// computation (synchronous or asynchronous iterative schemes), and elements
// of context like network topology at transport level."
//
// This module models that choice: a Channel between two hosts is configured
// by `adapt(scheme, link_class)`:
//   * synchronous schemes get a reliable, ordered, acknowledged transport
//     (TCP-like), whose ack cost depends on the link class;
//   * asynchronous schemes get an unordered, unacknowledged transport with
//     *latest-value* delivery semantics (stale boundary data is overwritten,
//     never queued), which is what asynchronous iterative algorithms want.
//
// Link classes are derived from the IP-based proximity metric, consistent
// with P2PDC's use of purely local information.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/flow.hpp"
#include "net/platform.hpp"
#include "sim/mailbox.hpp"
#include "sim/task.hpp"
#include "support/ipv4.hpp"

namespace pdc::p2psap {

/// Application-level computation scheme (paper §I).
enum class Scheme { Synchronous, Asynchronous };

/// Transport-level context classes derived from IP proximity.
enum class LinkClass { Loopback, IntraZone, Lan, Wan };

/// The concrete protocol configuration picked by the adaptation policy.
struct ChannelConfig {
  bool reliable = true;       // sender waits for a transport-level ack
  bool latest_value = false;  // receiver keeps only the newest message per (src, tag)
  double header_bytes = 64;   // per-message framing overhead
  double ack_bytes = 64;      // ack frame size when reliable
  std::string profile;        // human-readable name of the selected micro-protocol
};

/// The self-adaptation policy (the heart of P2PSAP).
ChannelConfig adapt(Scheme scheme, LinkClass link_class);

/// Classifies the transport context between two peers from their IPs:
/// same address -> Loopback, shared /24 -> IntraZone, shared /16 -> Lan,
/// otherwise Wan.
LinkClass classify(Ipv4 a, Ipv4 b);

/// A message as seen by the application: a tag plus a payload size; the
/// value vector is optional (timing-only runs ship no numeric data).
struct Message {
  net::NodeIdx src_host = -1;
  int tag = 0;
  double payload_bytes = 0;
  std::shared_ptr<const std::vector<double>> values;  // may be null
  Time sent_at = 0;
};

struct ChannelStats {
  std::uint64_t messages_sent = 0;
  double payload_bytes_sent = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t stale_dropped = 0;  // latest-value overwrites
};

class Fabric;

/// A bidirectional channel between two hosts with one negotiated config.
class Channel {
 public:
  Channel(Fabric& fabric, net::NodeIdx host_a, net::NodeIdx host_b, ChannelConfig config);

  /// Sends `bytes` of payload from `from_host` to the opposite end. With a
  /// reliable config, resumes after the transport ack returns; otherwise
  /// resumes immediately after injection (fire-and-forget).
  sim::Task<void> send(net::NodeIdx from_host, int tag, double bytes,
                       std::shared_ptr<const std::vector<double>> values = nullptr);

  /// Receives the next message addressed to `at_host` with tag `tag`.
  sim::Task<Message> recv(net::NodeIdx at_host, int tag);

  /// Receive with timeout: nullopt when nothing arrives within `timeout`.
  sim::Task<std::optional<Message>> recv_for(net::NodeIdx at_host, int tag, Time timeout);

  /// Non-suspending receive.
  std::optional<Message> try_recv(net::NodeIdx at_host, int tag);

  const ChannelConfig& config() const { return config_; }
  const ChannelStats& stats() const { return stats_; }
  net::NodeIdx peer_of(net::NodeIdx host) const { return host == a_ ? b_ : a_; }

 private:
  using Box = sim::Mailbox<Message>;
  Box& box_for(net::NodeIdx dst, int tag);

  Fabric* fabric_;
  net::NodeIdx a_, b_;
  ChannelConfig config_;
  ChannelStats stats_;
  // Keyed by (destination host, tag); both directions live here.
  std::map<std::pair<net::NodeIdx, int>, std::unique_ptr<Box>> boxes_;
};

/// Creates and caches channels; the factory applies the adaptation policy
/// using the scheme requested by the application and the IP-derived link
/// class, mirroring P2PSAP's session negotiation.
class Fabric {
 public:
  Fabric(sim::Engine& engine, net::FlowNet& flownet, const net::Platform& platform)
      : engine_(&engine), net_(&flownet), platform_(&platform) {}
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Returns the channel between two hosts for the given scheme, creating
  /// it on first use. Channels are cached per (host pair, scheme).
  Channel& channel(net::NodeIdx a, net::NodeIdx b, Scheme scheme);

  sim::Engine& engine() { return *engine_; }
  net::FlowNet& flownet() { return *net_; }
  const net::Platform& platform() const { return *platform_; }

 private:
  struct Key {
    net::NodeIdx lo, hi;
    Scheme scheme;
    auto operator<=>(const Key&) const = default;
  };
  sim::Engine* engine_;
  net::FlowNet* net_;
  const net::Platform* platform_;
  std::map<Key, std::unique_ptr<Channel>> channels_;
};

}  // namespace pdc::p2psap
