#include "obstacle/distributed.hpp"

#include <algorithm>
#include <cmath>

#include "obstacle/minic_kernel.hpp"

namespace pdc::obstacle {

namespace {
constexpr int kTagToPrev = 1;  // matches the MiniC kernel's tags
constexpr int kTagToNext = 2;
}  // namespace

Strip strip_of(int n, int rank, int nprocs) {
  const int interior = n - 2;
  const int base = interior / nprocs;
  const int extra = interior % nprocs;
  Strip s;
  s.rows = base + (rank < extra ? 1 : 0);
  s.first_row = (rank < extra ? rank * (base + 1) : rank * base + extra) + 1;
  return s;
}

CostProfile derive_cost_profile(ir::OptLevel level, const ObstacleProblem& bench_problem,
                                int bench_iters, int bench_rcheck) {
  dperf::DperfOptions opt;
  opt.level = level;
  const dperf::Dperf pipeline{minic_kernel_source(), opt};
  const dperf::Workload workload =
      kernel_workload(bench_problem, bench_iters, bench_rcheck);
  const dperf::BlockTimings timings = pipeline.benchmark(workload);

  CostProfile profile;
  profile.ref_hz = opt.ref_host_hz;
  const double init_points = static_cast<double>(bench_problem.n) * bench_problem.n;
  const double iter_points =
      static_cast<double>(bench_problem.n - 2) * (bench_problem.n - 2);
  profile.init_ns_per_point = timings.once_ns() / init_points;
  profile.iter_ns_per_point = timings.per_iteration_ns() / iter_points;
  return profile;
}

p2pdc::TaskSpec make_task_spec(const DistributedConfig& cfg, int peers) {
  p2pdc::TaskSpec spec;
  spec.name = "obstacle";
  spec.peers_needed = peers;
  spec.scheme = cfg.scheme;
  spec.allocation = cfg.allocation;
  spec.cmax = cfg.cmax;
  const Strip widest = strip_of(cfg.problem.n, 0, peers);
  // Subtask: initial strip of u plus the obstacle strip; result: the strip.
  spec.subtask_bytes = 2.0 * (widest.rows + 2) * cfg.problem.n * 8;
  spec.result_bytes = static_cast<double>(widest.rows) * cfg.problem.n * 8;
  return spec;
}

p2pdc::PeerMain make_peer_main(DistributedConfig cfg) {
  return [cfg](p2pdc::PeerContext& ctx) -> sim::Task<void> {
    const ObstacleProblem& p = cfg.problem;
    const int n = p.n;
    const int me = ctx.rank();
    const int np = ctx.nprocs();
    const Strip strip = strip_of(n, me, np);
    const int rows = strip.rows;
    const double time_scale = cfg.cost.ref_hz / ctx.host_speed_hz();
    const bool real = cfg.mode == ValueMode::Real;
    const bool sync = cfg.scheme == p2psap::Scheme::Synchronous;
    const double row_bytes = static_cast<double>(n) * 8;

    // Local strips with halo rows (allocated in Real mode only).
    std::vector<double> u, unew, lower;
    if (real) {
      const auto size = static_cast<std::size_t>((rows + 2) * n);
      u.assign(size, 0.0);
      unew.assign(size, 0.0);
      lower.assign(size, 0.0);
      for (int i = 0; i < rows + 2; ++i) {
        const int gi = strip.first_row - 1 + i;
        for (int j = 0; j < n; ++j) {
          const double psi = p.psi_at(gi, j);
          lower[static_cast<std::size_t>(i * n + j)] = psi;
          double s = std::max(psi, 0.0);
          if (gi == 0 || gi == n - 1 || j == 0 || j == n - 1) s = 0.0;
          u[static_cast<std::size_t>(i * n + j)] = s;
          unew[static_cast<std::size_t>(i * n + j)] = s;
        }
      }
    }

    const Time t_start = ctx.now();
    // One-off setup cost (initialization block of the kernel).
    co_await ctx.compute(cfg.cost.init_ns_per_point * (rows + 2) * n * 1e-9 * time_scale);

    auto row_values = [&](int local_row) {
      auto v = std::make_shared<std::vector<double>>();
      if (real)
        v->assign(u.begin() + static_cast<std::ptrdiff_t>(local_row * n),
                  u.begin() + static_cast<std::ptrdiff_t>((local_row + 1) * n));
      return v;
    };
    auto absorb_row = [&](const p2psap::Message& m, int local_row) {
      if (real && m.values && m.values->size() == static_cast<std::size_t>(n))
        std::copy(m.values->begin(), m.values->end(),
                  u.begin() + static_cast<std::ptrdiff_t>(local_row * n));
    };

    int it = 0;
    double reduced_residual = 0;
    for (; it < cfg.iters; ++it) {
      // Halo exchange in the kernel's order: previous neighbour first.
      if (me > 0) {
        co_await ctx.send(me - 1, kTagToPrev, row_bytes, row_values(1));
        if (sync) {
          absorb_row(co_await ctx.recv(me - 1, kTagToNext), 0);
        } else if (auto m = ctx.try_recv(me - 1, kTagToNext)) {
          absorb_row(*m, 0);
        }
      }
      if (me < np - 1) {
        co_await ctx.send(me + 1, kTagToNext, row_bytes, row_values(rows));
        if (sync) {
          absorb_row(co_await ctx.recv(me + 1, kTagToPrev), rows + 1);
        } else if (auto m = ctx.try_recv(me + 1, kTagToPrev)) {
          absorb_row(*m, rows + 1);
        }
      }

      // The sweep (update + copy + local residual): modelled time, plus the
      // real arithmetic in Real mode.
      co_await ctx.compute(cfg.cost.iter_ns_per_point * rows * (n - 2) * 1e-9 * time_scale);
      double local_res = 0;
      if (real) {
        local_res = projected_sweep(p, u, unew, n, 1, rows, strip.first_row, lower);
        for (int i = 1; i <= rows; ++i)
          for (int j = 1; j < n - 1; ++j)
            u[static_cast<std::size_t>(i * n + j)] = unew[static_cast<std::size_t>(i * n + j)];
      }

      if (it % cfg.rcheck == cfg.rcheck - 1) {
        reduced_residual = co_await ctx.allreduce_max(local_res);
        if (real && cfg.early_stop && reduced_residual < cfg.tol) {
          ++it;
          break;
        }
      }
    }
    const Time t_end = ctx.now();

    std::vector<double> result{t_start, t_end, static_cast<double>(it), reduced_residual,
                               static_cast<double>(rows),
                               static_cast<double>(strip.first_row)};
    if (real) {
      result.reserve(result.size() + static_cast<std::size_t>(rows * n));
      for (int i = 1; i <= rows; ++i)
        for (int j = 0; j < n; ++j)
          result.push_back(u[static_cast<std::size_t>(i * n + j)]);
    }
    ctx.set_result(std::move(result));
  };
}

SolveReport run_distributed(p2pdc::Environment& env, net::NodeIdx submitter_host,
                            const DistributedConfig& cfg, int peers, Time warmup) {
  SolveReport report;
  report.computation = env.run_computation(submitter_host, make_task_spec(cfg, peers),
                                           make_peer_main(cfg), warmup);
  if (!report.computation.ok) {
    report.failure = report.computation.failure;
    return report;
  }
  double first_start = 1e300, last_end = 0;
  const int n = cfg.problem.n;
  if (cfg.mode == ValueMode::Real) {
    report.solution.n = n;
    report.solution.values.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                                  0.0);
  }
  for (const std::vector<double>& values : report.computation.results) {
    if (values.size() < 6) continue;
    first_start = std::min(first_start, values[0]);
    last_end = std::max(last_end, values[1]);
    report.iterations = std::max(report.iterations, static_cast<int>(values[2]));
    report.residual = std::max(report.residual, values[3]);
    const int rows = static_cast<int>(values[4]);
    const int first_row = static_cast<int>(values[5]);
    if (cfg.mode == ValueMode::Real &&
        values.size() == 6 + static_cast<std::size_t>(rows * n)) {
      for (int i = 0; i < rows; ++i)
        for (int j = 0; j < n; ++j)
          report.solution.at(first_row + i, j) = values[6 + static_cast<std::size_t>(i * n + j)];
    }
  }
  report.solve_seconds = last_end > first_start ? last_end - first_start : 0;
  report.ok = true;
  return report;
}

}  // namespace pdc::obstacle
