// Fig. 11 (paper §IV-B.4): reference time compared to dPerf predictions for
// the Grid5000 cluster, the Daisy xDSL desktop grid (Stage-2A) and the LAN
// (Stage-2B), all at optimization level 0 — two campaigns: one reference
// sweep on the cluster, one prediction sweep with a platform axis. dPerf
// traces depend only on the run spec (never on the platform) and are
// memoized in Runner::traces(), so all three platform cells of a peer
// count replay the same trace set — exactly the paper's methodology.
//
// Expected shape: the xDSL curve sits far above the others (communication
// dominates; adding peers does not pay), the LAN curve tracks the cluster
// within a modest factor.
#include <cstdio>
#include <map>
#include <string>

#include "campaign/executor.hpp"
#include "experiments/harness.hpp"
#include "support/env.hpp"
#include "support/table.hpp"

int main() {
  using namespace pdc;
  std::printf("Fig. 11 -- reference vs dPerf predictions [s], optimization level 0\n\n");

  scenario::RunSpec base = scenario::RunSpec::from_env();
  base.level = ir::OptLevel::O0;

  campaign::ExecutorOptions opts;
  opts.jobs = env_int("PDC_CAMPAIGN_JOBS", 1);
  opts.progress = true;

  // Campaign 1: the cluster reference curve.
  campaign::CampaignSpec ref;
  ref.name = "fig11-ref";
  ref.base.name = "fig11-ref";
  ref.base.platform = scenario::PlatformSpec::grid5000();
  ref.base.run = base;
  ref.base.run.mode = scenario::Mode::Reference;
  ref.peers = experiments::paper_peer_counts();
  campaign::Executor ref_executor{ref, opts};
  ref_executor.execute();

  // Campaign 2: predictions across the platform axis.
  campaign::CampaignSpec pred;
  pred.name = "fig11";
  pred.base.name = "fig11";
  pred.base.run = base;
  pred.base.run.mode = scenario::Mode::Predict;
  pred.platforms = {scenario::PlatformSpec::grid5000(), scenario::PlatformSpec::xdsl(),
                    scenario::PlatformSpec::lan()};
  pred.peers = experiments::paper_peer_counts();
  campaign::Executor pred_executor{pred, opts};
  pred_executor.execute();

  std::map<int, double> reference;
  for (const campaign::Outcome& out : ref_executor.outcomes()) {
    if (!out.ok()) {
      std::fprintf(stderr, "run %s failed: %s\n", out.run.key.c_str(), out.error.c_str());
      return 1;
    }
    reference[out.run.spec.run.peers] = out.metrics.at("reference_solve_seconds");
  }
  std::map<std::pair<std::string, int>, double> predicted;
  for (const campaign::Outcome& out : pred_executor.outcomes()) {
    if (!out.ok()) {
      std::fprintf(stderr, "run %s failed: %s\n", out.run.key.c_str(), out.error.c_str());
      return 1;
    }
    predicted[{out.run.spec.platform.label, out.run.spec.run.peers}] =
        out.metrics.at("predicted_solve_seconds");
  }

  TextTable table({"Peers", "reference", "dPerf Grid5000", "dPerf xDSL", "dPerf LAN"});
  for (int peers : experiments::paper_peer_counts()) {
    // Paper column order: Grid5000, xDSL, LAN.
    table.add_row({std::to_string(peers), TextTable::num(reference.at(peers), 2),
                   TextTable::num(predicted.at({"grid5000", peers}), 2),
                   TextTable::num(predicted.at({"xdsl", peers}), 2),
                   TextTable::num(predicted.at({"lan", peers}), 2)});
  }
  std::printf("\n%s\n", table.render().c_str());
  return 0;
}
