// Analytic prediction (ROADMAP item 3): predict a computation's solve/total
// time from trace summaries × the platform model with NO engine replay at
// all. The planner mirrors the P2PDC protocol (collection, grouped
// allocation, the hierarchical allreduce tree, result gathering) and the
// P2PSAP channel cost model (per-class header/ack bytes, route latencies)
// with per-rank scalar clocks, and asks `net::FlowNet::hypothetical_rates`
// for max-min fair rates of the concurrent flow sets — kremlin-style
// critical-path planning instead of discrete-event simulation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dperf/summary.hpp"
#include "net/platform.hpp"
#include "p2pdc/environment.hpp"

namespace pdc::dperf {

struct AnalyticReport {
  bool ok = false;
  std::string failure;

  /// max rank end − min rank start, the quantity `replay_on` reports.
  double solve_seconds = 0;
  /// collection + allocation + solve + gather, mirroring
  /// ComputationResult::total_time().
  double total_seconds = 0;
  double collection_seconds = 0;
  double allocation_seconds = 0;

  int peers = 0;
  int groups = 0;

  // Observability: how much work the plan took.
  std::uint64_t ops_evaluated = 0;
  std::uint64_t rate_queries = 0;
};

/// Plans the computation described by `spec` running `summaries` (one per
/// rank) on the environment's platform, placing ranks on `worker_hosts`
/// exactly as allocation would (proximity grouping over the worker peer
/// set). Pure with respect to the simulation: no engine events, no flows,
/// no overlay traffic. Fails (ok = false, human-readable `failure`) instead
/// of throwing on mismatched traces or impossible placements.
AnalyticReport plan_on(p2pdc::Environment& env, net::NodeIdx submitter_host,
                       p2pdc::TaskSpec spec, const std::vector<TraceSummary>& summaries,
                       const std::vector<net::NodeIdx>& worker_hosts);

}  // namespace pdc::dperf
