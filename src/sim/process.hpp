// Process: a top-level, fire-and-forget simulation actor coroutine.
//
// A Process is created by calling a coroutine function returning Process and
// handing it to Engine::spawn(). The engine owns the coroutine frame from
// that point on: it resumes it through events and reaps it at completion.
#pragma once

#include <coroutine>
#include <exception>
#include <string>
#include <utility>

namespace pdc::sim {

class Engine;

class Process {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct promise_type {
    Engine* engine = nullptr;
    std::string name;
    std::exception_ptr error;

    Process get_return_object() { return Process{Handle::from_promise(*this)}; }
    std::suspend_always initial_suspend() noexcept { return {}; }

    // At final suspension, hand the (suspended) frame back to the engine for
    // deferred destruction; never destroy a frame from inside its own resume.
    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      void await_suspend(Handle h) noexcept;
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept { error = std::current_exception(); }
  };

  Process(Process&& other) noexcept : h_(std::exchange(other.h_, nullptr)) {}
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  Process& operator=(Process&&) = delete;
  ~Process() {
    // A Process not given to Engine::spawn() owns its frame.
    if (h_) h_.destroy();
  }

 private:
  friend class Engine;
  explicit Process(Handle h) : h_(h) {}
  Handle release() { return std::exchange(h_, nullptr); }
  Handle h_;
};

}  // namespace pdc::sim
