// Property test for FlowNet::hypothetical_rates, the analytic planner's
// rate oracle: for random endpoint batches on random platforms (with random
// churn rescales applied), the class-aggregated what-if solver must agree
// with the rates a Mode::Reference FlowNet actually hands out when one huge
// flow per endpoint pair runs concurrently on an otherwise idle network.
// The CI ASan job runs this with a fixed iteration budget (PDC_FUZZ_ITERS).
#include "net/flow.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "net/builders.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"
#include "support/time.hpp"

namespace pdc::net {
namespace {

using namespace pdc::units;

int fuzz_iters() { return env_int("PDC_FUZZ_ITERS", 150); }

Platform random_clique(Rng& rng, int hosts) {
  Platform p;
  for (int i = 0; i < hosts; ++i)
    p.add_host("h" + std::to_string(i), 1e9,
               Ipv4{10, 2, static_cast<std::uint8_t>(i / 250),
                    static_cast<std::uint8_t>(i % 250 + 1)});
  for (int i = 0; i < hosts; ++i)
    for (int j = i + 1; j < hosts; ++j) {
      const auto l = p.add_link("l" + std::to_string(i) + "_" + std::to_string(j),
                                rng.uniform(0.5e6, 8e6), rng.uniform(0.0, 2 * ms));
      p.connect(p.host(i), p.host(j), l);
    }
  return p;
}

/// Ground truth: start one effectively-endless flow per endpoint pair on a
/// Reference-mode FlowNet, run past every route latency, and sample each
/// flow's steady-state max-min rate.
std::vector<double> observed_rates(
    const Platform& plat, const std::vector<std::pair<NodeIdx, NodeIdx>>& endpoints,
    const std::vector<std::pair<LinkIdx, double>>& rescales) {
  sim::Engine eng;
  FlowNet netw{eng, plat, FlowNet::Mode::Reference};
  for (const auto& [link, scale] : rescales) netw.set_link_scale(link, scale);
  std::vector<double> rates(endpoints.size(),
                            std::numeric_limits<double>::infinity());
  std::vector<FlowId> ids(endpoints.size(), 0);
  for (std::size_t i = 0; i < endpoints.size(); ++i)
    if (endpoints[i].first != endpoints[i].second)
      ids[i] = netw.start_flow(endpoints[i].first, endpoints[i].second, 1e18, [] {});
  // Route latencies are sub-millisecond on every generated platform, so at
  // t = 1 s all flows are mid-transfer and no 1e18-byte flow has finished.
  // Stop right after the probe: draining 1e18 bytes would push simulated
  // time past the float quantum where completion residuals stall.
  eng.schedule_at(1.0, [&] {
    for (std::size_t i = 0; i < ids.size(); ++i)
      if (ids[i] != 0) rates[i] = netw.flow_rate(ids[i]);
  });
  eng.run_until(1.5);
  return rates;
}

void expect_rates_match(const Platform& plat,
                        const std::vector<std::pair<NodeIdx, NodeIdx>>& endpoints,
                        const std::vector<std::pair<LinkIdx, double>>& rescales,
                        const std::string& label) {
  // hypothetical_rates must honor churn rescales, so mirror them onto the
  // querying net (any mode works: the query never touches live flow state).
  sim::Engine eng;
  FlowNet netw{eng, plat, FlowNet::Mode::Incremental};
  for (const auto& [link, scale] : rescales) netw.set_link_scale(link, scale);
  const std::vector<double> hypo = netw.hypothetical_rates(endpoints);
  const std::vector<double> truth = observed_rates(plat, endpoints, rescales);
  ASSERT_EQ(hypo.size(), endpoints.size()) << label;
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    if (std::isinf(truth[i])) {
      EXPECT_TRUE(std::isinf(hypo[i])) << label << ": endpoint " << i;
      continue;
    }
    EXPECT_NEAR(hypo[i], truth[i], 1e-9 * std::max(1.0, std::abs(truth[i])))
        << label << ": endpoint " << i;
  }
}

std::vector<std::pair<NodeIdx, NodeIdx>> random_endpoints(Rng& rng, const Platform& plat,
                                                          int count) {
  std::vector<std::pair<NodeIdx, NodeIdx>> eps;
  const int hosts = static_cast<int>(plat.host_count());
  for (int i = 0; i < count; ++i) {
    // Bias toward gather/scatter shapes (everything through host 0) so
    // batches actually collapse into multi-member classes; keep some
    // uniform pairs (including src == dst: infinite local delivery).
    int src = static_cast<int>(rng.uniform_int(0, hosts - 1));
    int dst = static_cast<int>(rng.uniform_int(0, hosts - 1));
    if (rng.uniform(0.0, 1.0) < 0.5) (rng.uniform(0.0, 1.0) < 0.5 ? src : dst) = 0;
    eps.emplace_back(plat.host(src), plat.host(dst));
  }
  return eps;
}

std::vector<std::pair<LinkIdx, double>> random_rescales(Rng& rng, const Platform& plat,
                                                        int count) {
  std::vector<std::pair<LinkIdx, double>> scales;
  for (int i = 0; i < count; ++i)
    scales.emplace_back(static_cast<LinkIdx>(rng.uniform_int(0, plat.link_count() - 1)),
                        rng.uniform(0.1, 1.5));
  return scales;
}

TEST(FlowHypothetical, RandomBatchesMatchReferenceOnStar) {
  const int iters = fuzz_iters();
  for (int it = 0; it < iters; ++it) {
    Rng rng{0x9100 + static_cast<std::uint64_t>(it)};
    const int hosts = 3 + static_cast<int>(rng.uniform_int(0, 13));
    const Platform plat = build_star(lan_spec(hosts));
    const auto eps = random_endpoints(rng, plat, 1 + static_cast<int>(rng.uniform_int(0, 63)));
    const auto scales = random_rescales(rng, plat, static_cast<int>(rng.uniform_int(0, 3)));
    expect_rates_match(plat, eps, scales, "star iter " + std::to_string(it));
  }
}

TEST(FlowHypothetical, RandomBatchesMatchReferenceOnClique) {
  const int iters = fuzz_iters();
  for (int it = 0; it < iters; ++it) {
    Rng rng{0x9a00 + static_cast<std::uint64_t>(it)};
    const Platform plat = random_clique(rng, 3 + static_cast<int>(rng.uniform_int(0, 7)));
    const auto eps = random_endpoints(rng, plat, 1 + static_cast<int>(rng.uniform_int(0, 47)));
    const auto scales = random_rescales(rng, plat, static_cast<int>(rng.uniform_int(0, 3)));
    expect_rates_match(plat, eps, scales, "clique iter " + std::to_string(it));
  }
}

TEST(FlowHypothetical, FullPopulationGatherCollapsesAndMatches) {
  // The class-compression payoff case: a 2000-endpoint gather through one
  // shared backbone. The reference replay is O(N^2)-ish but still cheap at
  // this size; the hypothetical query must match it while solving over a
  // handful of classes.
  const Platform plat = build_star(bordeplage_cluster_spec(64));
  std::vector<std::pair<NodeIdx, NodeIdx>> eps;
  for (int i = 0; i < 2000; ++i) eps.emplace_back(plat.host(1 + i % 63), plat.host(0));
  expect_rates_match(plat, eps, {}, "gather 2000");
}

}  // namespace
}  // namespace pdc::net
