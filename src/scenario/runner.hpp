// Executes declarative ScenarioSpecs: owns deployment (engine + platform +
// booted p2pdc::Environment), drives the reference execution and/or the
// dPerf prediction the spec asks for, and returns a structured RunRecord
// that serializes to JSON through the shared support writer.
//
// This subsumes the old experiments::Deployment/free-function API: the
// experiments harness is now a thin compatibility shim over this Runner,
// and every bench/example drives scenarios instead of hand-rolled drivers.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "churn/spec.hpp"
#include "dperf/dperf.hpp"
#include "obstacle/distributed.hpp"
#include "p2pdc/environment.hpp"
#include "scenario/spec.hpp"

namespace pdc::scenario {

/// A deployed simulation: engine + platform + booted P2PDC overlay. One
/// deployment drives one simulated computation (simulation state is
/// single-use); the Runner creates a fresh one per phase.
struct Deployment {
  sim::Engine engine;
  net::Platform platform;
  std::unique_ptr<p2pdc::Environment> env;
  net::NodeIdx submitter = -1;
  std::vector<net::NodeIdx> workers;
  /// Churn provisioning (empty without a churn spec): trackers the injector
  /// may crash — the deployment's primary tracker(s) first, then the extra
  /// failover trackers booted so orphaned peers keep a zone to re-join —
  /// unbooted hosts that absorb join events, and the expanded event stream
  /// shared by every phase of this scenario.
  std::vector<net::NodeIdx> crashable_trackers;
  std::vector<net::NodeIdx> spare_hosts;
  std::vector<churn::ChurnEvent> churn_timeline;

  Deployment() = default;
  Deployment(const Deployment&) = delete;
};

/// Builds the platform a spec describes, auto-sizing generators whose host
/// count is 0 so `run.peers` workers plus server/tracker/submitter (plus
/// `extra_hosts` churn provisioning) fit. Platform-file specs read their
/// file here; throws on parse errors.
net::Platform build_platform(const PlatformSpec& spec, const RunSpec& run,
                             int extra_hosts = 0);

/// Builds the platform and boots server + tracker(s) + submitter + workers.
/// Placement is platform-aware: Daisy spreads workers across the desktop
/// grid (seed-deterministic), the federation round-robins workers over
/// sites, everything else fills hosts in order. Throws std::runtime_error
/// when the platform is too small for the run.
std::unique_ptr<Deployment> deploy(const PlatformSpec& spec, const RunSpec& run);

/// dPerf block-benchmark cost profile for a level (memoized per process,
/// keyed on level + bench sizing).
const obstacle::CostProfile& cost_profile(ir::OptLevel level, const RunSpec& run);

/// Footprint of the process-wide dPerf memos (cost profiles and trace sets)
/// that stay hot across runs — what a resident server keeps warm so repeated
/// what-if queries skip re-benchmarking. Byte counts are estimates of the
/// dominant storage (trace event vectors, profile structs), not allocator
/// truth.
struct MemoStats {
  std::size_t cost_profiles = 0;
  std::size_t cost_profile_bytes = 0;
  std::size_t trace_sets = 0;
  std::size_t trace_bytes = 0;
};
MemoStats memo_stats();

/// Churn observability for one phase: what the injector applied, how many
/// submissions the computation needed, and the overlay failovers observed.
struct ChurnPhaseRecord {
  churn::ChurnStats stats;
  int attempts = 1;      // submissions (1 = completed without re-allocation)
  int reallocations() const { return attempts - 1; }
  int rejoins = 0;       // sum of PeerActor::rejoin_count over the deployment
};

/// One executed phase (reference or predicted).
struct PhaseRecord {
  double solve_seconds = 0;  // first rank start -> last rank end
  double total_seconds = 0;  // including collection / allocation / gathering
  int iterations = 0;        // reference only
  int platform_hosts = 0;    // hosts modelled in this phase's deployment
  p2pdc::ComputationResult computation;
  net::FlowNetStats net;
  /// Route-resolution counters for this phase's platform (routes computed
  /// vs. served from the bounded cache, evictions, resident entries) —
  /// the hierarchical-routing observability next to the FlowNet stats.
  net::RouteStats routes;
  /// Event-kernel counters for this phase's engine (events dispatched,
  /// inline-vs-heap closures, resumes, slot arms, peak queue depth) —
  /// the simulator-cost observability next to the FlowNet stats.
  sim::EngineStats engine;
  /// Present when the spec enables churn.
  std::optional<ChurnPhaseRecord> churn;
};

/// The structured result of one scenario run.
struct RunRecord {
  ScenarioSpec spec;
  std::string platform_kind;
  std::string platform_label;
  int platform_hosts = 0;
  std::optional<PhaseRecord> reference;
  std::optional<PhaseRecord> predicted;
  /// Critical-path plan with no engine replay (mode analytic / both-analytic).
  std::optional<PhaseRecord> analytic;
  /// |predicted - reference| / reference solve seconds; set when both ran.
  std::optional<double> prediction_error;
  /// |analytic - predicted| / predicted solve seconds; set when both-analytic
  /// runs both the replay and the plan (what `both` does for prediction).
  std::optional<double> analytic_error;
  /// Empty on success; the failure message when the run could not complete
  /// (platform file parse error, platform too small, solve failure, ...).
  /// Failed records keep the spec identification fields so a campaign can
  /// report which grid point failed.
  std::string error;

  bool ok() const { return error.empty(); }

  /// Serializes through support::JsonWriter; parses back with
  /// support::parse_json.
  std::string to_json() const;
};

/// Executes ScenarioSpecs. Stateless apart from the spec: each phase
/// deploys fresh, so a Runner can be re-run and phases can be driven
/// individually (the benches reuse traces across platforms this way).
class Runner {
 public:
  explicit Runner(ScenarioSpec spec) : spec_(std::move(spec)) {}

  const ScenarioSpec& spec() const { return spec_; }

  /// Fresh deployment for this scenario.
  std::unique_ptr<Deployment> deploy() const;

  /// Per-rank dPerf traces (sampled + scaled up) for the spec's workload.
  /// Platform-independent and memoized per process (mutex-guarded, like
  /// cost_profile), so replaying one workload across many platforms runs
  /// the dPerf pipeline once.
  std::vector<dperf::Trace> traces() const;

  /// Reference execution (Phantom values: full event schedule, no numerics).
  PhaseRecord run_reference() const;

  /// Trace replay on this scenario's platform.
  PhaseRecord run_predicted(std::vector<dperf::Trace> traces) const;

  /// Analytic plan on this scenario's platform: summaries x cost model, no
  /// engine replay (dperf::plan_on). Throws on planner failure.
  PhaseRecord run_analytic(const std::vector<dperf::Trace>& traces) const;

  /// Executes the phases `spec().run.mode` asks for and assembles the record.
  /// Throws on failure (bad platform file, platform too small, ...).
  RunRecord run() const;

  /// Like run(), but never throws out of the call: any failure — including
  /// std::bad_alloc and std::system_error, whose text is captured together
  /// with the failing phase name ("[reference] ...") — comes back as a
  /// record with the `error` field set (and the spec identification intact)
  /// so one bad grid point cannot kill a campaign worker.
  RunRecord try_run() const noexcept;

 private:
  /// The shared phase sequence behind run()/try_run(); updates `phase` as it
  /// goes so a catcher can name the phase that threw.
  RunRecord run_phases(const char*& phase) const;

  ScenarioSpec spec_;
};

}  // namespace pdc::scenario
