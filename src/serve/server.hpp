// Prediction-as-a-service: the resident server behind the pdc_serve daemon.
//
// A Server listens on a Unix-domain socket and/or loopback TCP and watches a
// spool directory, accepting `.scn` scenario and `.cmp` campaign requests
// (serve/protocol.hpp). It stays alive across requests, which is the whole
// point: the dPerf cost-profile and trace memos (scenario::cost_profile,
// Runner::traces) stay hot in-process, and complete answers are memoized in
// an LRU byte-budgeted cache keyed on canonical spec text
// (serve/cache.hpp) — so the repeated what-if query, the dominant traffic
// shape at "millions of users" scale, is a map lookup, not a simulation.
//
// Concurrency: requests are handled on a fixed worker pool (`jobs`); each
// connection carries exactly one request and is served entirely by one
// worker. Campaign requests execute their cells sequentially inside their
// worker, every cell passing through the same scenario memo cache.
//
// Spool protocol (survives daemon restarts, shared-filesystem friendly):
// drop `<name>.scn` / `<name>.cmp` into the spool root; the daemon claims
// the file by renaming it into  <spool>/work/ (atomic — two daemons sharing
// a spool never double-claim), writes the response body to
// <spool>/out/<name>.json via temp-write+rename, and deletes the claimed
// file. Files found in work/ at startup (a previous daemon died mid-job)
// are recovered back into the spool root.
//
// Shutdown is graceful: request_stop() (wired to SIGINT/SIGTERM by the
// daemon, also triggered by a SHUTDOWN request) stops accepting and
// claiming, drains in-flight work, and writes a final ServeStats JSON to
// `stats_path`.
#pragma once

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstddef>
#include <string>

#include "scenario/spec.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "serve/stats.hpp"
#include "support/socket.hpp"

namespace pdc {
class ThreadPool;
}

namespace pdc::serve {

struct ServerOptions {
  /// Unix-domain socket path to listen on (empty = no Unix listener). A
  /// stale socket file from a previous daemon is replaced.
  std::string unix_path;
  /// Loopback TCP port to listen on; -1 = no TCP listener, 0 = ephemeral
  /// (read the chosen port back with Server::tcp_port()).
  int tcp_port = -1;
  /// Watched spool directory (empty = no spool). Created if missing.
  std::string spool_dir;
  /// Concurrent request workers.
  int jobs = 1;
  /// Memo-cache byte budget; SIZE_MAX = the PDC_SERVE_CACHE_BYTES knob.
  std::size_t cache_bytes = static_cast<std::size_t>(-1);
  /// Final ServeStats JSON written on shutdown (empty = none).
  std::string stats_path;
  /// Base run parameters for parsing specs (pass RunSpec::from_env() so
  /// PDC_QUICK applies to served requests the way it does to the CLIs).
  scenario::RunSpec base;
  /// Accept/spool poll cadence and shutdown-flag check interval.
  double poll_seconds = 0.2;
  /// Per-connection socket I/O timeout: a dead client cannot park a worker.
  double io_timeout_seconds = 30.0;
  /// Cadence of the periodic Prometheus snapshot written to
  /// <spool>/out/metrics.prom (0 = disabled; needs a spool directory). A
  /// final snapshot is always written on shutdown when enabled.
  double metrics_interval_seconds = 60.0;
  /// Optional async-signal-safe stop flag: the daemon's SIGINT/SIGTERM
  /// handler sets it, the serve loop polls it.
  const volatile std::sig_atomic_t* stop_flag = nullptr;
};

class Server {
 public:
  /// Binds listeners and prepares the spool. Throws std::invalid_argument
  /// when no request source (socket or spool) is configured, and
  /// std::system_error on bind failures.
  explicit Server(ServerOptions opts);

  /// The TCP port actually bound (for tcp_port = 0); -1 without TCP.
  int port() const;

  /// Serves until request_stop() / the stop flag; drains in-flight work,
  /// then writes the final stats JSON. Call once.
  void run();

  /// Thread-safe, async-signal-unsafe stop request (from another thread or
  /// a SHUTDOWN request). For signal handlers use ServerOptions::stop_flag.
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }

  /// Point-in-time stats snapshot (what the STATS endpoint returns).
  ServeStats stats() const;

 private:
  bool stopping() const;
  void handle_connection(Socket conn);
  Response dispatch(const Request& req);
  Response run_scenario(const std::string& text);
  Response run_campaign(const std::string& text);
  void recover_spool();
  void scan_spool(ThreadPool& pool);
  void process_spool_file(const std::string& claimed_path, const std::string& stem);
  void write_final_stats();
  void write_metrics_snapshot();

  ServerOptions opts_;
  Socket unix_listener_;
  Socket tcp_listener_;
  MemoCache cache_;
  StatsCollector collector_;
  std::atomic<bool> stop_{false};
  std::chrono::steady_clock::time_point start_;
};

}  // namespace pdc::serve
