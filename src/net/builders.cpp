#include "net/builders.hpp"

#include <string>
#include <vector>

#include "support/time.hpp"

namespace pdc::net {

using namespace pdc::units;

Platform build_star(const StarSpec& spec) {
  Platform p;
  const NodeIdx sw = p.add_router(spec.name_prefix + "-switch");
  const LinkIdx backbone = p.add_link("backbone", spec.backbone_bw_Bps, spec.backbone_latency);
  std::vector<NodeIdx> hosts;
  std::vector<LinkIdx> nics;
  for (int i = 0; i < spec.hosts; ++i) {
    const Ipv4 ip{spec.base_ip.bits() + static_cast<std::uint32_t>(i)};
    const NodeIdx h =
        p.add_host(spec.name_prefix + "-" + std::to_string(i), spec.host_speed_hz, ip);
    const LinkIdx nic =
        p.add_link("nic-" + std::to_string(i), spec.nic_bw_Bps, spec.nic_latency);
    p.connect(h, sw, nic);
    hosts.push_back(h);
    nics.push_back(nic);
  }
  // Explicit routes force every pair through the backbone: NIC_a up,
  // backbone, NIC_b down. Direction of the backbone hop groups by flow
  // orientation so the two directions of the full-duplex fabric are
  // independent capacities.
  for (int a = 0; a < spec.hosts; ++a) {
    for (int b = a + 1; b < spec.hosts; ++b) {
      std::vector<Hop> hops{Hop{nics[static_cast<std::size_t>(a)], 0},
                            Hop{backbone, 0},
                            Hop{nics[static_cast<std::size_t>(b)], 1}};
      p.set_route(hosts[static_cast<std::size_t>(a)], hosts[static_cast<std::size_t>(b)],
                  std::move(hops), /*symmetric=*/true);
    }
  }
  return p;
}

StarSpec bordeplage_cluster_spec(int hosts) {
  StarSpec s;
  s.hosts = hosts;
  s.host_speed_hz = 3e9;
  s.nic_bw_Bps = 1.0 * Gbps;
  s.nic_latency = 100 * us;
  s.backbone_bw_Bps = 10.0 * Gbps;
  s.backbone_latency = 100 * us;
  s.base_ip = Ipv4{172, 16, 0, 1};
  s.name_prefix = "bordeplage";
  return s;
}

StarSpec lan_spec(int hosts) {
  StarSpec s;
  s.hosts = hosts;
  s.host_speed_hz = 3e9;  // identical machines, different interconnect
  s.nic_bw_Bps = 100.0 * Mbps;
  // Commodity campus switches and 2011-era NIC stacks: noticeably higher
  // per-hop latency than the cluster-grade gear of Stage-1.
  s.nic_latency = 300 * us;
  s.backbone_bw_Bps = 1.0 * Gbps;
  s.backbone_latency = 300 * us;
  s.base_ip = Ipv4{192, 168, 0, 1};
  s.name_prefix = "lan";
  return s;
}

int daisy_host_count(const DaisySpec& spec) {
  return spec.central_routers * spec.routers_per_petal * spec.dslams_per_router *
             spec.nodes_per_dslam +
         spec.extra_nodes_on_one_dslam;
}

Platform build_daisy(const DaisySpec& spec, Rng& rng) {
  Platform p;
  // Central ring (l1 @ 100 Gbps).
  std::vector<NodeIdx> center;
  for (int c = 0; c < spec.central_routers; ++c)
    center.push_back(p.add_router("core-" + std::to_string(c)));
  for (int c = 0; c < spec.central_routers; ++c) {
    const int next = (c + 1) % spec.central_routers;
    const LinkIdx l1 = p.add_link("l1-" + std::to_string(c), spec.ring_bw_Bps,
                                  spec.router_latency);
    p.connect(center[static_cast<std::size_t>(c)], center[static_cast<std::size_t>(next)], l1);
  }
  int host_counter = 0;
  for (int petal = 0; petal < spec.central_routers; ++petal) {
    // Petal loop: core -> r0 -> r1 -> ... -> r9 -> core (l2 @ 10 Gbps).
    std::vector<NodeIdx> petal_routers;
    for (int r = 0; r < spec.routers_per_petal; ++r)
      petal_routers.push_back(
          p.add_router("petal-" + std::to_string(petal) + "-r" + std::to_string(r)));
    NodeIdx prev = center[static_cast<std::size_t>(petal)];
    for (int r = 0; r < spec.routers_per_petal; ++r) {
      const LinkIdx l2 = p.add_link(
          "l2-" + std::to_string(petal) + "-" + std::to_string(r), spec.petal_bw_Bps,
          spec.router_latency);
      p.connect(prev, petal_routers[static_cast<std::size_t>(r)], l2);
      prev = petal_routers[static_cast<std::size_t>(r)];
    }
    const LinkIdx l2back = p.add_link("l2-" + std::to_string(petal) + "-back",
                                      spec.petal_bw_Bps, spec.router_latency);
    p.connect(prev, center[static_cast<std::size_t>(petal)], l2back);

    for (int r = 0; r < spec.routers_per_petal; ++r) {
      for (int d = 0; d < spec.dslams_per_router; ++d) {
        const std::string dslam_name = "dslam-" + std::to_string(petal) + "-" +
                                       std::to_string(r) + "-" + std::to_string(d);
        const NodeIdx dslam = p.add_router(dslam_name);
        const LinkIdx up = p.add_link(dslam_name + "-up", spec.dslam_up_bw_Bps,
                                      spec.router_latency);
        p.connect(dslam, petal_routers[static_cast<std::size_t>(r)], up);
        // The very first DSLAM carries the 24 extra nodes (paper Fig. 8).
        int nodes_here = spec.nodes_per_dslam;
        if (petal == 0 && r == 0 && d == 0) nodes_here += spec.extra_nodes_on_one_dslam;
        for (int n = 0; n < nodes_here; ++n) {
          // IPs encode the topology so the IP-prefix proximity metric
          // correlates with network distance: petal in the second octet,
          // router/dslam in the third.
          const Ipv4 ip{static_cast<std::uint8_t>(82),
                        static_cast<std::uint8_t>(petal + 1),
                        static_cast<std::uint8_t>(r * spec.dslams_per_router + d),
                        static_cast<std::uint8_t>(n + 1)};
          const NodeIdx host = p.add_host("xdsl-" + std::to_string(host_counter++),
                                          spec.host_speed_hz, ip);
          const double bw = rng.uniform(spec.last_mile_min_Bps, spec.last_mile_max_Bps);
          const LinkIdx l3 =
              p.add_link("l3-" + std::to_string(host_counter), bw, spec.last_mile_latency);
          p.connect(host, dslam, l3);
        }
      }
    }
  }
  return p;
}

int federation_host_count(const FederationSpec& spec) {
  return spec.clusters * spec.hosts_per_cluster;
}

Platform build_federation(const FederationSpec& spec) {
  Platform p;
  const NodeIdx core = p.add_router("fed-core");
  int host_counter = 0;
  for (int site = 0; site < spec.clusters; ++site) {
    const NodeIdx sw = p.add_router("site-" + std::to_string(site) + "-switch");
    const LinkIdx uplink = p.add_link("site-" + std::to_string(site) + "-uplink",
                                      spec.wan_bw_Bps, spec.wan_latency);
    p.connect(sw, core, uplink);
    const double speed = spec.site_speeds_hz.empty()
                             ? 3e9
                             : spec.site_speeds_hz[static_cast<std::size_t>(site) %
                                                   spec.site_speeds_hz.size()];
    for (int i = 0; i < spec.hosts_per_cluster; ++i) {
      const Ipv4 ip{10, static_cast<std::uint8_t>(100 + site % 100),
                    static_cast<std::uint8_t>(i / 250),
                    static_cast<std::uint8_t>(i % 250 + 1)};
      const NodeIdx h = p.add_host("site-" + std::to_string(site) + "-node-" +
                                       std::to_string(i),
                                   speed, ip);
      const LinkIdx nic = p.add_link("fed-nic-" + std::to_string(host_counter++),
                                     spec.nic_bw_Bps, spec.nic_latency);
      p.connect(h, sw, nic);
    }
  }
  return p;
}

Platform build_wan(const WanSpec& spec, Rng& rng) {
  Platform p;
  std::vector<NodeIdx> routers;
  for (int r = 0; r < spec.routers; ++r)
    routers.push_back(p.add_router("wan-r" + std::to_string(r)));
  // Random spanning tree: router r >= 1 attaches to a random earlier router,
  // so the core is always connected.
  for (int r = 1; r < spec.routers; ++r) {
    const int parent = static_cast<int>(rng.uniform_int(0, r - 1));
    const Time lat = rng.uniform(spec.core_lat_min, spec.core_lat_max);
    const LinkIdx l = p.add_link("wan-core-" + std::to_string(r), spec.core_bw_Bps, lat);
    p.connect(routers[static_cast<std::size_t>(r)],
              routers[static_cast<std::size_t>(parent)], l);
  }
  for (int e = 0; e < spec.extra_links && spec.routers > 2; ++e) {
    const int a = static_cast<int>(rng.uniform_int(0, spec.routers - 1));
    int b = static_cast<int>(rng.uniform_int(0, spec.routers - 1));
    if (b == a) b = (b + 1) % spec.routers;
    const Time lat = rng.uniform(spec.core_lat_min, spec.core_lat_max);
    const LinkIdx l =
        p.add_link("wan-shortcut-" + std::to_string(e), spec.core_bw_Bps, lat);
    p.connect(routers[static_cast<std::size_t>(a)], routers[static_cast<std::size_t>(b)], l);
  }
  for (int i = 0; i < spec.hosts; ++i) {
    const int at = static_cast<int>(rng.uniform_int(0, spec.routers - 1));
    const double speed = rng.uniform(spec.speed_min_hz, spec.speed_max_hz);
    const double bw = rng.uniform(spec.access_bw_min_Bps, spec.access_bw_max_Bps);
    const Ipv4 ip{10, static_cast<std::uint8_t>(200 + i / 62500),
                  static_cast<std::uint8_t>(i / 250 % 250),
                  static_cast<std::uint8_t>(i % 250 + 1)};
    const NodeIdx h = p.add_host("wan-node-" + std::to_string(i), speed, ip);
    const LinkIdx l =
        p.add_link("wan-access-" + std::to_string(i), bw, spec.access_latency);
    p.connect(h, routers[static_cast<std::size_t>(at)], l);
  }
  return p;
}

}  // namespace pdc::net
