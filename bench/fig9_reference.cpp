// Fig. 9 (paper §IV-B.1): Stage-1 reference execution time of the obstacle
// problem on the Bordeplage cluster for 2..32 peers at every GCC-equivalent
// optimization level {0, 1, 2, 3, s}, driven as one declarative campaign
// (peers x opt sweep) instead of a hand-rolled loop. PDC_CAMPAIGN_JOBS runs
// grid cells concurrently; the table is identical at any job count because
// every run is an independent deterministic simulation.
//
// Expected shape: times fall monotonically with peers; the O0 curve is
// roughly 3x the optimized ones; levels >= 1 are clustered together.
#include <cstdio>
#include <map>

#include "campaign/executor.hpp"
#include "experiments/harness.hpp"
#include "support/env.hpp"
#include "support/table.hpp"

int main() {
  using namespace pdc;
  const scenario::RunSpec base = scenario::RunSpec::from_env();
  std::printf("Fig. 9 -- Stage-1 reference execution time [s], obstacle problem %dx%d,\n"
              "%d iterations, P2PDC on the Bordeplage cluster model (1 Gbps NICs, 10 Gbps\n"
              "backbone, 3 GHz nodes)\n\n",
              base.grid_n, base.grid_n, base.iters);

  campaign::CampaignSpec camp;
  camp.name = "fig9";
  camp.base.name = "fig9";
  camp.base.platform = scenario::PlatformSpec::grid5000();
  camp.base.run = base;
  camp.base.run.mode = scenario::Mode::Reference;
  camp.peers = experiments::paper_peer_counts();
  camp.levels = ir::all_opt_levels();

  campaign::ExecutorOptions opts;
  opts.jobs = env_int("PDC_CAMPAIGN_JOBS", 1);
  opts.progress = true;
  campaign::Executor executor{camp, opts};
  executor.execute();

  std::map<std::pair<int, int>, double> solve;
  for (const campaign::Outcome& out : executor.outcomes()) {
    if (!out.ok()) {
      std::fprintf(stderr, "run %s failed: %s\n", out.run.key.c_str(), out.error.c_str());
      return 1;
    }
    solve[{out.run.spec.run.peers, static_cast<int>(out.run.spec.run.level)}] =
        out.metrics.at("reference_solve_seconds");
  }

  TextTable table({"Peers", "opt 0", "opt 1", "opt 2", "opt 3", "opt s"});
  for (int peers : experiments::paper_peer_counts()) {
    std::vector<std::string> row{std::to_string(peers)};
    for (ir::OptLevel lvl : ir::all_opt_levels())
      row.push_back(TextTable::num(solve.at({peers, static_cast<int>(lvl)}), 2));
    table.add_row(std::move(row));
  }
  std::printf("\n%s\n", table.render().c_str());

  std::printf("Block-benchmark cost model (dPerf, ns per grid point):\n");
  TextTable costs({"Level", "init ns/pt", "iter ns/pt"});
  for (ir::OptLevel lvl : ir::all_opt_levels()) {
    const auto& c = scenario::cost_profile(lvl, base);
    costs.add_row({ir::opt_level_name(lvl), TextTable::num(c.init_ns_per_point, 2),
                   TextTable::num(c.iter_ns_per_point, 2)});
  }
  std::printf("%s\n", costs.render().c_str());
  return 0;
}
