#include "serve/protocol.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace pdc::serve {

namespace {

std::vector<std::string> split_words(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string w;
  while (in >> w) out.push_back(w);
  return out;
}

std::size_t parse_length(const std::string& text) {
  char* end = nullptr;
  const unsigned long long n = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0')
    throw std::runtime_error("bad length '" + text + "'");
  if (n > kMaxBody)
    throw std::runtime_error("body of " + text + " bytes exceeds the " +
                             std::to_string(kMaxBody) + "-byte cap");
  return static_cast<std::size_t>(n);
}

std::string read_body(const Socket& s, std::size_t size) {
  std::string body(size, '\0');
  if (size > 0 && !s.read_exact(body.data(), size))
    throw std::runtime_error("peer closed before the body");
  return body;
}

}  // namespace

bool read_request(const Socket& s, Request& out) {
  const std::optional<std::string> line = s.read_line();
  if (!line) return false;
  const std::vector<std::string> words = split_words(*line);
  if (words.empty()) throw std::runtime_error("empty request line");

  if (words[0] == "RUN") {
    if (words.size() != 3 || (words[1] != "scn" && words[1] != "cmp"))
      throw std::runtime_error("expected: RUN scn|cmp <nbytes>");
    out.kind =
        words[1] == "scn" ? RequestKind::RunScenario : RequestKind::RunCampaign;
    out.body = read_body(s, parse_length(words[2]));
    return true;
  }
  out.body.clear();
  if (words.size() != 1)
    throw std::runtime_error("unexpected arguments after '" + words[0] + "'");
  if (words[0] == "STATS") out.kind = RequestKind::Stats;
  else if (words[0] == "METRICS") out.kind = RequestKind::Metrics;
  else if (words[0] == "PING") out.kind = RequestKind::Ping;
  else if (words[0] == "SHUTDOWN") out.kind = RequestKind::Shutdown;
  else throw std::runtime_error("unknown request '" + words[0] + "'");
  return true;
}

void write_request(const Socket& s, const Request& req) {
  std::string header;
  switch (req.kind) {
    case RequestKind::RunScenario:
      header = "RUN scn " + std::to_string(req.body.size()) + "\n";
      break;
    case RequestKind::RunCampaign:
      header = "RUN cmp " + std::to_string(req.body.size()) + "\n";
      break;
    case RequestKind::Stats: header = "STATS\n"; break;
    case RequestKind::Metrics: header = "METRICS\n"; break;
    case RequestKind::Ping: header = "PING\n"; break;
    case RequestKind::Shutdown: header = "SHUTDOWN\n"; break;
  }
  // One write per request: header and body reach the server together even
  // if it reads slowly.
  s.write_all(header + req.body);
}

Response read_response(const Socket& s) {
  const std::optional<std::string> line = s.read_line();
  if (!line) throw std::runtime_error("server closed without a response");
  const std::vector<std::string> words = split_words(*line);
  Response resp;
  if (words.size() == 3 && words[0] == "OK") {
    resp.ok = true;
    resp.tag = words[2];
    resp.body = read_body(s, parse_length(words[1]));
  } else if (words.size() == 2 && words[0] == "ERR") {
    resp.ok = false;
    resp.body = read_body(s, parse_length(words[1]));
  } else {
    throw std::runtime_error("malformed response line '" + *line + "'");
  }
  return resp;
}

void write_response(const Socket& s, const Response& resp) {
  std::string header;
  if (resp.ok)
    header = "OK " + std::to_string(resp.body.size()) + " " + resp.tag + "\n";
  else
    header = "ERR " + std::to_string(resp.body.size()) + "\n";
  s.write_all(header + resp.body);
}

}  // namespace pdc::serve
