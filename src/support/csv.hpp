// Minimal RFC-4180-style CSV writer: the tabular sibling of support/json,
// used for campaign reports that feed spreadsheets / pandas directly.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pdc {

/// Quotes `cell` when it contains a comma, quote, or newline (quotes are
/// doubled); returns it unchanged otherwise.
std::string csv_escape(std::string_view cell);

/// Accumulates rows against a fixed header; every row must have exactly as
/// many cells as the header. Numeric cells should be pre-formatted with
/// format_shortest so values round-trip.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  /// Appends one row; throws std::invalid_argument on a column-count mismatch.
  void row(const std::vector<std::string>& cells);

  std::size_t columns() const { return columns_; }

  /// The document: header line plus every row, '\n' line endings.
  const std::string& str() const { return out_; }

 private:
  void write_line(const std::vector<std::string>& cells);

  std::size_t columns_;
  std::string out_;
};

}  // namespace pdc
