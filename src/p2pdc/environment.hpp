// The P2PDC runtime: the user-facing environment for high performance
// peer-to-peer computing (paper §III).
//
// A computation goes through the paper's pipeline:
//   1. the submitter joins the overlay and collects peers (§III-B);
//   2. peers are divided into proximity groups of at most Cmax members with
//      one coordinator each (§III-C);
//   3. the submitter ships group assignments and subtasks to coordinators,
//      which forward them to their peers in parallel ("reverse" connection
//      included); results travel the inverse path, avoiding a bottleneck at
//      the submitter;
//   4. every rank runs the user-provided computation, communicating with
//      other ranks through P2PSAP channels negotiated for the requested
//      scheme (synchronous or asynchronous iterations).
//
// A Flat allocation mode (submitter connects to every peer in succession and
// gathers all results directly) is provided as the baseline the paper argues
// against; the ablation bench compares both.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "alloc/groups.hpp"
#include "net/flow.hpp"
#include "overlay/overlay.hpp"
#include "p2psap/p2psap.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace pdc::p2pdc {

using net::NodeIdx;

enum class AllocationMode { Hierarchical, Flat };

/// Worker CPU/memory/disk as published to the trackers: the host's modelled
/// frequency (falling back to the paper's 3 GHz Xeon) with the paper-era
/// memory/disk sizing. The one policy for original workers (scenario
/// deployment) and churn-joined replacements alike, so replacements satisfy
/// the same requirement matching during peers collection.
overlay::PeerResources worker_resources(const net::Platform& platform, NodeIdx host);

struct TaskSpec {
  std::string name = "task";
  int peers_needed = 2;
  overlay::Requirements requirements;
  p2psap::Scheme scheme = p2psap::Scheme::Synchronous;
  AllocationMode allocation = AllocationMode::Hierarchical;
  double subtask_bytes = 0;  // data shipped to each peer
  double result_bytes = 0;   // data shipped back per peer
  int cmax = alloc::kCmax;
};

class Environment;
struct Computation;

/// Per-rank view of a running computation handed to the user function.
class PeerContext {
 public:
  int rank() const { return rank_; }
  int nprocs() const;
  NodeIdx host() const;
  /// CPU frequency of the host this rank runs on.
  double host_speed_hz() const;
  Time now() const;

  /// Sends `bytes` to another rank over the computation's P2PSAP channel.
  /// Under the synchronous scheme this resumes after the transport ack;
  /// under the asynchronous scheme it is fire-and-forget.
  sim::Task<void> send(int to_rank, int tag, double bytes,
                       std::shared_ptr<const std::vector<double>> values = nullptr);
  sim::Task<p2psap::Message> recv(int from_rank, int tag);
  sim::Task<std::optional<p2psap::Message>> recv_for(int from_rank, int tag, Time timeout);
  std::optional<p2psap::Message> try_recv(int from_rank, int tag);

  /// Advances simulated time by `dt` to model local computation.
  sim::Task<void> compute(Time dt);

  /// Hierarchical max-allreduce through the group coordinators (used for
  /// global residual tests in iterative solvers). Every rank must call it
  /// the same number of times.
  sim::Task<double> allreduce_max(double value);

  /// Stores this rank's result values; they are shipped back through the
  /// coordinator and appear in ComputationResult::results.
  void set_result(std::vector<double> values);

 private:
  friend class Environment;
  PeerContext(Computation& comp, int rank) : comp_(&comp), rank_(rank) {}
  Computation* comp_;
  int rank_;
};

using PeerMain = std::function<sim::Task<void>(PeerContext&)>;

struct ComputationResult {
  bool ok = false;
  std::string failure;  // set when !ok
  int peers = 0;
  int groups = 0;
  Time t_submit = 0;     // submission entered the overlay
  Time t_collected = 0;  // enough peers reserved
  Time t_allocated = 0;  // every rank received its subtask
  Time t_finished = 0;   // all results back at the submitter
  /// User result values indexed by rank (dense: sized nprocs on success;
  /// ranks that set no result hold an empty vector).
  std::vector<std::vector<double>> results;

  Time collection_time() const { return t_collected - t_submit; }
  Time allocation_time() const { return t_allocated - t_collected; }
  Time total_time() const { return t_finished - t_submit; }
};

/// Owns the full stack for one simulated deployment: flow network, P2PSAP
/// fabric and P2PDC overlay on a given platform.
class Environment {
 public:
  Environment(sim::Engine& engine, const net::Platform& platform,
              overlay::OverlayConfig config = {});

  sim::Engine& engine() { return *engine_; }
  const net::Platform& platform() const { return *platform_; }
  net::FlowNet& flownet() { return flownet_; }
  p2psap::Fabric& fabric() { return fabric_; }
  overlay::Overlay& over() { return overlay_; }

  // --- deployment helpers ---
  void boot_server(NodeIdx host) { overlay_.create_server(host); }
  void boot_tracker(NodeIdx host, bool core = true) { overlay_.create_tracker(host, core); }
  void boot_peer(NodeIdx host, overlay::PeerResources res) { overlay_.create_peer(host, res); }
  /// Lazy worker registration for massive platforms: no actor, no idle
  /// events; see Overlay::register_passive_peer. Trackers must exist first.
  bool boot_passive_peer(NodeIdx host, overlay::PeerResources res) {
    return overlay_.register_passive_peer(host, res);
  }
  void finish_bootstrap() { overlay_.finish_bootstrap(); }

  /// Fail-stop crash of the actor running on `host` (peer, tracker or
  /// server): the overlay actor stops and drops queued/future messages, and
  /// every active computation that placed a rank (or its submitter) on the
  /// host aborts — its submit() resumes with ok=false so the caller can
  /// re-collect peers and re-allocate. The churn injector's crash hook.
  void crash_host(NodeIdx host);

  /// Submits a task from `submitter_host` (which must run a peer actor).
  /// Awaitable from a simulation process.
  sim::Task<ComputationResult> submit(NodeIdx submitter_host, TaskSpec spec, PeerMain main);

  /// Convenience driver: lets the overlay settle for `warmup` seconds, then
  /// submits and runs the engine until the computation finishes.
  ComputationResult run_computation(NodeIdx submitter_host, TaskSpec spec, PeerMain main,
                                    Time warmup = 12.0, Time time_cap = 36000.0);

 private:
  sim::Process rank_body(std::shared_ptr<Computation> comp, int rank, PeerMain main);
  sim::Process coordinator_body(std::shared_ptr<Computation> comp, int group);

  sim::Engine* engine_;
  const net::Platform* platform_;
  net::FlowNet flownet_;
  p2psap::Fabric fabric_;
  overlay::Overlay overlay_;
  std::uint64_t next_ticket_ = 1;
  /// Computations currently in flight, so crash_host can abort the ones that
  /// lost a rank. Weak: the coroutines own the computation's lifetime.
  std::vector<std::weak_ptr<Computation>> active_;
};

}  // namespace pdc::p2pdc
