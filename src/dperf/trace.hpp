// dPerf trace files: per-process sequences of computation durations
// (nanoseconds, as the paper's PAPI-based traces) and communication calls,
// plus the iteration markers used for scale-up. A versioned text format
// supports saving/loading ("the result consists in a set of trace files for
// each execution and per participating process", paper §III-D).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pdc::dperf {

struct TraceEvent {
  enum class Kind { Compute, Send, Recv, Allreduce, IterMark };
  Kind kind = Kind::Compute;
  std::uint64_t ns = 0;     // Compute
  int peer = -1;            // Send/Recv
  int tag = 0;              // Send/Recv
  double bytes = 0;         // Send
  long long iter_id = 0;    // IterMark

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

struct Trace {
  int rank = 0;
  int nprocs = 1;
  double host_hz = 3e9;  // frequency the computation times were measured at
  std::vector<TraceEvent> events;

  std::uint64_t total_compute_ns() const;
  std::size_t count(TraceEvent::Kind kind) const;
};

/// Serializes to the "dperf-trace v1" text format.
std::string save_trace(const Trace& trace);
/// Parses the text format; throws std::runtime_error on malformed input.
Trace load_trace(const std::string& text);

/// Scale-up (paper: "the use of benchmarking by block makes it possible for
/// dPerf results to be scaled-up while maintaining accuracy"): a trace
/// sampled with `sample_iters` outer iterations is extended to
/// `target_iters` by replicating the steady-state chunk of `chunk`
/// iterations (the chunk ending `chunk` iterations before the sampled end,
/// so warmup and tail stay measured). Requires:
///   sample_iters >= 3 * chunk,  (target_iters - sample_iters) % chunk == 0.
Trace extrapolate(const Trace& sampled, int sample_iters, int target_iters, int chunk);

}  // namespace pdc::dperf
