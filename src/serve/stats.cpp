#include "serve/stats.hpp"

#include "obs/publish.hpp"
#include "support/json.hpp"

namespace pdc::serve {

namespace {

/// Registers the whole snapshot. Registration order within each group is the
/// historical JSON field order of the STATS document; the prom_name overrides
/// keep the exposition names server-scoped where the JSON groups are not.
void publish_serve(obs::Registry& reg, const ServeStats& s) {
  reg.counter("serve", "requests", "Requests accepted, including pings").set(s.requests);
  reg.counter("serve", "scenario_requests", "RUN scenario requests")
      .set(s.scenario_requests);
  reg.counter("serve", "campaign_requests", "RUN campaign requests")
      .set(s.campaign_requests);
  reg.counter("serve", "spool_jobs", "Jobs picked up from the spool directory")
      .set(s.spool_jobs);
  reg.counter("serve", "stats_requests", "STATS requests").set(s.stats_requests);
  reg.counter("serve", "metrics_requests", "METRICS requests").set(s.metrics_requests);
  reg.counter("serve", "pings", "PING requests").set(s.pings);
  reg.counter("serve", "errors", "Malformed requests and failed runs").set(s.errors);
  obs::publish_cache(reg, s.cache);
  obs::publish_memos(reg, s.memos);
  reg.gauge("load", "in_flight", "Requests being processed right now")
      .set(s.in_flight);
  reg.rename_prom("serve_in_flight");
  reg.gauge("load", "queue_peak", "Maximum concurrent requests observed")
      .set(s.queue_peak);
  reg.rename_prom("serve_queue_peak");
  reg.gauge("load", "uptime_seconds", "Seconds since the server started")
      .set(s.uptime_seconds);
  reg.rename_prom("serve_uptime_seconds");
}

void latency_json(JsonWriter& w, const obs::Histogram& h) {
  w.begin_object();
  w.kv("n", static_cast<std::int64_t>(h.count()));
  w.kv("mean", h.mean());
  w.kv("min", h.min());
  w.kv("max", h.max());
  w.kv("p50", h.percentile(0.50));
  w.kv("p95", h.percentile(0.95));
  w.kv("p99", h.percentile(0.99));
  w.end_object();
}

}  // namespace

std::string ServeStats::to_json() const {
  obs::Registry reg;
  publish_serve(reg, *this);
  JsonWriter w;
  w.begin_object();
  reg.json_fields(w, "serve");
  w.key("cache").begin_object();
  reg.json_fields(w, "cache");
  w.end_object();
  w.key("memos").begin_object();
  reg.json_fields(w, "memos");
  w.end_object();
  reg.json_fields(w, "load");
  w.key("latency_hit");
  latency_json(w, latency_hit);
  w.key("latency_miss");
  latency_json(w, latency_miss);
  w.end_object();
  return w.str() + "\n";
}

std::string ServeStats::to_prometheus() const {
  obs::Registry reg;
  publish_serve(reg, *this);
  reg.histogram("serve", "latency_hit_seconds",
                "Request latency of memo-cache hits") = latency_hit;
  reg.histogram("serve", "latency_miss_seconds",
                "Request latency of memo-cache misses") = latency_miss;
  return reg.render_prometheus("pdc_");
}

void StatsCollector::count_request() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++totals_.requests;
}
void StatsCollector::count_scenario() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++totals_.scenario_requests;
}
void StatsCollector::count_campaign() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++totals_.campaign_requests;
}
void StatsCollector::count_spool_job() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++totals_.spool_jobs;
}
void StatsCollector::count_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++totals_.stats_requests;
}
void StatsCollector::count_metrics() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++totals_.metrics_requests;
}
void StatsCollector::count_ping() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++totals_.pings;
}
void StatsCollector::count_error() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++totals_.errors;
}

void StatsCollector::enter_request() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++totals_.in_flight;
  if (totals_.in_flight > totals_.queue_peak) totals_.queue_peak = totals_.in_flight;
}

void StatsCollector::leave_request() {
  std::lock_guard<std::mutex> lock(mutex_);
  --totals_.in_flight;
}

void StatsCollector::record_latency(bool cache_hit, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  (cache_hit ? totals_.latency_hit : totals_.latency_miss).observe(seconds);
}

ServeStats StatsCollector::snapshot(const MemoCache& cache,
                                    double uptime_seconds) const {
  ServeStats s;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    s = totals_;
  }
  s.cache = cache.stats();
  s.memos = scenario::memo_stats();
  s.uptime_seconds = uptime_seconds;
  return s;
}

}  // namespace pdc::serve
