// Minimal leveled logging. Off by default so tests and benches stay quiet;
// examples turn on Info to narrate protocol activity.
#pragma once

#include <string>

namespace pdc {

enum class LogLevel { Off = 0, Error = 1, Warn = 2, Info = 3, Debug = 4 };

/// Sets the global log threshold. Not thread-safe by design: the simulator
/// is single-threaded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Writes one line to stderr when `level` is at or below the threshold.
void log_line(LogLevel level, const std::string& msg);

}  // namespace pdc

#define PDC_LOG_WARN(msg)                                    \
  do {                                                       \
    if (::pdc::log_level() >= ::pdc::LogLevel::Warn)         \
      ::pdc::log_line(::pdc::LogLevel::Warn, (msg));         \
  } while (0)

#define PDC_LOG_INFO(msg)                                    \
  do {                                                       \
    if (::pdc::log_level() >= ::pdc::LogLevel::Info)         \
      ::pdc::log_line(::pdc::LogLevel::Info, (msg));         \
  } while (0)

#define PDC_LOG_DEBUG(msg)                                   \
  do {                                                       \
    if (::pdc::log_level() >= ::pdc::LogLevel::Debug)        \
      ::pdc::log_line(::pdc::LogLevel::Debug, (msg));        \
  } while (0)
