#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "sim/task.hpp"

namespace pdc::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine eng;
  EXPECT_EQ(eng.now(), 0.0);
  EXPECT_TRUE(eng.queue_empty());
}

TEST(Engine, DispatchesEventsInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(3.0, [&] { order.push_back(3); });
  eng.schedule_at(1.0, [&] { order.push_back(1); });
  eng.schedule_at(2.0, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), 3.0);
}

TEST(Engine, SameTimeEventsFireInInsertionOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 20; ++i) eng.schedule_at(1.0, [&order, i] { order.push_back(i); });
  eng.run();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, PastSchedulingClampsToNow) {
  Engine eng;
  Time seen = -1;
  eng.schedule_at(5.0, [&] {
    eng.schedule_at(1.0, [&] { seen = eng.now(); });  // in the past
  });
  eng.run();
  EXPECT_EQ(seen, 5.0);
}

TEST(Engine, RunUntilStopsAtBoundary) {
  Engine eng;
  int fired = 0;
  eng.schedule_at(1.0, [&] { ++fired; });
  eng.schedule_at(2.0, [&] { ++fired; });
  eng.schedule_at(10.0, [&] { ++fired; });
  eng.run_until(5.0);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(eng.now(), 5.0);
  eng.run();
  EXPECT_EQ(fired, 3);
}

TEST(Engine, CancelledTimerDoesNotFire) {
  Engine eng;
  bool fired = false;
  TimerHandle h = eng.schedule_cancellable(1.0, [&] { fired = true; });
  EXPECT_TRUE(h.active());
  h.cancel();
  EXPECT_FALSE(h.active());
  eng.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelAfterFireIsNoop) {
  Engine eng;
  bool fired = false;
  TimerHandle h = eng.schedule_cancellable(1.0, [&] { fired = true; });
  eng.run();
  EXPECT_TRUE(fired);
  h.cancel();  // must not crash or corrupt anything
}

Process sleeper(Engine& eng, std::vector<Time>& marks) {
  marks.push_back(eng.now());
  co_await eng.sleep(1.5);
  marks.push_back(eng.now());
  co_await eng.sleep(0.5);
  marks.push_back(eng.now());
}

TEST(Engine, ProcessSleepAdvancesClock) {
  Engine eng;
  std::vector<Time> marks;
  eng.spawn(sleeper(eng, marks), "sleeper");
  EXPECT_EQ(eng.live_processes(), 1u);
  eng.run();
  ASSERT_EQ(marks.size(), 3u);
  EXPECT_DOUBLE_EQ(marks[0], 0.0);
  EXPECT_DOUBLE_EQ(marks[1], 1.5);
  EXPECT_DOUBLE_EQ(marks[2], 2.0);
  EXPECT_EQ(eng.live_processes(), 0u);
}

TEST(Engine, ZeroSleepDoesNotSuspend) {
  Engine eng;
  std::vector<Time> marks;
  eng.spawn([](Engine& e, std::vector<Time>& m) -> Process {
    co_await e.sleep(0.0);
    m.push_back(e.now());
  }(eng, marks));
  eng.run();
  ASSERT_EQ(marks.size(), 1u);
  EXPECT_EQ(marks[0], 0.0);
}

Task<int> add_later(Engine& eng, int a, int b) {
  co_await eng.sleep(1.0);
  co_return a + b;
}

Task<int> add_twice(Engine& eng, int a) {
  const int once = co_await add_later(eng, a, 1);
  const int twice = co_await add_later(eng, once, 1);
  co_return twice;
}

TEST(Engine, NestedTasksComposeAndReturnValues) {
  Engine eng;
  int result = 0;
  eng.spawn([](Engine& e, int& out) -> Process {
    out = co_await add_twice(e, 40);
  }(eng, result));
  eng.run();
  EXPECT_EQ(result, 42);
  EXPECT_DOUBLE_EQ(eng.now(), 2.0);
}

Task<void> throwing_task(Engine& eng) {
  co_await eng.sleep(1.0);
  throw std::runtime_error("boom");
}

TEST(Engine, TaskExceptionPropagatesToAwaiter) {
  Engine eng;
  std::string caught;
  eng.spawn([](Engine& e, std::string& out) -> Process {
    try {
      co_await throwing_task(e);
    } catch (const std::runtime_error& ex) {
      out = ex.what();
    }
  }(eng, caught));
  eng.run();
  EXPECT_EQ(caught, "boom");
}

TEST(Engine, UncaughtProcessExceptionSurfacesFromRun) {
  Engine eng;
  eng.spawn([](Engine& e) -> Process {
    co_await e.sleep(1.0);
    throw std::logic_error("unhandled");
  }(eng));
  EXPECT_THROW(eng.run(), std::logic_error);
}

TEST(Engine, ManyProcessesInterleaveDeterministically) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    eng.spawn([](Engine& e, std::vector<int>& ord, int id) -> Process {
      for (int k = 0; k < 3; ++k) {
        co_await e.sleep(1.0);
        ord.push_back(id * 100 + k);
      }
    }(eng, order, i));
  }
  eng.run();
  ASSERT_EQ(order.size(), 30u);
  // At each time step, processes resume in spawn order.
  for (int k = 0; k < 3; ++k)
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(k * 10 + i)], i * 100 + k);
}

TEST(Engine, DestructionWithSuspendedProcessesIsClean) {
  // A process parked on a long sleep must be destroyed with the engine
  // without leaking or crashing (ASAN/valgrind would flag misuse).
  auto eng = std::make_unique<Engine>();
  eng->spawn([](Engine& e) -> Process {
    co_await e.sleep(1e9);
    ADD_FAILURE() << "should never resume";
  }(*eng));
  eng->run_until(1.0);
  EXPECT_EQ(eng->live_processes(), 1u);
  eng.reset();  // must not crash
}

TEST(Engine, DispatchedEventCountGrows) {
  Engine eng;
  for (int i = 0; i < 5; ++i) eng.schedule_at(i, [] {});
  eng.run();
  EXPECT_EQ(eng.dispatched_events(), 5u);
}

TEST(Engine, TimerSlotArmCancelRearm) {
  Engine eng;
  int fired = 0;
  const int slot = eng.create_timer_slot([&] { ++fired; });
  eng.arm_timer_slot(slot, 1.0);
  eng.cancel_timer_slot(slot);
  eng.run();
  EXPECT_EQ(fired, 0);  // cancelled arm never fires
  eng.arm_timer_slot(slot, 1.0);
  eng.arm_timer_slot(slot, 2.0);  // re-arm supersedes the pending arm
  eng.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(eng.now(), 3.0);
}

TEST(Engine, DestroyedTimerSlotsAreRecycled) {
  Engine eng;
  const int a = eng.create_timer_slot([] {});
  const int b = eng.create_timer_slot([] {});
  eng.arm_timer_slot(a, 1.0);
  eng.destroy_timer_slot(a);  // pending arm must go stale, id becomes free
  const int c = eng.create_timer_slot([] {});
  EXPECT_EQ(c, a);
  EXPECT_EQ(eng.timer_slot_count(), 2u);
  int fired = 0;
  const int d = eng.create_timer_slot([&] { ++fired; });
  EXPECT_EQ(eng.timer_slot_count(), 3u);
  eng.arm_timer_slot(d, 0.5);
  eng.run();
  EXPECT_EQ(fired, 1);  // recycling never fires the old owner's events
  (void)b;
}

}  // namespace
}  // namespace pdc::sim
