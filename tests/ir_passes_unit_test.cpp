// Pass-level unit tests that inspect the IR directly (complementing the
// black-box equivalence suite): CFG analyses, individual pass effects,
// pipeline composition invariants.
#include <gtest/gtest.h>

#include "ir/cfg.hpp"
#include "ir/lower.hpp"
#include "ir/passes.hpp"
#include "ir/pipeline.hpp"
#include "minic/parser.hpp"
#include "minic/sema.hpp"
#include "vm/vm.hpp"

namespace pdc::ir {
namespace {

IrProgram lower_only(const std::string& src) {
  minic::Program p = minic::parse(src);
  minic::check(p);
  return lower(p);
}

int count_ops(const IrFunction& fn, Op op) {
  int n = 0;
  for (const auto& blk : fn.blocks)
    for (const auto& in : blk.instrs) n += in.op == op ? 1 : 0;
  return n;
}

TEST(Cfg, DominatorsOfDiamond) {
  // if/else creates a diamond: entry dominates all; join dominated only by
  // entry and itself.
  IrProgram prog = lower_only(
      "int main() { int x = 1; if (x > 0) { x = 2; } else { x = 3; } return x; }");
  IrFunction& fn = prog.functions[0];
  const Cfg cfg = analyze_cfg(fn);
  // Entry dominates everything.
  for (int b = 0; b < static_cast<int>(fn.blocks.size()); ++b)
    if (!cfg.preds[static_cast<std::size_t>(b)].empty() || b == 0)
      EXPECT_TRUE(cfg.dominates(0, b)) << "entry must dominate block " << b;
  // The then-block does not dominate the join.
  const auto succs = fn.successors(0);
  ASSERT_EQ(succs.size(), 2u);
  // Find the join: the common successor of both branches.
  const auto then_succs = fn.successors(succs[0]);
  ASSERT_FALSE(then_succs.empty());
  const int join = then_succs[0];
  EXPECT_FALSE(cfg.dominates(succs[0], join));
  EXPECT_FALSE(cfg.dominates(succs[1], join));
}

TEST(Cfg, NaturalLoopDiscovery) {
  IrProgram prog = lower_only(
      "int main() { int s = 0; for (int i = 0; i < 9; i = i + 1) { s = s + i; } return s; }");
  IrFunction& fn = prog.functions[0];
  const Cfg cfg = analyze_cfg(fn);
  const auto loops = find_loops(fn, cfg);
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_GE(loops[0].blocks.size(), 2u);  // header + body at least
  EXPECT_TRUE(loops[0].has(loops[0].header));
}

TEST(Cfg, NestedLoopsFoundInnermostFirst) {
  IrProgram prog = lower_only(R"(
int main() {
  int s = 0;
  for (int i = 0; i < 4; i = i + 1) {
    for (int j = 0; j < 4; j = j + 1) { s = s + 1; }
  }
  return s;
}
)");
  IrFunction& fn = prog.functions[0];
  const auto loops = find_loops(fn, analyze_cfg(fn));
  ASSERT_EQ(loops.size(), 2u);
  EXPECT_LT(loops[0].blocks.size(), loops[1].blocks.size());  // inner first
}

TEST(PassUnits, PromotionThenDceRemovesAllScalarSlots) {
  IrProgram prog = lower_only(
      "int main() { int a = 3; int b = 4; int c = a * b; return c; }");
  IrFunction& fn = prog.functions[0];
  EXPECT_GT(count_ops(fn, Op::LoadVar), 0);
  promote_variables(fn);
  EXPECT_EQ(count_ops(fn, Op::LoadVar), 0);
  EXPECT_EQ(count_ops(fn, Op::StoreVar), 0);
  // The extra Movs introduced by promotion disappear after cleanup.
  propagate_copies(fn);
  eliminate_dead_code(fn);
  fold_constants(fn);
  eliminate_dead_code(fn);
  vm::Vm m{prog};
  EXPECT_EQ(m.run_main(), 12);
}

TEST(PassUnits, FoldingIsIterative) {
  // (1+2)*(3+4) folds fully once copies propagate.
  IrProgram prog = lower_only("int main() { return (1 + 2) * (3 + 4); }");
  IrFunction& fn = prog.functions[0];
  promote_variables(fn);
  for (int i = 0; i < 4; ++i) {
    fold_constants(fn);
    propagate_copies(fn);
    eliminate_dead_code(fn);
  }
  EXPECT_EQ(count_ops(fn, Op::MulI), 0);
  EXPECT_EQ(count_ops(fn, Op::AddI), 0);
}

TEST(PassUnits, DivByZeroIsNeverFoldedAway) {
  // A trapping division must survive folding and DCE even if dead.
  IrProgram prog = lower_only("int main() { int z = 0; int d = 1 / z; return 7; }");
  IrFunction& fn = prog.functions[0];
  promote_variables(fn);
  for (int i = 0; i < 4; ++i) {
    fold_constants(fn);
    propagate_copies(fn);
    eliminate_dead_code(fn);
  }
  EXPECT_EQ(count_ops(fn, Op::DivI), 1) << "trapping op must not be removed";
  vm::Vm m{prog};
  EXPECT_THROW(m.run_main(), vm::TrapError);
}

TEST(PassUnits, CseRespectsArrayStores) {
  // a[0] read, a[0] written, a[0] read again: the second load must remain.
  IrProgram prog = lower_only(R"(
int main() {
  double a[4];
  a[0] = 1.0;
  double x = a[0];
  a[0] = 2.0;
  double y = a[0];
  if (x + y == 3.0) { return 1; }
  return 0;
}
)");
  IrFunction& fn = prog.functions[0];
  promote_variables(fn);
  eliminate_common_subexpressions(fn);
  EXPECT_GE(count_ops(fn, Op::LoadIdx), 2);
  vm::Vm m{prog};
  EXPECT_EQ(m.run_main(), 1);
}

TEST(PassUnits, LicmCreatesPreheader) {
  IrProgram prog = lower_only(R"(
int main() {
  int n = 100;
  int s = 0;
  for (int i = 0; i < 50; i = i + 1) { s = s + n * n; }
  return s;
}
)");
  IrFunction& fn = prog.functions[0];
  const auto blocks_before = fn.blocks.size();
  promote_variables(fn);
  propagate_copies(fn);
  eliminate_dead_code(fn);
  const bool hoisted = hoist_loop_invariants(fn);
  EXPECT_TRUE(hoisted);
  EXPECT_GT(fn.blocks.size(), blocks_before);  // preheader added
  vm::Vm m{prog};
  EXPECT_EQ(m.run_main(), 50 * 100 * 100);
}

TEST(PassUnits, PipelinesNeverGrowExecutedWork) {
  // For a batch of small programs, each level must execute no more *cycles*
  // than the previous one. (Instruction counts are not strictly monotone:
  // CSE may replace a 3-cycle multiply with a surviving 1-cycle Mov.)
  const char* programs[] = {
      "int main() { int s = 0; for (int i = 0; i < 20; i = i + 1) { s = s + i * 2; } return s; }",
      "int main() { double x = 1.5; for (int i = 0; i < 10; i = i + 1) { x = x * 1.0 + 0.0; } if (x == 1.5) { return 1; } return 0; }",
      "int main() { int n = 8; double a[n]; for (int i = 0; i < n; i = i + 1) { a[i] = i * 1.0; } double s = 0.0; for (int i = 0; i < n; i = i + 1) { s = s + a[i]; } if (s == 28.0) { return 1; } return 0; }",
  };
  for (const char* src : programs) {
    double prev = 1e300;
    double o0 = 0;
    for (OptLevel lvl : {OptLevel::O0, OptLevel::O1, OptLevel::O2}) {
      const IrProgram prog = compile_source(src, lvl);
      vm::Vm m{prog};
      m.run_main();
      if (lvl == OptLevel::O0) o0 = m.cycles();
      // Allow a few cycles of slack: on micro-loops CSE can trade a fold
      // opportunity for a surviving Mov, exactly like real compilers.
      EXPECT_LE(m.cycles(), prev * 1.02 + 4) << src << " at " << opt_level_name(lvl);
      prev = m.cycles();
    }
    EXPECT_LT(prev, o0 * 0.85) << src << ": O2 must clearly beat O0";
  }
}

TEST(PassUnits, InstrumentationMarkersSurviveOptimization) {
  // Block markers are side-effecting: no pass may drop or reorder them.
  const char* src = R"(
int main() {
  dperf_block_begin(3);
  int s = 0;
  for (int i = 0; i < 10; i = i + 1) { s = s + i; }
  dperf_block_end(3);
  return s;
}
)";
  for (OptLevel lvl : all_opt_levels()) {
    const IrProgram prog = compile_source(src, lvl);
    vm::Vm m{prog};
    EXPECT_EQ(m.run_main(), 45);
    EXPECT_EQ(m.papi().blocks.at(3).executions, 1u) << opt_level_name(lvl);
    EXPECT_GT(m.papi().blocks.at(3).cycles, 0.0);
  }
}

}  // namespace
}  // namespace pdc::ir
