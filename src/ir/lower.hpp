// AST -> IR lowering.
//
// -O0 semantics: every named scalar variable gets a memory slot; each read
// is a LoadVar, each write a StoreVar. Expression temporaries use virtual
// registers. Logical && / || lower to short-circuit control flow.
//
// Call argument conventions: scalar arguments are registers; array
// arguments are encoded in Instr::args as -(arr_slot + 2) (always negative),
// decoded by the VM, which passes arrays by reference as the paper's C
// obstacle code does.
#pragma once

#include "ir/ir.hpp"
#include "minic/ast.hpp"

namespace pdc::ir {

/// Encoding helpers for array call arguments.
inline int encode_array_arg(int arr_slot) { return -(arr_slot + 2); }
inline bool is_array_arg(int encoded) { return encoded <= -2; }
inline int decode_array_arg(int encoded) { return -encoded - 2; }

/// Lowers a semantically checked program. Throws CompileError on constructs
/// the backend cannot express (e.g. non-literal instrumentation ids).
IrProgram lower(const minic::Program& program);

}  // namespace pdc::ir
