#include "net/platfile.hpp"

#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>
#include <vector>

#include "support/time.hpp"

namespace pdc::net {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::string tok;
  for (char c : line) {
    if (c == '#') break;
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!tok.empty()) out.push_back(std::move(tok)), tok.clear();
    } else {
      tok += c;
    }
  }
  if (!tok.empty()) out.push_back(std::move(tok));
  return out;
}

/// Parses "<number><suffix>" with one of the given suffix multipliers.
double parse_unit_value(const std::string& text, const std::map<std::string, double>& units,
                        const std::string& what) {
  std::size_t pos = 0;
  while (pos < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[pos])) || text[pos] == '.' ||
          text[pos] == '-' || text[pos] == '+' || text[pos] == 'e' || text[pos] == 'E'))
    ++pos;
  // Allow scientific notation while preventing 'e' in a pure suffix: back off
  // if the numeric part ends with a dangling exponent.
  std::string num = text.substr(0, pos);
  std::string suffix = text.substr(pos);
  if (!num.empty() && (num.back() == 'e' || num.back() == 'E')) {
    suffix = num.back() + suffix;
    num.pop_back();
  }
  auto it = units.find(suffix);
  if (num.empty() || it == units.end())
    throw std::invalid_argument("bad " + what + " value '" + text + "'");
  try {
    return std::stod(num) * it->second;
  } catch (const std::invalid_argument&) {
    throw;
  } catch (const std::exception&) {
    throw std::invalid_argument("bad " + what + " value '" + text + "'");
  }
}

double parse_with_unit(const std::string& text, const std::map<std::string, double>& units,
                       int line, const std::string& what) {
  try {
    return parse_unit_value(text, units, what);
  } catch (const std::invalid_argument& e) {
    throw PlatFileError(line, e.what());
  }
}

const std::map<std::string, double> kSpeedUnits{{"GHz", 1e9}, {"MHz", 1e6}, {"Hz", 1.0}};
const std::map<std::string, double> kBwUnits{
    {"Gbps", 1e9 / 8}, {"Mbps", 1e6 / 8}, {"Kbps", 1e3 / 8}, {"bps", 1.0 / 8}};
const std::map<std::string, double> kLatUnits{
    {"s", 1.0}, {"ms", 1e-3}, {"us", 1e-6}, {"ns", 1e-9}};

}  // namespace

double parse_speed_value(const std::string& text) {
  return parse_unit_value(text, kSpeedUnits, "speed");
}

double parse_bandwidth_value(const std::string& text) {
  return parse_unit_value(text, kBwUnits, "bandwidth");
}

double parse_latency_value(const std::string& text) {
  return parse_unit_value(text, kLatUnits, "latency");
}

Platform parse_platform(const std::string& text) {
  Platform p;
  std::map<std::string, NodeIdx> nodes;
  std::map<std::string, LinkIdx> links;

  auto need_node = [&](const std::string& name, int line) -> NodeIdx {
    auto it = nodes.find(name);
    if (it == nodes.end()) throw PlatFileError(line, "unknown node '" + name + "'");
    return it->second;
  };
  auto need_link = [&](const std::string& name, int line) -> LinkIdx {
    auto it = links.find(name);
    if (it == links.end()) throw PlatFileError(line, "unknown link '" + name + "'");
    return it->second;
  };

  // "hier" applies after all nodes and edges exist, wherever it appears.
  bool saw_hier = false;
  int hier_line = 0;
  std::string trunk_name;

  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto tok = tokenize(line);
    if (tok.empty()) continue;
    const std::string& kw = tok[0];
    if (kw == "host") {
      if (tok.size() != 6 || tok[2] != "speed" || tok[4] != "ip")
        throw PlatFileError(lineno, "expected: host <name> speed <v> ip <addr>");
      if (nodes.count(tok[1])) throw PlatFileError(lineno, "duplicate node '" + tok[1] + "'");
      const double speed = parse_with_unit(tok[3], kSpeedUnits, lineno, "speed");
      auto ip = Ipv4::parse(tok[5]);
      if (!ip) throw PlatFileError(lineno, "bad ip '" + tok[5] + "'");
      nodes[tok[1]] = p.add_host(tok[1], speed, *ip);
    } else if (kw == "router") {
      if (tok.size() != 2) throw PlatFileError(lineno, "expected: router <name>");
      if (nodes.count(tok[1])) throw PlatFileError(lineno, "duplicate node '" + tok[1] + "'");
      nodes[tok[1]] = p.add_router(tok[1]);
    } else if (kw == "link") {
      if (tok.size() != 6 || tok[2] != "bw" || tok[4] != "lat")
        throw PlatFileError(lineno, "expected: link <name> bw <v> lat <v>");
      if (links.count(tok[1])) throw PlatFileError(lineno, "duplicate link '" + tok[1] + "'");
      const double bw = parse_with_unit(tok[3], kBwUnits, lineno, "bandwidth");
      const double lat = parse_with_unit(tok[5], kLatUnits, lineno, "latency");
      links[tok[1]] = p.add_link(tok[1], bw, lat);
    } else if (kw == "edge") {
      if (tok.size() != 4) throw PlatFileError(lineno, "expected: edge <a> <b> <link>");
      p.connect(need_node(tok[1], lineno), need_node(tok[2], lineno), need_link(tok[3], lineno));
    } else if (kw == "route") {
      if (tok.size() < 4) throw PlatFileError(lineno, "expected: route <src> <dst> <links...>");
      const NodeIdx src = need_node(tok[1], lineno);
      const NodeIdx dst = need_node(tok[2], lineno);
      // Walk the listed links from src, inferring hop directions. Links
      // that participate in no edge are fabric links: they do not advance
      // the walk and take their direction from the :fwd/:rev suffix.
      std::vector<Hop> hops;
      NodeIdx at = src;
      for (std::size_t i = 3; i < tok.size(); ++i) {
        std::string name = tok[i];
        int annotated_dir = 0;
        if (const auto colon = name.rfind(':'); colon != std::string::npos) {
          const std::string suffix = name.substr(colon + 1);
          if (suffix == "fwd") annotated_dir = 0;
          else if (suffix == "rev") annotated_dir = 1;
          else throw PlatFileError(lineno, "bad hop direction ':" + suffix + "'");
          name.resize(colon);
        }
        const LinkIdx l = need_link(name, lineno);
        bool found = false;
        bool link_has_edge = false;
        for (int e = 0; e < p.edge_count() && !found; ++e) {
          const auto& edge = p.edge(e);
          if (edge.link != l) continue;
          link_has_edge = true;
          if (edge.a == at) {
            hops.push_back(Hop{l, 0});
            at = edge.b;
            found = true;
          } else if (edge.b == at) {
            hops.push_back(Hop{l, 1});
            at = edge.a;
            found = true;
          }
        }
        if (!found) {
          if (link_has_edge)
            throw PlatFileError(lineno, "link '" + name + "' does not continue the path");
          hops.push_back(Hop{l, annotated_dir});  // fabric link, stay in place
        }
      }
      if (at != dst) throw PlatFileError(lineno, "route does not end at '" + tok[2] + "'");
      p.set_route(src, dst, std::move(hops));
    } else if (kw == "hier") {
      if (tok.size() != 1 && !(tok.size() == 3 && tok[1] == "trunk"))
        throw PlatFileError(lineno, "expected: hier [trunk <link>]");
      saw_hier = true;
      hier_line = lineno;
      trunk_name = tok.size() == 3 ? tok[2] : "";
    } else {
      throw PlatFileError(lineno, "unknown keyword '" + kw + "'");
    }
  }
  if (saw_hier) {
    const LinkIdx trunk = trunk_name.empty() ? -1 : need_link(trunk_name, hier_line);
    if (!p.enable_hierarchical_routing(trunk))
      throw PlatFileError(hier_line,
                          "hier: every host needs exactly one uplink edge to a router");
  }
  return p;
}

std::string render_platform(const Platform& p) {
  std::ostringstream out;
  char buf[160];
  for (int n = 0; n < p.node_count(); ++n) {
    const NodeInfo& info = p.node(n);
    if (info.is_host) {
      std::snprintf(buf, sizeof buf, "host %s speed %.6gGHz ip %s\n", info.name.c_str(),
                    info.speed_hz / 1e9, info.ip.to_string().c_str());
      out << buf;
    } else {
      out << "router " << info.name << "\n";
    }
  }
  for (int l = 0; l < p.link_count(); ++l) {
    const Link& link = p.link(l);
    std::snprintf(buf, sizeof buf, "link %s bw %.6gMbps lat %.6gus\n", link.name.c_str(),
                  link.bandwidth_Bps * 8 / 1e6, link.latency / units::us);
    out << buf;
  }
  for (int e = 0; e < p.edge_count(); ++e) {
    const auto& edge = p.edge(e);
    out << "edge " << p.node(edge.a).name << " " << p.node(edge.b).name << " "
        << p.link(edge.link).name << "\n";
  }
  if (p.hierarchical_routing()) {
    out << "hier";
    if (p.trunk_link() >= 0) out << " trunk " << p.link(p.trunk_link()).name;
    out << "\n";
  }
  // Explicit routes. A symmetric pair (the common case: set_route installs
  // both directions) collapses to one line, skipping the mirrored entry.
  // Fabric links (no edge) carry an explicit :fwd/:rev direction since the
  // parser cannot infer one from the edge walk.
  std::vector<bool> link_has_edge(static_cast<std::size_t>(p.link_count()), false);
  for (int e = 0; e < p.edge_count(); ++e)
    link_has_edge[static_cast<std::size_t>(p.edge(e).link)] = true;
  const auto routes = p.explicit_route_list();
  auto mirror_of = [](const Route& r) {
    std::vector<Hop> rev;
    for (auto it = r.hops.rbegin(); it != r.hops.rend(); ++it)
      rev.push_back(Hop{it->link, 1 - it->dir});
    return rev;
  };
  std::map<std::pair<NodeIdx, NodeIdx>, const Route*> by_pair;
  for (const auto& er : routes) by_pair[{er.src, er.dst}] = er.route;
  for (const auto& er : routes) {
    if (er.src > er.dst) {
      // Emit the reverse direction only when it is not the mirror of an
      // already-emitted forward line.
      const auto fwd = by_pair.find({er.dst, er.src});
      if (fwd != by_pair.end() && fwd->second->hops == mirror_of(*er.route)) continue;
    }
    out << "route " << p.node(er.src).name << " " << p.node(er.dst).name;
    for (const Hop& h : er.route->hops) {
      out << " " << p.link(h.link).name;
      if (!link_has_edge[static_cast<std::size_t>(h.link)] && h.dir != 0) out << ":rev";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace pdc::net
