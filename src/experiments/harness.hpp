// Compatibility shim over the declarative scenario API (src/scenario/) for
// reproducing the paper's evaluation (§IV).
//
// Historically this harness owned deployment and hand-rolled one driver per
// figure; all of that now lives in scenario::Runner. The names below map
// the paper's three fixed platforms and free functions onto ScenarioSpecs
// so older call sites (ablation benches, external users) keep working —
// new code should build ScenarioSpecs directly.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "scenario/runner.hpp"

namespace pdc::experiments {

/// A deployed simulation: engine + platform + booted P2PDC overlay.
/// (Subsumed by scenario::Deployment; alias kept for source compatibility.)
using Deployment = scenario::Deployment;

/// Problem sizing calibrated so the simulated times land in the paper's
/// ranges (O0 on 2 peers ~= 42 s at 3 GHz with the measured ~84 ns/point
/// block cost). PDC_QUICK=1 in the environment shrinks everything for smoke
/// runs (support::env_flag).
struct PaperSetup {
  int grid_n = 1538;   // 1536x1536 interior
  int iters = 428;     // fixed iteration budget (also the trace target)
  int rcheck = 4;      // residual reduction period == scale-up chunk
  int bench_n = 66;    // block-benchmark instance
  int bench_iters = 9;
  int bench_rcheck = 3;
  double omega = 0.9;

  obstacle::ObstacleProblem problem() const;
  obstacle::ObstacleProblem bench_problem() const;

  /// The scenario RunSpec equivalent of this sizing.
  scenario::RunSpec run_spec(int peers, ir::OptLevel level) const;

  /// Reads PDC_QUICK from the environment.
  static PaperSetup from_env();
};

enum class Topology { Grid5000, Lan, Xdsl };
const char* topology_name(Topology t);

/// The scenario PlatformSpec for one of the paper's platforms.
scenario::PlatformSpec topology_platform(Topology t);

/// Builds the platform for `topo`, boots server + tracker(s) + submitter +
/// `workers` worker peers (for Xdsl, workers are spread across the 1024
/// xDSL nodes of the Daisy topology, seed-deterministic).
std::unique_ptr<Deployment> deploy(Topology topo, int workers);

/// dPerf block-benchmark cost profile for a level (memoized per process).
const obstacle::CostProfile& cost_profile(ir::OptLevel level, const PaperSetup& setup);

/// Runs the reference execution (Phantom values: full event schedule, no
/// numerics) and returns the solve span in seconds.
double reference_seconds(Topology topo, int peers, ir::OptLevel level,
                         const PaperSetup& setup);

/// Generates per-rank dPerf traces (sampled + scaled up) for a peer count.
std::vector<dperf::Trace> traces_for(int peers, ir::OptLevel level, const PaperSetup& setup);

/// Replays traces on a topology; returns the predicted solve seconds.
double predicted_seconds(Topology topo, int peers, ir::OptLevel level,
                         const PaperSetup& setup, std::vector<dperf::Trace> traces);

/// The peer counts of the paper: 2^n for n in 1..5.
const std::vector<int>& paper_peer_counts();

}  // namespace pdc::experiments
