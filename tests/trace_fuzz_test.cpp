// Property/fuzz tests for the dPerf trace text format, mirroring
// spec_fuzz_test.cpp: random traces must survive save -> load -> save
// byte-identically, a corpus of malformed documents must be rejected with a
// "trace parse error" diagnostic instead of crashing, and random token-level
// mutations of valid documents must never produce a trace that re-renders
// differently from what was parsed. The CI ASan job runs these with a fixed
// iteration budget (PDC_FUZZ_ITERS).
#include "dperf/trace.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "support/env.hpp"
#include "support/rng.hpp"

namespace pdc {
namespace {

int fuzz_iters() { return env_int("PDC_FUZZ_ITERS", 150); }

dperf::Trace random_trace(Rng& rng) {
  dperf::Trace t;
  t.nprocs = static_cast<int>(rng.uniform_int(1, 16));
  t.rank = static_cast<int>(rng.uniform_int(0, t.nprocs - 1));
  t.host_hz = rng.uniform(1e8, 5e9);
  const int events = static_cast<int>(rng.uniform_int(0, 64));
  for (int i = 0; i < events; ++i) {
    dperf::TraceEvent e;
    using K = dperf::TraceEvent::Kind;
    switch (rng.uniform_int(0, 4)) {
      case 0:
        e.kind = K::Compute;
        e.ns = rng.next_u64() % 1000000000ull;
        break;
      case 1:
        e.kind = K::Send;
        e.peer = static_cast<int>(rng.uniform_int(0, t.nprocs - 1));
        e.bytes = rng.uniform(0.0, 1e9);
        e.tag = static_cast<int>(rng.uniform_int(0, 99)) - 50;
        break;
      case 2:
        e.kind = K::Recv;
        e.peer = static_cast<int>(rng.uniform_int(0, t.nprocs - 1));
        e.tag = static_cast<int>(rng.uniform_int(0, 99)) - 50;
        break;
      case 3:
        e.kind = K::Allreduce;
        break;
      default:
        e.kind = K::IterMark;
        e.iter_id = static_cast<long long>(rng.uniform_int(0, 100000));
        break;
    }
    t.events.push_back(e);
  }
  return t;
}

TEST(TraceFuzz, SaveLoadRoundTripsByteIdentically) {
  Rng rng(20260808);
  const int iters = fuzz_iters();
  for (int i = 0; i < iters; ++i) {
    const dperf::Trace t = random_trace(rng);
    const std::string text = dperf::save_trace(t);
    dperf::Trace back;
    try {
      back = dperf::load_trace(text);
    } catch (const std::runtime_error& e) {
      FAIL() << "rejected own output (iter " << i << "): " << e.what() << "\n" << text;
    }
    EXPECT_EQ(back.rank, t.rank);
    EXPECT_EQ(back.nprocs, t.nprocs);
    ASSERT_EQ(back.events.size(), t.events.size());
    for (std::size_t k = 0; k < t.events.size(); ++k)
      EXPECT_TRUE(back.events[k] == t.events[k]) << "event " << k << " differs (iter "
                                                 << i << ")";
    // The canonical text is a fixed point: re-rendering the parsed trace
    // reproduces the input byte for byte (%.17g round-trips the doubles).
    EXPECT_EQ(dperf::save_trace(back), text) << "iter " << i;
  }
}

TEST(TraceFuzz, RejectsMalformedDocuments) {
  const char* corpus[] = {
      "",
      "dperf-trace v2\nproc 0 of 1 hz 1e9\nend\n",
      "dperf-trace v1\n",
      "dperf-trace v1\nproc 0 of 1 hz 1e9\n",               // missing end
      "dperf-trace v1\nproc zero of 1 hz 1e9\nend\n",
      "dperf-trace v1\nproc 0 from 1 hz 1e9\nend\n",
      "dperf-trace v1\nproc 0 of 1 hz 1e9 extra\nend\n",    // trailing token
      "dperf-trace v1\nproc 0 of 0 hz 1e9\nend\n",          // nprocs <= 0
      "dperf-trace v1\nproc 0 of -3 hz 1e9\nend\n",
      "dperf-trace v1\nproc 2 of 2 hz 1e9\nend\n",          // rank out of range
      "dperf-trace v1\nproc -1 of 2 hz 1e9\nend\n",
      "dperf-trace v1\nproc 0 of 1 hz 0\nend\n",            // hz not positive
      "dperf-trace v1\nproc 0 of 1 hz -2e9\nend\n",
      "dperf-trace v1\nproc 0 of 1 hz 1e9\nteleport 3\nend\n",
      "dperf-trace v1\nproc 0 of 1 hz 1e9\ncompute\nend\n",
      "dperf-trace v1\nproc 0 of 1 hz 1e9\ncompute ten\nend\n",
      "dperf-trace v1\nproc 0 of 1 hz 1e9\nsend 0 64 flag 1\nend\n",
      "dperf-trace v1\nproc 0 of 1 hz 1e9\nsend 0 64 tag\nend\n",
      "dperf-trace v1\nproc 0 of 2 hz 1e9\nsend 2 64 tag 1\nend\n",  // peer >= nprocs
      "dperf-trace v1\nproc 0 of 2 hz 1e9\nsend -1 64 tag 1\nend\n",
      "dperf-trace v1\nproc 0 of 2 hz 1e9\nrecv 2 tag 1\nend\n",
      "dperf-trace v1\nproc 0 of 2 hz 1e9\nrecv -1 tag 1\nend\n",
      "dperf-trace v1\nproc 0 of 1 hz 1e9\nrecv 0 label 1\nend\n",
      "dperf-trace v1\nproc 0 of 1 hz 1e9\niter x\nend\n",
  };
  for (const char* doc : corpus) {
    try {
      dperf::load_trace(doc);
      FAIL() << "accepted malformed document:\n" << doc;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("trace parse error"), std::string::npos)
          << e.what();
    }
  }
}

// Token-splice fuzz: mutate random positions of a valid document. The parser
// must either reject with a trace parse error or accept a trace whose
// re-rendering is a parse fixed point — never crash, never accept garbage it
// cannot reproduce.
TEST(TraceFuzz, SplicedDocumentsNeverCrashTheParser) {
  Rng rng(987654321);
  const char* tokens[] = {"proc",  "of",  "hz",   "compute", "send", "recv",
                          "tag",   "end", "iter", "-1",      "0",    "99",
                          "1e309", "nan", "x",    ""};
  const int iters = fuzz_iters();
  for (int i = 0; i < iters; ++i) {
    std::string text = dperf::save_trace(random_trace(rng));
    const int splices = static_cast<int>(rng.uniform_int(1, 3));
    for (int s = 0; s < splices; ++s) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(text.size())));
      const char* tok = tokens[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(std::size(tokens)) - 1))];
      if (rng.bernoulli(0.5) && pos < text.size())
        text[pos] = tok[0] != '\0' ? tok[0] : ' ';
      else
        text.insert(pos, tok);
    }
    try {
      const dperf::Trace t = dperf::load_trace(text);
      const std::string canon = dperf::save_trace(t);
      EXPECT_EQ(dperf::save_trace(dperf::load_trace(canon)), canon)
          << "accepted a non-fixed-point document (iter " << i << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("trace parse error"), std::string::npos)
          << e.what();
    }
  }
}

// The hardened extrapolate preconditions: every rejection names the rank and
// echoes sample/target/chunk so batch callers can locate the bad trace.
TEST(TraceFuzz, ExtrapolateRejectionsCarryContext) {
  dperf::Trace t;
  t.rank = 3;
  t.nprocs = 4;
  const auto expect_throw_with = [&](int sample, int target, int chunk) {
    try {
      dperf::extrapolate(t, sample, target, chunk);
      FAIL() << "accepted sample=" << sample << " target=" << target
             << " chunk=" << chunk;
    } catch (const std::runtime_error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("rank 3"), std::string::npos) << msg;
      EXPECT_NE(msg.find("sample " + std::to_string(sample)), std::string::npos) << msg;
      EXPECT_NE(msg.find("target " + std::to_string(target)), std::string::npos) << msg;
      EXPECT_NE(msg.find("chunk " + std::to_string(chunk)), std::string::npos) << msg;
    }
  };
  expect_throw_with(0, 10, 1);    // sample_iters <= 0 (even though target != sample)
  expect_throw_with(-5, -5, 1);   // negative sample rejected before the equality out
  expect_throw_with(6, 12, 0);    // chunk <= 0
  expect_throw_with(6, 12, 3);    // sample < 3*chunk
  expect_throw_with(9, 8, 3);     // target < sample
  expect_throw_with(9, 13, 3);    // remainder not a multiple of chunk
  expect_throw_with(9, 12, 3);    // marker count mismatch (t has no markers)
}

}  // namespace
}  // namespace pdc
