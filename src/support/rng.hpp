// Deterministic pseudo-random number generation.
//
// All stochastic choices in the simulator (xDSL last-mile bandwidths, churn
// schedules, property-test inputs) flow through this generator so that runs
// are reproducible from a single seed.
#pragma once

#include <cstdint>
#include <vector>

namespace pdc {

/// SplitMix64: tiny, fast, well-distributed; perfectly adequate for workload
/// generation (not for cryptography).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_u64() % span);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    const double u = static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
    return lo + u * (hi - lo);
  }

  bool bernoulli(double p) { return uniform(0.0, 1.0) < p; }

  /// Fisher-Yates shuffle.
  template <class T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(next_u64() % i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child stream (for per-actor determinism).
  Rng split() { return Rng{next_u64() ^ 0xD1B54A32D192ED03ULL}; }

 private:
  std::uint64_t state_;
};

}  // namespace pdc
