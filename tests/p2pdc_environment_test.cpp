// End-to-end tests of the P2PDC runtime: submit -> collect -> hierarchical
// allocation -> per-rank execution with P2PSAP -> result gathering.
#include "p2pdc/environment.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "net/builders.hpp"

namespace pdc::p2pdc {
namespace {

struct EnvFixture {
  explicit EnvFixture(int hosts) : plat(net::build_star(net::bordeplage_cluster_spec(hosts))) {
    env = std::make_unique<Environment>(eng, plat);
    env->boot_server(plat.host(0));
    env->boot_tracker(plat.host(1), true);
    // Host 2 is the submitter; hosts 3.. are workers.
    env->boot_peer(plat.host(2), overlay::PeerResources{3e9, 2e9, 80e9});
    for (int i = 3; i < hosts; ++i)
      env->boot_peer(plat.host(i), overlay::PeerResources{3e9, 2e9, 80e9});
    env->finish_bootstrap();
  }

  sim::Engine eng;
  net::Platform plat;
  std::unique_ptr<Environment> env;
};

TEST(Environment, RunsTrivialComputation) {
  EnvFixture f{8};
  TaskSpec spec;
  spec.peers_needed = 4;
  spec.subtask_bytes = 4096;
  spec.result_bytes = 512;
  auto result = f.env->run_computation(f.plat.host(2), spec, [](PeerContext& ctx) -> sim::Task<void> {
    co_await ctx.compute(0.5);
    ctx.set_result({static_cast<double>(ctx.rank()) * 10.0});
  });
  ASSERT_TRUE(result.ok) << result.failure;
  EXPECT_EQ(result.peers, 4);
  EXPECT_EQ(result.groups, 1);
  ASSERT_EQ(result.results.size(), 4u);
  for (int r = 0; r < 4; ++r) {
    ASSERT_EQ(result.results.at(r).size(), 1u);
    EXPECT_DOUBLE_EQ(result.results.at(r)[0], r * 10.0);
  }
  // Phases are ordered and non-negative.
  EXPECT_GE(result.collection_time(), 0.0);
  EXPECT_GE(result.allocation_time(), 0.0);
  EXPECT_GT(result.total_time(), 0.5);  // at least the modelled compute
}

TEST(Environment, FailsCleanlyWhenPeersInsufficient) {
  EnvFixture f{6};  // only 3 workers available
  TaskSpec spec;
  spec.peers_needed = 16;
  auto result = f.env->run_computation(f.plat.host(2), spec, [](PeerContext&) -> sim::Task<void> {
    ADD_FAILURE() << "must not run";
    co_return;
  });
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.failure.find("not enough peers"), std::string::npos);
  // Reserved peers were released again.
  f.eng.run_until(f.eng.now() + 10.0);
  for (overlay::PeerActor* p : f.env->over().peers()) EXPECT_FALSE(p->busy());
}

TEST(Environment, MultipleGroupsWithSmallCmax) {
  EnvFixture f{14};
  TaskSpec spec;
  spec.peers_needed = 10;
  spec.cmax = 4;
  auto result = f.env->run_computation(f.plat.host(2), spec, [](PeerContext& ctx) -> sim::Task<void> {
    ctx.set_result({1.0});
    co_return;
  });
  ASSERT_TRUE(result.ok) << result.failure;
  EXPECT_GE(result.groups, 3);  // at least ceil(10/4); proximity splits may add more
  EXPECT_LE(result.groups, 5);
  EXPECT_EQ(result.results.size(), 10u);
}

TEST(Environment, RanksExchangeMessages) {
  EnvFixture f{8};
  TaskSpec spec;
  spec.peers_needed = 4;
  auto result = f.env->run_computation(f.plat.host(2), spec, [](PeerContext& ctx) -> sim::Task<void> {
    // Ring: send my rank right, receive from left, report what I saw.
    const int n = ctx.nprocs();
    const int right = (ctx.rank() + 1) % n;
    const int left = (ctx.rank() + n - 1) % n;
    co_await ctx.send(right, 42, 1024,
                      std::make_shared<std::vector<double>>(1, static_cast<double>(ctx.rank())));
    const auto msg = co_await ctx.recv(left, 42);
    ctx.set_result({(*msg.values)[0]});
  });
  ASSERT_TRUE(result.ok) << result.failure;
  for (int r = 0; r < 4; ++r)
    EXPECT_DOUBLE_EQ(result.results.at(r)[0], static_cast<double>((r + 3) % 4));
}

TEST(Environment, AllreduceMaxIsGlobalAcrossGroups) {
  EnvFixture f{14};
  TaskSpec spec;
  spec.peers_needed = 9;
  spec.cmax = 3;  // 3 groups -> exercises the two-level reduction
  auto result = f.env->run_computation(f.plat.host(2), spec, [](PeerContext& ctx) -> sim::Task<void> {
    const double local = ctx.rank() == 5 ? 99.5 : static_cast<double>(ctx.rank());
    const double global = co_await ctx.allreduce_max(local);
    ctx.set_result({global});
  });
  ASSERT_TRUE(result.ok) << result.failure;
  EXPECT_GE(result.groups, 3);  // multi-group: exercises the two-level tree
  for (int r = 0; r < 9; ++r) EXPECT_DOUBLE_EQ(result.results.at(r)[0], 99.5);
}

TEST(Environment, RepeatedAllreducesStayConsistent) {
  EnvFixture f{10};
  TaskSpec spec;
  spec.peers_needed = 6;
  spec.cmax = 3;
  auto result = f.env->run_computation(f.plat.host(2), spec, [](PeerContext& ctx) -> sim::Task<void> {
    std::vector<double> seen;
    for (int k = 0; k < 5; ++k) {
      const double g = co_await ctx.allreduce_max(static_cast<double>(ctx.rank() + 10 * k));
      seen.push_back(g);
    }
    ctx.set_result(std::move(seen));
  });
  ASSERT_TRUE(result.ok) << result.failure;
  for (int r = 0; r < 6; ++r)
    for (int k = 0; k < 5; ++k)
      EXPECT_DOUBLE_EQ(result.results.at(r)[static_cast<std::size_t>(k)], 5.0 + 10 * k);
}

TEST(Environment, AsynchronousSchemeDeliversLatestValue) {
  EnvFixture f{8};
  TaskSpec spec;
  spec.peers_needed = 2;
  spec.scheme = p2psap::Scheme::Asynchronous;
  auto result = f.env->run_computation(f.plat.host(2), spec, [](PeerContext& ctx) -> sim::Task<void> {
    if (ctx.rank() == 0) {
      // Burst of updates; only the last should be visible once settled.
      for (int i = 1; i <= 5; ++i)
        co_await ctx.send(1, 7, 256, std::make_shared<std::vector<double>>(1, i * 1.0));
      co_await ctx.compute(1.0);
    } else {
      co_await ctx.compute(1.0);  // let the burst land
      const auto m = ctx.try_recv(0, 7);
      ctx.set_result({m && m->values ? (*m->values)[0] : -1.0});
    }
  });
  ASSERT_TRUE(result.ok) << result.failure;
  EXPECT_DOUBLE_EQ(result.results.at(1)[0], 5.0);
}

TEST(Environment, FlatAllocationSlowerThanHierarchicalForManyPeers) {
  // The paper's §III-C argument: succession of connections at the submitter
  // vs parallel distribution through coordinators.
  auto run = [&](AllocationMode mode) {
    EnvFixture f{40};
    TaskSpec spec;
    spec.peers_needed = 32;
    spec.cmax = 8;
    spec.allocation = mode;
    // Small subtasks: the cost is dominated by the succession of
    // per-peer connection round trips, which coordinators parallelize.
    spec.subtask_bytes = 64e3;
    spec.result_bytes = 1024;
    auto result = f.env->run_computation(f.plat.host(2), spec,
                                         [](PeerContext& ctx) -> sim::Task<void> {
                                           co_await ctx.compute(0.01);
                                         });
    EXPECT_TRUE(result.ok) << result.failure;
    return result.allocation_time();
  };
  const Time hier = run(AllocationMode::Hierarchical);
  const Time flat = run(AllocationMode::Flat);
  EXPECT_LT(hier, flat) << "hierarchical allocation should be faster";
}

TEST(Environment, PeersReleasedAfterComputation) {
  EnvFixture f{8};
  TaskSpec spec;
  spec.peers_needed = 4;
  auto result = f.env->run_computation(f.plat.host(2), spec,
                                       [](PeerContext& ctx) -> sim::Task<void> {
                                         co_await ctx.compute(0.1);
                                       });
  ASSERT_TRUE(result.ok);
  f.eng.run_until(f.eng.now() + 10.0);
  for (overlay::PeerActor* p : f.env->over().peers()) EXPECT_FALSE(p->busy());
}

TEST(Environment, BackToBackComputationsReusePeers) {
  EnvFixture f{8};
  TaskSpec spec;
  spec.peers_needed = 4;
  auto main = [](PeerContext& ctx) -> sim::Task<void> {
    co_await ctx.compute(0.1);
    ctx.set_result({1.0});
  };
  auto r1 = f.env->run_computation(f.plat.host(2), spec, main);
  ASSERT_TRUE(r1.ok) << r1.failure;
  auto r2 = f.env->run_computation(f.plat.host(2), spec, main, /*warmup=*/10.0);
  ASSERT_TRUE(r2.ok) << r2.failure;
  EXPECT_EQ(r2.results.size(), 4u);
}

TEST(Environment, SubtaskBytesShapeAllocationTime) {
  auto run = [&](double subtask_bytes) {
    EnvFixture f{10};
    TaskSpec spec;
    spec.peers_needed = 6;
    spec.subtask_bytes = subtask_bytes;
    auto result = f.env->run_computation(f.plat.host(2), spec,
                                         [](PeerContext& ctx) -> sim::Task<void> {
                                           co_await ctx.compute(0.01);
                                         });
    EXPECT_TRUE(result.ok) << result.failure;
    return result.allocation_time();
  };
  EXPECT_LT(run(1024), run(50e6));
}

}  // namespace
}  // namespace pdc::p2pdc
