// Executes an expanded campaign run matrix across a support/ThreadPool,
// aggregates per-grid-point statistics over repetitions, and serializes a
// CampaignReport as JSON and CSV. Each run is fully independent — it owns
// its own sim engine, platform and booted p2pdc::Environment via
// scenario::Runner — so runs parallelize without sharing simulator state;
// the only cross-run state is the memoized dPerf cost-profile cache (now
// mutex-guarded and pre-warmed here) and the logger (thread-safe, lines
// tagged with the run key).
//
// Resumability: with an output directory set, every completed run is
// persisted as <out_dir>/runs/<key>.json (written to a temp name and
// renamed, so partial files are never trusted). On restart, records that
// parse cleanly and carry no error are loaded instead of re-executed.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "campaign/spec.hpp"
#include "scenario/runner.hpp"
#include "support/json.hpp"
#include "support/stats.hpp"

namespace pdc::campaign {

struct ExecutorOptions {
  /// Concurrent runs. 1 executes inline on the calling thread with no pool,
  /// preserving exact sequential semantics.
  int jobs = 1;
  /// Where run records and the report land; empty = in-memory only
  /// (no persistence, no resume).
  std::string out_dir;
  /// Skip runs whose completed record already sits in out_dir/runs/.
  bool resume = true;
  /// Live per-run progress lines on stderr.
  bool progress = false;
  /// Deterministic shard of the run matrix this executor owns (--shard i/n):
  /// only runs with index % shard_count == shard_index are executed. Shard
  /// processes may share one out_dir — the atomic temp-write+rename record
  /// protocol makes runs/ a lock-free work queue (records land whole or not
  /// at all, and resume skips work another process finished) — or write to
  /// separate directories merged afterwards. Sharded sessions write their
  /// partial report as report-shard<i>of<n>.json so concurrent shards never
  /// race on report.json; campaign::merge builds the full report.
  int shard_index = 0;
  int shard_count = 1;
  /// Write a Chrome-trace JSON per executed run as <trace_dir>/<key>.trace.json
  /// (--trace-dir / PDC_TRACE_DIR; empty = untraced). Purely an execution
  /// knob: run keys, records and the report are unaffected.
  std::string trace_dir;
};

/// One run's outcome: the serialized RunRecord (written to or loaded from
/// the output directory) plus the numeric metrics extracted from it. The
/// extraction goes through the JSON round-trip for executed and resumed
/// runs alike, so aggregation sees one representation.
struct Outcome {
  CampaignRun run;
  bool skipped = false;        // loaded from a previous session's record
  std::string error;           // non-empty when the run failed
  double wall_seconds = 0;     // this session's execution time (0 if skipped)
  std::string record_json;     // complete RunRecord document
  std::map<std::string, double> metrics;  // e.g. "reference_solve_seconds"

  bool ok() const { return error.empty(); }
};

/// Aggregation of one grid point over its repetitions.
struct PointReport {
  std::string key;
  std::string platform_label;
  std::string platform_kind;
  int peers = 0;
  std::string opt;
  std::string scheme;
  std::string alloc;
  std::uint64_t seed = 0;
  int repetitions = 0;  // runs that completed without error
  int errors = 0;
  std::map<std::string, Summary> metrics;
};

struct CampaignReport {
  std::string name;
  int jobs = 1;
  std::size_t total = 0;     // expanded grid size
  std::size_t executed = 0;  // runs executed this session
  std::size_t skipped = 0;   // resumed from existing records
  std::size_t errors = 0;
  double wall_seconds = 0;   // this session's wall-clock
  std::vector<PointReport> points;

  /// `canonical` omits the session-dependent fields (jobs, executed,
  /// skipped, wall_seconds), leaving a document that is a pure function of
  /// the run records — any complete partition of the matrix (one -j1
  /// process, two shard processes, a resumed session) merges to the same
  /// bytes. The merge path writes this form.
  std::string to_json(bool canonical = false) const;
  /// Long format: one row per (grid point, metric); see examples/README.md
  /// for the column list. Contains no session fields, so it is already
  /// canonical.
  std::string to_csv() const;
};

/// Aggregates per-run outcomes (in expansion order) into a report: grid
/// points in first-appearance order, per-point metric summaries over the
/// successful repetitions, error counts. Shared by the live executor, the
/// shard-merge path and the serve daemon's campaign handler.
CampaignReport aggregate_outcomes(const std::string& campaign_name,
                                  const std::vector<Outcome>& outcomes, int jobs,
                                  double wall_seconds);

class Executor {
 public:
  explicit Executor(CampaignSpec spec, ExecutorOptions opts = {});

  const CampaignSpec& spec() const { return spec_; }
  const std::vector<CampaignRun>& runs() const { return runs_; }

  /// Executes (or resumes) the whole matrix, writes records/report when an
  /// output directory is configured, and returns the aggregated report.
  /// Individual run failures — including a failed record write inside a
  /// worker — are recorded, not thrown; only setup errors (cannot create
  /// the output directory, unwritable report) throw.
  CampaignReport execute();

  /// Merges completed run directories into the full, unsharded report:
  /// every record of the expanded matrix is loaded from the first of
  /// `input_dirs` that holds it (a directory or its runs/ subdirectory;
  /// failed records are loaded too and counted as errors, a missing record
  /// becomes a synthetic "missing record" error), copied into
  /// out_dir/runs/ when an output directory is configured, and aggregated
  /// exactly like a live session. Writes report.json / report.csv in the
  /// canonical form, which is byte-identical to the canonical report of a
  /// single-process -j1 execution of the same campaign. Requires
  /// shard_count == 1 (the merge spans the whole matrix); throws
  /// std::logic_error otherwise.
  CampaignReport merge(const std::vector<std::string>& input_dirs);

  /// Per-run outcomes in expansion order; valid after execute() / merge().
  const std::vector<Outcome>& outcomes() const { return outcomes_; }

 private:
  std::string record_path(const CampaignRun& run) const;
  bool try_resume(const CampaignRun& run, Outcome& out) const;
  void execute_one(const CampaignRun& run, Outcome& out) const;

  CampaignSpec spec_;
  ExecutorOptions opts_;
  std::vector<CampaignRun> runs_;
  std::vector<Outcome> outcomes_;
};

/// Extracts the aggregatable numeric metrics from one RunRecord document
/// (reference/predicted solve+total seconds, prediction_error). Exposed for
/// tests and report tooling.
std::map<std::string, double> record_metrics(const JsonValue& record);

}  // namespace pdc::campaign
