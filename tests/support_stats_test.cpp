#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/rng.hpp"

namespace pdc {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.total(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.total(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng{3};
  RunningStats all, a, b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-10, 10);
    all.add(x);
    (i % 3 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  b.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.0);
}

// The reverse direction: merging an empty accumulator into a populated one
// must leave every field — including min/max/total, which have no neutral
// element inside the struct — untouched.
TEST(RunningStats, MergeEmptyIntoPopulatedIsIdentity) {
  RunningStats a;
  a.add(-2.0);
  a.add(5.0);
  a.add(3.0);
  const RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  EXPECT_DOUBLE_EQ(a.min(), -2.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
  EXPECT_DOUBLE_EQ(a.total(), 6.0);
  EXPECT_NEAR(a.stddev(), std::sqrt(13.0), 1e-12);
}

TEST(Quantile, InterpolatesLinearly) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.125), 1.5);
}

TEST(Quantile, HandlesDegenerateInputs) {
  EXPECT_EQ(quantile({}, 0.5), 0.0);
  EXPECT_EQ(quantile({7.0}, 0.99), 7.0);
}

// The extremes must hit the true min/max even when the input arrives
// unsorted (quantile sorts its copy) and p lands exactly on the ends.
TEST(Quantile, ExtremesOnUnsortedInput) {
  const std::vector<double> v{9.0, -4.0, 2.5, 7.0, 0.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), -4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 9.0);
  EXPECT_EQ(quantile({3.0}, 0.0), 3.0);
  EXPECT_EQ(quantile({3.0}, 1.0), 3.0);
}

TEST(Summary, EmptyIsAllZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.min, 0.0);
  EXPECT_EQ(s.max, 0.0);
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.p95, 0.0);
  EXPECT_EQ(s.ci95_half, 0.0);
}

TEST(Summary, SingleSampleHasNoSpread) {
  const Summary s = summarize({4.25});
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 4.25);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 4.25);
  EXPECT_DOUBLE_EQ(s.max, 4.25);
  EXPECT_DOUBLE_EQ(s.p50, 4.25);
  EXPECT_DOUBLE_EQ(s.p95, 4.25);
  EXPECT_EQ(s.ci95_half, 0.0) << "no confidence interval from one sample";
}

TEST(Summary, ConstantSamplesHaveZeroSpread) {
  const Summary s = summarize({3.0, 3.0, 3.0, 3.0, 3.0});
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 3.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_DOUBLE_EQ(s.p95, 3.0);
  EXPECT_EQ(s.ci95_half, 0.0);
}

TEST(Summary, KnownSample) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_DOUBLE_EQ(s.p95, 4.8);
  // Student-t, df = 4: 2.776 * s / sqrt(5).
  EXPECT_NEAR(s.ci95_half, 2.776 * std::sqrt(2.5) / std::sqrt(5.0), 1e-9);
}

TEST(Summary, StudentTTable) {
  EXPECT_EQ(student_t_95(0), 0.0);
  EXPECT_DOUBLE_EQ(student_t_95(1), 12.706);
  EXPECT_DOUBLE_EQ(student_t_95(4), 2.776);
  EXPECT_DOUBLE_EQ(student_t_95(30), 2.042);
  EXPECT_DOUBLE_EQ(student_t_95(1000), 1.960);
}

}  // namespace
}  // namespace pdc
