// Campaign-throughput microbench, seeding the scale trajectory: how many
// independent scenario runs per wall-clock second can the campaign executor
// sustain as the worker count grows? The grid is 16 fully independent
// reference runs (peers x seeds on the LAN model, PDC_QUICK-class sizing),
// each owning its own engine + platform + booted environment, so the
// workload is embarrassingly parallel: on an n-core machine -jn approaches
// n-times the -j1 rate (>= 3x at -j4); on this container see the emitted
// "hardware_concurrency" — a 1-core box caps every job count near 1x.
//
// Emits BENCH_campaign.json (pass a path as argv[1] to redirect;
// --jobs=1,2,4 overrides the measured job counts).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/executor.hpp"
#include "support/json.hpp"

namespace {

using namespace pdc;

campaign::CampaignSpec bench_campaign() {
  campaign::CampaignSpec camp;
  camp.name = "micro-campaign";
  camp.base.name = "micro-campaign";
  camp.base.platform = scenario::PlatformSpec::lan();
  // mode=reference: every run is a full phantom simulation — strictly
  // per-run CPU work. (mode=both would hit the process-wide trace memo,
  // and later job counts would measure memo-hot runs instead of real
  // throughput; the cost-profile memo is pre-warmed below for the same
  // reason, so it is out of the measurement entirely.)
  camp.base.run.mode = scenario::Mode::Reference;
  // Fixed quick-class sizing (independent of PDC_QUICK) so emitted numbers
  // are comparable across environments. Phantom-mode cost is event count
  // (peers x iterations, not grid points), so weight comes from iters and
  // the peer axis: ~0.2 s of simulation per run.
  camp.base.run.grid_n = 258;
  camp.base.run.iters = 2000;
  camp.base.run.bench_n = 34;
  camp.base.run.bench_iters = 5;
  camp.base.run.bench_rcheck = 2;
  camp.peers = {8, 12, 16, 24};
  camp.seeds = {11, 12, 13, 14};  // 4 x 4 = 16 independent runs
  return camp;
}

struct Result {
  int jobs = 0;
  std::size_t runs = 0;
  double wall_seconds = 0;
  double runs_per_sec = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_campaign.json";
  std::vector<int> job_counts{1, 2, 4};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      job_counts.clear();
      std::istringstream in(argv[i] + 7);
      std::string item;
      while (std::getline(in, item, ','))
        if (!item.empty()) job_counts.push_back(std::atoi(item.c_str()));
    } else {
      out_path = argv[i];
    }
  }

  const campaign::CampaignSpec camp = bench_campaign();
  // Derive the shared dPerf cost profile once, outside the timed window, so
  // every job count measures pure run throughput.
  scenario::cost_profile(camp.base.run.level, camp.base.run);

  std::vector<Result> results;
  for (int jobs : job_counts) {
    campaign::ExecutorOptions opts;
    opts.jobs = jobs;
    campaign::Executor executor{camp, opts};
    const auto t0 = std::chrono::steady_clock::now();
    const campaign::CampaignReport report = executor.execute();
    const auto t1 = std::chrono::steady_clock::now();
    if (report.errors != 0) {
      std::fprintf(stderr, "campaign had %zu failed runs\n", report.errors);
      return 1;
    }
    Result r;
    r.jobs = jobs;
    r.runs = report.total;
    r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
    r.runs_per_sec = r.wall_seconds > 0 ? static_cast<double>(r.runs) / r.wall_seconds : 0;
    std::printf("-j%-2d  %2zu runs  %8.3f s  %8.2f runs/s\n", r.jobs, r.runs,
                r.wall_seconds, r.runs_per_sec);
    std::fflush(stdout);
    results.push_back(r);
  }

  const double base_rate = results.empty() ? 0 : results.front().runs_per_sec;
  pdc::JsonWriter w;
  w.begin_object();
  w.kv("bench", "campaign_runs_per_sec");
  w.kv("grid_runs", static_cast<std::int64_t>(camp.total_runs()));
  w.kv("hardware_concurrency",
       static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  w.key("results").begin_array();
  for (const Result& r : results) {
    w.begin_object();
    w.kv("jobs", r.jobs);
    w.kv("wall_seconds", r.wall_seconds);
    w.kv("runs_per_sec", r.runs_per_sec);
    if (base_rate > 0) w.kv("speedup_vs_j1", r.runs_per_sec / base_rate);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  std::FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fputs(w.str().c_str(), f);
  std::fputs("\n", f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
