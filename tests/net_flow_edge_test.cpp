// Additional flow-model and topology edge cases: dynamic reshaping under
// churn, daisy routing properties, star contention patterns.
#include <gtest/gtest.h>

#include "net/builders.hpp"
#include "net/flow.hpp"
#include "sim/process.hpp"
#include "support/rng.hpp"
#include "support/time.hpp"

namespace pdc::net {
namespace {

using namespace pdc::units;

TEST(FlowEdge, ThreeWayShareConvergesToThirds) {
  Platform p;
  const auto a = p.add_host("a", 1e9, Ipv4{10, 0, 0, 1});
  const auto b = p.add_host("b", 1e9, Ipv4{10, 0, 0, 2});
  const auto l = p.add_link("l", 3e6, 0);
  p.connect(a, b, l);
  sim::Engine eng;
  FlowNet netw{eng, p};
  std::vector<Time> done(3, -1);
  for (int i = 0; i < 3; ++i)
    netw.start_flow(a, b, 3e6, [&done, i, &eng] { done[static_cast<std::size_t>(i)] = eng.now(); });
  eng.run();
  for (Time t : done) EXPECT_NEAR(t, 3.0, 1e-9);  // each at 1 MB/s
}

TEST(FlowEdge, StaggeredArrivalsAndDeparturesReshareCorrectly) {
  // One 2 MB/s link; flow A (4 MB) starts at t=0, flow B (1 MB) at t=1.
  // A: 2 MB alone by t=1; shares 1 MB/s until B is done.
  // B: 1 MB at 1 MB/s -> done at t=2. A: 1 MB left at full rate -> 2.5.
  Platform p;
  const auto a = p.add_host("a", 1e9, Ipv4{10, 0, 0, 1});
  const auto b = p.add_host("b", 1e9, Ipv4{10, 0, 0, 2});
  const auto l = p.add_link("l", 2e6, 0);
  p.connect(a, b, l);
  sim::Engine eng;
  FlowNet netw{eng, p};
  Time done_a = -1, done_b = -1;
  netw.start_flow(a, b, 4e6, [&] { done_a = eng.now(); });
  eng.schedule_at(1.0, [&] { netw.start_flow(a, b, 1e6, [&] { done_b = eng.now(); }); });
  eng.run();
  EXPECT_NEAR(done_b, 2.0, 1e-9);
  EXPECT_NEAR(done_a, 2.5, 1e-9);
}

TEST(FlowEdge, RatesObservableMidTransfer) {
  Platform p;
  const auto a = p.add_host("a", 1e9, Ipv4{10, 0, 0, 1});
  const auto b = p.add_host("b", 1e9, Ipv4{10, 0, 0, 2});
  const auto l = p.add_link("l", 4e6, 0);
  p.connect(a, b, l);
  sim::Engine eng;
  FlowNet netw{eng, p};
  const FlowId f1 = netw.start_flow(a, b, 40e6, [] {});
  const FlowId f2 = netw.start_flow(a, b, 40e6, [] {});
  eng.run_until(0.5);
  EXPECT_DOUBLE_EQ(netw.flow_rate(f1), 2e6);
  EXPECT_DOUBLE_EQ(netw.flow_rate(f2), 2e6);
}

TEST(FlowEdge, LatencyPhaseConsumesNoBandwidth) {
  // A flow still in its latency phase must not slow an active flow.
  Platform p;
  const auto a = p.add_host("a", 1e9, Ipv4{10, 0, 0, 1});
  const auto b = p.add_host("b", 1e9, Ipv4{10, 0, 0, 2});
  const auto fast = p.add_link("fast", 1e6, 0);
  p.connect(a, b, fast);
  const auto c = p.add_host("c", 1e9, Ipv4{10, 0, 0, 3});
  const auto slow = p.add_link("slow", 1e6, 10.0);  // 10 s latency
  p.connect(a, c, slow);
  sim::Engine eng;
  FlowNet netw{eng, p};
  Time done = -1;
  netw.start_flow(a, b, 1e6, [&] { done = eng.now(); });
  netw.start_flow(a, c, 1e6, [] {});  // parked in latency for 10 s
  eng.run_until(2.0);
  EXPECT_NEAR(done, 1.0, 1e-9);  // full rate despite the second flow
}

TEST(FlowEdge, ManySmallControlMessagesDrainFast) {
  sim::Engine eng;
  Platform p = build_star(lan_spec(10));
  FlowNet netw{eng, p};
  int done = 0;
  Rng rng{5};
  for (int i = 0; i < 500; ++i) {
    const int s = static_cast<int>(rng.uniform_int(0, 9));
    int d = static_cast<int>(rng.uniform_int(0, 9));
    if (d == s) d = (d + 1) % 10;
    netw.start_flow(p.host(s), p.host(d), 256, [&] { ++done; });
  }
  eng.run();
  EXPECT_EQ(done, 500);
  // 256 B over >=100 Mbps takes ~20 us + ~900 us latency: the whole burst
  // finishes within a simulated second even with contention.
  EXPECT_LT(eng.now(), 1.0);
}

TEST(DaisyRouting, SameDslamIsShorterThanCrossPetal) {
  DaisySpec spec;
  Rng rng{42};
  const Platform p = build_daisy(spec, rng);
  // Hosts 0..28 share the first (oversized) DSLAM.
  const auto& same = p.route(p.host(0), p.host(7));
  EXPECT_EQ(same.hops.size(), 2u);  // two last-mile links through one DSLAM
  // A cross-petal route needs last-mile + DSLAM uplink + petal hops + ring.
  const auto& cross = p.route(p.host(0), p.host(600));
  EXPECT_GT(cross.hops.size(), 6u);
}

TEST(DaisyRouting, RouteLatencyGrowsWithDistance) {
  DaisySpec spec;
  Rng rng{42};
  const Platform p = build_daisy(spec, rng);
  const auto& near = p.route(p.host(0), p.host(7));
  const auto& far = p.route(p.host(0), p.host(600));
  EXPECT_GT(far.latency, near.latency);
  // Both ends pay the DSL line latency.
  EXPECT_GE(near.latency, 2 * spec.last_mile_latency - 1e-12);
}

TEST(StarContention, BackboneBindsWhenManyPairsTalk) {
  // 8 LAN hosts (100 Mbps NICs, 1 Gbps backbone): 8 disjoint pairs would
  // need 8 x 100 Mbps = 800 Mbps < 1 Gbps -> NIC-bound. 16 pairs in the
  // same direction exceed the backbone.
  sim::Engine eng;
  Platform p = build_star(lan_spec(32));
  FlowNet netw{eng, p};
  std::vector<Time> done(16, -1);
  for (int i = 0; i < 16; ++i) {
    netw.start_flow(p.host(i), p.host(16 + i), 12.5e6, [&done, i, &eng] {
      done[static_cast<std::size_t>(i)] = eng.now();
    });  // 12.5 MB = 1 s at NIC speed
  }
  eng.run();
  // 16 flows x 100 Mbps demand = 1.6 Gbps > 1 Gbps backbone: every flow gets
  // 1/16 of the backbone (62.5 Mbps) -> 1.6 s, not the NIC-bound 1.0 s.
  for (Time t : done) EXPECT_NEAR(t, 1.6, 0.01);
}

}  // namespace
}  // namespace pdc::net
