// Fixed-size worker pool for embarrassingly-parallel jobs (one campaign run
// per task). Deliberately minimal: submit fire-and-forget closures, wait for
// the queue to drain. Tasks must not throw — callers that can fail catch
// inside the closure and record the failure (see campaign::Executor).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pdc {

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to at least 1).
  explicit ThreadPool(int threads);

  /// Drains the queue, then joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task; runs as soon as a worker is free.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is executing.
  void wait_idle();

  int size() const { return static_cast<int>(workers_.size()); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // queue non-empty or shutting down
  std::condition_variable idle_cv_;  // queue empty and nothing running
  std::size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace pdc
