#include "net/flow.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>

#include "obs/trace.hpp"
#include "support/log.hpp"

namespace pdc::net {

namespace {
// Bytes below this are considered fully transferred (guards float drift).
constexpr double kByteEpsilon = 1e-6;

// Completion-tie window: flows whose projected completion lands within this
// slack of the firing time complete together. A few ulps of relative slack
// absorbs float drift between lazily-settled projections (arm time vs heap
// key); it must stay >= 2 ulp so a rearm after a short pop always lands
// strictly later, yet small enough that early-completed flows have far less
// than kByteEpsilon bytes left at any realistic rate. The same window,
// converted to bytes at the class rate, absorbs the rounding of the class
// credit counter: credit <= rate * now, so ulp(credit) <= rate * now * 2e-16
// is always inside rate * (cutoff - now).
constexpr Time completion_cutoff(Time now) { return now * (1.0 + 4e-16) + 1e-12; }

constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

FlowNet::FlowNet(sim::Engine& engine, const Platform& platform, Mode mode)
    : engine_(&engine), platform_(&platform), mode_(mode) {
  sync_linkdirs();
  timer_slot_ = engine_->create_timer_slot([this] { on_completion_event(); });
}

FlowNet::~FlowNet() {
  // Free the slot (and its captured `this`) so a queued completion event can
  // never call into a dead FlowNet and the engine can recycle the id.
  engine_->destroy_timer_slot(timer_slot_);
}

void FlowNet::sync_linkdirs() {
  // The platform may gain links after construction; grow the dense mirrors.
  const std::size_t want = platform_->linkdir_count();
  link_scales_.resize(want / 2, 1.0);
  while (linkdirs_.size() < want) {
    const auto link = static_cast<LinkIdx>(linkdirs_.size() / 2);
    LinkDir ld;
    ld.capacity = platform_->link(link).bandwidth_Bps *
                  link_scales_[static_cast<std::size_t>(link)];
    linkdirs_.push_back(std::move(ld));
  }
  if (cap_.size() < want) {
    cap_.resize(want, 0.0);
    nun_.resize(want, 0);
  }
}

void FlowNet::set_link_scale(LinkIdx link, double scale) {
  if (!(scale > 0))
    throw std::invalid_argument("FlowNet::set_link_scale: scale must be > 0");
  sync_linkdirs();
  link_scales_[static_cast<std::size_t>(link)] = scale;
  const double capacity = platform_->link(link).bandwidth_Bps * scale;
  for (int dir = 0; dir < 2; ++dir) {
    const std::size_t li = linkdir_index(Hop{link, dir});
    linkdirs_[li].capacity = capacity;
    mark_dirty(li);
    // A private link's capacity is part of its member's class signature, so
    // a rescale must re-classify the sole member (class split). Shared
    // links are signed by linkdir index; their classes are unaffected.
    if (mode_ == Mode::Incremental && linkdirs_[li].members.size() == 1)
      queue_reclass(linkdirs_[li].members[0].slot);
  }
  ++stats_.link_rescales;
  ++stats_.reshares;
  if (obs::TraceRecorder* tr = obs::trace(); tr != nullptr)
    tr->instant(tr->track("flownet"), "rescale", engine_->now(),
                {{"link", link}, {"scale", scale}});
  if (mode_ == Mode::Reference) {
    reference_reshare();
  } else {
    process_reclass_queue(engine_->now());
    resolve_dirty();
  }
}

double FlowNet::link_scale(LinkIdx link) const {
  const auto i = static_cast<std::size_t>(link);
  return i < link_scales_.size() ? link_scales_[i] : 1.0;
}

FlowNet::Slot FlowNet::alloc_slot() {
  if (!free_slots_.empty()) {
    const Slot s = free_slots_.back();
    free_slots_.pop_back();
    return s;
  }
  flows_.emplace_back();
  return static_cast<Slot>(flows_.size() - 1);
}

void FlowNet::release_slot(Slot slot) {
  Flow& f = flows_[slot];
  id_to_slot_.erase(f.id);
  f.id = 0;
  f.cls = kNoClass;
  f.hops.clear();
  f.link_pos.clear();
  f.on_complete.reset();
  free_slots_.push_back(slot);
  --live_flows_;
}

FlowId FlowNet::start_flow(NodeIdx src, NodeIdx dst, double bytes,
                           sim::EventFn on_complete) {
  ++stats_.flows_started;
  const FlowId id = next_id_++;
  if (obs::TraceRecorder* tr = obs::trace(); tr != nullptr) {
    const obs::TrackId t = tr->track("flownet");
    tr->async_begin(t, "flow", "flow", id, engine_->now(),
                    {{"src", src}, {"dst", dst}, {"bytes", bytes}});
    if (src == dst) tr->async_end(t, "flow", "flow", id, engine_->now());
  }
  if (src == dst) {
    ++stats_.flows_completed;
    stats_.bytes_completed += bytes;
    engine_->post(std::move(on_complete));
    return id;
  }
  const Route& route = platform_->route(src, dst);
  sync_linkdirs();
  const Slot slot = alloc_slot();
  Flow& f = flows_[slot];
  f.id = id;
  f.remaining = std::max(bytes, 0.0);
  f.total_bytes = f.remaining;
  f.rate = 0;
  f.phase = Phase::Latency;
  f.starve_warned = false;
  f.cls = kNoClass;
  f.done_credit = 0;
  f.last_touched = engine_->now();
  f.hops = route.hops;
  f.link_pos.assign(f.hops.size(), 0);
  f.on_complete = std::move(on_complete);
  id_to_slot_.emplace(id, slot);
  ++live_flows_;
  engine_->schedule_after(route.latency, [this, id] {
    auto it = id_to_slot_.find(id);
    if (it == id_to_slot_.end()) return;
    begin_transfer(it->second);
  });
  return id;
}

sim::Task<void> FlowNet::transfer(NodeIdx src, NodeIdx dst, double bytes) {
  // The gate lives on this coroutine's frame: the frame stays suspended on
  // gate.wait() until the completion callback opens it, so the capture is a
  // plain pointer and the whole await is allocation-free (the old
  // shared_ptr<Gate> cost two allocations per transfer — twice per reliable
  // P2PSAP message).
  sim::Gate gate{*engine_};
  start_flow(src, dst, bytes, [g = &gate] { g->open(); });
  co_await gate.wait();
}

std::vector<double> FlowNet::hypothetical_rates(
    const std::vector<std::pair<NodeIdx, NodeIdx>>& endpoints) const {
  // Class-aggregated progressive filling, mirroring resolve_dirty() but
  // against the platform's (churn-rescaled) nominal capacities instead of
  // live flow state: endpoints whose route signatures match (linkdir for
  // batch-shared hops, capacity for batch-private hops) collapse into one
  // class with a multiplicity, so a gather/scatter what-if over 10^4
  // endpoints solves over O(1) classes.
  std::vector<double> rates(endpoints.size(), kInf);
  struct Entry {
    std::vector<Hop> hops;  // copied: the platform's route cache may evict
    std::size_t index;
  };
  std::vector<Entry> entries;
  std::map<std::size_t, double> capacity;   // linkdir -> usable capacity
  std::map<std::size_t, int> cross_count;   // linkdir -> crossings in batch
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    const auto [src, dst] = endpoints[i];
    if (src == dst) continue;
    const Route& route = platform_->route(src, dst);
    Entry e{route.hops, i};
    for (const Hop& h : e.hops) {
      const std::size_t key = linkdir_index(h);
      capacity.emplace(key, platform_->link(h.link).bandwidth_Bps * link_scale(h.link));
      ++cross_count[key];
    }
    entries.push_back(std::move(e));
  }

  struct HypoClass {
    std::vector<SigTok> sig;
    std::vector<std::size_t> shared_links;  // linkdir per SHARED token
    double private_min_cap = kInf;
    std::uint32_t mult = 0;
    std::vector<std::size_t> members;  // endpoint indices
    bool fixed = false;
  };
  std::vector<HypoClass> classes;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> index;
  std::vector<SigTok> sig;
  for (const Entry& e : entries) {
    sig.clear();
    for (const Hop& h : e.hops) {
      const std::size_t key = linkdir_index(h);
      if (cross_count[key] >= 2)
        sig.push_back(SigTok{static_cast<std::uint64_t>(key), TokKind::Shared});
      else
        sig.push_back(
            SigTok{std::bit_cast<std::uint64_t>(capacity[key]), TokKind::Private});
    }
    const std::uint64_t h = hash_sig(sig);
    std::size_t ci = classes.size();
    for (const std::size_t cand : index[h]) {
      if (classes[cand].sig == sig) {
        ci = cand;
        break;
      }
    }
    if (ci == classes.size()) {
      HypoClass c;
      c.sig = sig;
      for (std::size_t p = 0; p < sig.size(); ++p) {
        if (sig[p].kind == TokKind::Shared)
          c.shared_links.push_back(static_cast<std::size_t>(sig[p].v));
        else
          c.private_min_cap =
              std::min(c.private_min_cap, std::bit_cast<double>(sig[p].v));
      }
      classes.push_back(std::move(c));
      index[h].push_back(ci);
    }
    ++classes[ci].mult;
    classes[ci].members.push_back(e.index);
  }

  // Progressive filling over classes, mirroring resolve_dirty(): only
  // batch-shared linkdirs act as link constraints in the scan (their
  // residual capacity and crossing count shrink as classes fix); a
  // batch-private linkdir constrains exactly one class and enters solely
  // through that class's private_min_cap, which leaves the problem with the
  // class. Keeping fixed classes' private links in the scan would wedge
  // `best` at an already-consumed capacity and starve the rest to infinity.
  std::vector<std::size_t> shared_keys;
  for (const auto& [key, n] : cross_count)
    if (n >= 2) shared_keys.push_back(key);
  std::size_t unfixed = classes.size();
  while (unfixed > 0) {
    double best = kInf;
    for (const std::size_t key : shared_keys) {
      const int n = cross_count[key];
      if (n > 0) best = std::min(best, capacity[key] / n);
    }
    for (const HypoClass& c : classes)
      if (!c.fixed) best = std::min(best, c.private_min_cap);
    if (!std::isfinite(best)) break;
    bool fixed_any = false;
    for (HypoClass& c : classes) {
      if (c.fixed) continue;
      bool at_bottleneck = c.private_min_cap <= best * (1 + 1e-12);
      for (const std::size_t key : c.shared_links) {
        if (at_bottleneck) break;
        if (cross_count[key] > 0 &&
            capacity[key] / cross_count[key] <= best * (1 + 1e-12))
          at_bottleneck = true;
      }
      if (!at_bottleneck) continue;
      c.fixed = true;
      --unfixed;
      fixed_any = true;
      for (const std::size_t i : c.members) rates[i] = best;
      for (const std::size_t key : c.shared_links) {
        capacity[key] = std::max(0.0, capacity[key] - best * c.mult);
        cross_count[key] -= static_cast<int>(c.mult);
      }
    }
    if (!fixed_any) break;  // numeric safety
  }
  return rates;
}

double FlowNet::flow_rate(FlowId id) const {
  auto it = id_to_slot_.find(id);
  if (it == id_to_slot_.end()) return 0.0;
  const Flow& f = flows_[it->second];
  if (mode_ == Mode::Incremental)
    return (f.phase == Phase::Transfer && f.cls != kNoClass) ? classes_[f.cls].rate
                                                             : 0.0;
  return f.rate;
}

void FlowNet::mark_dirty(std::size_t linkdir) {
  LinkDir& ld = linkdirs_[linkdir];
  if (!ld.dirty) {
    ld.dirty = true;
    dirty_linkdirs_.push_back(linkdir);
  }
}

void FlowNet::begin_transfer(Slot slot) {
  Flow& f = flows_[slot];
  const Time now = engine_->now();
  f.phase = Phase::Transfer;
  f.last_touched = now;
  ++transfer_flows_;
  for (std::uint32_t i = 0; i < f.hops.size(); ++i) {
    const std::size_t li = linkdir_index(f.hops[i]);
    LinkDir& ld = linkdirs_[li];
    f.link_pos[i] = static_cast<std::uint32_t>(ld.members.size());
    ld.members.push_back(LinkMember{slot, i});
    mark_dirty(li);
    // A link going 1 -> 2 members stops being private: its pre-existing sole
    // member's signature changes (capacity token -> linkdir token).
    if (mode_ == Mode::Incremental && ld.members.size() == 2)
      queue_reclass(ld.members[0].slot);
  }
  ++stats_.reshares;
  if (mode_ == Mode::Reference) {
    reference_reshare();
    return;
  }
  process_reclass_queue(now);
  classify_flow(slot, f.remaining, now);
  resolve_dirty();
}

void FlowNet::remove_membership(Slot slot) {
  Flow& f = flows_[slot];
  --transfer_flows_;
  for (std::uint32_t i = 0; i < f.hops.size(); ++i) {
    const std::size_t li = linkdir_index(f.hops[i]);
    LinkDir& ld = linkdirs_[li];
    const std::uint32_t pos = f.link_pos[i];
    const LinkMember moved = ld.members.back();
    ld.members[pos] = moved;
    ld.members.pop_back();
    if (moved.slot != slot || moved.hop != i)
      flows_[moved.slot].link_pos[moved.hop] = pos;
    mark_dirty(li);
    // A link going 2 -> 1 members becomes private for the survivor.
    if (mode_ == Mode::Incremental && ld.members.size() == 1)
      queue_reclass(ld.members[0].slot);
  }
}

void FlowNet::warn_starved(Flow& f, double remaining) {
  f.starve_warned = true;
  ++stats_.flows_starved;
  PDC_LOG_WARN("FlowNet: flow " + std::to_string(f.id) + " starved (rate 0, " +
               std::to_string(remaining) + " B left): it will never complete");
}

// ---------------------------------------------------------------------------
// Incremental engine: flow classes.

std::uint64_t FlowNet::hash_sig(const std::vector<SigTok>& sig) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (const auto& t : sig) {
    h ^= t.v + static_cast<std::uint64_t>(t.kind) * 0x9e3779b97f4a7c15ull;
    h *= 1099511628211ull;
  }
  return h;
}

void FlowNet::build_signature(const Flow& f) {
  sig_scratch_.clear();
  bool any_shared = false;
  for (const Hop& h : f.hops) {
    const std::size_t li = linkdir_index(h);
    const LinkDir& ld = linkdirs_[li];
    if (ld.members.size() >= 2) {
      sig_scratch_.push_back(SigTok{static_cast<std::uint64_t>(li), TokKind::Shared});
      any_shared = true;
    } else {
      sig_scratch_.push_back(
          SigTok{std::bit_cast<std::uint64_t>(ld.capacity), TokKind::Private});
    }
  }
  // An all-private route contends with nothing: salt it with the flow id so
  // fully disjoint flows keep separate classes (see SigTok).
  if (!any_shared) sig_scratch_.push_back(SigTok{f.id, TokKind::Salt});
}

FlowNet::ClassSlot FlowNet::alloc_class() {
  if (!free_classes_.empty()) {
    const ClassSlot cs = free_classes_.back();
    free_classes_.pop_back();
    return cs;
  }
  classes_.emplace_back();
  return static_cast<ClassSlot>(classes_.size() - 1);
}

void FlowNet::classify_flow(Slot slot, double remaining, Time now) {
  Flow& f = flows_[slot];
  build_signature(f);
  const std::uint64_t h = hash_sig(sig_scratch_);
  ClassSlot cs = kNoClass;
  auto it = class_index_.find(h);
  if (it != class_index_.end()) {
    for (ClassSlot cand = it->second; cand != kNoClass;
         cand = classes_[cand].hash_next) {
      if (classes_[cand].sig == sig_scratch_) {
        cs = cand;
        break;
      }
    }
  }
  if (cs != kNoClass) {
    settle_class(classes_[cs], now);
    ++stats_.class_merges;
  } else {
    cs = alloc_class();
    FlowClass& c = classes_[cs];
    c.sig.assign(sig_scratch_.begin(), sig_scratch_.end());
    c.sig_hash = h;
    c.private_min_cap = kInf;
    c.mult = 0;
    c.rate = 0;
    c.credit = 0;
    c.last_touched = now;
    c.tally_pos.assign(c.sig.size(), 0);
    c.member_heap.clear();
    c.live = true;
    for (std::uint32_t p = 0; p < c.sig.size(); ++p) {
      if (c.sig[p].kind == TokKind::Shared) {
        const auto li = static_cast<std::size_t>(c.sig[p].v);
        c.tally_pos[p] = static_cast<std::uint32_t>(linkdirs_[li].classes.size());
        linkdirs_[li].classes.push_back(ClassCrossing{cs, p});
      } else if (c.sig[p].kind == TokKind::Private) {
        c.private_min_cap =
            std::min(c.private_min_cap, std::bit_cast<double>(c.sig[p].v));
      }
    }
    auto [slot_it, inserted] = class_index_.emplace(h, cs);
    if (!inserted) {
      c.hash_next = slot_it->second;
      slot_it->second = cs;
    } else {
      c.hash_next = kNoClass;
    }
    ++live_classes_;
    stats_.classes_active =
        std::max<std::uint64_t>(stats_.classes_active, live_classes_);
  }
  FlowClass& c = classes_[cs];
  f.cls = cs;
  f.done_credit = c.credit + std::max(remaining, 0.0);
  c.member_heap.push_back(MemberRef{f.done_credit, slot, f.id});
  std::push_heap(c.member_heap.begin(), c.member_heap.end(),
                 [](const MemberRef& a, const MemberRef& b) { return a.done > b.done; });
  ++c.mult;
}

double FlowNet::leave_class(Slot slot, Time now) {
  Flow& f = flows_[slot];
  const ClassSlot cs = f.cls;
  FlowClass& c = classes_[cs];
  settle_class(c, now);
  const double remaining = std::max(0.0, f.done_credit - c.credit);
  f.cls = kNoClass;  // the member_heap entry goes stale and is pruned lazily
  --c.mult;
  if (c.mult == 0) destroy_class(cs);
  return remaining;
}

void FlowNet::destroy_class(ClassSlot cs) {
  FlowClass& c = classes_[cs];
  for (std::uint32_t p = 0; p < c.sig.size(); ++p) {
    if (c.sig[p].kind != TokKind::Shared) continue;
    const auto li = static_cast<std::size_t>(c.sig[p].v);
    auto& tallies = linkdirs_[li].classes;
    const std::uint32_t pos = c.tally_pos[p];
    const ClassCrossing moved = tallies.back();
    tallies[pos] = moved;
    tallies.pop_back();
    if (moved.cls != cs || moved.sig_pos != p)
      classes_[moved.cls].tally_pos[moved.sig_pos] = pos;
  }
  // Unlink from the signature hash chain.
  auto it = class_index_.find(c.sig_hash);
  if (it != class_index_.end()) {
    if (it->second == cs) {
      if (c.hash_next == kNoClass)
        class_index_.erase(it);
      else
        it->second = c.hash_next;
    } else {
      for (ClassSlot prev = it->second; prev != kNoClass;
           prev = classes_[prev].hash_next) {
        if (classes_[prev].hash_next == cs) {
          classes_[prev].hash_next = c.hash_next;
          break;
        }
      }
    }
  }
  if (completion_heap_.contains(cs)) completion_heap_.erase(cs);
  c.sig.clear();
  c.tally_pos.clear();
  c.member_heap.clear();
  c.hash_next = kNoClass;
  c.live = false;
  free_classes_.push_back(cs);
  --live_classes_;
}

void FlowNet::settle_class(FlowClass& c, Time now) {
  if (c.rate > 0 && now > c.last_touched) c.credit += c.rate * (now - c.last_touched);
  c.last_touched = now;
}

bool FlowNet::member_valid(ClassSlot cs, const MemberRef& m) const {
  const Flow& f = flows_[m.slot];
  return f.id == m.id && f.cls == cs && f.done_credit == m.done;
}

Time FlowNet::class_completion_key(ClassSlot cs, Time now) {
  FlowClass& c = classes_[cs];
  auto cmp = [](const MemberRef& a, const MemberRef& b) { return a.done > b.done; };
  while (!c.member_heap.empty() && !member_valid(cs, c.member_heap.front())) {
    std::pop_heap(c.member_heap.begin(), c.member_heap.end(), cmp);
    c.member_heap.pop_back();
  }
  if (c.member_heap.empty()) return kTimeInfinity;
  const double left = c.member_heap.front().done - c.credit;
  if (left <= kByteEpsilon) return now;  // drains at the next event
  if (c.rate <= 0) return kTimeInfinity;  // starved: never completes
  return now + left / c.rate;
}

void FlowNet::queue_reclass(Slot slot) {
  Flow& f = flows_[slot];
  if (f.reclass_epoch == reclass_epoch_) return;
  f.reclass_epoch = reclass_epoch_;
  reclass_queue_.push_back(slot);
}

void FlowNet::process_reclass_queue(Time now) {
  for (const Slot slot : reclass_queue_) {
    Flow& f = flows_[slot];
    if (!f.id || f.phase != Phase::Transfer || f.cls == kNoClass) continue;
    // Skip if the signature is in fact unchanged (e.g. a rescale restored
    // the capacity a private token was built from).
    build_signature(f);
    if (sig_scratch_ == classes_[f.cls].sig) continue;
    const double remaining = leave_class(slot, now);
    classify_flow(slot, remaining, now);
    ++stats_.class_splits;
  }
  reclass_queue_.clear();
  ++reclass_epoch_;
}

void FlowNet::resolve_dirty() {
  const Time now = engine_->now();
  ++epoch_;
  comp_links_.clear();
  affected_classes_.clear();
  bfs_stack_.clear();

  // Affected component: everything reachable from dirty linkdirs over the
  // bipartite linkdir <-> class graph. Classes outside it keep their rates,
  // which is exact because max-min allocations decompose by component.
  // Private linkdirs (single member) are not component links — their
  // capacity enters the solve as the class's private_min_cap scalar — but
  // they still pull their sole member's class into the component.
  auto visit_linkdir = [&](std::size_t li) {
    LinkDir& ld = linkdirs_[li];
    if (ld.visit_epoch == epoch_) return;
    ld.visit_epoch = epoch_;
    if (ld.members.size() >= 2) comp_links_.push_back(li);
    bfs_stack_.push_back(li);
  };
  for (const std::size_t li : dirty_linkdirs_) {
    linkdirs_[li].dirty = false;
    visit_linkdir(li);
  }
  dirty_linkdirs_.clear();
  std::uint64_t member_total = 0;
  auto visit_class = [&](ClassSlot cs) {
    FlowClass& c = classes_[cs];
    if (c.visit_epoch == epoch_) return;
    c.visit_epoch = epoch_;
    affected_classes_.push_back(cs);
    member_total += c.mult;
    for (const SigTok& t : c.sig)
      if (t.kind == TokKind::Shared) visit_linkdir(static_cast<std::size_t>(t.v));
  };
  while (!bfs_stack_.empty()) {
    const std::size_t li = bfs_stack_.back();
    bfs_stack_.pop_back();
    LinkDir& ld = linkdirs_[li];
    if (ld.members.size() == 1)
      visit_class(flows_[ld.members[0].slot].cls);
    else
      for (const ClassCrossing& cc : ld.classes) visit_class(cc.cls);
  }

  stats_.flows_rescanned += member_total;
  if (member_total < transfer_flows_) ++stats_.reshares_partial;
  if (obs::TraceRecorder* tr = obs::trace(); tr != nullptr)
    tr->instant(tr->track("flownet"), "reshare", now,
                {{"rescanned", member_total}});

  // Settle credit under the outgoing rates, then re-solve the component by
  // progressive filling over classes (identical fixing rule to the
  // reference oracle; a fixed class charges each shared link mult x rate).
  private_classes_.clear();
  for (const ClassSlot cs : affected_classes_) {
    FlowClass& c = classes_[cs];
    settle_class(c, now);
    c.rate = 0;
    if (std::isfinite(c.private_min_cap)) private_classes_.push_back(cs);
  }
  for (const std::size_t li : comp_links_) {
    cap_[li] = linkdirs_[li].capacity;
    nun_[li] = static_cast<int>(linkdirs_[li].members.size());
  }
  std::size_t unfixed = affected_classes_.size();
  bool fixed_any = false;
  auto fix_class = [&](ClassSlot cs, double best) {
    FlowClass& c = classes_[cs];
    if (c.fixed_epoch == epoch_) return;
    c.fixed_epoch = epoch_;
    c.rate = best;
    --unfixed;
    fixed_any = true;
    for (const SigTok& t : c.sig) {
      if (t.kind != TokKind::Shared) continue;
      const auto hi = static_cast<std::size_t>(t.v);
      cap_[hi] = std::max(0.0, cap_[hi] - best * c.mult);
      nun_[hi] -= static_cast<int>(c.mult);
    }
  };
  while (unfixed > 0) {
    double best = std::numeric_limits<double>::infinity();
    for (const std::size_t li : comp_links_)
      if (nun_[li] > 0) best = std::min(best, cap_[li] / nun_[li]);
    // Compact away already-fixed classes so the private-cap scan stays
    // proportional to what is still unfixed.
    std::size_t w = 0;
    for (const ClassSlot cs : private_classes_) {
      if (classes_[cs].fixed_epoch == epoch_) continue;
      private_classes_[w++] = cs;
      best = std::min(best, classes_[cs].private_min_cap);
    }
    private_classes_.resize(w);
    if (!std::isfinite(best)) break;  // no constrained classes remain
    fixed_any = false;
    for (const std::size_t li : comp_links_) {
      if (nun_[li] <= 0 || cap_[li] / nun_[li] > best * (1 + 1e-12)) continue;
      for (const ClassCrossing& cc : linkdirs_[li].classes) fix_class(cc.cls, best);
    }
    for (const ClassSlot cs : private_classes_)
      if (classes_[cs].fixed_epoch != epoch_ &&
          classes_[cs].private_min_cap <= best * (1 + 1e-12))
        fix_class(cs, best);
    if (!fixed_any) break;  // numeric safety
  }

  // Re-key only the affected classes; untouched components keep their
  // absolute projected completion times.
  for (const ClassSlot cs : affected_classes_) {
    FlowClass& c = classes_[cs];
    if (c.rate <= 0) {
      for (const MemberRef& m : c.member_heap) {
        if (!member_valid(cs, m)) continue;
        Flow& f = flows_[m.slot];
        const double left = m.done - c.credit;
        if (left > kByteEpsilon && !f.starve_warned) warn_starved(f, left);
      }
    }
    completion_heap_.set(cs, class_completion_key(cs, now));
  }
  rearm_completion_timer();
}

void FlowNet::rearm_completion_timer() {
  const Time next = completion_heap_.empty() ? kTimeInfinity : completion_heap_.top_key();
  if (next >= kTimeInfinity) {
    if (armed_at_ < kTimeInfinity) {
      engine_->cancel_timer_slot(timer_slot_);
      armed_at_ = kTimeInfinity;
    }
    return;
  }
  if (armed_at_ == next && engine_->timer_slot_armed(timer_slot_)) return;
  armed_at_ = next;
  engine_->arm_timer_slot(timer_slot_, std::max(0.0, next - engine_->now()));
}

void FlowNet::on_completion_event() {
  if (mode_ == Mode::Reference) {
    reference_completion_event();
    return;
  }
  const Time now = engine_->now();
  armed_at_ = kTimeInfinity;  // the arm we are inside just fired
  const Time cutoff = completion_cutoff(now);
  done_scratch_.clear();
  popped_classes_.clear();
  auto cmp = [](const MemberRef& a, const MemberRef& b) { return a.done > b.done; };
  while (!completion_heap_.empty() && completion_heap_.top_key() <= cutoff) {
    const ClassSlot cs = completion_heap_.top();
    completion_heap_.pop();
    FlowClass& c = classes_[cs];
    settle_class(c, now);
    // Tie window in bytes at the class rate: members projected to drain
    // within the cutoff complete together (and the window absorbs the
    // rounding of the lazily-settled credit counter).
    const double window = std::max(kByteEpsilon, c.rate * (cutoff - now));
    bool destroyed = false;
    while (!c.member_heap.empty()) {
      const MemberRef top = c.member_heap.front();
      if (!member_valid(cs, top)) {
        std::pop_heap(c.member_heap.begin(), c.member_heap.end(), cmp);
        c.member_heap.pop_back();
        continue;
      }
      if (top.done - c.credit > window) break;
      std::pop_heap(c.member_heap.begin(), c.member_heap.end(), cmp);
      c.member_heap.pop_back();
      done_scratch_.push_back(top.slot);
      // Detach now so any duplicate heap entry for this flow goes stale.
      flows_[top.slot].cls = kNoClass;
      --c.mult;
      if (c.mult == 0) {
        destroy_class(cs);
        destroyed = true;
        break;
      }
    }
    if (!destroyed) popped_classes_.push_back(cs);
  }
  // Ascending id = start order, matching the reference oracle's map order.
  std::sort(done_scratch_.begin(), done_scratch_.end(),
            [this](Slot a, Slot b) { return flows_[a].id < flows_[b].id; });
  for (const Slot s : done_scratch_) remove_membership(s);
  for (const Slot s : done_scratch_) {
    Flow& f = flows_[s];
    ++stats_.flows_completed;
    stats_.bytes_completed += f.total_bytes;
    if (obs::TraceRecorder* tr = obs::trace(); tr != nullptr)
      tr->async_end(tr->track("flownet"), "flow", "flow", f.id, now);
    engine_->post(std::move(f.on_complete));
    release_slot(s);
  }
  ++stats_.reshares;
  process_reclass_queue(now);
  // Popped classes that survive (a tie-window miss by a few ulps of credit)
  // must be re-keyed by hand: they may sit outside the dirty component.
  // resolve_dirty() then overwrites any that are inside it.
  for (const ClassSlot cs : popped_classes_)
    if (classes_[cs].live) completion_heap_.set(cs, class_completion_key(cs, now));
  resolve_dirty();
}

// ---------------------------------------------------------------------------
// Reference oracle: the original full recompute, now over the slot-map.

void FlowNet::reference_reshare() {
  reference_advance_progress();
  reference_recompute_rates();
  reference_schedule_next_completion();
}

void FlowNet::reference_advance_progress() {
  const Time dt = engine_->now() - last_update_;
  if (dt > 0) {
    for (Flow& f : flows_)
      if (f.id && f.phase == Phase::Transfer && f.rate > 0)
        f.remaining = std::max(0.0, f.remaining - f.rate * dt);
  }
  last_update_ = engine_->now();
}

void FlowNet::reference_recompute_rates() {
  // Progressive filling: repeatedly saturate the most constrained link.
  std::map<std::size_t, double> capacity;
  std::map<std::size_t, int> unfixed_count;
  std::vector<Flow*> unfixed;
  for (Flow& f : flows_) {
    if (!f.id) continue;
    f.rate = 0;
    if (f.phase != Phase::Transfer) continue;
    unfixed.push_back(&f);
    for (const Hop& h : f.hops) {
      // Dense records carry the (possibly churn-rescaled) capacity; they are
      // synced for every hop a live flow crosses.
      capacity.emplace(linkdir_index(h), linkdirs_[linkdir_index(h)].capacity);
      ++unfixed_count[linkdir_index(h)];
    }
  }
  while (!unfixed.empty()) {
    double best_share = std::numeric_limits<double>::infinity();
    for (const auto& [key, cap] : capacity) {
      const int n = unfixed_count[key];
      if (n > 0) best_share = std::min(best_share, cap / n);
    }
    if (!std::isfinite(best_share)) break;  // no constrained flows remain
    // Fix every unfixed flow that crosses a bottleneck link.
    std::vector<Flow*> still_unfixed;
    for (Flow* f : unfixed) {
      bool at_bottleneck = false;
      for (const Hop& h : f->hops) {
        const auto key = linkdir_index(h);
        if (unfixed_count[key] > 0 &&
            capacity[key] / unfixed_count[key] <= best_share * (1 + 1e-12)) {
          at_bottleneck = true;
          break;
        }
      }
      if (at_bottleneck) {
        f->rate = best_share;
        for (const Hop& h : f->hops) {
          const auto key = linkdir_index(h);
          capacity[key] = std::max(0.0, capacity[key] - best_share);
          --unfixed_count[key];
        }
      } else {
        still_unfixed.push_back(f);
      }
    }
    if (still_unfixed.size() == unfixed.size()) break;  // numeric safety
    unfixed.swap(still_unfixed);
  }
  // The reference path bypasses the dirty queue entirely; drop any marks so
  // they cannot pile up.
  for (const std::size_t li : dirty_linkdirs_) linkdirs_[li].dirty = false;
  dirty_linkdirs_.clear();
}

void FlowNet::reference_schedule_next_completion() {
  engine_->cancel_timer_slot(timer_slot_);
  Time earliest = kTimeInfinity;
  for (Flow& f : flows_) {
    if (!f.id || f.phase != Phase::Transfer) continue;
    if (f.remaining <= kByteEpsilon) {
      earliest = 0;
      break;
    }
    if (f.rate > 0)
      earliest = std::min(earliest, f.remaining / f.rate);
    else if (!f.starve_warned)
      warn_starved(f, f.remaining);
  }
  if (earliest >= kTimeInfinity) return;
  engine_->arm_timer_slot(timer_slot_, earliest);
}

void FlowNet::reference_completion_event() {
  reference_advance_progress();
  // Complete every flow that has drained (ties complete together), in id
  // (= start) order for deterministic callback sequencing.
  done_scratch_.clear();
  for (Slot s = 0; s < flows_.size(); ++s) {
    Flow& f = flows_[s];
    if (f.id && f.phase == Phase::Transfer && f.remaining <= kByteEpsilon)
      done_scratch_.push_back(s);
  }
  std::sort(done_scratch_.begin(), done_scratch_.end(),
            [this](Slot a, Slot b) { return flows_[a].id < flows_[b].id; });
  for (const Slot s : done_scratch_) remove_membership(s);
  for (const Slot s : done_scratch_) {
    Flow& f = flows_[s];
    ++stats_.flows_completed;
    stats_.bytes_completed += f.total_bytes;
    if (obs::TraceRecorder* tr = obs::trace(); tr != nullptr)
      tr->async_end(tr->track("flownet"), "flow", "flow", f.id, engine_->now());
    engine_->post(std::move(f.on_complete));
    release_slot(s);
  }
  ++stats_.reshares;
  reference_reshare();
}

}  // namespace pdc::net
