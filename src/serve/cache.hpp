// The hot memo at the heart of prediction-as-a-service: canonical spec text
// -> serialized RunRecord, LRU-evicted under a byte budget. Repeated what-if
// queries (the "millions of users" traffic shape) become map lookups instead
// of simulations.
//
// Keys are *canonical* spec renderings (scenario::render_scenario of the
// parsed spec), so textual variants of one scenario — reordered lines,
// comments, defaulted keys spelled out — all land on the same entry.
//
// The budget defaults to the PDC_SERVE_CACHE_BYTES environment knob (see
// ROADMAP.md); entries are charged key + value bytes. Thread-safe: one
// mutex, held only for map/list operations (values are returned by copy —
// response bodies outlive any eviction).
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace pdc::serve {

/// The PDC_SERVE_CACHE_BYTES default: 64 MiB.
std::size_t default_cache_bytes();

/// Point-in-time counters (also embedded in ServeStats).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t insertions = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;
  std::size_t budget_bytes = 0;
};

class MemoCache {
 public:
  /// budget_bytes == SIZE_MAX means "use default_cache_bytes()".
  explicit MemoCache(std::size_t budget_bytes = static_cast<std::size_t>(-1));

  /// Looks `key` up, counting a hit (and refreshing its LRU position) or a
  /// miss.
  std::optional<std::string> get(const std::string& key);

  /// Inserts or replaces `key`, then evicts least-recently-used entries
  /// until the byte budget holds. An entry bigger than the whole budget is
  /// not cached at all (and does not evict the working set to make room).
  void put(const std::string& key, std::string value);

  CacheStats stats() const;

 private:
  struct Entry {
    std::string value;
    std::list<std::string>::iterator lru_it;
  };

  void evict_to_budget_locked();

  mutable std::mutex mutex_;
  std::size_t budget_;
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0, misses_ = 0, evictions_ = 0, insertions_ = 0;
  std::list<std::string> lru_;  // front = most recently used
  std::unordered_map<std::string, Entry> map_;
};

}  // namespace pdc::serve
