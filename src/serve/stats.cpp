#include "serve/stats.hpp"

#include "support/json.hpp"

namespace pdc::serve {

namespace {

void summary_json(JsonWriter& w, const Summary& s) {
  w.begin_object();
  w.kv("n", static_cast<std::int64_t>(s.n));
  w.kv("mean", s.mean);
  w.kv("min", s.min);
  w.kv("max", s.max);
  w.kv("p50", s.p50);
  w.kv("p95", s.p95);
  w.end_object();
}

}  // namespace

std::string ServeStats::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.kv("requests", requests);
  w.kv("scenario_requests", scenario_requests);
  w.kv("campaign_requests", campaign_requests);
  w.kv("spool_jobs", spool_jobs);
  w.kv("stats_requests", stats_requests);
  w.kv("pings", pings);
  w.kv("errors", errors);
  w.key("cache").begin_object();
  w.kv("hits", cache.hits);
  w.kv("misses", cache.misses);
  w.kv("evictions", cache.evictions);
  w.kv("insertions", cache.insertions);
  w.kv("entries", static_cast<std::int64_t>(cache.entries));
  w.kv("bytes", static_cast<std::int64_t>(cache.bytes));
  w.kv("budget_bytes", static_cast<std::int64_t>(cache.budget_bytes));
  w.end_object();
  w.key("memos").begin_object();
  w.kv("cost_profiles", static_cast<std::int64_t>(memos.cost_profiles));
  w.kv("cost_profile_bytes", static_cast<std::int64_t>(memos.cost_profile_bytes));
  w.kv("trace_sets", static_cast<std::int64_t>(memos.trace_sets));
  w.kv("trace_bytes", static_cast<std::int64_t>(memos.trace_bytes));
  w.end_object();
  w.kv("in_flight", in_flight);
  w.kv("queue_peak", queue_peak);
  w.kv("uptime_seconds", uptime_seconds);
  w.key("latency_hit");
  summary_json(w, latency_hit);
  w.key("latency_miss");
  summary_json(w, latency_miss);
  w.end_object();
  return w.str() + "\n";
}

void StatsCollector::count_request() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++totals_.requests;
}
void StatsCollector::count_scenario() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++totals_.scenario_requests;
}
void StatsCollector::count_campaign() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++totals_.campaign_requests;
}
void StatsCollector::count_spool_job() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++totals_.spool_jobs;
}
void StatsCollector::count_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++totals_.stats_requests;
}
void StatsCollector::count_ping() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++totals_.pings;
}
void StatsCollector::count_error() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++totals_.errors;
}

void StatsCollector::enter_request() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++totals_.in_flight;
  if (totals_.in_flight > totals_.queue_peak) totals_.queue_peak = totals_.in_flight;
}

void StatsCollector::leave_request() {
  std::lock_guard<std::mutex> lock(mutex_);
  --totals_.in_flight;
}

void StatsCollector::record_latency(bool cache_hit, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<double>& ring = cache_hit ? hit_latencies_ : miss_latencies_;
  std::size_t& next = cache_hit ? hit_next_ : miss_next_;
  if (ring.size() < kMaxSamples) {
    ring.push_back(seconds);
  } else {
    ring[next] = seconds;
    next = (next + 1) % kMaxSamples;
  }
}

ServeStats StatsCollector::snapshot(const MemoCache& cache,
                                    double uptime_seconds) const {
  ServeStats s;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    s = totals_;
    s.latency_hit = summarize(hit_latencies_);
    s.latency_miss = summarize(miss_latencies_);
  }
  s.cache = cache.stats();
  s.memos = scenario::memo_stats();
  s.uptime_seconds = uptime_seconds;
  return s;
}

}  // namespace pdc::serve
