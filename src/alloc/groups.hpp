// Hierarchical task allocation, part 1: group formation (paper §III-C).
//
// "When the submitter has collected enough peers, it divides peers into
// groups based on proximity; in each group, a peer is chosen by the
// submitter to become coordinator. The number of peers in a group cannot
// exceed Cmax in order to ensure efficient management. We have chosen
// Cmax = 32."
#pragma once

#include <vector>

#include "overlay/types.hpp"

namespace pdc::alloc {

/// The paper's group size bound.
inline constexpr int kCmax = 32;

struct Group {
  /// Index into `members` of the coordinator peer.
  std::size_t coordinator = 0;
  std::vector<overlay::PeerRef> members;

  const overlay::PeerRef& coordinator_ref() const { return members[coordinator]; }
};

/// Partitions peers into proximity groups of at most `cmax` members: peers
/// are sorted by IP and recursively split at the widest IP gap (ties broken
/// toward balanced halves), so network-adjacent peers share a group. The
/// coordinator is the member with the highest CPU speed (ties: lowest IP),
/// since it carries the extra management load.
std::vector<Group> form_groups(std::vector<overlay::PeerRef> peers, int cmax = kCmax);

}  // namespace pdc::alloc
