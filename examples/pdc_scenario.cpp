// pdc_scenario: run any prediction experiment from a declarative scenario
// file -- no recompiling, no per-experiment driver. See examples/scenarios/
// for ready-made files and examples/README.md for the format.
//
//   $ ./example_pdc_scenario examples/scenarios/lan.scn
//   $ ./example_pdc_scenario -o out.json --check examples/scenarios/wan.scn
//   $ echo 'platform federation' | ./example_pdc_scenario -
//
// Options:
//   -o <path>   RunRecord JSON output path (default RUN_<name>.json)
//   --render    print the canonical spec text and exit (no run)
//   --check     re-parse the emitted JSON with the support reader and fail
//               loudly if it does not round-trip (used by the CI smoke job)
//
// PDC_QUICK=1 shrinks the default obstacle sizing for smoke runs; explicit
// `grid` / `iters` lines in the file always win.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "scenario/runner.hpp"
#include "support/json.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace pdc;
  const char* spec_path = nullptr;
  const char* out_path = nullptr;
  bool render_only = false;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) out_path = argv[++i];
    else if (std::strcmp(argv[i], "--render") == 0) render_only = true;
    else if (std::strcmp(argv[i], "--check") == 0) check = true;
    else if (argv[i][0] == '-' && std::strcmp(argv[i], "-") != 0) {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      return 2;
    } else {
      spec_path = argv[i];
    }
  }
  if (spec_path == nullptr) {
    std::fprintf(stderr,
                 "usage: pdc_scenario [-o out.json] [--render] [--check] <spec-file|->\n");
    return 2;
  }

  std::string text;
  if (std::strcmp(spec_path, "-") == 0) {
    std::stringstream buf;
    buf << std::cin.rdbuf();
    text = buf.str();
  } else {
    std::ifstream in(spec_path);
    if (!in) {
      std::fprintf(stderr, "cannot open scenario file '%s'\n", spec_path);
      return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }

  scenario::ScenarioSpec spec;
  try {
    spec = scenario::parse_scenario(text, scenario::RunSpec::from_env());
  } catch (const scenario::ScenarioError& e) {
    std::fprintf(stderr, "%s: %s\n", spec_path, e.what());
    return 1;
  }

  if (render_only) {
    std::fputs(scenario::render_scenario(spec).c_str(), stdout);
    return 0;
  }

  const scenario::Runner runner{spec};
  std::printf("scenario %s: platform %s (%s), %d peers, %s, mode %s\n", spec.name.c_str(),
              spec.platform.label.c_str(), spec.platform.kind(), spec.run.peers,
              ir::opt_level_name(spec.run.level), scenario::mode_name(spec.run.mode));

  scenario::RunRecord rec;
  try {
    rec = runner.run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "scenario failed: %s\n", e.what());
    return 1;
  }

  TextTable table({"Phase", "solve [s]", "total [s]", "peers", "groups"});
  if (rec.reference)
    table.add_row({"reference", TextTable::num(rec.reference->solve_seconds, 3),
                   TextTable::num(rec.reference->total_seconds, 3),
                   std::to_string(rec.reference->computation.peers),
                   std::to_string(rec.reference->computation.groups)});
  if (rec.predicted)
    table.add_row({"predicted", TextTable::num(rec.predicted->solve_seconds, 3),
                   TextTable::num(rec.predicted->total_seconds, 3),
                   std::to_string(rec.predicted->computation.peers),
                   std::to_string(rec.predicted->computation.groups)});
  if (rec.analytic)
    table.add_row({"analytic", TextTable::num(rec.analytic->solve_seconds, 3),
                   TextTable::num(rec.analytic->total_seconds, 3),
                   std::to_string(rec.analytic->computation.peers),
                   std::to_string(rec.analytic->computation.groups)});
  std::printf("%s", table.render().c_str());
  if (rec.prediction_error)
    std::printf("prediction error: %.2f%%\n", 100.0 * *rec.prediction_error);
  if (rec.analytic_error)
    std::printf("analytic error: %.2f%%\n", 100.0 * *rec.analytic_error);

  const std::string json = rec.to_json();
  const std::string path =
      out_path != nullptr ? std::string(out_path) : "RUN_" + spec.name + ".json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
    return 1;
  }
  out << json;
  out.close();
  std::printf("wrote %s (%d hosts modelled)\n", path.c_str(), rec.platform_hosts);

  if (check) {
    try {
      const JsonValue doc = parse_json(json);
      if (!doc.has("scenario") || !doc.has("platform") || !doc.has("run"))
        throw JsonError(0, "RunRecord missing required keys");
      std::printf("JSON check: ok\n");
    } catch (const std::exception& e) {
      std::fprintf(stderr, "JSON check FAILED: %s\n", e.what());
      return 1;
    }
  }
  return 0;
}
