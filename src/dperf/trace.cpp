#include "dperf/trace.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace pdc::dperf {

std::uint64_t Trace::total_compute_ns() const {
  std::uint64_t total = 0;
  for (const auto& e : events)
    if (e.kind == TraceEvent::Kind::Compute) total += e.ns;
  return total;
}

std::size_t Trace::count(TraceEvent::Kind kind) const {
  std::size_t n = 0;
  for (const auto& e : events) n += e.kind == kind ? 1 : 0;
  return n;
}

std::string save_trace(const Trace& t) {
  std::ostringstream out;
  out << "dperf-trace v1\n";
  out << "proc " << t.rank << " of " << t.nprocs << " hz " << t.host_hz << "\n";
  char buf[128];
  for (const auto& e : t.events) {
    switch (e.kind) {
      case TraceEvent::Kind::Compute:
        out << "compute " << e.ns << "\n";
        break;
      case TraceEvent::Kind::Send:
        std::snprintf(buf, sizeof buf, "send %d %.17g tag %d\n", e.peer, e.bytes, e.tag);
        out << buf;
        break;
      case TraceEvent::Kind::Recv:
        out << "recv " << e.peer << " tag " << e.tag << "\n";
        break;
      case TraceEvent::Kind::Allreduce:
        out << "allreduce\n";
        break;
      case TraceEvent::Kind::IterMark:
        out << "iter " << e.iter_id << "\n";
        break;
    }
  }
  out << "end\n";
  return out.str();
}

Trace load_trace(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  Trace t;
  auto fail = [](const std::string& msg) -> std::runtime_error {
    return std::runtime_error("trace parse error: " + msg);
  };
  if (!std::getline(in, line) || line != "dperf-trace v1")
    throw fail("bad header '" + line + "'");
  if (!std::getline(in, line)) throw fail("missing proc line");
  {
    std::istringstream ls(line);
    std::string kw, of, hz;
    ls >> kw >> t.rank >> of >> t.nprocs >> hz >> t.host_hz;
    if (kw != "proc" || of != "of" || hz != "hz" || ls.fail())
      throw fail("bad proc line '" + line + "'");
    std::string extra;
    if (ls >> extra) throw fail("trailing tokens on proc line '" + line + "'");
    if (t.nprocs <= 0)
      throw fail("proc line has nprocs " + std::to_string(t.nprocs) +
                 ", expected nprocs > 0");
    if (t.rank < 0 || t.rank >= t.nprocs)
      throw fail("proc line has rank " + std::to_string(t.rank) +
                 " outside [0, " + std::to_string(t.nprocs) + ")");
    if (!(t.host_hz > 0))
      throw fail("proc line has hz " + std::to_string(t.host_hz) +
                 ", expected hz > 0");
  }
  bool ended = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string kw;
    ls >> kw;
    TraceEvent e;
    if (kw == "compute") {
      e.kind = TraceEvent::Kind::Compute;
      ls >> e.ns;
    } else if (kw == "send") {
      e.kind = TraceEvent::Kind::Send;
      std::string tag;
      ls >> e.peer >> e.bytes >> tag >> e.tag;
      if (tag != "tag") throw fail("bad send line '" + line + "'");
    } else if (kw == "recv") {
      e.kind = TraceEvent::Kind::Recv;
      std::string tag;
      ls >> e.peer >> tag >> e.tag;
      if (tag != "tag") throw fail("bad recv line '" + line + "'");
    } else if (kw == "allreduce") {
      e.kind = TraceEvent::Kind::Allreduce;
    } else if (kw == "iter") {
      e.kind = TraceEvent::Kind::IterMark;
      ls >> e.iter_id;
    } else if (kw == "end") {
      ended = true;
      break;
    } else {
      throw fail("unknown record '" + kw + "'");
    }
    if (ls.fail()) throw fail("malformed record '" + line + "'");
    if ((e.kind == TraceEvent::Kind::Send || e.kind == TraceEvent::Kind::Recv) &&
        (e.peer < 0 || e.peer >= t.nprocs))
      throw fail("record '" + line + "' has peer " + std::to_string(e.peer) +
                 " outside [0, " + std::to_string(t.nprocs) + ")");
    t.events.push_back(e);
  }
  if (!ended) throw fail("missing end marker");
  return t;
}

Trace extrapolate(const Trace& sampled, int sample_iters, int target_iters, int chunk) {
  // All precondition failures name the trace rank and echo the offending
  // values, so a caller iterating many ranks can tell which one failed.
  auto where = [&sampled, sample_iters, target_iters, chunk] {
    return " (rank " + std::to_string(sampled.rank) + ", sample " +
           std::to_string(sample_iters) + ", target " + std::to_string(target_iters) +
           ", chunk " + std::to_string(chunk) + ")";
  };
  if (sample_iters <= 0)
    throw std::runtime_error("extrapolate: need sample_iters > 0" + where());
  if (target_iters == sample_iters) return sampled;
  if (chunk <= 0 || sample_iters < 3 * chunk)
    throw std::runtime_error("extrapolate: need chunk > 0 and sample_iters >= 3*chunk" +
                             where());
  if (target_iters < sample_iters || (target_iters - sample_iters) % chunk != 0)
    throw std::runtime_error("extrapolate: target must be sample + k*chunk" + where());

  // Locate iteration markers.
  std::vector<std::size_t> marker_pos;
  for (std::size_t i = 0; i < sampled.events.size(); ++i)
    if (sampled.events[i].kind == TraceEvent::Kind::IterMark) marker_pos.push_back(i);
  if (static_cast<int>(marker_pos.size()) != sample_iters)
    throw std::runtime_error("extrapolate: trace has " + std::to_string(marker_pos.size()) +
                             " iteration marks, expected " + std::to_string(sample_iters) +
                             where());

  // Steady chunk: the `chunk` iterations ending one chunk before the end,
  // i.e. events [marker[S-2c], marker[S-c]).
  const auto s = static_cast<std::size_t>(sample_iters);
  const auto c = static_cast<std::size_t>(chunk);
  const std::size_t from = marker_pos[s - 2 * c];
  const std::size_t to = marker_pos[s - c];

  Trace out;
  out.rank = sampled.rank;
  out.nprocs = sampled.nprocs;
  out.host_hz = sampled.host_hz;
  out.events.reserve(sampled.events.size() +
                     (to - from) * static_cast<std::size_t>((target_iters - sample_iters) / chunk));
  // Prefix (up to the steady chunk), then the replicated chunks, then the
  // measured remainder (steady chunk + tail + post-loop events).
  out.events.insert(out.events.end(), sampled.events.begin(),
                    sampled.events.begin() + static_cast<std::ptrdiff_t>(from));
  const int copies = (target_iters - sample_iters) / chunk;
  for (int k = 0; k < copies; ++k)
    out.events.insert(out.events.end(),
                      sampled.events.begin() + static_cast<std::ptrdiff_t>(from),
                      sampled.events.begin() + static_cast<std::ptrdiff_t>(to));
  out.events.insert(out.events.end(),
                    sampled.events.begin() + static_cast<std::ptrdiff_t>(from),
                    sampled.events.end());
  return out;
}

}  // namespace pdc::dperf
