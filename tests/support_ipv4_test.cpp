#include "support/ipv4.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "support/rng.hpp"

namespace pdc {
namespace {

TEST(Ipv4, ParsesDottedQuad) {
  auto a = Ipv4::parse("145.82.1.129");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->to_string(), "145.82.1.129");
  EXPECT_EQ(a->bits(), (145u << 24) | (82u << 16) | (1u << 8) | 129u);
}

TEST(Ipv4, ParseRejectsMalformedInput) {
  EXPECT_FALSE(Ipv4::parse("").has_value());
  EXPECT_FALSE(Ipv4::parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4::parse("256.0.0.1").has_value());
  EXPECT_FALSE(Ipv4::parse("1..2.3").has_value());
  EXPECT_FALSE(Ipv4::parse("1.2.3.").has_value());
  EXPECT_FALSE(Ipv4::parse("a.b.c.d").has_value());
  EXPECT_FALSE(Ipv4::parse("1.2.3.4x").has_value());
  EXPECT_FALSE(Ipv4::parse("1234.1.1.1").has_value());
}

TEST(Ipv4, ParseRoundTripsRandomAddresses) {
  Rng rng{7};
  for (int i = 0; i < 200; ++i) {
    const Ipv4 a{static_cast<std::uint32_t>(rng.next_u64())};
    auto parsed = Ipv4::parse(a.to_string());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, a);
  }
}

// The worked example from the paper (section III-A.2): P1=145.82.1.1,
// P2=145.82.1.129, P3=145.83.56.74; prefix(P1,P2)=24, prefix(P1,P3)=15.
TEST(Proximity, PaperExample) {
  const Ipv4 p1{145, 82, 1, 1};
  const Ipv4 p2{145, 82, 1, 129};
  const Ipv4 p3{145, 83, 56, 74};
  EXPECT_EQ(common_prefix_len(p1, p2), 24);
  EXPECT_EQ(common_prefix_len(p1, p3), 15);
  EXPECT_TRUE(closer_to(p1, p2, p3));
  EXPECT_FALSE(closer_to(p1, p3, p2));
}

TEST(Proximity, IdenticalAddressesShareFullPrefix) {
  const Ipv4 a{10, 0, 0, 1};
  EXPECT_EQ(common_prefix_len(a, a), 32);
}

TEST(Proximity, SymmetricMetric) {
  Rng rng{11};
  for (int i = 0; i < 200; ++i) {
    const Ipv4 a{static_cast<std::uint32_t>(rng.next_u64())};
    const Ipv4 b{static_cast<std::uint32_t>(rng.next_u64())};
    EXPECT_EQ(common_prefix_len(a, b), common_prefix_len(b, a));
  }
}

TEST(Proximity, PrefixBoundaries) {
  EXPECT_EQ(common_prefix_len(Ipv4{0x00000000}, Ipv4{0x80000000}), 0);
  EXPECT_EQ(common_prefix_len(Ipv4{0xFFFFFFFF}, Ipv4{0xFFFFFFFE}), 31);
}

// Property: closer_to induces a strict weak ordering usable for sorting
// candidate neighbour lists deterministically.
TEST(Proximity, InducesTotalOrderAroundReference) {
  Rng rng{23};
  const Ipv4 ref{static_cast<std::uint32_t>(rng.next_u64())};
  std::vector<Ipv4> addrs;
  for (int i = 0; i < 64; ++i) addrs.emplace_back(static_cast<std::uint32_t>(rng.next_u64()));
  auto cmp = [&](Ipv4 x, Ipv4 y) { return closer_to(ref, x, y); };
  std::sort(addrs.begin(), addrs.end(), cmp);
  // Sorted by decreasing proximity: prefix lengths are non-increasing.
  for (std::size_t i = 1; i < addrs.size(); ++i) {
    EXPECT_GE(common_prefix_len(ref, addrs[i - 1]), common_prefix_len(ref, addrs[i]));
  }
  // Irreflexivity.
  for (auto a : addrs) EXPECT_FALSE(closer_to(ref, a, a));
}

}  // namespace
}  // namespace pdc
