// Fig. 10 (paper §IV-B.3): Stage-1 comparison of the reference execution
// time against the dPerf prediction on the identical cluster platform, GCC
// optimization level 3. The two curves must nearly coincide ("the reference
// time and the prediction calculated with dPerf are very close").
//
// One campaign with a peers axis and mode=both: each grid cell executes the
// reference, replays the traces, and reports its own error.
#include <algorithm>
#include <cstdio>
#include <map>

#include "campaign/executor.hpp"
#include "experiments/harness.hpp"
#include "support/env.hpp"
#include "support/table.hpp"

int main() {
  using namespace pdc;
  std::printf("Fig. 10 -- Stage-1 reference vs dPerf prediction [s], optimization level 3\n\n");

  campaign::CampaignSpec camp;
  camp.name = "fig10";
  camp.base.name = "fig10";
  camp.base.platform = scenario::PlatformSpec::grid5000();
  camp.base.run = scenario::RunSpec::from_env();
  camp.base.run.level = ir::OptLevel::O3;
  camp.base.run.mode = scenario::Mode::Both;
  camp.peers = experiments::paper_peer_counts();

  campaign::ExecutorOptions opts;
  opts.jobs = env_int("PDC_CAMPAIGN_JOBS", 1);
  opts.progress = true;
  campaign::Executor executor{camp, opts};
  executor.execute();

  std::map<int, const campaign::Outcome*> by_peers;
  for (const campaign::Outcome& out : executor.outcomes()) {
    if (!out.ok()) {
      std::fprintf(stderr, "run %s failed: %s\n", out.run.key.c_str(), out.error.c_str());
      return 1;
    }
    by_peers[out.run.spec.run.peers] = &out;
  }

  TextTable table({"Peers", "reference", "dPerf prediction", "error %"});
  double worst_err = 0;
  for (int peers : experiments::paper_peer_counts()) {
    const campaign::Outcome& out = *by_peers.at(peers);
    const auto& m = out.metrics;
    const auto it = m.find("prediction_error");
    const double err = 100.0 * (it != m.end() ? it->second : 0.0);
    worst_err = std::max(worst_err, err);
    table.add_row({std::to_string(peers),
                   TextTable::num(m.at("reference_solve_seconds"), 2),
                   TextTable::num(m.at("predicted_solve_seconds"), 2),
                   TextTable::num(err, 1)});
  }
  std::printf("\n%s\n", table.render().c_str());
  std::printf("worst prediction error: %.1f%% (paper: curves nearly coincide)\n", worst_err);
  return 0;
}
