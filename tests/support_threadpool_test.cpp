// support/thread_pool: completion, reuse after wait_idle, destructor
// draining, and observable concurrency.
#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace pdc {
namespace {

TEST(ThreadPool, RunsEveryTask) {
  std::atomic<int> count{0};
  ThreadPool pool{4};
  for (int i = 0; i < 1000; ++i)
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, ReusableAfterWaitIdle) {
  std::atomic<int> count{0};
  ThreadPool pool{2};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 50; ++i)
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 50 * (round + 1));
  }
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool{2};
    for (int i = 0; i < 64; ++i)
      pool.submit([&count] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        count.fetch_add(1, std::memory_order_relaxed);
      });
  }
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, ClampsToAtLeastOneWorker) {
  ThreadPool pool{0};
  EXPECT_EQ(pool.size(), 1);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, TasksOverlapUpToPoolSize) {
  // Sleeping tasks overlap even on a single core; the high-water mark of
  // in-flight tasks must reach beyond 1 and never exceed the pool size.
  std::atomic<int> in_flight{0};
  std::atomic<int> high_water{0};
  ThreadPool pool{4};
  for (int i = 0; i < 16; ++i)
    pool.submit([&in_flight, &high_water] {
      const int now = in_flight.fetch_add(1) + 1;
      int seen = high_water.load();
      while (seen < now && !high_water.compare_exchange_weak(seen, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      in_flight.fetch_sub(1);
    });
  pool.wait_idle();
  EXPECT_GE(high_water.load(), 2);
  EXPECT_LE(high_water.load(), 4);
}

}  // namespace
}  // namespace pdc
