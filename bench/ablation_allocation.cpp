// Ablation A1: hierarchical task allocation (coordinators, paper §III-C)
// versus the flat baseline where the submitter connects to every peer in
// succession and gathers all results itself. The paper's claim: hierarchy
// accelerates allocation and avoids the bottleneck at the submitter.
#include <cstdio>

#include "experiments/harness.hpp"
#include "support/table.hpp"

int main() {
  using namespace pdc;
  std::printf("Ablation A1 -- hierarchical vs flat task allocation on the cluster\n"
              "(64 KiB subtasks + 64 KiB results, trivial compute; times in ms)\n\n");

  TextTable table({"Peers", "Cmax", "hier alloc", "flat alloc", "hier total", "flat total"});
  for (int peers : {8, 16, 32}) {
    double alloc[2], total[2];
    int i = 0;
    for (auto mode : {p2pdc::AllocationMode::Hierarchical, p2pdc::AllocationMode::Flat}) {
      auto d = experiments::deploy(experiments::Topology::Grid5000, peers);
      p2pdc::TaskSpec spec;
      spec.peers_needed = peers;
      spec.cmax = 8;
      spec.allocation = mode;
      spec.subtask_bytes = 64e3;
      spec.result_bytes = 64e3;
      auto result = d->env->run_computation(d->submitter, spec,
                                            [](p2pdc::PeerContext& ctx) -> sim::Task<void> {
                                              co_await ctx.compute(0.001);
                                            });
      if (!result.ok) {
        std::printf("run failed: %s\n", result.failure.c_str());
        return 1;
      }
      alloc[i] = result.allocation_time() * 1e3;
      total[i] = result.total_time() * 1e3;
      ++i;
    }
    table.add_row({std::to_string(peers), "8", TextTable::num(alloc[0], 2),
                   TextTable::num(alloc[1], 2), TextTable::num(total[0], 2),
                   TextTable::num(total[1], 2)});
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
