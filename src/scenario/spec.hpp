// Declarative scenario descriptions: one value type that says *everything*
// about a prediction experiment — which platform to model, how to run the
// workload on it, and under what name to record the result. Scenarios are
// plain data: they can be built in code (the benches), parsed from a small
// text format (the pdc_scenario CLI), rendered back, and extended with new
// platform generators without touching any call site.
//
// Text format (line oriented, '#' starts a comment):
//
//   scenario <name>
//   platform <preset>                    # grid5000 | lan | xdsl | federation | wan
//   platform star|daisy|federation|wan [key=value ...]
//   platform file <path>
//   platform inline                      # raw net::platfile lines until 'end'
//     host a speed 3GHz ip 10.0.0.1
//     ...
//   end
//   peers <n>
//   opt <0|1|2|3|s>
//   mode <reference|predict|both|analytic|both-analytic>
//   alloc <hierarchical|flat>
//   scheme <sync|async>
//   seed <n>
//   grid <n>            iters <n>          rcheck <n>
//   bench <n> <iters> <rcheck>
//   omega <x>
//   cmax <n>
//   churn ...                            # fault injection; see churn/spec.hpp
//   trace <path>                         # write a Chrome-trace JSON of the run
//
// Key=value platform parameters take the platfile units (speed 3GHz,
// bandwidth 1Gbps, latency 100us); `speeds=` takes a comma-separated list.
// See examples/scenarios/ for complete files.
#pragma once

#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "alloc/groups.hpp"
#include "churn/spec.hpp"
#include "ir/pipeline.hpp"
#include "net/builders.hpp"
#include "p2pdc/environment.hpp"

namespace pdc::scenario {

/// Platform given as a net::platfile description: a file path (read at
/// deploy time) or inline text (path empty).
struct PlatformFileSpec {
  std::string path;
  std::string text;
};

/// What to simulate on: a tagged union over every platform generator. New
/// generators extend the variant (and the spec.cpp parse/render/build
/// tables) without touching RunSpec or the Runner.
struct PlatformSpec {
  using Variant = std::variant<net::StarSpec, net::DaisySpec, PlatformFileSpec,
                               net::FederationSpec, net::WanSpec, net::ScaleFreeSpec,
                               net::SmallWorldSpec>;

  std::string label;  // display/record name, e.g. "grid5000"
  Variant spec;

  /// "star" | "daisy" | "file" | "federation" | "wan" | "scale_free" |
  /// "small_world".
  const char* kind() const;

  // The paper's evaluation platforms (§IV-A), auto-sized to the run's peer
  // count where the builder allows it (StarSpec.hosts == 0).
  static PlatformSpec grid5000();
  static PlatformSpec lan();
  static PlatformSpec xdsl();
  // The new generators, with their builder defaults.
  static PlatformSpec federation();
  static PlatformSpec wan();
  // Complex-network generators for scale studies (hosts auto-sized to the
  // run's peer count when 0).
  static PlatformSpec scale_free();
  static PlatformSpec small_world();
  static PlatformSpec from_file(std::string path);
  static PlatformSpec from_text(std::string platfile_text);
};

enum class Mode { Reference, Predict, Both, Analytic, BothAnalytic };
const char* mode_name(Mode m);

/// How to run the workload: everything the paper varies between experiments
/// plus the obstacle-problem sizing. Defaults are the paper's Stage-1 sizing;
/// `from_env()` applies the PDC_QUICK smoke shrink (see support/env.hpp).
struct RunSpec {
  int peers = 4;
  ir::OptLevel level = ir::OptLevel::O0;
  p2pdc::AllocationMode allocation = p2pdc::AllocationMode::Hierarchical;
  p2psap::Scheme scheme = p2psap::Scheme::Synchronous;
  Mode mode = Mode::Both;
  std::uint64_t seed = 42;
  int cmax = alloc::kCmax;
  /// Lazy worker boot (`boot lazy`): non-rank workers are registered as
  /// passive overlay peers — O(1) memory, zero idle events — instead of
  /// full actors. The scale lever for 10^5..10^6-peer platforms; the
  /// default (eager) keeps every worker a live PeerActor.
  bool lazy_boot = false;
  /// Core trackers to boot (`trackers <n>`): the zones peers spread over.
  /// More trackers shrink per-zone size on massive platforms.
  int trackers = 1;
  /// Computation ranks (`ranks <n>`; 0 = every peer). Decoupling rank count
  /// from overlay population is the other half of the scale story: a
  /// 10^5-peer overlay can serve a modest computation, and only the peers
  /// the allocation touches materialize any per-run state.
  int ranks = 0;

  /// Ranks the computation actually runs on (`ranks` when set, else all
  /// peers).
  int rank_count() const { return ranks > 0 ? ranks : peers; }

  // Obstacle problem sizing (see experiments::PaperSetup for the paper's
  // calibration rationale).
  int grid_n = 1538;
  int iters = 428;
  int rcheck = 4;
  int bench_n = 66;
  int bench_iters = 9;
  int bench_rcheck = 3;
  double omega = 0.9;

  /// Volatility the run is subjected to (default: none — a static world).
  /// When enabled, deployment provisions failover trackers and replacement
  /// hosts, the expanded event stream is injected into both phases, and the
  /// Runner re-submits after churn aborts (up to churn.max_attempts).
  churn::ChurnSpec churn;

  /// Where the Runner writes a Chrome-trace-event JSON of this run
  /// (`trace <path>`; empty = untraced, unless PDC_TRACE_DIR supplies a
  /// directory). An *execution* knob, not part of the run's identity:
  /// parse_scenario accepts it but render_scenario never emits it, so memo
  /// keys, campaign resume identities and golden records are unchanged by
  /// tracing.
  std::string trace_path;

  /// Paper sizing, shrunk for smoke runs when PDC_QUICK is set.
  static RunSpec from_env();
};

/// A complete experiment: platform x run x name.
struct ScenarioSpec {
  std::string name = "scenario";
  PlatformSpec platform = PlatformSpec::grid5000();
  RunSpec run;
};

/// Error with 1-based line information.
class ScenarioError : public std::runtime_error {
 public:
  ScenarioError(int line, const std::string& what)
      : std::runtime_error("scenario line " + std::to_string(line) + ": " + what),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

/// Parses a scenario from the text format. Unset keys keep the defaults of
/// `base` (pass RunSpec::from_env() to honour PDC_QUICK). Throws
/// ScenarioError.
ScenarioSpec parse_scenario(const std::string& text, const RunSpec& base = RunSpec{});

/// Renders a scenario back to the text format; parse(render(s)) reproduces
/// the same spec (platform-file paths stay paths, inline text stays inline).
std::string render_scenario(const ScenarioSpec& spec);

// Building blocks shared with the campaign format (src/campaign/), which
// embeds scenario lines and platform descriptions in its own files.

/// Splits one spec line into whitespace-separated tokens; '#' starts a
/// comment that runs to the end of the line.
std::vector<std::string> tokenize_spec_line(const std::string& line);

/// Parses one tokenized `platform <kind> [key=value ...]` line
/// (tokens[0] == "platform"); handles presets and every generator kind
/// except `inline`. Throws ScenarioError with `line`.
PlatformSpec parse_platform_tokens(const std::vector<std::string>& tokens, int line);

/// Renders a non-file platform spec as its one-line text form (the inverse
/// of parse_platform_tokens).
std::string render_platform_line(const PlatformSpec& spec);

}  // namespace pdc::scenario
