// Obstacle problem: sequential solver correctness, strip partitioning, the
// distributed solver on P2PDC (Real == sequential, Phantom == Real timing),
// cost-profile derivation, and an end-to-end miniature of Fig. 10
// (prediction vs reference on the same platform).
#include <gtest/gtest.h>

#include <cmath>

#include "dperf/dperf.hpp"
#include "net/builders.hpp"
#include "obstacle/distributed.hpp"
#include "obstacle/minic_kernel.hpp"
#include "obstacle/problem.hpp"

namespace pdc::obstacle {
namespace {

TEST(Sequential, ConvergesToFeasibleSolution) {
  ObstacleProblem p;
  p.n = 34;
  const SequentialResult r = solve_sequential(p, 20000, 1e-8);
  EXPECT_LT(r.residual, 1e-8);
  EXPECT_LT(r.iterations, 20000);
  // Feasibility: u >= psi everywhere (up to rounding).
  EXPECT_LE(obstacle_violation(p, r.solution), 1e-12);
  // Boundary is zero.
  for (int j = 0; j < p.n; ++j) {
    EXPECT_EQ(r.solution.at(0, j), 0.0);
    EXPECT_EQ(r.solution.at(p.n - 1, j), 0.0);
    EXPECT_EQ(r.solution.at(j, 0), 0.0);
    EXPECT_EQ(r.solution.at(j, p.n - 1), 0.0);
  }
}

TEST(Sequential, ContactRegionExistsAndPdeHoldsOffContact) {
  ObstacleProblem p;
  p.n = 34;
  const SequentialResult r = solve_sequential(p, 20000, 1e-9);
  // The center is in contact with the obstacle (f pushes down onto it).
  const int mid = p.n / 2;
  EXPECT_NEAR(r.solution.at(mid, mid), p.psi_at(mid, mid), 1e-5);
  // Complementarity: off the contact set, -Δu = f approximately.
  EXPECT_LT(pde_residual_off_contact(p, r.solution, 1e-6), 0.5);
}

TEST(Strips, PartitionCoversInteriorExactly) {
  for (int n : {34, 66, 130}) {
    for (int np : {1, 2, 3, 5, 8, 32}) {
      int covered = 0;
      int expected_first = 1;
      for (int r = 0; r < np; ++r) {
        const Strip s = strip_of(n, r, np);
        EXPECT_EQ(s.first_row, expected_first);
        expected_first += s.rows;
        covered += s.rows;
        EXPECT_GE(s.rows, (n - 2) / np);
        EXPECT_LE(s.rows, (n - 2) / np + 1);
      }
      EXPECT_EQ(covered, n - 2);
    }
  }
}

TEST(CostProfile, DerivedFromBlockBenchmarksPerLevel) {
  ObstacleProblem bench;
  bench.n = 34;
  const CostProfile o0 = derive_cost_profile(ir::OptLevel::O0, bench);
  const CostProfile o3 = derive_cost_profile(ir::OptLevel::O3, bench);
  EXPECT_GT(o0.iter_ns_per_point, 0);
  EXPECT_GT(o0.init_ns_per_point, 0);
  // O0 per-point sweep cost ~3x the optimized one (paper Fig. 9 spread).
  EXPECT_GT(o0.iter_ns_per_point / o3.iter_ns_per_point, 1.8);
  EXPECT_LT(o0.iter_ns_per_point / o3.iter_ns_per_point, 6.0);
}

struct DeployedEnv {
  explicit DeployedEnv(int workers)
      : plat(net::build_star(net::bordeplage_cluster_spec(workers + 3))) {
    env = std::make_unique<p2pdc::Environment>(eng, plat);
    env->boot_server(plat.host(0));
    env->boot_tracker(plat.host(1), true);
    env->boot_peer(plat.host(2), overlay::PeerResources{3e9, 2e9, 80e9});  // submitter
    for (int i = 3; i < workers + 3; ++i)
      env->boot_peer(plat.host(i), overlay::PeerResources{3e9, 2e9, 80e9});
    env->finish_bootstrap();
  }
  sim::Engine eng;
  net::Platform plat;
  std::unique_ptr<p2pdc::Environment> env;
};

DistributedConfig small_config(ValueMode mode, int iters = 120) {
  DistributedConfig cfg;
  cfg.problem.n = 34;
  cfg.iters = iters;
  cfg.rcheck = 10;
  cfg.mode = mode;
  cfg.cost = CostProfile{};  // defaults are fine for timing-only tests
  return cfg;
}

TEST(Distributed, RealModeMatchesSequentialBitForBit) {
  // The synchronous strip solver performs exactly the sequential projected
  // Jacobi sweep, so after the same number of iterations the assembled
  // solution must be identical.
  DeployedEnv d{4};
  const DistributedConfig cfg = small_config(ValueMode::Real, 150);
  const SolveReport rep = run_distributed(*d.env, d.plat.host(2), cfg, 4);
  ASSERT_TRUE(rep.ok) << rep.failure;

  ObstacleProblem p = cfg.problem;
  Grid u = initial_guess(p);
  Grid next = u;
  std::vector<double> psi_cache(u.values.size());
  for (int i = 0; i < p.n; ++i)
    for (int j = 0; j < p.n; ++j)
      psi_cache[static_cast<std::size_t>(i * p.n + j)] = p.psi_at(i, j);
  for (int it = 0; it < cfg.iters; ++it) {
    projected_sweep(p, u.values, next.values, p.n, 1, p.n - 2, 1, psi_cache);
    std::swap(u.values, next.values);
  }
  for (int i = 1; i < p.n - 1; ++i)
    for (int j = 1; j < p.n - 1; ++j)
      ASSERT_EQ(rep.solution.at(i, j), u.at(i, j)) << "mismatch at " << i << "," << j;
}

TEST(Distributed, PhantomAndRealProduceIdenticalTimes) {
  // Timing must not depend on whether the numerics actually run.
  double t_real = 0, t_phantom = 0;
  {
    DeployedEnv d{4};
    const SolveReport rep =
        run_distributed(*d.env, d.plat.host(2), small_config(ValueMode::Real), 4);
    ASSERT_TRUE(rep.ok) << rep.failure;
    t_real = rep.solve_seconds;
  }
  {
    DeployedEnv d{4};
    const SolveReport rep =
        run_distributed(*d.env, d.plat.host(2), small_config(ValueMode::Phantom), 4);
    ASSERT_TRUE(rep.ok) << rep.failure;
    t_phantom = rep.solve_seconds;
  }
  EXPECT_NEAR(t_real, t_phantom, 1e-9);
}

TEST(Distributed, MorePeersRunFaster) {
  auto time_with = [&](int peers) {
    DeployedEnv d{8};
    DistributedConfig cfg = small_config(ValueMode::Phantom, 300);
    cfg.problem.n = 514;  // enough compute for scaling to beat latency
    const SolveReport rep = run_distributed(*d.env, d.plat.host(2), cfg, peers);
    EXPECT_TRUE(rep.ok) << rep.failure;
    return rep.solve_seconds;
  };
  const double t2 = time_with(2);
  const double t8 = time_with(8);
  EXPECT_LT(t8, t2);
  EXPECT_GT(t8, t2 / 8);  // communication keeps it off the ideal line
}

TEST(Distributed, AsynchronousSchemeConverges) {
  DeployedEnv d{4};
  DistributedConfig cfg = small_config(ValueMode::Real, 600);
  cfg.scheme = p2psap::Scheme::Asynchronous;
  const SolveReport rep = run_distributed(*d.env, d.plat.host(2), cfg, 4);
  ASSERT_TRUE(rep.ok) << rep.failure;
  // Async iterations still reach a feasible solution close to sequential.
  EXPECT_LE(obstacle_violation(cfg.problem, rep.solution), 1e-12);
  const SequentialResult seq = solve_sequential(cfg.problem, 20000, 1e-10);
  double worst = 0;
  for (int i = 1; i < cfg.problem.n - 1; ++i)
    for (int j = 1; j < cfg.problem.n - 1; ++j)
      worst = std::max(worst, std::fabs(rep.solution.at(i, j) - seq.solution.at(i, j)));
  EXPECT_LT(worst, 5e-3);
}

TEST(Distributed, EarlyStopHaltsAllRanksTogether) {
  DeployedEnv d{4};
  DistributedConfig cfg = small_config(ValueMode::Real, 20000);
  cfg.early_stop = true;
  cfg.tol = 1e-7;
  cfg.rcheck = 20;
  const SolveReport rep = run_distributed(*d.env, d.plat.host(2), cfg, 4);
  ASSERT_TRUE(rep.ok) << rep.failure;
  EXPECT_LT(rep.iterations, 20000);
  EXPECT_LT(rep.residual, 1e-7);
  EXPECT_EQ(rep.iterations % cfg.rcheck, 0);  // stops at a check boundary
}

// Miniature Fig. 10: dPerf's trace-based prediction vs the reference run on
// the identical platform must be close.
TEST(Prediction, MatchesReferenceOnSamePlatform) {
  const int peers = 4;
  ObstacleProblem p;
  p.n = 66;
  const int iters = 150;
  const int rcheck = 10;

  // Reference execution.
  double reference = 0;
  {
    DeployedEnv d{peers};
    DistributedConfig cfg;
    cfg.problem = p;
    cfg.iters = iters;
    cfg.rcheck = rcheck;
    cfg.mode = ValueMode::Phantom;
    ObstacleProblem bench = p;
    bench.n = 34;
    cfg.cost = derive_cost_profile(ir::OptLevel::O3, bench);
    const SolveReport rep = run_distributed(*d.env, d.plat.host(2), cfg, peers);
    ASSERT_TRUE(rep.ok) << rep.failure;
    reference = rep.solve_seconds;
  }

  // dPerf prediction: instrument -> sampled traces -> replay.
  double predicted = 0;
  {
    DeployedEnv d{peers};
    dperf::DperfOptions opt;
    opt.level = ir::OptLevel::O3;
    opt.chunk = rcheck;
    opt.sample_iters = 3 * rcheck;
    const dperf::Dperf pipeline{minic_kernel_source(), opt};
    auto traces = pipeline.traces(kernel_workload(p, iters, rcheck), peers);
    DistributedConfig cfg;
    cfg.problem = p;
    const dperf::Prediction pred = dperf::replay_on(
        *d.env, d.plat.host(2), make_task_spec(cfg, peers), std::move(traces));
    ASSERT_TRUE(pred.computation.ok) << pred.computation.failure;
    predicted = pred.solve_seconds;
  }

  EXPECT_GT(reference, 0);
  EXPECT_GT(predicted, 0);
  EXPECT_NEAR(predicted / reference, 1.0, 0.2)
      << "reference " << reference << "s vs predicted " << predicted << "s";
}

}  // namespace
}  // namespace pdc::obstacle
