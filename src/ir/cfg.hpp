// Control-flow analyses over IrFunction: predecessors, dominator sets and
// natural-loop discovery, used by loop-invariant code motion.
#pragma once

#include <vector>

#include "ir/ir.hpp"

namespace pdc::ir {

struct Cfg {
  std::vector<std::vector<int>> succs;
  std::vector<std::vector<int>> preds;
  /// dom[b] = set of blocks dominating b (as a bitset over block ids).
  std::vector<std::vector<bool>> dom;

  bool dominates(int a, int b) const { return dom[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)]; }
};

Cfg analyze_cfg(const IrFunction& fn);

/// A natural loop: header plus the set of blocks that reach the back edge
/// source without passing through the header.
struct Loop {
  int header = 0;
  std::vector<int> blocks;       // includes the header
  std::vector<bool> contains;    // membership bitset

  /// Blocks created after loop discovery (hoisting preheaders) lie past the
  /// bitset and are by construction outside every previously found loop.
  bool has(int b) const {
    return static_cast<std::size_t>(b) < contains.size() &&
           contains[static_cast<std::size_t>(b)];
  }
};

/// Finds all natural loops (one per back edge; loops sharing a header are
/// merged). Ordered outermost-last so innermost loops come first.
std::vector<Loop> find_loops(const IrFunction& fn, const Cfg& cfg);

}  // namespace pdc::ir
