// Shared types and control messages of the P2PDC hybrid topology manager
// (paper §III-A): Server, Trackers on a line topology ordered by IP, and
// Peers grouped into per-tracker zones.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "net/platform.hpp"
#include "support/ipv4.hpp"
#include "support/time.hpp"

namespace pdc::overlay {

using net::NodeIdx;

/// Resources a peer publishes to its tracker (paper: "peers publish their
/// information regarding processor, memory, hard disk and current usage
/// state to the tracker of the zone").
struct PeerResources {
  double cpu_hz = 0;
  double mem_bytes = 0;
  double disk_bytes = 0;
};

/// Lightweight reference to a tracker, as carried in tracker lists.
struct TrackerRef {
  NodeIdx node = -1;
  Ipv4 ip;
  friend bool operator==(const TrackerRef&, const TrackerRef&) = default;
};

/// A peer entry as returned by a tracker during peers collection.
struct PeerRef {
  NodeIdx node = -1;
  Ipv4 ip;
  PeerResources res;
};

/// Requirements attached to a peer request (paper: "this message contains
/// information regarding computation like task's description, number of
/// peers needed initially, peers requirements").
struct Requirements {
  double min_cpu_hz = 0;
};

/// Timing and sizing knobs of the topology manager.
struct OverlayConfig {
  Time update_period = 2.0;      // peer resource state updates
  Time heartbeat_period = 1.0;   // tracker <-> tracker keepalive
  Time fail_timeout = 5.0;       // the paper's detection time "T"
  Time stats_period = 10.0;      // tracker -> server statistics
  Time rpc_timeout = 3.0;        // request/reply round trips
  int neighbor_set_size = 6;     // |N|, split half lower / half higher IPs
  double ctrl_bytes = 256;       // base control message size on the wire
  double ref_bytes = 16;         // additional wire bytes per carried node ref
};

// --- control messages ------------------------------------------------------

// Server-bound.
struct GetTrackersReq { NodeIdx from; };
struct TrackerRegister { TrackerRef tracker; };
struct TrackerDeadNotice { NodeIdx dead; NodeIdx reporter; };
struct ZoneStats {
  NodeIdx tracker;
  int peers = 0;
  int busy = 0;
  double donated_cpu_hz = 0;
};

// Tracker <-> tracker.
struct TrackerJoinReq { TrackerRef joiner; };
struct NeighborAdd { TrackerRef tracker; };
struct NeighborDead { NodeIdx dead; std::vector<TrackerRef> candidates; };
struct TrackerHeartbeat { NodeIdx from; };

// Peer <-> tracker.
struct PeerJoinReq { NodeIdx peer; Ipv4 ip; PeerResources res; };
struct StateUpdate { NodeIdx peer; PeerResources res; };
struct StateAck { NodeIdx tracker; };
struct PeerBusyNotice { NodeIdx peer; bool busy; };

// Peers collection.
struct PeerRequest { NodeIdx submitter; Requirements req; int max_peers; };
struct TrackerListReq { NodeIdx from; Ipv4 ref_ip; bool side_greater; };

// Reservation (paper: "peers reserved for a computation are considered busy
// and cannot be reserved for another computation").
struct ReserveReq { NodeIdx submitter; std::uint64_t ticket; };
struct ReleaseReq { NodeIdx submitter; };

// Replies (routed to the requesting actor's RPC mailbox).
struct GetTrackersReply { std::vector<TrackerRef> trackers; };
struct TrackerJoinAck { TrackerRef accepter; std::vector<TrackerRef> neighbors; };
struct PeerJoinAck { TrackerRef tracker; std::vector<TrackerRef> tracker_list; };
struct PeerListReply { NodeIdx tracker; std::vector<PeerRef> peers; };
struct TrackerListReply { std::vector<TrackerRef> trackers; };
struct ReserveAck { NodeIdx peer; bool ok; std::uint64_t ticket; };

using CtrlMsg =
    std::variant<GetTrackersReq, TrackerRegister, TrackerDeadNotice, ZoneStats,
                 TrackerJoinReq, NeighborAdd, NeighborDead, TrackerHeartbeat,
                 PeerJoinReq, StateUpdate, StateAck, PeerBusyNotice, PeerRequest,
                 TrackerListReq, ReserveReq, ReleaseReq, GetTrackersReply,
                 TrackerJoinAck, PeerJoinAck, PeerListReply, TrackerListReply,
                 ReserveAck>;

/// True for message kinds that answer an RPC initiated by the destination
/// actor; these are delivered to the RPC mailbox instead of the main one.
inline bool is_rpc_reply(const CtrlMsg& m) {
  return std::holds_alternative<GetTrackersReply>(m) ||
         std::holds_alternative<TrackerJoinAck>(m) ||
         std::holds_alternative<PeerJoinAck>(m) ||
         std::holds_alternative<PeerListReply>(m) ||
         std::holds_alternative<TrackerListReply>(m) ||
         std::holds_alternative<ReserveAck>(m);
}

/// Wire size of a control message: base cost plus a per-reference payload
/// for messages that carry node lists.
double ctrl_wire_bytes(const OverlayConfig& cfg, const CtrlMsg& m);

}  // namespace pdc::overlay
