// Optimization level pipelines, mirroring the GCC levels the paper compiles
// the obstacle problem with ("the transformed source code is compiled, in
// turn, using GCC optimization levels 0, 1, 2, 3 and s", §III-D):
//
//   O0: naive lowering, every scalar access through memory;
//   O1: variable promotion (mem2reg), constant folding, copy propagation,
//       dead-code elimination;
//   O2: O1 + local CSE + strength reduction (inside the folder);
//   O3: O2 + loop unrolling (AST level) + loop-invariant code motion;
//   Os: O2 + LICM but no unrolling — optimizes without growing code size.
#pragma once

#include <string>

#include "ir/ir.hpp"
#include "minic/ast.hpp"

namespace pdc::ir {

enum class OptLevel { O0, O1, O2, O3, Os };

const char* opt_level_name(OptLevel lvl);
/// Parses "0","1","2","3","s" (or "O0".."Os").
OptLevel parse_opt_level(const std::string& text);
/// All levels, in the paper's order {0, 1, 2, 3, s}.
const std::vector<OptLevel>& all_opt_levels();

/// Type checks, optionally transforms (unroll), lowers and optimizes the
/// program at the given level. The input AST is not modified.
IrProgram compile(const minic::Program& program, OptLevel level);

/// Convenience: parse + compile from source text.
IrProgram compile_source(const std::string& source, OptLevel level);

}  // namespace pdc::ir
