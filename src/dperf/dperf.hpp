// The dPerf facade: the full prediction pipeline of the paper's Fig. 6.
//
//   source code -> automatic static analysis (block decomposition) ->
//   automatically instrumented code (unparsed to *source text* and
//   re-parsed, as ROSE does) -> execution of the instrumented code
//   (block benchmarking / trace recording in the VM, vPAPI timers) ->
//   traces for each process -> trace-based network simulation on a
//   platform description -> predicted time.
#pragma once

#include <string>
#include <vector>

#include "dperf/blocks.hpp"
#include "dperf/trace.hpp"
#include "dperf/tracegen.hpp"
#include "ir/pipeline.hpp"
#include "p2pdc/environment.hpp"

namespace pdc::dperf {

struct DperfOptions {
  ir::OptLevel level = ir::OptLevel::O0;
  double ref_host_hz = 3e9;   // frequency of the measurement platform
  int iters_param_index = 1;  // which int workload parameter is the outer trip count
  int sample_iters = 75;      // iterations actually executed when tracing
  int chunk = 25;             // steady-state replication unit (>= residual period)
};

class Dperf {
 public:
  /// Parses, checks and instruments `source`; the instrumented AST is
  /// unparsed to text and re-parsed (round trip through source code).
  /// Throws minic::CompileError on invalid input.
  Dperf(const std::string& source, DperfOptions options);

  const DperfOptions& options() const { return options_; }
  const std::string& instrumented_source() const { return instrumented_source_; }
  const InstrumentedProgram& instrumented() const { return inst_; }

  /// Block benchmarking at the configured optimization level.
  BlockTimings benchmark(const Workload& workload, int rank = 0, int nprocs = 1) const;

  /// Produces the trace of one rank for the full workload: the program runs
  /// with the iteration parameter reduced to sample_iters, then the trace is
  /// extrapolated back to the full count (dPerf's scale-up).
  Trace trace_for_rank(const Workload& full_workload, int rank, int nprocs) const;

  /// Traces for every rank.
  std::vector<Trace> traces(const Workload& full_workload, int nprocs) const;

 private:
  DperfOptions options_;
  InstrumentedProgram inst_;
  std::string instrumented_source_;
};

/// Result of a trace-based replay on a P2PDC deployment.
struct Prediction {
  p2pdc::ComputationResult computation;
  /// Wall-clock span of the replayed execution proper (first rank start to
  /// last rank end), the quantity the paper's figures report.
  double solve_seconds = 0;
  /// Including P2PDC peers collection / task allocation / result gathering.
  double total_seconds = 0;
};

/// Replays one trace per rank through a P2PDC computation on `env`'s
/// platform: compute segments become simulated busy time (rescaled by the
/// target host frequency), communication events travel the modelled
/// network through P2PSAP channels. This is the "trace-based network
/// simulation" stage with P2PDC in the role of SimGrid's MSG.
Prediction replay_on(p2pdc::Environment& env, net::NodeIdx submitter_host,
                     p2pdc::TaskSpec spec, std::vector<Trace> traces,
                     Time warmup = 12.0);

}  // namespace pdc::dperf
