// pdc_client: one-shot client for the pdc_serve daemon. Submits a scenario
// or campaign, fetches stats, pings, or asks for a graceful shutdown — one
// request per invocation, response body on stdout (see serve/protocol.hpp
// for the wire format and examples/README.md "Serving & sharding").
//
//   $ ./example_pdc_client --unix /tmp/pdc.sock run examples/scenarios/smoke.scn
//   $ ./example_pdc_client --unix /tmp/pdc.sock run sweep.cmp
//   $ ./example_pdc_client --tcp 7411 stats | python3 -m json.tool
//   $ ./example_pdc_client --unix /tmp/pdc.sock shutdown
//
// Options:
//   --unix <path>     connect to a Unix-domain socket (default /tmp/pdc.sock)
//   --tcp <port>      connect to 127.0.0.1:<port> instead
//   --cmp             treat stdin input ("run -") as campaign text
//   --expect hit|miss fail (exit 4) unless the server's answer carried that
//                     cache tag — CI asserts warm-cache behaviour with this
//
// Commands:
//   run <file|->      submit the .scn/.cmp file (kind from the extension)
//   stats             print the ServeStats JSON snapshot
//   metrics           print the Prometheus text exposition of the same counters
//   ping              liveness probe (prints the server's banner)
//   shutdown          ask the daemon to drain and exit
//
// The cache tag of a RUN answer is reported on stderr (`tag: hit`), keeping
// stdout clean JSON for piping.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "serve/protocol.hpp"
#include "support/socket.hpp"

int main(int argc, char** argv) {
  using namespace pdc;
  std::string unix_path = "/tmp/pdc.sock";
  int tcp_port = -1;
  bool stdin_cmp = false;
  std::string expect;
  const char* command = nullptr;
  const char* arg = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--unix") == 0 && i + 1 < argc) unix_path = argv[++i];
    else if (std::strcmp(argv[i], "--tcp") == 0 && i + 1 < argc)
      tcp_port = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--cmp") == 0) stdin_cmp = true;
    else if (std::strcmp(argv[i], "--expect") == 0 && i + 1 < argc) expect = argv[++i];
    else if (command == nullptr) command = argv[i];
    else arg = argv[i];
  }
  if (command == nullptr ||
      (std::strcmp(command, "run") == 0) != (arg != nullptr)) {
    std::fprintf(stderr,
                 "usage: pdc_client [--unix path | --tcp port] [--cmp] "
                 "[--expect hit|miss] run <file.scn|file.cmp|-> | stats | metrics | "
                 "ping | shutdown\n");
    return 2;
  }

  serve::Request req;
  if (std::strcmp(command, "run") == 0) {
    bool cmp = stdin_cmp;
    if (std::strcmp(arg, "-") == 0) {
      std::stringstream buf;
      buf << std::cin.rdbuf();
      req.body = buf.str();
    } else {
      std::ifstream in(arg);
      if (!in) {
        std::fprintf(stderr, "cannot open '%s'\n", arg);
        return 1;
      }
      std::stringstream buf;
      buf << in.rdbuf();
      req.body = buf.str();
      const char* dot = std::strrchr(arg, '.');
      cmp = cmp || (dot != nullptr && std::strcmp(dot, ".cmp") == 0);
    }
    req.kind = cmp ? serve::RequestKind::RunCampaign : serve::RequestKind::RunScenario;
  } else if (std::strcmp(command, "stats") == 0) {
    req.kind = serve::RequestKind::Stats;
  } else if (std::strcmp(command, "metrics") == 0) {
    req.kind = serve::RequestKind::Metrics;
  } else if (std::strcmp(command, "ping") == 0) {
    req.kind = serve::RequestKind::Ping;
  } else if (std::strcmp(command, "shutdown") == 0) {
    req.kind = serve::RequestKind::Shutdown;
  } else {
    std::fprintf(stderr, "unknown command '%s'\n", command);
    return 2;
  }

  try {
    Socket conn = tcp_port >= 0 ? connect_tcp("127.0.0.1", tcp_port)
                                : connect_unix(unix_path);
    conn.set_io_timeout(120.0);  // a cold run can take a while
    serve::write_request(conn, req);
    const serve::Response resp = serve::read_response(conn);
    if (!resp.ok) {
      std::fprintf(stderr, "server error: %s\n", resp.body.c_str());
      return 3;
    }
    std::fputs(resp.body.c_str(), stdout);
    if (!resp.body.empty() && resp.body.back() != '\n') std::fputc('\n', stdout);
    if (resp.tag == "hit" || resp.tag == "miss")
      std::fprintf(stderr, "tag: %s\n", resp.tag.c_str());
    if (!expect.empty() && resp.tag != expect) {
      std::fprintf(stderr, "expected tag '%s', got '%s'\n", expect.c_str(),
                   resp.tag.c_str());
      return 4;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pdc_client failed: %s\n", e.what());
    return 1;
  }
}
