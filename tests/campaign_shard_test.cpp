// Distributed campaign fabric: shard selection must partition the run
// matrix (disjoint, exhaustive, order-preserving for every 0/n..n-1/n), and
// merging shard output directories must reproduce — byte for byte — the
// canonical report of a single-process -j1 execution. This is the contract
// that makes `--shard i/n` + `--merge` a drop-in replacement for one big
// run.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "campaign/executor.hpp"
#include "campaign/spec.hpp"
#include "expect_json_equal.hpp"

namespace pdc::campaign {
namespace {

namespace fs = std::filesystem;

/// Fast multi-axis grid (2 peers x 2 seeds x 2 reps = 8 runs, ~10 ms each).
CampaignSpec sweep_campaign() {
  CampaignSpec spec;
  spec.name = "shardsweep";
  spec.base.name = "shardsweep";
  spec.base.platform = scenario::PlatformSpec::lan();
  spec.base.run.mode = scenario::Mode::Reference;
  spec.base.run.grid_n = 34;
  spec.base.run.iters = 6;
  spec.base.run.bench_n = 18;
  spec.base.run.bench_iters = 3;
  spec.base.run.bench_rcheck = 2;
  spec.peers = {2, 3};
  spec.seeds = {1, 2};
  spec.repetitions = 2;
  return spec;
}

struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const char* name) : path(fs::path("shard_test_out") / name) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
};

TEST(ShardRuns, EveryPartitionIsDisjointExhaustiveAndOrdered) {
  const std::vector<CampaignRun> all = expand(sweep_campaign());
  ASSERT_EQ(all.size(), 8u);
  for (int n = 1; n <= static_cast<int>(all.size()) + 1; ++n) {
    std::set<std::string> seen;
    std::size_t total = 0;
    for (int i = 0; i < n; ++i) {
      const std::vector<CampaignRun> shard = shard_runs(all, i, n);
      std::size_t prev_index = 0;
      bool first = true;
      for (const CampaignRun& run : shard) {
        // Disjoint: no key may appear in two shards.
        EXPECT_TRUE(seen.insert(run.key).second) << run.key << " in two shards";
        // Shards keep the original expansion index (resume/merge depend on
        // it) in increasing order.
        EXPECT_EQ(run.index % static_cast<std::size_t>(n),
                  static_cast<std::size_t>(i));
        if (!first) EXPECT_GT(run.index, prev_index);
        prev_index = run.index;
        first = false;
      }
      total += shard.size();
      // Round-robin balance: shard sizes differ by at most one.
      EXPECT_GE(shard.size(), all.size() / static_cast<std::size_t>(n));
      EXPECT_LE(shard.size(), all.size() / static_cast<std::size_t>(n) + 1);
    }
    // Exhaustive: the shards cover the whole matrix.
    EXPECT_EQ(total, all.size()) << "n=" << n;
    EXPECT_EQ(seen.size(), all.size()) << "n=" << n;
  }
}

TEST(ShardRuns, RejectsBadShardArguments) {
  const std::vector<CampaignRun> all = expand(sweep_campaign());
  EXPECT_THROW(shard_runs(all, 0, 0), std::invalid_argument);
  EXPECT_THROW(shard_runs(all, -1, 2), std::invalid_argument);
  EXPECT_THROW(shard_runs(all, 2, 2), std::invalid_argument);
}

TEST(ShardMerge, TwoShardsMergeByteIdenticalToSingleProcess) {
  const CampaignSpec spec = sweep_campaign();

  // Ground truth: one sequential process.
  ScratchDir single{"single"};
  ExecutorOptions so;
  so.jobs = 1;
  so.out_dir = single.path.string();
  Executor sx{spec, so};
  const CampaignReport sr = sx.execute();
  ASSERT_EQ(sr.errors, 0u);

  // Two shard "processes" writing separate directories.
  ScratchDir s0{"s0"}, s1{"s1"};
  for (int i = 0; i < 2; ++i) {
    ExecutorOptions o;
    o.out_dir = (i == 0 ? s0 : s1).path.string();
    o.shard_index = i;
    o.shard_count = 2;
    Executor ex{spec, o};
    const CampaignReport r = ex.execute();
    EXPECT_EQ(r.total, 4u);
    EXPECT_EQ(r.errors, 0u);
    // Sharded sessions write a shard-suffixed partial report, never
    // report.json (concurrent shards may share a directory).
    EXPECT_TRUE(fs::exists((i == 0 ? s0 : s1).path /
                           ("report-shard" + std::to_string(i) + "of2.json")));
    EXPECT_FALSE(fs::exists((i == 0 ? s0 : s1).path / "report.json"));
  }

  // Merge the two shard directories.
  ScratchDir merged{"merged"};
  ExecutorOptions mo;
  mo.out_dir = merged.path.string();
  Executor mx{spec, mo};
  const CampaignReport mr = mx.merge({s0.path.string(), s1.path.string()});
  EXPECT_EQ(mr.total, 8u);
  EXPECT_EQ(mr.errors, 0u);

  // The canonical JSON must be byte-identical to the single process's, and
  // the CSV (no session fields) identical outright.
  EXPECT_EQ(mr.to_json(/*canonical=*/true), sr.to_json(/*canonical=*/true));
  EXPECT_EQ(mr.to_csv(), sr.to_csv());

  // Field-by-field too, so a mismatch names the offending path.
  expect_json_equal(parse_json(mr.to_json(true)), parse_json(sr.to_json(true)),
                    "report");

  // The merge directory holds the full record set and the canonical report.
  for (const CampaignRun& run : expand(spec))
    EXPECT_TRUE(fs::exists(merged.path / "runs" / (run.key + ".json"))) << run.key;
  EXPECT_TRUE(fs::exists(merged.path / "report.json"));
}

TEST(ShardMerge, ShardsMayShareOneDirectoryAsAWorkQueue) {
  const CampaignSpec spec = sweep_campaign();
  ScratchDir shared{"shared"};
  for (int i = 0; i < 2; ++i) {
    ExecutorOptions o;
    o.out_dir = shared.path.string();
    o.shard_index = i;
    o.shard_count = 2;
    Executor ex{spec, o};
    EXPECT_EQ(ex.execute().errors, 0u);
  }
  ScratchDir merged{"shared_merged"};
  ExecutorOptions mo;
  mo.out_dir = merged.path.string();
  Executor mx{spec, mo};
  const CampaignReport mr = mx.merge({shared.path.string()});

  ExecutorOptions so;
  Executor sx{spec, so};
  const CampaignReport sr = sx.execute();
  EXPECT_EQ(mr.to_json(true), sr.to_json(true));
}

TEST(ShardMerge, MissingRecordBecomesAnError) {
  const CampaignSpec spec = sweep_campaign();
  ScratchDir s0{"partial"};
  ExecutorOptions o;
  o.out_dir = s0.path.string();
  o.shard_index = 0;
  o.shard_count = 2;  // only half the matrix present
  Executor ex{spec, o};
  ASSERT_EQ(ex.execute().errors, 0u);

  ScratchDir merged{"partial_merged"};
  ExecutorOptions mo;
  mo.out_dir = merged.path.string();
  Executor mx{spec, mo};
  const CampaignReport mr = mx.merge({s0.path.string()});
  EXPECT_EQ(mr.total, 8u);
  EXPECT_EQ(mr.errors, 4u);  // the shard-1 records are missing
  for (const Outcome& out : mx.outcomes())
    if (!out.ok()) EXPECT_NE(out.error.find("missing record"), std::string::npos);
}

TEST(ShardMerge, MergeRequiresUnshardedExecutor) {
  ExecutorOptions o;
  o.shard_index = 0;
  o.shard_count = 2;
  Executor ex{sweep_campaign(), o};
  EXPECT_THROW(ex.merge({"nowhere"}), std::logic_error);
}

}  // namespace
}  // namespace pdc::campaign
