#include "serve/cache.hpp"

#include "support/env.hpp"

namespace pdc::serve {

std::size_t default_cache_bytes() {
  // env_int is the project-wide knob reader; a non-positive override
  // disables caching outright (every request simulates), which is the
  // honest interpretation of "no cache budget".
  const int v = env_int("PDC_SERVE_CACHE_BYTES", 64 << 20);
  return v > 0 ? static_cast<std::size_t>(v) : 0;
}

MemoCache::MemoCache(std::size_t budget_bytes)
    : budget_(budget_bytes == static_cast<std::size_t>(-1) ? default_cache_bytes()
                                                           : budget_bytes) {}

std::optional<std::string> MemoCache::get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.value;
}

void MemoCache::put(const std::string& key, std::string value) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    if (key.size() + value.size() > budget_) {
      // An oversized replacement must not stay resident (evicting it to
      // budget would drain the whole working set first): drop the old entry
      // and don't cache the new value.
      bytes_ -= key.size() + it->second.value.size();
      lru_.erase(it->second.lru_it);
      map_.erase(it);
      ++evictions_;
      return;
    }
    bytes_ -= it->second.value.size();
    bytes_ += value.size();
    it->second.value = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    evict_to_budget_locked();
    return;
  }
  if (key.size() + value.size() > budget_) return;  // would evict everything
  ++insertions_;
  lru_.push_front(key);
  bytes_ += key.size() + value.size();
  map_.emplace(key, Entry{std::move(value), lru_.begin()});
  evict_to_budget_locked();
}

void MemoCache::evict_to_budget_locked() {
  while (bytes_ > budget_ && !lru_.empty()) {
    const std::string& victim = lru_.back();
    auto it = map_.find(victim);
    bytes_ -= victim.size() + it->second.value.size();
    map_.erase(it);
    lru_.pop_back();
    ++evictions_;
  }
}

CacheStats MemoCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.insertions = insertions_;
  s.entries = map_.size();
  s.bytes = bytes_;
  s.budget_bytes = budget_;
  return s;
}

}  // namespace pdc::serve
