// Serving-layer observability: per-request counters, memo-cache state, the
// hot dPerf memo footprint, queue depth and latency percentiles — rendered
// as the JSON document the STATS endpoint returns and the daemon writes on
// shutdown.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "scenario/runner.hpp"
#include "serve/cache.hpp"
#include "support/stats.hpp"

namespace pdc::serve {

/// A point-in-time snapshot of the server's counters.
struct ServeStats {
  std::uint64_t requests = 0;        // everything, including pings
  std::uint64_t scenario_requests = 0;
  std::uint64_t campaign_requests = 0;
  std::uint64_t spool_jobs = 0;      // files picked up from the spool
  std::uint64_t stats_requests = 0;
  std::uint64_t pings = 0;
  std::uint64_t errors = 0;          // malformed requests + failed runs
  CacheStats cache;                  // the RunRecord memo cache
  scenario::MemoStats memos;         // hot dPerf cost-profile / trace memos
  int in_flight = 0;                 // requests being processed right now
  int queue_peak = 0;                // max in_flight observed
  double uptime_seconds = 0;
  /// Request latency (seconds), split by whether the answer came from the
  /// memo cache — the cold/warm split that makes the cache's value visible.
  Summary latency_hit;
  Summary latency_miss;

  std::string to_json() const;
};

/// Thread-safe accumulator behind ServeStats. Latency samples are kept in
/// bounded rings (most recent kMaxSamples per class) so a long-lived daemon
/// cannot grow without bound; percentiles describe recent traffic.
class StatsCollector {
 public:
  static constexpr std::size_t kMaxSamples = 4096;

  void count_request();
  void count_scenario();
  void count_campaign();
  void count_spool_job();
  void count_stats();
  void count_ping();
  void count_error();

  /// Tracks in-flight depth; returns the new depth (for queue_peak).
  void enter_request();
  void leave_request();

  void record_latency(bool cache_hit, double seconds);

  /// Snapshot, merging in the cache's and the process memos' current state.
  ServeStats snapshot(const MemoCache& cache, double uptime_seconds) const;

 private:
  mutable std::mutex mutex_;
  ServeStats totals_;  // counters only; cache/memos/latency filled on snapshot
  std::vector<double> hit_latencies_;
  std::vector<double> miss_latencies_;
  std::size_t hit_next_ = 0, miss_next_ = 0;  // ring cursors
};

}  // namespace pdc::serve
