#include "support/csv.hpp"

#include <stdexcept>

namespace pdc {

std::string csv_escape(std::string_view cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(cell);
  std::string out;
  out.reserve(cell.size() + 2);
  out += '"';
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(std::vector<std::string> header) : columns_(header.size()) {
  write_line(header);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_)
    throw std::invalid_argument("csv row has " + std::to_string(cells.size()) +
                                " cells, header has " + std::to_string(columns_));
  write_line(cells);
}

void CsvWriter::write_line(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ += ',';
    out_ += csv_escape(cells[i]);
  }
  out_ += '\n';
}

}  // namespace pdc
