// The discrete-event simulation engine.
//
// Single-threaded, deterministic: events fire in (time, insertion-order)
// sequence, so two runs with the same seed produce identical schedules. All
// higher layers (network flows, P2PSAP channels, overlay protocols, trace
// replay) are built on this kernel.
//
// The kernel is allocation-free on its steady-state paths, built around two
// ideas:
//
//  * A bucketed calendar queue. Simulation workloads are massively
//    time-coincident (same-time posts, synchronous iteration rounds, equal
//    link latencies), so the queue is a min-heap of *distinct* times plus a
//    FIFO bucket of 16-byte POD events per time (an open-addressing map
//    resolves time -> bucket). Scheduling into an existing time is an
//    append — no sift at all; the heap only works per distinct timestamp.
//    FIFO append order is insertion order, so the (time, insertion-order)
//    contract needs no per-event sequence number.
//
//  * Out-of-band payloads. Events carry an index, never a closure: closures
//    live in a recycled pool of small-buffer-optimized EventFns (EventFn's
//    inline budget fits every real capture set in src/), coroutine resumes
//    (sleep, mailbox wakeup, latch release) carry just the raw handle, and
//    timers are generation-checked slots whose arm/cancel never allocates.
//
// Stale timer arms (a guard cancelled early, a timed receive satisfied by a
// push) are shed by a deterministic amortized sweep instead of haunting the
// queue until their nominal fire time. EngineStats counts how often each
// path runs — the inline-vs-heap closure split is the regression tripwire
// for "something started allocating per event again".
#pragma once

#include <algorithm>
#include <bit>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <type_traits>
#include <vector>

#include "sim/event_fn.hpp"
#include "sim/process.hpp"
#include "support/time.hpp"

namespace pdc::sim {

class Engine;

/// Aggregate kernel counters, recorded per run next to FlowNetStats.
struct EngineStats {
  std::uint64_t events_dispatched = 0;
  /// Closures scheduled whose capture fit EventFn's inline buffer. The
  /// steady-state simulation paths (sleep, mailbox push/recv/recv_for, slot
  /// arm/cancel) schedule no closures at all, so closures_heap staying at
  /// zero *and* closures_inline growing only with genuine callback events is
  /// the allocation-free contract made observable.
  std::uint64_t closures_inline = 0;
  /// Closures that overflowed to the slab pool (capture > EventFn::kInlineSize).
  std::uint64_t closures_heap = 0;
  /// Raw coroutine-handle resumes scheduled (the no-closure fast path).
  std::uint64_t resumes = 0;
  /// Timer-slot arms (each is one allocation-free queue event).
  std::uint64_t slot_arms = 0;
  /// Slot events shed because their generation went stale (superseded by a
  /// re-arm, cancelled, or eagerly destroyed — e.g. a timed receive
  /// satisfied before its timeout), whether popped lazily or removed by the
  /// amortized queue sweep.
  std::uint64_t stale_slot_events = 0;
  std::uint64_t peak_queue_depth = 0;
};

/// Cancellation token for a callback scheduled via schedule_cancellable():
/// a generation-checked id into the engine's timer-slot table. Cheap to
/// copy; cancelling an already-fired, already-cancelled or empty handle is a
/// no-op (the generation went stale). cancel() frees the closure (and
/// whatever it captures) eagerly and recycles the slot. A handle must not
/// outlive its engine.
class TimerHandle {
 public:
  TimerHandle() = default;
  void cancel();
  /// True while the callback is still pending (not cancelled, not fired).
  bool active() const;

 private:
  friend class Engine;
  TimerHandle(Engine* engine, int slot, std::uint64_t gen)
      : engine_(engine), slot_(slot), gen_(gen) {}

  Engine* engine_ = nullptr;
  int slot_ = -1;
  std::uint64_t gen_ = 0;
};

class Engine {
 public:
  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Time now() const { return now_; }

  /// Schedules `fn` at the current simulated time (after already-queued
  /// events at this time). Accepts any void() callable (or an EventFn); the
  /// closure is constructed directly into a recycled pool entry, so the
  /// steady state performs no allocation and exactly one capture copy.
  template <class F>
  void post(F&& fn) {
    schedule_at(now_, std::forward<F>(fn));
  }
  template <class F>
  void schedule_at(Time t, F&& fn) {
    const std::uint32_t idx = alloc_closure();
    EventFn& e = closure_pool_[idx];
    if constexpr (std::is_same_v<std::decay_t<F>, EventFn>)
      e = std::forward<F>(fn);
    else
      e.emplace(std::forward<F>(fn));
    count_closure(e);
    push_event(t, kClosure, idx, 0);
  }
  template <class F>
  void schedule_after(Time dt, F&& fn) {
    schedule_at(now_ + dt, std::forward<F>(fn));
  }
  /// Like schedule_after, but returns a handle whose cancel() suppresses the
  /// callback if it has not fired yet (and releases the closure eagerly).
  /// Implemented as a one-shot timer slot, so the whole arm/fire/cancel
  /// cycle is allocation-free for inline-sized captures.
  template <class F>
  TimerHandle schedule_cancellable(Time dt, F&& fn) {
    const int slot = create_timer_slot(std::forward<F>(fn), /*one_shot=*/true);
    arm_timer_slot(slot, dt);
    return TimerHandle{this, slot, timer_slots_[static_cast<std::size_t>(slot)].gen};
  }

  /// Coroutine fast path: schedules a raw handle resume — no closure, no
  /// pool entry, nothing to destroy. This is what sleep, mailbox wakeups and
  /// latch releases ride on.
  void post_resume(std::coroutine_handle<> h) { schedule_resume(0.0, h); }
  void schedule_resume(Time dt, std::coroutine_handle<> h) {
    ++stats_.resumes;
    push_event(now_ + dt, kResume, 0,
               reinterpret_cast<std::uint64_t>(h.address()));
  }

  /// Persistent timer slot: the callback is registered once, then arm/cancel
  /// are allocation-free (events carry only the slot id and a generation).
  /// Re-arming implicitly cancels the previous pending arm. Built for hot
  /// one-timer-per-component users like FlowNet's completion timer.
  /// A one_shot slot destroys itself after its callback fires — the backing
  /// for schedule_cancellable and mailbox receive timeouts.
  template <class F>
  int create_timer_slot(F&& fn, bool one_shot = false) {
    const int slot = alloc_timer_slot(one_shot);
    EventFn& e = timer_slots_[static_cast<std::size_t>(slot)].fn;
    if constexpr (std::is_same_v<std::decay_t<F>, EventFn>)
      e = std::forward<F>(fn);
    else
      e.emplace(std::forward<F>(fn));
    count_closure(e);
    return slot;
  }
  void arm_timer_slot(int slot, Time dt);
  void cancel_timer_slot(int slot);
  /// Frees the slot's callback and recycles the id for a later
  /// create_timer_slot. Safe to call from inside the slot's own callback:
  /// the destruction is deferred to the end of the dispatch (the pending arm
  /// still goes stale immediately), so the closure is never destroyed
  /// mid-execution.
  void destroy_timer_slot(int slot);
  bool timer_slot_armed(int slot) const {
    return timer_slots_[static_cast<std::size_t>(slot)].armed;
  }
  std::size_t timer_slot_count() const { return timer_slots_.size(); }

  /// Takes ownership of a process coroutine and schedules its first resume
  /// at the current time.
  void spawn(Process p, std::string name = {});

  /// Awaitable: suspends the calling coroutine for `dt` simulated seconds.
  struct SleepAwaiter {
    Engine* engine;
    Time dt;
    bool await_ready() const noexcept { return dt <= 0; }
    void await_suspend(std::coroutine_handle<> h) { engine->schedule_resume(dt, h); }
    void await_resume() const noexcept {}
  };
  SleepAwaiter sleep(Time dt) { return SleepAwaiter{this, dt}; }

  /// Runs until the event queue drains. Rethrows the first uncaught
  /// exception escaping a process.
  void run();
  /// Runs until the queue drains or the next event lies beyond `t_end`
  /// (the clock then advances to exactly `t_end`).
  void run_until(Time t_end);
  /// Dispatches a single event. Returns false when the queue is empty.
  bool step();

  std::size_t live_processes() const { return live_processes_; }
  std::uint64_t dispatched_events() const { return stats_.events_dispatched; }
  const EngineStats& stats() const { return stats_; }
  bool queue_empty() const { return pending_events_ == 0; }

 private:
  friend struct Process::promise_type::FinalAwaiter;
  friend class TimerHandle;

  // Event kinds, packed into the top bits of the payload word. Within a
  // bucket, FIFO order *is* insertion order, so events carry no sequence
  // number at all.
  static constexpr std::uint64_t kClosure = 0;
  static constexpr std::uint64_t kResume = 1;
  static constexpr std::uint64_t kSlot = 2;
  static constexpr int kKindShift = 62;
  static constexpr std::uint64_t kPayloadMask = (std::uint64_t{1} << kKindShift) - 1;

  /// 16 bytes, trivially copyable. `a` = kind | payload (closure-pool index
  /// or slot id); `b` = slot generation or coroutine address.
  struct Event {
    std::uint64_t a;
    std::uint64_t b;
  };

  /// All events scheduled for one exact timestamp, in insertion order.
  struct Bucket {
    std::vector<Event> events;
    std::uint32_t cursor = 0;
  };

  struct TimerSlot {
    EventFn fn;
    std::uint64_t gen = 0;  // bumped on arm/cancel; stale events are skipped
    bool armed = false;
    bool one_shot = false;
    bool pending_destroy = false;  // destroy requested from inside own callback
  };

  static std::uint64_t time_key(Time t) { return std::bit_cast<std::uint64_t>(t); }
  static std::uint64_t hash_key(std::uint64_t x) {
    // splitmix64 finalizer: cheap and well-mixed for IEEE-754 bit patterns.
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
  }

  void push_event(Time t, std::uint64_t kind, std::uint64_t payload, std::uint64_t b) {
    if (!(t > now_)) t = now_;  // never schedule into the past
    Bucket& bkt = (current_bucket_ >= 0 && t == now_)
                      ? buckets_[static_cast<std::size_t>(current_bucket_)]
                      : bucket_at(t);
    bkt.events.push_back(Event{(kind << kKindShift) | payload, b});
    ++pending_events_;
    if (pending_events_ > stats_.peak_queue_depth)
      stats_.peak_queue_depth = pending_events_;
  }

  void count_closure(const EventFn& fn) {
    if (fn.on_heap())
      ++stats_.closures_heap;
    else
      ++stats_.closures_inline;
  }
  std::uint32_t alloc_closure() {
    if (!free_closures_.empty()) {
      const std::uint32_t idx = free_closures_.back();
      free_closures_.pop_back();
      return idx;
    }
    closure_pool_.emplace_back();
    return static_cast<std::uint32_t>(closure_pool_.size() - 1);
  }

  Bucket& bucket_at(Time t);           // find-or-create (memo, map + time heap)
  std::size_t map_slot_of(std::uint64_t key) const;
  void map_insert(std::uint64_t key, std::uint32_t bucket);
  void map_erase(std::uint64_t key);
  void map_grow();
  std::uint32_t alloc_bucket();
  void release_current_bucket();
  void activate_next_bucket();
  bool event_is_stale(const Event& ev) const;
  void sweep_stale();

  int alloc_timer_slot(bool one_shot);
  void note_dead_arm();
  void release_slot(int slot);
  void run_slot(int slot, std::uint64_t gen);
  void on_process_done(Process::Handle h);
  void reap_zombies();
  void dispatch(const Event& ev);

  // --- calendar queue ---
  std::vector<Bucket> buckets_;
  std::vector<std::uint32_t> free_buckets_;
  std::vector<std::uint64_t> map_keys_;  // open addressing, kEmptyKey = vacant
  std::vector<std::uint32_t> map_vals_;
  std::size_t map_size_ = 0;
  std::vector<Time> time_heap_;  // min-heap of distinct pending times
  std::int32_t current_bucket_ = -1;  // bucket being drained (its time == now_)
  std::uint64_t memo_key_ = ~std::uint64_t{0};  // last bucket_at hit (kEmptyKey: none)
  std::uint32_t memo_bucket_ = 0;
  std::size_t pending_events_ = 0;    // queued events, stale arms included
  std::size_t dead_slot_events_ = 0;  // stale arms still parked in the queue
  std::uint32_t trace_advances_ = 0;  // obs sampling cadence (traced runs only)
  std::size_t sweep_leftover_ = 0;    // dead arms the last sweep could not reach
  std::vector<std::uint64_t> sweep_keys_;  // sweep scratch (kept warm)
  std::vector<std::uint32_t> sweep_vals_;

  // Closure storage: pool entries are recycled through a free list, so the
  // steady state re-uses warmed EventFns instead of allocating. Entries are
  // moved out before invocation, which keeps the pool free to grow (and the
  // freed index free to be re-used) while the callback runs.
  std::vector<EventFn> closure_pool_;
  std::vector<std::uint32_t> free_closures_;

  // deque: a slot callback may register new slots mid-dispatch; references
  // into a deque survive push_back, vector references would not.
  std::deque<TimerSlot> timer_slots_;
  std::vector<int> free_timer_slots_;  // destroyed ids awaiting reuse
  int dispatching_slot_ = -1;  // slot whose callback is on the stack, else -1

  Time now_ = 0.0;
  EngineStats stats_;
  std::size_t live_processes_ = 0;
  std::vector<Process::Handle> registered_;  // all spawned, for final cleanup
  std::vector<Process::Handle> zombies_;     // finished, to destroy
  std::exception_ptr pending_error_;
};

inline void TimerHandle::cancel() {
  if (!engine_ || slot_ < 0) return;
  auto& s = engine_->timer_slots_[static_cast<std::size_t>(slot_)];
  if (s.gen != gen_) return;  // already fired, cancelled, or slot recycled
  engine_->destroy_timer_slot(slot_);
}

inline bool TimerHandle::active() const {
  if (!engine_ || slot_ < 0) return false;
  const auto& s = engine_->timer_slots_[static_cast<std::size_t>(slot_)];
  return s.gen == gen_ && s.armed;
}

}  // namespace pdc::sim
