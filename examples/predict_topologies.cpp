// dPerf walkthrough: take the MiniC obstacle kernel, run the full pipeline
// (instrument -> block benchmark -> traces -> trace-based simulation), and
// predict how the same program would perform on three different platform
// descriptions -- the paper's core use case of "properly choosing a peer to
// peer computing system which can match the computing power of a cluster".
//
//   $ ./predict_topologies [platform-file]
//
// With a platform-file argument (see docs/sample_platform.plat), the
// prediction additionally runs on your own topology.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "experiments/harness.hpp"
#include "net/platfile.hpp"
#include "obstacle/minic_kernel.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace pdc;
  experiments::PaperSetup setup;
  setup.grid_n = 514;  // laptop-friendly demo size
  setup.iters = 200;
  const int peers = 4;
  const ir::OptLevel lvl = ir::OptLevel::O2;

  // The dPerf pipeline, step by step.
  dperf::DperfOptions opt;
  opt.level = lvl;
  opt.chunk = setup.rcheck;
  opt.sample_iters = 3 * setup.rcheck;
  const dperf::Dperf pipeline{obstacle::minic_kernel_source(), opt};

  std::printf("== dPerf static analysis ==\n");
  std::printf("instrumented %zu blocks, %d communication loop(s) marked\n",
              pipeline.instrumented().blocks.size(), pipeline.instrumented().iter_loops);

  const auto workload = obstacle::kernel_workload(setup.problem(), setup.iters, setup.rcheck);
  const dperf::BlockTimings timings = pipeline.benchmark(
      obstacle::kernel_workload(setup.bench_problem(), setup.bench_iters, setup.bench_rcheck));
  std::printf("block benchmark (%s): one-off %.1f us, per-iteration %.1f us\n\n",
              ir::opt_level_name(lvl), timings.once_ns() / 1e3,
              timings.per_iteration_ns() / 1e3);

  std::printf("== trace generation (sampled %d of %d iterations, scaled up) ==\n",
              opt.sample_iters, setup.iters);
  auto traces = pipeline.traces(workload, peers);
  for (const auto& t : traces)
    std::printf("rank %d: %zu events, %.2f s compute, %zu sends\n", t.rank,
                t.events.size(), t.total_compute_ns() / 1e9,
                t.count(dperf::TraceEvent::Kind::Send));

  std::printf("\n== trace-based simulation on each platform description ==\n");
  TextTable table({"Platform", "predicted solve [s]"});
  for (auto topo : {experiments::Topology::Grid5000, experiments::Topology::Lan,
                    experiments::Topology::Xdsl}) {
    const double t = experiments::predicted_seconds(topo, peers, lvl, setup, traces);
    table.add_row({experiments::topology_name(topo), TextTable::num(t, 2)});
  }

  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::printf("cannot open platform file '%s'\n", argv[1]);
      return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    try {
      const net::Platform plat = net::parse_platform(buf.str());
      if (plat.host_count() < peers + 3) {
        std::printf("platform '%s' needs at least %d hosts\n", argv[1], peers + 3);
        return 1;
      }
      sim::Engine engine;
      p2pdc::Environment env{engine, plat};
      env.boot_server(plat.host(0));
      env.boot_tracker(plat.host(1), true);
      const net::NodeIdx submitter = plat.host(2);
      for (int i = 2; i < plat.host_count() && i < peers + 3; ++i)
        env.boot_peer(plat.host(i), overlay::PeerResources{3e9, 2e9, 80e9});
      env.finish_bootstrap();
      obstacle::DistributedConfig cfg;
      cfg.problem = setup.problem();
      const dperf::Prediction pred = dperf::replay_on(
          env, submitter, obstacle::make_task_spec(cfg, peers), traces);
      table.add_row({argv[1], TextTable::num(pred.solve_seconds, 2)});
    } catch (const net::PlatFileError& e) {
      std::printf("platform file error: %s\n", e.what());
      return 1;
    }
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("the prediction needed only ONE instrumented sample run per rank --\n"
              "that is dPerf's 'reduced slowdown due to block benchmarking'.\n");
  return 0;
}
