#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "support/csv.hpp"
#include "support/env.hpp"
#include "support/json.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/time.hpp"

namespace pdc {
namespace {

TEST(Json, WriterProducesParseableDocument) {
  JsonWriter w;
  w.begin_object();
  w.kv("name", "a \"quoted\"\nstring");
  w.kv("count", 42);
  w.kv("pi", 3.141592653589793);
  w.kv("big", std::uint64_t{1} << 60);
  w.kv("flag", true);
  w.key("items").begin_array().value(1).value("two").null().end_array();
  w.key("empty_obj").begin_object().end_object();
  w.key("empty_arr").begin_array().end_array();
  w.end_object();
  const JsonValue doc = parse_json(w.str());
  EXPECT_EQ(doc.at("name").as_string(), "a \"quoted\"\nstring");
  EXPECT_DOUBLE_EQ(doc.at("count").as_double(), 42.0);
  EXPECT_DOUBLE_EQ(doc.at("pi").as_double(), 3.141592653589793);
  EXPECT_TRUE(doc.at("flag").as_bool());
  ASSERT_EQ(doc.at("items").as_array().size(), 3u);
  EXPECT_TRUE(doc.at("items").as_array()[2].is_null());
  EXPECT_TRUE(doc.at("empty_obj").as_object().empty());
  EXPECT_TRUE(doc.at("empty_arr").as_array().empty());
}

TEST(Json, DoublesRoundTripExactly) {
  for (double v : {0.0, -1.5, 1.0 / 3.0, 1e-300, 123456789.123456789, 2.5e9}) {
    JsonWriter w;
    w.begin_array().value(v).end_array();
    EXPECT_EQ(parse_json(w.str()).as_array()[0].as_double(), v);
  }
  JsonWriter w;
  w.begin_array().value(std::nan("")).end_array();  // non-finite -> null
  EXPECT_TRUE(parse_json(w.str()).as_array()[0].is_null());
}

TEST(Json, ParserRejectsMalformedInput) {
  EXPECT_THROW(parse_json("{"), JsonError);
  EXPECT_THROW(parse_json("{\"a\": }"), JsonError);
  EXPECT_THROW(parse_json("[1,]"), JsonError);
  EXPECT_THROW(parse_json("[1] trailing"), JsonError);
  EXPECT_THROW(parse_json("\"unterminated"), JsonError);
  EXPECT_THROW(parse_json("tru"), JsonError);
}

TEST(Env, FlagIntAndDouble) {
  ::setenv("PDC_TEST_KNOB", "1", 1);
  EXPECT_TRUE(env_flag("PDC_TEST_KNOB"));
  ::setenv("PDC_TEST_KNOB", "0", 1);
  EXPECT_FALSE(env_flag("PDC_TEST_KNOB"));
  ::unsetenv("PDC_TEST_KNOB");
  EXPECT_FALSE(env_flag("PDC_TEST_KNOB"));
  EXPECT_TRUE(env_flag("PDC_TEST_KNOB", true));
  EXPECT_EQ(env_int("PDC_TEST_KNOB", 7), 7);
  ::setenv("PDC_TEST_KNOB", "123", 1);
  EXPECT_EQ(env_int("PDC_TEST_KNOB", 7), 123);
  ::setenv("PDC_TEST_KNOB", "12x", 1);
  EXPECT_EQ(env_int("PDC_TEST_KNOB", 7), 7);  // malformed -> fallback
  ::setenv("PDC_TEST_KNOB", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_double("PDC_TEST_KNOB", 1.0), 2.5);
  ::unsetenv("PDC_TEST_KNOB");
}

TEST(TimeUnits, Conversions) {
  EXPECT_EQ(to_ns(1.0), 1000000000u);
  EXPECT_EQ(to_ns(1.5 * units::us), 1500u);
  EXPECT_EQ(to_ns(0.0), 0u);
  EXPECT_EQ(to_ns(-1.0), 0u);  // clamped
  EXPECT_DOUBLE_EQ(from_ns(2500), 2.5e-6);
  EXPECT_DOUBLE_EQ(from_ns(to_ns(0.123456789)), 0.123456789);
}

TEST(TimeUnits, BandwidthConstants) {
  EXPECT_DOUBLE_EQ(units::Gbps, 125.0e6);   // 1 Gbit/s = 125 MB/s
  EXPECT_DOUBLE_EQ(units::Mbps, 125.0e3);
  EXPECT_DOUBLE_EQ(8.0 * units::KiB, 8192.0);
}

TEST(Rng, DeterministicFromSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng{1};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(5, 10);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 10);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all values hit
}

TEST(Rng, UniformDoubleStaysInRange) {
  Rng rng{2};
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(5.0, 10.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 10.0);
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng{3};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::vector<int> resorted = v;
  std::sort(resorted.begin(), resorted.end());
  EXPECT_EQ(resorted, sorted);
}

TEST(Rng, SplitStreamsDiverge) {
  Rng a{9};
  Rng child = a.split();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"Peers", "Time [s]"});
  t.add_row({"2", TextTable::num(42.123, 2)});
  t.add_row({"32", TextTable::num(7.5, 2)});
  const std::string out = t.render();
  EXPECT_NE(out.find("| Peers | Time [s] |"), std::string::npos);
  EXPECT_NE(out.find("| 2     | 42.12    |"), std::string::npos);
  EXPECT_NE(out.find("| 32    | 7.50     |"), std::string::npos);
}

TEST(TextTable, PadsMissingCells) {
  TextTable t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_NE(t.render().find("| 1 |   |   |"), std::string::npos);
}

TEST(Csv, EscapesOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("1.25"), "1.25");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("two\nlines"), "\"two\nlines\"");
}

TEST(Csv, WriterEnforcesColumnCount) {
  CsvWriter csv({"name", "value"});
  csv.row({"x", "1"});
  csv.row({"with,comma", "2"});
  EXPECT_EQ(csv.str(), "name,value\nx,1\n\"with,comma\",2\n");
  EXPECT_THROW(csv.row({"too", "many", "cells"}), std::invalid_argument);
}

TEST(LogRunTag, NestsAndRestores) {
  EXPECT_EQ(log_run_tag(), "");
  {
    LogRunTag outer{"outer-run"};
    EXPECT_EQ(log_run_tag(), "outer-run");
    {
      LogRunTag inner{"inner-run"};
      EXPECT_EQ(log_run_tag(), "inner-run");
    }
    EXPECT_EQ(log_run_tag(), "outer-run");
  }
  EXPECT_EQ(log_run_tag(), "");
}

}  // namespace
}  // namespace pdc
