// Trace generation: runs the instrumented program in the VM per rank,
// recording computation segments (cycle deltas converted to ns at the
// reference host frequency) and communication calls.
#pragma once

#include "dperf/blocks.hpp"
#include "dperf/trace.hpp"
#include "ir/pipeline.hpp"
#include "vm/vm.hpp"

namespace pdc::dperf {

/// Workload parameters exposed to MiniC through p2p_param / p2p_param_f.
struct Workload {
  std::vector<long long> int_params;
  std::vector<double> float_params;
};

/// Per-block timing measurements from a benchmarking run (the paper's
/// "time for each block of instructions").
struct BlockTimings {
  struct Entry {
    BlockInfo info;
    std::uint64_t executions = 0;
    double mean_ns = 0;
  };
  std::vector<Entry> entries;
  double host_hz = 3e9;

  const Entry* find(int id) const {
    for (const auto& e : entries)
      if (e.info.id == id) return &e;
    return nullptr;
  }
  /// Total ns of blocks outside communication loops (executed O(1) times).
  double once_ns() const;
  /// Sum of per-execution means of blocks inside communication loops
  /// (~ the compute cost of one outer iteration).
  double per_iteration_ns() const;
};

/// Executes the instrumented program at `level` with no-op communication and
/// returns the vPAPI block statistics.
BlockTimings benchmark_blocks(const InstrumentedProgram& inst, ir::OptLevel level,
                              const Workload& workload, double host_hz, int rank = 0,
                              int nprocs = 1);

/// Executes the instrumented program for one rank and records its trace.
/// Computation times are expressed at `host_hz`.
Trace generate_trace(const InstrumentedProgram& inst, ir::OptLevel level,
                     const Workload& workload, int rank, int nprocs, double host_hz);

}  // namespace pdc::dperf
