// Property tests for the complex-network platform builders (Barabási–Albert
// scale-free and Watts–Strogatz small-world): purity in (spec, seed) down to
// the rendered platfile bytes, connectivity for every draw, and the degree
// structure each model promises (BA edge budget and hubs, WS ring lattice
// with the base ring kept under rewiring).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "net/builders.hpp"
#include "net/platfile.hpp"
#include "support/rng.hpp"

namespace pdc::net {
namespace {

// Undirected reachability over the edge list: every node (hosts and routers)
// must be reachable from node 0.
bool connected(const Platform& p) {
  const int n = p.node_count();
  if (n == 0) return true;
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  for (int e = 0; e < p.edge_count(); ++e) {
    adj[static_cast<std::size_t>(p.edge(e).a)].push_back(p.edge(e).b);
    adj[static_cast<std::size_t>(p.edge(e).b)].push_back(p.edge(e).a);
  }
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  std::vector<int> stack{0};
  seen[0] = 1;
  int reached = 1;
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    for (int w : adj[static_cast<std::size_t>(v)])
      if (!seen[static_cast<std::size_t>(w)]) {
        seen[static_cast<std::size_t>(w)] = 1;
        ++reached;
        stack.push_back(w);
      }
  }
  return reached == n;
}

// Router-to-router (core) degree per router; routers are the non-host nodes.
std::vector<int> core_degrees(const Platform& p) {
  std::vector<int> deg(static_cast<std::size_t>(p.node_count()), 0);
  for (int e = 0; e < p.edge_count(); ++e) {
    const auto& ed = p.edge(e);
    if (p.node(ed.a).is_host || p.node(ed.b).is_host) continue;
    ++deg[static_cast<std::size_t>(ed.a)];
    ++deg[static_cast<std::size_t>(ed.b)];
  }
  std::vector<int> out;
  for (int n = 0; n < p.node_count(); ++n)
    if (!p.node(n).is_host) out.push_back(deg[static_cast<std::size_t>(n)]);
  return out;
}

int core_edge_count(const Platform& p) {
  int edges = 0;
  for (int e = 0; e < p.edge_count(); ++e)
    if (!p.node(p.edge(e).a).is_host && !p.node(p.edge(e).b).is_host) ++edges;
  return edges;
}

// Every host must have exactly one edge, to a router, with IPs contiguous
// from base_ip in emission order — the invariants hierarchical routing and
// the IP-prefix proximity metric rely on.
void check_host_shape(const Platform& p, Ipv4 base_ip) {
  std::vector<int> host_edges(static_cast<std::size_t>(p.node_count()), 0);
  for (int e = 0; e < p.edge_count(); ++e) {
    const auto& ed = p.edge(e);
    if (p.node(ed.a).is_host) {
      EXPECT_FALSE(p.node(ed.b).is_host) << "host-to-host edge " << e;
      ++host_edges[static_cast<std::size_t>(ed.a)];
    } else if (p.node(ed.b).is_host) {
      ++host_edges[static_cast<std::size_t>(ed.b)];
    }
  }
  for (int i = 0; i < p.host_count(); ++i) {
    const NodeIdx h = p.host(i);
    EXPECT_EQ(host_edges[static_cast<std::size_t>(h)], 1) << "host " << i;
    EXPECT_EQ(p.node(h).ip.bits(), base_ip.bits() + static_cast<std::uint32_t>(i))
        << "host " << i;
  }
}

TEST(NetComplex, ScaleFreePureInSpecAndSeed) {
  ScaleFreeSpec spec;
  spec.hosts = 96;
  spec.routers = 24;
  spec.m = 2;
  for (std::uint64_t seed : {1ULL, 42ULL, 1234567ULL}) {
    Rng a{seed}, b{seed};
    const std::string once = render_platform(build_scale_free(spec, a));
    const std::string twice = render_platform(build_scale_free(spec, b));
    EXPECT_EQ(once, twice) << "seed " << seed;
  }
  Rng a{1}, b{2};
  EXPECT_NE(render_platform(build_scale_free(spec, a)),
            render_platform(build_scale_free(spec, b)));
}

TEST(NetComplex, SmallWorldPureInSpecAndSeed) {
  SmallWorldSpec spec;
  spec.hosts = 96;
  spec.routers = 24;
  spec.k = 4;
  spec.beta = 0.3;
  for (std::uint64_t seed : {1ULL, 42ULL, 1234567ULL}) {
    Rng a{seed}, b{seed};
    const std::string once = render_platform(build_small_world(spec, a));
    const std::string twice = render_platform(build_small_world(spec, b));
    EXPECT_EQ(once, twice) << "seed " << seed;
  }
  Rng a{1}, b{2};
  EXPECT_NE(render_platform(build_small_world(spec, a)),
            render_platform(build_small_world(spec, b)));
}

TEST(NetComplex, ScaleFreeConnectedForEveryDraw) {
  ScaleFreeSpec spec;
  spec.hosts = 64;
  spec.routers = 16;
  spec.m = 2;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng{seed};
    const Platform p = build_scale_free(spec, rng);
    EXPECT_EQ(p.host_count(), spec.hosts);
    EXPECT_TRUE(connected(p)) << "seed " << seed;
    check_host_shape(p, spec.base_ip);
  }
}

TEST(NetComplex, SmallWorldConnectedEvenAtFullRewire) {
  SmallWorldSpec spec;
  spec.hosts = 64;
  spec.routers = 16;
  spec.k = 6;
  spec.beta = 1.0;  // every chord rewired; the kept base ring must still connect
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng{seed};
    const Platform p = build_small_world(spec, rng);
    EXPECT_EQ(p.host_count(), spec.hosts);
    EXPECT_TRUE(connected(p)) << "seed " << seed;
    check_host_shape(p, spec.base_ip);
  }
}

TEST(NetComplex, ScaleFreeDegreeStats) {
  // BA edge budget is exact: a seed clique of m+1 routers plus m core links
  // per later router. Every router keeps core degree >= m, and preferential
  // attachment must have grown at least one hub well above the floor.
  ScaleFreeSpec spec;
  spec.hosts = 256;
  spec.routers = 32;
  spec.m = 2;
  Rng rng{42};
  const Platform p = build_scale_free(spec, rng);
  const int expected =
      (spec.m + 1) * spec.m / 2 + (spec.routers - spec.m - 1) * spec.m;
  EXPECT_EQ(core_edge_count(p), expected);
  const std::vector<int> deg = core_degrees(p);
  ASSERT_EQ(static_cast<int>(deg.size()), spec.routers);
  EXPECT_GE(*std::min_element(deg.begin(), deg.end()), spec.m);
  EXPECT_GE(*std::max_element(deg.begin(), deg.end()), 2 * spec.m);
}

TEST(NetComplex, SmallWorldRingLatticeKeptUnderRewiring) {
  // The base ring (distance-1 edges) is never rewired, chords may move: the
  // core keeps exactly nr*k/2 edges at beta=0 and never gains edges beyond
  // that budget at any beta.
  SmallWorldSpec spec;
  spec.hosts = 128;
  spec.routers = 24;
  spec.k = 4;
  spec.beta = 0.0;
  Rng frozen{7};
  const Platform lattice = build_small_world(spec, frozen);
  EXPECT_EQ(core_edge_count(lattice), spec.routers * spec.k / 2);

  spec.beta = 0.5;
  Rng rng{7};
  const Platform rewired = build_small_world(spec, rng);
  EXPECT_LE(core_edge_count(rewired), spec.routers * spec.k / 2);
  EXPECT_GE(core_edge_count(rewired), spec.routers);  // ring + surviving chords
  // Routers were added first, in index order: the ring edge i -- (i+1) % nr
  // must be present in both draws.
  std::set<std::pair<int, int>> edges;
  for (int e = 0; e < rewired.edge_count(); ++e) {
    const auto& ed = rewired.edge(e);
    if (rewired.node(ed.a).is_host || rewired.node(ed.b).is_host) continue;
    edges.insert({std::min(ed.a, ed.b), std::max(ed.a, ed.b)});
  }
  for (int i = 0; i < spec.routers; ++i) {
    const int j = (i + 1) % spec.routers;
    EXPECT_TRUE(edges.count({std::min(i, j), std::max(i, j)})) << "ring edge " << i;
  }
}

TEST(NetComplex, RenderedPlatformsReparse) {
  // The rendered platfile of a generated platform is itself a valid platform
  // description reproducing node and edge structure (spec-level purity means
  // the scenario runner can regenerate platforms from (spec, seed) alone).
  ScaleFreeSpec ba;
  ba.hosts = 32;
  ba.routers = 8;
  Rng a{11};
  const Platform p1 = build_scale_free(ba, a);
  const Platform p2 = parse_platform(render_platform(p1));
  EXPECT_EQ(p2.node_count(), p1.node_count());
  EXPECT_EQ(p2.link_count(), p1.link_count());
  EXPECT_EQ(p2.edge_count(), p1.edge_count());
  EXPECT_EQ(p2.host_count(), p1.host_count());

  SmallWorldSpec ws;
  ws.hosts = 32;
  ws.routers = 8;
  Rng b{11};
  const Platform q1 = build_small_world(ws, b);
  const Platform q2 = parse_platform(render_platform(q1));
  EXPECT_EQ(q2.node_count(), q1.node_count());
  EXPECT_EQ(q2.link_count(), q1.link_count());
  EXPECT_EQ(q2.edge_count(), q1.edge_count());
  EXPECT_EQ(q2.host_count(), q1.host_count());
}

}  // namespace
}  // namespace pdc::net
