// Shared JSON support: a streaming writer (the one implementation behind
// every BENCH_*.json / RunRecord file the project emits) and a small
// recursive-descent reader used to validate and inspect those files in
// tests and the pdc_scenario CLI.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace pdc {

/// Streaming JSON writer with 2-space pretty printing. Usage:
///
///   JsonWriter w;
///   w.begin_object().kv("bench", "flownet").key("results").begin_array();
///   ... w.end_array().end_object();
///   std::string doc = w.str();
///
/// Doubles are written with enough digits to round-trip (%.17g, trimmed);
/// non-finite doubles become null (JSON has no inf/nan).
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view k);

  JsonWriter& value(double v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);
  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& null();

  template <class T>
  JsonWriter& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  /// The document so far; complete once every begin_* is matched.
  const std::string& str() const { return out_; }

 private:
  void separate();
  void indent();

  std::string out_;
  struct Frame {
    char kind;        // '{' or '['
    bool has_items = false;
  };
  std::vector<Frame> stack_;
  bool key_pending_ = false;
};

/// Escapes `s` as a JSON string literal including the quotes.
std::string json_escape(std::string_view s);

/// Shortest decimal representation that strtod round-trips to the same
/// double (what JsonWriter::value(double) and the scenario renderer emit).
/// Non-finite values format as %g would ("inf", "nan").
std::string format_shortest(double v);

class JsonError : public std::runtime_error {
 public:
  JsonError(std::size_t offset, const std::string& what)
      : std::runtime_error("json offset " + std::to_string(offset) + ": " + what),
        offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject> v =
      nullptr;

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v); }
  bool is_object() const { return std::holds_alternative<JsonObject>(v); }
  bool is_array() const { return std::holds_alternative<JsonArray>(v); }
  double as_double() const { return std::get<double>(v); }
  bool as_bool() const { return std::get<bool>(v); }
  const std::string& as_string() const { return std::get<std::string>(v); }
  const JsonArray& as_array() const { return std::get<JsonArray>(v); }
  const JsonObject& as_object() const { return std::get<JsonObject>(v); }
  /// Object member access; throws std::out_of_range when missing.
  const JsonValue& at(const std::string& key) const { return as_object().at(key); }
  bool has(const std::string& key) const {
    return is_object() && as_object().count(key) > 0;
  }
};

/// Parses one JSON document (trailing whitespace allowed, nothing else).
/// Throws JsonError on malformed input.
JsonValue parse_json(std::string_view text);

}  // namespace pdc
