// AST-level transformations applied before lowering.
//
// Loop unrolling (enabled at -O3, like GCC's -funroll applied selectively):
// counted `for` loops of the shape
//     for (init; i < E  [or i <= E]; i = i + 1) body
// where the body neither assigns `i`, declares arrays, returns, calls
// user/comm functions, nor contains nested loops, become
//     for (init; i + (k-1) < E; i = i + 1) { body; i=i+1; ... body; }
//     ...remainder loop...
// which reduces loop-control overhead per element.
#pragma once

#include "minic/ast.hpp"

namespace pdc::ir {

/// Unrolls eligible innermost loops by `factor`. Returns the number of
/// loops transformed.
int unroll_loops(minic::Program& program, int factor = 4);

}  // namespace pdc::ir
