// The metrics registry: one uniform counter/gauge/histogram surface behind
// every ad-hoc stats struct in the project. The hot paths keep their POD
// counters (a registry lookup has no business inside the event kernel);
// obs/publish.hpp materializes those structs into a Registry after the
// fact, and the two renderers here — JSON fields in registration order,
// Prometheus text exposition — make one publish path serve both the
// RunRecord per-phase blocks (byte-identical to the hand-written originals)
// and the pdc_serve METRICS endpoint.
//
// A Registry is not thread-safe: build one per render, or guard it with the
// caller's mutex (serve::StatsCollector does the latter).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace pdc {
class JsonWriter;
}

namespace pdc::obs {

enum class MetricKind { Counter, Gauge, Histogram };

/// Fixed-bucket histogram: log-spaced upper bounds plus exact count, sum,
/// min and max. Percentiles interpolate linearly inside the owning bucket
/// and clamp to the observed [min, max] — the uniform replacement for the
/// serve layer's bounded latency rings.
class Histogram {
 public:
  /// Default bounds suit latencies in seconds: 1us doubling up to ~2min.
  Histogram();
  /// `bounds` are ascending upper bucket edges; +Inf is implicit.
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  /// p in [0, 1]; 0 for an empty histogram.
  double percentile(double p) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// One count per bound plus the overflow bucket (size bounds() + 1).
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

struct Label {
  std::string key;
  std::string value;
};

/// One registered series. `group` places the metric in a JSON block and
/// prefixes its Prometheus name (overridable via `prom_name` when the JSON
/// layout and the exposition name disagree); `name` is the JSON field.
struct Metric {
  MetricKind kind = MetricKind::Counter;
  std::string group;
  std::string name;
  std::string prom_name;  // defaults to "<group>_<name>"
  std::string help;
  std::vector<Label> labels;
  bool floating = false;  // render f (double) instead of u (integer)
  std::uint64_t u = 0;
  double f = 0;
  std::unique_ptr<Histogram> hist;

  double number() const { return floating ? f : static_cast<double>(u); }
};

/// Handle to a Counter metric; valid while its Registry lives.
class Counter {
 public:
  Counter() = default;
  explicit Counter(Metric* m) : m_(m) {}
  void inc(std::uint64_t d = 1) { m_->u += d; }
  void set(std::uint64_t v) { m_->u = v, m_->floating = false; }
  void set(double v) { m_->f = v, m_->floating = true; }
  std::uint64_t value() const { return m_->u; }

 private:
  Metric* m_ = nullptr;
};

/// Handle to a Gauge metric; valid while its Registry lives.
class Gauge {
 public:
  Gauge() = default;
  explicit Gauge(Metric* m) : m_(m) {}
  void set(std::uint64_t v) { m_->u = v, m_->floating = false; }
  void set(std::int64_t v) { m_->u = static_cast<std::uint64_t>(v), m_->floating = false; }
  void set(int v) { set(static_cast<std::int64_t>(v)); }
  void set(double v) { m_->f = v, m_->floating = true; }
  double value() const { return m_->number(); }

 private:
  Metric* m_ = nullptr;
};

class Registry {
 public:
  /// Lookup-or-create by (group, name, labels); iteration and rendering
  /// follow first-registration order, which is what makes registry-rendered
  /// JSON blocks reproduce the historical field order byte for byte.
  Counter counter(std::string_view group, std::string_view name,
                  std::string_view help = {}, std::vector<Label> labels = {});
  Gauge gauge(std::string_view group, std::string_view name,
              std::string_view help = {}, std::vector<Label> labels = {});
  Histogram& histogram(std::string_view group, std::string_view name,
                       std::string_view help = {}, std::vector<Label> labels = {},
                       std::vector<double> bounds = {});

  /// Overrides the Prometheus name of the most recently registered metric.
  void rename_prom(std::string_view prom_name);

  const std::vector<std::unique_ptr<Metric>>& metrics() const { return metrics_; }

  /// Writes this group's counters and gauges, in registration order, as
  /// `"name": value` pairs into an object the caller has opened (histograms
  /// are skipped — their JSON form is a summary object, see serve/stats).
  void json_fields(JsonWriter& w, std::string_view group) const;

  /// Prometheus text exposition of every metric: HELP/TYPE lines, counters
  /// suffixed `_total`, histograms as cumulative `_bucket`/`_sum`/`_count`.
  std::string render_prometheus(std::string_view prefix) const;

 private:
  Metric& intern(MetricKind kind, std::string_view group, std::string_view name,
                 std::string_view help, std::vector<Label> labels);

  std::vector<std::unique_ptr<Metric>> metrics_;
};

}  // namespace pdc::obs
