// The MiniC virtual machine: an IR interpreter with a deterministic cycle
// cost model and vPAPI virtual hardware counters.
//
// This replaces the paper's PAPI/hardware-counter measurement layer: block
// timings come from a per-opcode cycle model instead of performance-counter
// registers, giving noise-free "measurements" with the same interface role
// (per-block durations in nanoseconds at a given core frequency).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "ir/ir.hpp"

namespace pdc::vm {

struct Value {
  long long i = 0;
  double f = 0;

  static Value of_i(long long v) {
    Value x;
    x.i = v;
    return x;
  }
  static Value of_f(double v) {
    Value x;
    x.f = v;
    return x;
  }
};

struct ArrayObj {
  ir::IrType elem = ir::IrType::F64;
  std::vector<Value> data;
};

/// Cycle costs per operation; see default_model() for the Xeon-era numbers.
class CostModel {
 public:
  static CostModel default_model();

  double op_cost(ir::Op op) const { return op_cost_[static_cast<std::size_t>(op)]; }
  void set_op_cost(ir::Op op, double cycles) { op_cost_[static_cast<std::size_t>(op)] = cycles; }
  double builtin_cost(const std::string& name) const;
  double call_overhead = 12;
  double per_arg_cost = 1;
  double alloc_base = 100;
  double alloc_per_elem = 0.25;

 private:
  std::vector<double> op_cost_ = std::vector<double>(64, 1.0);
  std::map<std::string, double> builtin_cost_;
};

/// Virtual PAPI counters.
struct VPapi {
  struct BlockStat {
    std::uint64_t executions = 0;
    double cycles = 0;
  };
  std::uint64_t instructions = 0;
  std::map<int, BlockStat> blocks;
  std::uint64_t iter_marks = 0;

  /// Mean cycles per execution of an instrumented block.
  double mean_cycles(int block_id) const {
    auto it = blocks.find(block_id);
    if (it == blocks.end() || it->second.executions == 0) return 0;
    return it->second.cycles / static_cast<double>(it->second.executions);
  }
};

class Vm;

/// Host hooks for the communication intrinsics and workload parameters.
/// The default implementation is a single-process, zero-parameter world.
class CommHooks {
 public:
  virtual ~CommHooks() = default;
  virtual int rank() { return 0; }
  virtual int nprocs() { return 1; }
  virtual long long param(int /*i*/) { return 0; }
  virtual double param_f(int /*i*/) { return 0; }
  virtual void send(int /*peer*/, int /*tag*/, ArrayObj& /*arr*/, long long /*off*/,
                    long long /*n*/) {}
  virtual void recv(int /*peer*/, int /*tag*/, ArrayObj& /*arr*/, long long /*off*/,
                    long long /*n*/) {}
  virtual double allreduce_max(double v) { return v; }
  virtual void iter_mark(long long /*id*/) {}

 protected:
  friend class Vm;
  Vm* vm_ = nullptr;  // set by Vm::set_hooks; hooks may query cycles()
};

/// Runtime trap (out-of-bounds, division by zero, cycle limit, ...).
class TrapError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown by hooks to stop execution early (dPerf's sampled trace runs).
class StopExecution : public std::runtime_error {
 public:
  StopExecution() : std::runtime_error("execution stopped by hooks") {}
};

class Vm {
 public:
  explicit Vm(const ir::IrProgram& program, CostModel model = CostModel::default_model());

  void set_hooks(CommHooks* hooks);

  /// Calls a function by name. Scalar arguments only (top-level entry).
  Value call(const std::string& name, const std::vector<Value>& args = {});

  /// Runs int main() and returns its value.
  long long run_main();

  double cycles() const { return cycles_; }
  /// Simulated nanoseconds at `hz` core frequency.
  double ns_at(double hz) const { return cycles_ / hz * 1e9; }
  const VPapi& papi() const { return papi_; }
  VPapi& papi() { return papi_; }

  void set_cycle_limit(double limit) { cycle_limit_ = limit; }

 private:
  Value exec(const ir::IrFunction& fn, std::vector<Value> scalar_args,
             std::vector<std::shared_ptr<ArrayObj>> array_args, int depth);

  const ir::IrProgram* prog_;
  CostModel model_;
  CommHooks default_hooks_;
  CommHooks* hooks_;
  double cycles_ = 0;
  double cycle_limit_ = 1e18;
  VPapi papi_;
  std::vector<std::pair<int, double>> block_stack_;
};

}  // namespace pdc::vm
