#include "support/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace pdc {
namespace {
// Warnings (e.g. starved flows) surface by default; Info/Debug stay opt-in
// so tests and benches remain quiet.
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_sink_mutex;
thread_local std::string t_run_tag;
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& msg) {
  if (level > log_level()) return;
  const char* tag = level == LogLevel::Error  ? "ERROR"
                    : level == LogLevel::Warn ? "WARN"
                    : level == LogLevel::Info ? "INFO"
                                              : "DEBUG";
  // One formatted line, one write, one lock: concurrent campaign runs
  // cannot shear each other's output.
  std::string line = "[";
  line += tag;
  line += ']';
  if (!t_run_tag.empty()) {
    line += '[';
    line += t_run_tag;
    line += ']';
  }
  line += ' ';
  line += msg;
  line += '\n';
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fwrite(line.data(), 1, line.size(), stderr);
}

const std::string& log_run_tag() { return t_run_tag; }

LogRunTag::LogRunTag(std::string tag) : previous_(std::move(t_run_tag)) {
  t_run_tag = std::move(tag);
}

LogRunTag::~LogRunTag() { t_run_tag = std::move(previous_); }

}  // namespace pdc
