#include "sim/engine.hpp"

#include "obs/trace.hpp"

namespace pdc::sim {

namespace {

/// Vacant map slot marker: an all-ones NaN bit pattern no valid simulation
/// time can produce.
constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

constexpr std::size_t kInitialMapCapacity = 64;  // power of two

struct TimeGreater {
  bool operator()(Time a, Time b) const { return a > b; }
};

}  // namespace

Engine::Engine() {
  map_keys_.assign(kInitialMapCapacity, kEmptyKey);
  map_vals_.assign(kInitialMapCapacity, 0);
}

// --- calendar queue ----------------------------------------------------------

std::size_t Engine::map_slot_of(std::uint64_t key) const {
  const std::size_t mask = map_keys_.size() - 1;
  std::size_t i = hash_key(key) & mask;
  while (map_keys_[i] != key) i = (i + 1) & mask;
  return i;
}

void Engine::map_insert(std::uint64_t key, std::uint32_t bucket) {
  const std::size_t mask = map_keys_.size() - 1;
  std::size_t i = hash_key(key) & mask;
  while (map_keys_[i] != kEmptyKey) i = (i + 1) & mask;
  map_keys_[i] = key;
  map_vals_[i] = bucket;
  ++map_size_;
}

void Engine::map_grow() {
  std::vector<std::uint64_t> old_keys = std::move(map_keys_);
  std::vector<std::uint32_t> old_vals = std::move(map_vals_);
  map_keys_.assign(old_keys.size() * 2, kEmptyKey);
  map_vals_.assign(old_vals.size() * 2, 0);
  map_size_ = 0;
  for (std::size_t i = 0; i < old_keys.size(); ++i)
    if (old_keys[i] != kEmptyKey) map_insert(old_keys[i], old_vals[i]);
}

void Engine::map_erase(std::uint64_t key) {
  // Linear-probing deletion with backward shift: walk the cluster after the
  // hole and pull back any entry whose home slot the hole cuts off.
  const std::size_t mask = map_keys_.size() - 1;
  std::size_t hole = map_slot_of(key);
  std::size_t j = hole;
  for (;;) {
    j = (j + 1) & mask;
    const std::uint64_t k = map_keys_[j];
    if (k == kEmptyKey) break;
    const std::size_t home = hash_key(k) & mask;
    // Shift back when the hole lies cyclically within [home, j).
    if (((j - home) & mask) >= ((j - hole) & mask)) {
      map_keys_[hole] = k;
      map_vals_[hole] = map_vals_[j];
      hole = j;
    }
  }
  map_keys_[hole] = kEmptyKey;
  --map_size_;
}

std::uint32_t Engine::alloc_bucket() {
  if (!free_buckets_.empty()) {
    const std::uint32_t id = free_buckets_.back();
    free_buckets_.pop_back();
    return id;
  }
  buckets_.emplace_back();
  return static_cast<std::uint32_t>(buckets_.size() - 1);
}

Engine::Bucket& Engine::bucket_at(Time t) {
  const std::uint64_t key = time_key(t);
  // Memo for the overwhelmingly common pattern of consecutive schedules
  // aimed at the same timestamp (chained steps, same-latency messages).
  // Bucket ids are stable, so the memo survives map growth; it is dropped
  // whenever a bucket is retired (release or sweep).
  if (key == memo_key_) return buckets_[memo_bucket_];
  const std::size_t mask = map_keys_.size() - 1;
  std::size_t i = hash_key(key) & mask;
  while (map_keys_[i] != kEmptyKey) {
    if (map_keys_[i] == key) {
      memo_key_ = key;
      memo_bucket_ = map_vals_[i];
      return buckets_[map_vals_[i]];
    }
    i = (i + 1) & mask;
  }
  // New distinct timestamp: this is the only place the time heap grows.
  if ((map_size_ + 1) * 4 > map_keys_.size() * 3) map_grow();
  const std::uint32_t id = alloc_bucket();
  map_insert(key, id);
  time_heap_.push_back(t);
  std::push_heap(time_heap_.begin(), time_heap_.end(), TimeGreater{});
  memo_key_ = key;
  memo_bucket_ = id;
  return buckets_[id];
}

void Engine::activate_next_bucket() {
  std::pop_heap(time_heap_.begin(), time_heap_.end(), TimeGreater{});
  const Time t = time_heap_.back();
  time_heap_.pop_back();
  now_ = t;
  current_bucket_ = static_cast<std::int32_t>(map_vals_[map_slot_of(time_key(t))]);
  // Dispatch instrumentation, sampled every 64 time advances so tracing a
  // long run stays bounded. The counter-based trigger (not wall or sim
  // time) keeps the sample points deterministic; the off cost is the
  // obs::trace() TLS load.
  if (obs::TraceRecorder* tr = obs::trace(); tr != nullptr) {
    if ((++trace_advances_ & 63u) == 0)
      tr->counter(tr->track("engine"), "queue", t,
                  {{"pending", static_cast<std::uint64_t>(pending_events_)},
                   {"dispatched", stats_.events_dispatched}});
  }
}

void Engine::release_current_bucket() {
  Bucket& b = buckets_[static_cast<std::size_t>(current_bucket_)];
  b.events.clear();
  b.cursor = 0;
  map_erase(time_key(now_));
  free_buckets_.push_back(static_cast<std::uint32_t>(current_bucket_));
  if (memo_key_ == time_key(now_)) memo_key_ = kEmptyKey;
  current_bucket_ = -1;
}

bool Engine::event_is_stale(const Event& ev) const {
  if ((ev.a >> kKindShift) != kSlot) return false;
  const TimerSlot& s = timer_slots_[static_cast<std::size_t>(ev.a & kPayloadMask)];
  return !s.armed || s.gen != ev.b;
}

/// A pending arm just went stale. Dead slot events normally pop lazily, but
/// long-timeout guards cancelled early (RPC timeouts, recv_for satisfied by
/// a push) would otherwise pile up for their whole nominal duration and
/// bloat the queue. When the garbage reaches half the pending events, sweep
/// every non-current bucket and rebuild the time heap — O(live) amortized,
/// and deterministic: the trigger depends only on simulation state, bucket
/// filtering keeps insertion order, and the rebuilt heap pops distinct times
/// in the same order as the old one.
void Engine::note_dead_arm() {
  ++dead_slot_events_;
  // Require 64 *new* dead arms beyond what the last sweep could not reach
  // (sweep_leftover_: dead events pinned in the mid-drain bucket, which the
  // sweep skips). Without the leftover term, 64+ same-time cancelled arms
  // would re-trigger a fruitless full sweep on every further cancel.
  if (dead_slot_events_ < 64 + sweep_leftover_ ||
      dead_slot_events_ * 2 < pending_events_)
    return;
  sweep_stale();
}

void Engine::sweep_stale() {
  sweep_keys_.clear();
  sweep_vals_.clear();
  for (std::size_t i = 0; i < map_keys_.size(); ++i) {
    if (map_keys_[i] == kEmptyKey) continue;
    const std::uint32_t id = map_vals_[i];
    if (static_cast<std::int32_t>(id) == current_bucket_) {
      // Mid-drain bucket: its cursor is live, leave it to pop lazily.
      sweep_keys_.push_back(map_keys_[i]);
      sweep_vals_.push_back(id);
      continue;
    }
    Bucket& b = buckets_[id];
    const std::size_t before = b.events.size();
    std::erase_if(b.events, [this](const Event& ev) { return event_is_stale(ev); });
    const std::size_t removed = before - b.events.size();
    pending_events_ -= removed;
    dead_slot_events_ -= removed;
    stats_.stale_slot_events += removed;  // shed without dispatching
    if (b.events.empty()) {
      free_buckets_.push_back(id);
    } else {
      sweep_keys_.push_back(map_keys_[i]);
      sweep_vals_.push_back(id);
    }
  }
  // Rebuild map and time heap from the survivors. Distinct times make the
  // heap's pop order independent of make_heap's internal layout.
  std::fill(map_keys_.begin(), map_keys_.end(), kEmptyKey);
  map_size_ = 0;
  memo_key_ = kEmptyKey;  // retired buckets may include the memoized one
  time_heap_.clear();
  for (std::size_t i = 0; i < sweep_keys_.size(); ++i) {
    map_insert(sweep_keys_[i], sweep_vals_[i]);
    if (static_cast<std::int32_t>(sweep_vals_[i]) != current_bucket_)
      time_heap_.push_back(std::bit_cast<Time>(sweep_keys_[i]));
  }
  std::make_heap(time_heap_.begin(), time_heap_.end(), TimeGreater{});
  sweep_leftover_ = dead_slot_events_;  // unreachable until they pop lazily
}

// --- timer slots -------------------------------------------------------------

int Engine::alloc_timer_slot(bool one_shot) {
  if (!free_timer_slots_.empty()) {
    const int slot = free_timer_slots_.back();
    free_timer_slots_.pop_back();
    auto& s = timer_slots_[static_cast<std::size_t>(slot)];
    ++s.gen;  // keeps growing so events from the previous owner stay stale
    s.armed = false;
    s.one_shot = one_shot;
    return slot;
  }
  timer_slots_.push_back(TimerSlot{{}, 0, false, one_shot, false});
  return static_cast<int>(timer_slots_.size()) - 1;
}

void Engine::arm_timer_slot(int slot, Time dt) {
  auto& s = timer_slots_[static_cast<std::size_t>(slot)];
  if (s.armed) note_dead_arm();  // the superseded arm's event is now garbage
  ++s.gen;  // invalidates any previously pending arm
  s.armed = true;
  ++stats_.slot_arms;
  push_event(now_ + dt, kSlot, static_cast<std::uint64_t>(slot), s.gen);
}

void Engine::cancel_timer_slot(int slot) {
  auto& s = timer_slots_[static_cast<std::size_t>(slot)];
  if (s.armed) note_dead_arm();
  ++s.gen;
  s.armed = false;
}

void Engine::release_slot(int slot) {
  auto& s = timer_slots_[static_cast<std::size_t>(slot)];
  ++s.gen;       // any TimerHandle still pointing here goes stale
  s.armed = false;
  s.fn.reset();  // release the closure (and anything it captures) now
  s.pending_destroy = false;
  free_timer_slots_.push_back(slot);
}

void Engine::destroy_timer_slot(int slot) {
  auto& s = timer_slots_[static_cast<std::size_t>(slot)];
  if (s.armed) note_dead_arm();
  ++s.gen;
  s.armed = false;
  if (slot == dispatching_slot_) {
    // Called from inside this slot's own callback: destroying now would free
    // the closure mid-execution. The arm above is already stale; the closure
    // itself is released at the end of the dispatch.
    s.pending_destroy = true;
    return;
  }
  release_slot(slot);
}

void Engine::run_slot(int slot, std::uint64_t gen) {
  auto& s = timer_slots_[static_cast<std::size_t>(slot)];
  if (!s.armed || s.gen != gen) {
    ++stats_.stale_slot_events;  // superseded, cancelled, or eagerly destroyed
    --dead_slot_events_;         // popped before a sweep got to it
    if (dead_slot_events_ < sweep_leftover_) sweep_leftover_ = dead_slot_events_;
    return;
  }
  s.armed = false;
  dispatching_slot_ = slot;
  // The deque reference stays valid across the callback even if it registers
  // new slots; the generation tells us whether it destroyed/recycled itself.
  try {
    s.fn();
  } catch (...) {
    dispatching_slot_ = -1;
    if (s.pending_destroy || (s.one_shot && s.gen == gen)) release_slot(slot);
    throw;
  }
  dispatching_slot_ = -1;
  if (s.pending_destroy || (s.one_shot && s.gen == gen)) {
    // Deferred self-destroy, or a fired one-shot (not re-armed, not recycled
    // by its own callback): retire the slot so schedule_cancellable cycles
    // recycle storage. release_slot bumps the generation, so a TimerHandle
    // held on this arm goes stale.
    release_slot(slot);
  }
}

// --- processes ---------------------------------------------------------------

void Engine::spawn(Process p, std::string name) {
  Process::Handle h = p.release();
  h.promise().engine = this;
  h.promise().name = std::move(name);
  registered_.push_back(h);
  ++live_processes_;
  post_resume(h);
}

void Process::promise_type::FinalAwaiter::await_suspend(Process::Handle h) noexcept {
  h.promise().engine->on_process_done(h);
}

void Engine::on_process_done(Process::Handle h) {
  --live_processes_;
  if (h.promise().error && !pending_error_) pending_error_ = h.promise().error;
  zombies_.push_back(h);
}

void Engine::reap_zombies() {
  for (auto h : zombies_) {
    std::erase(registered_, h);
    h.destroy();
  }
  zombies_.clear();
}

// --- dispatch loop -----------------------------------------------------------

void Engine::dispatch(const Event& ev) {
  ++stats_.events_dispatched;
  switch (ev.a >> kKindShift) {
    case kClosure: {
      const auto idx = static_cast<std::uint32_t>(ev.a & kPayloadMask);
      // Move the closure out before invoking: the callback may schedule new
      // events, growing the pool (and immediately re-using this index).
      EventFn fn = std::move(closure_pool_[idx]);
      free_closures_.push_back(idx);
      fn();
      break;
    }
    case kResume:
      std::coroutine_handle<>::from_address(
          reinterpret_cast<void*>(static_cast<std::uintptr_t>(ev.b)))
          .resume();
      break;
    default:
      run_slot(static_cast<int>(ev.a & kPayloadMask), ev.b);
      break;
  }
  reap_zombies();
  if (pending_error_) {
    auto e = pending_error_;
    pending_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

bool Engine::step() {
  for (;;) {
    if (current_bucket_ >= 0) {
      Bucket& b = buckets_[static_cast<std::size_t>(current_bucket_)];
      if (b.cursor < b.events.size()) break;
      release_current_bucket();
      continue;
    }
    if (time_heap_.empty()) return false;
    activate_next_bucket();  // activated buckets always hold >= 1 event
  }
  Bucket& b = buckets_[static_cast<std::size_t>(current_bucket_)];
  const Event ev = b.events[b.cursor++];
  --pending_events_;
  dispatch(ev);  // may grow buckets_; re-index afterwards
  Bucket& b2 = buckets_[static_cast<std::size_t>(current_bucket_)];
  if (b2.cursor >= b2.events.size()) release_current_bucket();
  return true;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::run_until(Time t_end) {
  for (;;) {
    if (current_bucket_ >= 0) {
      const Bucket& b = buckets_[static_cast<std::size_t>(current_bucket_)];
      if (b.cursor >= b.events.size()) {
        release_current_bucket();
        continue;
      }
      if (now_ > t_end) break;  // mid-drain bucket beyond the horizon
      step();
      continue;
    }
    if (time_heap_.empty() || time_heap_.front() > t_end) break;
    step();
  }
  if (now_ < t_end) now_ = t_end;
}

Engine::~Engine() {
  // Destroy still-suspended processes; their frames' local destructors run.
  reap_zombies();
  for (auto h : registered_) h.destroy();
}

}  // namespace pdc::sim
