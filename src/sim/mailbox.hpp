// Typed mailboxes connecting simulation processes.
//
// push() never blocks. recv() suspends until a value arrives; recv_for()
// additionally wakes with nullopt after a timeout — that is how the overlay
// protocols implement the paper's "if no state update after a time T,
// consider the node disconnected" rules.
//
// A mailbox can operate in LatestValue mode (capacity one, new values
// overwrite unconsumed ones). P2PSAP uses it for asynchronous iterative
// schemes where only the most recent boundary data matters.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <optional>

#include "sim/engine.hpp"
#include "support/time.hpp"

namespace pdc::sim {

enum class MailboxPolicy { Unbounded, LatestValue };

template <class T>
class Mailbox {
 public:
  explicit Mailbox(Engine& engine, MailboxPolicy policy = MailboxPolicy::Unbounded)
      : engine_(&engine), policy_(policy) {}
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Deposits a value: hands it directly to the oldest waiting receiver if
  /// any (resumed via a same-time event), otherwise queues it.
  void push(T value) {
    if (!waiters_.empty()) {
      WaitState& w = *waiters_.front();
      waiters_.pop_front();
      w.registered = false;
      w.value.emplace(std::move(value));
      if (w.timer_alive) *w.timer_alive = false;
      engine_->post([h = w.handle] { h.resume(); });
      return;
    }
    if (policy_ == MailboxPolicy::LatestValue && !queue_.empty()) {
      queue_.clear();
      ++overwritten_;
    }
    queue_.push_back(std::move(value));
  }

  std::size_t size() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }
  /// Number of values discarded by LatestValue overwrites (async-scheme
  /// "stale messages dropped" statistic).
  std::uint64_t overwritten() const { return overwritten_; }

  /// Non-suspending receive: takes a queued value if present.
  std::optional<T> try_recv() {
    if (queue_.empty()) return std::nullopt;
    std::optional<T> v{std::move(queue_.front())};
    queue_.pop_front();
    return v;
  }

 private:
  struct WaitState {
    std::optional<T> value;
    std::coroutine_handle<> handle;
    std::shared_ptr<bool> timer_alive;  // set false when delivered
    bool registered = false;
    typename std::list<WaitState*>::iterator where;
  };

  struct AwaiterCore {
    Mailbox* mb;
    Time timeout;  // < 0 means wait forever
    WaitState state;

    bool await_ready() {
      if (!mb->queue_.empty()) {
        state.value.emplace(std::move(mb->queue_.front()));
        mb->queue_.pop_front();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      state.handle = h;
      state.registered = true;
      state.where = mb->waiters_.insert(mb->waiters_.end(), &state);
      if (timeout >= 0) {
        state.timer_alive = std::make_shared<bool>(true);
        Mailbox* m = mb;
        WaitState* s = &state;
        auto alive = state.timer_alive;
        m->engine_->schedule_after(timeout, [m, s, h, alive] {
          if (!*alive) return;  // value was delivered first
          if (s->registered) {
            m->waiters_.erase(s->where);
            s->registered = false;
          }
          h.resume();  // state.value stays empty -> timeout
        });
      }
    }
  };

 public:
  /// Awaitable returned by recv(): resumes with the received value.
  struct RecvOp : AwaiterCore {
    T await_resume() {
      assert(this->state.value.has_value());
      return std::move(*this->state.value);
    }
  };

  /// Awaitable returned by recv_for(): resumes with nullopt on timeout.
  struct RecvForOp : AwaiterCore {
    std::optional<T> await_resume() { return std::move(this->state.value); }
  };

  RecvOp recv() { return RecvOp{{this, Time{-1}, {}}}; }
  RecvForOp recv_for(Time timeout) { return RecvForOp{{this, timeout, {}}}; }

 private:
  Engine* engine_;
  MailboxPolicy policy_;
  std::deque<T> queue_;
  std::list<WaitState*> waiters_;
  std::uint64_t overwritten_ = 0;
};

}  // namespace pdc::sim
