// A small text format for platform descriptions, playing the role of the
// SimGrid platform files that dPerf feeds to the MSG module.
//
// Grammar (line oriented, '#' starts a comment):
//
//   host   <name> speed <num><GHz|MHz|Hz> ip <a.b.c.d>
//   router <name>
//   link   <name> bw <num><Gbps|Mbps|Kbps|bps> lat <num><s|ms|us|ns>
//   edge   <nodeA> <nodeB> <link>
//   route  <src> <dst> <link> [<link> ...]
//
// `route` installs an explicit symmetric route; the listed links must form a
// connected edge path from <src> to <dst> (hop directions are inferred from
// edge orientation, and a malformed path is a parse error).
#pragma once

#include <stdexcept>
#include <string>

#include "net/platform.hpp"

namespace pdc::net {

/// Error with 1-based line information.
class PlatFileError : public std::runtime_error {
 public:
  PlatFileError(int line, const std::string& what)
      : std::runtime_error("platform file line " + std::to_string(line) + ": " + what),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

/// Parses a platform description from text. Throws PlatFileError.
Platform parse_platform(const std::string& text);

/// Serializes a Platform back to the text format (hosts, routers, links,
/// edges; explicit routes are not exported). parse(render(p)) reproduces the
/// same node/link/edge structure.
std::string render_platform(const Platform& p);

}  // namespace pdc::net
