// Distributed obstacle solver on P2PDC (the paper's reference execution).
//
// Every peer solves a strip of rows, exchanging halo rows with both
// neighbours through P2PSAP every iteration and joining a hierarchical
// residual reduction every `rcheck` iterations. Simulated computation time
// is charged from the dPerf block-benchmark cost profile (measured per-point
// costs at each optimization level), so the reference execution and the
// dPerf prediction are two *independent* paths over the same measured
// quantities.
//
// ValueMode::Real additionally performs the numerical sweep natively and
// ships real strips (used by examples and correctness tests — the sync
// scheme reproduces the sequential solution bit for bit). ValueMode::Phantom
// runs the identical event schedule without numeric work, which is how the
// large benchmark instances stay cheap; both modes produce identical
// simulated times.
#pragma once

#include "dperf/dperf.hpp"
#include "ir/pipeline.hpp"
#include "obstacle/problem.hpp"
#include "p2pdc/environment.hpp"

namespace pdc::obstacle {

/// Per-point compute costs derived from dPerf block benchmarking of the
/// MiniC kernel at one optimization level.
struct CostProfile {
  double init_ns_per_point = 25;  // one-off setup cost
  double iter_ns_per_point = 40;  // per sweep point (update + copy + residual)
  double ref_hz = 3e9;            // frequency the ns refer to
};

/// Benchmarks the instrumented MiniC kernel on a small instance and
/// normalizes block means to per-point costs (dPerf's block scale-up rule).
CostProfile derive_cost_profile(ir::OptLevel level, const ObstacleProblem& bench_problem,
                                int bench_iters = 9, int bench_rcheck = 3);

enum class ValueMode { Real, Phantom };

struct DistributedConfig {
  ObstacleProblem problem;
  int iters = 300;
  int rcheck = 25;
  ValueMode mode = ValueMode::Phantom;
  CostProfile cost;
  p2psap::Scheme scheme = p2psap::Scheme::Synchronous;
  p2pdc::AllocationMode allocation = p2pdc::AllocationMode::Hierarchical;
  int cmax = alloc::kCmax;
  bool early_stop = false;  // Real mode only: stop when residual < tol
  double tol = 1e-6;
};

/// Task spec for the computation: subtask ships the strip's initial data
/// (u0 + obstacle), the result ships the strip back.
p2pdc::TaskSpec make_task_spec(const DistributedConfig& cfg, int peers);

/// The per-rank computation (used directly with Environment::submit).
p2pdc::PeerMain make_peer_main(DistributedConfig cfg);

struct SolveReport {
  bool ok = false;
  std::string failure;
  double solve_seconds = 0;  // first rank start -> last rank end
  int iterations = 0;        // executed outer iterations (max over ranks)
  double residual = 0;       // last reduced residual
  Grid solution;             // assembled n x n grid (Real mode only)
  p2pdc::ComputationResult computation;
};

/// Boots nothing: expects `env` to already have its overlay (server,
/// trackers, peers) deployed. Submits, waits, assembles.
SolveReport run_distributed(p2pdc::Environment& env, net::NodeIdx submitter_host,
                            const DistributedConfig& cfg, int peers, Time warmup = 12.0);

/// Row partition helper shared by solver, kernel and tests: the strip of
/// `rank` among `nprocs` over `n-2` interior rows.
struct Strip {
  int rows = 0;      // interior rows owned
  int first_row = 0; // global index of the first owned interior row (>= 1)
};
Strip strip_of(int n, int rank, int nprocs);

}  // namespace pdc::obstacle
