// Differential test for the incremental max-min flow engine: random
// star/clique/churn scenarios replayed through both Mode::Incremental and
// Mode::Reference must agree on every completion time and on rates sampled
// mid-run, to 1e-9. Also checks the incremental engine actually does
// partial reshares on component-disjoint workloads.
#include "net/flow.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "net/builders.hpp"
#include "support/rng.hpp"
#include "support/time.hpp"

namespace pdc::net {
namespace {

using namespace pdc::units;

struct FlowEvent {
  Time start = 0;
  int src = 0;  // host rank
  int dst = 0;
  double bytes = 0;
};

/// Churn-style link degradation/restoration applied mid-run.
struct ScaleEvent {
  Time at = 0;
  LinkIdx link = 0;
  double scale = 1.0;
};

struct RunResult {
  std::vector<Time> done;                       // completion time per event
  std::vector<std::vector<double>> rates;       // per probe: rate per event
  FlowNetStats stats;
  Time end_time = 0;
};

RunResult replay(const Platform& plat, const std::vector<FlowEvent>& events,
                 const std::vector<Time>& probes, FlowNet::Mode mode,
                 const std::vector<ScaleEvent>& scales = {}) {
  sim::Engine eng;
  FlowNet netw{eng, plat, mode};
  RunResult r;
  r.done.assign(events.size(), -1);
  r.rates.assign(probes.size(), std::vector<double>(events.size(), 0.0));
  std::vector<FlowId> ids(events.size(), 0);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FlowEvent& ev = events[i];
    eng.schedule_at(ev.start, [&netw, &plat, &eng, &ids, &r, ev, i] {
      ids[i] = netw.start_flow(plat.host(ev.src), plat.host(ev.dst), ev.bytes,
                               [&r, &eng, i] { r.done[i] = eng.now(); });
    });
  }
  for (const ScaleEvent& sc : scales)
    eng.schedule_at(sc.at, [&netw, sc] { netw.set_link_scale(sc.link, sc.scale); });
  for (std::size_t pi = 0; pi < probes.size(); ++pi) {
    eng.schedule_at(probes[pi], [&netw, &ids, &r, pi] {
      for (std::size_t i = 0; i < ids.size(); ++i)
        r.rates[pi][i] = ids[i] ? netw.flow_rate(ids[i]) : 0.0;
    });
  }
  eng.run();
  r.stats = netw.stats();
  r.end_time = eng.now();
  EXPECT_EQ(netw.active_flows(), 0u);
  return r;
}

void expect_equivalent(const Platform& plat, const std::vector<FlowEvent>& events,
                       const std::vector<Time>& probes, const std::string& label,
                       const std::vector<ScaleEvent>& scales = {}) {
  const RunResult inc = replay(plat, events, probes, FlowNet::Mode::Incremental, scales);
  const RunResult ref = replay(plat, events, probes, FlowNet::Mode::Reference, scales);
  ASSERT_EQ(inc.done.size(), ref.done.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_NEAR(inc.done[i], ref.done[i], 1e-9) << label << ": flow " << i;
    EXPECT_GE(inc.done[i], 0.0) << label << ": flow " << i << " never completed";
  }
  for (std::size_t pi = 0; pi < probes.size(); ++pi)
    for (std::size_t i = 0; i < events.size(); ++i)
      EXPECT_NEAR(inc.rates[pi][i], ref.rates[pi][i], 1e-9)
          << label << ": probe " << pi << " flow " << i;
  EXPECT_EQ(inc.stats.flows_completed, ref.stats.flows_completed);
  EXPECT_NEAR(inc.stats.bytes_completed, ref.stats.bytes_completed, 1e-6);
  EXPECT_NEAR(inc.end_time, ref.end_time, 1e-9) << label;
}

std::vector<FlowEvent> random_events(Rng& rng, int n_flows, int n_hosts, Time horizon,
                                     double max_bytes) {
  std::vector<FlowEvent> events;
  for (int i = 0; i < n_flows; ++i) {
    FlowEvent ev;
    ev.start = rng.uniform(0.0, horizon);
    ev.src = static_cast<int>(rng.uniform_int(0, n_hosts - 1));
    ev.dst = static_cast<int>(rng.uniform_int(0, n_hosts - 1));
    if (ev.dst == ev.src) ev.dst = (ev.dst + 1) % n_hosts;
    ev.bytes = rng.uniform(1e3, max_bytes);
    events.push_back(ev);
  }
  return events;
}

std::vector<Time> spread_probes(Time horizon, int count) {
  // Offsets chosen to dodge event timestamps (probes must not tie with
  // starts/completions, whose relative order would then be ambiguous).
  std::vector<Time> probes;
  for (int i = 1; i <= count; ++i)
    probes.push_back(horizon * static_cast<Time>(i) / (count + 1) + 1.2345e-4);
  return probes;
}

/// Full mesh of direct links with randomized capacities: many independent
/// sharing components, the incremental engine's best case.
Platform random_clique(Rng& rng, int hosts) {
  Platform p;
  for (int i = 0; i < hosts; ++i)
    p.add_host("h" + std::to_string(i), 1e9,
               Ipv4{10, 1, static_cast<std::uint8_t>(i / 250), static_cast<std::uint8_t>(i % 250 + 1)});
  for (int i = 0; i < hosts; ++i)
    for (int j = i + 1; j < hosts; ++j) {
      const auto l = p.add_link("l" + std::to_string(i) + "_" + std::to_string(j),
                                rng.uniform(0.5e6, 8e6), rng.uniform(0.0, 2 * ms));
      p.connect(p.host(i), p.host(j), l);
    }
  return p;
}

TEST(FlowIncremental, RandomStarScenariosMatchReference) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng{seed};
    const Platform plat = build_star(lan_spec(12));
    const auto events = random_events(rng, 80, 12, 4.0, 4e6);
    expect_equivalent(plat, events, spread_probes(8.0, 5),
                      "star seed " + std::to_string(seed));
  }
}

TEST(FlowIncremental, RandomCliqueScenariosMatchReference) {
  for (std::uint64_t seed = 11; seed <= 14; ++seed) {
    Rng rng{seed};
    const Platform plat = random_clique(rng, 10);
    const auto events = random_events(rng, 90, 10, 3.0, 3e6);
    expect_equivalent(plat, events, spread_probes(6.0, 5),
                      "clique seed " + std::to_string(seed));
  }
}

TEST(FlowIncremental, LinkDegradationEventsMatchReference) {
  // Churn link events: capacities rescale mid-run (degrade + restore) while
  // random flows come and go; both engines must agree on every completion
  // and sampled rate. Star first (one shared backbone: rescales hit every
  // flow), then a clique (rescales hit one component at a time).
  for (std::uint64_t seed = 21; seed <= 24; ++seed) {
    Rng rng{seed};
    const Platform star = build_star(lan_spec(10));
    const auto events = random_events(rng, 60, 10, 4.0, 4e6);
    std::vector<ScaleEvent> scales;
    for (int i = 0; i < 10; ++i) {
      const auto link = static_cast<LinkIdx>(rng.uniform_int(0, star.link_count() - 1));
      const Time at = rng.uniform(0.0, 5.0) + 3.21e-5;  // dodge event-time ties
      scales.push_back({at, link, rng.uniform(0.1, 0.9)});
      scales.push_back({at + rng.uniform(0.1, 1.0), link, 1.0});
    }
    expect_equivalent(star, events, spread_probes(8.0, 5),
                      "degraded star seed " + std::to_string(seed), scales);
  }
  Rng rng{31};
  const Platform clique = random_clique(rng, 8);
  const auto events = random_events(rng, 70, 8, 3.0, 3e6);
  std::vector<ScaleEvent> scales;
  for (int i = 0; i < 14; ++i) {
    const auto link = static_cast<LinkIdx>(rng.uniform_int(0, clique.link_count() - 1));
    scales.push_back({rng.uniform(0.0, 4.0) + 3.21e-5, link, rng.uniform(0.05, 0.95)});
  }
  expect_equivalent(clique, events, spread_probes(6.0, 5), "degraded clique", scales);
}

TEST(FlowIncremental, LinkScaleIsAppliedAndRestored) {
  // One flow on one link: halving the capacity mid-transfer must halve the
  // rate and stretch the completion accordingly, identically in both modes.
  for (const auto mode : {FlowNet::Mode::Incremental, FlowNet::Mode::Reference}) {
    Platform p;
    const auto a = p.add_host("a", 1e9, Ipv4{10, 0, 0, 1});
    const auto b = p.add_host("b", 1e9, Ipv4{10, 0, 0, 2});
    const auto l = p.add_link("l", 1e6, 0);
    p.connect(a, b, l);
    sim::Engine eng;
    FlowNet netw{eng, p, mode};
    Time done = -1;
    FlowId id = 0;
    eng.schedule_at(0.0, [&] { id = netw.start_flow(a, b, 2e6, [&] { done = eng.now(); }); });
    eng.schedule_at(1.0, [&] {
      EXPECT_NEAR(netw.flow_rate(id), 1e6, 1e-3);
      netw.set_link_scale(l, 0.5);
    });
    eng.schedule_at(1.5, [&] { EXPECT_NEAR(netw.flow_rate(id), 0.5e6, 1e-3); });
    eng.run();
    EXPECT_EQ(netw.link_scale(l), 0.5);
    // 1 MB at full rate (1 s), remaining 1 MB at half rate (2 s).
    EXPECT_NEAR(done, 3.0, 1e-9);
    EXPECT_EQ(netw.stats().link_rescales, 1u);
  }
}

TEST(FlowIncremental, DegradedBackboneRescalesSplitClassesAndMatchReference) {
  // Degraded-backbone corpus case: a gather population shares one backbone
  // (so all flows collapse into one class — their private NIC capacities are
  // identical), then individual NICs are rescaled to different degrees
  // mid-transfer. A rescaled private link changes its flow's signature, so
  // the flow must leave its class and re-enter the correct one; the
  // differential check proves the split produces exactly the reference
  // rates, and the stats check proves the split actually happened (instead
  // of a stale class silently keeping the old capacity).
  for (std::uint64_t seed = 41; seed <= 43; ++seed) {
    Rng rng{seed};
    const Platform star = build_star(lan_spec(14));
    std::vector<FlowEvent> events;
    for (int i = 1; i < 14; ++i)
      events.push_back({rng.uniform(0.0, 0.2), i, 0, rng.uniform(8e6, 64e6)});
    // Link 0 is the backbone, link 1+i is host i's NIC (build_star order).
    std::vector<ScaleEvent> scales;
    // Degrade the backbone below the NIC tier so it becomes the bottleneck.
    scales.push_back({0.4 + 3.21e-5, LinkIdx{0}, 0.05});
    for (int k = 0; k < 5; ++k) {
      const auto nic = static_cast<LinkIdx>(rng.uniform_int(2, 14));
      const Time at = rng.uniform(0.05, 0.3) + 3.21e-5;
      scales.push_back({at, nic, rng.uniform(0.05, 0.5)});
      if (k % 2 == 0) scales.push_back({at + rng.uniform(0.05, 0.2), nic, 1.0});
    }
    const std::string label = "degraded backbone seed " + std::to_string(seed);
    expect_equivalent(star, events, spread_probes(0.6, 6), label, scales);
    const RunResult inc =
        replay(star, events, spread_probes(0.6, 6), FlowNet::Mode::Incremental, scales);
    EXPECT_GT(inc.stats.class_splits, 0u) << label;
    EXPECT_GT(inc.stats.class_merges, 0u) << label;
    EXPECT_LT(inc.stats.classes_active, 13u) << label;  // 13 flows compressed
  }
}

TEST(FlowIncremental, MixedDemandSharedRoutesMatchReference) {
  // Mixed-demand population: flows on identical routes but with sizes
  // spanning four orders of magnitude. Class members drain one at a time in
  // lazy min-heap order, and every drain must land at the exact instant the
  // reference solver computes.
  Rng rng{55};
  const Platform star = build_star(bordeplage_cluster_spec(8));
  std::vector<FlowEvent> events;
  for (int i = 0; i < 60; ++i) {
    const int src = 1 + static_cast<int>(rng.uniform_int(0, 6));
    events.push_back({rng.uniform(0.0, 0.2), src, 0,
                      std::pow(10.0, rng.uniform(3.0, 7.0))});
  }
  expect_equivalent(star, events, spread_probes(0.5, 6), "mixed demand");
}

TEST(FlowIncremental, SharedBackboneCollapsesToFewClasses) {
  // The compression contract: hundreds of same-shape transfers through a
  // shared backbone must collapse to a handful of classes, so a reshare is
  // O(classes), not O(flows).
  // One flow per distinct source, so every source NIC keeps a single member
  // (private) and the whole gather shares one signature. Sources whose NIC
  // is crossed by two concurrent flows would legitimately get per-source
  // classes — that contention profile is genuinely different.
  const Platform star = build_star(lan_spec(202));
  sim::Engine eng;
  FlowNet netw{eng, star};
  int completed = 0;
  for (int i = 0; i < 200; ++i) {
    eng.schedule_at(0.001 * i, [&netw, &star, &completed, i] {
      netw.start_flow(star.host(1 + i), star.host(0), 2e6, [&completed] { ++completed; });
    });
  }
  eng.run();
  EXPECT_EQ(completed, 200);
  const FlowNetStats& s = netw.stats();
  EXPECT_GT(s.class_merges, 150u);
  EXPECT_LE(s.classes_active, 6u);  // peak concurrent classes vs 200 flows
}

TEST(FlowIncremental, ChurnHeavyScenarioMatchesReference) {
  // Dense churn: many short flows constantly entering and leaving, so the
  // sharing problem is re-solved hundreds of times.
  Rng rng{77};
  const Platform plat = build_star(bordeplage_cluster_spec(16));
  const auto events = random_events(rng, 300, 16, 2.0, 2e6);
  expect_equivalent(plat, events, spread_probes(2.5, 7), "churn");
}

TEST(FlowIncremental, CliqueWorkloadReshareIsMostlyPartial) {
  // On a clique, disjoint host pairs form disjoint sharing components, so
  // nearly every reshare should re-solve a strict subset of live flows.
  Rng rng{5};
  const Platform plat = random_clique(rng, 12);
  sim::Engine eng;
  FlowNet netw{eng, plat};
  int completed = 0;
  for (int i = 0; i < 12; ++i) {
    const int j = (i + 6) % 12;
    netw.start_flow(plat.host(i), plat.host(j), 5e6, [&] { ++completed; });
  }
  eng.run();
  EXPECT_EQ(completed, 12);
  const FlowNetStats& s = netw.stats();
  EXPECT_GT(s.reshares_partial, 0u);
  // Mean affected component must be far below the 12 concurrent flows.
  EXPECT_LT(static_cast<double>(s.flows_rescanned),
            0.5 * static_cast<double>(s.reshares) * 12.0);
}

TEST(FlowIncremental, ReferenceModeReportsNoPartialReshares) {
  Platform p;
  const auto a = p.add_host("a", 1e9, Ipv4{10, 0, 0, 1});
  const auto b = p.add_host("b", 1e9, Ipv4{10, 0, 0, 2});
  p.connect(a, b, p.add_link("l", 1e6, 0));
  sim::Engine eng;
  FlowNet netw{eng, p, FlowNet::Mode::Reference};
  netw.start_flow(a, b, 1e6, [] {});
  netw.start_flow(a, b, 2e6, [] {});
  eng.run();
  EXPECT_EQ(netw.stats().flows_completed, 2u);
  EXPECT_EQ(netw.stats().reshares_partial, 0u);
  EXPECT_EQ(netw.stats().flows_rescanned, 0u);
}

TEST(FlowIncremental, StarvedFlowIsCountedAndDoesNotStallOthers) {
  // A zero-capacity link starves its flow; the healthy flow must still
  // complete and the starved one must be counted (and warned once).
  for (const auto mode : {FlowNet::Mode::Incremental, FlowNet::Mode::Reference}) {
    Platform p;
    const auto a = p.add_host("a", 1e9, Ipv4{10, 0, 0, 1});
    const auto b = p.add_host("b", 1e9, Ipv4{10, 0, 0, 2});
    const auto c = p.add_host("c", 1e9, Ipv4{10, 0, 0, 3});
    p.connect(a, b, p.add_link("dead", 0.0, 0));
    p.connect(a, c, p.add_link("live", 1e6, 0));
    sim::Engine eng;
    FlowNet netw{eng, p, mode};
    Time done_live = -1;
    netw.start_flow(a, b, 1e6, [] {});  // starved forever
    netw.start_flow(a, c, 1e6, [&] { done_live = eng.now(); });
    eng.run();
    EXPECT_NEAR(done_live, 1.0, 1e-9);
    EXPECT_EQ(netw.stats().flows_starved, 1u);
    EXPECT_EQ(netw.active_flows(), 1u);  // the starved flow never drains
  }
}

}  // namespace
}  // namespace pdc::net
