#include "support/env.hpp"

#include <cstdlib>
#include <cstring>

namespace pdc {

bool env_flag(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  return v[0] != '\0' && v[0] != '0';
}

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0') return fallback;
  return static_cast<int>(parsed);
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0') return fallback;
  return parsed;
}

std::string env_str(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  return v;
}

}  // namespace pdc
